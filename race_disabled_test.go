//go:build !race

package nemo_test

// raceEnabled reports whether the race detector is instrumenting this build;
// wall-clock throughput assertions are skipped under -race because
// instrumentation overhead flattens the per-op cost differences they measure.
const raceEnabled = false
