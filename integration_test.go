package nemo_test

// Cross-module integration tests: the public API, all five engines on one
// workload, value integrity through flush/eviction/writeback cycles, and
// the paper's headline orderings at small scale.

import (
	"fmt"
	"testing"
	"time"

	"nemo"
	"nemo/internal/trace"
)

func newSmallDevice() nemo.Device {
	return nemo.NewDevice(nemo.DeviceConfig{PagesPerZone: 32, Zones: 56})
}

func newNemo(t testing.TB) (nemo.Device, *nemo.Cache) {
	t.Helper()
	dev := newSmallDevice()
	c, err := nemo.New(nemo.DefaultConfig(dev, 48))
	if err != nil {
		t.Fatal(err)
	}
	return dev, c
}

func TestPublicAPISmoke(t *testing.T) {
	_, c := newNemo(t)
	defer c.Close()
	if err := c.Set([]byte("public-api-key-1"), []byte("public-api-value")); err != nil {
		t.Fatal(err)
	}
	v, hit := c.Get([]byte("public-api-key-1"))
	if !hit || string(v) != "public-api-value" {
		t.Fatalf("get = %q %v", v, hit)
	}
}

// TestValueIntegrityUnderChurn replays a skewed workload and verifies every
// hit returns exactly the deterministic payload for its key — across memory
// hits, flash hits, sacrifice, eviction, and writeback.
func TestValueIntegrityUnderChurn(t *testing.T) {
	_, c := newNemo(t)
	defer c.Close()
	cfg := trace.ClusterConfig{Name: "integ", KeySize: 24, ValueMean: 200,
		ValueStd: 80, Keys: 40_000, ZipfAlpha: 1.2, Seed: 17}
	s := trace.NewZipf(cfg)
	var req trace.Request
	hits := 0
	for i := 0; i < 150_000; i++ {
		s.Next(&req)
		if v, hit := c.Get(req.Key); hit {
			hits++
			// The generator's values are deterministic per key: any hit
			// must return the exact payload.
			want := makeWant(req.Key, cfg)
			if string(v) != string(want) {
				t.Fatalf("op %d: corrupt value for key %q", i, req.Key)
			}
		} else {
			if err := c.Set(req.Key, req.Value); err != nil {
				t.Fatal(err)
			}
		}
	}
	if hits == 0 {
		t.Fatal("workload produced no hits; test proves nothing")
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("no evictions; churn insufficient")
	}
}

// makeWant regenerates the deterministic value for a generated key. The
// generator derives values from the permuted object id, which is embedded
// as the first 16 hex chars of the key.
func makeWant(key []byte, cfg trace.ClusterConfig) []byte {
	var id uint64
	for i := 15; i >= 0; i-- {
		c := key[i]
		var d uint64
		if c >= 'a' {
			d = uint64(c-'a') + 10
		} else {
			d = uint64(c - '0')
		}
		id = id<<4 | d
	}
	var req trace.Request
	size := trace.ValueSize(id, cfg.ValueMean, cfg.ValueStd, 1, 1<<11)
	trace.FillValue(&req, size, id)
	return req.Value
}

// TestAllEnginesServeSameWorkload runs every engine over one stream and
// checks basic sanity: hits occur, WA ordering matches the paper's design
// analysis (Log < Nemo << hierarchical/set).
func TestAllEnginesServeSameWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-engine replay is slow")
	}
	type build struct {
		name string
		mk   func(nemo.Device) (nemo.Engine, error)
	}
	builds := []build{
		{"Nemo", func(d nemo.Device) (nemo.Engine, error) {
			return nemo.New(nemo.DefaultConfig(d, 48))
		}},
		{"Log", func(d nemo.Device) (nemo.Engine, error) {
			return nemo.NewLogCache(nemo.LogCacheConfig{Device: d})
		}},
		{"Set", func(d nemo.Device) (nemo.Engine, error) {
			return nemo.NewSetCache(nemo.SetCacheConfig{Device: d, OPRatio: 0.5})
		}},
		{"FW", func(d nemo.Device) (nemo.Engine, error) {
			return nemo.NewFairyWREN(nemo.FairyWRENConfig{Device: d})
		}},
		{"KG", func(d nemo.Device) (nemo.Engine, error) {
			return nemo.NewKangaroo(nemo.KangarooConfig{Device: d})
		}},
	}
	was := map[string]float64{}
	for _, b := range builds {
		dev := newSmallDevice()
		e, err := b.mk(dev)
		if err != nil {
			t.Fatalf("%s: %v", b.name, err)
		}
		workload, err := nemo.NewWorkload(dev.CapacityBytes()*3/4, 5)
		if err != nil {
			t.Fatal(err)
		}
		res, err := nemo.Replay(e, workload, nemo.ReplayConfig{
			Ops:          150_000,
			InterArrival: 10 * time.Microsecond,
			Clock:        dev.Clock(),
		})
		if err != nil {
			t.Fatalf("%s: %v", b.name, err)
		}
		st := res.Final
		if st.Hits == 0 {
			t.Fatalf("%s: zero hits", b.name)
		}
		if st.MissRatio() > 0.9 {
			t.Fatalf("%s: miss ratio %.2f implausibly high", b.name, st.MissRatio())
		}
		was[b.name] = st.TotalWA()
		e.Close()
	}
	t.Logf("total WA: %+v", was)
	if !(was["Log"] < was["FW"] && was["Nemo"] < was["FW"]) {
		t.Fatalf("WA ordering violated: %+v", was)
	}
	if was["FW"] >= was["KG"] {
		t.Fatalf("FairyWREN should beat Kangaroo on WA: %+v", was)
	}
	if was["Nemo"] > 4 {
		t.Fatalf("Nemo WA %v too high", was["Nemo"])
	}
}

// TestDeterministicReplay checks that two identical runs produce identical
// stats — the property all experiments rely on.
func TestDeterministicReplay(t *testing.T) {
	run := func() nemo.Stats {
		dev := newSmallDevice()
		c, err := nemo.New(nemo.DefaultConfig(dev, 48))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		w, err := nemo.NewWorkload(dev.CapacityBytes(), 11)
		if err != nil {
			t.Fatal(err)
		}
		res, err := nemo.Replay(c, w, nemo.ReplayConfig{Ops: 60_000, Clock: dev.Clock()})
		if err != nil {
			t.Fatal(err)
		}
		return res.Final
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("replay not deterministic:\n%+v\n%+v", a, b)
	}
}

// TestConcurrentAccess hammers the Nemo cache from multiple goroutines to
// validate the locking story under -race.
func TestConcurrentAccess(t *testing.T) {
	_, c := newNemo(t)
	defer c.Close()
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func(g int) {
			var err error
			for i := 0; i < 3000; i++ {
				key := []byte(fmt.Sprintf("conc-%d-%06d", g, i))
				if e := c.Set(key, []byte("concurrent-value-payload")); e != nil {
					err = e
					break
				}
				c.Get(key)
				c.Get([]byte(fmt.Sprintf("conc-%d-%06d", (g+1)%4, i)))
			}
			done <- err
		}(g)
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestReadFaultPropagation injects device read faults and verifies the
// cache degrades to misses rather than panicking or returning garbage.
func TestReadFaultPropagation(t *testing.T) {
	dev, c := newNemo(t)
	defer c.Close()
	var keys [][]byte
	for i := 0; i < 5000; i++ {
		k := []byte(fmt.Sprintf("fault-key-%06d", i))
		if err := c.Set(k, []byte("fault-value-payload-xxxx")); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	dev.SetReadFault(func(page int) error { return fmt.Errorf("injected ECC error") })
	misses := 0
	for _, k := range keys[:500] {
		if _, hit := c.Get(k); !hit {
			misses++
		}
	}
	if misses == 0 {
		t.Fatal("all reads succeeded despite total read failure")
	}
	dev.SetReadFault(nil)
	hits := 0
	for _, k := range keys[len(keys)-500:] {
		if _, hit := c.Get(k); hit {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("cache did not recover after faults cleared")
	}
}
