//go:build !linux

package filedev

import "os"

// directSupported reports whether this platform can open the image with
// O_DIRECT. Open rejects Config.Direct when false.
const directSupported = false

// directFlag and directAlign are unused off Linux (Open rejects Direct
// first) but must compile.
const (
	directFlag  = 0
	directAlign = 4096
)

// alignedBuf is unreachable off Linux (the pool only builds aligned buffers
// in Direct mode, which Open rejects); a plain allocation keeps it honest.
func alignedBuf(pageSize int) *[]byte {
	buf := make([]byte, pageSize)
	return &buf
}

// punchHole is a no-op off Linux; reset zones simply keep their blocks.
func punchHole(f *os.File, off, length int64) {}
