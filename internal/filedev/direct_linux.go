//go:build linux

package filedev

import (
	"os"
	"syscall"
	"unsafe"
)

// directSupported reports whether this platform can open the image with
// O_DIRECT.
const directSupported = true

// directFlag is the open(2) flag for direct I/O.
const directFlag = syscall.O_DIRECT

// directAlign is the memory/offset/length alignment O_DIRECT transfers
// must satisfy. 512 is the historical floor; 4096 is safe on every modern
// filesystem and matches the default page size.
const directAlign = 4096

// Linux fallocate(2) mode bits (not exported by package syscall).
const (
	fallocKeepSize  = 0x1 // FALLOC_FL_KEEP_SIZE
	fallocPunchHole = 0x2 // FALLOC_FL_PUNCH_HOLE
)

// alignedBuf allocates a page-sized buffer whose base address is
// directAlign-aligned, for O_DIRECT transfers. The returned slice aliases a
// larger allocation; the pool stores the pointer so the backing array stays
// reachable.
func alignedBuf(pageSize int) *[]byte {
	raw := make([]byte, pageSize+directAlign)
	off := 0
	if rem := uintptr(unsafe.Pointer(&raw[0])) % directAlign; rem != 0 {
		off = directAlign - int(rem)
	}
	buf := raw[off : off+pageSize : off+pageSize]
	return &buf
}

// punchHole releases the file blocks backing [off, off+length) without
// changing the file size. Best-effort: failure (unsupported filesystem,
// O_DIRECT quirks) is ignored because reads beyond the write pointer are
// zero-filled in software anyway.
func punchHole(f *os.File, off, length int64) {
	_ = syscall.Fallocate(int(f.Fd()), fallocPunchHole|fallocKeepSize, off, length)
}
