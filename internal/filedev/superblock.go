package filedev

// Superblock persistence for Persist-mode devices: one extra page past the
// data capacity holding the zone write pointers and the generation stamp
// (device.Generation), so a cleanly closed image reopens warm instead of
// reformatting. The protocol is deliberately pessimistic:
//
//   - Open reads and validates the superblock (magic, version, geometry,
//     CRC). Valid: write pointers, Boot, and Writes are restored. Invalid in
//     any way: the device cold-formats with a fresh random Boot, and the
//     stale superblock is zeroed immediately so it can never be trusted by a
//     later open under a different life of the image.
//   - The FIRST mutation after an open synchronously zeroes the superblock
//     before touching any zone (invalidate-then-mutate). A crash at any
//     point after that leaves an invalid superblock, so the next open
//     cold-formats — the write pointers on disk never lie about zones that
//     were appended or reset after them.
//   - Close rewrites the superblock from the final state and fsyncs, making
//     the image warm-openable again.
//
// The superblock is metadata about the image, not cache data: losing it
// costs a reformat (and therefore a cold cache start), never correctness.

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// sbMagic identifies a filedev superblock page.
const sbMagic = "NEMOSB1\x00"

// sbVersion is the current superblock layout version.
const sbVersion = 1

// sbFixed is the superblock size excluding the per-zone write-pointer table
// and the trailing CRC: magic, version, geometry triple, boot, writes.
const sbFixed = 8 + 4 + 3*4 + 8 + 8

// sbSize returns the serialized superblock size for a zone count.
func sbSize(zones int) int { return sbFixed + 4*zones + 4 }

// randBoot draws a fresh random Boot stamp. Randomness (not a counter) is
// what makes Boot unique across process lifetimes without any global state:
// a crashed image's snapshots can never collide with the fresh format's.
func randBoot() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("filedev: reading random boot stamp: %v", err))
	}
	return binary.LittleEndian.Uint64(b[:])
}

// sbOffset returns the superblock's byte offset: the first page past the
// data capacity. Zone addressing is untouched by Persist mode, so a warm
// image holds byte-identical zone contents to a volatile one.
func (d *Device) sbOffset() int64 { return d.CapacityBytes() }

// encodeSuperblock serializes the current write pointers and generation
// stamp into a full, zero-padded page image.
func (d *Device) encodeSuperblock(page []byte) {
	buf := page[:0]
	buf = append(buf, sbMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, sbVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(d.cfg.PageSize))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(d.cfg.PagesPerZone))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(d.cfg.Zones))
	buf = binary.LittleEndian.AppendUint64(buf, d.boot)
	buf = binary.LittleEndian.AppendUint64(buf, d.writes.Load())
	for i := range d.zones {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(d.ZoneWP(i)))
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	clear(page[len(buf):d.cfg.PageSize])
}

// decodeSuperblock parses a superblock page against the device's geometry,
// returning the restored write pointers and generation stamp. Any defect —
// wrong magic, version, geometry, out-of-range write pointer, CRC mismatch —
// returns an error; the caller then cold-formats.
func (d *Device) decodeSuperblock(page []byte) (wps []int, boot, writes uint64, err error) {
	n := sbSize(d.cfg.Zones)
	if len(page) < n {
		return nil, 0, 0, fmt.Errorf("filedev: superblock short: %d < %d", len(page), n)
	}
	if string(page[:8]) != sbMagic {
		return nil, 0, 0, fmt.Errorf("filedev: bad superblock magic")
	}
	if v := binary.LittleEndian.Uint32(page[8:]); v != sbVersion {
		return nil, 0, 0, fmt.Errorf("filedev: superblock version %d (want %d)", v, sbVersion)
	}
	gotCRC := binary.LittleEndian.Uint32(page[n-4:])
	if crc32.ChecksumIEEE(page[:n-4]) != gotCRC {
		return nil, 0, 0, fmt.Errorf("filedev: superblock CRC mismatch")
	}
	ps := int(binary.LittleEndian.Uint32(page[12:]))
	ppz := int(binary.LittleEndian.Uint32(page[16:]))
	zones := int(binary.LittleEndian.Uint32(page[20:]))
	if ps != d.cfg.PageSize || ppz != d.cfg.PagesPerZone || zones != d.cfg.Zones {
		return nil, 0, 0, fmt.Errorf("filedev: superblock geometry %dx%dx%d does not match %dx%dx%d",
			zones, ppz, ps, d.cfg.Zones, d.cfg.PagesPerZone, d.cfg.PageSize)
	}
	boot = binary.LittleEndian.Uint64(page[24:])
	writes = binary.LittleEndian.Uint64(page[32:])
	wps = make([]int, zones)
	for i := range wps {
		wp := int(binary.LittleEndian.Uint32(page[sbFixed+4*i:]))
		if wp > ppz {
			return nil, 0, 0, fmt.Errorf("filedev: superblock wp %d exceeds zone size %d", wp, ppz)
		}
		wps[i] = wp
	}
	return wps, boot, writes, nil
}

// writeSuperblockPage writes a full page image at the superblock offset
// through a pooled (and, in Direct mode, aligned) buffer.
func (d *Device) writeSuperblockPage(fill func(page []byte)) error {
	bp := d.bufs.Get().(*[]byte)
	defer d.bufs.Put(bp)
	page := (*bp)[:d.cfg.PageSize]
	fill(page)
	if _, err := d.f.WriteAt(page, d.sbOffset()); err != nil {
		return fmt.Errorf("filedev: writing superblock: %w", err)
	}
	return nil
}

// invalidateMeta zeroes the superblock before the first mutation of this
// open (invalidate-then-mutate). sync.Once both bounds the cost to one page
// write per open and acts as the barrier that keeps a concurrent second
// mutation from proceeding before the superblock is actually dead on disk.
// A write failure is ignored deliberately: the superblock is rewritten from
// live state on Close, and until then a possibly-stale superblock is only
// reachable through a crash, where the generation mismatch recorded there
// (Writes frozen at open time) already fails snapshot validation.
func (d *Device) invalidateMeta() {
	if !d.cfg.Persist {
		return
	}
	d.metaOnce.Do(func() {
		d.writeSuperblockPage(func(page []byte) { clear(page) })
	})
}

// loadOrFormatMeta runs at Open in Persist mode: restore the superblock if
// it validates, otherwise cold-format (fresh random Boot, zeroed stale
// superblock). Returns an error only for I/O failures on the image itself.
func (d *Device) loadOrFormatMeta() error {
	bp := d.bufs.Get().(*[]byte)
	defer d.bufs.Put(bp)
	page := (*bp)[:d.cfg.PageSize]
	if _, err := d.f.ReadAt(page, d.sbOffset()); err != nil {
		return fmt.Errorf("filedev: reading superblock: %w", err)
	}
	wps, boot, writes, err := d.decodeSuperblock(page)
	if err != nil {
		d.boot = randBoot()
		// Zero the stale superblock now: a later open must never adopt a
		// superblock written by a different life (or geometry) of the image.
		return d.writeSuperblockPage(func(page []byte) { clear(page) })
	}
	for i, wp := range wps {
		d.zones[i].wp = wp
		if wp > 0 && wp < d.cfg.PagesPerZone {
			d.openCount++
		}
	}
	d.boot = boot
	d.writes.Store(writes)
	d.restored = true
	return nil
}

// flushMeta rewrites the superblock from the current device state and syncs
// it to stable storage (Close path).
func (d *Device) flushMeta() error {
	if err := d.writeSuperblockPage(d.encodeSuperblock); err != nil {
		return err
	}
	if err := d.f.Sync(); err != nil {
		return fmt.Errorf("filedev: syncing superblock: %w", err)
	}
	return nil
}
