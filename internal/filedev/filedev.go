// Package filedev implements the internal/device contract over a real
// preallocated file: pread/pwrite at zone*pagesPerZone*pageSize + off, with
// the same append-only/erase-before-reuse zone semantics the simulator
// enforces. Where flashsim models latency on a virtual clock, filedev
// measures it — the device clock is real (vtime.NewReal), so the `done`
// results are wall-clock completion times and every latency histogram in
// the engines reports real I/O cost unchanged.
//
// Semantics match flashsim exactly (the cross-backend equivalence tests pin
// this): per-zone write pointers enforced in software, short appends
// zero-padded to a full page, reads at or beyond the write pointer yield
// zeroes without touching the disk, open-zone accounting with the same
// ErrTooManyOpenZones limit, and blockable fault hooks that run outside
// zone locks. Concurrency mirrors flashsim's contract — operations on
// distinct zones never contend — and is strictly more parallel on reads:
// each zone carries an RWMutex, so reads of the *same* zone also proceed in
// parallel (flashsim serializes them on the zone mutex; nothing in the
// contract forbids the extra parallelism).
//
// Write-pointer persistence: off by default. Open formats the device —
// every zone's write pointer deterministically rebuilds to zero, whatever
// bytes the file holds (a fresh Open on an existing image is a whole-device
// reset). Config.Persist opts into warm restart: the image grows one
// superblock page past the data capacity holding the zone write pointers
// and the device generation stamp, rewritten on clean Close and invalidated
// before the first mutation after Open (see superblock.go) — so a cleanly
// closed image reopens with its write pointers and generation intact, while
// any crash still cold-formats deterministically. Because reads beyond the
// write pointer are zero-filled in software and full pages are always
// written (short appends zero-padded before pwrite), stale file contents
// can never leak into a read in either mode.
//
// Durability: appends are plain pwrites — there is no fsync per append, so
// completed appends may sit in the page cache and be lost on power failure
// (process crash is safe: the kernel owns the pages). That window is
// acceptable for a cache, which can always refill from the backing store;
// callers needing stronger guarantees must add their own sync policy.
//
// Direct I/O: Config.Direct opens the image with O_DIRECT (Linux only),
// bypassing the page cache so measured latencies reflect the medium.
// PageSize must then be a multiple of 4096 and all transfers go through
// pooled 4096-aligned bounce buffers. io_uring batching for ReadPages is a
// documented stretch goal — the current implementation issues sequential
// preads, which is fidelity enough for the BENCH trajectory.
package filedev

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"nemo/internal/device"
	"nemo/internal/vtime"
)

// Config describes the file-backed device: image location and geometry.
type Config struct {
	// Path is the image file. Created (and sized) if missing; an existing
	// file is reused as raw storage and, unless Persist is set, always
	// reformatted (see the package comment on write-pointer persistence).
	Path string
	// PageSize is the read/program granularity in bytes (default 4096).
	PageSize int
	// PagesPerZone is the zone (erase unit) size in pages (default 256).
	PagesPerZone int
	// Zones is the number of zones on the device (default 64).
	Zones int
	// MaxOpenZones bounds the number of partially written zones. 0 means
	// unlimited. Opening a zone beyond the limit fails with
	// device.ErrTooManyOpenZones, exactly as on the simulator.
	MaxOpenZones int
	// Direct opens the image with O_DIRECT (Linux only; requires PageSize
	// to be a multiple of 4096).
	Direct bool
	// RemoveOnClose deletes the image file on Close — the mode benchmark
	// harnesses use for throwaway images.
	RemoveOnClose bool
	// Persist opts into write-pointer and generation persistence via a
	// superblock page appended past the data capacity: a cleanly closed
	// image reopens warm (write pointers and device.Generation restored), a
	// crashed or corrupted one cold-formats. Requires the superblock to fit
	// one page (44 + 4*Zones bytes ≤ PageSize). Pointless combined with
	// RemoveOnClose, but harmless.
	Persist bool
	// Clock overrides the device clock; nil takes a fresh real clock. Tests
	// may install a virtual clock to make `done` values deterministic —
	// I/O still happens, only the timestamps freeze.
	Clock *vtime.Clock
}

func (c Config) withDefaults() Config {
	if c.PageSize == 0 {
		c.PageSize = 4096
	}
	if c.PagesPerZone == 0 {
		c.PagesPerZone = 256
	}
	if c.Zones == 0 {
		c.Zones = 64
	}
	if c.Clock == nil {
		c.Clock = vtime.NewReal()
	}
	return c
}

type zone struct {
	mu sync.RWMutex
	wp int // next page offset to program within the zone
}

// Device is a file-backed zoned device. All methods are safe for concurrent
// use; operations on distinct zones proceed in parallel, and reads of the
// same zone proceed in parallel with each other.
type Device struct {
	cfg   Config
	clock *vtime.Clock
	f     *os.File

	zones []zone

	// Open-zone accounting: openCount tracks zones with 0 < wp <
	// PagesPerZone and is only touched on open/close transitions.
	openMu    sync.Mutex
	openCount int

	pagesWritten atomic.Uint64
	pagesRead    atomic.Uint64
	zoneResets   atomic.Uint64
	bytesWritten atomic.Uint64
	bytesRead    atomic.Uint64

	readFault  atomic.Pointer[func(page int) error]
	writeFault atomic.Pointer[func(zone int) error]

	// Generation stamp (see device.Generation): boot is fixed at Open —
	// restored from the superblock on a warm Persist open, freshly random
	// otherwise — and writes counts successful appends and resets since the
	// format boot identifies. metaOnce gates the one-time superblock
	// invalidation before the first mutation of this open; restored records
	// whether this open adopted a superblock.
	boot     uint64
	writes   atomic.Uint64
	metaOnce sync.Once
	restored bool

	// bufs pools page-sized transfer buffers: zero-padding short appends,
	// and (Direct mode) 4096-aligned bounce buffers for all transfers.
	bufs sync.Pool

	closeOnce sync.Once
	closeErr  error
}

// Device implements the zoned-device contract.
var _ device.Device = (*Device)(nil)

// Open creates (or reuses) the image file at cfg.Path, sizes it to the
// device capacity, and returns a formatted device: every zone's write
// pointer is zero regardless of prior contents — unless cfg.Persist is set
// and the image carries a valid superblock, in which case the write
// pointers and generation stamp of the last clean Close are restored.
func Open(cfg Config) (*Device, error) {
	cfg = cfg.withDefaults()
	if cfg.Path == "" {
		return nil, fmt.Errorf("filedev: empty image path")
	}
	if cfg.Zones <= 0 || cfg.PagesPerZone <= 0 || cfg.PageSize <= 0 {
		return nil, fmt.Errorf("filedev: invalid geometry %d zones x %d pages x %d bytes",
			cfg.Zones, cfg.PagesPerZone, cfg.PageSize)
	}
	if cfg.Persist && sbSize(cfg.Zones) > cfg.PageSize {
		return nil, fmt.Errorf("filedev: superblock for %d zones (%d bytes) does not fit a %d-byte page",
			cfg.Zones, sbSize(cfg.Zones), cfg.PageSize)
	}
	if cfg.Direct {
		if !directSupported {
			return nil, fmt.Errorf("filedev: O_DIRECT is not supported on this platform")
		}
		if cfg.PageSize%directAlign != 0 {
			return nil, fmt.Errorf("filedev: O_DIRECT requires PageSize to be a multiple of %d, got %d",
				directAlign, cfg.PageSize)
		}
	}
	flags := os.O_RDWR | os.O_CREATE
	if cfg.Direct {
		flags |= directFlag
	}
	f, err := os.OpenFile(cfg.Path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("filedev: open image: %w", err)
	}
	d := &Device{
		cfg:   cfg,
		clock: cfg.Clock,
		f:     f,
		zones: make([]zone, cfg.Zones),
	}
	d.bufs.New = func() any {
		if cfg.Direct {
			return alignedBuf(cfg.PageSize)
		}
		b := make([]byte, cfg.PageSize)
		return &b
	}
	// Size the image to full capacity up front so pwrites never extend the
	// file (Persist adds one superblock page past the capacity). Truncate
	// leaves holes where nothing was written — resets punch the zone back to
	// a hole, so a long-lived image stays as sparse as its live data.
	// Shrinking a formerly-Persist image back to bare capacity also destroys
	// its superblock, so mode changes can never resurrect stale pointers.
	size := d.CapacityBytes()
	if cfg.Persist {
		size += int64(cfg.PageSize)
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return nil, fmt.Errorf("filedev: size image to %d bytes: %w", size, err)
	}
	if cfg.Persist {
		if err := d.loadOrFormatMeta(); err != nil {
			f.Close()
			return nil, err
		}
	} else {
		d.boot = randBoot()
	}
	return d, nil
}

// Clock returns the device clock (real wall time unless overridden).
func (d *Device) Clock() *vtime.Clock { return d.clock }

// Config returns the effective configuration (defaults applied).
func (d *Device) Config() Config { return d.cfg }

// Path returns the image file location.
func (d *Device) Path() string { return d.cfg.Path }

// PageSize returns the page size in bytes.
func (d *Device) PageSize() int { return d.cfg.PageSize }

// PagesPerZone returns the zone size in pages.
func (d *Device) PagesPerZone() int { return d.cfg.PagesPerZone }

// Zones returns the number of zones.
func (d *Device) Zones() int { return d.cfg.Zones }

// TotalPages returns the device capacity in pages.
func (d *Device) TotalPages() int { return d.cfg.Zones * d.cfg.PagesPerZone }

// CapacityBytes returns the device capacity in bytes.
func (d *Device) CapacityBytes() int64 {
	return int64(d.TotalPages()) * int64(d.cfg.PageSize)
}

// ZoneOf returns the zone containing the global page index.
func (d *Device) ZoneOf(page int) int { return page / d.cfg.PagesPerZone }

// PageAddr returns the global page index of offset off within zoneID.
func (d *Device) PageAddr(zoneID, off int) int {
	return zoneID*d.cfg.PagesPerZone + off
}

// OffsetOf returns the intra-zone offset of the global page index.
func (d *Device) OffsetOf(page int) int { return page % d.cfg.PagesPerZone }

// MaxOpenZones returns the open-zone limit (0 = unlimited).
func (d *Device) MaxOpenZones() int { return d.cfg.MaxOpenZones }

// byteOff returns the file offset of the global page index.
func (d *Device) byteOff(page int) int64 {
	return int64(page) * int64(d.cfg.PageSize)
}

// Stats returns a snapshot of the device counters. Each counter is loaded
// atomically; under concurrent traffic the fields may straddle in-flight
// operations, but quiescent reads are exact.
func (d *Device) Stats() device.Stats {
	return device.Stats{
		PagesWritten: d.pagesWritten.Load(),
		PagesRead:    d.pagesRead.Load(),
		ZoneResets:   d.zoneResets.Load(),
		BytesWritten: d.bytesWritten.Load(),
		BytesRead:    d.bytesRead.Load(),
	}
}

// Generation returns the device mutation stamp (see device.Generation).
// Boot is restored from the superblock on a warm Persist open and freshly
// random on every other open; Writes counts successful appends and resets.
func (d *Device) Generation() device.Generation {
	return device.Generation{Boot: d.boot, Writes: d.writes.Load()}
}

// Restored reports whether this open adopted a valid superblock (warm
// open). Always false without Config.Persist.
func (d *Device) Restored() bool { return d.restored }

// SetReadFault installs a hook invoked with the global page index on every
// ReadPage, before any I/O and outside zone locks; a non-nil return aborts
// the read with that error. The hook may block to hold a read mid-flight
// without stalling other zones. Pass nil to disable.
func (d *Device) SetReadFault(f func(page int) error) {
	if f == nil {
		d.readFault.Store(nil)
		return
	}
	d.readFault.Store(&f)
}

// SetWriteFault is SetReadFault's append-side twin, invoked with the zone
// ID before any state changes and outside zone locks.
func (d *Device) SetWriteFault(f func(zone int) error) {
	if f == nil {
		d.writeFault.Store(nil)
		return
	}
	d.writeFault.Store(&f)
}

// ZoneWP returns the write pointer (pages written) of the zone.
func (d *Device) ZoneWP(zoneID int) int {
	z := &d.zones[zoneID]
	z.mu.RLock()
	defer z.mu.RUnlock()
	return z.wp
}

// ZoneFull reports whether the zone has no remaining writable pages.
func (d *Device) ZoneFull(zoneID int) bool {
	return d.ZoneWP(zoneID) >= d.cfg.PagesPerZone
}

// ZoneStateOf returns the zone's lifecycle state.
func (d *Device) ZoneStateOf(zoneID int) device.ZoneState {
	return device.StateOf(d, zoneID)
}

// OpenZones returns the number of partially written zones.
func (d *Device) OpenZones() int {
	d.openMu.Lock()
	defer d.openMu.Unlock()
	return d.openCount
}

// reserveOpen admits (or rejects) the 0→open transition of a zone against
// the configured open-zone limit.
func (d *Device) reserveOpen(zoneID int) error {
	d.openMu.Lock()
	defer d.openMu.Unlock()
	if d.cfg.MaxOpenZones > 0 && d.openCount >= d.cfg.MaxOpenZones {
		return fmt.Errorf("opening zone %d: %w (limit %d)", zoneID, device.ErrTooManyOpenZones, d.cfg.MaxOpenZones)
	}
	d.openCount++
	return nil
}

func (d *Device) releaseOpen() {
	d.openMu.Lock()
	d.openCount--
	d.openMu.Unlock()
}

// AppendPage programs one page at the zone's write pointer: a single pwrite
// of a full page at zone*pagesPerZone*pageSize + wp*pageSize. data longer
// than a page is an error; shorter data is zero-padded to the full page
// before the pwrite (stale file bytes can never ride along) and the full
// page is counted as written. It returns the global page index and the
// wall-clock completion time. Appends to the same zone serialize on the
// zone's lock; appends to distinct zones run in parallel.
func (d *Device) AppendPage(zoneID int, data []byte) (page int, done time.Duration, err error) {
	if zoneID < 0 || zoneID >= d.cfg.Zones {
		return 0, 0, fmt.Errorf("filedev: zone %d out of range [0,%d)", zoneID, d.cfg.Zones)
	}
	if len(data) > d.cfg.PageSize {
		return 0, 0, fmt.Errorf("filedev: write of %d bytes exceeds page size %d", len(data), d.cfg.PageSize)
	}
	if f := d.writeFault.Load(); f != nil {
		if err := (*f)(zoneID); err != nil {
			return 0, 0, err
		}
	}
	d.invalidateMeta()
	z := &d.zones[zoneID]
	z.mu.Lock()
	defer z.mu.Unlock()
	if z.wp >= d.cfg.PagesPerZone {
		return 0, 0, fmt.Errorf("filedev: zone %d full", zoneID)
	}
	opened := false
	if z.wp == 0 {
		if err := d.reserveOpen(zoneID); err != nil {
			return 0, 0, err
		}
		opened = true
	}
	page = d.PageAddr(zoneID, z.wp)
	// Always transfer a full page. Short (or unaligned, in Direct mode)
	// payloads bounce through a pooled buffer with a zeroed tail.
	src := data
	if len(data) < d.cfg.PageSize || d.cfg.Direct {
		bp := d.bufs.Get().(*[]byte)
		buf := *bp
		n := copy(buf, data)
		clear(buf[n:])
		src = buf
		defer d.bufs.Put(bp)
	}
	if _, werr := d.f.WriteAt(src[:d.cfg.PageSize], d.byteOff(page)); werr != nil {
		if opened {
			d.releaseOpen()
		}
		return 0, 0, fmt.Errorf("filedev: write page %d: %w", page, werr)
	}
	z.wp++
	if z.wp == d.cfg.PagesPerZone {
		d.releaseOpen()
	}
	d.pagesWritten.Add(1)
	d.bytesWritten.Add(uint64(d.cfg.PageSize))
	d.writes.Add(1)
	return page, d.clock.Now(), nil
}

// Append programs len(data)/PageSize pages (rounding the tail up to a full
// page) sequentially into the zone. It returns the first global page index
// and the completion time of the last page.
func (d *Device) Append(zoneID int, data []byte) (firstPage int, done time.Duration, err error) {
	ps := d.cfg.PageSize
	if len(data) == 0 {
		return 0, d.clock.Now(), nil
	}
	first := -1
	for off := 0; off < len(data); off += ps {
		end := off + ps
		if end > len(data) {
			end = len(data)
		}
		page, t, err := d.AppendPage(zoneID, data[off:end])
		if err != nil {
			return 0, 0, err
		}
		if first < 0 {
			first = page
		}
		if t > done {
			done = t
		}
	}
	return first, done, nil
}

// ReadPage copies the page into dst (which must hold PageSize bytes) and
// returns the wall-clock completion time. Reading a page at or beyond its
// zone's write pointer yields zeroes without touching the disk — the
// write-pointer check, not file contents, is authoritative (matching
// deallocated-read behaviour and making reformat-on-open safe).
//
// The buffer-ownership contract is flashsim's: dst belongs to the caller,
// is filled synchronously before the call returns, and is never retained.
// The zone's read lock is held across the pread, so reads of the same zone
// proceed in parallel while a concurrent ResetZone waits.
func (d *Device) ReadPage(page int, dst []byte) (done time.Duration, err error) {
	if page < 0 || page >= d.TotalPages() {
		return 0, fmt.Errorf("filedev: page %d out of range [0,%d)", page, d.TotalPages())
	}
	if len(dst) < d.cfg.PageSize {
		return 0, fmt.Errorf("filedev: read buffer %d smaller than page size %d", len(dst), d.cfg.PageSize)
	}
	if f := d.readFault.Load(); f != nil {
		if err := (*f)(page); err != nil {
			return 0, err
		}
	}
	z := &d.zones[d.ZoneOf(page)]
	off := d.OffsetOf(page)
	z.mu.RLock()
	if off >= z.wp {
		clear(dst[:d.cfg.PageSize])
	} else if d.cfg.Direct {
		bp := d.bufs.Get().(*[]byte)
		buf := *bp
		_, err = d.f.ReadAt(buf[:d.cfg.PageSize], d.byteOff(page))
		if err == nil {
			copy(dst[:d.cfg.PageSize], buf)
		}
		d.bufs.Put(bp)
	} else {
		_, err = d.f.ReadAt(dst[:d.cfg.PageSize], d.byteOff(page))
	}
	z.mu.RUnlock()
	if err != nil {
		return 0, fmt.Errorf("filedev: read page %d: %w", page, err)
	}
	d.pagesRead.Add(1)
	d.bytesRead.Add(uint64(d.cfg.PageSize))
	return d.clock.Now(), nil
}

// ReadPages reads every page into the matching dst buffer and returns the
// completion time of the last read. The ReadPage buffer-ownership contract
// applies to every dst. On error, buffers before the failing page have been
// filled and the rest are untouched; the error is the first one encountered
// in page order. (Batched submission via io_uring is the documented stretch
// goal; sequential preads are current behaviour.)
func (d *Device) ReadPages(pages []int, dst [][]byte) (done time.Duration, err error) {
	for i, p := range pages {
		t, err := d.ReadPage(p, dst[i])
		if err != nil {
			return 0, err
		}
		if t > done {
			done = t
		}
	}
	return done, nil
}

// ResetZone erases the zone, rewinding its write pointer, and returns the
// wall-clock completion time. The file range is best-effort hole-punched
// (Linux) to release the blocks; correctness never depends on it, because
// reads beyond the write pointer are zero-filled in software.
func (d *Device) ResetZone(zoneID int) (done time.Duration, err error) {
	if zoneID < 0 || zoneID >= d.cfg.Zones {
		return 0, fmt.Errorf("filedev: zone %d out of range [0,%d)", zoneID, d.cfg.Zones)
	}
	d.invalidateMeta()
	z := &d.zones[zoneID]
	z.mu.Lock()
	if z.wp > 0 && z.wp < d.cfg.PagesPerZone {
		d.releaseOpen()
	}
	z.wp = 0
	punchHole(d.f, d.byteOff(d.PageAddr(zoneID, 0)), int64(d.cfg.PagesPerZone)*int64(d.cfg.PageSize))
	z.mu.Unlock()
	d.zoneResets.Add(1)
	d.writes.Add(1)
	return d.clock.Now(), nil
}

// Close releases the file descriptor and, when Config.RemoveOnClose is set,
// deletes the image. In Persist mode (and not RemoveOnClose) it first
// rewrites and syncs the superblock, making the image warm-openable. Safe
// to call more than once; later calls return the first result. Engines
// never close their device — whoever opened it does.
func (d *Device) Close() error {
	d.closeOnce.Do(func() {
		if d.cfg.Persist && !d.cfg.RemoveOnClose {
			d.closeErr = d.flushMeta()
		}
		if cerr := d.f.Close(); cerr != nil && d.closeErr == nil {
			d.closeErr = cerr
		}
		if d.cfg.RemoveOnClose {
			if rerr := os.Remove(d.cfg.Path); rerr != nil && d.closeErr == nil {
				d.closeErr = rerr
			}
		}
	})
	return d.closeErr
}
