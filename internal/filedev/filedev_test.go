package filedev

// Zone-state tests for the file-backed device: the contract cases that
// distinguish a zoned device from a plain file — append past ZoneFull,
// reads of unwritten pages, resetting an open zone, crash-reopen
// determinism — plus the fault-hook and O_DIRECT plumbing.

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"nemo/internal/device"
)

// testConfig is a small geometry so zones fill quickly.
func testConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Path:         filepath.Join(t.TempDir(), "nemo-test.img"),
		PageSize:     512,
		PagesPerZone: 4,
		Zones:        8,
	}
}

func openTest(t *testing.T, cfg Config) *Device {
	t.Helper()
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

// pageOf builds a page-sized payload with a recognizable fill byte.
func pageOf(b byte, n int) []byte {
	return bytes.Repeat([]byte{b}, n)
}

func TestAppendPastZoneFull(t *testing.T) {
	d := openTest(t, testConfig(t))
	for i := 0; i < d.PagesPerZone(); i++ {
		if _, _, err := d.AppendPage(0, pageOf(byte(i+1), d.PageSize())); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if !d.ZoneFull(0) {
		t.Fatal("zone 0 not full after PagesPerZone appends")
	}
	if got := device.StateOf(d, 0); got != device.ZoneFull {
		t.Fatalf("state = %v, want ZoneFull", got)
	}
	_, _, err := d.AppendPage(0, pageOf(0xEE, d.PageSize()))
	if err == nil {
		t.Fatal("append into a full zone succeeded")
	}
	if !strings.Contains(err.Error(), "full") {
		t.Fatalf("append into full zone: error %q does not mention fullness", err)
	}
	// The failed append must not have advanced the write pointer or
	// clobbered the last written page.
	if wp := d.ZoneWP(0); wp != d.PagesPerZone() {
		t.Fatalf("wp = %d after rejected append, want %d", wp, d.PagesPerZone())
	}
	dst := make([]byte, d.PageSize())
	if _, err := d.ReadPage(d.PageAddr(0, d.PagesPerZone()-1), dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, pageOf(byte(d.PagesPerZone()), d.PageSize())) {
		t.Fatal("last page corrupted by rejected append")
	}
}

func TestReadUnwrittenPageYieldsZeroes(t *testing.T) {
	cfg := testConfig(t)
	d := openTest(t, cfg)

	// Poison the image file directly so a read that consulted file
	// contents instead of the write pointer would be caught.
	f, err := os.OpenFile(cfg.Path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(pageOf(0xAA, cfg.PageSize*cfg.PagesPerZone), 0); err != nil {
		t.Fatal(err)
	}
	f.Close()

	dst := pageOf(0xBB, cfg.PageSize) // dirty dst: zeros must be written, not skipped
	if _, err := d.ReadPage(d.PageAddr(0, 2), dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, make([]byte, cfg.PageSize)) {
		t.Fatal("read of unwritten page returned file garbage, want zeroes")
	}

	// Same zone, below the write pointer: real data comes back while the
	// page at the wp still reads as zeroes.
	if _, _, err := d.AppendPage(0, pageOf(0x11, cfg.PageSize)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadPage(d.PageAddr(0, 0), dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, pageOf(0x11, cfg.PageSize)) {
		t.Fatal("read below wp did not return written data")
	}
	copy(dst, pageOf(0xBB, cfg.PageSize))
	if _, err := d.ReadPage(d.PageAddr(0, 1), dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, make([]byte, cfg.PageSize)) {
		t.Fatal("read at wp returned garbage, want zeroes")
	}
}

func TestShortAppendZeroPadsPage(t *testing.T) {
	d := openTest(t, testConfig(t))
	short := pageOf(0x7F, 100)
	page, _, err := d.AppendPage(0, short)
	if err != nil {
		t.Fatal(err)
	}
	dst := pageOf(0xCC, d.PageSize())
	if _, err := d.ReadPage(page, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst[:100], short) {
		t.Fatal("short append lost payload")
	}
	if !bytes.Equal(dst[100:], make([]byte, d.PageSize()-100)) {
		t.Fatal("short append tail not zero-padded")
	}
}

func TestResetZoneReopensAndZeroes(t *testing.T) {
	d := openTest(t, testConfig(t))
	// Open (partially written) zone: reset must drop it from the open count
	// and rewind the write pointer.
	if _, _, err := d.AppendPage(3, pageOf(0x42, d.PageSize())); err != nil {
		t.Fatal(err)
	}
	if d.OpenZones() != 1 {
		t.Fatalf("OpenZones = %d, want 1", d.OpenZones())
	}
	if _, err := d.ResetZone(3); err != nil {
		t.Fatal(err)
	}
	if d.OpenZones() != 0 {
		t.Fatalf("OpenZones = %d after reset, want 0", d.OpenZones())
	}
	if wp := d.ZoneWP(3); wp != 0 {
		t.Fatalf("wp = %d after reset, want 0", wp)
	}
	if got := device.StateOf(d, 3); got != device.ZoneEmpty {
		t.Fatalf("state = %v after reset, want ZoneEmpty", got)
	}
	// Old contents must be unreadable even though the bytes may linger in
	// the file: the write pointer is authoritative.
	dst := pageOf(0xDD, d.PageSize())
	if _, err := d.ReadPage(d.PageAddr(3, 0), dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, make([]byte, d.PageSize())) {
		t.Fatal("reset zone still readable")
	}
	// The zone is writable again, and a full-zone reset also works.
	for i := 0; i < d.PagesPerZone(); i++ {
		if _, _, err := d.AppendPage(3, pageOf(0x43, d.PageSize())); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.ResetZone(3); err != nil {
		t.Fatal(err)
	}
	if d.OpenZones() != 0 {
		t.Fatalf("OpenZones = %d after full-zone reset, want 0", d.OpenZones())
	}
	st := d.Stats()
	if st.ZoneResets != 2 {
		t.Fatalf("ZoneResets = %d, want 2", st.ZoneResets)
	}
}

func TestMaxOpenZonesEnforced(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxOpenZones = 2
	d := openTest(t, cfg)
	for z := 0; z < 2; z++ {
		if _, _, err := d.AppendPage(z, pageOf(1, cfg.PageSize)); err != nil {
			t.Fatal(err)
		}
	}
	_, _, err := d.AppendPage(2, pageOf(1, cfg.PageSize))
	if !errors.Is(err, device.ErrTooManyOpenZones) {
		t.Fatalf("third open zone: err = %v, want ErrTooManyOpenZones", err)
	}
	// Filling a zone closes it and frees a slot.
	for d.ZoneWP(0) < cfg.PagesPerZone {
		if _, _, err := d.AppendPage(0, pageOf(1, cfg.PageSize)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := d.AppendPage(2, pageOf(1, cfg.PageSize)); err != nil {
		t.Fatalf("open after slot freed: %v", err)
	}
}

// TestCrashReopenRebuildsEmpty pins the documented crash-reopen choice:
// Open always reformats — a fresh Open of an existing image deterministically
// rebuilds every write pointer to zero (no metadata is persisted), so prior
// contents are unreadable and the capacity is fully writable again.
func TestCrashReopenRebuildsEmpty(t *testing.T) {
	cfg := testConfig(t)
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for z := 0; z < 3; z++ {
		if _, _, err := d.AppendPage(z, pageOf(0x55, cfg.PageSize)); err != nil {
			t.Fatal(err)
		}
	}
	// "Crash": close without RemoveOnClose, leaving the image file behind.
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(cfg.Path); err != nil {
		t.Fatalf("image missing after close: %v", err)
	}

	d2 := openTest(t, cfg)
	for z := 0; z < cfg.Zones; z++ {
		if wp := d2.ZoneWP(z); wp != 0 {
			t.Fatalf("zone %d wp = %d after reopen, want 0", z, wp)
		}
	}
	if d2.OpenZones() != 0 {
		t.Fatalf("OpenZones = %d after reopen, want 0", d2.OpenZones())
	}
	dst := pageOf(0xEE, cfg.PageSize)
	if _, err := d2.ReadPage(0, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, make([]byte, cfg.PageSize)) {
		t.Fatal("pre-crash contents readable after reopen")
	}
	// And the whole device is writable: stale file bytes never surface.
	for z := 0; z < cfg.Zones; z++ {
		for i := 0; i < cfg.PagesPerZone; i++ {
			if _, _, err := d2.AppendPage(z, pageOf(0x66, cfg.PageSize)); err != nil {
				t.Fatalf("zone %d page %d after reopen: %v", z, i, err)
			}
		}
	}
}

func TestCloseIdempotentAndRemoveOnClose(t *testing.T) {
	cfg := testConfig(t)
	cfg.RemoveOnClose = true
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(cfg.Path); !os.IsNotExist(err) {
		t.Fatalf("image still present after RemoveOnClose close: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestFaultHooksOutsideZoneLocks pins the blockable-fault contract shared
// with flashsim: a fault hook that parks its caller must not hold the zone
// lock, so I/O on other zones — and state inspection — proceeds.
func TestFaultHooksOutsideZoneLocks(t *testing.T) {
	d := openTest(t, testConfig(t))
	injected := errors.New("injected write fault")

	block := make(chan struct{})
	entered := make(chan struct{}, 1)
	d.SetWriteFault(func(zone int) error {
		if zone == 0 {
			entered <- struct{}{}
			<-block // park while blocked: must not hold zone 0's lock
			return injected
		}
		return nil
	})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, _, err := d.AppendPage(0, pageOf(1, d.PageSize())); !errors.Is(err, injected) {
			t.Errorf("faulted append: err = %v, want injected fault", err)
		}
	}()
	<-entered
	// While the zone-0 append is parked in its hook, zone 0 state reads and
	// other-zone appends must not deadlock.
	if wp := d.ZoneWP(0); wp != 0 {
		t.Fatalf("wp = %d while append parked in fault hook, want 0", wp)
	}
	if _, _, err := d.AppendPage(1, pageOf(1, d.PageSize())); err != nil {
		t.Fatal(err)
	}
	close(block)
	wg.Wait()
	// The faulted append happened before any state change.
	if wp := d.ZoneWP(0); wp != 0 {
		t.Fatalf("wp = %d after faulted append, want 0", wp)
	}

	d.SetWriteFault(nil)
	page, _, err := d.AppendPage(0, pageOf(2, d.PageSize()))
	if err != nil {
		t.Fatal(err)
	}
	readErr := errors.New("injected read fault")
	d.SetReadFault(func(p int) error {
		if p == page {
			return readErr
		}
		return nil
	})
	dst := make([]byte, d.PageSize())
	if _, err := d.ReadPage(page, dst); !errors.Is(err, readErr) {
		t.Fatalf("faulted read: err = %v, want injected fault", err)
	}
	d.SetReadFault(nil)
	if _, err := d.ReadPage(page, dst); err != nil {
		t.Fatal(err)
	}
}

func TestReadPagesAndAppendMultiPage(t *testing.T) {
	d := openTest(t, testConfig(t))
	payload := make([]byte, d.PageSize()*2+100) // 2 full pages + a short tail
	for i := range payload {
		payload[i] = byte(i)
	}
	first, _, err := d.Append(0, payload)
	if err != nil {
		t.Fatal(err)
	}
	if wp := d.ZoneWP(0); wp != 3 {
		t.Fatalf("wp = %d after 2.2-page append, want 3", wp)
	}
	pages := []int{first, first + 1, first + 2}
	dst := make([][]byte, len(pages))
	for i := range dst {
		dst[i] = make([]byte, d.PageSize())
	}
	if _, err := d.ReadPages(pages, dst); err != nil {
		t.Fatal(err)
	}
	got := append(append(append([]byte{}, dst[0]...), dst[1]...), dst[2]...)
	want := make([]byte, 3*d.PageSize())
	copy(want, payload)
	if !bytes.Equal(got, want) {
		t.Fatal("multi-page append/read round trip mismatch")
	}
}

func TestOpenDirect(t *testing.T) {
	if !directSupported {
		t.Skip("O_DIRECT not supported on this platform")
	}
	cfg := Config{
		Path:         filepath.Join(t.TempDir(), "nemo-direct.img"),
		PageSize:     4096,
		PagesPerZone: 4,
		Zones:        4,
		Direct:       true,
	}
	d, err := Open(cfg)
	if err != nil {
		// tmpfs (common for t.TempDir on CI) rejects O_DIRECT; that is a
		// property of the filesystem, not a bug in the device.
		t.Skipf("O_DIRECT open failed on this filesystem: %v", err)
	}
	defer d.Close()
	payload := pageOf(0x5A, 1000) // short append exercises the bounce buffer
	page, _, err := d.AppendPage(0, payload)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, cfg.PageSize)
	if _, err := d.ReadPage(page, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst[:1000], payload) || !bytes.Equal(dst[1000:], make([]byte, cfg.PageSize-1000)) {
		t.Fatal("O_DIRECT round trip mismatch")
	}

	// Direct mode with a sub-sector page size must be rejected at Open.
	bad := cfg
	bad.Path = filepath.Join(t.TempDir(), "bad.img")
	bad.PageSize = 512
	if _, err := Open(bad); err == nil {
		t.Fatal("Open accepted Direct with PageSize 512")
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Fatal("Open accepted an empty path")
	}
	cfg := testConfig(t)
	cfg.Zones = -1
	if _, err := Open(cfg); err == nil {
		t.Fatal("Open accepted negative zone count")
	}
}

func TestStatsCount(t *testing.T) {
	d := openTest(t, testConfig(t))
	for i := 0; i < 3; i++ {
		if _, _, err := d.AppendPage(0, pageOf(1, d.PageSize())); err != nil {
			t.Fatal(err)
		}
	}
	dst := make([]byte, d.PageSize())
	for i := 0; i < 2; i++ {
		if _, err := d.ReadPage(i, dst); err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	if st.PagesWritten != 3 || st.PagesRead != 2 {
		t.Fatalf("stats = %+v, want 3 written / 2 read", st)
	}
	if st.BytesWritten != uint64(3*d.PageSize()) || st.BytesRead != uint64(2*d.PageSize()) {
		t.Fatalf("byte stats = %+v", st)
	}
}

// TestErrorSpellingsMatchContract keeps the out-of-range/oversize error
// behaviour aligned with the simulator so engine code can treat both
// uniformly.
func TestErrorSpellingsMatchContract(t *testing.T) {
	d := openTest(t, testConfig(t))
	cases := []error{
		func() error { _, _, err := d.AppendPage(-1, nil); return err }(),
		func() error { _, _, err := d.AppendPage(d.Zones(), nil); return err }(),
		func() error { _, _, err := d.AppendPage(0, make([]byte, d.PageSize()+1)); return err }(),
		func() error { _, err := d.ReadPage(-1, make([]byte, d.PageSize())); return err }(),
		func() error { _, err := d.ReadPage(d.TotalPages(), make([]byte, d.PageSize())); return err }(),
		func() error { _, err := d.ReadPage(0, make([]byte, d.PageSize()-1)); return err }(),
		func() error { _, err := d.ResetZone(d.Zones()); return err }(),
	}
	for i, err := range cases {
		if err == nil {
			t.Fatalf("case %d: invalid call succeeded", i)
		}
	}
}
