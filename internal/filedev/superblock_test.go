package filedev

// Superblock persistence tests: the warm-restart half of the filedev
// contract. A cleanly closed Persist image reopens with its write pointers
// and generation stamp intact; any crash, corruption, or geometry change
// cold-formats with a fresh Boot — pessimism is the spec, not a fallback.

import (
	"os"
	"testing"
)

func persistConfig(t *testing.T) Config {
	cfg := testConfig(t)
	cfg.Persist = true
	return cfg
}

// fillZone appends n pages to the zone, failing the test on error.
func fillZone(t *testing.T, d *Device, zone, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, _, err := d.AppendPage(zone, pageOf(byte(i+1), d.PageSize())); err != nil {
			t.Fatalf("append %d to zone %d: %v", i, zone, err)
		}
	}
}

func TestPersistCleanCloseRestoresState(t *testing.T) {
	cfg := persistConfig(t)
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.Restored() {
		t.Fatal("fresh image claims a warm open")
	}
	fillZone(t, d, 0, 4)
	fillZone(t, d, 3, 2)
	gen := d.Generation()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2 := openTest(t, cfg)
	if !d2.Restored() {
		t.Fatal("clean close did not produce a warm open")
	}
	if got := d2.Generation(); got != gen {
		t.Fatalf("generation %+v across clean close, want %+v", got, gen)
	}
	if d2.ZoneWP(0) != 4 || d2.ZoneWP(3) != 2 || d2.ZoneWP(1) != 0 {
		t.Fatalf("write pointers not restored: %d %d %d", d2.ZoneWP(0), d2.ZoneWP(3), d2.ZoneWP(1))
	}
	// The restored zone contents are readable, not just the pointers.
	buf := make([]byte, d2.PageSize())
	if _, err := d2.ReadPage(d2.PageAddr(0, 2), buf); err != nil {
		t.Fatalf("reading restored page: %v", err)
	}
	if buf[0] != 3 {
		t.Fatalf("restored page content %#x, want 0x03", buf[0])
	}
}

func TestPersistCrashColdFormats(t *testing.T) {
	cfg := persistConfig(t)
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fillZone(t, d, 0, 4)
	gen := d.Generation()
	// Crash: drop the device without Close. The first mutation already
	// zeroed the superblock, so the on-disk image has no valid metadata.
	d.f.Close()

	d2 := openTest(t, cfg)
	if d2.Restored() {
		t.Fatal("crashed image produced a warm open")
	}
	if d2.ZoneWP(0) != 0 {
		t.Fatalf("cold format kept write pointer %d", d2.ZoneWP(0))
	}
	if g := d2.Generation(); g.Boot == gen.Boot {
		t.Fatal("cold format reused the crashed life's Boot stamp")
	}
}

func TestPersistFirstMutationInvalidates(t *testing.T) {
	cfg := persistConfig(t)
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fillZone(t, d, 0, 1)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Warm open, then one mutation: the superblock page must be zeroed on
	// disk immediately (invalidate-then-mutate), before Close rewrites it.
	d2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !d2.Restored() {
		t.Fatal("expected warm open")
	}
	fillZone(t, d2, 1, 1)
	raw := make([]byte, sbSize(cfg.Zones))
	if _, err := d2.f.ReadAt(raw, d2.sbOffset()); err != nil {
		t.Fatal(err)
	}
	for i, b := range raw {
		if b != 0 {
			t.Fatalf("superblock byte %d is %#x after first mutation, want zeroed page", i, b)
		}
	}
	// A crash now (no Close) must cold-format the next open.
	d2.f.Close()
	d3 := openTest(t, cfg)
	if d3.Restored() {
		t.Fatal("post-mutation crash still warm-opened")
	}
}

func TestPersistResetAlsoInvalidates(t *testing.T) {
	cfg := persistConfig(t)
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fillZone(t, d, 2, 3)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantWrites := d2.Generation().Writes
	if _, err := d2.ResetZone(2); err != nil {
		t.Fatal(err)
	}
	if got := d2.Generation().Writes; got != wantWrites+1 {
		t.Fatalf("reset bumped Writes to %d, want %d", got, wantWrites+1)
	}
	d2.f.Close() // crash after the reset
	d3 := openTest(t, cfg)
	if d3.Restored() {
		t.Fatal("crash after ResetZone still warm-opened")
	}
}

func TestPersistCorruptSuperblockColdFormats(t *testing.T) {
	cfg := persistConfig(t)
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fillZone(t, d, 0, 2)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one byte inside the superblock region on disk.
	f, err := os.OpenFile(cfg.Path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(cfg.PageSize * cfg.PagesPerZone * cfg.Zones)
	var b [1]byte
	if _, err := f.ReadAt(b[:], off+20); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], off+20); err != nil {
		t.Fatal(err)
	}
	f.Close()

	d2 := openTest(t, cfg)
	if d2.Restored() {
		t.Fatal("corrupt superblock produced a warm open")
	}
	if d2.ZoneWP(0) != 0 {
		t.Fatal("corrupt superblock still restored write pointers")
	}
	// The stale superblock must have been zeroed by the cold format, so a
	// third open (after a crash, with no mutations in between) stays cold
	// instead of resurrecting it.
	d2.f.Close()
	d3 := openTest(t, cfg)
	if d3.Restored() {
		t.Fatal("zeroed superblock came back to life")
	}
}

func TestPersistGeometryChangeColdFormats(t *testing.T) {
	cfg := persistConfig(t)
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fillZone(t, d, 0, 2)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Same image, one more zone: the superblock's geometry no longer
	// matches, so the open must be cold even though the CRC is intact.
	bigger := cfg
	bigger.Zones = cfg.Zones + 1
	d2 := openTest(t, bigger)
	if d2.Restored() {
		t.Fatal("geometry change still warm-opened")
	}
}

func TestPersistSuperblockMustFitPage(t *testing.T) {
	cfg := persistConfig(t)
	cfg.PageSize = 64 // sbSize(8 zones) = 32+4*8+4 = 68 > 64
	if _, err := Open(cfg); err == nil {
		t.Fatal("Open accepted a Persist config whose superblock exceeds a page")
	}
}

func TestVolatileOpenNeverRestores(t *testing.T) {
	cfg := testConfig(t)
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fillZone(t, d, 0, 2)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Persist = false
	d2 := openTest(t, cfg2)
	if d2.Restored() {
		t.Fatal("volatile open claims restoration")
	}
	if d2.ZoneWP(0) != 0 {
		t.Fatal("volatile reopen kept write pointers")
	}
}
