package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// IntCDF tracks a distribution over small non-negative integers with an
// overflow bucket, matching the paper's "number of objects written to a set"
// CDFs (Figures 4 and 5, buckets 0..9 and "10+").
type IntCDF struct {
	counts []uint64 // counts[i] for value i; counts[len-1] is the overflow
	total  uint64
	sum    float64
}

// NewIntCDF returns a CDF over values 0..max with an overflow bucket for
// values > max.
func NewIntCDF(max int) *IntCDF {
	if max < 0 {
		max = 0
	}
	return &IntCDF{counts: make([]uint64, max+2)}
}

// Add records one observation of v (negative values count as 0).
func (c *IntCDF) Add(v int) {
	if v < 0 {
		v = 0
	}
	idx := v
	if idx >= len(c.counts)-1 {
		idx = len(c.counts) - 1
	}
	c.counts[idx]++
	c.total++
	c.sum += float64(v)
}

// Total returns the number of observations.
func (c *IntCDF) Total() uint64 { return c.total }

// Mean returns the mean of the recorded values (overflowed values contribute
// their true value, not the bucket cap).
func (c *IntCDF) Mean() float64 {
	if c.total == 0 {
		return 0
	}
	return c.sum / float64(c.total)
}

// CDF returns the cumulative distribution: out[i] = P(value ≤ i), with the
// final element covering the overflow bucket (always 1 for non-empty data).
func (c *IntCDF) CDF() []float64 {
	out := make([]float64, len(c.counts))
	if c.total == 0 {
		return out
	}
	var run uint64
	for i, n := range c.counts {
		run += n
		out[i] = float64(run) / float64(c.total)
	}
	return out
}

// AtMost returns P(value ≤ v).
func (c *IntCDF) AtMost(v int) float64 {
	if c.total == 0 {
		return 0
	}
	var run uint64
	for i := 0; i <= v && i < len(c.counts)-1; i++ {
		run += c.counts[i]
	}
	if v >= len(c.counts)-1 {
		run = c.total
	}
	return float64(run) / float64(c.total)
}

// String renders the CDF as "≤0:12.3% ≤1:45.6% ... 10+:100%".
func (c *IntCDF) String() string {
	cdf := c.CDF()
	var b strings.Builder
	for i, p := range cdf {
		if i == len(cdf)-1 {
			fmt.Fprintf(&b, "%d+:%.1f%%", i, p*100)
		} else {
			fmt.Fprintf(&b, "≤%d:%.1f%% ", i, p*100)
		}
	}
	return b.String()
}

// Series is a named sequence of (x, y) samples, the output form of the
// figure experiments.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends one sample.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.X) }

// Last returns the final y value, or 0 when empty.
func (s *Series) Last() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	return s.Y[len(s.Y)-1]
}

// FillRateCDF summarizes a set of fill-rate observations (0..1) as a CDF
// evaluated at the given thresholds; used by the Figure 8 experiment.
func FillRateCDF(rates []float64, thresholds []float64) []float64 {
	sorted := append([]float64(nil), rates...)
	sort.Float64s(sorted)
	out := make([]float64, len(thresholds))
	if len(sorted) == 0 {
		return out
	}
	for i, t := range thresholds {
		// count of rates ≤ t
		n := sort.SearchFloat64s(sorted, t+1e-12)
		out[i] = float64(n) / float64(len(sorted))
	}
	return out
}

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
