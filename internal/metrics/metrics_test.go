package metrics

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramSingleValue(t *testing.T) {
	var h Histogram
	h.Record(100 * time.Microsecond)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got < 90*time.Microsecond || got > 110*time.Microsecond {
			t.Fatalf("q=%v: got %v, want ≈100µs", q, got)
		}
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(1))
	n := 100000
	for i := 0; i < n; i++ {
		h.Record(time.Duration(rng.Int63n(int64(time.Millisecond))))
	}
	// Uniform [0, 1ms): p50 ≈ 0.5ms within bucket error (~7%).
	p50 := h.Quantile(0.5)
	if p50 < 450*time.Microsecond || p50 > 560*time.Microsecond {
		t.Fatalf("p50 = %v, want ≈500µs", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 900*time.Microsecond || p99 > 1100*time.Microsecond {
		t.Fatalf("p99 = %v, want ≈990µs", p99)
	}
}

func TestHistogramMonotoneQuantiles(t *testing.T) {
	f := func(vals []uint32) bool {
		var h Histogram
		for _, v := range vals {
			h.Record(time.Duration(v))
		}
		prev := time.Duration(-1)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.9, 0.99, 0.9999} {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMinMaxBounds(t *testing.T) {
	f := func(vals []uint32) bool {
		if len(vals) == 0 {
			return true
		}
		var h Histogram
		min, max := time.Duration(vals[0]), time.Duration(vals[0])
		for _, v := range vals {
			d := time.Duration(v)
			h.Record(d)
			if d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
		return h.Min() == min && h.Max() == max && h.Quantile(0.5) <= max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Record(time.Duration(i) * time.Microsecond)
		b.Record(time.Duration(i+100) * time.Microsecond)
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d, want 200", a.Count())
	}
	if a.Max() != b.Max() {
		t.Fatalf("merged max = %v, want %v", a.Max(), b.Max())
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Record(-5 * time.Second)
	if h.Max() != 0 || h.Count() != 1 {
		t.Fatal("negative value should clamp to zero")
	}
}

func TestIntCDF(t *testing.T) {
	c := NewIntCDF(10)
	for v := 0; v <= 15; v++ {
		c.Add(v)
	}
	cdf := c.CDF()
	if cdf[len(cdf)-1] != 1.0 {
		t.Fatalf("final CDF = %v, want 1", cdf[len(cdf)-1])
	}
	// Values 0..10 are 11/16 of the mass at bucket 10.
	if got, want := c.AtMost(10), 11.0/16.0; got != want {
		t.Fatalf("AtMost(10) = %v, want %v", got, want)
	}
	if got := c.Mean(); got != 7.5 {
		t.Fatalf("mean = %v, want 7.5", got)
	}
}

func TestIntCDFMonotone(t *testing.T) {
	f := func(vals []uint8) bool {
		c := NewIntCDF(10)
		for _, v := range vals {
			c.Add(int(v))
		}
		cdf := c.CDF()
		prev := 0.0
		for _, p := range cdf {
			if p < prev || p > 1.0000001 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRatioWindow(t *testing.T) {
	w := NewRatioWindow(10)
	for i := 0; i < 100; i++ {
		w.Observe(i%2 == 0)
	}
	if got := w.Overall(); got != 0.5 {
		t.Fatalf("overall = %v, want 0.5", got)
	}
	s := w.Series()
	if s.Len() != 10 {
		t.Fatalf("series has %d points, want 10", s.Len())
	}
	for _, y := range s.Y {
		if y != 0.5 {
			t.Fatalf("window ratio = %v, want 0.5", y)
		}
	}
}

func TestFillRateCDF(t *testing.T) {
	rates := []float64{0.1, 0.2, 0.3, 0.4}
	cdf := FillRateCDF(rates, []float64{0.0, 0.25, 0.5, 1.0})
	want := []float64{0, 0.5, 1, 1}
	for i := range want {
		if cdf[i] != want[i] {
			t.Fatalf("cdf[%d] = %v, want %v", i, cdf[i], want[i])
		}
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Add(1, 2)
	s.Add(3, 4)
	if s.Len() != 2 || s.Last() != 4 {
		t.Fatalf("series state wrong: len=%d last=%v", s.Len(), s.Last())
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("mean of empty should be 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean of 1,2,3 should be 2")
	}
}
