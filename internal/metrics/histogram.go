// Package metrics provides the measurement primitives shared by every
// experiment: log-bucketed latency histograms (p50/p99/p9999), small-integer
// CDFs (objects-per-set-write distributions), windowed ratio trackers (miss
// ratio, passive-migration fraction), and (x, y) series for the figures.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"time"
)

const (
	subBucketBits  = 4 // 16 linear sub-buckets per power of two
	subBuckets     = 1 << subBucketBits
	histogramSlots = 64 * subBuckets
)

// Histogram is a log-bucketed histogram of non-negative durations with ~6%
// relative error per bucket, suitable for tail-latency percentiles. The zero
// value is ready to use. Histogram is not safe for concurrent use.
type Histogram struct {
	counts [histogramSlots]uint64
	total  uint64
	sum    float64
	max    time.Duration
	min    time.Duration
}

func bucketIndex(v int64) int {
	if v < subBuckets {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // position of the top bit, ≥ subBucketBits
	sub := int((uint64(v) >> (uint(exp) - subBucketBits)) & (subBuckets - 1))
	return (exp-subBucketBits+1)*subBuckets + sub
}

// bucketValue returns a representative (upper-edge) value for slot i.
func bucketValue(i int) int64 {
	if i < subBuckets {
		return int64(i)
	}
	exp := i/subBuckets + subBucketBits - 1
	sub := i % subBuckets
	base := int64(1) << uint(exp)
	return base + int64(sub+1)*(base>>subBucketBits) - 1
}

// Record adds one observation. Negative values are clamped to zero.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	if h.total == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.counts[bucketIndex(int64(d))]++
	h.total++
	h.sum += float64(d)
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the arithmetic mean of the observations, or 0 when empty.
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sum / float64(h.total))
}

// Max returns the largest recorded observation.
func (h *Histogram) Max() time.Duration { return h.max }

// Min returns the smallest recorded observation, or 0 when empty.
func (h *Histogram) Min() time.Duration { return h.min }

// Quantile returns an estimate of the q-quantile (0 ≤ q ≤ 1). Empty
// histograms return 0.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			v := bucketValue(i)
			if time.Duration(v) > h.max {
				return h.max
			}
			return time.Duration(v)
		}
	}
	return h.max
}

// Merge adds all observations of other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.total == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.total == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.total += other.total
	h.sum += other.sum
}

// Reset clears the histogram to its empty state.
func (h *Histogram) Reset() { *h = Histogram{} }

// Snapshot summarizes the common percentiles used throughout the paper.
type Snapshot struct {
	Count                 uint64
	Mean                  time.Duration
	P50, P99, P9999, Pmax time.Duration
}

// Snapshot returns the standard percentile summary.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count: h.total,
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P99:   h.Quantile(0.99),
		P9999: h.Quantile(0.9999),
		Pmax:  h.max,
	}
}

// String renders the snapshot compactly, e.g. for progress logs.
func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v p9999=%v max=%v",
		s.Count, s.Mean, s.P50, s.P99, s.P9999, s.Pmax)
}
