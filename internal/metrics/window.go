package metrics

// RatioWindow tracks a hit/total ratio over fixed-size windows of events and
// records one series point per completed window. It backs the miss-ratio
// trend (Figure 16) and the passive-migration fraction trend (Figure 6).
type RatioWindow struct {
	WindowSize uint64
	series     Series

	x       float64 // cumulative event count used as the x axis
	hits    uint64
	total   uint64
	allHits uint64
	allTot  uint64
}

// NewRatioWindow returns a tracker that emits one point per windowSize
// events. windowSize must be ≥ 1.
func NewRatioWindow(windowSize uint64) *RatioWindow {
	if windowSize == 0 {
		windowSize = 1
	}
	return &RatioWindow{WindowSize: windowSize}
}

// Observe records one event; hit selects the numerator.
func (w *RatioWindow) Observe(hit bool) {
	w.total++
	w.allTot++
	if hit {
		w.hits++
		w.allHits++
	}
	if w.total >= w.WindowSize {
		w.x += float64(w.total)
		w.series.Add(w.x, float64(w.hits)/float64(w.total))
		w.hits, w.total = 0, 0
	}
}

// Series returns the completed-window points recorded so far.
func (w *RatioWindow) Series() *Series { return &w.series }

// Overall returns the ratio across every observed event (all windows plus
// the partial one), or 0 when nothing was observed.
func (w *RatioWindow) Overall() float64 {
	if w.allTot == 0 {
		return 0
	}
	return float64(w.allHits) / float64(w.allTot)
}

// Count returns the total number of observed events.
func (w *RatioWindow) Count() uint64 { return w.allTot }
