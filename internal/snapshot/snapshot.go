// Package snapshot defines the NEMO1 warm-restart checkpoint: an index-only,
// mmap-friendly image of the per-shard Set-Group metadata — the flashSG
// directory, unsealed Bloom filters, PBFG index-cache contents, zone
// free-list order, epoch counters, and the buffered in-memory SGs — that
// lets a cleanly restarted engine adopt its on-flash state without replaying
// anything. The format follows the FMC1 school of crash-safe metadata:
// magic + version header, fixed-layout little-endian sections each guarded
// by its own CRC, a whole-file CRC footer, single-writer full rewrite, and
// strictly throwaway semantics — a snapshot that fails any validation step
// is worth nothing, the engine cold-formats, and no partial content is ever
// trusted.
//
// # Layout
//
// A snapshot is one contiguous byte image:
//
//	header (64 bytes)
//	  magic "NEMO1\x00\x00\x00"          [8]
//	  version                      u32  (currently 1)
//	  pageSize, pagesPerZone, zones u32 ×3 (device geometry)
//	  boot, writes                 u64  ×2 (device.Generation stamp)
//	  shardCount                   u32
//	  totalLen                     u64  (whole-image length, header included)
//	  reserved                     zeros to byte 64
//	section × (1 + 6·shardCount + 1)
//	  kind u32 | len u32 | crc32(payload) u32 | payload
//
// Sections appear in a fixed order — CONFIG once, then META, FREELISTS,
// GROUPS, MEMQ, ICACHE, FLUSHLOG for each shard in shard order, then a
// FOOTER whose 4-byte payload is the CRC32 of every preceding byte. All
// integers are little-endian; signed values are two's-complement 64-bit,
// floats are IEEE-754 bit patterns, booleans are a single 0/1 byte.
//
// Decoding is canonical: every accepted byte image re-encodes to exactly
// itself (the fuzz corpus pins Encode(Decode(b)) == b), which rules out
// slack bytes, over-long sections, non-binary booleans, and any other
// ambiguity an attacker or a torn write could hide in.
//
// # Validation and trust
//
// Decode validates structure only (magic, version, framing, CRCs, canonical
// encoding) and returns typed errors — ErrTruncated, ErrMagic, ErrVersion,
// ErrChecksum, ErrCorrupt — for every defect. Semantic validation against a
// live device and configuration (geometry match, generation-stamp equality,
// zone-partition and write-pointer cross-checks) happens in internal/core's
// restore path, which reports ErrGeometry, ErrStale, or ErrConfig. Either
// way the failure mode is identical: the engine ignores the snapshot and
// cold-formats. Snapshots carry no cache data — object bytes live on flash —
// so losing one costs a cold start, never correctness.
package snapshot

// File is the in-memory form of one NEMO1 snapshot: the device identity it
// was taken against and every shard's metadata.
type File struct {
	// Device geometry at checkpoint time. Restore requires an exact match.
	PageSize     int
	PagesPerZone int
	Zones        int

	// Generation stamp (device.Generation) sampled after the checkpointed
	// state was captured. Restore requires exact equality with the live
	// device — any append or reset in between invalidates the snapshot.
	Boot   uint64
	Writes uint64

	// Config is the engine configuration stamp; restore requires an exact
	// match so the snapshot's zone layout and sizing are known-compatible.
	Config ConfigStamp

	// Shards holds one entry per engine shard, in shard order.
	Shards []Shard
}

// ConfigStamp mirrors core.Config minus the runtime-only fields (Device,
// Flushers, SnapshotPath): everything that shapes the on-flash layout or
// the meaning of the checkpointed state. A reflection test in core pins the
// two structs field-for-field.
type ConfigStamp struct {
	DataZones         int
	Shards            int
	ZoneOffset        int
	ZonesPerSG        int
	InMemSGs          int
	FlushThreshold    int
	RearFullRatio     float64
	SGsPerIndexGroup  int
	BloomFPR          float64
	TargetObjsPerSet  int
	CachedPBFGRatio   float64
	HotTrackTailRatio float64
	CoolingWriteRatio float64
	BufferedSGs       bool
	DelayedFlush      bool
	Writeback         bool
}

// Shard is one engine shard's complete metadata: epoch counters, statistics,
// free lists, the index-group/SG directory, buffered in-memory SGs, and the
// PBFG index-cache state.
type Shard struct {
	NextSGID       uint64
	NextGroup      int
	SacCount       int
	BytesSinceCool uint64

	// Index-cache counters; ICDroppedUpTo is the dead-group watermark and
	// may be -1 (nothing dropped yet).
	ICLookups     uint64
	ICMisses      uint64
	ICDroppedUpTo int

	Stats Counters
	Extra Extra

	// Free lists in pop order (last element pops first).
	FreeDataZones  []int
	FreeIndexZones []int

	// Groups in creation order; the live SG pool is derived from them (live
	// members in traversal order), so it is not stored separately.
	Groups []Group

	// MemQ is the buffered in-memory SG queue, front first, each set
	// serialized as its full page image. Keeping the buffers in the
	// snapshot is a deliberate, bounded (InMemSGs × SG bytes per shard)
	// deviation from a purely index-only checkpoint: flushing them at
	// checkpoint time would perturb every write-side statistic, and the
	// warm-restart contract is that a checkpointed-and-restored run is
	// stat-for-stat identical to an uninterrupted one.
	MemQ []MemSG

	// ICQueue is the PBFG index-cache FIFO from oldest to newest; ICPages
	// lists which of those keys had a cached page (the page bytes are
	// re-read from flash on restore, so the snapshot stays index-only).
	ICQueue []PBFGRef
	ICPages []PBFGRef

	FlushLog []FlushRec
}

// Group mirrors core's idxGroup: one PBFG index group and its member SGs in
// slot order.
type Group struct {
	ID        int
	Sealed    bool
	LiveCount int
	// Zones holds the sealed group's index zones; nil while unsealed.
	Zones   []int
	Members []SG
	// SlotBF holds the unsealed group's in-memory Bloom filters, one slice
	// per member (setsPerSG filters concatenated); nil once sealed.
	SlotBF [][]byte
}

// SG mirrors core's flashSG: one immutable on-flash Set-Group.
type SG struct {
	ID       uint64
	Slot     int
	Dead     bool
	ObjCount int
	Fill     float64
	// Zones holds the SG's data zones; nil for dead SGs (already reset).
	Zones     []int
	SetCounts []uint16
	// Bits is the 1-bit hotness bitmap; nil when never allocated (the
	// distinction matters — core allocates it lazily).
	Bits []uint64
}

// MemSG is one buffered in-memory SG: accounting plus every set's page
// image (setblock serialization, zero-padded to the page size).
type MemSG struct {
	NewBytes uint64
	WBBytes  uint64
	NewObjs  int
	WBObjs   int
	Sets     [][]byte
}

// PBFGRef names one PBFG page: set offset Set of index group Group.
type PBFGRef struct {
	Group int
	Set   int
}

// Counters mirrors cachelib.Stats field-for-field (pinned by a reflection
// test in core) without importing it, keeping this package dependency-free.
type Counters struct {
	Gets               uint64
	Hits               uint64
	Sets               uint64
	Deletes            uint64
	LogicalBytes       uint64
	FlashBytesWritten  uint64
	DeviceBytesWritten uint64
	FlashBytesRead     uint64
	FlashReadOps       uint64
	ReadErrors         uint64
	WriteErrors        uint64
	Evictions          uint64
}

// Extra mirrors core.NemoStats field-for-field (same reflection pin).
type Extra struct {
	SGsFlushed          uint64
	FillSum             float64
	NewBytes            uint64
	WriteBackBytes      uint64
	WriteBackObjs       uint64
	Sacrificed          uint64
	DataBytesWritten    uint64
	IndexBytesWritten   uint64
	FalsePositiveReads  uint64
	CoolingRuns         uint64
	FlushRecordsDropped uint64
}

// FlushRec mirrors core.FlushRecord.
type FlushRec struct {
	Fill     float64
	NewObjs  int
	WBObjs   int
	NewBytes uint64
	WBBytes  uint64
}
