package snapshot

import (
	"fmt"
	"os"
	"path/filepath"
)

// BeforeRename is the crash-injection point for the checkpoint torture
// tests: when non-nil it runs after the temp file is written, synced, and
// closed, but before the rename over the destination. Returning an error
// abandons the save exactly as a crash at that instant would — the temp
// file is left on disk and the previous snapshot stays untouched (boot
// must tolerate both). Always nil outside tests.
var BeforeRename func(tmpPath string) error

// Save writes f to path atomically: the image is encoded in full, written
// to a temporary file in the same directory, synced, and renamed over the
// destination. A crash mid-save therefore leaves either the previous
// complete snapshot or none — never a torn one (and a torn rename survivor
// would still be refused by Decode's CRCs; atomicity just preserves the
// previous good snapshot in that case). The orphaned temp file a crash
// leaves behind is inert: Load reads only the snapshot path itself, and
// later saves pick fresh temp names.
func Save(path string, f *File) error {
	b := Encode(f)
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("snapshot: creating temp file: %w", err)
	}
	crashed := false
	defer func() {
		if !crashed {
			os.Remove(tmp.Name()) // no-op after a successful rename
		}
	}()
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot: writing %s: %w", tmp.Name(), err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot: syncing %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("snapshot: closing %s: %w", tmp.Name(), err)
	}
	if hook := BeforeRename; hook != nil {
		if err := hook(tmp.Name()); err != nil {
			crashed = true
			return fmt.Errorf("snapshot: %w", err)
		}
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("snapshot: renaming into place: %w", err)
	}
	return nil
}

// Load reads and decodes the snapshot at path. Decode failures carry the
// package's typed sentinels; a missing file surfaces as the os error
// (errors.Is(err, fs.ErrNotExist)), which callers treat as "no snapshot,
// cold start" rather than a defect.
func Load(path string) (*File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f, err := Decode(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}
