package snapshot

import (
	"bytes"
	"testing"
)

// FuzzSnapshotLoad fuzzes Decode with arbitrary bytes. The contract under
// test is the throwaway trust model end to end: no input may panic or hang,
// every rejection must be one of the package's typed sentinels, and every
// ACCEPTED input must be canonical — it re-encodes to exactly itself, so no
// two distinct byte images decode to the same state and no slack bytes hide
// inside a valid snapshot. The checked-in corpus under
// testdata/fuzz/FuzzSnapshotLoad seeds real engine checkpoints (taken via
// core.Checkpoint on populated sim caches), so mutation starts from deep
// inside the valid format rather than bouncing off the magic check.
func FuzzSnapshotLoad(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte(magic))
	valid := Encode(sampleFile())
	f.Add(valid)
	for _, cut := range []int{headerSize - 1, headerSize, headerSize + sectionHdrSize, len(valid) / 2, len(valid) - 1} {
		f.Add(valid[:cut])
	}
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := Decode(data)
		if err != nil {
			if !isTypedDecodeErr(err) {
				t.Fatalf("untyped Decode error: %v", err)
			}
			return
		}
		if again := Encode(decoded); !bytes.Equal(again, data) {
			t.Fatalf("accepted image is not canonical: re-encode differs at byte %d of %d", firstDiff(data, again), len(data))
		}
	})
}
