package snapshot

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestSaveCrashBeforeRename is the crash-mid-checkpoint torture at the file
// layer: a save killed between writing the temp file and renaming it into
// place must leave the previous snapshot byte-for-byte intact — and the
// orphaned temp file it drops must be inert, neither confusing Load nor a
// later Save.
func TestSaveCrashBeforeRename(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "nemo.snap")

	// First checkpoint lands normally.
	first := sampleFile()
	if err := Save(path, first); err != nil {
		t.Fatalf("first save: %v", err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Second checkpoint crashes at the injection point.
	second := sampleFile()
	second.Writes = first.Writes + 1000
	crash := errors.New("crash injected before rename")
	var tmpPath string
	BeforeRename = func(p string) error { tmpPath = p; return crash }
	defer func() { BeforeRename = nil }()
	if err := Save(path, second); !errors.Is(err, crash) {
		t.Fatalf("crashed save returned %v, want the injected crash", err)
	}
	BeforeRename = nil

	// The crash's droppings: the temp file is still on disk, fully written.
	if tmpPath == "" {
		t.Fatal("hook never ran")
	}
	if _, err := os.Stat(tmpPath); err != nil {
		t.Fatalf("orphan temp file missing after crash: %v", err)
	}

	// The previous snapshot is untouched and still loads.
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatal("snapshot bytes changed across a crashed save")
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("load after crashed save: %v", err)
	}
	if got.Writes != first.Writes {
		t.Fatalf("loaded Writes = %d, want the pre-crash %d", got.Writes, first.Writes)
	}

	// A later save succeeds with the orphan still sitting beside it, and
	// Load then returns the new snapshot.
	if err := Save(path, second); err != nil {
		t.Fatalf("save after crash: %v", err)
	}
	got, err = Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Writes != second.Writes {
		t.Fatalf("loaded Writes = %d, want %d", got.Writes, second.Writes)
	}
	if _, err := os.Stat(tmpPath); err != nil {
		t.Fatalf("recovery save disturbed the orphan temp file: %v", err)
	}
}
