package snapshot

import (
	"bytes"
	"errors"
	"io/fs"
	"path/filepath"
	"reflect"
	"testing"
)

// sampleFile builds a small but structurally rich snapshot: two shards, a
// sealed and an unsealed group, dead and live SGs, a lazily-absent and a
// present hotness bitmap, cached and uncached PBFG refs, and a flush log.
func sampleFile() *File {
	return &File{
		PageSize: 512, PagesPerZone: 16, Zones: 24,
		Boot: 7, Writes: 421,
		Config: ConfigStamp{
			DataZones: 8, Shards: 2, ZonesPerSG: 1, InMemSGs: 2,
			FlushThreshold: 8, RearFullRatio: 0.8, SGsPerIndexGroup: 4,
			BloomFPR: 0.001, TargetObjsPerSet: 8, CachedPBFGRatio: 0.5,
			HotTrackTailRatio: 0.3, CoolingWriteRatio: 0.1,
			BufferedSGs: true, DelayedFlush: true, Writeback: true,
		},
		Shards: []Shard{
			{
				NextSGID: 6, NextGroup: 2, SacCount: 3, BytesSinceCool: 999,
				ICLookups: 40, ICMisses: 9, ICDroppedUpTo: -1,
				Stats:          Counters{Gets: 100, Hits: 61, Sets: 50, LogicalBytes: 12345},
				Extra:          Extra{SGsFlushed: 5, FillSum: 4.25, NewBytes: 4096},
				FreeDataZones:  []int{3, 2},
				FreeIndexZones: []int{9},
				Groups: []Group{
					{
						ID: 0, Sealed: true, LiveCount: 1, Zones: []int{8},
						Members: []SG{
							{ID: 2, Slot: 0, Dead: true, ObjCount: 0, SetCounts: make([]uint16, 16)},
							{ID: 3, Slot: 1, ObjCount: 2, Fill: 0.5, Zones: []int{1},
								SetCounts: append([]uint16{1, 1}, make([]uint16, 14)...),
								Bits:      []uint64{0b10}},
							{ID: 4, Slot: 2, Dead: true, SetCounts: make([]uint16, 16)},
							{ID: 5, Slot: 3, ObjCount: 1, Fill: 0.25, Zones: []int{0},
								SetCounts: append([]uint16{1}, make([]uint16, 15)...)},
						},
					},
					{
						ID: 1, LiveCount: 1,
						Members: []SG{{ID: 5, Slot: 0, ObjCount: 0, SetCounts: make([]uint16, 16)}},
						SlotBF:  [][]byte{bytes.Repeat([]byte{0xAB}, 16*4)},
					},
				},
				MemQ: []MemSG{
					{NewBytes: 80, NewObjs: 2, Sets: [][]byte{make([]byte, 512), make([]byte, 512)}},
					{Sets: [][]byte{make([]byte, 512), make([]byte, 512)}},
				},
				ICQueue:  []PBFGRef{{Group: 0, Set: 1}, {Group: 0, Set: 3}},
				ICPages:  []PBFGRef{{Group: 0, Set: 1}},
				FlushLog: []FlushRec{{Fill: 0.5, NewObjs: 10, NewBytes: 800}, {Fill: 0.75, WBObjs: 1, WBBytes: 80}},
			},
			{
				NextSGID: 1, NextGroup: 1, ICDroppedUpTo: -1,
				FreeDataZones:  []int{15, 14, 13, 12},
				FreeIndexZones: []int{21, 20},
				MemQ: []MemSG{
					{Sets: [][]byte{make([]byte, 512), make([]byte, 512)}},
					{Sets: [][]byte{make([]byte, 512), make([]byte, 512)}},
				},
			},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := sampleFile()
	b := Encode(f)
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(f, got) {
		t.Fatalf("decoded File differs from original:\n got %+v\nwant %+v", got, f)
	}
	if again := Encode(got); !bytes.Equal(again, b) {
		t.Fatalf("encoding is not canonical: re-encode differs at byte %d", firstDiff(b, again))
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// decodeSentinels are the errors Decode is allowed to return; anything else
// (or a panic) breaks the throwaway contract.
var decodeSentinels = []error{ErrTruncated, ErrMagic, ErrVersion, ErrChecksum, ErrCorrupt}

func isTypedDecodeErr(err error) bool {
	for _, s := range decodeSentinels {
		if errors.Is(err, s) {
			return true
		}
	}
	return false
}

// TestDecodeRejectsEveryByteFlip is the exhaustive single-corruption sweep:
// flipping any one byte anywhere in a valid image must yield a typed error —
// every byte is covered by the header checks, a section CRC, or the footer.
func TestDecodeRejectsEveryByteFlip(t *testing.T) {
	b := Encode(sampleFile())
	for i := range b {
		mut := append([]byte(nil), b...)
		mut[i] ^= 0xFF
		f, err := Decode(mut)
		if err == nil {
			t.Fatalf("byte %d flipped: Decode accepted the corrupt image (%v)", i, f.Config)
		}
		if !isTypedDecodeErr(err) {
			t.Fatalf("byte %d flipped: untyped error %v", i, err)
		}
	}
}

// TestDecodeRejectsEveryTruncation truncates at every section boundary and
// at a stride of raw offsets; all must fail typed, none may panic.
func TestDecodeRejectsEveryTruncation(t *testing.T) {
	b := Encode(sampleFile())
	offs, err := SectionOffsets(b)
	if err != nil {
		t.Fatalf("SectionOffsets: %v", err)
	}
	cuts := append([]int(nil), offs...)
	for o := 0; o < len(b); o += 7 {
		cuts = append(cuts, o)
	}
	for _, o := range cuts {
		if o == len(b) {
			continue
		}
		if _, err := Decode(b[:o]); err == nil {
			t.Fatalf("truncated at %d: Decode accepted", o)
		} else if !isTypedDecodeErr(err) {
			t.Fatalf("truncated at %d: untyped error %v", o, err)
		}
	}
}

func TestDecodeTypedErrors(t *testing.T) {
	valid := Encode(sampleFile())
	mut := func(i int, v byte) []byte {
		b := append([]byte(nil), valid...)
		b[i] = v
		return b
	}
	cases := []struct {
		name string
		b    []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short header", valid[:10], ErrTruncated},
		{"bad magic", mut(0, 'X'), ErrMagic},
		{"bad version", mut(8, 99), ErrVersion},
		{"reserved nonzero", mut(55, 1), ErrCorrupt},
		{"trailing slack", append(append([]byte(nil), valid...), 0), ErrCorrupt},
		{"payload flip", mut(headerSize+sectionHdrSize+2, 0xEE), ErrChecksum},
		{"truncated mid-section", valid[:len(valid)-3], ErrTruncated},
	}
	for _, tc := range cases {
		if _, err := Decode(tc.b); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestSectionOffsets(t *testing.T) {
	f := sampleFile()
	b := Encode(f)
	offs, err := SectionOffsets(b)
	if err != nil {
		t.Fatalf("SectionOffsets: %v", err)
	}
	// 0, header end, then one boundary per section: CONFIG + 6 per shard +
	// FOOTER.
	wantLen := 2 + 1 + 6*len(f.Shards) + 1
	if len(offs) != wantLen {
		t.Fatalf("got %d offsets, want %d", len(offs), wantLen)
	}
	for i := 1; i < len(offs); i++ {
		if offs[i] <= offs[i-1] {
			t.Fatalf("offsets not strictly increasing at %d: %v", i, offs)
		}
	}
	if offs[len(offs)-1] != len(b) {
		t.Fatalf("last offset %d != image length %d", offs[len(offs)-1], len(b))
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "nemo.snap")
	f := sampleFile()
	if err := Save(path, f); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !reflect.DeepEqual(f, got) {
		t.Fatal("loaded File differs from saved")
	}
	// Save must be a full rewrite: a second Save over the first succeeds and
	// leaves exactly the new content.
	f.Shards[0].SacCount = 99
	if err := Save(path, f); err != nil {
		t.Fatalf("re-Save: %v", err)
	}
	got, err = Load(path)
	if err != nil {
		t.Fatalf("re-Load: %v", err)
	}
	if got.Shards[0].SacCount != 99 {
		t.Fatal("re-Save did not replace the snapshot")
	}
}

func TestLoadMissingFile(t *testing.T) {
	_, err := Load(filepath.Join(t.TempDir(), "absent.snap"))
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("got %v, want fs.ErrNotExist", err)
	}
	if isTypedDecodeErr(err) {
		t.Fatal("a missing file must not look like a corrupt snapshot")
	}
}
