package snapshot

import "errors"

// Every way a snapshot can be refused is a typed sentinel, matchable with
// errors.Is. The split matters to exactly one consumer decision: all of
// them mean "cold format" (throwaway semantics — no snapshot defect is ever
// worked around), but callers log which wall was hit, and the crash-matrix
// and fuzz tests pin that arbitrary corruption maps onto these and nothing
// else (never a panic, never a silently adopted snapshot).
var (
	// ErrTruncated: the image ends before its declared content does (short
	// header, short section, totalLen past EOF).
	ErrTruncated = errors.New("snapshot: truncated")
	// ErrMagic: the image does not start with the NEMO1 magic.
	ErrMagic = errors.New("snapshot: bad magic")
	// ErrVersion: the format version is not one this code reads.
	ErrVersion = errors.New("snapshot: unsupported version")
	// ErrChecksum: a section CRC or the whole-file footer CRC mismatches.
	ErrChecksum = errors.New("snapshot: checksum mismatch")
	// ErrCorrupt: structurally invalid content behind a valid CRC — framing,
	// ordering, canonical-encoding, or value-domain violations.
	ErrCorrupt = errors.New("snapshot: corrupt")

	// ErrGeometry: the snapshot was taken against a device of different
	// geometry (core restore-time validation).
	ErrGeometry = errors.New("snapshot: device geometry mismatch")
	// ErrStale: the device generation stamp (or the zone write pointers it
	// vouches for) no longer matches — the flash mutated after checkpoint.
	ErrStale = errors.New("snapshot: stale for device")
	// ErrConfig: the engine configuration differs from the checkpoint's
	// ConfigStamp, or the checkpointed state violates the engine's own
	// structural invariants.
	ErrConfig = errors.New("snapshot: configuration mismatch")
)
