package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

const (
	magic      = "NEMO1\x00\x00\x00"
	headerSize = 64
	// Version is the NEMO1 format version this code writes and the only one
	// it reads. There is no cross-version migration by design: an old
	// snapshot is throwaway, exactly like a corrupt one.
	Version = 1

	sectionHdrSize = 12 // kind u32 | len u32 | crc32 u32
)

// Section kinds, in the exact order they must appear.
const (
	secConfig   = 1
	secMeta     = 2
	secFree     = 3
	secGroups   = 4
	secMemQ     = 5
	secICache   = 6
	secFlushLog = 7
	secFooter   = 8
)

// shardSections lists the per-shard section kinds in order.
var shardSections = [...]uint32{secMeta, secFree, secGroups, secMemQ, secICache, secFlushLog}

// writer accumulates little-endian primitives.
type writer struct{ b []byte }

func (w *writer) u16(v uint16)  { w.b = binary.LittleEndian.AppendUint16(w.b, v) }
func (w *writer) u32(v uint32)  { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *writer) u64(v uint64)  { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *writer) i64(v int)     { w.u64(uint64(int64(v))) }
func (w *writer) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *writer) boolean(v bool) {
	if v {
		w.b = append(w.b, 1)
	} else {
		w.b = append(w.b, 0)
	}
}
func (w *writer) blob(p []byte) {
	w.u32(uint32(len(p)))
	w.b = append(w.b, p...)
}
func (w *writer) ints(s []int) {
	w.u32(uint32(len(s)))
	for _, v := range s {
		w.i64(v)
	}
}

// reader consumes little-endian primitives with a sticky error: after the
// first defect every getter returns a zero value and the error survives to
// the caller's final check. Defects inside a CRC-valid section payload are
// ErrCorrupt — the bytes are intact, their content is not a valid encoding.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.b)-r.off < n {
		r.err = ErrCorrupt
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

func (r *reader) u16() uint16 {
	s := r.take(2)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(s)
}

func (r *reader) u32() uint32 {
	s := r.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

func (r *reader) u64() uint64 {
	s := r.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

func (r *reader) i64() int     { return int(int64(r.u64())) }
func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) boolean() bool {
	s := r.take(1)
	if s == nil {
		return false
	}
	switch s[0] {
	case 0:
		return false
	case 1:
		return true
	}
	r.err = ErrCorrupt
	return false
}

// count reads an element count and bounds it by the bytes remaining (min
// bytes per element), so corrupt counts can never drive huge allocations.
func (r *reader) count(min int) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if min > 0 && n > (len(r.b)-r.off)/min {
		r.err = ErrCorrupt
		return 0
	}
	return n
}

// blob reads a length-prefixed byte slice (copied; nil when empty).
func (r *reader) blob() []byte {
	n := r.count(1)
	return append([]byte(nil), r.take(n)...)
}

// ints reads a length-prefixed []int (nil when empty).
func (r *reader) ints() []int {
	n := r.count(8)
	if n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = r.i64()
	}
	return out
}

// done reports the payload fully and cleanly consumed; anything else is the
// sticky error (or ErrCorrupt for slack bytes — canonical encodings leave
// none).
func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return ErrCorrupt
	}
	return nil
}

// Encode serializes f into a complete NEMO1 image. The encoding is
// canonical: Decode of the result yields a File that re-encodes to the
// identical bytes.
func Encode(f *File) []byte {
	w := &writer{b: make([]byte, headerSize)}
	appendSection(w, secConfig, encodeConfig(&f.Config))
	for i := range f.Shards {
		s := &f.Shards[i]
		appendSection(w, secMeta, encodeMeta(s))
		appendSection(w, secFree, encodeFree(s))
		appendSection(w, secGroups, encodeGroups(s))
		appendSection(w, secMemQ, encodeMemQ(s))
		appendSection(w, secICache, encodeICache(s))
		appendSection(w, secFlushLog, encodeFlushLog(s))
	}
	// Header, now that the total length (body + 16-byte footer section) is
	// known — the footer CRC covers the finalized header too.
	h := w.b[:headerSize]
	copy(h, magic)
	binary.LittleEndian.PutUint32(h[8:], Version)
	binary.LittleEndian.PutUint32(h[12:], uint32(f.PageSize))
	binary.LittleEndian.PutUint32(h[16:], uint32(f.PagesPerZone))
	binary.LittleEndian.PutUint32(h[20:], uint32(f.Zones))
	binary.LittleEndian.PutUint64(h[24:], f.Boot)
	binary.LittleEndian.PutUint64(h[32:], f.Writes)
	binary.LittleEndian.PutUint32(h[40:], uint32(len(f.Shards)))
	binary.LittleEndian.PutUint64(h[44:], uint64(len(w.b)+sectionHdrSize+4))
	var footer writer
	footer.u32(crc32.ChecksumIEEE(w.b))
	appendSection(w, secFooter, footer.b)
	return w.b
}

func appendSection(w *writer, kind uint32, payload []byte) {
	w.u32(kind)
	w.u32(uint32(len(payload)))
	w.u32(crc32.ChecksumIEEE(payload))
	w.b = append(w.b, payload...)
}

func encodeConfig(c *ConfigStamp) []byte {
	var w writer
	w.i64(c.DataZones)
	w.i64(c.Shards)
	w.i64(c.ZoneOffset)
	w.i64(c.ZonesPerSG)
	w.i64(c.InMemSGs)
	w.i64(c.FlushThreshold)
	w.f64(c.RearFullRatio)
	w.i64(c.SGsPerIndexGroup)
	w.f64(c.BloomFPR)
	w.i64(c.TargetObjsPerSet)
	w.f64(c.CachedPBFGRatio)
	w.f64(c.HotTrackTailRatio)
	w.f64(c.CoolingWriteRatio)
	w.boolean(c.BufferedSGs)
	w.boolean(c.DelayedFlush)
	w.boolean(c.Writeback)
	return w.b
}

func decodeConfig(b []byte) (ConfigStamp, error) {
	r := &reader{b: b}
	c := ConfigStamp{
		DataZones:         r.i64(),
		Shards:            r.i64(),
		ZoneOffset:        r.i64(),
		ZonesPerSG:        r.i64(),
		InMemSGs:          r.i64(),
		FlushThreshold:    r.i64(),
		RearFullRatio:     r.f64(),
		SGsPerIndexGroup:  r.i64(),
		BloomFPR:          r.f64(),
		TargetObjsPerSet:  r.i64(),
		CachedPBFGRatio:   r.f64(),
		HotTrackTailRatio: r.f64(),
		CoolingWriteRatio: r.f64(),
		BufferedSGs:       r.boolean(),
		DelayedFlush:      r.boolean(),
		Writeback:         r.boolean(),
	}
	return c, r.done()
}

func encodeMeta(s *Shard) []byte {
	var w writer
	w.u64(s.NextSGID)
	w.i64(s.NextGroup)
	w.i64(s.SacCount)
	w.u64(s.BytesSinceCool)
	w.u64(s.ICLookups)
	w.u64(s.ICMisses)
	w.i64(s.ICDroppedUpTo)
	c := &s.Stats
	for _, v := range [...]uint64{c.Gets, c.Hits, c.Sets, c.Deletes,
		c.LogicalBytes, c.FlashBytesWritten, c.DeviceBytesWritten,
		c.FlashBytesRead, c.FlashReadOps, c.ReadErrors, c.WriteErrors,
		c.Evictions} {
		w.u64(v)
	}
	e := &s.Extra
	w.u64(e.SGsFlushed)
	w.f64(e.FillSum)
	for _, v := range [...]uint64{e.NewBytes, e.WriteBackBytes,
		e.WriteBackObjs, e.Sacrificed, e.DataBytesWritten,
		e.IndexBytesWritten, e.FalsePositiveReads, e.CoolingRuns,
		e.FlushRecordsDropped} {
		w.u64(v)
	}
	return w.b
}

func decodeMeta(b []byte, s *Shard) error {
	r := &reader{b: b}
	s.NextSGID = r.u64()
	s.NextGroup = r.i64()
	s.SacCount = r.i64()
	s.BytesSinceCool = r.u64()
	s.ICLookups = r.u64()
	s.ICMisses = r.u64()
	s.ICDroppedUpTo = r.i64()
	s.Stats = Counters{
		Gets: r.u64(), Hits: r.u64(), Sets: r.u64(), Deletes: r.u64(),
		LogicalBytes: r.u64(), FlashBytesWritten: r.u64(),
		DeviceBytesWritten: r.u64(), FlashBytesRead: r.u64(),
		FlashReadOps: r.u64(), ReadErrors: r.u64(), WriteErrors: r.u64(),
		Evictions: r.u64(),
	}
	s.Extra = Extra{SGsFlushed: r.u64(), FillSum: r.f64()}
	s.Extra.NewBytes = r.u64()
	s.Extra.WriteBackBytes = r.u64()
	s.Extra.WriteBackObjs = r.u64()
	s.Extra.Sacrificed = r.u64()
	s.Extra.DataBytesWritten = r.u64()
	s.Extra.IndexBytesWritten = r.u64()
	s.Extra.FalsePositiveReads = r.u64()
	s.Extra.CoolingRuns = r.u64()
	s.Extra.FlushRecordsDropped = r.u64()
	return r.done()
}

func encodeFree(s *Shard) []byte {
	var w writer
	w.ints(s.FreeDataZones)
	w.ints(s.FreeIndexZones)
	return w.b
}

func decodeFree(b []byte, s *Shard) error {
	r := &reader{b: b}
	s.FreeDataZones = r.ints()
	s.FreeIndexZones = r.ints()
	return r.done()
}

func encodeGroups(s *Shard) []byte {
	var w writer
	w.u32(uint32(len(s.Groups)))
	for gi := range s.Groups {
		g := &s.Groups[gi]
		w.i64(g.ID)
		w.boolean(g.Sealed)
		w.i64(g.LiveCount)
		w.ints(g.Zones)
		w.u32(uint32(len(g.Members)))
		for mi := range g.Members {
			m := &g.Members[mi]
			w.u64(m.ID)
			w.i64(m.Slot)
			w.boolean(m.Dead)
			w.i64(m.ObjCount)
			w.f64(m.Fill)
			w.ints(m.Zones)
			w.u32(uint32(len(m.SetCounts)))
			for _, c := range m.SetCounts {
				w.u16(c)
			}
			w.boolean(m.Bits != nil)
			if m.Bits != nil {
				w.u32(uint32(len(m.Bits)))
				for _, word := range m.Bits {
					w.u64(word)
				}
			}
		}
		w.u32(uint32(len(g.SlotBF)))
		for _, bf := range g.SlotBF {
			w.blob(bf)
		}
	}
	return w.b
}

func decodeGroups(b []byte, s *Shard) error {
	r := &reader{b: b}
	ng := r.count(1)
	for gi := 0; gi < ng && r.err == nil; gi++ {
		var g Group
		g.ID = r.i64()
		g.Sealed = r.boolean()
		g.LiveCount = r.i64()
		g.Zones = r.ints()
		nm := r.count(1)
		for mi := 0; mi < nm && r.err == nil; mi++ {
			var m SG
			m.ID = r.u64()
			m.Slot = r.i64()
			m.Dead = r.boolean()
			m.ObjCount = r.i64()
			m.Fill = r.f64()
			m.Zones = r.ints()
			if nc := r.count(2); nc > 0 {
				m.SetCounts = make([]uint16, nc)
				for i := range m.SetCounts {
					m.SetCounts[i] = r.u16()
				}
			}
			if r.boolean() {
				nb := r.count(8)
				m.Bits = make([]uint64, nb)
				for i := range m.Bits {
					m.Bits[i] = r.u64()
				}
			}
			g.Members = append(g.Members, m)
		}
		nbf := r.count(4)
		for i := 0; i < nbf && r.err == nil; i++ {
			g.SlotBF = append(g.SlotBF, r.blob())
		}
		s.Groups = append(s.Groups, g)
	}
	return r.done()
}

func encodeMemQ(s *Shard) []byte {
	var w writer
	w.u32(uint32(len(s.MemQ)))
	for i := range s.MemQ {
		m := &s.MemQ[i]
		w.u64(m.NewBytes)
		w.u64(m.WBBytes)
		w.i64(m.NewObjs)
		w.i64(m.WBObjs)
		w.u32(uint32(len(m.Sets)))
		for _, set := range m.Sets {
			w.blob(set)
		}
	}
	return w.b
}

func decodeMemQ(b []byte, s *Shard) error {
	r := &reader{b: b}
	n := r.count(1)
	for i := 0; i < n && r.err == nil; i++ {
		var m MemSG
		m.NewBytes = r.u64()
		m.WBBytes = r.u64()
		m.NewObjs = r.i64()
		m.WBObjs = r.i64()
		ns := r.count(4)
		for j := 0; j < ns && r.err == nil; j++ {
			m.Sets = append(m.Sets, r.blob())
		}
		s.MemQ = append(s.MemQ, m)
	}
	return r.done()
}

func encodeRefs(w *writer, refs []PBFGRef) {
	w.u32(uint32(len(refs)))
	for _, ref := range refs {
		w.i64(ref.Group)
		w.i64(ref.Set)
	}
}

func decodeRefs(r *reader) []PBFGRef {
	n := r.count(16)
	if n == 0 {
		return nil
	}
	out := make([]PBFGRef, n)
	for i := range out {
		out[i] = PBFGRef{Group: r.i64(), Set: r.i64()}
	}
	return out
}

func encodeICache(s *Shard) []byte {
	var w writer
	encodeRefs(&w, s.ICQueue)
	encodeRefs(&w, s.ICPages)
	return w.b
}

func decodeICache(b []byte, s *Shard) error {
	r := &reader{b: b}
	s.ICQueue = decodeRefs(r)
	s.ICPages = decodeRefs(r)
	return r.done()
}

func encodeFlushLog(s *Shard) []byte {
	var w writer
	w.u32(uint32(len(s.FlushLog)))
	for i := range s.FlushLog {
		rec := &s.FlushLog[i]
		w.f64(rec.Fill)
		w.i64(rec.NewObjs)
		w.i64(rec.WBObjs)
		w.u64(rec.NewBytes)
		w.u64(rec.WBBytes)
	}
	return w.b
}

func decodeFlushLog(b []byte, s *Shard) error {
	r := &reader{b: b}
	n := r.count(40)
	for i := 0; i < n && r.err == nil; i++ {
		s.FlushLog = append(s.FlushLog, FlushRec{
			Fill:     r.f64(),
			NewObjs:  r.i64(),
			WBObjs:   r.i64(),
			NewBytes: r.u64(),
			WBBytes:  r.u64(),
		})
	}
	return r.done()
}

// Decode parses a complete NEMO1 image, validating structure exhaustively:
// magic, version, zeroed reserved bytes, exact total length, strict section
// order, per-section CRCs, the whole-file footer CRC, bounded counts,
// binary booleans, and exact payload consumption. Every defect maps to a
// typed sentinel (ErrTruncated, ErrMagic, ErrVersion, ErrChecksum,
// ErrCorrupt); no input panics. Accepted inputs are canonical —
// Encode(Decode(b)) == b.
func Decode(b []byte) (*File, error) {
	if len(b) < headerSize {
		return nil, fmt.Errorf("%w: %d-byte image is shorter than the %d-byte header", ErrTruncated, len(b), headerSize)
	}
	if string(b[:8]) != magic {
		return nil, ErrMagic
	}
	if v := binary.LittleEndian.Uint32(b[8:]); v != Version {
		return nil, fmt.Errorf("%w: version %d (this build reads %d)", ErrVersion, v, Version)
	}
	f := &File{
		PageSize:     int(binary.LittleEndian.Uint32(b[12:])),
		PagesPerZone: int(binary.LittleEndian.Uint32(b[16:])),
		Zones:        int(binary.LittleEndian.Uint32(b[20:])),
		Boot:         binary.LittleEndian.Uint64(b[24:]),
		Writes:       binary.LittleEndian.Uint64(b[32:]),
	}
	shardCount := binary.LittleEndian.Uint32(b[40:])
	totalLen := binary.LittleEndian.Uint64(b[44:])
	for _, z := range b[52:headerSize] {
		if z != 0 {
			return nil, fmt.Errorf("%w: nonzero reserved header bytes", ErrCorrupt)
		}
	}
	if uint64(len(b)) < totalLen {
		return nil, fmt.Errorf("%w: image is %d bytes of a declared %d", ErrTruncated, len(b), totalLen)
	}
	if uint64(len(b)) > totalLen {
		return nil, fmt.Errorf("%w: %d bytes beyond the declared image length", ErrCorrupt, uint64(len(b))-totalLen)
	}

	off := headerSize
	next := func(kind uint32) ([]byte, error) {
		if len(b)-off < sectionHdrSize {
			return nil, fmt.Errorf("%w: image ends inside a section header", ErrTruncated)
		}
		k := binary.LittleEndian.Uint32(b[off:])
		n := int(binary.LittleEndian.Uint32(b[off+4:]))
		sum := binary.LittleEndian.Uint32(b[off+8:])
		if k != kind {
			return nil, fmt.Errorf("%w: section kind %d where %d was required", ErrCorrupt, k, kind)
		}
		if n < 0 || len(b)-off-sectionHdrSize < n {
			return nil, fmt.Errorf("%w: section %d payload overruns the image", ErrTruncated, kind)
		}
		payload := b[off+sectionHdrSize : off+sectionHdrSize+n]
		if crc32.ChecksumIEEE(payload) != sum {
			return nil, fmt.Errorf("%w: section %d", ErrChecksum, kind)
		}
		off += sectionHdrSize + n
		return payload, nil
	}

	payload, err := next(secConfig)
	if err != nil {
		return nil, err
	}
	if f.Config, err = decodeConfig(payload); err != nil {
		return nil, fmt.Errorf("config section: %w", err)
	}
	for i := uint32(0); i < shardCount; i++ {
		var s Shard
		for _, kind := range shardSections {
			payload, err := next(kind)
			if err != nil {
				return nil, err
			}
			switch kind {
			case secMeta:
				err = decodeMeta(payload, &s)
			case secFree:
				err = decodeFree(payload, &s)
			case secGroups:
				err = decodeGroups(payload, &s)
			case secMemQ:
				err = decodeMemQ(payload, &s)
			case secICache:
				err = decodeICache(payload, &s)
			case secFlushLog:
				err = decodeFlushLog(payload, &s)
			}
			if err != nil {
				return nil, fmt.Errorf("shard %d section %d: %w", i, kind, err)
			}
		}
		f.Shards = append(f.Shards, s)
	}
	footerStart := off
	payload, err = next(secFooter)
	if err != nil {
		return nil, err
	}
	if len(payload) != 4 {
		return nil, fmt.Errorf("%w: footer payload is %d bytes, want 4", ErrCorrupt, len(payload))
	}
	if crc32.ChecksumIEEE(b[:footerStart]) != binary.LittleEndian.Uint32(payload) {
		return nil, fmt.Errorf("%w: whole-file footer", ErrChecksum)
	}
	if off != len(b) {
		return nil, fmt.Errorf("%w: %d bytes after the footer", ErrCorrupt, len(b)-off)
	}
	return f, nil
}

// SectionOffsets walks a well-framed image and returns the byte offsets of
// every structural boundary: 0 (header start), the first section, each
// subsequent section, and len(b) as the final element. It validates framing
// only (not CRCs or payload content) — the crash-matrix tests use it to
// aim truncations and corruptions at exact boundaries.
func SectionOffsets(b []byte) ([]int, error) {
	if len(b) < headerSize {
		return nil, fmt.Errorf("%w: %d-byte image is shorter than the %d-byte header", ErrTruncated, len(b), headerSize)
	}
	offs := []int{0, headerSize}
	off := headerSize
	for off < len(b) {
		if len(b)-off < sectionHdrSize {
			return nil, fmt.Errorf("%w: image ends inside a section header", ErrTruncated)
		}
		n := int(binary.LittleEndian.Uint32(b[off+4:]))
		if n < 0 || len(b)-off-sectionHdrSize < n {
			return nil, fmt.Errorf("%w: section payload overruns the image", ErrTruncated)
		}
		off += sectionHdrSize + n
		offs = append(offs, off)
	}
	return offs, nil
}
