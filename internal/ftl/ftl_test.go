package ftl

import (
	"fmt"
	"math/rand"
	"testing"

	"nemo/internal/flashsim"
)

func mkFTL(t *testing.T, zones int, op float64) (*flashsim.Device, *FTL) {
	t.Helper()
	dev := flashsim.New(flashsim.Config{PageSize: 256, PagesPerZone: 8, Zones: zones})
	f, err := New(dev, 0, zones, Config{OPRatio: op})
	if err != nil {
		t.Fatal(err)
	}
	return dev, f
}

func pageData(f *FTL, lpn, version int) []byte {
	b := make([]byte, 256)
	copy(b, fmt.Sprintf("lpn=%d v=%d", lpn, version))
	return b
}

func TestWriteReadRoundTrip(t *testing.T) {
	_, f := mkFTL(t, 8, 0.3)
	buf := make([]byte, 256)
	for lpn := 0; lpn < f.LogicalPages(); lpn++ {
		if _, err := f.Write(lpn, pageData(f, lpn, 0)); err != nil {
			t.Fatal(err)
		}
	}
	for lpn := 0; lpn < f.LogicalPages(); lpn++ {
		_, mapped, err := f.Read(lpn, buf)
		if err != nil || !mapped {
			t.Fatalf("read lpn %d: mapped=%v err=%v", lpn, mapped, err)
		}
		if string(buf[:20]) != string(pageData(f, lpn, 0)[:20]) {
			t.Fatalf("lpn %d data mismatch", lpn)
		}
	}
}

func TestUnmappedReadZeroFills(t *testing.T) {
	_, f := mkFTL(t, 8, 0.3)
	buf := make([]byte, 256)
	buf[0] = 0xff
	_, mapped, err := f.Read(0, buf)
	if err != nil {
		t.Fatal(err)
	}
	if mapped || buf[0] != 0 {
		t.Fatal("unmapped read should zero-fill and report unmapped")
	}
}

func TestOverwriteSurvivesGC(t *testing.T) {
	_, f := mkFTL(t, 8, 0.4)
	rng := rand.New(rand.NewSource(42))
	versions := make([]int, f.LogicalPages())
	// Enough random overwrites to force many GC cycles.
	for i := 0; i < f.LogicalPages()*30; i++ {
		lpn := rng.Intn(f.LogicalPages())
		versions[lpn]++
		if _, err := f.Write(lpn, pageData(f, lpn, versions[lpn])); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, 256)
	for lpn, v := range versions {
		if v == 0 {
			continue
		}
		_, mapped, err := f.Read(lpn, buf)
		if err != nil || !mapped {
			t.Fatalf("lpn %d unreadable after GC", lpn)
		}
		want := pageData(f, lpn, v)
		if string(buf[:24]) != string(want[:24]) {
			t.Fatalf("lpn %d: got %q want %q", lpn, buf[:24], want[:24])
		}
	}
	st := f.Stats()
	if st.GCRuns == 0 || st.GCPagesWritten == 0 {
		t.Fatalf("expected GC activity, got %+v", st)
	}
	if st.DLWA() <= 1.0 {
		t.Fatalf("DLWA = %v, want > 1 under random overwrites", st.DLWA())
	}
}

func TestHigherOPLowersDLWA(t *testing.T) {
	dlwa := func(op float64) float64 {
		_, f := mkFTL(t, 16, op)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < f.LogicalPages()*40; i++ {
			lpn := rng.Intn(f.LogicalPages())
			if _, err := f.Write(lpn, pageData(f, lpn, i)); err != nil {
				t.Fatal(err)
			}
		}
		return f.Stats().DLWA()
	}
	low := dlwa(0.15)
	high := dlwa(0.5)
	if high >= low {
		t.Fatalf("DLWA at 50%% OP (%v) should be below DLWA at 15%% OP (%v)", high, low)
	}
}

func TestTrimFreesPages(t *testing.T) {
	_, f := mkFTL(t, 8, 0.3)
	f.Write(0, pageData(f, 0, 1))
	f.Trim(0)
	buf := make([]byte, 256)
	_, mapped, _ := f.Read(0, buf)
	if mapped {
		t.Fatal("trimmed page should be unmapped")
	}
}

func TestConfigValidation(t *testing.T) {
	dev := flashsim.New(flashsim.Config{PageSize: 256, PagesPerZone: 8, Zones: 8})
	if _, err := New(dev, 0, 8, Config{OPRatio: 0}); err == nil {
		t.Fatal("zero OP should be rejected")
	}
	if _, err := New(dev, 0, 8, Config{OPRatio: 1.5}); err == nil {
		t.Fatal("OP > 1 should be rejected")
	}
	if _, err := New(dev, 0, 100, Config{OPRatio: 0.3}); err == nil {
		t.Fatal("zone range beyond device should be rejected")
	}
	if _, err := New(dev, 0, 3, Config{OPRatio: 0.3}); err == nil {
		t.Fatal("too few zones should be rejected")
	}
}

func TestWriteBoundsCheck(t *testing.T) {
	_, f := mkFTL(t, 8, 0.3)
	if _, err := f.Write(-1, make([]byte, 256)); err == nil {
		t.Fatal("negative lpn should fail")
	}
	if _, err := f.Write(f.LogicalPages(), make([]byte, 256)); err == nil {
		t.Fatal("out-of-range lpn should fail")
	}
}

func TestSubZoneRange(t *testing.T) {
	dev := flashsim.New(flashsim.Config{PageSize: 256, PagesPerZone: 8, Zones: 16})
	f, err := New(dev, 8, 8, Config{OPRatio: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(0, make([]byte, 256)); err != nil {
		t.Fatal(err)
	}
	// The FTL must only touch zones ≥ 8.
	for z := 0; z < 8; z++ {
		if dev.ZoneWP(z) != 0 {
			t.Fatalf("FTL wrote outside its range (zone %d)", z)
		}
	}
}
