package ftl

// Regression tests for GC pathologies: the zone-leak livelock (GC opening a
// relocation zone that the caller then abandoned) only manifested at larger
// zone counts than the unit tests used.

import (
	"math/rand"
	"testing"
	"time"

	"nemo/internal/flashsim"
)

func TestGCSustainedRandomOverwrites(t *testing.T) {
	dev := flashsim.New(flashsim.Config{PageSize: 4096, PagesPerZone: 32, Zones: 56})
	f, err := New(dev, 0, 56, Config{OPRatio: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 4096)
	start := time.Now()
	for i := 0; i < 100000; i++ {
		if _, err := f.Write(rng.Intn(f.LogicalPages()), data); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if i%10000 == 0 && time.Since(start) > 2*time.Minute {
			t.Fatalf("GC degenerated: only %d ops in %v", i, time.Since(start))
		}
	}
	st := f.Stats()
	if st.DLWA() > 3 {
		t.Fatalf("DLWA %v too high for 50%% OP", st.DLWA())
	}
	if st.GCRuns == 0 {
		t.Fatal("expected GC activity")
	}
}

func TestGCNoZoneLeak(t *testing.T) {
	// After heavy churn, every zone must be accounted for: free, active,
	// or full (GC victims must stay findable).
	dev := flashsim.New(flashsim.Config{PageSize: 512, PagesPerZone: 16, Zones: 40})
	f, err := New(dev, 0, 40, Config{OPRatio: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	data := make([]byte, 512)
	for i := 0; i < 50000; i++ {
		if _, err := f.Write(rng.Intn(f.LogicalPages()), data); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	partial := 0
	for z := 0; z < 40; z++ {
		wp := dev.ZoneWP(z)
		if wp > 0 && wp < 16 && z != f.active {
			partial++
		}
	}
	if partial > 0 {
		t.Fatalf("%d partially-filled zones leaked (neither free, active, nor full)", partial)
	}
}
