// Package ftl implements a page-mapped flash translation layer with greedy
// garbage collection and configurable over-provisioning on top of the zoned
// device simulator.
//
// It models the internals of a conventional (block-interface) SSD: hosts see
// a linear logical page space with in-place writes; the FTL appends
// out-of-place, tracks per-zone validity, and relocates valid pages when
// free zones run low. The relocation traffic is exactly the device-level
// write amplification (DLWA) that the Set and Kangaroo baselines pay in the
// paper (§2.2, Case 3.1 in §3.1).
package ftl

import (
	"fmt"
	"sync"
	"time"

	"nemo/internal/device"
)

// Config controls the FTL geometry and GC policy.
type Config struct {
	// OPRatio is the fraction of physical capacity reserved as
	// over-provisioning (not exposed as logical space). Must be in (0, 1).
	OPRatio float64
	// FreeZoneReserve is the number of free zones below which GC runs
	// (default 2; must be ≥ 1 and leave at least one writable zone).
	FreeZoneReserve int
}

// Stats reports FTL-level accounting. DLWA = (HostPages+GCPages)/HostPages.
type Stats struct {
	HostPagesWritten uint64 // pages written on behalf of the host
	GCPagesWritten   uint64 // pages relocated by garbage collection
	GCPagesRead      uint64
	GCRuns           uint64
	ZoneErases       uint64
}

// DLWA returns the device-level write amplification so far (1.0 when no
// host writes have occurred).
func (s Stats) DLWA() float64 {
	if s.HostPagesWritten == 0 {
		return 1
	}
	return float64(s.HostPagesWritten+s.GCPagesWritten) / float64(s.HostPagesWritten)
}

// FTL is a page-mapped translation layer over a contiguous zone range of a
// device. It is safe for concurrent use.
type FTL struct {
	dev       device.Device
	cfg       Config
	zoneBase  int // first device zone owned by this FTL
	zoneCount int

	mu        sync.Mutex
	l2p       []int // logical page -> global device page (-1 unmapped)
	p2l       []int // local physical page index -> logical page (-1 invalid)
	validCnt  []int // per local zone
	freeZones []int // local zone indices, LIFO
	active    int   // local zone currently receiving appends (-1 none)
	stats     Stats
	scratch   []byte
}

// New creates an FTL over device zones [zoneBase, zoneBase+zoneCount).
// The logical capacity is floor(zoneCount*pagesPerZone*(1-OPRatio)) pages.
func New(dev device.Device, zoneBase, zoneCount int, cfg Config) (*FTL, error) {
	if cfg.OPRatio <= 0 || cfg.OPRatio >= 1 {
		return nil, fmt.Errorf("ftl: OPRatio %v out of range (0,1)", cfg.OPRatio)
	}
	if cfg.FreeZoneReserve <= 0 {
		cfg.FreeZoneReserve = 2
	}
	if zoneBase < 0 || zoneBase+zoneCount > dev.Zones() || zoneCount < cfg.FreeZoneReserve+2 {
		return nil, fmt.Errorf("ftl: zone range [%d,%d) invalid for device with %d zones (reserve %d)",
			zoneBase, zoneBase+zoneCount, dev.Zones(), cfg.FreeZoneReserve)
	}
	physPages := zoneCount * dev.PagesPerZone()
	logical := int(float64(physPages) * (1 - cfg.OPRatio))
	maxLogical := (zoneCount - cfg.FreeZoneReserve - 1) * dev.PagesPerZone()
	if logical > maxLogical {
		logical = maxLogical
	}
	if logical <= 0 {
		return nil, fmt.Errorf("ftl: configuration leaves no logical capacity")
	}
	f := &FTL{
		dev:       dev,
		cfg:       cfg,
		zoneBase:  zoneBase,
		zoneCount: zoneCount,
		l2p:       make([]int, logical),
		p2l:       make([]int, physPages),
		validCnt:  make([]int, zoneCount),
		active:    -1,
		scratch:   make([]byte, dev.PageSize()),
	}
	for i := range f.l2p {
		f.l2p[i] = -1
	}
	for i := range f.p2l {
		f.p2l[i] = -1
	}
	for z := zoneCount - 1; z >= 0; z-- {
		f.freeZones = append(f.freeZones, z)
	}
	return f, nil
}

// LogicalPages returns the number of logical pages exposed to the host.
func (f *FTL) LogicalPages() int { return len(f.l2p) }

// Stats returns a snapshot of the FTL counters.
func (f *FTL) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// localPage converts a global device page to this FTL's local physical index.
func (f *FTL) localPage(devPage int) int {
	return devPage - f.zoneBase*f.dev.PagesPerZone()
}

func (f *FTL) devZone(local int) int { return f.zoneBase + local }

// Write stores data at logical page lpn (out-of-place) and returns the
// virtual completion time of the final flash operation involved, including
// any garbage collection it triggered.
func (f *FTL) Write(lpn int, data []byte) (done time.Duration, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if lpn < 0 || lpn >= len(f.l2p) {
		return 0, fmt.Errorf("ftl: logical page %d out of range [0,%d)", lpn, len(f.l2p))
	}
	done, devPage, err := f.appendLocked(data, &f.stats.HostPagesWritten)
	if err != nil {
		return 0, err
	}
	f.invalidateLocked(lpn)
	f.l2p[lpn] = devPage
	f.p2l[f.localPage(devPage)] = lpn
	f.validCnt[f.localPage(devPage)/f.dev.PagesPerZone()]++
	return done, nil
}

// Read copies the logical page into dst. mapped is false (and dst is zero
// filled) when the page was never written or was trimmed.
func (f *FTL) Read(lpn int, dst []byte) (done time.Duration, mapped bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if lpn < 0 || lpn >= len(f.l2p) {
		return 0, false, fmt.Errorf("ftl: logical page %d out of range [0,%d)", lpn, len(f.l2p))
	}
	devPage := f.l2p[lpn]
	if devPage < 0 {
		for i := range dst {
			dst[i] = 0
		}
		return f.dev.Clock().Now(), false, nil
	}
	done, err = f.dev.ReadPage(devPage, dst)
	return done, true, err
}

// Trim unmaps the logical page, dropping its physical copy from GC's view.
func (f *FTL) Trim(lpn int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if lpn >= 0 && lpn < len(f.l2p) {
		f.invalidateLocked(lpn)
	}
}

func (f *FTL) invalidateLocked(lpn int) {
	devPage := f.l2p[lpn]
	if devPage < 0 {
		return
	}
	local := f.localPage(devPage)
	f.p2l[local] = -1
	f.validCnt[local/f.dev.PagesPerZone()]--
	f.l2p[lpn] = -1
}

// appendLocked writes one page of data to the active zone, running GC first
// when free zones are scarce. counter selects which write counter to credit.
// GC may leave a partially filled active zone behind; it is reused rather
// than abandoned (abandoning it would leak zones until no full GC victims
// remain).
func (f *FTL) appendLocked(data []byte, counter *uint64) (time.Duration, int, error) {
	ppz := f.dev.PagesPerZone()
	if f.active < 0 || f.dev.ZoneWP(f.devZone(f.active)) >= ppz {
		f.active = -1
		if len(f.freeZones) <= f.cfg.FreeZoneReserve {
			if err := f.gcLocked(); err != nil {
				return 0, 0, err
			}
		}
	}
	if f.active < 0 || f.dev.ZoneWP(f.devZone(f.active)) >= ppz {
		if len(f.freeZones) == 0 {
			return 0, 0, fmt.Errorf("ftl: no free zones after GC")
		}
		f.active = f.freeZones[len(f.freeZones)-1]
		f.freeZones = f.freeZones[:len(f.freeZones)-1]
	}
	devPage, done, err := f.dev.AppendPage(f.devZone(f.active), data)
	if err != nil {
		return 0, 0, err
	}
	*counter++
	return done, devPage, nil
}

// gcLocked reclaims zones until the free pool exceeds the reserve, using
// greedy minimum-valid victim selection among full, inactive zones.
func (f *FTL) gcLocked() error {
	ppz := f.dev.PagesPerZone()
	iterations := 0
	for len(f.freeZones) <= f.cfg.FreeZoneReserve {
		iterations++
		if iterations > 4*f.zoneCount {
			var valid, full int
			for z := 0; z < f.zoneCount; z++ {
				valid += f.validCnt[z]
				if f.dev.ZoneWP(f.devZone(z)) >= ppz {
					full++
				}
			}
			return fmt.Errorf("ftl: gc made no progress after %d iterations (free=%d valid=%d/%d full=%d logical=%d)",
				iterations, len(f.freeZones), valid, f.zoneCount*ppz, full, len(f.l2p))
		}
		victim := -1
		best := ppz + 1
		for z := 0; z < f.zoneCount; z++ {
			if z == f.active || f.dev.ZoneWP(f.devZone(z)) < ppz {
				continue
			}
			if f.validCnt[z] < best {
				best = f.validCnt[z]
				victim = z
			}
		}
		if victim < 0 {
			return fmt.Errorf("ftl: gc found no victim (all zones open or free)")
		}
		f.stats.GCRuns++
		base := victim * ppz
		for off := 0; off < ppz; off++ {
			lpn := f.p2l[base+off]
			if lpn < 0 {
				continue
			}
			if _, err := f.dev.ReadPage(f.devZone(victim)*ppz+off, f.scratch); err != nil {
				return err
			}
			f.stats.GCPagesRead++
			// Relocate into the active zone; the victim is excluded from
			// allocation until reset so relocation cannot target it.
			f.p2l[base+off] = -1
			f.validCnt[victim]--
			_, devPage, err := f.appendRelocate(f.scratch)
			if err != nil {
				return err
			}
			f.l2p[lpn] = devPage
			f.p2l[f.localPage(devPage)] = lpn
			f.validCnt[f.localPage(devPage)/ppz]++
		}
		if _, err := f.dev.ResetZone(f.devZone(victim)); err != nil {
			return err
		}
		f.stats.ZoneErases++
		f.freeZones = append(f.freeZones, victim)
	}
	return nil
}

// appendRelocate appends a relocated page, opening free zones directly
// (GC is exempt from the reserve check to avoid recursion; the reserve
// guarantees headroom for exactly this).
func (f *FTL) appendRelocate(data []byte) (time.Duration, int, error) {
	ppz := f.dev.PagesPerZone()
	if f.active < 0 || f.dev.ZoneWP(f.devZone(f.active)) >= ppz {
		if len(f.freeZones) == 0 {
			return 0, 0, fmt.Errorf("ftl: relocation found no free zone")
		}
		f.active = f.freeZones[len(f.freeZones)-1]
		f.freeZones = f.freeZones[:len(f.freeZones)-1]
	}
	devPage, done, err := f.dev.AppendPage(f.devZone(f.active), data)
	if err != nil {
		return 0, 0, err
	}
	f.stats.GCPagesWritten++
	return done, devPage, nil
}
