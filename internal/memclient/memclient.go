// Package memclient is a minimal memcached-text-protocol client for the
// repository's own serving layer: the loopback load generator
// (internal/servebench) and the server test suites drive internal/server
// through it. It supports the server's verb subset, explicit pipelining
// (Queue* then Flush then Read*), and nothing more — it is a harness
// component, not a production client.
package memclient

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
)

// Client speaks the protocol over one connection. Not safe for concurrent
// use; loopback harnesses run one Client per connection goroutine.
type Client struct {
	r *bufio.Reader
	w *bufio.Writer
}

// New wraps an established connection (anything bidirectional: net.Conn,
// net.Pipe end).
func New(rw io.ReadWriter) *Client {
	return &Client{
		r: bufio.NewReaderSize(rw, 16<<10),
		w: bufio.NewWriterSize(rw, 16<<10),
	}
}

// QueueSet appends a set request to the pipeline.
func (c *Client) QueueSet(key, data []byte, flags uint32, noreply bool) {
	fmt.Fprintf(c.w, "set %s %d 0 %d", key, flags, len(data))
	if noreply {
		c.w.WriteString(" noreply")
	}
	c.w.WriteString("\r\n")
	c.w.Write(data)
	c.w.WriteString("\r\n")
}

// QueueGet appends a (multi-key) get request to the pipeline; withCas
// makes it a gets.
func (c *Client) QueueGet(withCas bool, keys ...[]byte) {
	if withCas {
		c.w.WriteString("gets")
	} else {
		c.w.WriteString("get")
	}
	for _, k := range keys {
		c.w.WriteByte(' ')
		c.w.Write(k)
	}
	c.w.WriteString("\r\n")
}

// QueueDelete appends a delete request to the pipeline.
func (c *Client) QueueDelete(key []byte, noreply bool) {
	c.w.WriteString("delete ")
	c.w.Write(key)
	if noreply {
		c.w.WriteString(" noreply")
	}
	c.w.WriteString("\r\n")
}

// QueueLine appends a raw request line (tests exercise malformed input
// this way).
func (c *Client) QueueLine(line string) {
	c.w.WriteString(line)
	c.w.WriteString("\r\n")
}

// Flush sends every queued request.
func (c *Client) Flush() error { return c.w.Flush() }

// readLine returns the next reply line without its CRLF.
func (c *Client) readLine() ([]byte, error) {
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	line = line[:len(line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}

// ReadStatus reads one status-line reply (STORED, DELETED, ERROR,
// CLIENT_ERROR ..., SERVER_ERROR ...).
func (c *Client) ReadStatus() (string, error) {
	line, err := c.readLine()
	return string(line), err
}

// Value is one VALUE reply of a get/gets.
type Value struct {
	Key   []byte
	Flags uint32
	Cas   uint64 // gets only
	Data  []byte
}

// ReadValues consumes one get/gets reply: zero or more VALUE blocks then
// END, invoking f per value (f may be nil). Any other reply line — the
// server answering an error at this pipeline position — is returned as an
// error carrying the line.
func (c *Client) ReadValues(f func(v Value)) (n int, err error) {
	for {
		line, err := c.readLine()
		if err != nil {
			return n, err
		}
		if bytes.Equal(line, []byte("END")) {
			return n, nil
		}
		fields := bytes.Fields(line)
		if len(fields) < 4 || !bytes.Equal(fields[0], []byte("VALUE")) {
			return n, fmt.Errorf("memclient: unexpected reply %q", line)
		}
		flags, err1 := strconv.ParseUint(string(fields[2]), 10, 32)
		size, err2 := strconv.ParseUint(string(fields[3]), 10, 31)
		var cas uint64
		var err3 error
		if len(fields) == 5 {
			cas, err3 = strconv.ParseUint(string(fields[4]), 10, 64)
		}
		if err1 != nil || err2 != nil || err3 != nil || len(fields) > 5 {
			return n, fmt.Errorf("memclient: bad VALUE line %q", line)
		}
		v := Value{
			Key:   append([]byte(nil), fields[1]...),
			Flags: uint32(flags),
			Cas:   cas,
			Data:  make([]byte, size),
		}
		if _, err := io.ReadFull(c.r, v.Data); err != nil {
			return n, err
		}
		var crlf [2]byte
		if _, err := io.ReadFull(c.r, crlf[:]); err != nil {
			return n, err
		}
		if crlf[0] != '\r' || crlf[1] != '\n' {
			return n, fmt.Errorf("memclient: value block not CRLF-terminated")
		}
		n++
		if f != nil {
			f(v)
		}
	}
}

// Set stores key=data synchronously (queue, flush, read the status).
func (c *Client) Set(key, data []byte, flags uint32) error {
	c.QueueSet(key, data, flags, false)
	if err := c.Flush(); err != nil {
		return err
	}
	status, err := c.ReadStatus()
	if err != nil {
		return err
	}
	if status != "STORED" {
		return fmt.Errorf("memclient: set %s: %s", key, status)
	}
	return nil
}

// Get fetches one key synchronously, reporting (data, flags, found).
func (c *Client) Get(key []byte) (data []byte, flags uint32, found bool, err error) {
	c.QueueGet(false, key)
	if err := c.Flush(); err != nil {
		return nil, 0, false, err
	}
	n, err := c.ReadValues(func(v Value) { data, flags = v.Data, v.Flags })
	return data, flags, n > 0, err
}

// Delete tombstones one key synchronously.
func (c *Client) Delete(key []byte) error {
	c.QueueDelete(key, false)
	if err := c.Flush(); err != nil {
		return err
	}
	status, err := c.ReadStatus()
	if err != nil {
		return err
	}
	if status != "DELETED" {
		return fmt.Errorf("memclient: delete %s: %s", key, status)
	}
	return nil
}

// Stats fetches the stats verb's counters as a name → value map.
func (c *Client) Stats() (map[string]uint64, error) {
	c.QueueLine("stats")
	if err := c.Flush(); err != nil {
		return nil, err
	}
	stats := make(map[string]uint64)
	for {
		line, err := c.readLine()
		if err != nil {
			return nil, err
		}
		if bytes.Equal(line, []byte("END")) {
			return stats, nil
		}
		fields := bytes.Fields(line)
		if len(fields) != 3 || !bytes.Equal(fields[0], []byte("STAT")) {
			return nil, fmt.Errorf("memclient: unexpected stats reply %q", line)
		}
		v, err := strconv.ParseUint(string(fields[2]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("memclient: bad stats value %q", line)
		}
		stats[string(fields[1])] = v
	}
}

// Quit sends quit (the server closes the connection).
func (c *Client) Quit() error {
	c.QueueLine("quit")
	return c.Flush()
}
