package server_test

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"strings"
	"testing"

	"nemo/internal/server"
)

// cas recomputes the `gets` cas token contract from the wire data: the
// FNV-1a fingerprint of the stored value, which is the 4-byte big-endian
// flags envelope followed by the data block.
func cas(flags uint32, data string) uint64 {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], flags)
	h := fnv.New64a()
	h.Write(hdr[:])
	h.Write([]byte(data))
	return h.Sum64()
}

// step is one send/expect exchange of a conformance transcript.
type step struct {
	send string
	want string
}

// conformanceTranscript is the golden request/response byte transcript for
// every verb of the protocol subset. Each transcript runs on a fresh
// server over net.Pipe and replies must match byte-for-byte; a transcript
// whose early steps provoke errors pins that the connection survives them.
var conformanceTranscript = []struct {
	name  string
	steps []step
}{
	{"set get roundtrip", []step{
		{"set foo 7 0 3\r\nbar\r\n", "STORED\r\n"},
		{"get foo\r\n", "VALUE foo 7 3\r\nbar\r\nEND\r\n"},
	}},
	{"gets carries cas token", []step{
		{"set foo 7 0 3\r\nbar\r\n", "STORED\r\n"},
		{"gets foo\r\n", fmt.Sprintf("VALUE foo 7 3 %d\r\nbar\r\nEND\r\n", cas(7, "bar"))},
	}},
	{"multi-key get omits misses", []step{
		{"set a 1 0 1\r\nA\r\n", "STORED\r\n"},
		{"set b 2 0 1\r\nB\r\n", "STORED\r\n"},
		{"get a missing b a\r\n",
			"VALUE a 1 1\r\nA\r\nVALUE b 2 1\r\nB\r\nVALUE a 1 1\r\nA\r\nEND\r\n"},
		{"get missing-1 missing-2\r\n", "END\r\n"},
	}},
	{"empty value stores and serves", []step{
		{"set empty 9 0 0\r\n\r\n", "STORED\r\n"},
		{"get empty\r\n", "VALUE empty 9 0\r\n\r\nEND\r\n"},
	}},
	{"noreply suppresses the reply", []step{
		{"set nr 1 0 2 noreply\r\nhi\r\nget nr\r\n", "VALUE nr 1 2\r\nhi\r\nEND\r\n"},
		{"delete nr noreply\r\nget nr\r\n", "END\r\n"},
	}},
	{"delete tombstones", []step{
		{"set foo 0 0 3\r\nbar\r\n", "STORED\r\n"},
		{"delete foo\r\n", "DELETED\r\n"},
		{"get foo\r\n", "END\r\n"},
		// The engine has no exact index, so delete cannot report
		// existence: a delete of an absent key still replies DELETED
		// (documented protocol subset).
		{"delete never-stored\r\n", "DELETED\r\n"},
	}},
	{"unknown command keeps the connection", []step{
		{"bogus\r\n", "ERROR\r\n"},
		{"flush_all\r\n", "ERROR\r\n"},
		{"stats items\r\n", "ERROR\r\n"},
		{"version\r\n", "VERSION nemo/1\r\n"},
	}},
	{"malformed lines keep the connection", []step{
		{"set k notanum 0 3\r\n", "CLIENT_ERROR bad command line format\r\n"},
		{"get\r\n", "CLIENT_ERROR bad command line format\r\n"},
		{"set k 0 0\r\n", "CLIENT_ERROR bad command line format\r\n"},
		{"delete\r\n", "CLIENT_ERROR bad command line format\r\n"},
		{"set ok 0 0 2\r\nok\r\n", "STORED\r\n"},
	}},
	{"bad data chunk keeps the connection", []step{
		// 3 declared bytes followed by 2 terminator bytes that are not
		// CRLF: the block is consumed, the store rejected, framing kept.
		{"set k 0 0 3\r\nbarXY", "CLIENT_ERROR bad data chunk\r\n"},
		{"get k\r\n", "END\r\n"},
		{"set k 0 0 1\r\nK\r\n", "STORED\r\n"},
	}},
	{"oversized value is SERVER_ERROR not disconnect", []step{
		// 600 B exceeds the test engine's 512 B set page; the block is
		// swallowed and the connection stays usable.
		{"set big 0 0 600\r\n" + strings.Repeat("x", 600) + "\r\n",
			"SERVER_ERROR object too large for cache\r\n"},
		{"set small 0 0 5\r\nhello\r\n", "STORED\r\n"},
	}},
	{"key validation", []step{
		{"get " + strings.Repeat("k", 251) + "\r\n", "CLIENT_ERROR key too long (251 > 250)\r\n"},
		{"get \x01key\r\n", "CLIENT_ERROR invalid key byte 0x01\r\n"},
		{"get " + strings.Repeat("k", 250) + "\r\n", "END\r\n"},
	}},
	{"pipelined batch replies in order", []step{
		{"set a 0 0 1\r\nA\r\nset b 0 0 1\r\nB\r\nget a b\r\ndelete a\r\nbogus\r\nget b\r\n",
			"STORED\r\nSTORED\r\nVALUE a 0 1\r\nA\r\nVALUE b 0 1\r\nB\r\nEND\r\nDELETED\r\nERROR\r\nVALUE b 0 1\r\nB\r\nEND\r\n"},
	}},
	{"overwrite takes the last value", []step{
		{"set k 1 0 3\r\nold\r\nset k 2 0 3\r\nnew\r\n", "STORED\r\nSTORED\r\n"},
		{"get k\r\n", "VALUE k 2 3\r\nnew\r\nEND\r\n"},
	}},
}

// TestProtocolConformance runs every golden transcript against an
// in-memory net.Pipe server, in both set-serving modes (the wire contract
// is identical; only the flush timing differs).
func TestProtocolConformance(t *testing.T) {
	for _, mode := range []struct {
		name    string
		syncSet bool
	}{{"async", false}, {"sync", true}} {
		t.Run(mode.name, func(t *testing.T) {
			for _, tc := range conformanceTranscript {
				t.Run(tc.name, func(t *testing.T) {
					eng, _ := newEngine(t, 2, 0)
					cli := startPipeServer(t, server.Config{
						Engine:       eng,
						SyncSet:      mode.syncSet,
						MaxItemBytes: testMaxItem,
					})
					for _, st := range tc.steps {
						send(t, cli, st.send)
						expect(t, cli, st.want)
					}
				})
			}
		})
	}
}

// TestQuitClosesConnection pins the quit verb: any pipelined requests
// ahead of it are answered, then the server closes the connection.
func TestQuitClosesConnection(t *testing.T) {
	eng, _ := newEngine(t, 1, 0)
	cli := startPipeServer(t, server.Config{Engine: eng, MaxItemBytes: testMaxItem})
	send(t, cli, "set k 0 0 1\r\nK\r\nquit\r\n")
	expect(t, cli, "STORED\r\n")
	expectEOF(t, cli)
}

// TestLineTooLongKeepsConnection pins oversize-line handling: the line is
// consumed to its newline, answered with CLIENT_ERROR, and the connection
// stays framed.
func TestLineTooLongKeepsConnection(t *testing.T) {
	eng, _ := newEngine(t, 1, 0)
	cli := startPipeServer(t, server.Config{Engine: eng, MaxItemBytes: testMaxItem})
	send(t, cli, "get "+strings.Repeat("k", 20<<10)+"\r\n")
	expect(t, cli, "CLIENT_ERROR command line too long\r\n")
	send(t, cli, "version\r\n")
	expect(t, cli, "VERSION nemo/1\r\n")
}
