package server_test

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"nemo/internal/memclient"
	"nemo/internal/server"
)

// tally is one client's op counts; the stress test sums them and requires
// the server's stats verb and the engine's counters to agree exactly.
type tally struct {
	gets, hits, sets, deletes uint64
	errors                    int
}

// stressKey/stressData are the deterministic shared workload shape.
func stressKey(i int) []byte { return []byte(fmt.Sprintf("stress-key-%04d", i)) }

func stressData(i int) []byte {
	n := 1 + (i*37)%180
	d := make([]byte, n)
	for j := range d {
		d[j] = byte('a' + (i+j)%26)
	}
	return d
}

// TestLoopbackStress drives a live loopback listener from N concurrent
// client connections doing pipelined mixed get/set/delete (the network
// extension of the PR 4/5 concurrency stress family — run under -race in
// CI), then asserts the server-reported `stats` counters exactly match the
// summed client-side tallies, both over the wire and — after Shutdown's
// Drain — straight off the engine.
func TestLoopbackStress(t *testing.T) {
	const (
		conns    = 4
		batches  = 150
		pipeline = 16
		keySpace = 600
	)
	eng, _ := newEngine(t, 2, 2)
	defer eng.Close()
	srv, err := server.New(server.Config{Engine: eng, MaxItemBytes: testMaxItem})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	tallies := make([]tally, conns)
	var wg sync.WaitGroup
	for g := 0; g < conns; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tl := &tallies[g]
			nc, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				tl.errors++
				return
			}
			defer nc.Close()
			cl := memclient.New(nc)
			kinds := make([]byte, 0, pipeline)
			noreply := make([]bool, 0, pipeline)
			for b := 0; b < batches; b++ {
				kinds, noreply = kinds[:0], noreply[:0]
				for i := 0; i < pipeline; i++ {
					seq := b*pipeline + i
					idx := (g*31 + seq*17) % keySpace
					switch (g*7 + seq*13) % 10 {
					case 0, 1, 2, 3, 4:
						cl.QueueGet(seq%3 == 0, stressKey(idx))
						kinds, noreply = append(kinds, 'g'), append(noreply, false)
						tl.gets++
					case 5, 6, 7, 8:
						nr := seq%7 == 0
						cl.QueueSet(stressKey(idx), stressData(idx), uint32(idx), nr)
						kinds, noreply = append(kinds, 's'), append(noreply, nr)
						tl.sets++
					default:
						nr := seq%5 == 0
						cl.QueueDelete(stressKey(idx), nr)
						kinds, noreply = append(kinds, 'd'), append(noreply, nr)
						tl.deletes++
					}
				}
				if err := cl.Flush(); err != nil {
					tl.errors++
					return
				}
				for i, k := range kinds {
					switch {
					case k == 'g':
						n, err := cl.ReadValues(nil)
						if err != nil {
							tl.errors++
							return
						}
						tl.hits += uint64(n)
					case noreply[i]:
						// No reply to read.
					default:
						status, err := cl.ReadStatus()
						if err != nil || (k == 's' && status != "STORED") || (k == 'd' && status != "DELETED") {
							tl.errors++
							return
						}
					}
				}
			}
			if err := cl.Quit(); err != nil {
				tl.errors++
			}
		}(g)
	}
	wg.Wait()

	var sum tally
	for g := range tallies {
		if tallies[g].errors != 0 {
			t.Fatalf("client %d saw %d errors", g, tallies[g].errors)
		}
		sum.gets += tallies[g].gets
		sum.hits += tallies[g].hits
		sum.sets += tallies[g].sets
		sum.deletes += tallies[g].deletes
	}

	// Server-reported stats over the wire must match the client tallies
	// exactly — protocol counters and engine counters both. The workers'
	// connection teardown (quit → close → unregister) finishes shortly
	// after their last reply, so the connection gauges are polled before
	// the exact comparison.
	nc, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	cl := memclient.New(nc)
	var stats map[string]uint64
	deadline := time.Now().Add(10 * time.Second)
	for {
		if stats, err = cl.Stats(); err != nil {
			t.Fatal(err)
		}
		if stats["curr_connections"] == 1 && stats["total_connections"] == conns+1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker connections never unregistered: %v", stats)
		}
		time.Sleep(time.Millisecond)
	}
	nc.Close()
	for name, want := range map[string]uint64{
		"cmd_get":             sum.gets,
		"get_hits":            sum.hits,
		"get_misses":          sum.gets - sum.hits,
		"cmd_set":             sum.sets,
		"cmd_delete":          sum.deletes,
		"engine_gets":         sum.gets,
		"engine_hits":         sum.hits,
		"engine_sets":         sum.sets,
		"engine_deletes":      sum.deletes,
		"total_connections":   conns + 1,
		"curr_connections":    1, // just the stats connection
		"protocol_errors":     0,
		"server_errors":       0,
		"engine_read_errors":  0,
		"engine_write_errors": 0,
	} {
		if got, ok := stats[name]; !ok || got != want {
			t.Errorf("stats[%s] = %d (present=%v), want %d", name, got, ok, want)
		}
	}

	// Drain, then re-check straight off the engine: nothing may have been
	// double- or under-counted by the batching layers.
	if err := srv.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; err != server.ErrServerClosed {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	st := eng.Stats()
	if st.Gets != sum.gets || st.Hits != sum.hits || st.Sets != sum.sets || st.Deletes != sum.deletes {
		t.Fatalf("engine stats after drain = gets %d hits %d sets %d deletes %d, client tallies %+v",
			st.Gets, st.Hits, st.Sets, st.Deletes, sum)
	}
	if st.WriteErrors != 0 || st.ReadErrors != 0 {
		t.Fatalf("unexpected device errors: %+v", st)
	}
}
