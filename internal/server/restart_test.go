package server_test

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"testing"

	"nemo/internal/core"
	"nemo/internal/filedev"
	"nemo/internal/memclient"
	"nemo/internal/server"
	"nemo/internal/snapshot"
)

// TestWarmRestartAcrossProcessBoundary is the serving-layer end of the
// warm-restart contract: a memcached-protocol server over a Persist-mode
// file device is populated, drained, and torn all the way down (engine
// checkpoint, device superblock flush); a second server stack built from
// nothing but the two on-disk artifacts — the image and the snapshot — must
// answer gets for the stored keys and report the first life's engine_
// counters through the stats verb. This is what nemoserve does across a
// real process restart; the test performs the identical open sequence in
// one process.
func TestWarmRestartAcrossProcessBoundary(t *testing.T) {
	dir := t.TempDir()
	img := filepath.Join(dir, "nemo.img")
	snap := filepath.Join(dir, "nemo.snap")
	const shards = 2

	open := func() (*core.Sharded, *filedev.Device) {
		perIdx := core.IndexZonesFor(8, 4)
		dev, err := filedev.Open(filedev.Config{
			Path:         img,
			PageSize:     512,
			PagesPerZone: 16,
			Zones:        shards * (8 + perIdx),
			Persist:      true,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig(dev, 8*shards)
		cfg.Shards = shards
		cfg.SGsPerIndexGroup = 4
		cfg.TargetObjsPerSet = 8
		cfg.FlushThreshold = 8
		cfg.SnapshotPath = snap
		eng, err := core.NewSharded(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return eng, dev
	}

	serve := func(eng *core.Sharded) (*server.Server, net.Conn, chan struct{}) {
		srv, err := server.New(server.Config{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		cli, sv := net.Pipe()
		done := make(chan struct{})
		go func() {
			defer close(done)
			srv.ServeConn(sv)
		}()
		return srv, cli, done
	}

	// First life: populate over the wire, collect stats, tear down in the
	// nemoserve order — server drain, engine close (checkpoints), device
	// close (superblock).
	eng1, dev1 := open()
	if restored, _ := eng1.RestoreOutcome(); restored {
		t.Fatal("first life restored from nothing")
	}
	srv1, cli1, done1 := serve(eng1)
	cl := memclient.New(cli1)
	const keys = 400
	val := func(i int) []byte { return []byte(fmt.Sprintf("value-%04d-%032d", i, i)) }
	for i := 0; i < keys; i++ {
		if err := cl.Set(drainKey(i), val(i), 0); err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
	}
	for i := 0; i < keys; i += 3 {
		if _, _, _, err := cl.Get(drainKey(i)); err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
	}
	stats1, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	cli1.Close()
	if err := srv1.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	<-done1
	if err := eng1.Close(); err != nil {
		t.Fatalf("engine close: %v", err)
	}
	if err := dev1.Close(); err != nil {
		t.Fatalf("device close: %v", err)
	}

	// Second life: only the image and the snapshot exist now.
	eng2, dev2 := open()
	defer dev2.Close()
	if !dev2.Restored() {
		t.Fatal("device did not warm-open from its superblock")
	}
	restored, rerr := eng2.RestoreOutcome()
	if !restored {
		t.Fatalf("engine did not adopt the snapshot: %v", rerr)
	}
	srv2, cli2, done2 := serve(eng2)
	defer func() {
		cli2.Close()
		if err := srv2.Shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		<-done2
		if err := eng2.Close(); err != nil {
			t.Errorf("engine close: %v", err)
		}
	}()
	cl2 := memclient.New(cli2)

	// The first life's engine counters survived the restart.
	stats2, err := cl2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"engine_gets", "engine_hits", "engine_sets", "engine_logical_bytes"} {
		if stats2[k] != stats1[k] {
			t.Errorf("%s = %d after restart, want %d", k, stats2[k], stats1[k])
		}
	}

	// And so did the data: every key the first life stored still answers.
	// (Capacity evicts some of the 400 under this tiny geometry, so the pin
	// is on recent keys — the buffered tail plus the newest flushed SGs —
	// and on overall hit count, not every key.)
	hits := 0
	for i := 0; i < keys; i++ {
		data, _, found, err := cl2.Get(drainKey(i))
		if err != nil {
			t.Fatalf("get %d after restart: %v", i, err)
		}
		if found {
			hits++
			if !bytes.Equal(data, val(i)) {
				t.Fatalf("key %d came back corrupted after restart", i)
			}
		}
	}
	if hits == 0 {
		t.Fatal("no first-life key survived the restart")
	}
	for i := keys - 8; i < keys; i++ {
		if _, _, found, err := cl2.Get(drainKey(i)); err != nil || !found {
			t.Fatalf("recent key %d lost across restart (err=%v)", i, err)
		}
	}
}

// TestCrashMidCheckpointWarmRestart is the crash-mid-checkpoint torture at
// the serving layer: a periodic checkpoint (nemoserve -snapshot-every) dies
// between writing its temp file and renaming it into place, leaving a stale
// .tmp dropping beside the still-intact previous snapshot. The serving
// stack must shrug — the engine keeps serving, the clean drain checkpoints
// over the old snapshot, and the next boot warm-restarts with the orphan
// still sitting in the directory.
func TestCrashMidCheckpointWarmRestart(t *testing.T) {
	dir := t.TempDir()
	img := filepath.Join(dir, "nemo.img")
	snap := filepath.Join(dir, "nemo.snap")
	const shards = 2

	open := func() (*core.Sharded, *filedev.Device) {
		perIdx := core.IndexZonesFor(8, 4)
		dev, err := filedev.Open(filedev.Config{
			Path:         img,
			PageSize:     512,
			PagesPerZone: 16,
			Zones:        shards * (8 + perIdx),
			Persist:      true,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig(dev, 8*shards)
		cfg.Shards = shards
		cfg.SGsPerIndexGroup = 4
		cfg.TargetObjsPerSet = 8
		cfg.FlushThreshold = 8
		cfg.SnapshotPath = snap
		eng, err := core.NewSharded(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return eng, dev
	}

	// First life: populate, take one good periodic checkpoint, then have
	// the next one crash at the injection point.
	eng1, dev1 := open()
	srv1, err := server.New(server.Config{Engine: eng1})
	if err != nil {
		t.Fatal(err)
	}
	cli1, sv1 := net.Pipe()
	done1 := make(chan struct{})
	go func() { defer close(done1); srv1.ServeConn(sv1) }()
	cl := memclient.New(cli1)
	const keys = 120
	val := func(i int) []byte { return []byte(fmt.Sprintf("value-%04d-%032d", i, i)) }
	for i := 0; i < keys/2; i++ {
		if err := cl.Set(drainKey(i), val(i), 0); err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
	}
	if err := eng1.Checkpoint(snap); err != nil {
		t.Fatalf("good checkpoint: %v", err)
	}

	for i := keys / 2; i < keys; i++ {
		if err := cl.Set(drainKey(i), val(i), 0); err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
	}
	crash := errors.New("crash injected before rename")
	var orphan string
	snapshot.BeforeRename = func(p string) error { orphan = p; return crash }
	err = eng1.Checkpoint(snap)
	snapshot.BeforeRename = nil
	if !errors.Is(err, crash) {
		t.Fatalf("crashed checkpoint returned %v, want the injected crash", err)
	}
	if orphan == "" {
		t.Fatal("injection point never reached")
	}

	// Service continues through the failed checkpoint, then drains cleanly
	// (the drain checkpoint overwrites the stale snapshot).
	for i := 0; i < keys; i += 5 {
		if _, _, _, err := cl.Get(drainKey(i)); err != nil {
			t.Fatalf("get %d after failed checkpoint: %v", i, err)
		}
	}
	cli1.Close()
	if err := srv1.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	<-done1
	if err := eng1.Close(); err != nil {
		t.Fatalf("engine close: %v", err)
	}
	if err := dev1.Close(); err != nil {
		t.Fatalf("device close: %v", err)
	}

	// Second life boots with the orphan .tmp still in the directory and
	// must warm-restart from the drain checkpoint regardless.
	matches, err := filepath.Glob(snap + ".tmp*")
	if err != nil || len(matches) == 0 {
		t.Fatalf("stale temp file gone before restart (matches=%v err=%v)", matches, err)
	}
	eng2, dev2 := open()
	defer dev2.Close()
	if restored, rerr := eng2.RestoreOutcome(); !restored {
		t.Fatalf("engine did not adopt the snapshot: %v", rerr)
	}
	srv2, err := server.New(server.Config{Engine: eng2})
	if err != nil {
		t.Fatal(err)
	}
	cli2, sv2 := net.Pipe()
	done2 := make(chan struct{})
	go func() { defer close(done2); srv2.ServeConn(sv2) }()
	defer func() {
		cli2.Close()
		if err := srv2.Shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		<-done2
		if err := eng2.Close(); err != nil {
			t.Errorf("engine close: %v", err)
		}
	}()
	cl2 := memclient.New(cli2)
	hits := 0
	for i := 0; i < keys; i++ {
		data, _, found, err := cl2.Get(drainKey(i))
		if err != nil {
			t.Fatalf("get %d after restart: %v", i, err)
		}
		if found {
			hits++
			if !bytes.Equal(data, val(i)) {
				t.Fatalf("key %d came back corrupted after restart", i)
			}
		}
	}
	if hits == 0 {
		t.Fatal("no first-life key survived the restart")
	}
	for i := keys - 8; i < keys; i++ {
		if _, _, found, err := cl2.Get(drainKey(i)); err != nil || !found {
			t.Fatalf("recent key %d lost across restart (err=%v)", i, err)
		}
	}
}
