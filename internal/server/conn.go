package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"runtime"
	"strconv"
	"sync"
	"time"

	"nemo/internal/cachelib"
)

// This file is the per-connection handler: a read loop that accumulates
// pipelined requests into a batch, an executor that coalesces consecutive
// same-verb runs into GetMany/SetMany engine rounds, and the reply writers.
// Replies are produced strictly in request order (a parse error occupies
// its position in the pipeline like any other reply), and the write buffer
// is flushed once per batch — the unit of amortization that makes pipelined
// loopback throughput scale.

// readBufSize bounds both the bufio reader (and therefore the longest
// acceptable request line) and the reply writer.
const readBufSize = 16 << 10

// valRetainBytes bounds the per-slot value buffer kept across batches: a
// slot that buffered a larger set gives the storage back after the batch,
// so one burst of big objects does not pin its high-water heap on every
// idle connection forever.
const valRetainBytes = 16 << 10

// batchRetainBytes bounds the total batch accumulation storage (op slots,
// owned keys, retained values, gather scratch) a connection keeps between
// batches. A connection whose slots grew past the cap releases them all and
// re-grows on the next batch, so one deep pipeline burst does not pin its
// high-water heap on an idle connection.
const batchRetainBytes = 64 << 10

// readerPool / writerPool hold the 16 KiB bufio buffers shared across all
// connections. A connection borrows both only while a batch is in flight:
// between requests it parks blocked on a raw 1-byte read with the buffers
// returned, so an idle connection holds ~zero heap (the ROADMAP's "10k+
// idle connections" direction).
var (
	readerPool = sync.Pool{New: func() any { return bufio.NewReaderSize(nil, readBufSize) }}
	writerPool = sync.Pool{New: func() any { return bufio.NewWriterSize(nil, readBufSize) }}
)

// errClass classifies a request that failed before reaching the engine.
type errClass uint8

const (
	errNone    errClass = iota
	errGeneric          // "ERROR\r\n" — unknown verb
	errClient           // "CLIENT_ERROR <msg>\r\n" — malformed request
	errServer           // "SERVER_ERROR <msg>\r\n" — server-side rejection
)

// op is one slot of a connection's request batch. Slots own their key and
// value storage and are reused batch over batch, so a steady-state
// connection stops allocating once its slots have grown to the workload's
// shape.
type op struct {
	kind    Kind
	bad     errClass // != errNone: reply with the error, skip the engine
	msg     string   // errClient/errServer message
	keys    [][]byte // owned copies; keys[:nkeys] are live
	nkeys   int
	val     []byte // set: encoded item (envelope + data), owned
	noreply bool
}

// setKeys copies the parsed (line-aliasing) keys into the slot's owned
// storage.
func (o *op) setKeys(src [][]byte) {
	o.nkeys = len(src)
	for len(o.keys) < len(src) {
		o.keys = append(o.keys, nil)
	}
	for i, k := range src {
		o.keys[i] = append(o.keys[i][:0], k...)
	}
}

// size is the op's contribution to the batch byte budget: buffered value
// plus owned key bytes.
func (o *op) size() int {
	n := len(o.val)
	for i := 0; i < o.nkeys; i++ {
		n += len(o.keys[i])
	}
	return n
}

// conn is the per-connection state. r and w are pooled: non-nil only while
// the connection is inside a batch (see readerPool).
type conn struct {
	srv *Server
	nc  net.Conn
	r   *bufio.Reader
	w   *bufio.Writer

	// pend holds the request byte consumed by the buffer-less idle wait
	// (waitFirstByte); conn.Read hands it back before touching the socket,
	// so the pooled reader sees an unbroken stream.
	pend     byte
	havePend bool

	cmd  Command // parse scratch
	ops  []op    // batch slots, reused
	nops int

	getKeys [][]byte // GetMany gather scratch
	setKeys [][]byte // SetMany gather scratch
	setVals [][]byte
	num     [20]byte // strconv scratch

	// midRequest is true once any byte of the current request has been
	// consumed; it classifies a read timeout as an idle disconnect (false)
	// or a slow-sender deadline disconnect (true).
	midRequest bool
}

// serveConn runs one connection to completion.
func (s *Server) serveConn(nc net.Conn) {
	if !s.addConn(nc) {
		nc.Close()
		return
	}
	defer s.removeConn(nc)
	defer nc.Close()
	c := &conn{srv: s, nc: nc}
	defer c.releaseBufs()
	for {
		c.nops = 0
		c.midRequest = false
		// Arm the between-requests idle budget (or clear a leftover
		// mid-request deadline when only ReadTimeout is configured).
		if s.cfg.IdleTimeout > 0 {
			s.setReadDeadline(nc, time.Now().Add(s.cfg.IdleTimeout))
		} else if s.cfg.ReadTimeout > 0 {
			s.setReadDeadline(nc, time.Time{})
		}
		// The one wait that may park the connection for a long time happens
		// buffer-less: block on a raw 1-byte read so an idle connection
		// borrows nothing from the pools. An error here (EOF, client reset,
		// Shutdown's deadline, a timeout) ends the connection with no batch
		// in flight and nothing to flush.
		if err := c.waitFirstByte(); err != nil {
			c.countTimeout(err)
			return
		}
		c.acquireBufs()
		if err := c.readOp(); err != nil {
			c.w.Flush()
			c.countTimeout(err)
			return
		}
		// Accumulate while more pipelined requests are already buffered
		// and the batch byte budget holds. The peek guard stops at a
		// half-received line so a slow sender cannot park a batch of
		// unexecuted requests behind a blocking read.
		batchBytes := c.ops[0].size()
		for c.nops < s.cfg.MaxBatch && batchBytes < s.cfg.MaxBatchBytes {
			last := &c.ops[c.nops-1]
			if last.bad == errNone && last.kind == KindQuit {
				break
			}
			n := c.r.Buffered()
			if n == 0 {
				break
			}
			peek, _ := c.r.Peek(n)
			if bytes.IndexByte(peek, '\n') < 0 {
				break
			}
			if err := c.readOp(); err != nil {
				// The pipeline died mid-request: execute and answer what
				// was fully received, then close.
				c.execute()
				c.w.Flush()
				c.countTimeout(err)
				return
			}
			batchBytes += c.ops[c.nops-1].size()
		}
		quit := c.execute()
		err := c.w.Flush()
		c.releaseBufs()
		if err != nil {
			return
		}
		c.trimSlots()
		if quit || s.isClosed() {
			return
		}
	}
}

// Read implements io.Reader for the pooled bufio reader: it replays the byte
// waitFirstByte consumed, then delegates to the socket.
func (c *conn) Read(p []byte) (int, error) {
	if c.havePend {
		p[0] = c.pend
		c.havePend = false
		return 1, nil
	}
	return c.nc.Read(p)
}

// waitFirstByte blocks until the next request's first byte is available. It
// is a no-op when a pipelined byte is already pending or buffered; otherwise
// it reads one raw byte from the socket — with the bufio buffers parked in
// their pools — and stashes it for conn.Read to replay.
func (c *conn) waitFirstByte() error {
	if c.havePend || (c.r != nil && c.r.Buffered() > 0) {
		return nil
	}
	var b [1]byte
	for {
		n, err := c.nc.Read(b[:])
		if n > 0 {
			c.pend, c.havePend = b[0], true
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// acquireBufs borrows the batch's read and write buffers from the pools. The
// reader may already be held from the previous batch when it still buffers a
// partial pipelined request (releaseBufs keeps it in that case).
func (c *conn) acquireBufs() {
	if c.r == nil {
		c.r = readerPool.Get().(*bufio.Reader)
		c.r.Reset(c)
	}
	if c.w == nil {
		c.w = writerPool.Get().(*bufio.Writer)
		c.w.Reset(c.nc)
	}
}

// releaseBufs returns the pooled buffers after a batch (and at connection
// end). The writer always goes back — its batch is flushed, and Reset
// discards anything a failed flush left behind. The reader goes back only
// when empty: buffered bytes are the start of the next pipelined request and
// must survive until that batch runs.
func (c *conn) releaseBufs() {
	if c.w != nil {
		c.w.Reset(nil)
		writerPool.Put(c.w)
		c.w = nil
	}
	if c.r != nil && c.r.Buffered() == 0 {
		c.r.Reset(nil)
		readerPool.Put(c.r)
		c.r = nil
	}
}

// countTimeout attributes a connection-fatal read timeout to its overload
// counter: idle when no byte of a request had arrived, deadline (the
// slow-sender class) when one was underway. Shutdown's immediate deadline
// also surfaces as a timeout and is deliberately not counted.
func (c *conn) countTimeout(err error) {
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() || c.srv.isClosed() {
		return
	}
	if c.midRequest {
		c.srv.deadlineDisconnects.Add(1)
	} else {
		c.srv.idleDisconnects.Add(1)
	}
}

// trimSlots returns oversized value buffers after a batch (see
// valRetainBytes), and releases the whole batch accumulation structure when
// its retained storage exceeds batchRetainBytes.
func (c *conn) trimSlots() {
	total := 0
	for i := range c.ops {
		o := &c.ops[i]
		if cap(o.val) > valRetainBytes {
			o.val = nil
		}
		total += cap(o.val)
		for _, k := range o.keys {
			total += cap(k)
		}
	}
	if total > batchRetainBytes {
		c.ops = nil
		c.getKeys, c.setKeys, c.setVals = nil, nil, nil
	}
}

// readLine reads one CRLF- (or LF-) terminated request line, stripping the
// terminator. A line longer than the read buffer is consumed to its
// newline and reported as tooLong, so the connection stays framed.
func (c *conn) readLine() (line []byte, tooLong bool, err error) {
	line, err = c.r.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		c.midRequest = true
		for err == bufio.ErrBufferFull {
			_, err = c.r.ReadSlice('\n')
		}
		if err != nil {
			return nil, false, err
		}
		return nil, true, nil
	}
	if err != nil {
		// A partial line was consumed before the error: the timeout (if it
		// is one) caught a request in flight, not an idle connection.
		if len(line) > 0 {
			c.midRequest = true
		}
		return nil, false, err
	}
	line = line[:len(line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, false, nil
}

// readOp reads one request (line plus, for set, its data block) into the
// next batch slot. Malformed requests fill the slot with an error reply —
// they hold their position in the pipeline and never kill the connection.
// The returned error is reserved for connection-fatal I/O.
func (c *conn) readOp() error {
	if c.nops == len(c.ops) {
		c.ops = append(c.ops, op{})
	}
	o := &c.ops[c.nops]
	o.bad, o.msg, o.noreply, o.nkeys = errNone, "", false, 0

	line, tooLong, err := c.readLine()
	if err != nil {
		return err
	}
	if tooLong {
		o.bad, o.msg = errClient, "command line too long"
		c.nops++
		return nil
	}
	switch perr := ParseCommand(line, &c.cmd); perr.(type) {
	case nil:
	case *ClientError:
		o.bad, o.msg = errClient, perr.(*ClientError).Msg
		c.nops++
		return nil
	default: // ErrUnknownCommand
		o.bad = errGeneric
		c.nops++
		return nil
	}
	o.kind = c.cmd.Kind
	o.noreply = c.cmd.Noreply
	o.setKeys(c.cmd.Keys)

	if c.cmd.Kind == KindSet {
		// The data block is consumed even when the object will be
		// rejected — the connection must stay framed either way.
		need := itemOverhead + c.cmd.Bytes
		if cap(o.val) < need {
			o.val = make([]byte, need)
		}
		o.val = o.val[:need]
		binary.BigEndian.PutUint32(o.val[:itemOverhead], c.cmd.Flags)
		// The data block may block on the wire: from here the request is
		// underway, and the per-read deadline (not the idle budget) bounds
		// a client trickling its payload.
		c.midRequest = true
		if rt := c.srv.cfg.ReadTimeout; rt > 0 && c.r.Buffered() < need+2-itemOverhead {
			c.srv.setReadDeadline(c.nc, time.Now().Add(rt))
		}
		if _, err := io.ReadFull(c.r, o.val[itemOverhead:]); err != nil {
			return err
		}
		var crlf [2]byte
		if _, err := io.ReadFull(c.r, crlf[:]); err != nil {
			return err
		}
		if crlf[0] != '\r' || crlf[1] != '\n' {
			o.bad, o.msg = errClient, "bad data chunk"
		} else if max := c.srv.cfg.MaxItemBytes; max > 0 && len(o.keys[0])+need > max {
			o.bad, o.msg = errServer, "object too large for cache"
		}
	}
	c.nops++
	return nil
}

// execute answers the accumulated batch in request order, coalescing
// consecutive get/gets requests into one GetMany and (in SyncSet mode)
// consecutive sets into one SetMany. It reports whether a quit request
// ends the connection.
func (c *conn) execute() (quit bool) {
	ops := c.ops[:c.nops]
	for i := 0; i < len(ops); {
		o := &ops[i]
		if o.bad != errNone {
			c.writeError(o)
			i++
			continue
		}
		switch o.kind {
		case KindGet, KindGets:
			j := i + 1
			for j < len(ops) && ops[j].bad == errNone &&
				(ops[j].kind == KindGet || ops[j].kind == KindGets) {
				j++
			}
			c.execGets(ops[i:j])
			i = j
		case KindSet:
			j := i + 1
			for j < len(ops) && ops[j].bad == errNone && ops[j].kind == KindSet {
				j++
			}
			c.execSets(ops[i:j])
			i = j
		case KindDelete:
			c.execDelete(o)
			i++
		case KindStats:
			c.writeStats()
			i++
		case KindVersion:
			c.w.WriteString("VERSION nemo/1\r\n")
			i++
		case KindQuit:
			return true
		}
	}
	return false
}

// execGets serves a run of get/gets requests through one GetMany round.
func (c *conn) execGets(run []op) {
	c.getKeys = c.getKeys[:0]
	total := 0
	for i := range run {
		o := &run[i]
		c.getKeys = append(c.getKeys, o.keys[:o.nkeys]...)
		total += o.nkeys
	}
	c.srv.cmdGet.Add(uint64(total))
	values, hits := c.srv.cfg.Engine.GetMany(c.getKeys)
	idx := 0
	var hit, miss uint64
	for i := range run {
		o := &run[i]
		for k := 0; k < o.nkeys; k++ {
			if hits[idx] {
				if flags, data, ok := decodeItem(values[idx]); ok {
					hit++
					c.writeValue(o.keys[k], flags, data, o.kind == KindGets, values[idx])
					idx++
					continue
				}
				// A value below the envelope size was not written through
				// this serving layer; report a miss rather than invent
				// framing for it.
			}
			miss++
			idx++
		}
		c.w.WriteString("END\r\n")
	}
	c.srv.getHits.Add(hit)
	c.srv.getMisses.Add(miss)
}

// writeValue emits one VALUE reply; raw is the stored value (envelope
// included) the `gets` cas token is fingerprinted from.
func (c *conn) writeValue(key []byte, flags uint32, data []byte, withCas bool, raw []byte) {
	c.w.WriteString("VALUE ")
	c.w.Write(key)
	c.w.WriteByte(' ')
	c.w.Write(strconv.AppendUint(c.num[:0], uint64(flags), 10))
	c.w.WriteByte(' ')
	c.w.Write(strconv.AppendUint(c.num[:0], uint64(len(data)), 10))
	if withCas {
		c.w.WriteByte(' ')
		c.w.Write(strconv.AppendUint(c.num[:0], casToken(raw), 10))
	}
	c.w.WriteString("\r\n")
	c.w.Write(data)
	c.w.WriteString("\r\n")
}

// engineErrMsg maps an engine error to its SERVER_ERROR detail. The typed
// degraded rejection (a tripped write-path circuit breaker) compresses to
// the stable token "degraded" so clients and tests can match it without
// parsing the engine's prose.
func engineErrMsg(err error) string {
	if errors.Is(err, cachelib.ErrDegraded) {
		return "degraded"
	}
	return err.Error()
}

// execSets serves a run of set requests: one SetMany round in SyncSet
// mode, per-request SetAsync otherwise (STORED then means "accepted"; the
// flush lands via the background pool, errors surface in Stats.WriteErrors
// and on Drain — the serving layer's documented async contract).
func (c *conn) execSets(run []op) {
	c.srv.cmdSet.Add(uint64(len(run)))
	eng := c.srv.cfg.Engine
	if c.srv.cfg.SyncSet && len(run) > 1 {
		c.setKeys, c.setVals = c.setKeys[:0], c.setVals[:0]
		for i := range run {
			c.setKeys = append(c.setKeys, run[i].keys[0])
			c.setVals = append(c.setVals, run[i].val)
		}
		err := eng.SetMany(c.setKeys, c.setVals)
		for i := range run {
			if err != nil {
				// A batch error cannot be attributed per key (SetMany
				// reports the first error by shard order); every set of
				// the run reports SERVER_ERROR. MaxItemBytes pre-checks
				// keep object-size rejections out of this path, so only
				// device-level failures land here.
				c.replyStatus(&run[i], "SERVER_ERROR ", engineErrMsg(err))
				c.srv.serverErrs.Add(1)
				continue
			}
			c.replyStatus(&run[i], "STORED", "")
		}
		return
	}
	for i := range run {
		o := &run[i]
		var err error
		if c.srv.cfg.SyncSet {
			err = eng.Set(o.keys[0], o.val)
		} else {
			err = eng.SetAsync(o.keys[0], o.val)
		}
		if err != nil {
			c.replyStatus(o, "SERVER_ERROR ", engineErrMsg(err))
			c.srv.serverErrs.Add(1)
			continue
		}
		c.replyStatus(o, "STORED", "")
	}
}

// execDelete serves one delete. The engine's Delete is a tombstone insert
// (Nemo has no exact index to probe), so existence is unknowable without a
// flash read; the reply is always DELETED, documented as part of the
// protocol subset.
func (c *conn) execDelete(o *op) {
	c.srv.cmdDelete.Add(1)
	if err := c.srv.cfg.Engine.Delete(o.keys[0]); err != nil {
		c.replyStatus(o, "SERVER_ERROR ", engineErrMsg(err))
		c.srv.serverErrs.Add(1)
		return
	}
	c.replyStatus(o, "DELETED", "")
}

// replyStatus writes a one-line reply unless the request was noreply.
func (c *conn) replyStatus(o *op, status, detail string) {
	if o.noreply {
		return
	}
	c.w.WriteString(status)
	c.w.WriteString(detail)
	c.w.WriteString("\r\n")
}

// writeError answers a request that failed before the engine. noreply
// suppresses even error replies (the protocol's documented sharp edge: the
// client asked not to be told).
func (c *conn) writeError(o *op) {
	switch o.bad {
	case errGeneric:
		c.srv.protoErrs.Add(1)
		if !o.noreply {
			c.w.WriteString("ERROR\r\n")
		}
	case errClient:
		c.srv.protoErrs.Add(1)
		if !o.noreply {
			c.w.WriteString("CLIENT_ERROR ")
			c.w.WriteString(o.msg)
			c.w.WriteString("\r\n")
		}
	case errServer:
		c.srv.serverErrs.Add(1)
		if !o.noreply {
			c.w.WriteString("SERVER_ERROR ")
			c.w.WriteString(o.msg)
			c.w.WriteString("\r\n")
		}
	}
}

// writeStats answers the stats verb: the server's protocol counters, then
// every engine counter (cachelib.Stats.Fields, so counters added to Stats
// appear here automatically) under an engine_ prefix.
func (c *conn) writeStats() {
	writeStatLine := func(name string, v uint64) {
		c.w.WriteString("STAT ")
		c.w.WriteString(name)
		c.w.WriteByte(' ')
		c.w.Write(strconv.AppendUint(c.num[:0], v, 10))
		c.w.WriteString("\r\n")
	}
	for _, f := range c.srv.serverFields() {
		writeStatLine(f.Name, f.Value)
	}
	// Runtime memory gauges, so the GC-free-hot-path claim is observable in
	// production: heap object count, live heap bytes, cumulative GC pause.
	// ReadMemStats stops the world briefly; `stats` is an operator verb, not
	// a hot-path one.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	writeStatLine("runtime_heap_objects", ms.HeapObjects)
	writeStatLine("runtime_heap_bytes", ms.HeapAlloc)
	writeStatLine("runtime_gc_pause_total_ns", ms.PauseTotalNs)
	for _, f := range c.srv.cfg.Engine.Stats().Fields() {
		writeStatLine("engine_"+f.Name, f.Value)
	}
	c.w.WriteString("END\r\n")
}
