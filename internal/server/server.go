// Package server is the memcached-text-protocol front end over the Engine
// v2 surface: the piece that turns the in-process cache into a network
// service. Per-connection goroutines parse pipelined requests into small
// batches that coalesce into GetMany/SetMany calls (the batching machinery
// PRs 2-5 built exists precisely for this front end), SETs ride the
// asynchronous flush pipeline by default, and shutdown is a graceful drain:
// stop accepting, let every connection finish and reply to its in-flight
// batch, then Drain the engine so every acknowledged write has reached
// flash. See doc.go at the repository root ("The serving layer") for the
// protocol subset and the exact batching/async/drain contracts.
package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"nemo/internal/cachelib"
)

// ErrServerClosed is returned by Serve after Shutdown stops the listener.
var ErrServerClosed = errors.New("server: closed")

// shutdownWriteGrace bounds how long a closing connection may stay blocked
// flushing its final replies to a client that stopped reading.
const shutdownWriteGrace = time.Second

// Config configures a Server. Engine is required; the zero value of every
// other field is a sensible default.
type Config struct {
	// Engine serves the requests. The server never closes it — ownership
	// stays with the caller, which typically wants the engine alive after
	// Shutdown (to checkpoint, inspect stats, or serve again).
	Engine cachelib.EngineV2
	// SyncSet routes stores through the synchronous Set/SetMany path, so a
	// STORED reply means the object survived any flush it triggered. The
	// default (false) is SetAsync: STORED means the engine accepted the
	// object, and Shutdown's Drain is the point where every deferred flush
	// has completed or surfaced its error.
	SyncSet bool
	// MaxBatch caps how many pipelined requests one connection coalesces
	// into a single engine round (default 64).
	MaxBatch int
	// MaxItemBytes, when positive, pre-rejects stores whose key + stored
	// value (protocol data plus the 4-byte item envelope) exceed it,
	// answering SERVER_ERROR without touching the engine. Set it to the
	// engine's per-object capacity so a batched SetMany can never fail on
	// an oversized object (whose per-key outcome a batch error cannot
	// attribute). Zero trusts the engine to reject.
	MaxItemBytes int
	// MaxConns, when positive, caps concurrently served connections. The
	// over-cap policy is RejectBusy's choice. Zero means unlimited (the
	// historical behavior).
	MaxConns int
	// RejectBusy selects what happens to a connection beyond MaxConns:
	// false (default) applies backpressure at the listener — Serve stops
	// accepting until a slot frees, so the kernel backlog absorbs the
	// burst; true accepts the connection just long enough to answer
	// "SERVER_ERROR busy" and close, so clients fail fast instead of
	// queueing.
	RejectBusy bool
	// IdleTimeout, when positive, disconnects a connection that sits
	// between requests longer than this (counted as an idle disconnect in
	// stats). Zero never times out an idle connection.
	IdleTimeout time.Duration
	// ReadTimeout, when positive, bounds each blocking read inside a
	// request — a client that opens a set and trickles its data block
	// (slow loris) is cut off and counted as a deadline disconnect. Zero
	// leaves mid-request reads unbounded.
	ReadTimeout time.Duration
	// MaxBatchBytes caps the summed key+value bytes one connection buffers
	// into a single batch before executing, so a deeply pipelined client
	// of large sets cannot make one batch hold an unbounded heap. The cap
	// closes batches early; it never rejects a request (a single request
	// larger than the budget still forms a batch of one — MaxItemBytes is
	// the per-request bound). Zero defaults to 1 MiB.
	MaxBatchBytes int
}

// Server is a memcached-text-protocol server over one cache engine. Create
// with New, feed it listeners via Serve (or single connections via
// ServeConn), stop it with Shutdown.
type Server struct {
	cfg Config

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	closed    bool

	// done is closed by Shutdown so accept loops blocked acquiring a
	// MaxConns slot (the backpressure policy) unblock immediately.
	done chan struct{}

	// connSem is the MaxConns slot semaphore (nil when unlimited). A
	// handler owns one slot for its whole life; Serve/ServeConn acquire it
	// per Config.RejectBusy before the handler starts.
	connSem chan struct{}

	handlers sync.WaitGroup

	shutdownOnce sync.Once
	shutdownErr  error

	// Protocol-level counters, surfaced by the `stats` verb next to the
	// engine's cachelib.Stats.
	currConns  atomic.Uint64
	totalConns atomic.Uint64
	cmdGet     atomic.Uint64 // keys requested by get/gets
	cmdSet     atomic.Uint64
	cmdDelete  atomic.Uint64
	getHits    atomic.Uint64
	getMisses  atomic.Uint64
	protoErrs  atomic.Uint64 // ERROR + CLIENT_ERROR replies
	serverErrs atomic.Uint64 // SERVER_ERROR replies

	// Overload accounting: connections turned away at the MaxConns cap,
	// and the two timeout disconnect classes (idle = nothing of a request
	// received; deadline = a request was underway when the read timed out,
	// the slow-loris signature).
	connsRejected       atomic.Uint64
	idleDisconnects     atomic.Uint64
	deadlineDisconnects atomic.Uint64
}

// New returns a Server over cfg.Engine.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("server: Config.Engine is required")
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.MaxBatchBytes <= 0 {
		cfg.MaxBatchBytes = 1 << 20
	}
	s := &Server{
		cfg:       cfg,
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
		done:      make(chan struct{}),
	}
	if cfg.MaxConns > 0 {
		s.connSem = make(chan struct{}, cfg.MaxConns)
	}
	return s, nil
}

// Serve accepts connections on l until Shutdown, spawning one handler
// goroutine per connection. It always returns a non-nil error:
// ErrServerClosed after Shutdown, the accept error otherwise.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return ErrServerClosed
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()

	for {
		// Backpressure policy: hold the accept loop until a connection
		// slot frees, letting the listener backlog absorb the overload.
		held := false
		if s.connSem != nil && !s.cfg.RejectBusy {
			select {
			case s.connSem <- struct{}{}:
				held = true
			case <-s.done:
				return ErrServerClosed
			}
		}
		nc, err := l.Accept()
		if err != nil {
			if held {
				<-s.connSem
			}
			if s.isClosed() {
				return ErrServerClosed
			}
			return err
		}
		// Fast-reject policy: over the cap, answer busy and move on.
		if s.connSem != nil && s.cfg.RejectBusy {
			select {
			case s.connSem <- struct{}{}:
				held = true
			default:
				s.rejectBusy(nc)
				continue
			}
		}
		if !s.registerHandler() {
			// Shutdown won the race: the connection was accepted but must
			// not start a handler (it would miss the deadline pass, and a
			// WaitGroup.Add here could trail doShutdown's Wait).
			nc.Close()
			if held {
				<-s.connSem
			}
			return ErrServerClosed
		}
		go func() {
			defer s.handlers.Done()
			if held {
				defer func() { <-s.connSem }()
			}
			s.serveConn(nc)
		}()
	}
}

// ServeConn serves one already-established connection (tests run the full
// protocol over net.Pipe this way, no ports needed), blocking until the
// client quits, the connection fails, or Shutdown drains it. It follows the
// same MaxConns policy as Serve, so overload tests drive the cap without a
// listener.
func (s *Server) ServeConn(nc net.Conn) {
	held := false
	if s.connSem != nil {
		if s.cfg.RejectBusy {
			select {
			case s.connSem <- struct{}{}:
				held = true
			default:
				s.rejectBusy(nc)
				return
			}
		} else {
			select {
			case s.connSem <- struct{}{}:
				held = true
			case <-s.done:
				nc.Close()
				return
			}
		}
	}
	if held {
		defer func() { <-s.connSem }()
	}
	if !s.registerHandler() {
		nc.Close()
		return
	}
	defer s.handlers.Done()
	s.serveConn(nc)
}

// registerHandler reserves a handler slot under the server lock, so a
// handler either starts before Shutdown flips closed (and is covered by
// doShutdown's Wait) or not at all. Registering outside the lock is the
// race this method exists to close: an Accept winning against Shutdown
// would Add after Wait and serve a connection nobody will ever drain.
func (s *Server) registerHandler() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.handlers.Add(1)
	return true
}

// rejectBusy answers an over-cap connection with the canonical busy error
// and closes it. The write carries a short deadline so a client that never
// reads cannot pin the accept loop.
func (s *Server) rejectBusy(nc net.Conn) {
	s.connsRejected.Add(1)
	nc.SetWriteDeadline(time.Now().Add(shutdownWriteGrace))
	nc.Write([]byte("SERVER_ERROR busy\r\n"))
	nc.Close()
}

// Shutdown gracefully stops the server: new connections stop being
// accepted, every live connection finishes executing and replying to its
// in-flight batch (a blocking read is interrupted via read deadline; final
// replies get shutdownWriteGrace to flush), and once all handlers have
// exited the engine is drained, so every acknowledged asynchronous SET has
// reached flash — or surfaced its error as Shutdown's return value.
// Shutdown runs once; concurrent and repeated calls return the first run's
// error. The engine itself stays open (and owned by the caller).
func (s *Server) Shutdown() error {
	s.shutdownOnce.Do(func() { s.shutdownErr = s.doShutdown() })
	return s.shutdownErr
}

func (s *Server) doShutdown() error {
	s.mu.Lock()
	s.closed = true
	close(s.done)
	for l := range s.listeners {
		l.Close()
	}
	now := time.Now()
	for nc := range s.conns {
		nc.SetReadDeadline(now) // unblock handlers parked in Read
		nc.SetWriteDeadline(now.Add(shutdownWriteGrace))
	}
	s.mu.Unlock()

	s.handlers.Wait()
	return s.cfg.Engine.Drain()
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// setReadDeadline applies a read deadline and then re-asserts Shutdown's
// immediate deadline if Shutdown raced in between — without the recheck, a
// handler arming its idle timeout could overwrite the stop signal and park
// until the timeout instead of draining now.
func (s *Server) setReadDeadline(nc net.Conn, t time.Time) {
	nc.SetReadDeadline(t)
	if s.isClosed() {
		nc.SetReadDeadline(time.Now())
	}
}

// addConn registers a live connection, reporting false when the server is
// already closed (the race where Accept won against Shutdown).
func (s *Server) addConn(nc net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[nc] = struct{}{}
	s.currConns.Add(1)
	s.totalConns.Add(1)
	return true
}

func (s *Server) removeConn(nc net.Conn) {
	s.mu.Lock()
	delete(s.conns, nc)
	s.mu.Unlock()
	s.currConns.Add(^uint64(0))
}

// Fields returns the protocol-level counters in stable order — the same
// rows the `stats` verb emits ahead of the engine fields. Exported for
// operational dumps (nemoserve's SIGQUIT health report).
func (s *Server) Fields() []cachelib.Field { return s.serverFields() }

// serverFields returns the protocol-level counters in stable order; the
// `stats` verb emits them ahead of the engine's cachelib.Stats fields.
func (s *Server) serverFields() []cachelib.Field {
	return []cachelib.Field{
		{Name: "curr_connections", Value: s.currConns.Load()},
		{Name: "total_connections", Value: s.totalConns.Load()},
		{Name: "cmd_get", Value: s.cmdGet.Load()},
		{Name: "cmd_set", Value: s.cmdSet.Load()},
		{Name: "cmd_delete", Value: s.cmdDelete.Load()},
		{Name: "get_hits", Value: s.getHits.Load()},
		{Name: "get_misses", Value: s.getMisses.Load()},
		{Name: "protocol_errors", Value: s.protoErrs.Load()},
		{Name: "server_errors", Value: s.serverErrs.Load()},
		{Name: "conns_rejected", Value: s.connsRejected.Load()},
		{Name: "idle_disconnects", Value: s.idleDisconnects.Load()},
		{Name: "deadline_disconnects", Value: s.deadlineDisconnects.Load()},
	}
}
