package server_test

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"nemo/internal/devtest"
	"nemo/internal/memclient"
	"nemo/internal/server"
)

func drainKey(i int) []byte { return []byte(fmt.Sprintf("drain-key-%04d", i)) }

func drainData(i int) []byte {
	d := make([]byte, 20)
	for j := range d {
		d[j] = byte('A' + (i+j)%26)
	}
	return d
}

// TestGracefulDrainNoStoredLost pins the shutdown contract of the async set
// path: every set the server answered with STORED was accepted by the
// engine, and Shutdown's Drain flushes whatever of it is still in a memory
// SG — so after Shutdown completes, every STORED key is readable straight
// off the engine. The workload is sized well under the test geometry's
// capacity so a lost item cannot hide behind legitimate eviction (the
// Evictions counter is asserted zero to keep the test honest if the
// geometry ever changes).
func TestGracefulDrainNoStoredLost(t *testing.T) {
	const nKeys, batch = 200, 32
	eng, _ := newEngine(t, 2, 2)
	defer eng.Close()
	srv, err := server.New(server.Config{Engine: eng, MaxItemBytes: testMaxItem})
	if err != nil {
		t.Fatal(err)
	}
	cli, sv := net.Pipe()
	defer cli.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeConn(sv)
	}()

	cl := memclient.New(cli)
	for base := 0; base < nKeys; base += batch {
		for i := base; i < base+batch && i < nKeys; i++ {
			cl.QueueSet(drainKey(i), drainData(i), uint32(i), false)
		}
		if err := cl.Flush(); err != nil {
			t.Fatal(err)
		}
		for i := base; i < base+batch && i < nKeys; i++ {
			status, err := cl.ReadStatus()
			if err != nil || status != "STORED" {
				t.Fatalf("set %d: %q, %v", i, status, err)
			}
		}
	}

	// Close the server while background flushes may still be in flight;
	// Shutdown must not return before the drain lands them.
	if err := srv.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	<-done

	st := eng.Stats()
	if st.WriteErrors != 0 || st.Evictions != 0 {
		t.Fatalf("drain test geometry no longer eviction-free: %+v", st)
	}
	for i := 0; i < nKeys; i++ {
		want := make([]byte, 4+len(drainData(i)))
		binary.BigEndian.PutUint32(want, uint32(i))
		copy(want[4:], drainData(i))
		v, hit := eng.Get(drainKey(i))
		if !hit {
			t.Fatalf("STORED key %d lost across Shutdown", i)
		}
		if string(v) != string(want) {
			t.Fatalf("key %d corrupted across Shutdown: got %q want %q", i, v, want)
		}
	}
}

// TestWriteErrorSurfacesInServedStats pins the async error surface end to
// end over the wire: with a device write fault armed, flushes fail while
// the connection keeps being served and the stats verb reports the climbing
// engine_write_errors counter. Where the error itself lands depends on
// which path ran the failing flush — inline on the handler (SERVER_ERROR on
// that set) or on the flusher pool (deferred, out of Shutdown's Drain) —
// so Shutdown may return nil or the injected fault, never anything else.
func TestWriteErrorSurfacesInServedStats(t *testing.T) {
	devtest.Run(t, func(t *testing.T, b devtest.Backend) {
		eng, dev := newEngineOn(t, b, 1, 1)
		defer eng.Close()
		boom := errors.New("injected append fault")
		dev.SetWriteFault(func(zone int) error { return boom })
		defer dev.SetWriteFault(nil)

		srv, err := server.New(server.Config{Engine: eng, MaxItemBytes: testMaxItem})
		if err != nil {
			t.Fatal(err)
		}
		cli, sv := net.Pipe()
		defer cli.Close()
		done := make(chan struct{})
		go func() {
			defer close(done)
			srv.ServeConn(sv)
		}()

		cl := memclient.New(cli)
		surfaced := false
		for i := 0; i < 500 && !surfaced; i++ {
			// STORED means "accepted"; once backpressure routes a flush inline,
			// the injected fault comes back as SERVER_ERROR — both are fine
			// here, the assertion is the stats surface.
			cl.QueueSet(drainKey(i), drainData(i), 0, false)
			if err := cl.Flush(); err != nil {
				t.Fatal(err)
			}
			if _, err := cl.ReadStatus(); err != nil {
				t.Fatal(err)
			}
			stats, err := cl.Stats()
			if err != nil {
				t.Fatal(err)
			}
			surfaced = stats["engine_write_errors"] >= 1
		}
		if !surfaced {
			t.Fatal("engine_write_errors never surfaced in the stats verb")
		}

		if err := srv.Shutdown(); err != nil && !errors.Is(err, boom) {
			t.Fatalf("Shutdown returned %v, want nil or the injected flush fault", err)
		}
		<-done
		if st := eng.Stats(); st.WriteErrors == 0 {
			t.Fatalf("WriteErrors not in final engine stats: %+v", st)
		}
		dev.SetWriteFault(nil)
	})
}

// TestFaultBlocksMidDrain injects the fault mid-shutdown: a blockable
// write hook holds a flush in flight, Shutdown is entered while it is
// blocked — so the graceful drain (handler wait + engine Drain) is waiting
// on that very flush — and only then is the fault released. Shutdown must
// complete rather than hang, and the failure must be visible in the final
// stats as WriteErrors (returned from Shutdown too when the flusher pool,
// rather than an inline handler flush, owned the failed flush).
func TestFaultBlocksMidDrain(t *testing.T) {
	devtest.Run(t, func(t *testing.T, b devtest.Backend) {
		eng, dev := newEngineOn(t, b, 1, 1)
		defer eng.Close()
		boom := errors.New("injected mid-drain fault")
		gate := make(chan struct{})
		entered := make(chan struct{})
		var once sync.Once
		dev.SetWriteFault(func(zone int) error {
			once.Do(func() { close(entered) })
			<-gate
			return boom
		})
		defer dev.SetWriteFault(nil)

		srv, err := server.New(server.Config{Engine: eng, MaxItemBytes: testMaxItem})
		if err != nil {
			t.Fatal(err)
		}
		cli, sv := net.Pipe()
		defer cli.Close()
		done := make(chan struct{})
		go func() {
			defer close(done)
			srv.ServeConn(sv)
		}()

		// Feed noreply sets until a flush reaches the (now blocked) device
		// hook. The writer goroutine may itself end up blocked behind the held
		// flush; it is abandoned — closing the pipe in cleanup releases it.
		go func() {
			cl := memclient.New(cli)
			for i := 0; i < 2000; i++ {
				select {
				case <-entered:
					return
				default:
				}
				cl.QueueSet(drainKey(i), drainData(i), 0, true)
				if cl.Flush() != nil {
					return
				}
			}
		}()
		select {
		case <-entered:
		case <-time.After(30 * time.Second):
			t.Fatal("no flush ever reached the device hook")
		}

		// Enter Shutdown while the flush is held in flight, then release the
		// fault so it fails under the drain.
		shutdownErr := make(chan error, 1)
		go func() { shutdownErr <- srv.Shutdown() }()
		time.Sleep(50 * time.Millisecond)
		close(gate)

		select {
		case err := <-shutdownErr:
			if err != nil && !errors.Is(err, boom) {
				t.Fatalf("Shutdown returned %v, want nil or the injected fault", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("Shutdown hung across the failed drain")
		}
		<-done
		if st := eng.Stats(); st.WriteErrors == 0 {
			t.Fatalf("WriteErrors not surfaced in final stats: %+v", st)
		}
		dev.SetWriteFault(nil)
	})
}
