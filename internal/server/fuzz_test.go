package server_test

import (
	"testing"

	"nemo/internal/server"
)

// FuzzParseCommand fuzzes the memcached-text-protocol command parser
// (mirroring the trace package's FuzzReadTrace): arbitrary request lines
// must parse or be rejected with the typed protocol errors — never a
// panic, and never a Command that violates the wire invariants. The
// load-bearing one is key hygiene: a key containing a space, CR, LF, NUL,
// or any other control byte must never survive parsing, because such a key
// echoed into a VALUE reply line would desynchronize the connection's
// framing.
func FuzzParseCommand(f *testing.F) {
	seeds := []string{
		"get foo",
		"get a b c",
		"gets foo bar",
		"set key 7 0 5",
		"set key 7 0 5 noreply",
		"set key 4294967295 -1 65536",
		"delete key",
		"delete key noreply",
		"stats",
		"quit",
		"version",
		"",
		"   ",
		"get",
		"set k 0 0",
		"set k notanum 0 3",
		"set k 0 0 3 garbage",
		"get a\rb",      // CR embedded in a key
		"get a\nb",      // LF embedded in a key
		"get \x00key",   // NUL
		"get k\x7fey",   // DEL
		"get key\tname", // TAB
		"get  double  spaces ",
		"bogus command line",
		"set " + string(make([]byte, 300)) + " 0 0 1",
		"get \xff\xfe\xfd", // high bytes are legal key material
		"delete a b",
		"stats items",
		"set k 0 0 99999999999999999999", // overflows int
		"set k 0 0 -1",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, line []byte) {
		var cmd server.Command
		err := server.ParseCommand(line, &cmd)
		if err != nil {
			// Rejected lines must carry one of the two typed protocol
			// errors (the connection handler maps them to ERROR /
			// CLIENT_ERROR replies).
			if _, ok := err.(*server.ClientError); !ok && err != server.ErrUnknownCommand {
				t.Fatalf("ParseCommand(%q) returned untyped error %v", line, err)
			}
			return
		}
		for _, k := range cmd.Keys {
			if len(k) == 0 || len(k) > server.MaxKeyLen {
				t.Fatalf("ParseCommand(%q) let through key of %d bytes", line, len(k))
			}
			for _, b := range k {
				if b < 0x21 || b == 0x7f {
					t.Fatalf("ParseCommand(%q) let through key byte 0x%02x", line, b)
				}
			}
		}
		switch cmd.Kind {
		case server.KindGet, server.KindGets:
			if len(cmd.Keys) == 0 {
				t.Fatalf("ParseCommand(%q): get with no keys", line)
			}
			if cmd.Noreply {
				t.Fatalf("ParseCommand(%q): noreply on a get", line)
			}
		case server.KindSet:
			if len(cmd.Keys) != 1 {
				t.Fatalf("ParseCommand(%q): set with %d keys", line, len(cmd.Keys))
			}
			if cmd.Bytes < 0 || cmd.Bytes > server.MaxDataLen {
				t.Fatalf("ParseCommand(%q): set bytes %d out of range", line, cmd.Bytes)
			}
		case server.KindDelete:
			if len(cmd.Keys) != 1 {
				t.Fatalf("ParseCommand(%q): delete with %d keys", line, len(cmd.Keys))
			}
		case server.KindStats, server.KindQuit, server.KindVersion:
			if len(cmd.Keys) != 0 || cmd.Noreply {
				t.Fatalf("ParseCommand(%q): bare verb carrying keys/noreply", line)
			}
		default:
			t.Fatalf("ParseCommand(%q): unknown kind %d", line, cmd.Kind)
		}
	})
}
