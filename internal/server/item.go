package server

import (
	"encoding/binary"
	"hash/fnv"
)

// The engine stores opaque byte values with no metadata sidecar, while the
// memcached protocol round-trips a 32-bit flags word per item and permits
// empty data blocks (which the engine reserves for deletion tombstones).
// The serving layer bridges both with a 4-byte item envelope: the stored
// value is the big-endian flags word followed by the client data. An empty
// data block therefore stores as a 4-byte value the engine happily admits,
// and flags survive eviction-and-writeback for free because they live
// inside the object.

// itemOverhead is the envelope size prepended to every stored value.
const itemOverhead = 4

// encodeItem appends the envelope for (flags, data) to dst and returns the
// extended slice — the value handed to the engine.
func encodeItem(dst []byte, flags uint32, data []byte) []byte {
	var hdr [itemOverhead]byte
	binary.BigEndian.PutUint32(hdr[:], flags)
	dst = append(dst, hdr[:]...)
	return append(dst, data...)
}

// decodeItem splits a stored value back into (flags, data). Values shorter
// than the envelope cannot have been written by this serving layer; they
// decode as ok=false and the caller reports a miss rather than fabricating
// framing for bytes it does not understand.
func decodeItem(value []byte) (flags uint32, data []byte, ok bool) {
	if len(value) < itemOverhead {
		return 0, nil, false
	}
	return binary.BigEndian.Uint32(value[:itemOverhead]), value[itemOverhead:], true
}

// casToken derives the `gets` cas token: an FNV-1a fingerprint of the
// stored value (envelope included). The engine keeps no per-object version
// counter, so the token is a content fingerprint — equal values share a
// token — which is exactly what a cas-style "did it change under me" probe
// needs. The `cas` verb itself is not implemented.
func casToken(value []byte) uint64 {
	h := fnv.New64a()
	h.Write(value)
	return h.Sum64()
}
