package server_test

import (
	"io"
	"net"
	"testing"
	"time"

	"nemo/internal/core"
	"nemo/internal/device"
	"nemo/internal/devtest"
	"nemo/internal/flashsim"
	"nemo/internal/server"
)

// testMaxItem mirrors the engine capacity of the small test geometry
// below: key + stored value must fit a 512-byte set page minus the block
// header and entry overhead.
const testMaxItem = 512 - 4 - 11

// newEngine builds a small sharded Nemo (512 B sets, 8 data zones per
// shard — the core package's own test geometry) on a fresh simulated
// device, returning the device for fault injection.
func newEngine(t testing.TB, shards, flushers int) (*core.Sharded, device.Device) {
	t.Helper()
	const perData = 8
	perIdx := core.IndexZonesFor(perData, 4)
	dev := flashsim.New(flashsim.Config{PageSize: 512, PagesPerZone: 16, Zones: shards * (perData + perIdx)})
	return engineOn(t, dev, shards, flushers), dev
}

// newEngineOn is newEngine on an arbitrary device backend: the drain fault
// suite runs per backend through devtest.Run, so the served error surface
// is pinned on the real file-backed device too.
func newEngineOn(t *testing.T, b devtest.Backend, shards, flushers int) (*core.Sharded, device.Device) {
	t.Helper()
	const perData = 8
	perIdx := core.IndexZonesFor(perData, 4)
	dev := b.New(t, device.Geometry{PageSize: 512, PagesPerZone: 16, Zones: shards * (perData + perIdx)})
	return engineOn(t, dev, shards, flushers), dev
}

func engineOn(t testing.TB, dev device.Device, shards, flushers int) *core.Sharded {
	t.Helper()
	cfg := core.DefaultConfig(dev, 8*shards)
	cfg.Shards = shards
	cfg.Flushers = flushers
	cfg.SGsPerIndexGroup = 4
	cfg.TargetObjsPerSet = 8
	cfg.FlushThreshold = 8
	c, err := core.NewSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// startPipeServer serves one net.Pipe connection — the full protocol
// stack, no ports — returning the client end. Cleanup shuts the server
// down and closes the engine.
func startPipeServer(t testing.TB, cfg server.Config) net.Conn {
	t.Helper()
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cli, sv := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeConn(sv)
	}()
	t.Cleanup(func() {
		cli.Close()
		if err := srv.Shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		<-done
		if err := cfg.Engine.Close(); err != nil {
			t.Errorf("engine close: %v", err)
		}
	})
	return cli
}

// send writes a raw request chunk, failing the test on error.
func send(t *testing.T, c net.Conn, data string) {
	t.Helper()
	c.SetWriteDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Write([]byte(data)); err != nil {
		t.Fatalf("send %q: %v", data, err)
	}
}

// expect reads exactly len(want) reply bytes and compares byte-for-byte.
func expect(t *testing.T, c net.Conn, want string) {
	t.Helper()
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, len(want))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("reading %q: %v (got %q)", want, err, buf)
	}
	if string(buf) != want {
		t.Fatalf("reply mismatch:\n got  %q\n want %q", buf, want)
	}
}

// expectEOF asserts the server closed the connection.
func expectEOF(t *testing.T, c net.Conn) {
	t.Helper()
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	var one [1]byte
	if n, err := c.Read(one[:]); err != io.EOF {
		t.Fatalf("want EOF, got n=%d err=%v", n, err)
	}
}
