package server

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
)

// This file is the memcached text-protocol command parser: one request line
// (already stripped of its CRLF terminator) in, one Command out. The parser
// is deliberately allocation-light — parsed keys alias the input line, and
// the caller owns copying them before the line buffer is reused — and is
// pinned by FuzzParseCommand: it must never panic, and a key containing a
// space, CR, LF, or NUL must never survive parsing (an embedded CR/LF in a
// key would desynchronize the framing of every later reply on the
// connection).

// MaxKeyLen is the protocol key-length cap (memcached's 250; the engine
// accepts up to 255, so every protocol-legal key is engine-legal).
const MaxKeyLen = 250

// MaxDataLen is the protocol cap on a set's data block. The setblock codec
// stores value lengths in a uint16, so nothing past 64 KiB could ever be
// admitted; a parsed byte count above this cap is rejected before the
// server commits to swallowing the block.
const MaxDataLen = 64 << 10

// Kind discriminates the protocol verbs the server implements.
type Kind uint8

const (
	// KindGet is `get <key>+`: multi-key lookup.
	KindGet Kind = iota
	// KindGets is `gets <key>+`: multi-key lookup with cas tokens.
	KindGets
	// KindSet is `set <key> <flags> <exptime> <bytes> [noreply]` followed
	// by a <bytes>-long data block.
	KindSet
	// KindDelete is `delete <key> [noreply]`.
	KindDelete
	// KindStats is `stats`.
	KindStats
	// KindQuit is `quit`: the client is done; close the connection.
	KindQuit
	// KindVersion is `version`.
	KindVersion
)

// Command is one parsed request line. Keys alias the parsed line and are
// invalidated by the next read into that buffer.
type Command struct {
	Kind    Kind
	Keys    [][]byte // get/gets: all keys; set/delete: exactly one
	Flags   uint32   // set: opaque client flags, stored with the item
	Exptime int64    // set: accepted and ignored (documented; see doc.go)
	Bytes   int      // set: data-block length
	Noreply bool     // set/delete: suppress the reply
}

// ErrUnknownCommand reports a well-formed line whose verb the server does
// not implement; the protocol answer is "ERROR\r\n" and the connection
// stays usable.
var ErrUnknownCommand = errors.New("unknown command")

// ClientError is a malformed request line: the protocol answer is
// "CLIENT_ERROR <msg>\r\n" and the connection stays usable.
type ClientError struct{ Msg string }

func (e *ClientError) Error() string { return "client error: " + e.Msg }

func clientErrorf(format string, args ...any) error {
	return &ClientError{Msg: fmt.Sprintf(format, args...)}
}

// ParseCommand parses one request line (no trailing CRLF) into cmd,
// reusing cmd.Keys' backing array. It returns ErrUnknownCommand for
// unimplemented verbs, a *ClientError for malformed lines, and nil on
// success; on error cmd's contents are unspecified.
func ParseCommand(line []byte, cmd *Command) error {
	*cmd = Command{Keys: cmd.Keys[:0]}
	fields, ok := splitFields(line)
	if !ok {
		return clientErrorf("control characters in command line")
	}
	if len(fields) == 0 {
		return ErrUnknownCommand
	}
	verb, args := fields[0], fields[1:]
	switch {
	case bytes.Equal(verb, []byte("get")), bytes.Equal(verb, []byte("gets")):
		cmd.Kind = KindGet
		if len(verb) == 4 {
			cmd.Kind = KindGets
		}
		if len(args) == 0 {
			return clientErrorf("bad command line format")
		}
		for _, k := range args {
			if err := checkKey(k); err != nil {
				return err
			}
			cmd.Keys = append(cmd.Keys, k)
		}
		return nil
	case bytes.Equal(verb, []byte("set")):
		cmd.Kind = KindSet
		if len(args) == 5 && bytes.Equal(args[4], []byte("noreply")) {
			cmd.Noreply = true
			args = args[:4]
		}
		if len(args) != 4 {
			return clientErrorf("bad command line format")
		}
		if err := checkKey(args[0]); err != nil {
			return err
		}
		flags, err1 := strconv.ParseUint(string(args[1]), 10, 32)
		exp, err2 := strconv.ParseInt(string(args[2]), 10, 64)
		n, err3 := strconv.ParseUint(string(args[3]), 10, 31)
		if err1 != nil || err2 != nil || err3 != nil {
			return clientErrorf("bad command line format")
		}
		if n > MaxDataLen {
			return clientErrorf("bad data chunk")
		}
		cmd.Keys = append(cmd.Keys, args[0])
		cmd.Flags = uint32(flags)
		cmd.Exptime = exp
		cmd.Bytes = int(n)
		return nil
	case bytes.Equal(verb, []byte("delete")):
		cmd.Kind = KindDelete
		if len(args) == 2 && bytes.Equal(args[1], []byte("noreply")) {
			cmd.Noreply = true
			args = args[:1]
		}
		if len(args) != 1 {
			return clientErrorf("bad command line format")
		}
		if err := checkKey(args[0]); err != nil {
			return err
		}
		cmd.Keys = append(cmd.Keys, args[0])
		return nil
	case bytes.Equal(verb, []byte("stats")):
		cmd.Kind = KindStats
		if len(args) != 0 {
			// Sub-statistics (`stats items`, ...) are not implemented.
			return ErrUnknownCommand
		}
		return nil
	case bytes.Equal(verb, []byte("quit")):
		cmd.Kind = KindQuit
		if len(args) != 0 {
			return clientErrorf("bad command line format")
		}
		return nil
	case bytes.Equal(verb, []byte("version")):
		cmd.Kind = KindVersion
		if len(args) != 0 {
			return clientErrorf("bad command line format")
		}
		return nil
	}
	return ErrUnknownCommand
}

// splitFields splits a request line on single spaces, rejecting lines with
// embedded control bytes (CR, LF, NUL): reporting ok=false rather than
// passing such bytes through is what keeps a hostile key from breaking
// reply framing. Empty fields (runs of spaces) collapse, matching
// memcached's tokenizer.
func splitFields(line []byte) (fields [][]byte, ok bool) {
	start := -1
	for i := 0; i <= len(line); i++ {
		var b byte
		if i < len(line) {
			b = line[i]
		} else {
			b = ' ' // virtual terminator flushes the last field
		}
		switch {
		case b == ' ':
			if start >= 0 {
				fields = append(fields, line[start:i])
				start = -1
			}
		case b == '\r' || b == '\n' || b == 0:
			return nil, false
		default:
			if start < 0 {
				start = i
			}
		}
	}
	return fields, true
}

// checkKey enforces the protocol key contract: 1..MaxKeyLen bytes of
// printable non-space ASCII-compatible bytes. splitFields already excludes
// space/CR/LF/NUL; this adds the remaining control bytes and the length
// caps.
func checkKey(key []byte) error {
	if len(key) == 0 {
		return clientErrorf("bad command line format")
	}
	if len(key) > MaxKeyLen {
		return clientErrorf("key too long (%d > %d)", len(key), MaxKeyLen)
	}
	for _, b := range key {
		if b < 0x21 || b == 0x7f {
			return clientErrorf("invalid key byte 0x%02x", b)
		}
	}
	return nil
}
