package server_test

// Overload-protection tests: the MaxConns cap under both policies, idle and
// slow-loris disconnects with their typed counters, the batch byte budget,
// the Shutdown/accept race pin, and the degraded-window acceptance test the
// circuit breaker is measured by.

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"nemo/internal/core"
	"nemo/internal/device"
	"nemo/internal/flashsim"
	"nemo/internal/server"
)

// startServer builds a server and returns it plus a dialer that serves a
// fresh net.Pipe connection per call — unlike startPipeServer, tests can
// open several connections against one server and inspect its counters.
func startServer(t *testing.T, cfg server.Config) (*server.Server, func() net.Conn) {
	t.Helper()
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	t.Cleanup(func() {
		if err := srv.Shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		wg.Wait()
		if err := cfg.Engine.Close(); err != nil {
			t.Errorf("engine close: %v", err)
		}
	})
	return srv, func() net.Conn {
		cli, sv := net.Pipe()
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.ServeConn(sv)
		}()
		return cli
	}
}

// readStats issues the stats verb and parses the reply into a map. It must
// be the only in-flight request on the connection.
func readStats(t *testing.T, c net.Conn) map[string]uint64 {
	t.Helper()
	send(t, c, "stats\r\n")
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	var buf []byte
	one := make([]byte, 1)
	for !bytes.HasSuffix(buf, []byte("END\r\n")) {
		if _, err := c.Read(one); err != nil {
			t.Fatalf("reading stats: %v (got %q)", err, buf)
		}
		buf = append(buf, one[0])
	}
	m := make(map[string]uint64)
	for _, line := range strings.Split(string(buf), "\r\n") {
		var name string
		var v uint64
		if _, err := fmt.Sscanf(line, "STAT %s %d", &name, &v); err == nil {
			m[name] = v
		}
	}
	return m
}

func TestMaxConnsRejectBusy(t *testing.T) {
	eng, _ := newEngine(t, 1, 0)
	_, dial := startServer(t, server.Config{Engine: eng, MaxConns: 1, RejectBusy: true})

	c1 := dial()
	defer c1.Close()
	send(t, c1, "version\r\n")
	expect(t, c1, "VERSION nemo/1\r\n")

	// Over the cap: the second connection is answered busy and closed.
	c2 := dial()
	defer c2.Close()
	expect(t, c2, "SERVER_ERROR busy\r\n")
	expectEOF(t, c2)

	m := readStats(t, c1)
	if m["conns_rejected"] != 1 {
		t.Fatalf("conns_rejected = %d, want 1", m["conns_rejected"])
	}
	if m["curr_connections"] != 1 {
		t.Fatalf("curr_connections = %d, want 1", m["curr_connections"])
	}

	// The slot frees when the first connection quits; the next one serves.
	send(t, c1, "quit\r\n")
	expectEOF(t, c1)
	c3 := dial()
	defer c3.Close()
	send(t, c3, "version\r\n")
	expect(t, c3, "VERSION nemo/1\r\n")
}

func TestMaxConnsBlockBackpressure(t *testing.T) {
	eng, _ := newEngine(t, 1, 0)
	_, dial := startServer(t, server.Config{Engine: eng, MaxConns: 1})

	c1 := dial()
	defer c1.Close()
	send(t, c1, "version\r\n")
	expect(t, c1, "VERSION nemo/1\r\n")

	// The second connection's handler parks acquiring a slot: nothing
	// reads its pipe, so a deadline-bounded write cannot complete.
	c2 := dial()
	defer c2.Close()
	c2.SetWriteDeadline(time.Now().Add(100 * time.Millisecond))
	if _, err := c2.Write([]byte("version\r\n")); err == nil {
		t.Fatal("write on an over-cap connection completed while the slot was held")
	}
	c2.SetWriteDeadline(time.Time{})

	// Quit the first connection: the slot frees and the parked handler
	// serves the second connection normally.
	send(t, c1, "quit\r\n")
	expectEOF(t, c1)
	send(t, c2, "version\r\n")
	expect(t, c2, "VERSION nemo/1\r\n")
}

func TestMaxConnsBlockUnblocksOnShutdown(t *testing.T) {
	eng, _ := newEngine(t, 1, 0)
	srv, err := server.New(server.Config{Engine: eng, MaxConns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	cli1, sv1 := net.Pipe()
	defer cli1.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv.ServeConn(sv1)
	}()
	send(t, cli1, "version\r\n")
	expect(t, cli1, "VERSION nemo/1\r\n")

	// Parked waiting for a slot that will never free.
	cli2, sv2 := net.Pipe()
	defer cli2.Close()
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv.ServeConn(sv2)
	}()

	// Shutdown must unblock the parked acquire, close the waiting
	// connection, and drain the served one.
	if err := srv.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	expectEOF(t, cli1)
	expectEOF(t, cli2)
}

func TestIdleTimeoutDisconnect(t *testing.T) {
	eng, _ := newEngine(t, 1, 0)
	_, dial := startServer(t, server.Config{Engine: eng, IdleTimeout: 50 * time.Millisecond})

	c1 := dial()
	defer c1.Close()
	send(t, c1, "version\r\n")
	expect(t, c1, "VERSION nemo/1\r\n")
	// Sit idle past the budget: the server cuts the connection.
	expectEOF(t, c1)

	c2 := dial()
	defer c2.Close()
	m := readStats(t, c2)
	if m["idle_disconnects"] != 1 || m["deadline_disconnects"] != 0 {
		t.Fatalf("disconnects = idle %d deadline %d, want 1/0",
			m["idle_disconnects"], m["deadline_disconnects"])
	}
}

func TestSlowLorisDisconnect(t *testing.T) {
	eng, _ := newEngine(t, 1, 0)
	_, dial := startServer(t, server.Config{
		Engine:      eng,
		IdleTimeout: 500 * time.Millisecond,
		ReadTimeout: 50 * time.Millisecond,
	})

	// A set whose data block trickles in and stalls: the per-read deadline
	// cuts it off well inside the idle budget, classified as a deadline
	// (slow-sender) disconnect.
	c1 := dial()
	defer c1.Close()
	send(t, c1, "set loris 0 0 64\r\nabc")
	start := time.Now()
	expectEOF(t, c1)
	if waited := time.Since(start); waited > 400*time.Millisecond {
		t.Fatalf("slow-loris survived %v, want the ~50ms read deadline", waited)
	}

	// A half-sent command line that stalls is also a request in flight.
	c2 := dial()
	defer c2.Close()
	send(t, c2, "get half-a-comm")
	expectEOF(t, c2)

	c3 := dial()
	defer c3.Close()
	m := readStats(t, c3)
	if m["deadline_disconnects"] != 2 || m["idle_disconnects"] != 0 {
		t.Fatalf("disconnects = deadline %d idle %d, want 2/0",
			m["deadline_disconnects"], m["idle_disconnects"])
	}
}

func TestBatchByteBudget(t *testing.T) {
	eng, _ := newEngine(t, 1, 0)
	// A budget smaller than any single set: every batch closes after one
	// buffered request, and the pipeline must still answer everything in
	// order.
	cli := startPipeServer(t, server.Config{Engine: eng, SyncSet: true, MaxBatchBytes: 1})
	defer cli.Close()

	var req, want strings.Builder
	for i := 0; i < 8; i++ {
		val := fmt.Sprintf("budget-value-%02d", i)
		fmt.Fprintf(&req, "set bk%d 0 0 %d\r\n%s\r\n", i, len(val), val)
		want.WriteString("STORED\r\n")
	}
	for i := 0; i < 8; i++ {
		val := fmt.Sprintf("budget-value-%02d", i)
		fmt.Fprintf(&req, "get bk%d\r\n", i)
		fmt.Fprintf(&want, "VALUE bk%d 0 %d\r\n%s\r\nEND\r\n", i, len(val), val)
	}
	send(t, cli, req.String())
	expect(t, cli, want.String())
}

// TestShutdownAcceptRace pins the fix for the accept/shutdown race: a
// connection accepted concurrently with Shutdown must either be served and
// drained or closed immediately — never handed to a handler registered
// after the drain pass (the old code's WaitGroup.Add could trail Wait).
// Run under -race this also catches the WaitGroup misuse itself.
func TestShutdownAcceptRace(t *testing.T) {
	eng, _ := newEngine(t, 1, 0)
	defer eng.Close()
	for i := 0; i < 50; i++ {
		srv, err := server.New(server.Config{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		serveDone := make(chan error, 1)
		go func() { serveDone <- srv.Serve(l) }()

		var dialers sync.WaitGroup
		for j := 0; j < 4; j++ {
			dialers.Add(1)
			go func() {
				defer dialers.Done()
				c, err := net.Dial("tcp", l.Addr().String())
				if err != nil {
					return // listener already closed: fine
				}
				c.Write([]byte("version\r\n"))
				c.SetReadDeadline(time.Now().Add(time.Second))
				buf := make([]byte, 64)
				c.Read(buf) // reply, busy, or immediate close: all legal
				c.Close()
			}()
		}
		if err := srv.Shutdown(); err != nil {
			t.Fatalf("iter %d: shutdown: %v", i, err)
		}
		if err := <-serveDone; err != server.ErrServerClosed {
			t.Fatalf("iter %d: Serve returned %v, want ErrServerClosed", i, err)
		}
		dialers.Wait()
	}
}

// TestDegradedWindowAvailability is the acceptance test for the tentpole:
// a 30-second (virtual) total write outage trips the breaker, SETs are
// rejected with SERVER_ERROR degraded, GET availability through the outage
// stays at 100% (>= the 99% bar), and service recovers by itself once the
// device heals — all through the wire protocol, all on the virtual clock.
func TestDegradedWindowAvailability(t *testing.T) {
	const perData = 8
	perIdx := core.IndexZonesFor(perData, 4)
	dev := flashsim.New(flashsim.Config{PageSize: 512, PagesPerZone: 16, Zones: perData + perIdx})
	cfg := core.DefaultConfig(dev, perData)
	cfg.SGsPerIndexGroup = 4
	cfg.TargetObjsPerSet = 8
	cfg.FlushThreshold = 1 << 20 // flushes in this test are explicit
	cfg.RearFullRatio = 1.0
	cfg.BreakerThreshold = 2
	cfg.BreakerProbeAfter = 5 * time.Second
	eng, err := core.NewSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cli := startPipeServer(t, server.Config{Engine: eng, SyncSet: true, MaxItemBytes: testMaxItem})
	defer cli.Close()

	// Populate through the protocol and land everything on flash while the
	// device is healthy.
	const n = 20
	val := func(i int) string { return fmt.Sprintf("avail-value-%04d", i) }
	for i := 0; i < n; i++ {
		v := val(i)
		send(t, cli, fmt.Sprintf("set ak%d 0 0 %d\r\n%s\r\n", i, len(v), v))
		expect(t, cli, "STORED\r\n")
	}
	if err := eng.Flush(); err != nil {
		t.Fatalf("pre-outage flush: %v", err)
	}

	// The outage begins: every device write fails for the next 30 virtual
	// seconds. Two failed flushes trip the breaker.
	plan := device.NewFaultPlan(9, device.FaultRule{Op: device.FaultWrite, ErrRate: 1})
	plan.Arm(dev)
	for i := 0; i < 2; i++ {
		if err := eng.Flush(); err == nil {
			t.Fatal("flush succeeded during the outage")
		}
	}

	// SETs are shed with the typed reply; the engine is not touched.
	v := val(0)
	send(t, cli, fmt.Sprintf("set shed 0 0 %d\r\n%s\r\n", len(v), v))
	expect(t, cli, "SERVER_ERROR degraded\r\n")

	// GET availability through the outage: every flash-resident key keeps
	// serving. 100 requests, zero failures.
	served, total := 0, 0
	for round := 0; round < 5; round++ {
		for i := 0; i < n; i++ {
			total++
			want := val(i)
			send(t, cli, fmt.Sprintf("get ak%d\r\n", i))
			expect(t, cli, fmt.Sprintf("VALUE ak%d 0 %d\r\n%s\r\nEND\r\n", i, len(want), want))
			served++
		}
		dev.Clock().Advance(6 * time.Second) // 30s across the window
	}
	if avail := float64(served) / float64(total); avail < 0.99 {
		t.Fatalf("GET availability %.4f during outage, want >= 0.99", avail)
	}

	// Devices heal; the next SET is the half-open probe and recovery is
	// automatic — no operator action, no restart.
	plan.Disarm()
	send(t, cli, fmt.Sprintf("set recovered 0 0 %d\r\n%s\r\n", len(v), v))
	expect(t, cli, "STORED\r\n")
	if err := eng.Flush(); err != nil {
		t.Fatalf("flush after recovery: %v", err)
	}

	m := readStats(t, cli)
	if m["engine_breaker_open"] != 0 {
		t.Fatalf("engine_breaker_open = %d after recovery, want 0", m["engine_breaker_open"])
	}
	if m["engine_degraded_entered"] != 1 {
		t.Fatalf("engine_degraded_entered = %d, want 1", m["engine_degraded_entered"])
	}
	if got := m["engine_degraded_seconds"]; got != 30 {
		t.Fatalf("engine_degraded_seconds = %d, want 30", got)
	}
	if m["engine_degraded_rejects"] == 0 {
		t.Fatal("engine_degraded_rejects = 0, want the shed SET counted")
	}
	if m["engine_write_errors"] != 2 {
		t.Fatalf("engine_write_errors = %d, want 2", m["engine_write_errors"])
	}
}
