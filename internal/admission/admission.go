// Package admission implements flash-cache admission policies. Admission is
// the other lever (besides cache architecture, the paper's subject) that
// production deployments use against write amplification: rejecting objects
// unlikely to be re-read keeps them off flash entirely. CacheLib ships
// probabilistic ("dynamic random") and reject-first policies; both are
// provided here so experiments can combine them with any engine.
package admission

import (
	"math/rand"
	"sync"

	"nemo/internal/hashing"
)

// Policy decides whether an object may be written to flash.
type Policy interface {
	// Admit reports whether the object should be inserted. Implementations
	// may maintain state (e.g. seen-before sketches) and must be safe for
	// concurrent use.
	Admit(key []byte, size int) bool
	// Name identifies the policy in reports.
	Name() string
}

// AdmitAll accepts everything — the default for the paper's experiments.
type AdmitAll struct{}

// Admit implements Policy.
func (AdmitAll) Admit([]byte, int) bool { return true }

// Name implements Policy.
func (AdmitAll) Name() string { return "admit-all" }

// Random admits each insert with a fixed probability, CacheLib's
// "dynamic random" admission in its static form: flash write volume scales
// down by the ratio at a hit-ratio cost.
type Random struct {
	P   float64
	mu  sync.Mutex
	rng *rand.Rand
}

// NewRandom returns a policy admitting with probability p (clamped to
// [0, 1]), deterministic under seed.
func NewRandom(p float64, seed int64) *Random {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return &Random{P: p, rng: rand.New(rand.NewSource(seed))}
}

// Admit implements Policy.
func (r *Random) Admit([]byte, int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.Float64() < r.P
}

// Name implements Policy.
func (r *Random) Name() string { return "random" }

// RejectFirst admits an object only on its second appearance within the
// sketch window ("reject first hit" / TinyLFU-style doorkeeper): one-hit
// wonders — the majority of a Zipf tail — never reach flash.
type RejectFirst struct {
	mu    sync.Mutex
	seen  []uint64 // fingerprint ring; zero means empty
	mask  uint64
	clock int
}

// NewRejectFirst returns a doorkeeper remembering roughly window recent
// keys (rounded up to a power of two).
func NewRejectFirst(window int) *RejectFirst {
	size := 1
	for size < window {
		size *= 2
	}
	return &RejectFirst{seen: make([]uint64, size), mask: uint64(size - 1)}
}

// Admit implements Policy.
func (rf *RejectFirst) Admit(key []byte, _ int) bool {
	fp := hashing.Fingerprint(key)
	if fp == 0 {
		fp = 1
	}
	rf.mu.Lock()
	defer rf.mu.Unlock()
	slot := fp & rf.mask
	if rf.seen[slot] == fp {
		return true // second appearance: admit
	}
	rf.seen[slot] = fp
	return false
}

// Name implements Policy.
func (rf *RejectFirst) Name() string { return "reject-first" }

// SizeCap rejects objects larger than Max bytes (key+value), protecting
// tiny-object caches from head-of-line blocking by large outliers.
type SizeCap struct {
	Max  int
	Next Policy // consulted when the size check passes; nil admits
}

// Admit implements Policy.
func (s SizeCap) Admit(key []byte, size int) bool {
	if size > s.Max {
		return false
	}
	if s.Next == nil {
		return true
	}
	return s.Next.Admit(key, size)
}

// Name implements Policy.
func (s SizeCap) Name() string { return "size-cap" }
