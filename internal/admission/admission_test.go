package admission

import (
	"fmt"
	"testing"
)

func TestAdmitAll(t *testing.T) {
	var p AdmitAll
	if !p.Admit([]byte("k"), 100) {
		t.Fatal("AdmitAll rejected")
	}
	if p.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestRandomProbability(t *testing.T) {
	p := NewRandom(0.25, 1)
	admitted := 0
	n := 100000
	for i := 0; i < n; i++ {
		if p.Admit(nil, 0) {
			admitted++
		}
	}
	got := float64(admitted) / float64(n)
	if got < 0.23 || got > 0.27 {
		t.Fatalf("admission rate %v, want ≈0.25", got)
	}
}

func TestRandomClamped(t *testing.T) {
	if NewRandom(-1, 1).Admit(nil, 0) {
		t.Fatal("p<0 should admit nothing")
	}
	if !NewRandom(2, 1).Admit(nil, 0) {
		t.Fatal("p>1 should admit everything")
	}
}

func TestRejectFirstAdmitsSecondTouch(t *testing.T) {
	p := NewRejectFirst(1024)
	k := []byte("hot-key")
	if p.Admit(k, 0) {
		t.Fatal("first touch admitted")
	}
	if !p.Admit(k, 0) {
		t.Fatal("second touch rejected")
	}
}

func TestRejectFirstFiltersOneHitWonders(t *testing.T) {
	p := NewRejectFirst(1 << 16)
	admitted := 0
	for i := 0; i < 10000; i++ {
		if p.Admit([]byte(fmt.Sprintf("one-hit-%d", i)), 0) {
			admitted++
		}
	}
	// Unique keys should essentially never be admitted (hash collisions in
	// the doorkeeper allow a tiny leak).
	if admitted > 100 {
		t.Fatalf("%d/10000 one-hit wonders admitted", admitted)
	}
}

func TestSizeCap(t *testing.T) {
	p := SizeCap{Max: 100}
	if !p.Admit([]byte("k"), 100) {
		t.Fatal("at-limit object rejected")
	}
	if p.Admit([]byte("k"), 101) {
		t.Fatal("oversized object admitted")
	}
	chained := SizeCap{Max: 100, Next: NewRejectFirst(64)}
	if chained.Admit([]byte("x"), 50) {
		t.Fatal("chained policy ignored")
	}
	if !chained.Admit([]byte("x"), 50) {
		t.Fatal("chained second touch rejected")
	}
	if chained.Name() == "" {
		t.Fatal("empty name")
	}
}
