package fairywren_test

import (
	"strings"
	"testing"

	"nemo/internal/cachelib"
	"nemo/internal/enginetest"
	"nemo/internal/fairywren"
	"nemo/internal/flashsim"
)

// newDev builds the test device. FairyWREN needs more zones than the other
// baselines before its set-tier GC has workable headroom (the existing
// engine tests use 32-zone devices for the same reason).
func newDev() *flashsim.Device {
	return flashsim.New(flashsim.Config{PageSize: 512, PagesPerZone: 8, Zones: 32})
}

func mkBare(t *testing.T) cachelib.Engine {
	t.Helper()
	e, err := fairywren.New(fairywren.Config{Device: newDev(), TargetObjsPerSet: 8})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func mkSharded(t *testing.T, shards int) cachelib.Engine {
	t.Helper()
	// 32 zones per shard: below that FairyWREN's set-tier GC has no
	// workable headroom at test scale (see newDev).
	dev := flashsim.New(flashsim.Config{PageSize: 512, PagesPerZone: 8, Zones: 32 * shards})
	e, err := fairywren.NewSharded(fairywren.Config{Device: dev, TargetObjsPerSet: 8}, shards)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestShardedSingleShardEquivalence pins the facade contract: a shards=1
// wrapped FairyWREN replays stat-for-stat like the bare engine.
func TestShardedSingleShardEquivalence(t *testing.T) {
	enginetest.SingleShardEquivalence(t, 20_000, mkBare, mkSharded)
}

// TestShardedPartition checks multi-shard aggregate accounting. Each shard
// runs its own HLog, set tier, and migration/GC over a disjoint zone range.
func TestShardedPartition(t *testing.T) {
	enginetest.MultiShardPartition(t, 20_000, 2, mkSharded)
}

// TestShardedRejectsTinyShards pins the per-shard minimum: partitioning 32
// zones into 8 shards leaves 4 zones per shard — not enough for an HLog
// plus a set tier.
func TestShardedRejectsTinyShards(t *testing.T) {
	if _, err := fairywren.NewSharded(fairywren.Config{Device: newDev()}, 8); err == nil {
		t.Fatal("NewSharded accepted 4-zone shards")
	}
}

// TestGCProgressGuard pins the folded-GC livelock guard: a set tier with no
// workable headroom (16 zones at this page size runs nearly 100% live) must
// fail loudly instead of spinning forever — either the bounded GC pass
// reports no progress, or the relocations it forces exhaust the set zones.
// Before the guard this exact configuration hung the replay.
func TestGCProgressGuard(t *testing.T) {
	dev := flashsim.New(flashsim.Config{PageSize: 512, PagesPerZone: 8, Zones: 16})
	c, err := fairywren.New(fairywren.Config{Device: dev, TargetObjsPerSet: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = cachelib.ParallelReplay(c, enginetest.MixedTrace(40_000), cachelib.ParallelReplayConfig{})
	if err == nil {
		t.Fatal("undersized set tier replayed cleanly — geometry assumption stale")
	}
	if !strings.Contains(err.Error(), "gc made no progress") &&
		!strings.Contains(err.Error(), "out of set zones") {
		t.Fatalf("unexpected error %v", err)
	}
}
