package fairywren

import (
	"fmt"
	"testing"

	"nemo/internal/flashsim"
	"nemo/internal/trace"
)

func mkCache(t *testing.T, mutate func(*Config)) *Cache {
	t.Helper()
	dev := flashsim.New(flashsim.Config{PageSize: 512, PagesPerZone: 8, Zones: 32})
	cfg := Config{Device: dev, LogRatio: 0.1, OPRatio: 0.1, TargetObjsPerSet: 8}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func kv(i int) (k, v []byte) {
	return []byte(fmt.Sprintf("key-%08d", i)), []byte(fmt.Sprintf("val-%08d-xxxxxxxxxxxxxxxx", i))
}

func TestSetGetThroughLog(t *testing.T) {
	c := mkCache(t, nil)
	for i := 0; i < 50; i++ {
		k, v := kv(i)
		if err := c.Set(k, v); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		k, v := kv(i)
		got, hit := c.Get(k)
		if !hit || string(got) != string(v) {
			t.Fatalf("object %d missing", i)
		}
	}
}

func TestPassiveMigrationOnLogFull(t *testing.T) {
	c := mkCache(t, nil)
	for i := 0; i < 6000; i++ {
		k, v := kv(i)
		if err := c.Set(k, v); err != nil {
			t.Fatal(err)
		}
	}
	mig := c.Migration()
	if mig.PassiveRMW == 0 {
		t.Fatal("log cycled but no passive migration")
	}
	if mig.PassiveCDF.Total() == 0 {
		t.Fatal("passive CDF empty")
	}
	found := 0
	for i := 5500; i < 6000; i++ {
		k, _ := kv(i)
		if _, hit := c.Get(k); hit {
			found++
		}
	}
	if found < 400 {
		t.Fatalf("only %d/500 recent objects locatable", found)
	}
}

func TestActiveMigrationWhenSpaceTightens(t *testing.T) {
	// Active migration needs a set space much larger than one log-zone
	// burst (otherwise every zone fully invalidates before reclaim — see
	// EXPERIMENTS.md scaling notes), so this test uses a larger device
	// than the other tests.
	dev := flashsim.New(flashsim.Config{PageSize: 512, PagesPerZone: 8, Zones: 128})
	c, err := New(Config{Device: dev, LogRatio: 0.04, OPRatio: 0.05, TargetObjsPerSet: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120000; i++ {
		k, v := kv(i)
		if err := c.Set(k, v); err != nil {
			t.Fatal(err)
		}
		if c.Migration().ActiveRMW > 50 {
			break
		}
	}
	mig := c.Migration()
	if mig.GCRuns == 0 || mig.ActiveRMW == 0 {
		t.Fatalf("no active migration happened: %+v", mig)
	}
	p := mig.PassiveFraction()
	if p <= 0 || p >= 1 {
		t.Fatalf("passive fraction %v should be strictly between 0 and 1 at steady state", p)
	}
}

func TestActiveBatchesSmallerThanPassive(t *testing.T) {
	// Observation 3: actively migrated objects have roughly half the log
	// residency, so active batches are smaller than passive ones.
	c := mkCache(t, nil)
	s := trace.NewSyntheticInserts(16, 40, 0, 7)
	var req trace.Request
	for i := 0; i < 60000; i++ {
		s.Next(&req)
		if err := c.Set(req.Key, req.Value); err != nil {
			t.Fatal(err)
		}
	}
	mig := c.Migration()
	if mig.ActiveCDF.Total() < 50 || mig.PassiveCDF.Total() < 50 {
		t.Skipf("not enough migrations to compare: %d passive, %d active",
			mig.PassiveCDF.Total(), mig.ActiveCDF.Total())
	}
	if mig.ActiveCDF.Mean() >= mig.PassiveCDF.Mean() {
		t.Fatalf("active mean batch %v should be below passive %v",
			mig.ActiveCDF.Mean(), mig.PassiveCDF.Mean())
	}
}

func TestHashRangeIsHalved(t *testing.T) {
	c := mkCache(t, nil)
	usable := int(float64(c.setZones*c.ppz) * (1 - c.cfg.OPRatio))
	if c.NumSets() != usable/2 {
		t.Fatalf("hash range %d, want half of %d usable pages", c.NumSets(), usable)
	}
}

func TestWASubstantialForTinyObjects(t *testing.T) {
	c := mkCache(t, nil)
	s := trace.NewSyntheticInserts(16, 40, 10, 3)
	var req trace.Request
	for i := 0; i < 30000; i++ {
		s.Next(&req)
		if err := c.Set(req.Key, req.Value); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.ALWA() < 2 {
		t.Fatalf("FW ALWA = %v, the paper's whole point is that it is high", st.ALWA())
	}
	if st.DeviceBytesWritten != st.FlashBytesWritten {
		t.Fatal("FW integrates DLWA into ALWA; the counters must match")
	}
}

func TestHotObjectsSurviveViaOverflow(t *testing.T) {
	c := mkCache(t, func(cfg *Config) { cfg.SpillMinBytes = 1 })
	// A hot working set accessed constantly while filler churns the cache.
	const hotKeys = 10
	for i := 0; i < 40000; i++ {
		k, v := kv(i)
		if err := c.Set(k, v); err != nil {
			t.Fatal(err)
		}
		hk, hv := kv(1000000 + i%hotKeys)
		if _, hit := c.Get(hk); !hit {
			if err := c.Set(hk, hv); err != nil {
				t.Fatal(err)
			}
		}
	}
	if c.Migration().OverflowWrites == 0 {
		t.Skip("no overflow writes triggered at this scale")
	}
}

func TestResetMigrationCDFs(t *testing.T) {
	c := mkCache(t, nil)
	for i := 0; i < 6000; i++ {
		k, v := kv(i)
		c.Set(k, v)
	}
	if c.Migration().PassiveCDF.Total() == 0 {
		t.Fatal("precondition: CDF should have data")
	}
	c.ResetMigrationCDFs()
	if c.Migration().PassiveCDF.Total() != 0 {
		t.Fatal("reset did not clear CDFs")
	}
}

func TestMemoryModelNearPaper(t *testing.T) {
	c := mkCache(t, nil)
	bits := c.MemoryBitsPerObject()
	if bits < 6 || bits > 14 {
		t.Fatalf("FW modeled at %v bits/obj, Table 6 says ≈9.9", bits)
	}
}

func TestUpdateShadowing(t *testing.T) {
	c := mkCache(t, nil)
	k, _ := kv(42)
	c.Set(k, []byte("version-one-aaaaaaaaaaaa"))
	// Push the object through migration, then update.
	for i := 0; i < 6000; i++ {
		fk, fv := kv(100000 + i)
		c.Set(fk, fv)
	}
	c.Set(k, []byte("version-two-bbbbbbbbbbbb"))
	got, hit := c.Get(k)
	if !hit || string(got) != "version-two-bbbbbbbbbbbb" {
		t.Fatalf("got %q hit=%v", got, hit)
	}
}

func TestDeviceTooSmall(t *testing.T) {
	dev := flashsim.New(flashsim.Config{PageSize: 512, PagesPerZone: 8, Zones: 4})
	if _, err := New(Config{Device: dev}); err == nil {
		t.Fatal("tiny device accepted")
	}
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil device accepted")
	}
}
