// Package fairywren implements the FairyWREN hierarchical baseline ("FW" in
// the paper): an HLog front tier feeding a set-associative back tier that is
// itself log-structured on a zoned device through a host-managed FTL.
//
// Two properties distinguish it from Kangaroo (§3.1):
//
//   - Hot/cold set division halves the log-to-set hash range. We model the
//     division as set pairs: each set slot owns a primary page (migration
//     target) and an overflow page that absorbs accessed ("hot") objects
//     displaced from the primary, so the full capacity stays usable while
//     migration rewrites only 4 KB (the paper's ½·N′_Set factor in Eq. 5).
//   - Garbage collection is folded into migration (Case 3.2): when a zone is
//     reclaimed, each valid primary page is rewritten merged with all HLog
//     objects mapped to its set — the paper's "active migration". Overflow
//     pages relocate unchanged.
//
// The package instruments passive/active migration batch sizes and the
// passive fraction p, which Figures 4, 5, 6 and 14 are built from.
package fairywren

import (
	"fmt"
	"sync"
	"time"

	"nemo/internal/bloom"
	"nemo/internal/cachelib"
	"nemo/internal/device"
	"nemo/internal/hashing"
	"nemo/internal/hlog"
	"nemo/internal/metrics"
	"nemo/internal/setblock"
)

// Config configures the FairyWREN engine.
type Config struct {
	Device device.Device
	// ZoneBase is the first device zone the engine owns; Zones is how many
	// (0 means all zones from ZoneBase). A sharded deployment (NewSharded)
	// gives each shard its own disjoint range of one device.
	ZoneBase int
	Zones    int
	// LogRatio is the fraction of zones given to HLog (Table 4: 5%).
	LogRatio float64
	// OPRatio is the fraction of the set tier reserved for GC headroom
	// (the paper's X, §3.2; Table 4: 5%).
	OPRatio float64
	// TargetObjsPerSet sizes the in-memory per-page Bloom filters.
	TargetObjsPerSet int
	// BloomBitsPerObj is the per-page filter budget (default 4).
	BloomBitsPerObj float64
	// SpillMinBytes is the minimum accumulated hot spill that justifies an
	// overflow-page rewrite during migration (default pageSize/4).
	SpillMinBytes int
	// AccessedCap bounds the in-memory recency set (default 1<<16 keys).
	AccessedCap int
}

const (
	kindPrimary  = 0
	kindOverflow = 1
)

// Cache is the FairyWREN engine. Safe for concurrent use.
type Cache struct {
	cfg      Config
	dev      device.Device
	log      *hlog.Log
	pageSize int
	ppz      int

	zoneBase int // first set-tier zone
	setZones int
	numSets  int
	freeGoal int

	mu sync.Mutex

	priLoc []int32 // set -> global page of primary (-1 unmapped)
	ovLoc  []int32 // set -> global page of overflow (-1 unmapped)
	// pageOwner maps local set-tier page -> set*2+kind, -1 invalid.
	pageOwner []int32
	validCnt  []int
	zoneSeq   []uint64 // fill-order stamp per local zone (for FIFO-ish wear)
	seq       uint64
	open      int
	freeZones []int
	inGC      bool

	priFilters []*bloom.Filter
	ovFilters  []*bloom.Filter
	fpr        float64

	accessed map[uint64]struct{}

	scratch  []byte
	scratch2 []byte
	stats    cachelib.Stats
	mig      MigrationStats
	hist     metrics.Histogram
}

// MigrationStats instruments the migration machinery (Figures 4–6).
type MigrationStats struct {
	// PassiveCDF / ActiveCDF record newly written log objects per set
	// write for Case 2 / Case 3.2 respectively.
	PassiveCDF *metrics.IntCDF
	ActiveCDF  *metrics.IntCDF
	PassiveRMW uint64
	ActiveRMW  uint64
	// OverflowWrites counts hot-spill overflow page rewrites;
	// Relocations counts plain GC copies of overflow pages.
	OverflowWrites uint64
	Relocations    uint64
	GCRuns         uint64
}

// PassiveFraction returns p, the fraction of set RMWs that were passive
// (§3.2.3). Returns 1 before any migration.
func (m MigrationStats) PassiveFraction() float64 {
	total := m.PassiveRMW + m.ActiveRMW
	if total == 0 {
		return 1
	}
	return float64(m.PassiveRMW) / float64(total)
}

// New creates the engine.
func New(cfg Config) (*Cache, error) {
	if cfg.Device == nil {
		return nil, fmt.Errorf("fairywren: nil device")
	}
	if cfg.LogRatio == 0 {
		cfg.LogRatio = 0.05
	}
	if cfg.OPRatio == 0 {
		cfg.OPRatio = 0.05
	}
	if cfg.TargetObjsPerSet == 0 {
		cfg.TargetObjsPerSet = 40
	}
	if cfg.BloomBitsPerObj == 0 {
		cfg.BloomBitsPerObj = 4
	}
	if cfg.SpillMinBytes == 0 {
		cfg.SpillMinBytes = cfg.Device.PageSize() / 4
	}
	if cfg.AccessedCap == 0 {
		cfg.AccessedCap = 1 << 16
	}
	if cfg.Zones == 0 {
		cfg.Zones = cfg.Device.Zones() - cfg.ZoneBase
	}
	zones := cfg.Zones
	if cfg.ZoneBase < 0 || zones < 1 || cfg.ZoneBase+zones > cfg.Device.Zones() {
		return nil, fmt.Errorf("fairywren: invalid zone range base=%d zones=%d", cfg.ZoneBase, zones)
	}
	logZones := int(cfg.LogRatio * float64(zones))
	if logZones < 2 {
		logZones = 2
	}
	setZones := zones - logZones
	if setZones < 4 {
		return nil, fmt.Errorf("fairywren: zone range too small (%d zones)", zones)
	}
	log, err := hlog.New(cfg.Device, cfg.ZoneBase, logZones)
	if err != nil {
		return nil, err
	}
	ppz := cfg.Device.PagesPerZone()
	setPages := setZones * ppz
	freeGoal := int(cfg.OPRatio * float64(setZones))
	if freeGoal < 1 {
		freeGoal = 1
	}
	numSets := int(float64(setPages) * (1 - cfg.OPRatio) / 2)
	if numSets < 1 {
		return nil, fmt.Errorf("fairywren: no usable sets")
	}
	c := &Cache{
		cfg:        cfg,
		dev:        cfg.Device,
		log:        log,
		pageSize:   cfg.Device.PageSize(),
		ppz:        ppz,
		zoneBase:   cfg.ZoneBase + logZones,
		setZones:   setZones,
		numSets:    numSets,
		freeGoal:   freeGoal,
		priLoc:     make([]int32, numSets),
		ovLoc:      make([]int32, numSets),
		pageOwner:  make([]int32, setPages),
		validCnt:   make([]int, setZones),
		zoneSeq:    make([]uint64, setZones),
		open:       -1,
		priFilters: make([]*bloom.Filter, numSets),
		ovFilters:  make([]*bloom.Filter, numSets),
		accessed:   make(map[uint64]struct{}),
		scratch:    make([]byte, cfg.Device.PageSize()),
		scratch2:   make([]byte, cfg.Device.PageSize()),
		mig: MigrationStats{
			PassiveCDF: metrics.NewIntCDF(10),
			ActiveCDF:  metrics.NewIntCDF(10),
		},
	}
	for i := range c.priLoc {
		c.priLoc[i] = -1
		c.ovLoc[i] = -1
	}
	for i := range c.pageOwner {
		c.pageOwner[i] = -1
	}
	for z := setZones - 1; z >= 0; z-- {
		c.freeZones = append(c.freeZones, z)
	}
	c.fpr = 1.0
	for i := 0; i < int(cfg.BloomBitsPerObj/1.4427+0.5); i++ {
		c.fpr /= 2
	}
	if c.fpr >= 1 {
		c.fpr = 0.5
	}
	return c, nil
}

// Name implements cachelib.Engine.
func (c *Cache) Name() string { return "FW" }

// FairyWREN stays a plain Engine; the harness upgrades it to the Engine v2
// surface (batching, deletes, async) via cachelib.Adapt so comparisons
// against Nemo's native v2 implementation run unmodified.
var _ cachelib.Engine = (*Cache)(nil)

// Close implements cachelib.Engine.
func (c *Cache) Close() error { return nil }

// ReadLatency implements cachelib.Engine.
func (c *Cache) ReadLatency() *metrics.Histogram { return &c.hist }

// NumSets returns the log-to-set hash range (half the usable page count:
// the hot/cold division of §3.2).
func (c *Cache) NumSets() int { return c.numSets }

// LogPages returns N_Log, the HLog capacity in pages (for Eq. 6 checks).
func (c *Cache) LogPages() int { return c.log.PageCapacity() }

// Migration returns a snapshot of the migration instrumentation.
func (c *Cache) Migration() MigrationStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mig
}

// ResetMigrationCDFs clears the batch-size CDFs (phase-split experiments).
func (c *Cache) ResetMigrationCDFs() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mig.PassiveCDF = metrics.NewIntCDF(10)
	c.mig.ActiveCDF = metrics.NewIntCDF(10)
}

// Stats implements cachelib.Engine. FairyWREN integrates DLWA into ALWA
// (host FTL), so both write counters are identical.
func (c *Cache) Stats() cachelib.Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	ls := c.log.Stats()
	s.FlashBytesWritten += ls.PagesWritten * uint64(c.pageSize)
	s.DeviceBytesWritten = s.FlashBytesWritten
	return s
}

// MemoryBitsPerObject models Table 6's FW column (≈9.9 bits/obj).
func (c *Cache) MemoryBitsPerObject() float64 {
	logShare := c.cfg.LogRatio * 48 // 48-bit log entries over 5% of objects
	setShare := 3.1 + c.cfg.BloomBitsPerObj
	return logShare + setShare + 0.8
}

func (c *Cache) setOf(fp uint64) int32 {
	return int32(hashing.Derive(fp, 0) % uint64(c.numSets))
}

func (c *Cache) markAccessed(fp uint64) {
	if len(c.accessed) >= c.cfg.AccessedCap {
		c.accessed = make(map[uint64]struct{}) // crude cooling: reset
	}
	c.accessed[fp] = struct{}{}
}

// Set appends to the HLog, running passive migration when the log fills.
func (c *Cache) Set(key, value []byte) error {
	if setblock.EntrySize(len(key), len(value)) > c.pageSize-setblock.HeaderSize || len(key) > 255 {
		return fmt.Errorf("fairywren: object exceeds set size")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	fp := hashing.Fingerprint(key)
	set := c.setOf(fp)
	for {
		err := c.log.Append(set, fp, key, value)
		if err == nil {
			break
		}
		if err != hlog.ErrFull {
			return err
		}
		if err := c.passiveMigrate(); err != nil {
			return err
		}
	}
	c.stats.Sets++
	c.stats.LogicalBytes += uint64(len(key) + len(value))
	return nil
}

// passiveMigrate drains the oldest log zone into its sets (Case 2).
func (c *Cache) passiveMigrate() error {
	sets := c.log.OldestZoneSets()
	for _, set := range sets {
		objs, err := c.log.TakeSet(set)
		if err != nil {
			return err
		}
		if len(objs) == 0 {
			continue
		}
		if err := c.rewritePrimary(set, objs, true); err != nil {
			return err
		}
	}
	dropped, err := c.log.ReleaseOldestZone()
	c.stats.Evictions += uint64(dropped)
	return err
}

// rewritePrimary merges objs into set's primary page and appends the new
// copy to the open zone. Displaced accessed objects spill to the overflow
// page when they amount to enough bytes (hot/cold division); cold ones are
// evicted.
func (c *Cache) rewritePrimary(set int32, objs []hlog.Object, passive bool) error {
	blk, err := c.readPage(c.priLoc[set])
	if err != nil {
		return err
	}
	var spill []hlog.Object
	spillBytes := 0
	for _, o := range objs {
		for !blk.CanFit(len(o.Key), len(o.Value)) {
			e, ok := blk.EvictOldest()
			if !ok {
				break
			}
			if _, hot := c.accessed[e.FP]; hot {
				spill = append(spill, hlog.Object{FP: e.FP, Key: e.Key, Value: e.Value})
				spillBytes += setblock.EntrySize(len(e.Key), len(e.Value))
			} else {
				c.stats.Evictions++
			}
		}
		blk.Insert(o.FP, o.Key, o.Value)
	}
	if err := c.placePage(set, kindPrimary, blk); err != nil {
		return err
	}
	if passive {
		c.mig.PassiveRMW++
		c.mig.PassiveCDF.Add(len(objs))
	} else {
		c.mig.ActiveRMW++
		c.mig.ActiveCDF.Add(len(objs))
	}
	if len(spill) > 0 {
		if spillBytes >= c.cfg.SpillMinBytes {
			return c.rewriteOverflow(set, spill)
		}
		c.stats.Evictions += uint64(len(spill))
	}
	return nil
}

// rewriteOverflow merges hot spill into the set's overflow page.
func (c *Cache) rewriteOverflow(set int32, objs []hlog.Object) error {
	blk, err := c.readPage(c.ovLoc[set])
	if err != nil {
		return err
	}
	for _, o := range objs {
		for !blk.CanFit(len(o.Key), len(o.Value)) {
			if _, ok := blk.EvictOldest(); !ok {
				break
			}
			c.stats.Evictions++
		}
		blk.Insert(o.FP, o.Key, o.Value)
	}
	if err := c.placePage(set, kindOverflow, blk); err != nil {
		return err
	}
	c.mig.OverflowWrites++
	return nil
}

// readPage loads and parses a set-tier page, or returns an empty block for
// unmapped locations.
func (c *Cache) readPage(page int32) (*setblock.Block, error) {
	if page < 0 {
		return setblock.New(c.pageSize), nil
	}
	if _, err := c.dev.ReadPage(int(page), c.scratch); err != nil {
		return nil, err
	}
	c.stats.FlashReadOps++
	c.stats.FlashBytesRead += uint64(c.pageSize)
	return setblock.Parse(c.scratch, c.pageSize)
}

// placePage appends the block as the new (set, kind) page, invalidating the
// old copy and rebuilding the in-memory filter.
func (c *Cache) placePage(set int32, kind int, blk *setblock.Block) error {
	page, err := c.appendSetPage(blk.AppendTo(c.scratch2[:0]), set, kind)
	if err != nil {
		return err
	}
	if kind == kindPrimary {
		c.invalidate(c.priLoc[set])
		c.priLoc[set] = page
		c.rebuildFilter(&c.priFilters[set], blk)
	} else {
		c.invalidate(c.ovLoc[set])
		c.ovLoc[set] = page
		c.rebuildFilter(&c.ovFilters[set], blk)
	}
	return nil
}

func (c *Cache) invalidate(page int32) {
	if page < 0 {
		return
	}
	local := int(page) - c.zoneBase*c.ppz
	if c.pageOwner[local] >= 0 {
		c.pageOwner[local] = -1
		c.validCnt[local/c.ppz]--
	}
}

func (c *Cache) rebuildFilter(slot **bloom.Filter, blk *setblock.Block) {
	f := *slot
	if f == nil {
		f = bloom.New(c.cfg.TargetObjsPerSet, c.fpr)
		*slot = f
	} else {
		f.Reset()
	}
	blk.Range(func(_ int, e setblock.Entry) bool {
		f.Add(e.FP)
		return true
	})
}

// appendSetPage writes one page into the open set-tier zone, running GC
// when free zones drop to the OP reserve.
func (c *Cache) appendSetPage(data []byte, set int32, kind int) (int32, error) {
	if c.open < 0 || c.dev.ZoneWP(c.zoneBase+c.open) >= c.ppz {
		c.open = -1
		if !c.inGC && len(c.freeZones) <= c.freeGoal {
			if err := c.gc(); err != nil {
				return 0, err
			}
		}
	}
	// GC relocations may have opened (and partially filled) a zone; keep
	// appending into it instead of leaking it.
	if c.open < 0 || c.dev.ZoneWP(c.zoneBase+c.open) >= c.ppz {
		if len(c.freeZones) == 0 {
			return 0, fmt.Errorf("fairywren: out of set zones")
		}
		c.open = c.freeZones[len(c.freeZones)-1]
		c.freeZones = c.freeZones[:len(c.freeZones)-1]
		c.seq++
		c.zoneSeq[c.open] = c.seq
	}
	page, _, err := c.dev.AppendPage(c.zoneBase+c.open, data)
	if err != nil {
		return 0, err
	}
	c.stats.FlashBytesWritten += uint64(c.pageSize)
	local := page - c.zoneBase*c.ppz
	c.pageOwner[local] = set*2 + int32(kind)
	c.validCnt[local/c.ppz]++
	return int32(page), nil
}

// gc reclaims set-tier zones (Case 3.2): valid primary pages are rewritten
// merged with their sets' pending log objects (active migration); overflow
// pages relocate unchanged.
//
// A set tier that is too small (or fully live) can make reclaim lose ground
// to its own relocations: every reclaimed zone is immediately refilled by
// the rewrites it forced, and the loop never reaches the free goal. The
// pass is therefore bounded at several sweeps over the tier — far beyond
// any productive GC — and surfaces the condition as an error instead of
// spinning forever, so undersized configurations fail loudly in harnesses
// and tests.
func (c *Cache) gc() error {
	c.inGC = true
	defer func() { c.inGC = false }()
	c.mig.GCRuns++
	for tries := 0; len(c.freeZones) <= c.freeGoal; tries++ {
		if tries > 4*c.setZones {
			return fmt.Errorf("fairywren: gc made no progress after %d reclaims (set tier of %d zones too small or fully live)",
				tries, c.setZones)
		}
		victim := c.pickVictim()
		if victim < 0 {
			return fmt.Errorf("fairywren: gc found no victim")
		}
		base := victim * c.ppz
		for off := 0; off < c.ppz; off++ {
			owner := c.pageOwner[base+off]
			if owner < 0 {
				continue
			}
			set, kind := owner/2, int(owner%2)
			if kind == kindPrimary {
				objs, err := c.log.TakeSet(set)
				if err != nil {
					return err
				}
				if err := c.rewritePrimary(set, objs, false); err != nil {
					return err
				}
			} else {
				blk, err := c.readPage(c.ovLoc[set])
				if err != nil {
					return err
				}
				if err := c.placePage(set, kindOverflow, blk); err != nil {
					return err
				}
				c.mig.Relocations++
			}
		}
		if _, err := c.dev.ResetZone(c.zoneBase + victim); err != nil {
			return err
		}
		c.freeZones = append(c.freeZones, victim)
	}
	return nil
}

// pickVictim selects the oldest sealed zone (FIFO reclaim). The paper
// describes GC as reclaiming "an evicted erase unit" in write order, and
// its measured passive fraction (p ≈ 25% at 5% OP, i.e. mostly *active*
// migration) requires victims that still hold valid sets — greedy
// min-valid selection would almost always find a fully invalidated zone
// and never exercise Case 3.2. Fully invalid zones are still preferred
// when one exists (reclaiming them is free).
func (c *Cache) pickVictim() int {
	victim, bestSeq := -1, uint64(1)<<63
	for z := 0; z < c.setZones; z++ {
		if z == c.open || c.dev.ZoneWP(c.zoneBase+z) < c.ppz {
			continue
		}
		if c.validCnt[z] == 0 {
			return z
		}
		if c.zoneSeq[z] < bestSeq {
			victim, bestSeq = z, c.zoneSeq[z]
		}
	}
	return victim
}

// Get searches the HLog, then the primary page, then the overflow page.
func (c *Cache) Get(key []byte) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Gets++
	start := c.dev.Clock().Now()
	fp := hashing.Fingerprint(key)
	set := c.setOf(fp)

	if v, done, ok, err := c.log.Lookup(set, fp, key); err == nil && ok {
		c.stats.Hits++
		c.markAccessed(fp)
		if done > 0 {
			c.stats.FlashReadOps++
			c.stats.FlashBytesRead += uint64(c.pageSize)
			c.hist.Record(done - start + time.Microsecond)
		} else {
			c.hist.Record(time.Microsecond)
		}
		return v, true
	}
	for _, tier := range []struct {
		loc     int32
		filters []*bloom.Filter
	}{
		{c.priLoc[set], c.priFilters},
		{c.ovLoc[set], c.ovFilters},
	} {
		if tier.loc < 0 {
			continue
		}
		if f := tier.filters[set]; f != nil && !f.Test(fp) {
			continue
		}
		done, err := c.dev.ReadPage(int(tier.loc), c.scratch)
		if err != nil {
			continue
		}
		c.stats.FlashReadOps++
		c.stats.FlashBytesRead += uint64(c.pageSize)
		blk, err := setblock.Parse(c.scratch, c.pageSize)
		if err != nil {
			continue
		}
		if v, _, ok := blk.Lookup(fp, key); ok {
			c.stats.Hits++
			c.markAccessed(fp)
			c.hist.Record(done - start + time.Microsecond)
			return append([]byte(nil), v...), true
		}
	}
	c.hist.Record(time.Microsecond)
	return nil, false
}
