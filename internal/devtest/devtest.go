// Package devtest runs a test once per device backend, so fault-injection
// and semantics tests exercise both implementations of the internal/device
// contract instead of silently pinning flashsim-only behaviour. The core
// fault tests and the server drain suite run through it.
package devtest

import (
	"path/filepath"
	"testing"

	"nemo/internal/device"
	"nemo/internal/filedev"
	"nemo/internal/flashsim"
)

// Backend names one device implementation for a test run.
type Backend struct {
	// Name is the subtest name: "sim" or "file".
	Name string
	// New builds a device with the given geometry. File-backed devices live
	// in t.TempDir() and are closed (and their images removed) on cleanup;
	// simulator devices need no cleanup but are closed anyway to keep the
	// lifecycle uniform.
	New func(t *testing.T, g device.Geometry) device.Device
}

// Backends returns every implementation of the device contract.
func Backends() []Backend {
	return []Backend{
		{Name: "sim", New: func(t *testing.T, g device.Geometry) device.Device {
			d := flashsim.New(flashsim.Config{
				PageSize:     g.PageSize,
				PagesPerZone: g.PagesPerZone,
				Zones:        g.Zones,
				MaxOpenZones: g.MaxOpenZones,
			})
			t.Cleanup(func() { d.Close() })
			return d
		}},
		{Name: "file", New: func(t *testing.T, g device.Geometry) device.Device {
			d, err := filedev.Open(filedev.Config{
				Path:         filepath.Join(t.TempDir(), "nemo.img"),
				PageSize:     g.PageSize,
				PagesPerZone: g.PagesPerZone,
				Zones:        g.Zones,
				MaxOpenZones: g.MaxOpenZones,
			})
			if err != nil {
				t.Fatalf("open filedev: %v", err)
			}
			t.Cleanup(func() { d.Close() })
			return d
		}},
	}
}

// Run runs fn as a subtest per backend. The subtests share nothing: each
// builds its own devices through the Backend it receives.
func Run(t *testing.T, fn func(t *testing.T, b Backend)) {
	for _, b := range Backends() {
		t.Run(b.Name, func(t *testing.T) { fn(t, b) })
	}
}
