// Package servebench is the end-to-end serving-layer benchmark harness
// behind `nemobench -servebench` (the BENCH_serve.json CI baseline) and the
// loopback perf tests: a live internal/server listener on 127.0.0.1 driven
// by K client connections speaking the memcached text protocol through
// internal/memclient. Where getbench and setbench measure the engine
// in-process, servebench measures the whole stack — parser, per-connection
// batcher, engine round, reply writer — under real goroutine churn, which
// is exactly the traffic shape the ROADMAP's "millions of users" item asks
// the BENCH trajectory to track.
package servebench

import (
	"fmt"
	"net"
	"sync"
	"time"

	"nemo/internal/backend"
	"nemo/internal/core"
	"nemo/internal/device"
	"nemo/internal/memclient"
	"nemo/internal/metrics"
	"nemo/internal/server"
	"nemo/internal/setblock"
)

// Zones is the benchmark's total SG pool — the same -replay/-getbench/
// -setbench geometry, held constant across shard counts.
const (
	Zones        = 48
	pagesPerZone = 64
	pageSize     = 4096
)

// valueSize is the object payload size (the paper's tiny-object regime).
const valueSize = 250

// Config parameterizes one servebench run.
type Config struct {
	Shards   int
	Flushers int  // background flusher goroutines (async SETs)
	SyncSet  bool // serve SETs synchronously instead
	Conns    int  // client connections, one goroutine each (default 4)
	Ops      int  // total requests across all connections
	Pipeline int  // requests per pipelined batch (default 8)
	SetFrac  float64
	Device   backend.Spec // device backend (zero value = simulator)
}

// Result is one measured configuration. Latency percentiles are round-trip
// times of one depth-Pipeline batch (queue, flush, read every reply) —
// the latency a pipelining client observes, not a per-request service
// time.
type Result struct {
	Shards, Conns, Pipeline int
	Ops                     int // requests issued (gets + sets)
	GetOps, SetOps          int
	Hits                    int // VALUE replies observed by the clients
	Errors                  int // non-STORED / unexpected replies
	Elapsed                 time.Duration
	OpsPerSec               float64
	GetP50, GetP99          time.Duration // get-batch RTT
	SetP50, SetP99          time.Duration // set-batch RTT
	ReadErrors, WriteErrors uint64        // engine device-error counters after drain
}

// Key returns the deterministic benchmark key for index i (fixed keys keep
// BENCH_serve.json deterministic in shape).
func Key(i int) []byte {
	return []byte(fmt.Sprintf("svb-key-%08d-padpad", i))
}

// Value returns the deterministic benchmark value for index i.
func Value(i int) []byte {
	v := make([]byte, valueSize)
	n := copy(v, fmt.Sprintf("svb-value-%08d-", i))
	for j := n; j < valueSize; j++ {
		v[j] = byte('a' + (i+j)%26)
	}
	return v
}

// Build constructs the benchmark engine: the shared 48-zone geometry over a
// fresh device of the given backend. The caller closes the returned device
// after the cache (engines never close their device).
func Build(spec backend.Spec, shards, flushers int) (*core.Sharded, device.Device, error) {
	perData := Zones / shards
	perIdx := core.IndexZonesFor(perData, core.DefaultSGsPerIndexGroup)
	dev, err := spec.Open(device.Geometry{
		PageSize:     pageSize,
		PagesPerZone: pagesPerZone,
		Zones:        shards * (perData + perIdx),
	})
	if err != nil {
		return nil, nil, err
	}
	cfg := core.DefaultConfig(dev, Zones)
	cfg.Shards = shards
	cfg.Flushers = flushers
	cache, err := core.NewSharded(cfg)
	if err != nil {
		dev.Close()
		return nil, nil, err
	}
	return cache, dev, nil
}

// Run builds the engine and server, serves on an ephemeral loopback port,
// drives the configured client load, shuts the server down (graceful
// drain), and closes the engine.
func Run(cfg Config) (Result, error) {
	if cfg.Shards < 1 || Zones%cfg.Shards != 0 {
		return Result{}, fmt.Errorf("servebench: %d data zones not divisible by %d shards", Zones, cfg.Shards)
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 4
	}
	if cfg.Pipeline <= 0 {
		cfg.Pipeline = 8
	}
	if cfg.SetFrac <= 0 {
		cfg.SetFrac = 0.3
	}
	cache, dev, err := Build(cfg.Device, cfg.Shards, cfg.Flushers)
	if err != nil {
		return Result{}, err
	}
	defer dev.Close()
	defer cache.Close()

	srv, err := server.New(server.Config{
		Engine:       cache,
		SyncSet:      cfg.SyncSet,
		MaxItemBytes: pageSize - setblock.HeaderSize - setblock.EntryOverhead,
	})
	if err != nil {
		return Result{}, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return Result{}, err
	}
	go srv.Serve(l)

	// The key space is a small multiple of pool capacity (the setbench
	// sizing), split into one disjoint block per connection so concurrent
	// writers churn the flush pipeline instead of coalescing in memory.
	const poolBytes = Zones * pagesPerZone * pageSize
	keySpace := 3 * poolBytes / valueSize

	tallies := make([]connTally, cfg.Conns)
	perConn := cfg.Ops / cfg.Conns
	if perConn < cfg.Pipeline {
		perConn = cfg.Pipeline
	}
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < cfg.Conns; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			t := &tallies[g]
			nc, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				t.err = err
				return
			}
			defer nc.Close()
			t.err = driveConn(memclient.New(nc), g, cfg, keySpace, t)
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)

	drainErr := srv.Shutdown()
	st := cache.Stats()

	res := Result{
		Shards:      cfg.Shards,
		Conns:       cfg.Conns,
		Pipeline:    cfg.Pipeline,
		Elapsed:     elapsed,
		ReadErrors:  st.ReadErrors,
		WriteErrors: st.WriteErrors,
	}
	var getHist, setHist metrics.Histogram
	for g := range tallies {
		t := &tallies[g]
		if t.err != nil {
			return Result{}, t.err
		}
		res.GetOps += t.gets
		res.SetOps += t.sets
		res.Hits += t.hits
		res.Errors += t.errors
		getHist.Merge(&t.getHist)
		setHist.Merge(&t.setHist)
	}
	res.Ops = res.GetOps + res.SetOps
	if elapsed > 0 {
		res.OpsPerSec = float64(res.Ops) / elapsed.Seconds()
	}
	gs, ss := getHist.Snapshot(), setHist.Snapshot()
	res.GetP50, res.GetP99 = gs.P50, gs.P99
	res.SetP50, res.SetP99 = ss.P50, ss.P99
	return res, drainErr
}

// connTally accumulates one client connection's observations.
type connTally struct {
	gets, sets, hits, errors int
	getHist, setHist         metrics.Histogram
	err                      error
}

// driveConn issues perConn requests as depth-Pipeline batches: a
// deterministic schedule alternates set batches (sequential walk of this
// connection's key block) and get batches (strided walk of the same
// block), so every run issues the identical request sequence.
func driveConn(cl *memclient.Client, g int, cfg Config, keySpace int, t *connTally) error {
	perConn := cfg.Ops / cfg.Conns
	if perConn < cfg.Pipeline {
		perConn = cfg.Pipeline
	}
	lo := g * keySpace / cfg.Conns
	span := (g+1)*keySpace/cfg.Conns - lo
	setCursor := 0
	batches := perConn / cfg.Pipeline
	setEvery := int(1 / cfg.SetFrac)
	if setEvery < 1 {
		setEvery = 1
	}
	for b := 0; b < batches; b++ {
		isSet := b%setEvery == 0
		t0 := time.Now()
		if isSet {
			for i := 0; i < cfg.Pipeline; i++ {
				k := lo + setCursor%span
				setCursor++
				cl.QueueSet(Key(k), Value(k), uint32(k), false)
			}
			if err := cl.Flush(); err != nil {
				return err
			}
			for i := 0; i < cfg.Pipeline; i++ {
				status, err := cl.ReadStatus()
				if err != nil {
					return err
				}
				if status != "STORED" {
					t.errors++
				}
			}
			t.setHist.Record(time.Since(t0))
			t.sets += cfg.Pipeline
		} else {
			for i := 0; i < cfg.Pipeline; i++ {
				k := lo + (b*cfg.Pipeline+i)*6007%span
				cl.QueueGet(false, Key(k))
			}
			if err := cl.Flush(); err != nil {
				return err
			}
			for i := 0; i < cfg.Pipeline; i++ {
				n, err := cl.ReadValues(nil)
				if err != nil {
					return err
				}
				t.hits += n
			}
			t.getHist.Record(time.Since(t0))
			t.gets += cfg.Pipeline
		}
	}
	return cl.Quit()
}
