// Package hashing provides the keyed 64-bit hash primitives used across the
// cache engines: object fingerprints, set-offset derivation, and independent
// Bloom-filter probe streams.
//
// All engines must agree on the fingerprint function so that traces replayed
// against different engines exercise identical key identities. The functions
// here are deterministic, seed-stable, and allocation-free.
package hashing

import "encoding/binary"

// SplitMix64 advances a splitmix64 state and returns the next value.
// It is the standard finalizer-quality mixer from Steele et al. and is used
// both as a stand-alone PRNG step and as the avalanche stage of Hash64.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Mix64 combines two words with multiply-xorshift mixing. It is the inner
// round of Hash64.
func Mix64(a, b uint64) uint64 {
	h := (a ^ b) * 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	return h ^ (h >> 33)
}

// Hash64 returns a keyed 64-bit hash of b. Distinct seeds yield independent
// hash functions over the same bytes, which the Bloom filters rely on.
func Hash64(b []byte, seed uint64) uint64 {
	h := SplitMix64(seed ^ 0x2545f4914f6cdd1d ^ uint64(len(b)))
	for len(b) >= 8 {
		h = Mix64(h, binary.LittleEndian.Uint64(b))
		b = b[8:]
	}
	if len(b) > 0 {
		var tail uint64
		for i, c := range b {
			tail |= uint64(c) << (8 * uint(i))
		}
		h = Mix64(h, tail|uint64(len(b))<<56)
	}
	return SplitMix64(h)
}

// Fingerprint is the canonical object identity used by every engine: the
// 64-bit hash of the key bytes under a fixed seed. Engines store the
// fingerprint in on-flash entries and verify the full key bytes on read.
func Fingerprint(key []byte) uint64 { return Hash64(key, 0x6e656d6f63616368) }

// Derive expands a fingerprint into the n-th independent 64-bit value.
// Engines use lane 0 for set placement and lanes 1.. for auxiliary choices
// so placement and filter bits stay uncorrelated.
func Derive(fp uint64, lane uint64) uint64 {
	return SplitMix64(fp + 0x9e3779b97f4a7c15*(lane+1))
}

// Probes fills dst with Bloom probe positions in [0, m) for the given
// fingerprint using Kirsch–Mitzenmacher double hashing. m must be > 0.
func Probes(fp uint64, m uint64, dst []uint64) {
	h1 := SplitMix64(fp ^ 0x51afd7ed558ccd9b)
	h2 := SplitMix64(fp^0xc4ceb9fe1a85ec53) | 1 // odd ⇒ full period
	for i := range dst {
		dst[i] = (h1 + uint64(i)*h2) % m
	}
}
