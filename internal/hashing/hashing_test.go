package hashing

import (
	"testing"
	"testing/quick"
)

func TestHash64Deterministic(t *testing.T) {
	h1 := Hash64([]byte("hello world"), 42)
	h2 := Hash64([]byte("hello world"), 42)
	if h1 != h2 {
		t.Fatalf("Hash64 not deterministic: %x vs %x", h1, h2)
	}
}

func TestHash64SeedIndependence(t *testing.T) {
	b := []byte("object-key-0001")
	if Hash64(b, 1) == Hash64(b, 2) {
		t.Fatal("different seeds produced identical hashes")
	}
}

func TestHash64DistinctInputs(t *testing.T) {
	seen := make(map[uint64][]byte)
	buf := make([]byte, 16)
	for i := 0; i < 100000; i++ {
		for j := range buf {
			buf[j] = byte(i >> (uint(j%4) * 8))
		}
		buf[0] = byte(i)
		buf[1] = byte(i >> 8)
		buf[2] = byte(i >> 16)
		h := Hash64(buf, 7)
		if prev, ok := seen[h]; ok {
			t.Fatalf("collision between %x and %x", prev, buf)
		}
		seen[h] = append([]byte(nil), buf...)
	}
}

func TestHash64TailBytesMatter(t *testing.T) {
	// Inputs differing only in the last byte (non-multiple of 8 length)
	// must hash differently.
	a := []byte("123456789")
	b := []byte("123456788")
	if Hash64(a, 0) == Hash64(b, 0) {
		t.Fatal("tail byte ignored by hash")
	}
}

func TestHash64LengthSensitivity(t *testing.T) {
	if Hash64([]byte{0}, 0) == Hash64([]byte{0, 0}, 0) {
		t.Fatal("length not mixed into hash")
	}
}

func TestFingerprintMatchesSeededHash(t *testing.T) {
	key := []byte("some-key")
	if Fingerprint(key) != Hash64(key, 0x6e656d6f63616368) {
		t.Fatal("Fingerprint diverged from its defining seed")
	}
}

func TestDeriveLanesIndependent(t *testing.T) {
	fp := Fingerprint([]byte("k"))
	if Derive(fp, 0) == Derive(fp, 1) {
		t.Fatal("lanes 0 and 1 identical")
	}
}

func TestSplitMix64Bijective(t *testing.T) {
	// splitmix64's finalizer is a bijection; sample for collisions.
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 200000; i++ {
		v := SplitMix64(i)
		if prev, ok := seen[v]; ok {
			t.Fatalf("SplitMix64 collision: %d and %d", prev, i)
		}
		seen[v] = i
	}
}

func TestProbesInRange(t *testing.T) {
	f := func(fp uint64, m16 uint16) bool {
		m := uint64(m16)%1000 + 1
		dst := make([]uint64, 10)
		Probes(fp, m, dst)
		for _, p := range dst {
			if p >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProbesSpread(t *testing.T) {
	// With a large m, the 10 probes of one fingerprint should rarely
	// collide with each other.
	dst := make([]uint64, 10)
	collisions := 0
	for i := 0; i < 1000; i++ {
		Probes(SplitMix64(uint64(i)), 1<<20, dst)
		seen := map[uint64]bool{}
		for _, p := range dst {
			if seen[p] {
				collisions++
			}
			seen[p] = true
		}
	}
	if collisions > 5 {
		t.Fatalf("too many intra-probe collisions: %d", collisions)
	}
}

func BenchmarkHash64_16B(b *testing.B) {
	key := make([]byte, 16)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		key[0] = byte(i)
		_ = Hash64(key, 0)
	}
}

func BenchmarkHash64_96B(b *testing.B) {
	key := make([]byte, 96)
	b.SetBytes(96)
	for i := 0; i < b.N; i++ {
		key[0] = byte(i)
		_ = Hash64(key, 0)
	}
}
