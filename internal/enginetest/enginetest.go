// Package enginetest holds the cross-engine equivalence suite every sharded
// baseline is pinned by: wrapping an engine in the generic sharded facade
// with a single shard must not change a single statistic, and multi-shard
// wrapping must partition traffic without losing a request. It mirrors the
// core package's shards=1 equivalence pin (TestShardedSingleShardEquivalence
// in internal/core) for engines wrapped by cachelib.ShardedEngine, so every
// baseline earns the same guarantee Nemo's native facade has.
package enginetest

import (
	"testing"

	"nemo/internal/cachelib"
	"nemo/internal/trace"
)

// MixedTrace materializes the deterministic mixed GET/SET/DELETE trace the
// equivalence suites replay (10% explicit SETs, 2% DELETEs over a Zipf-1.2
// key space, sized to cycle small test devices several times).
func MixedTrace(ops int) []trace.Request {
	z := trace.NewZipf(trace.ClusterConfig{
		Name: "equiv", KeySize: 20, ValueMean: 64, ValueStd: 24,
		Keys: 4096, ZipfAlpha: 1.2, Seed: 7,
	})
	m, err := trace.NewMixed(z, 0.10, 0.02, 7)
	if err != nil {
		panic(err)
	}
	return trace.Materialize(m, ops)
}

// replay drives one engine through the standard parallel replayer and
// returns its final stats.
func replay(t *testing.T, e cachelib.Engine, reqs []trace.Request, batch int) cachelib.Stats {
	t.Helper()
	res, err := cachelib.ParallelReplay(e, reqs, cachelib.ParallelReplayConfig{BatchSize: batch})
	if err != nil {
		t.Fatalf("%s: replay: %v", e.Name(), err)
	}
	return res.Final
}

// SingleShardEquivalence pins the facade contract for one engine family:
// the shards=1 wrapped engine must reproduce the bare engine's replay
// statistics stat-for-stat on the same trace, on both the unbatched and the
// batched (GetMany/SetMany) replay paths. mkBare and mkSharded must build
// engines of identical configuration on fresh devices.
func SingleShardEquivalence(t *testing.T, ops int,
	mkBare func(t *testing.T) cachelib.Engine,
	mkSharded func(t *testing.T, shards int) cachelib.Engine) {
	t.Helper()
	reqs := MixedTrace(ops)
	for _, mode := range []struct {
		name  string
		batch int
	}{
		{"unbatched", 0},
		{"batched", 32},
	} {
		t.Run(mode.name, func(t *testing.T) {
			bare := mkBare(t)
			defer bare.Close()
			wrapped := mkSharded(t, 1)
			defer wrapped.Close()
			want := replay(t, bare, reqs, mode.batch)
			got := replay(t, wrapped, reqs, mode.batch)
			if got != want {
				t.Fatalf("shards=1 stats diverged from bare engine:\nwrapped: %+v\nbare:    %+v", got, want)
			}
		})
	}
}

// MultiShardPartition checks the facade's aggregate accounting at a real
// shard count: every request is counted exactly once, per-shard counters
// sum to the facade's totals, and every shard receives traffic.
func MultiShardPartition(t *testing.T, ops, shards int,
	mkSharded func(t *testing.T, shards int) cachelib.Engine) {
	t.Helper()
	reqs := MixedTrace(ops)
	e := mkSharded(t, shards)
	defer e.Close()
	st := replay(t, e, reqs, 0)
	if st.Gets+st.Sets+st.Deletes < uint64(len(reqs)) {
		t.Fatalf("ops lost: %d gets + %d sets + %d deletes < %d requests",
			st.Gets, st.Sets, st.Deletes, len(reqs))
	}
	se, ok := e.(*cachelib.ShardedEngine)
	if !ok {
		t.Fatalf("mkSharded returned %T, want *cachelib.ShardedEngine", e)
	}
	var sum cachelib.Stats
	for i := 0; i < se.NumShards(); i++ {
		ss := se.Shard(i).Stats()
		if ss.Gets == 0 {
			t.Fatalf("shard %d received no GET traffic", i)
		}
		sum = sum.Add(ss)
	}
	if sum != st {
		t.Fatalf("per-shard stats sum %+v != facade stats %+v", sum, st)
	}
}
