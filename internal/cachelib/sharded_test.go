package cachelib

import (
	"fmt"
	"sync"
	"testing"

	"nemo/internal/metrics"
)

// shardFake is a minimal in-memory Engine for facade tests. It counts ops
// like a real engine and can be armed to fail Sets of specific keys.
type shardFake struct {
	name string

	mu      sync.Mutex
	store   map[string][]byte
	applied []string // keys of successful Sets, in order
	failing map[string]bool
	closed  bool
	stats   Stats
	hist    metrics.Histogram
}

func newShardFake(name string) *shardFake {
	return &shardFake{name: name, store: map[string][]byte{}, failing: map[string]bool{}}
}

func (f *shardFake) Name() string { return f.name }

func (f *shardFake) Get(key []byte) ([]byte, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats.Gets++
	v, ok := f.store[string(key)]
	if !ok {
		return nil, false
	}
	f.stats.Hits++
	return append([]byte(nil), v...), true
}

func (f *shardFake) Set(key, value []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failing[string(key)] {
		return fmt.Errorf("fake: set %q refused", key)
	}
	f.store[string(key)] = append([]byte(nil), value...)
	f.applied = append(f.applied, string(key))
	f.stats.Sets++
	f.stats.LogicalBytes += uint64(len(key) + len(value))
	return nil
}

func (f *shardFake) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

func (f *shardFake) ReadLatency() *metrics.Histogram { return &f.hist }

func (f *shardFake) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
	return nil
}

// buildSharded wraps n fresh fakes and returns both views.
func buildSharded(t *testing.T, n int) (*ShardedEngine, []*shardFake) {
	t.Helper()
	fakes := make([]*shardFake, n)
	engines := make([]Engine, n)
	for i := range fakes {
		fakes[i] = newShardFake("Fake")
		engines[i] = fakes[i]
	}
	s, err := NewShardedEngine(engines)
	if err != nil {
		t.Fatal(err)
	}
	return s, fakes
}

func testKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("sharded-key-%06d", i))
	}
	return keys
}

// TestShardedEngineRouting pins that single-key ops land on the shard
// ShardOf reports, that the same lane as core routing is used (even spread),
// and that Stats sums per-shard counters.
func TestShardedEngineRouting(t *testing.T) {
	s, fakes := buildSharded(t, 4)
	keys := testKeys(4000)
	for _, k := range keys {
		if err := s.Set(k, k); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys {
		if v, hit := s.Get(k); !hit || string(v) != string(k) {
			t.Fatalf("key %s: hit=%v v=%q", k, hit, v)
		}
	}
	var sum Stats
	for i, f := range fakes {
		st := f.Stats()
		if st.Sets == 0 {
			t.Fatalf("shard %d received no writes: routing is degenerate", i)
		}
		want := uint64(0)
		for _, k := range f.applied {
			if got := s.ShardOf([]byte(k)); got != i {
				t.Fatalf("key %q applied on shard %d but ShardOf says %d", k, i, got)
			}
			want++
		}
		if st.Sets != want {
			t.Fatalf("shard %d: %d sets, %d applied", i, st.Sets, want)
		}
		sum = sum.Add(st)
	}
	if got := s.Stats(); got != sum {
		t.Fatalf("facade stats %+v != per-shard sum %+v", got, sum)
	}
	if got, want := s.Stats().Gets, uint64(len(keys)); got != want {
		t.Fatalf("Gets = %d, want %d", got, want)
	}
}

// TestShardedEngineBatchScatter pins the batched fan-out: GetMany after
// SetMany returns every value at the caller's original batch position, with
// misses interleaved, at several shard counts (including the single-shard
// fast path).
func TestShardedEngineBatchScatter(t *testing.T) {
	for _, n := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			s, _ := buildSharded(t, n)
			keys := testKeys(257) // odd size: exercises partial sub-batches
			vals := make([][]byte, len(keys))
			for i := range vals {
				vals[i] = []byte(fmt.Sprintf("val-%06d", i))
			}
			if err := s.SetMany(keys, vals); err != nil {
				t.Fatal(err)
			}
			// Probe with known keys at even positions, misses at odd ones.
			probe := make([][]byte, 2*len(keys))
			for i := range keys {
				probe[2*i] = keys[i]
				probe[2*i+1] = []byte(fmt.Sprintf("missing-%06d", i))
			}
			got, hits := s.GetMany(probe)
			for i := range keys {
				if !hits[2*i] || string(got[2*i]) != string(vals[i]) {
					t.Fatalf("pos %d: hit=%v v=%q want %q", 2*i, hits[2*i], got[2*i], vals[i])
				}
				if hits[2*i+1] || got[2*i+1] != nil {
					t.Fatalf("pos %d: phantom hit %q", 2*i+1, got[2*i+1])
				}
			}
		})
	}
}

// TestShardedEngineSetManyErrors pins the documented sharded error
// contract: a failing key stops only its own shard's sub-batch, other
// shards complete, and the first error by shard order is returned.
func TestShardedEngineSetManyErrors(t *testing.T) {
	s, fakes := buildSharded(t, 4)
	keys := testKeys(64)
	vals := keys

	// Fail the first key (in batch order) of the highest-numbered shard
	// that owns any key, and the second key of the lowest-numbered one.
	perShard := map[int][]string{}
	for _, k := range keys {
		sh := s.ShardOf(k)
		perShard[sh] = append(perShard[sh], string(k))
	}
	lo, hi := -1, -1
	for sh := 0; sh < 4; sh++ {
		if len(perShard[sh]) < 2 {
			continue
		}
		if lo < 0 {
			lo = sh
		}
		hi = sh
	}
	if lo < 0 || hi == lo {
		t.Fatal("test trace does not spread over 2+ shards with 2+ keys")
	}
	fakes[lo].failing[perShard[lo][1]] = true
	fakes[hi].failing[perShard[hi][0]] = true

	err := s.SetMany(keys, vals)
	if err == nil {
		t.Fatal("SetMany reported success with failing shards")
	}
	// First error by shard order: shard lo's, whose first key succeeded.
	if want := fmt.Sprintf("fake: set %q refused", perShard[lo][1]); err.Error() != want {
		t.Fatalf("error = %v, want shard %d's (%s)", err, lo, want)
	}
	if got := fakes[lo].applied; len(got) != 1 || got[0] != perShard[lo][0] {
		t.Fatalf("failing shard %d applied %v, want only %q", lo, got, perShard[lo][0])
	}
	// Shards between lo and hi (and hi's keys before its failure — none,
	// it fails on its first) must be unaffected by the other errors.
	for sh := lo + 1; sh < hi; sh++ {
		if len(fakes[sh].applied) != len(perShard[sh]) {
			t.Fatalf("healthy shard %d applied %d/%d keys", sh, len(fakes[sh].applied), len(perShard[sh]))
		}
	}
}

// TestShardedEngineCloseAll pins that Close reaches every shard.
func TestShardedEngineCloseAll(t *testing.T) {
	s, fakes := buildSharded(t, 3)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for i, f := range fakes {
		if !f.closed {
			t.Fatalf("shard %d not closed", i)
		}
	}
}

// TestShardedEngineSingleShardIdentity pins the shards=1 degenerate case on
// the generic facade itself: same ops, same stats as the bare fake.
func TestShardedEngineSingleShardIdentity(t *testing.T) {
	bare := newShardFake("Fake")
	s, _ := buildSharded(t, 1)
	keys := testKeys(300)
	for i, k := range keys {
		if i%3 == 0 {
			bare.Set(k, k)
			s.Set(k, k)
		}
		bare.Get(k)
		s.Get(k)
	}
	if got, want := s.Stats(), bare.Stats(); got != want {
		t.Fatalf("stats diverged:\nwrapped: %+v\nbare:    %+v", got, want)
	}
	if s.ShardOf(keys[0]) != 0 || s.NumShards() != 1 {
		t.Fatal("single-shard routing must be the trivial partition")
	}
}
