package cachelib

import (
	"sync"

	"nemo/internal/metrics"
)

// Adapt upgrades any Engine to the full EngineV2 surface so harness code can
// be written against v2 while the plain baselines keep running unmodified.
// Engines that already implement EngineV2 (core.Cache, core.Sharded) are
// returned as-is; otherwise a shim is returned that:
//
//   - delegates every extension the engine implements natively;
//   - emulates GetMany/SetMany by per-key loops (no batching win, but the
//     same call shape);
//   - emulates Delete with an in-memory tombstone set when the engine has
//     no native Deleter: deleted keys miss on Get until the next Set of the
//     same key clears the tombstone;
//   - emulates SetAsync as a synchronous Set and Drain as a no-op.
//
// The shim forwards Sharder when the underlying engine is sharded, so
// ParallelReplay keeps its deterministic per-shard sequencing through an
// adapted engine.
func Adapt(e Engine) EngineV2 {
	if v2, ok := e.(EngineV2); ok {
		return v2
	}
	a := &Adapted{inner: e}
	a.batch, _ = e.(BatchEngine)
	a.deleter, _ = e.(Deleter)
	a.async, _ = e.(AsyncEngine)
	a.sharder, _ = e.(Sharder)
	if a.deleter == nil {
		a.tombs = make(map[string]struct{})
	}
	return a
}

// Adapted is the shim returned by Adapt for engines that lack part of the
// v2 surface. Safe for concurrent use if the underlying engine is.
type Adapted struct {
	inner   Engine
	batch   BatchEngine
	deleter Deleter
	async   AsyncEngine
	sharder Sharder

	// Tombstone emulation for engines without a native Deleter. tombGets
	// counts lookups answered (as misses) by the tombstone set without
	// reaching the engine, so Stats still accounts one Get per request.
	mu       sync.Mutex
	tombs    map[string]struct{}
	deletes  uint64
	tombGets uint64
}

// Unwrap returns the underlying engine.
func (a *Adapted) Unwrap() Engine { return a.inner }

// Name implements Engine.
func (a *Adapted) Name() string { return a.inner.Name() }

// Close implements Engine.
func (a *Adapted) Close() error { return a.inner.Close() }

// ReadLatency implements Engine.
func (a *Adapted) ReadLatency() *metrics.Histogram { return a.inner.ReadLatency() }

// Stats implements Engine, folding the emulation layer's counters into the
// set: emulated deletes, and the lookups it answered as tombstone misses.
func (a *Adapted) Stats() Stats {
	st := a.inner.Stats()
	a.mu.Lock()
	st.Deletes += a.deletes
	st.Gets += a.tombGets
	a.mu.Unlock()
	return st
}

// tombstoned reports whether key is shadowed by an emulated delete,
// counting the lookup when it is (the engine never sees it).
func (a *Adapted) tombstoned(key []byte) bool {
	if a.tombs == nil {
		return false
	}
	a.mu.Lock()
	_, dead := a.tombs[string(key)]
	if dead {
		a.tombGets++
	}
	a.mu.Unlock()
	return dead
}

// clearTomb forgets an emulated delete (a fresh Set resurrects the key).
func (a *Adapted) clearTomb(key []byte) {
	if a.tombs == nil {
		return
	}
	a.mu.Lock()
	delete(a.tombs, string(key))
	a.mu.Unlock()
}

// Get implements Engine, honoring emulated deletes.
func (a *Adapted) Get(key []byte) ([]byte, bool) {
	if a.tombstoned(key) {
		return nil, false
	}
	return a.inner.Get(key)
}

// Set implements Engine; a successful write clears any emulated tombstone.
func (a *Adapted) Set(key, value []byte) error {
	if err := a.inner.Set(key, value); err != nil {
		return err
	}
	a.clearTomb(key)
	return nil
}

// Delete implements Deleter, natively when possible.
func (a *Adapted) Delete(key []byte) error {
	if a.deleter != nil {
		return a.deleter.Delete(key)
	}
	a.mu.Lock()
	a.tombs[string(key)] = struct{}{}
	a.deletes++
	a.mu.Unlock()
	return nil
}

// GetMany implements BatchEngine, natively when possible.
func (a *Adapted) GetMany(keys [][]byte) (values [][]byte, hits []bool) {
	if a.batch != nil && a.tombs == nil {
		return a.batch.GetMany(keys)
	}
	values = make([][]byte, len(keys))
	hits = make([]bool, len(keys))
	for i, k := range keys {
		values[i], hits[i] = a.Get(k)
	}
	return values, hits
}

// SetMany implements BatchEngine, natively when possible. The per-key
// fallback reproduces the BatchEngine error contract exactly: on a sharded
// engine (Sharder, >1 shard) each shard's sub-sequence applies in batch
// order independently — an error stops only its own shard's remaining
// inserts, the other shards complete, and the first error by shard order is
// returned, matching the native sharded fan-out; single-shard engines keep
// the strict sequential stop-at-first-error semantics. Before this shim
// aggregated per shard, an adapted sharded engine stopped the whole batch
// at the first error in batch order — other shards' keys silently never
// applied, diverging from what the same batch does natively.
func (a *Adapted) SetMany(keys, values [][]byte) error {
	if a.batch != nil && a.tombs == nil {
		return a.batch.SetMany(keys, values)
	}
	n := 1
	if a.sharder != nil {
		n = a.sharder.NumShards()
	}
	if n <= 1 {
		for i := range keys {
			if err := a.Set(keys[i], values[i]); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	for i := range keys {
		s := a.sharder.ShardOf(keys[i])
		if errs[s] != nil {
			continue // this shard's sub-batch already stopped
		}
		errs[s] = a.Set(keys[i], values[i])
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// SetAsync implements AsyncEngine; without native support the write is
// synchronous, which preserves semantics (Drain is then trivially a no-op).
func (a *Adapted) SetAsync(key, value []byte) error {
	if a.async != nil {
		if err := a.async.SetAsync(key, value); err != nil {
			return err
		}
		a.clearTomb(key)
		return nil
	}
	return a.Set(key, value)
}

// Drain implements AsyncEngine.
func (a *Adapted) Drain() error {
	if a.async != nil {
		return a.async.Drain()
	}
	return nil
}

// NumShards implements Sharder, forwarding the underlying partitioning (or
// the trivial single-shard one, which matches ParallelReplay's default).
func (a *Adapted) NumShards() int {
	if a.sharder != nil {
		return a.sharder.NumShards()
	}
	return 1
}

// ShardOf implements Sharder.
func (a *Adapted) ShardOf(key []byte) int {
	if a.sharder != nil {
		return a.sharder.ShardOf(key)
	}
	return 0
}

var (
	_ EngineV2 = (*Adapted)(nil)
	_ Sharder  = (*Adapted)(nil)
)
