// Package cachelib defines the engine contract every cache design in this
// repository implements, plus the request replayer used by all experiments.
// It plays the role CacheLib plays in the paper: a neutral harness that
// feeds identical request streams to interchangeable flash-cache engines
// and collects the paper's metrics (write amplification, miss ratio, read
// latency).
package cachelib

import (
	"errors"
	"time"

	"nemo/internal/metrics"
)

// ErrDegraded is returned by the write path (Set/SetAsync/SetMany/Delete)
// while an engine's device-fault circuit breaker is open: sustained write
// failures have tripped the shard into read-only degraded mode. GETs keep
// serving from memory and flash; writes are rejected cheaply — no
// insertion, no flush attempt — until a half-open probe proves the device
// healthy again. Serving surfaces map it to a dedicated protocol error
// (`SERVER_ERROR degraded`) so clients can tell "cache degraded" from
// "request malformed".
var ErrDegraded = errors.New("degraded: write path unhealthy, shard is read-only")

// Engine is the minimal flash cache engine contract. Implementations are
// safe for concurrent use unless documented otherwise; the serial replayer
// drives them single-threaded for determinism.
//
// Engine is deliberately small: richer production capabilities — batched
// multi-ops, deletion, asynchronous writes — are the composable extension
// interfaces BatchEngine, Deleter, and AsyncEngine (see engine2.go). Adapt
// upgrades any plain Engine to the full EngineV2 surface.
type Engine interface {
	// Name identifies the engine in reports ("Nemo", "Log", "Set", "KG", "FW").
	Name() string
	// Get returns the cached value (a fresh copy) and whether it hit.
	Get(key []byte) (value []byte, hit bool)
	// Set inserts or updates an object. Engines may reject objects that
	// exceed their admission limits, returning an error.
	Set(key, value []byte) error
	// Stats returns cumulative counters.
	Stats() Stats
	// ReadLatency is the engine-maintained histogram of per-GET virtual
	// latencies.
	ReadLatency() *metrics.Histogram
	// Close releases resources.
	Close() error
}

// Stats is the common counter set. Engines fill the fields that apply;
// the write-amplification definitions follow §5.2 of the paper.
type Stats struct {
	Gets    uint64
	Hits    uint64
	Sets    uint64
	Deletes uint64

	// LogicalBytes counts user object bytes admitted — for Nemo, new
	// objects only (writeback excluded, sacrificed objects included).
	LogicalBytes uint64
	// FlashBytesWritten counts application-level flash writes (ALWA
	// numerator). For host-FTL engines this already includes GC traffic.
	FlashBytesWritten uint64
	// DeviceBytesWritten additionally includes device-internal GC
	// (conventional-SSD engines); equals FlashBytesWritten otherwise.
	DeviceBytesWritten uint64
	// FlashBytesRead counts all flash reads (objects, index, writeback).
	FlashBytesRead uint64
	// FlashReadOps counts page read operations.
	FlashReadOps uint64
	// ReadErrors counts GET-path device read failures. The engines degrade
	// a failed read to a miss (a cache may always miss), but the failure is
	// never silent: it lands here and in the replay/compare tables, so an
	// unhealthy device shows up as a counter instead of a mystery hit-ratio
	// drop.
	ReadErrors uint64
	// WriteErrors counts write-path (flush-pipeline) failures: a device
	// error while appending, sealing, or evicting an SG fails that flush,
	// whose buffered objects are dropped (counted as Evictions). The
	// counter increments the moment the flush fails — in particular for
	// asynchronous flushes, whose error value otherwise surfaces only on
	// Drain/Close — so the replay/compare tables expose an unhealthy
	// device's write side as it happens.
	WriteErrors uint64
	// Evictions counts objects dropped from the cache.
	Evictions uint64
	// WriteRetries counts transient append failures absorbed by the bounded
	// retry-with-backoff loop (Config.WriteRetries) before they could count
	// against WriteErrors or the circuit breaker.
	WriteRetries uint64
	// DegradedRejects counts write operations rejected with ErrDegraded
	// while the device-fault circuit breaker was open.
	DegradedRejects uint64
	// DegradedEntered counts degraded windows: transitions of the breaker
	// from closed to open. A failed half-open probe re-opens the breaker but
	// continues the same window, so it does not increment this.
	DegradedEntered uint64
	// DegradedSeconds is the cumulative time spent degraded (breaker open or
	// half-open), in whole seconds, including the current window if one is in
	// progress. Summed across shards it is shard-seconds.
	DegradedSeconds uint64
	// BreakerOpen is a gauge: the number of shards whose breaker is
	// currently not closed (0 for a single healthy shard, up to Shards).
	BreakerOpen uint64
}

// Add returns the field-wise sum s + o, for aggregating per-shard counters.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Gets:               s.Gets + o.Gets,
		Hits:               s.Hits + o.Hits,
		Sets:               s.Sets + o.Sets,
		Deletes:            s.Deletes + o.Deletes,
		LogicalBytes:       s.LogicalBytes + o.LogicalBytes,
		FlashBytesWritten:  s.FlashBytesWritten + o.FlashBytesWritten,
		DeviceBytesWritten: s.DeviceBytesWritten + o.DeviceBytesWritten,
		FlashBytesRead:     s.FlashBytesRead + o.FlashBytesRead,
		FlashReadOps:       s.FlashReadOps + o.FlashReadOps,
		ReadErrors:         s.ReadErrors + o.ReadErrors,
		WriteErrors:        s.WriteErrors + o.WriteErrors,
		Evictions:          s.Evictions + o.Evictions,
		WriteRetries:       s.WriteRetries + o.WriteRetries,
		DegradedRejects:    s.DegradedRejects + o.DegradedRejects,
		DegradedEntered:    s.DegradedEntered + o.DegradedEntered,
		DegradedSeconds:    s.DegradedSeconds + o.DegradedSeconds,
		BreakerOpen:        s.BreakerOpen + o.BreakerOpen,
	}
}

// Field is one named counter of a Stats snapshot, for surfaces that render
// stats generically (the memcached `stats` verb of internal/server, log
// lines, dashboards). Names are stable snake_case identifiers.
type Field struct {
	Name  string
	Value uint64
}

// Fields returns every Stats counter as an ordered name/value list, in
// struct-declaration order. Surfaces that iterate Fields automatically pick
// up counters added to Stats later; a reflection test pins the two in sync.
func (s Stats) Fields() []Field {
	return []Field{
		{"gets", s.Gets},
		{"hits", s.Hits},
		{"sets", s.Sets},
		{"deletes", s.Deletes},
		{"logical_bytes", s.LogicalBytes},
		{"flash_bytes_written", s.FlashBytesWritten},
		{"device_bytes_written", s.DeviceBytesWritten},
		{"flash_bytes_read", s.FlashBytesRead},
		{"flash_read_ops", s.FlashReadOps},
		{"read_errors", s.ReadErrors},
		{"write_errors", s.WriteErrors},
		{"evictions", s.Evictions},
		{"write_retries", s.WriteRetries},
		{"degraded_rejects", s.DegradedRejects},
		{"degraded_entered", s.DegradedEntered},
		{"degraded_seconds", s.DegradedSeconds},
		{"breaker_open", s.BreakerOpen},
	}
}

// ALWA returns application-level write amplification (1 when no writes).
func (s Stats) ALWA() float64 {
	if s.LogicalBytes == 0 {
		return 1
	}
	return float64(s.FlashBytesWritten) / float64(s.LogicalBytes)
}

// TotalWA returns end-to-end write amplification including device GC.
func (s Stats) TotalWA() float64 {
	if s.LogicalBytes == 0 {
		return 1
	}
	dev := s.DeviceBytesWritten
	if dev < s.FlashBytesWritten {
		dev = s.FlashBytesWritten
	}
	return float64(dev) / float64(s.LogicalBytes)
}

// MissRatio returns 1 - hits/gets (0 when no gets).
func (s Stats) MissRatio() float64 {
	if s.Gets == 0 {
		return 0
	}
	return 1 - float64(s.Hits)/float64(s.Gets)
}

// ReadAmplification returns flash bytes read per hit byte served; the §5.5
// comparison uses the ratio between engines.
func (s Stats) ReadAmplification() float64 {
	if s.Hits == 0 {
		return 0
	}
	return float64(s.FlashBytesRead) / float64(s.Hits)
}

// Clock abstracts the virtual clock the replayer advances; satisfied by
// *vtime.Clock.
type Clock interface {
	Now() time.Duration
	Advance(time.Duration) time.Duration
}
