package cachelib

import (
	"testing"

	"nemo/internal/admission"
)

func TestReplayWithAdmissionPolicy(t *testing.T) {
	// A never-admit policy must produce zero fills while misses still count.
	e := newFake()
	res, err := Replay(e, testStream(), ReplayConfig{
		Ops:       2000,
		Admission: admission.NewRandom(0, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Sets != 0 {
		t.Fatalf("never-admit policy allowed %d fills", res.Final.Sets)
	}
	if res.Final.MissRatio() != 1 {
		t.Fatalf("miss ratio %v, want 1 with an empty cache", res.Final.MissRatio())
	}
}

func TestReplayRejectFirstReducesFills(t *testing.T) {
	withPolicy := func(p admission.Policy) uint64 {
		e := newFake()
		res, err := Replay(e, testStream(), ReplayConfig{Ops: 20000, Admission: p})
		if err != nil {
			t.Fatal(err)
		}
		return res.Final.Sets
	}
	all := withPolicy(nil)
	doorkept := withPolicy(admission.NewRejectFirst(1 << 14))
	if doorkept >= all {
		t.Fatalf("reject-first should reduce fills: %d vs %d", doorkept, all)
	}
	if doorkept == 0 {
		t.Fatal("reject-first blocked everything; popular keys should pass")
	}
}
