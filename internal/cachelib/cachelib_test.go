package cachelib

import (
	"reflect"
	"testing"
	"time"

	"nemo/internal/metrics"
	"nemo/internal/trace"
	"nemo/internal/vtime"
)

// fakeEngine is an unbounded map cache for exercising the replayer.
type fakeEngine struct {
	m    map[string][]byte
	st   Stats
	hist metrics.Histogram
}

func newFake() *fakeEngine { return &fakeEngine{m: make(map[string][]byte)} }

func (f *fakeEngine) Name() string { return "fake" }
func (f *fakeEngine) Get(key []byte) ([]byte, bool) {
	f.st.Gets++
	v, ok := f.m[string(key)]
	if ok {
		f.st.Hits++
	}
	f.hist.Record(time.Microsecond)
	return v, ok
}
func (f *fakeEngine) Set(key, value []byte) error {
	f.st.Sets++
	f.st.LogicalBytes += uint64(len(key) + len(value))
	f.st.FlashBytesWritten += uint64(len(key) + len(value))
	f.m[string(key)] = append([]byte(nil), value...)
	return nil
}
func (f *fakeEngine) Stats() Stats                    { return f.st }
func (f *fakeEngine) ReadLatency() *metrics.Histogram { return &f.hist }
func (f *fakeEngine) Close() error                    { return nil }

func testStream() trace.Stream {
	return trace.NewZipf(trace.ClusterConfig{
		Name: "t", KeySize: 16, ValueMean: 50, ValueStd: 10,
		Keys: 500, ZipfAlpha: 1.3, Seed: 2,
	})
}

func TestReplayDemandFill(t *testing.T) {
	e := newFake()
	res, err := Replay(e, testStream(), ReplayConfig{Ops: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Gets != 10_000 {
		t.Fatalf("gets = %d", res.Final.Gets)
	}
	// Every miss must have been filled.
	if res.Final.Sets != res.Final.Gets-res.Final.Hits {
		t.Fatalf("sets %d != misses %d", res.Final.Sets, res.Final.Gets-res.Final.Hits)
	}
	// With 500 keys and an unbounded cache, misses are only compulsory.
	if res.Final.Sets > 500 {
		t.Fatalf("more fills (%d) than distinct keys", res.Final.Sets)
	}
	if res.Final.MissRatio() > 0.2 {
		t.Fatalf("miss ratio %v too high for unbounded cache", res.Final.MissRatio())
	}
}

func TestReplayRawAllSets(t *testing.T) {
	e := newFake()
	res, err := ReplayRaw(e, testStream(), ReplayConfig{Ops: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Sets != 1000 || res.Final.Gets != 0 {
		t.Fatalf("raw replay should only Set: %+v", res.Final)
	}
}

func TestReplayAdvancesClock(t *testing.T) {
	e := newFake()
	clk := &vtime.Clock{}
	_, err := Replay(e, testStream(), ReplayConfig{
		Ops: 100, InterArrival: time.Millisecond, Clock: clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	if clk.Now() != 100*time.Millisecond {
		t.Fatalf("clock = %v, want 100ms", clk.Now())
	}
}

func TestReplayTimelineAndMissSeries(t *testing.T) {
	e := newFake()
	res, err := Replay(e, testStream(), ReplayConfig{Ops: 6400})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) == 0 {
		t.Fatal("no timeline samples")
	}
	last := res.Timeline[len(res.Timeline)-1]
	if last.Ops != 6400 {
		t.Fatalf("last sample at %d ops", last.Ops)
	}
	if res.Miss.Len() == 0 {
		t.Fatal("no miss-ratio windows")
	}
	// Miss ratio should decline as the unbounded cache warms.
	first, lastMiss := res.Miss.Y[0], res.Miss.Y[res.Miss.Len()-1]
	if lastMiss > first {
		t.Fatalf("miss ratio rose from %v to %v on an unbounded cache", first, lastMiss)
	}
}

func TestStatsDerivedMetrics(t *testing.T) {
	approx := func(got, want float64) bool {
		d := got - want
		return d < 1e-9 && d > -1e-9
	}
	s := Stats{Gets: 100, Hits: 80, LogicalBytes: 1000, FlashBytesWritten: 1560,
		DeviceBytesWritten: 3120, FlashBytesRead: 8000}
	if got := s.MissRatio(); !approx(got, 0.2) {
		t.Fatalf("miss = %v", got)
	}
	if got := s.ALWA(); !approx(got, 1.56) {
		t.Fatalf("ALWA = %v", got)
	}
	if got := s.TotalWA(); !approx(got, 3.12) {
		t.Fatalf("TotalWA = %v", got)
	}
	if got := s.ReadAmplification(); got != 100 {
		t.Fatalf("readamp = %v", got)
	}
	var zero Stats
	if zero.ALWA() != 1 || zero.MissRatio() != 0 || zero.TotalWA() != 1 {
		t.Fatal("zero-value stats should degrade gracefully")
	}
	// DeviceBytesWritten below FlashBytesWritten clamps up.
	s2 := Stats{LogicalBytes: 100, FlashBytesWritten: 200, DeviceBytesWritten: 0}
	if s2.TotalWA() != 2 {
		t.Fatalf("TotalWA clamp = %v", s2.TotalWA())
	}
}

// TestStatsFieldsCoverStruct pins Fields to the Stats struct: every uint64
// counter must appear exactly once, in declaration order, with its value —
// so a counter added to Stats without a Fields entry (which would silently
// vanish from the server's `stats` verb) fails here.
func TestStatsFieldsCoverStruct(t *testing.T) {
	s := Stats{}
	rv := reflect.ValueOf(&s).Elem()
	for i := 0; i < rv.NumField(); i++ {
		rv.Field(i).SetUint(uint64(i + 1)) // distinct, nonzero
	}
	fields := s.Fields()
	if len(fields) != rv.NumField() {
		t.Fatalf("Fields() has %d entries, Stats has %d fields", len(fields), rv.NumField())
	}
	seen := map[string]bool{}
	for i, f := range fields {
		if f.Value != uint64(i+1) {
			t.Fatalf("Fields()[%d] = %q/%d, want declaration-order value %d", i, f.Name, f.Value, i+1)
		}
		if seen[f.Name] {
			t.Fatalf("duplicate field name %q", f.Name)
		}
		seen[f.Name] = true
	}
}
