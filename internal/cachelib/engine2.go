package cachelib

import "time"

// This file defines Engine v2: the composable extension interfaces layered
// on the minimal Engine core, plus the per-request Options the replayers
// thread through every engine. The design mirrors production flash caches
// (CacheLib, Flashield-style pipelines): a bare Get/Set contract for
// interchangeability, with batching, deletion, and asynchronous admission as
// optional capabilities an engine may implement natively. Engines that do
// not are upgraded by Adapt, so every harness path can be written against
// the v2 surface while the four baselines keep running unmodified.
//
// The op vocabulary of a mixed GET/SET/DELETE workload is trace.Kind,
// carried on every trace.Request — there is deliberately no second enum
// here.

// Hint biases admission for one request, overriding the replay-level policy.
type Hint uint8

const (
	// HintDefault defers to the configured admission policy.
	HintDefault Hint = iota
	// HintForce admits the fill unconditionally, bypassing the policy
	// (production caches pin known-hot keys this way).
	HintForce
	// HintBypass never fills: the object is served if cached but a miss is
	// not written back to flash (read-through of cold scans).
	HintBypass
)

// Options carries the per-request knobs of Engine v2. The zero value means
// "behave exactly like the v1 path": no TTL, policy-driven admission,
// demand-fill on miss.
type Options struct {
	// TTL is the object's time-to-live on the replay's virtual clock; zero
	// means no expiry. Expiry is enforced by the replay harness (which owns
	// the clock): a GET past the deadline deletes the object and counts as
	// a miss. Engines therefore need no per-object timestamp metadata —
	// matching Nemo, whose FIFO pool is its only aging mechanism. A TTL
	// requires a configured Clock (the replayers reject the combination
	// otherwise), and because parallel workers share that clock, expiry
	// decisions under ParallelReplay depend on scheduling: TTL runs trade
	// the exact worker-count determinism for wall-clock parallelism.
	TTL time.Duration
	// Admission biases the fill decision for this request.
	Admission Hint
	// NoFill suppresses demand-fill on miss regardless of admission.
	NoFill bool
}

// BatchEngine is implemented by engines that execute many operations per
// lock acquisition. Batches group keys by shard internally: a sharded
// implementation performs one hash pass, builds per-shard sub-batches, and
// fans them out in parallel, so an N-op batch costs one lock round-trip per
// touched shard instead of N.
type BatchEngine interface {
	// GetMany looks up keys[i] for every i, returning parallel slices:
	// values[i] is a fresh copy (nil on miss) and hits[i] reports presence.
	GetMany(keys [][]byte) (values [][]byte, hits []bool)
	// SetMany inserts keys[i] → values[i]. Within each shard the inserts
	// apply in batch order with effects identical to sequential Sets
	// (repeated keys included: the later write wins); across shards the
	// sub-batches run independently, so on error some sub-batches may have
	// completed while others did not — the first error by shard order is
	// returned. Single-shard engines degrade to the strict sequential
	// semantics, stopping at the first error.
	SetMany(keys, values [][]byte) error
}

// Deleter is implemented by engines that can invalidate a key. Log-indexed
// engines drop the exact index entry; Nemo, which deliberately has no exact
// index, tombstones: in-memory copies are removed and a tombstone entry
// shadows any still-cached flash copy until it ages out of the FIFO pool.
type Deleter interface {
	// Delete invalidates key: a subsequent Get misses as long as the
	// deletion is still remembered (exactly for indexed engines, for the
	// tombstone's cache lifetime for Nemo).
	Delete(key []byte) error
}

// AsyncEngine is implemented by engines whose writes can complete off the
// caller's critical path. For Nemo, SetAsync inserts into the in-memory SG
// and returns; when the rear-full trigger fires, the full SG's flush is
// handed to a background flusher pool instead of running inline on the
// inserting goroutine — the flush is the p99 outlier of the Set path.
type AsyncEngine interface {
	// SetAsync inserts like Set but never flushes inline. Errors from
	// deferred flushes surface on a later call, on Drain, or on Close.
	SetAsync(key, value []byte) error
	// Drain blocks until all deferred work has reached flash, returning
	// the first deferred error. After Drain, Stats reflects every SetAsync.
	Drain() error
}

// EngineV2 is the full production surface: the minimal core plus all three
// extensions. core.Cache and core.Sharded implement it natively; Adapt
// upgrades any plain Engine.
type EngineV2 interface {
	Engine
	BatchEngine
	Deleter
	AsyncEngine
}
