package cachelib

import (
	"fmt"
	"runtime"
	"sync"

	"nemo/internal/metrics"
)

// ShardedEngine is the generic hash-partitioned facade: n independent
// engines, each owning a disjoint slice of the cache's capacity (its own
// zone range, index structures, and lock), behind one Engine v2 surface.
// Requests route by the shared shard lane of the key fingerprint
// (ShardOfFP), so requests for different shards proceed fully in parallel
// and — because core.Sharded routes by the same lane — every engine of a
// comparison run partitions the key space identically.
//
// It is how the four baselines (logcache, setcache, kangaroo, fairywren)
// get the sharded/concurrent treatment Nemo received natively: each
// package's NewSharded partitions its zone budget into per-shard engines
// and wraps them here. Batches take one hash pass (PlanFPs), group into
// per-shard sub-batches (GroupByShard), and fan out across shards in
// parallel; Stats sums per-shard counters without a global lock. The
// fan-out composes with whatever read concurrency the shard engine itself
// offers: a sub-batch handed to an engine with a three-phase GetMany
// (core.Cache) overlaps its flash I/O within the shard, on top of the
// cross-shard parallelism added here.
//
// With one shard a ShardedEngine is behaviorally identical to the bare
// engine it wraps: every request routes to shard 0 in the order issued, so
// replay statistics are stat-for-stat those of the unwrapped engine (pinned
// per baseline by the shards=1 equivalence property tests).
type ShardedEngine struct {
	shards []EngineV2
	n      uint64

	// histMu guards the merged read-latency histogram rebuilt on demand by
	// ReadLatency (the Engine contract returns a pointer).
	histMu sync.Mutex
	hist   metrics.Histogram
}

// The generic facade exposes the full v2 surface plus the Sharder routing
// contract the parallel replayer partitions work by.
var (
	_ EngineV2 = (*ShardedEngine)(nil)
	_ Sharder  = (*ShardedEngine)(nil)
)

// NewShardedEngine wraps the given per-shard engines (already constructed
// over disjoint capacity partitions) into one sharded facade. Each engine is
// upgraded to EngineV2 via Adapt, so plain baselines keep running
// unmodified.
func NewShardedEngine(engines []Engine) (*ShardedEngine, error) {
	if len(engines) == 0 {
		return nil, fmt.Errorf("cachelib: sharded engine needs at least one shard")
	}
	s := &ShardedEngine{shards: make([]EngineV2, len(engines)), n: uint64(len(engines))}
	for i, e := range engines {
		if e == nil {
			return nil, fmt.Errorf("cachelib: shard %d is nil", i)
		}
		s.shards[i] = Adapt(e)
	}
	return s, nil
}

// NewShardedFrom builds n per-shard engines with the given constructor and
// wraps them. On a mid-construction failure every already-built shard is
// closed — a half-built facade must not leak shard resources.
func NewShardedFrom(n int, build func(shard int) (Engine, error)) (*ShardedEngine, error) {
	if n < 1 {
		n = 1
	}
	engines := make([]Engine, n)
	for i := 0; i < n; i++ {
		e, err := build(i)
		if err != nil {
			for _, built := range engines[:i] {
				built.Close()
			}
			return nil, fmt.Errorf("cachelib: shard %d/%d: %w", i, n, err)
		}
		engines[i] = e
	}
	return NewShardedEngine(engines)
}

// NewShardedRange partitions the zone range [zoneBase, zoneBase+zones) into
// shards equal slices and wraps one engine per slice — the shared spine of
// every baseline's NewSharded constructor, so the divisibility contract and
// the per-shard slicing cannot drift between engine families. errPrefix
// names the engine package in the divisibility error.
func NewShardedRange(errPrefix string, zoneBase, zones, shards int,
	build func(zoneBase, zones int) (Engine, error)) (*ShardedEngine, error) {
	if shards < 1 {
		shards = 1
	}
	if zones%shards != 0 {
		return nil, fmt.Errorf("%s: %d zones not divisible by %d shards", errPrefix, zones, shards)
	}
	per := zones / shards
	return NewShardedFrom(shards, func(i int) (Engine, error) {
		return build(zoneBase+i*per, per)
	})
}

// NumShards implements Sharder.
func (s *ShardedEngine) NumShards() int { return len(s.shards) }

// ShardOf implements Sharder: replay drivers partition work by this function
// so each shard's request order stays deterministic no matter how many
// workers run.
func (s *ShardedEngine) ShardOf(key []byte) int { return ShardOfKey(key, s.n) }

// Shard returns shard i's engine (tests and diagnostics).
func (s *ShardedEngine) Shard(i int) EngineV2 { return s.shards[i] }

// Name implements Engine, reporting the wrapped design's name ("Log", "Set",
// "KG", "FW") so comparison tables stay labeled by design, not by wrapper.
func (s *ShardedEngine) Name() string { return s.shards[0].Name() }

// Close implements Engine: every shard is closed — all of them, even after a
// failure — and the first error is returned.
func (s *ShardedEngine) Close() error {
	var first error
	for _, e := range s.shards {
		if err := e.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Get looks up an object in its owning shard.
func (s *ShardedEngine) Get(key []byte) ([]byte, bool) {
	return s.shards[s.ShardOf(key)].Get(key)
}

// Set inserts or updates an object in its owning shard.
func (s *ShardedEngine) Set(key, value []byte) error {
	return s.shards[s.ShardOf(key)].Set(key, value)
}

// Delete implements Deleter in the owning shard (natively or through the
// shard's Adapt tombstone emulation).
func (s *ShardedEngine) Delete(key []byte) error {
	return s.shards[s.ShardOf(key)].Delete(key)
}

// SetAsync implements AsyncEngine in the owning shard; engines without
// native async degrade to a synchronous Set there.
func (s *ShardedEngine) SetAsync(key, value []byte) error {
	return s.shards[s.ShardOf(key)].SetAsync(key, value)
}

// Drain implements AsyncEngine, waiting out every shard's deferred work.
func (s *ShardedEngine) Drain() error {
	var first error
	for _, e := range s.shards {
		if err := e.Drain(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// GetMany implements BatchEngine on the generic facade: one hash pass,
// per-shard sub-batches, parallel fan-out. Single-shard batches (the common
// case under the per-shard batched replayer) skip the grouping and goroutine
// fan-out entirely.
func (s *ShardedEngine) GetMany(keys [][]byte) (values [][]byte, hits []bool) {
	if len(keys) == 0 {
		return make([][]byte, 0), make([]bool, 0)
	}
	scratch := BorrowFPs()
	defer ReturnFPs(scratch)
	fps, first, single := PlanFPs(keys, scratch, s.n)
	if single {
		return s.shards[first].GetMany(keys)
	}
	values = make([][]byte, len(keys))
	hits = make([]bool, len(keys))
	fanOut := runtime.GOMAXPROCS(0) > 1
	var wg sync.WaitGroup
	for _, sub := range GroupByShard(fps, keys, nil, len(s.shards)) {
		scatter := func(sub SubBatch) {
			vs, hs := s.shards[sub.Shard].GetMany(sub.Keys)
			for i, p := range sub.Pos {
				values[p], hits[p] = vs[i], hs[i]
			}
		}
		if !fanOut {
			// A single-P runtime gains nothing from goroutine fan-out;
			// sub-batches still pay one engine call each.
			scatter(sub)
			continue
		}
		wg.Add(1)
		go func(sub SubBatch) {
			defer wg.Done()
			scatter(sub)
		}(sub)
	}
	wg.Wait()
	return values, hits
}

// SetMany implements BatchEngine on the generic facade. Within a shard
// inserts apply in batch order; across shards sub-batches run in parallel
// (keys of different shards never interact). The lowest-numbered shard's
// error is returned first.
func (s *ShardedEngine) SetMany(keys, values [][]byte) error {
	if len(keys) == 0 {
		return nil
	}
	scratch := BorrowFPs()
	defer ReturnFPs(scratch)
	fps, first, single := PlanFPs(keys, scratch, s.n)
	if single {
		return s.shards[first].SetMany(keys, values)
	}
	fanOut := runtime.GOMAXPROCS(0) > 1
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for _, sub := range GroupByShard(fps, keys, values, len(s.shards)) {
		if !fanOut {
			errs[sub.Shard] = s.shards[sub.Shard].SetMany(sub.Keys, sub.Vals)
			continue
		}
		wg.Add(1)
		go func(sub SubBatch) {
			defer wg.Done()
			errs[sub.Shard] = s.shards[sub.Shard].SetMany(sub.Keys, sub.Vals)
		}(sub)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Stats implements Engine by summing per-shard counters. Each shard is
// sampled under its own lock; no global lock is taken.
func (s *ShardedEngine) Stats() Stats {
	var sum Stats
	for _, e := range s.shards {
		sum = sum.Add(e.Stats())
	}
	return sum
}

// ReadLatency implements Engine: the merged histogram of all shards,
// rebuilt on each call. Like the per-shard histograms it merges, the result
// should be read while the engine is quiescent.
func (s *ShardedEngine) ReadLatency() *metrics.Histogram {
	s.histMu.Lock()
	defer s.histMu.Unlock()
	s.hist.Reset()
	for _, e := range s.shards {
		s.hist.Merge(e.ReadLatency())
	}
	return &s.hist
}
