package cachelib

import (
	"fmt"
	"testing"

	"nemo/internal/metrics"
)

// fakeShardedNoBatch is a sharded engine WITHOUT native batching: it routes
// single-key ops across shardFakes and implements Sharder, but leaves
// GetMany/SetMany to the Adapt shim. It models an engine family that got
// the sharded treatment but not the batch fast path.
type fakeShardedNoBatch struct {
	shards []*shardFake
	n      uint64
}

func newFakeShardedNoBatch(n int) *fakeShardedNoBatch {
	f := &fakeShardedNoBatch{shards: make([]*shardFake, n), n: uint64(n)}
	for i := range f.shards {
		f.shards[i] = newShardFake("Fake")
	}
	return f
}

func (f *fakeShardedNoBatch) Name() string   { return "Fake" }
func (f *fakeShardedNoBatch) NumShards() int { return len(f.shards) }
func (f *fakeShardedNoBatch) ShardOf(k []byte) int {
	return ShardOfKey(k, f.n)
}
func (f *fakeShardedNoBatch) Get(k []byte) ([]byte, bool) { return f.shards[f.ShardOf(k)].Get(k) }
func (f *fakeShardedNoBatch) Set(k, v []byte) error       { return f.shards[f.ShardOf(k)].Set(k, v) }
func (f *fakeShardedNoBatch) Close() error                { return nil }
func (f *fakeShardedNoBatch) ReadLatency() *metrics.Histogram {
	return f.shards[0].ReadLatency()
}
func (f *fakeShardedNoBatch) Stats() Stats {
	var sum Stats
	for _, s := range f.shards {
		sum = sum.Add(s.Stats())
	}
	return sum
}

// TestAdaptSetManyErrorContract is the table-driven pin of the BatchEngine
// error-aggregation contract on the Adapt shim, checked two ways: against
// explicit expectations, and against the native sharded implementation
// (cachelib.ShardedEngine over identical shards) run on the same batch —
// the shim's fallback must aggregate per-op errors exactly like the native
// fan-out: per-shard independent stop, first error by shard order.
func TestAdaptSetManyErrorContract(t *testing.T) {
	const nShards = 3
	keys := testKeys(24)
	// Group keys by owning shard so cases can address "shard s's k-th key"
	// without hardcoding hash outcomes.
	perShard := map[int][]string{}
	for _, k := range keys {
		sh := ShardOfKey(k, nShards)
		perShard[sh] = append(perShard[sh], string(k))
	}
	for sh := 0; sh < nShards; sh++ {
		if len(perShard[sh]) < 2 {
			t.Fatalf("test keys leave shard %d with <2 keys; enlarge the batch", sh)
		}
	}

	cases := []struct {
		name string
		fail []string // keys armed to fail
		// wantErr is the expected error key ("" = success): the first
		// failing key by SHARD order, not batch order.
		wantErrKey string
	}{
		{"no-failures", nil, ""},
		{"one-shard-fails", []string{perShard[1][1]}, perShard[1][1]},
		{"two-shards-fail-shard-order-wins", []string{perShard[2][0], perShard[1][1]}, perShard[1][1]},
		{"all-shards-fail", []string{perShard[0][1], perShard[1][0], perShard[2][1]}, perShard[0][1]},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			arm := func(fakes []*shardFake) {
				for _, k := range tc.fail {
					fakes[ShardOfKey([]byte(k), nShards)].failing[k] = true
				}
			}

			// Shimmed: a sharded engine without native batching, upgraded
			// by Adapt (tombstone emulation active — no native Deleter).
			shimmed := newFakeShardedNoBatch(nShards)
			arm(shimmed.shards)
			shimErr := Adapt(shimmed).SetMany(keys, keys)

			// Native: the generic sharded facade over identical shards.
			native, fakes := buildSharded(t, nShards)
			arm(fakes)
			nativeErr := native.SetMany(keys, keys)

			// Both agree with the table...
			for who, err := range map[string]error{"shim": shimErr, "native": nativeErr} {
				if tc.wantErrKey == "" {
					if err != nil {
						t.Fatalf("%s: unexpected error %v", who, err)
					}
				} else if want := fmt.Sprintf("fake: set %q refused", tc.wantErrKey); err == nil || err.Error() != want {
					t.Fatalf("%s: error = %v, want %q (first failing key by shard order)", who, err, want)
				}
			}
			// ...and with each other, shard by shard: the same keys applied
			// in the same order everywhere.
			for sh := 0; sh < nShards; sh++ {
				got := shimmed.shards[sh].applied
				want := fakes[sh].applied
				if len(got) != len(want) {
					t.Fatalf("shard %d: shim applied %v, native applied %v", sh, got, want)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("shard %d: shim applied %v, native applied %v", sh, got, want)
					}
				}
			}
		})
	}
}

// TestAdaptSetManySingleShardStops pins the unsharded fallback: a plain
// engine's emulated SetMany keeps strict sequential semantics, stopping at
// the first error in batch order.
func TestAdaptSetManySingleShardStops(t *testing.T) {
	bare := newShardFake("Fake")
	keys := testKeys(8)
	bare.failing[string(keys[3])] = true
	err := Adapt(bare).SetMany(keys, keys)
	if want := fmt.Sprintf("fake: set %q refused", keys[3]); err == nil || err.Error() != want {
		t.Fatalf("error = %v, want %q", err, want)
	}
	if len(bare.applied) != 3 {
		t.Fatalf("applied %v: a single-shard batch must stop at the first error", bare.applied)
	}
}
