package cachelib

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"nemo/internal/admission"
	"nemo/internal/metrics"
	"nemo/internal/trace"
)

// Sharder is implemented by engines that partition the key space into
// independent shards (core.Sharded). ParallelReplay uses it to keep every
// shard's request order deterministic regardless of worker count.
type Sharder interface {
	// NumShards returns the number of independent partitions.
	NumShards() int
	// ShardOf returns the partition owning key.
	ShardOf(key []byte) int
}

// ParallelReplayConfig controls a ParallelReplay run.
type ParallelReplayConfig struct {
	// Workers is the number of replay goroutines (default: the engine's
	// shard count, or 1 for unsharded engines). Workers beyond the shard
	// count are clamped — a shard is only ever driven by one goroutine.
	Workers int
	// BatchSize groups requests into per-shard batches of up to this many
	// operations, driven through the engine's BatchEngine surface: GETs go
	// through GetMany (one lock acquisition per batch) and their demand
	// fills through SetMany. Batches are formed per shard, so batch
	// composition — and therefore the replay's statistics — is independent
	// of the worker count. Within a GET run only a key's first occurrence
	// is batched; repeats replay serially after the run's fills, which
	// reproduces the sequential Get-after-fill outcome. 0 or 1 replays
	// unbatched.
	BatchSize int
	// AsyncSets routes demand fills and explicit SETs through SetAsync
	// (cachelib.AsyncEngine) so SG flushes happen on the engine's flusher
	// pool instead of the replay worker; ParallelReplay drains the engine
	// before collecting final statistics. Engines without native async
	// support degrade to synchronous Sets.
	AsyncSets bool
	// Options applies the Engine v2 per-request knobs (TTL, admission
	// hint, no-fill) to every request of the run.
	Options Options
	// Admission gates demand fills and explicit SETs; nil admits
	// everything. Within a shard the policy is consulted in trace order
	// for explicit SETs and for fills of distinct keys at every batch
	// size; a repeated key whose first fill was rejected re-consults after
	// the run's fill phase, so its position relative to the batch's other
	// fills shifts with the batch boundary (only policies with cross-key
	// state can observe this). Across shards the interleaving follows
	// goroutine scheduling, so only single-shard runs observe one global
	// deterministic order.
	Admission admission.Policy
	// InterArrival is the virtual time advanced per request when Clock is
	// set. The total advance is deterministic (Ops × InterArrival); the
	// interleaving across shards is not, so virtual-latency percentiles
	// from a parallel run are approximate while hit-ratio and
	// write-amplification stats stay exact.
	InterArrival time.Duration
	// Clock, when set, is advanced by InterArrival per request.
	Clock Clock
}

// ParallelReplayResult aggregates the metrics of one parallel replay.
type ParallelReplayResult struct {
	Engine  string
	Ops     int
	Shards  int
	Workers int
	// Elapsed is host wall-clock time; OpsPerSec = Ops / Elapsed. These are
	// the only host-time metrics in the repository — everything else runs
	// on virtual time — because the point of the parallel driver is to
	// measure real scheduling scalability of the sharded engine.
	Elapsed   time.Duration
	OpsPerSec float64
	// SetLatency is the host-time distribution of write calls (Set,
	// SetAsync, or SetMany — one sample per engine call). Its p99 is where
	// the background flush pipeline shows: synchronous fills pay the
	// occasional whole-SG flush inline, async fills do not.
	SetLatency metrics.Snapshot
	Final      Stats
}

// replayWorker carries one worker goroutine's state through a replay.
type replayWorker struct {
	v2      EngineV2
	cfg     *ParallelReplayConfig
	reqs    []trace.Request
	exp     *expiryTracker
	setHist metrics.Histogram

	// Reused batch scratch (the batching layer must stay cheap relative to
	// the per-op engine work it amortizes).
	keyBuf   [][]byte
	fillKey  [][]byte
	fillVal  [][]byte
	sigBuf   []uint64
	uniqIdx  []int32
	dupIdx   []int32
	mergeBuf [][]int32
}

// advance moves the shared virtual clock by one inter-arrival gap.
func (rw *replayWorker) advance() {
	if rw.cfg.Clock != nil && rw.cfg.InterArrival > 0 {
		rw.cfg.Clock.Advance(rw.cfg.InterArrival)
	}
}

// admits applies the hint-aware admission decision for one write.
func (rw *replayWorker) admits(key []byte, size int) bool {
	return admitWrite(rw.cfg.Options, rw.cfg.Admission, key, size)
}

// write performs one timed write call (sync or async per configuration).
func (rw *replayWorker) write(key, value []byte) error {
	start := time.Now()
	var err error
	if rw.cfg.AsyncSets {
		err = rw.v2.SetAsync(key, value)
	} else {
		err = rw.v2.Set(key, value)
	}
	rw.setHist.Record(time.Since(start))
	if err == nil {
		rw.exp.wrote(key)
	}
	return err
}

// writeMany performs one timed batched write call.
func (rw *replayWorker) writeMany(keys, values [][]byte) error {
	if len(keys) == 0 {
		return nil
	}
	if rw.cfg.AsyncSets {
		for i := range keys {
			if err := rw.write(keys[i], values[i]); err != nil {
				return err
			}
		}
		return nil
	}
	start := time.Now()
	err := rw.v2.SetMany(keys, values)
	rw.setHist.Record(time.Since(start))
	if err == nil {
		for _, k := range keys {
			rw.exp.wrote(k)
		}
	}
	return err
}

// runOne advances the clock and dispatches a single request (the unbatched
// path).
func (rw *replayWorker) runOne(req *trace.Request) error {
	rw.advance()
	return rw.dispatchOne(req)
}

// dispatchOne executes one request without touching the clock (the batched
// path advances at collection time).
func (rw *replayWorker) dispatchOne(req *trace.Request) error {
	switch req.Op {
	case trace.KindDelete:
		rw.exp.deleted(req.Key)
		return rw.v2.Delete(req.Key)
	case trace.KindSet:
		if !rw.admits(req.Key, len(req.Key)+len(req.Value)) {
			return nil
		}
		return rw.write(req.Key, req.Value)
	default:
		if err := rw.exp.expireIfDue(rw.v2, req.Key); err != nil {
			return err
		}
		if _, hit := rw.v2.Get(req.Key); !hit {
			if rw.cfg.Options.NoFill || !rw.admits(req.Key, len(req.Key)+len(req.Value)) {
				return nil
			}
			return rw.write(req.Key, req.Value)
		}
		return nil
	}
}

// runBatch executes one per-shard batch: requests are split into maximal
// same-kind runs executed in order, so within the shard the batch has the
// same effect ordering as the sequential op stream — GET runs go through
// GetMany, their admitted fills through SetMany, SET runs through SetMany,
// deletions one by one. Within a GET run, only the first occurrence of each
// key is batched; repeat occurrences (constant on hot-key-heavy Zipf
// traces) are replayed serially after the fills, which reproduces the
// sequential Get-after-fill outcome exactly instead of double-missing.
func (rw *replayWorker) runBatch(idx []int32) error {
	for lo := 0; lo < len(idx); {
		kind := rw.reqs[idx[lo]].Op
		hi := lo + 1
		for hi < len(idx) && rw.reqs[idx[hi]].Op == kind {
			hi++
		}
		run := idx[lo:hi]
		switch kind {
		case trace.KindDelete:
			for _, i := range run {
				rw.advance()
				req := &rw.reqs[i]
				rw.exp.deleted(req.Key)
				if err := rw.v2.Delete(req.Key); err != nil {
					return err
				}
			}
		case trace.KindSet:
			keys := rw.fillKey[:0]
			values := rw.fillVal[:0]
			for _, i := range run {
				rw.advance()
				req := &rw.reqs[i]
				if rw.admits(req.Key, len(req.Key)+len(req.Value)) {
					keys = append(keys, req.Key)
					values = append(values, req.Value)
				}
			}
			rw.fillKey, rw.fillVal = keys[:0], values[:0]
			if err := rw.writeMany(keys, values); err != nil {
				return err
			}
		default: // GET run: batched lookup, then batched demand fill.
			if err := rw.getPhase(run); err != nil {
				return err
			}
		}
		lo = hi
	}
	return nil
}

// ParallelReplay replays a materialized trace against the engine from many
// goroutines, dispatching each request by its op kind (GET with demand
// fill — the same look-aside pattern as Replay — plus explicit SET and
// DELETE). Work is partitioned by the engine's shard function: worker w
// handles exactly the shards s with s mod Workers == w, and scans the trace
// in order, so each shard observes the identical request subsequence it
// would see in a single-threaded replay. Per-shard cache state — and
// therefore aggregate hit ratio and write amplification — is deterministic
// and independent of Workers and goroutine scheduling. Two configurations
// trade that exactness for their feature: Options.TTL (expiry reads the
// shared clock, whose advance order follows scheduling) and a cross-shard
// Admission policy under multiple workers (the policy observes shards in
// scheduling order).
//
// With BatchSize > 1, requests are grouped into per-shard batches driven
// through the engine's BatchEngine surface; because batches are formed per
// shard (not per worker), batch composition is also independent of the
// worker count. Engines that do not implement the v2 extensions are
// upgraded via Adapt.
//
// Engines that do not implement Sharder are driven by a single worker (the
// trace order is then the sequential order, preserving exact equivalence
// with Replay's stats).
func ParallelReplay(e Engine, reqs []trace.Request, cfg ParallelReplayConfig) (ParallelReplayResult, error) {
	v2 := Adapt(e)
	if cfg.Options.TTL > 0 && cfg.Clock == nil {
		return ParallelReplayResult{Engine: v2.Name()}, fmt.Errorf(
			"cachelib: Options.TTL requires a Clock (expiry runs on the replay's virtual clock)")
	}
	shards := 1
	shardOf := func([]byte) int { return 0 }
	if sh, ok := e.(Sharder); ok {
		shards = sh.NumShards()
		shardOf = sh.ShardOf
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = shards
	}
	if workers > shards {
		workers = shards
	}

	// Precompute each worker's request indices once (in trace order) so
	// replay loops touch only their own work instead of rescanning and
	// skipping the whole trace per worker. Batched runs also remember the
	// shard of every request so routing never re-hashes a key.
	workLists := make([][]int32, workers)
	var shardIdx []int32
	if cfg.BatchSize > 1 {
		shardIdx = make([]int32, len(reqs))
	}
	for i := range reqs {
		s := shardOf(reqs[i].Key)
		if shardIdx != nil {
			shardIdx[i] = int32(s)
		}
		w := s % workers
		workLists[w] = append(workLists[w], int32(i))
	}

	res := ParallelReplayResult{
		Engine:  v2.Name(),
		Ops:     len(reqs),
		Shards:  shards,
		Workers: workers,
	}
	errs := make([]error, workers)
	rws := make([]*replayWorker, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		rw := &replayWorker{
			v2:   v2,
			cfg:  &cfg,
			reqs: reqs,
			exp:  newExpiryTracker(cfg.Options, cfg.Clock),
		}
		rws[w] = rw
		wg.Add(1)
		go func(w int, rw *replayWorker) {
			defer wg.Done()
			if cfg.BatchSize > 1 {
				errs[w] = rw.runBatched(workLists[w], shards, shardIdx, cfg.BatchSize)
				return
			}
			for _, i := range workLists[w] {
				if err := rw.runOne(&reqs[i]); err != nil {
					errs[w] = fmt.Errorf("cachelib: worker %d at op %d: %w", w, i, err)
					return
				}
			}
		}(w, rw)
	}
	wg.Wait()
	if cfg.AsyncSets {
		// Deferred flushes must land before throughput or stats are read.
		if err := v2.Drain(); err != nil {
			for w := range errs {
				if errs[w] == nil {
					errs[w] = err
					break
				}
			}
		}
	}
	res.Elapsed = time.Since(start)
	if res.Elapsed > 0 {
		res.OpsPerSec = float64(res.Ops) / res.Elapsed.Seconds()
	}
	var setHist metrics.Histogram
	for _, rw := range rws {
		setHist.Merge(&rw.setHist)
	}
	res.SetLatency = setHist.Snapshot()
	res.Final = v2.Stats()
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}
	return res, nil
}

// getPhase executes one or more GET runs — each the GETs of a different
// shard's batch, so their keys never collide — as one batched lookup plus
// one batched demand fill. Only the first occurrence of each key within its
// run is batched; repeat occurrences (constant on hot-key-heavy Zipf
// traces) are replayed serially after the fills, which reproduces the
// sequential Get-after-fill outcome exactly instead of double-missing.
// Per-shard effect order is preserved: uniques in run order, then fills in
// the same order, then repeats in run order.
func (rw *replayWorker) getPhase(runs ...[]int32) error {
	keys := rw.keyBuf[:0]  // first occurrence of each key, in order
	uniq := rw.uniqIdx[:0] // their request indices
	dups := rw.dupIdx[:0]  // repeat occurrences, in order
	for _, run := range runs {
		sigs := rw.sigBuf[:0] // key signatures, scoped to one run
		// Linear signature scans are fastest at production batch depths;
		// past that the quadratic cost would swamp the engine work, so
		// large runs switch to a set.
		var sigSet map[uint64]struct{}
		if len(run) > 128 {
			sigSet = make(map[uint64]struct{}, len(run))
		}
		for _, i := range run {
			rw.advance()
			req := &rw.reqs[i]
			sig := dupSig(req.Key)
			isDup := false
			if sigSet != nil {
				_, isDup = sigSet[sig]
				sigSet[sig] = struct{}{}
			} else {
				for _, s := range sigs {
					if s == sig {
						isDup = true
						break
					}
				}
			}
			if isDup {
				// A signature collision between distinct keys only
				// diverts an op to the (exact) serial path below.
				dups = append(dups, i)
				continue
			}
			if err := rw.exp.expireIfDue(rw.v2, req.Key); err != nil {
				return err
			}
			sigs = append(sigs, sig)
			keys = append(keys, req.Key)
			uniq = append(uniq, i)
		}
		rw.sigBuf = sigs[:0]
	}
	rw.keyBuf, rw.uniqIdx, rw.dupIdx = keys[:0], uniq[:0], dups[:0]
	_, hits := rw.v2.GetMany(keys)
	if !rw.cfg.Options.NoFill {
		fillKeys := rw.fillKey[:0]
		fillVals := rw.fillVal[:0]
		for j, i := range uniq {
			req := &rw.reqs[i]
			if !hits[j] && rw.admits(req.Key, len(req.Key)+len(req.Value)) {
				fillKeys = append(fillKeys, req.Key)
				fillVals = append(fillVals, req.Value)
			}
		}
		rw.fillKey, rw.fillVal = fillKeys[:0], fillVals[:0]
		if err := rw.writeMany(fillKeys, fillVals); err != nil {
			return err
		}
	}
	for _, i := range dups {
		if err := rw.dispatchOne(&rw.reqs[i]); err != nil {
			return err
		}
	}
	return nil
}

// dupSig is the cheap per-key signature used for within-run repeat
// detection: length plus first and last words, mixed. Equal keys always
// produce equal signatures (so every real repeat is caught — the
// correctness requirement); a collision between different keys merely
// diverts an op to the exact serial path, which is harmless.
func dupSig(k []byte) uint64 {
	var a, b uint64
	if n := len(k); n >= 8 {
		a = binary.LittleEndian.Uint64(k)
		b = binary.LittleEndian.Uint64(k[n-8:])
	} else {
		for _, c := range k {
			a = a<<8 | uint64(c)
		}
	}
	return a ^ b<<1 ^ uint64(len(k))<<56
}

// runBatched drives one worker's shards with per-shard batching: pending
// batches accumulate per shard, flushing when full and at end of trace.
// Batch composition depends only on each shard's request subsequence
// (consecutive BatchSize-chunks), never on the worker count.
//
// Full batches are not executed one by one: they park in a ready set (at
// most one per shard) and execute together, with the pure-GET batches of
// different shards merged into a single multi-shard GetMany/SetMany pair.
// The sharded engine fans a merged batch out across shards in parallel, so
// a worker that owns several shards gets cross-shard parallelism from one
// call — the production multi-get pattern, and the reason batched replay
// outruns unbatched replay even when workers are scarce. Merging changes
// only the cross-shard interleaving of engine calls (which carries no
// state), never a shard's own op order.
func (rw *replayWorker) runBatched(workList []int32, shards int, shardIdx []int32, batchSize int) error {
	pend := make([][]int32, shards)
	ready := make([][]int32, shards)
	nReady := 0
	flushReady := func() error {
		if nReady == 0 {
			return nil
		}
		merged := rw.mergeBuf[:0]
		for s := range ready {
			b := ready[s]
			if len(b) == 0 {
				continue
			}
			pure := true
			for _, i := range b {
				if rw.reqs[i].Op != trace.KindGet {
					pure = false
					break
				}
			}
			if pure {
				merged = append(merged, b)
				continue
			}
			// Mixed-kind batches keep their intra-batch run structure.
			if err := rw.runBatch(b); err != nil {
				return err
			}
		}
		rw.mergeBuf = merged[:0]
		if err := rw.getPhase(merged...); err != nil {
			return err
		}
		for s := range ready {
			ready[s] = ready[s][:0]
		}
		nReady = 0
		return nil
	}
	for _, i := range workList {
		s := shardIdx[i]
		pend[s] = append(pend[s], i)
		if len(pend[s]) >= batchSize {
			if len(ready[s]) > 0 {
				// This shard already has a parked batch: execute the
				// ready set before parking the next one.
				if err := flushReady(); err != nil {
					return err
				}
			}
			pend[s], ready[s] = ready[s][:0], pend[s]
			nReady++
		}
	}
	// Drain: the standing ready set first, then the partial remainders
	// (merged the same way, in shard order).
	if err := flushReady(); err != nil {
		return err
	}
	for s := range pend {
		if len(pend[s]) > 0 {
			ready[s] = pend[s]
			nReady++
		}
	}
	return flushReady()
}
