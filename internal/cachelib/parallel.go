package cachelib

import (
	"fmt"
	"sync"
	"time"

	"nemo/internal/trace"
)

// Sharder is implemented by engines that partition the key space into
// independent shards (core.Sharded). ParallelReplay uses it to keep every
// shard's request order deterministic regardless of worker count.
type Sharder interface {
	// NumShards returns the number of independent partitions.
	NumShards() int
	// ShardOf returns the partition owning key.
	ShardOf(key []byte) int
}

// ParallelReplayConfig controls a ParallelReplay run.
type ParallelReplayConfig struct {
	// Workers is the number of replay goroutines (default: the engine's
	// shard count, or 1 for unsharded engines). Workers beyond the shard
	// count are clamped — a shard is only ever driven by one goroutine.
	Workers int
	// InterArrival is the virtual time advanced per request when Clock is
	// set. The total advance is deterministic (Ops × InterArrival); the
	// interleaving across shards is not, so virtual-latency percentiles
	// from a parallel run are approximate while hit-ratio and
	// write-amplification stats stay exact.
	InterArrival time.Duration
	// Clock, when set, is advanced by InterArrival per request.
	Clock Clock
}

// ParallelReplayResult aggregates the metrics of one parallel replay.
type ParallelReplayResult struct {
	Engine  string
	Ops     int
	Shards  int
	Workers int
	// Elapsed is host wall-clock time; OpsPerSec = Ops / Elapsed. These are
	// the only host-time metrics in the repository — everything else runs
	// on virtual time — because the point of the parallel driver is to
	// measure real scheduling scalability of the sharded engine.
	Elapsed   time.Duration
	OpsPerSec float64
	Final     Stats
}

// ParallelReplay replays a materialized trace against the engine from many
// goroutines, demand-filling misses (GET, then SET on miss — the same
// look-aside pattern as Replay). Work is partitioned by the engine's shard
// function: worker w handles exactly the shards s with s mod Workers == w,
// and scans the trace in order, so each shard observes the identical request
// subsequence it would see in a single-threaded replay. Per-shard cache
// state — and therefore aggregate hit ratio and write amplification — is
// deterministic and independent of Workers and goroutine scheduling.
//
// Engines that do not implement Sharder are driven by a single worker (the
// trace order is then the sequential order, preserving exact equivalence
// with Replay's stats).
func ParallelReplay(e Engine, reqs []trace.Request, cfg ParallelReplayConfig) (ParallelReplayResult, error) {
	shards := 1
	shardOf := func([]byte) int { return 0 }
	if sh, ok := e.(Sharder); ok {
		shards = sh.NumShards()
		shardOf = sh.ShardOf
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = shards
	}
	if workers > shards {
		workers = shards
	}

	// Precompute each worker's request indices once (in trace order) so
	// replay loops touch only their own work instead of rescanning and
	// skipping the whole trace per worker.
	workLists := make([][]int32, workers)
	for i := range reqs {
		w := shardOf(reqs[i].Key) % workers
		workLists[w] = append(workLists[w], int32(i))
	}

	res := ParallelReplayResult{
		Engine:  e.Name(),
		Ops:     len(reqs),
		Shards:  shards,
		Workers: workers,
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, i := range workLists[w] {
				if cfg.Clock != nil && cfg.InterArrival > 0 {
					cfg.Clock.Advance(cfg.InterArrival)
				}
				req := &reqs[i]
				if _, hit := e.Get(req.Key); !hit {
					if err := e.Set(req.Key, req.Value); err != nil {
						errs[w] = fmt.Errorf("cachelib: worker %d at op %d: %w", w, i, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	if res.Elapsed > 0 {
		res.OpsPerSec = float64(res.Ops) / res.Elapsed.Seconds()
	}
	res.Final = e.Stats()
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}
	return res, nil
}
