package cachelib

import (
	"sync"

	"nemo/internal/hashing"
)

// This file is the shard-routing plan shared by every sharded facade in the
// repository: core.Sharded (Nemo's native implementation) and the generic
// ShardedEngine that puts the four baselines behind the same partitioning.
// Both route by the same dedicated hash lane of the key fingerprint, so a
// key lands on the same shard index in every engine of a comparison run —
// the per-shard request subsequences of a trace are identical across
// engines, which is what makes the cross-engine tables comparable.

// ShardLane is the hash lane used for shard routing. It is distinct from
// lane 0 (intra-engine set placement) and the Bloom probe streams, so which
// shard a key lands on is uncorrelated with where it lives inside the shard.
const ShardLane = 0x53484152 // "SHAR"

// ShardOfFP returns the shard owning an already-computed key fingerprint
// among n shards.
func ShardOfFP(fp uint64, n uint64) int {
	if n <= 1 {
		return 0
	}
	return int(hashing.Derive(fp, ShardLane) % n)
}

// ShardOfKey returns the shard owning key among n shards.
func ShardOfKey(key []byte, n uint64) int {
	return ShardOfFP(hashing.Fingerprint(key), n)
}

// fpScratch pools the per-batch fingerprint buffers so steady-state batched
// traffic allocates nothing for routing (batches are short when traces are
// hot-key heavy, so per-batch allocations would dominate the amortization).
var fpScratch = sync.Pool{New: func() any { return new([]uint64) }}

// BorrowFPs returns a pooled fingerprint buffer for PlanFPs; pair with
// ReturnFPs once the plan's slices are no longer referenced.
func BorrowFPs() *[]uint64 { return fpScratch.Get().(*[]uint64) }

// ReturnFPs gives a buffer obtained from BorrowFPs back to the pool.
func ReturnFPs(b *[]uint64) { fpScratch.Put(b) }

// PlanFPs hashes every key exactly once — shard implementations reuse these
// fingerprints — and reports whether the whole batch lands on one shard of n
// (the common case under the per-shard batched replayer), returning that
// shard's index. The returned slice aliases *scratch.
func PlanFPs(keys [][]byte, scratch *[]uint64, n uint64) (fps []uint64, first int, single bool) {
	fps = (*scratch)[:0]
	single = true
	for i, k := range keys {
		fp := hashing.Fingerprint(k)
		fps = append(fps, fp)
		sh := ShardOfFP(fp, n)
		if i == 0 {
			first = sh
		} else if sh != first {
			single = false
		}
	}
	*scratch = fps
	return fps, first, single
}

// SubBatch is one shard's slice of a grouped batch. All sub-batches of one
// grouping share a handful of backing arrays, so a multi-shard batch costs
// a constant number of allocations regardless of how many shards it touches.
type SubBatch struct {
	Shard int
	FPs   []uint64
	Keys  [][]byte
	Vals  [][]byte // nil unless values were passed to GroupByShard (SetMany)
	Pos   []int32  // original batch positions
}

// GroupByShard buckets a fingerprinted batch into per-shard sub-batches with
// a counting sort: one pass to count, one to scatter — O(keys + shards), not
// O(keys × shards) — and a constant number of allocations however many
// shards the batch touches. values may be nil (GetMany has none).
func GroupByShard(fps []uint64, keys, values [][]byte, nShards int) []SubBatch {
	n := uint64(nShards)
	shs := make([]int32, len(keys))
	starts := make([]int32, nShards+1) // starts[sh+1] counts, then prefix-sums
	for i, fp := range fps {
		sh := int32(ShardOfFP(fp, n))
		shs[i] = sh
		starts[sh+1]++
	}
	touched := 0
	for sh := 0; sh < nShards; sh++ {
		if starts[sh+1] > 0 {
			touched++
		}
		starts[sh+1] += starts[sh]
	}
	bFPs := make([]uint64, len(keys))
	bKeys := make([][]byte, len(keys))
	bPos := make([]int32, len(keys))
	var bVals [][]byte
	if values != nil {
		bVals = make([][]byte, len(keys))
	}
	write := make([]int32, nShards)
	copy(write, starts[:nShards])
	for i := range keys {
		sh := shs[i]
		o := write[sh]
		write[sh] = o + 1
		bFPs[o], bKeys[o], bPos[o] = fps[i], keys[i], int32(i)
		if bVals != nil {
			bVals[o] = values[i]
		}
	}
	subs := make([]SubBatch, 0, touched)
	for sh := 0; sh < nShards; sh++ {
		lo, hi := starts[sh], starts[sh+1]
		if lo == hi {
			continue
		}
		sub := SubBatch{Shard: sh, FPs: bFPs[lo:hi], Keys: bKeys[lo:hi], Pos: bPos[lo:hi]}
		if bVals != nil {
			sub.Vals = bVals[lo:hi]
		}
		subs = append(subs, sub)
	}
	return subs
}
