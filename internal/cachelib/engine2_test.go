package cachelib

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"nemo/internal/admission"
	"nemo/internal/metrics"
	"nemo/internal/trace"
	"nemo/internal/vtime"
)

// TestAdaptPassThrough pins that engines already implementing EngineV2 are
// returned unwrapped.
func TestAdaptPassThrough(t *testing.T) {
	e := Adapt(newFake())
	if again := Adapt(e); again != e {
		t.Fatal("Adapt re-wrapped an already-upgraded engine")
	}
}

// TestAdaptDeleteEmulation covers the tombstone shim: a deleted key misses
// (and still counts as a lookup), a re-Set resurrects it, and the counters
// fold the emulated operations in.
func TestAdaptDeleteEmulation(t *testing.T) {
	f := newFake()
	v2 := Adapt(f)
	if err := v2.Set([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, hit := v2.Get([]byte("k")); !hit {
		t.Fatal("fresh key missing")
	}
	if err := v2.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, hit := v2.Get([]byte("k")); hit {
		t.Fatal("deleted key still hits")
	}
	st := v2.Stats()
	if st.Deletes != 1 {
		t.Fatalf("Deletes = %d, want 1", st.Deletes)
	}
	if st.Gets != 2 {
		t.Fatalf("Gets = %d, want 2 (tombstone lookups must count)", st.Gets)
	}
	if st.Hits != 1 {
		t.Fatalf("Hits = %d, want 1", st.Hits)
	}
	// A fresh Set clears the tombstone.
	if err := v2.Set([]byte("k"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if v, hit := v2.Get([]byte("k")); !hit || string(v) != "v2" {
		t.Fatalf("resurrected key: hit=%v v=%q", hit, v)
	}
}

// TestAdaptBatchAndAsyncEmulation checks the per-key loop fallbacks and the
// synchronous SetAsync degradation.
func TestAdaptBatchAndAsyncEmulation(t *testing.T) {
	v2 := Adapt(newFake())
	keys := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	vals := [][]byte{[]byte("1"), []byte("2"), []byte("3")}
	if err := v2.SetMany(keys[:2], vals[:2]); err != nil {
		t.Fatal(err)
	}
	if err := v2.SetAsync(keys[2], vals[2]); err != nil {
		t.Fatal(err)
	}
	if err := v2.Drain(); err != nil {
		t.Fatal(err)
	}
	values, hits := v2.GetMany(append(keys, []byte("missing")))
	for i := range keys {
		if !hits[i] || !bytes.Equal(values[i], vals[i]) {
			t.Fatalf("key %q: hit=%v value=%q", keys[i], hits[i], values[i])
		}
	}
	if hits[3] {
		t.Fatal("missing key reported as hit")
	}
	// The shim forwards Sharder trivially for unsharded engines.
	sh := v2.(Sharder)
	if sh.NumShards() != 1 || sh.ShardOf([]byte("x")) != 0 {
		t.Fatal("unsharded Sharder fallback broken")
	}
}

// TestReplayOptionsNoFillAndHints covers the per-request knobs threaded
// through the serial replayer.
func TestReplayOptionsNoFillAndHints(t *testing.T) {
	e := newFake()
	res, err := Replay(e, testStream(), ReplayConfig{Ops: 1000, Options: Options{NoFill: true}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Sets != 0 {
		t.Fatalf("NoFill replay issued %d fills", res.Final.Sets)
	}
	// HintBypass suppresses every fill even without NoFill.
	e2 := newFake()
	res2, err := Replay(e2, testStream(), ReplayConfig{Ops: 1000, Options: Options{Admission: HintBypass}})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Final.Sets != 0 {
		t.Fatalf("HintBypass replay issued %d fills", res2.Final.Sets)
	}
	// HintForce overrides a policy that rejects everything.
	e3 := newFake()
	res3, err := Replay(e3, testStream(), ReplayConfig{
		Ops:       1000,
		Admission: admission.NewRandom(0, 1), // rejects all
		Options:   Options{Admission: HintForce},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res3.Final.Sets == 0 {
		t.Fatal("HintForce replay filled nothing despite forced admission")
	}
}

// TestReplayTTLExpires pins harness-side TTL: with a short TTL every reuse
// beyond the deadline is a miss (the replayer deletes the object first), so
// an unbounded cache sees repeated compulsory misses for the same key.
func TestReplayTTLExpires(t *testing.T) {
	clk := &vtime.Clock{}
	run := func(ttl time.Duration) Stats {
		e := newFake()
		res, err := Replay(e, testStream(), ReplayConfig{
			Ops:          5_000,
			Clock:        clk,
			InterArrival: time.Millisecond,
			Options:      Options{TTL: ttl},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Final
	}
	forever := run(time.Hour)
	short := run(5 * time.Millisecond)
	if short.Hits >= forever.Hits {
		t.Fatalf("short TTL did not reduce hits: %d vs %d", short.Hits, forever.Hits)
	}
	if short.Deletes == 0 {
		t.Fatal("short TTL issued no expirations")
	}
	if forever.Deletes != 0 {
		t.Fatalf("long TTL expired %d objects within the run", forever.Deletes)
	}
}

// TestReplayMixedOps drives a SET/DELETE-bearing trace through the serial
// replayer against the adapted fake engine.
func TestReplayMixedOps(t *testing.T) {
	mixed, err := trace.NewMixed(testStream(), 0.2, 0.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	e := newFake()
	res, err := Replay(e, mixed, ReplayConfig{Ops: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Final
	if st.Deletes == 0 {
		t.Fatal("mixed replay issued no deletes")
	}
	if st.Gets == 0 || st.Sets == 0 {
		t.Fatalf("mixed replay op mix degenerate: %+v", st)
	}
	// GETs are ~70% of ops; explicit SETs and fills make up the Sets.
	if st.Gets+st.Deletes > 10_000 {
		t.Fatalf("op accounting exceeds trace length: %+v", st)
	}
}

// recordingPolicy wraps an admission policy, recording the exact key order
// it observes.
type recordingPolicy struct {
	mu    sync.Mutex
	inner admission.Policy
	seen  []string
}

func (r *recordingPolicy) Admit(key []byte, size int) bool {
	r.mu.Lock()
	r.seen = append(r.seen, string(key))
	r.mu.Unlock()
	return r.inner.Admit(key, size)
}

func (r *recordingPolicy) Name() string { return "recording" }

// batchedAdmissionRun replays reqs single-worker at the given batch size
// with a recording RejectFirst doorkeeper and returns the observed key
// order plus the final stats.
func batchedAdmissionRun(t *testing.T, reqs []trace.Request, batch int) ([]string, Stats) {
	t.Helper()
	pol := &recordingPolicy{inner: admission.NewRejectFirst(256)}
	res, err := ParallelReplay(newFake(), reqs, ParallelReplayConfig{
		Workers:   1,
		BatchSize: batch,
		Admission: pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pol.seen, res.Final
}

// TestBatchedSetManyAdmissionOrder is the batched-admission pin for
// explicit writes: a SET-only trace driven through SetMany batches must
// show the RejectFirst doorkeeper the identical key sequence — and produce
// identical stats — at every batch size, because batches preserve each
// shard's trace order and admission is consulted per op in that order.
func TestBatchedSetManyAdmissionOrder(t *testing.T) {
	mixed, err := trace.NewMixed(testStream(), 1, 0, 3) // every op a SET
	if err != nil {
		t.Fatal(err)
	}
	reqs := trace.Materialize(mixed, 6_000)
	refSeen, refStats := batchedAdmissionRun(t, reqs, 0)
	if len(refSeen) != len(reqs) {
		t.Fatalf("policy saw %d keys, want one per SET (%d)", len(refSeen), len(reqs))
	}
	for _, batch := range []int{1, 4, 64, 512} {
		seen, stats := batchedAdmissionRun(t, reqs, batch)
		if len(seen) != len(refSeen) {
			t.Fatalf("batch=%d: policy saw %d keys, want %d", batch, len(seen), len(refSeen))
		}
		for i := range refSeen {
			if seen[i] != refSeen[i] {
				t.Fatalf("batch=%d: policy key order diverged at %d", batch, i)
			}
		}
		if stats != refStats {
			t.Fatalf("batch=%d: stats diverged:\ngot: %+v\nref: %+v", batch, stats, refStats)
		}
	}
}

// TestBatchedFillAdmissionOrder is the same pin for demand fills: on a
// unique-key trace (no within-batch repeats, like an insert-heavy warmup)
// every GET misses and its fill consults the doorkeeper in exact trace
// order at every batch size. With repeated keys the order is still
// deterministic for a given batch size (TestBatchedAdmissionDeterministic)
// but rejected fills re-consult on the repeat, whose position relative to
// the batch's other fills necessarily shifts with the batch boundary.
func TestBatchedFillAdmissionOrder(t *testing.T) {
	reqs := trace.Materialize(trace.NewSyntheticInserts(16, 50, 10, 5), 4_000)
	refSeen, refStats := batchedAdmissionRun(t, reqs, 0)
	if len(refSeen) != len(reqs) {
		t.Fatalf("policy saw %d keys, want one per compulsory miss (%d)", len(refSeen), len(reqs))
	}
	for _, batch := range []int{1, 4, 64, 512} {
		seen, stats := batchedAdmissionRun(t, reqs, batch)
		if len(seen) != len(refSeen) {
			t.Fatalf("batch=%d: policy saw %d keys, want %d", batch, len(seen), len(refSeen))
		}
		for i := range refSeen {
			if seen[i] != refSeen[i] {
				t.Fatalf("batch=%d: policy key order diverged at %d", batch, i)
			}
		}
		if stats != refStats {
			t.Fatalf("batch=%d: stats diverged:\ngot: %+v\nref: %+v", batch, stats, refStats)
		}
	}
}

// TestBatchedAdmissionDeterministic pins run-to-run determinism on a
// repeat-heavy Zipf trace: for each batch size, two identical runs must
// show the policy the identical key sequence and produce identical stats.
func TestBatchedAdmissionDeterministic(t *testing.T) {
	reqs := trace.Materialize(testStream(), 6_000)
	for _, batch := range []int{0, 16, 256} {
		seenA, statsA := batchedAdmissionRun(t, reqs, batch)
		seenB, statsB := batchedAdmissionRun(t, reqs, batch)
		if len(seenA) == 0 {
			t.Fatalf("batch=%d: policy observed no keys", batch)
		}
		if len(seenA) != len(seenB) {
			t.Fatalf("batch=%d: runs saw %d vs %d keys", batch, len(seenA), len(seenB))
		}
		for i := range seenA {
			if seenA[i] != seenB[i] {
				t.Fatalf("batch=%d: identical runs diverged at %d", batch, i)
			}
		}
		if statsA != statsB {
			t.Fatalf("batch=%d: identical runs diverged:\n%+v\n%+v", batch, statsA, statsB)
		}
	}
}

// TestParallelReplayMixedDeterministicAcrossWorkers extends the determinism
// guarantee to batched mixed GET/SET/DELETE replay: per-shard sequencing
// and per-shard batch composition make the statistics independent of the
// worker count.
func TestParallelReplayMixedDeterministicAcrossWorkers(t *testing.T) {
	base, err := trace.NewMixed(testStream(), 0.15, 0.05, 11)
	if err != nil {
		t.Fatal(err)
	}
	reqs := trace.Materialize(base, 6_000)
	// shardedFake partitions the fake engine 4 ways so several workers
	// have distinct work.
	mk := func() *shardedFake { return newShardedFake(4) }
	var ref Stats
	for i, workers := range []int{1, 2, 4} {
		e := mk()
		res, err := ParallelReplay(e, reqs, ParallelReplayConfig{Workers: workers, BatchSize: 16})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = res.Final
			if ref.Deletes == 0 {
				t.Fatal("mixed replay issued no deletes")
			}
			continue
		}
		if res.Final != ref {
			t.Fatalf("workers=%d: mixed batched stats diverged:\ngot: %+v\nref: %+v", workers, res.Final, ref)
		}
	}
}

// shardedFake is a hash-partitioned fakeEngine implementing Sharder and
// Deleter, for exercising the parallel replayer without the full core.
type shardedFake struct {
	shards []*lockedFake
}

type lockedFake struct {
	mu sync.Mutex
	fakeEngine
}

func newShardedFake(n int) *shardedFake {
	s := &shardedFake{shards: make([]*lockedFake, n)}
	for i := range s.shards {
		s.shards[i] = &lockedFake{fakeEngine: *newFake()}
	}
	return s
}

func (s *shardedFake) NumShards() int { return len(s.shards) }
func (s *shardedFake) ShardOf(key []byte) int {
	h := uint64(1469598103934665603)
	for _, c := range key {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return int(h % uint64(len(s.shards)))
}

func (s *shardedFake) Name() string { return "shardedFake" }
func (s *shardedFake) Get(key []byte) ([]byte, bool) {
	f := s.shards[s.ShardOf(key)]
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fakeEngine.Get(key)
}
func (s *shardedFake) Set(key, value []byte) error {
	f := s.shards[s.ShardOf(key)]
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fakeEngine.Set(key, value)
}
func (s *shardedFake) Delete(key []byte) error {
	f := s.shards[s.ShardOf(key)]
	f.mu.Lock()
	defer f.mu.Unlock()
	f.st.Deletes++
	delete(f.m, string(key))
	return nil
}
func (s *shardedFake) Stats() Stats {
	var sum Stats
	for _, f := range s.shards {
		f.mu.Lock()
		sum = sum.Add(f.st)
		f.mu.Unlock()
	}
	return sum
}
func (s *shardedFake) ReadLatency() *metrics.Histogram { return &s.shards[0].hist }
func (s *shardedFake) Close() error                    { return nil }

var (
	_ Engine  = (*shardedFake)(nil)
	_ Sharder = (*shardedFake)(nil)
	_ Deleter = (*shardedFake)(nil)
)
