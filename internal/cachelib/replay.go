package cachelib

import (
	"fmt"
	"time"

	"nemo/internal/admission"
	"nemo/internal/metrics"
	"nemo/internal/trace"
)

// ReplayConfig controls a replay run.
type ReplayConfig struct {
	// Ops is the number of GET requests to issue.
	Ops int
	// InterArrival is the virtual time advanced between requests
	// (default 10 µs ≈ 100 K req/s, enough to expose write interference).
	InterArrival time.Duration
	// MissFill, when true (the default via Replay), issues Set(key, value)
	// after every GET miss — the demand-fill pattern of a look-aside cache.
	MissFill bool
	// WindowOps is the miss-ratio window size in requests (default Ops/64).
	WindowOps uint64
	// SampleEveryOps is the timeline sampling period (default Ops/64).
	SampleEveryOps int
	// Clock, when set, is advanced by InterArrival per request.
	Clock Clock
	// Admission gates demand fills; nil admits everything.
	Admission admission.Policy
	// Options applies the Engine v2 per-request knobs (TTL, admission
	// hint, no-fill) to every request of the run. The zero value is the
	// classic v1 behavior.
	Options Options
}

func (c ReplayConfig) withDefaults() ReplayConfig {
	if c.InterArrival == 0 {
		c.InterArrival = 10 * time.Microsecond
	}
	if c.WindowOps == 0 {
		if c.Ops >= 64 {
			c.WindowOps = uint64(c.Ops / 64)
		} else {
			c.WindowOps = 1
		}
	}
	if c.SampleEveryOps == 0 {
		c.SampleEveryOps = c.Ops / 64
		if c.SampleEveryOps == 0 {
			c.SampleEveryOps = 1
		}
	}
	return c
}

// TimelinePoint is one periodic sample of engine state during replay.
type TimelinePoint struct {
	Ops               uint64
	VTime             time.Duration
	ALWA              float64
	TotalWA           float64
	MissRatio         float64 // cumulative
	FlashBytesWritten uint64
}

// ReplayResult aggregates everything an experiment needs from one run.
type ReplayResult struct {
	Engine   string
	Final    Stats
	Miss     *metrics.Series // windowed miss ratio vs ops
	Timeline []TimelinePoint
	Latency  metrics.Snapshot
}

// Replay issues cfg.Ops GET requests from the stream against the engine,
// demand-filling on miss, and collects the standard metrics.
func Replay(e Engine, s trace.Stream, cfg ReplayConfig) (ReplayResult, error) {
	cfg = cfg.withDefaults()
	cfg.MissFill = true
	return replay(e, s, cfg)
}

// ReplayRaw is Replay without forcing demand-fill (used by insert-only
// experiments, where every request is a Set).
func ReplayRaw(e Engine, s trace.Stream, cfg ReplayConfig) (ReplayResult, error) {
	cfg = cfg.withDefaults()
	return replay(e, s, cfg)
}

// admitWrite applies the per-request admission hint over the replay-level
// policy: Force bypasses the policy, Bypass rejects outright, Default defers.
func admitWrite(opts Options, pol admission.Policy, key []byte, size int) bool {
	switch opts.Admission {
	case HintForce:
		return true
	case HintBypass:
		return false
	}
	return pol == nil || pol.Admit(key, size)
}

// expiryTracker enforces Options.TTL from the harness side: the replay owns
// the virtual clock, so engines need no per-object timestamps. A GET past
// the deadline deletes the object first and therefore misses.
type expiryTracker struct {
	ttl      time.Duration
	clock    Clock
	deadline map[string]time.Duration
}

func newExpiryTracker(opts Options, clock Clock) *expiryTracker {
	if opts.TTL <= 0 || clock == nil {
		return nil
	}
	return &expiryTracker{ttl: opts.TTL, clock: clock, deadline: make(map[string]time.Duration)}
}

// expireIfDue deletes key from the engine when its TTL has lapsed.
func (x *expiryTracker) expireIfDue(d Deleter, key []byte) error {
	if x == nil {
		return nil
	}
	dl, ok := x.deadline[string(key)]
	if !ok || x.clock.Now() <= dl {
		return nil
	}
	delete(x.deadline, string(key))
	return d.Delete(key)
}

// wrote records a fresh write's deadline.
func (x *expiryTracker) wrote(key []byte) {
	if x != nil {
		x.deadline[string(key)] = x.clock.Now() + x.ttl
	}
}

// deleted forgets a key's deadline.
func (x *expiryTracker) deleted(key []byte) {
	if x != nil {
		delete(x.deadline, string(key))
	}
}

func replay(e Engine, s trace.Stream, cfg ReplayConfig) (ReplayResult, error) {
	v2 := Adapt(e)
	res := ReplayResult{Engine: v2.Name()}
	if cfg.Options.TTL > 0 && cfg.Clock == nil {
		return res, fmt.Errorf("cachelib: Options.TTL requires a Clock (expiry runs on the replay's virtual clock)")
	}
	missWin := metrics.NewRatioWindow(cfg.WindowOps)
	exp := newExpiryTracker(cfg.Options, cfg.Clock)
	var req trace.Request
	for i := 0; i < cfg.Ops; i++ {
		if cfg.Clock != nil {
			cfg.Clock.Advance(cfg.InterArrival)
		}
		s.Next(&req)
		switch {
		case req.Op == trace.KindDelete:
			exp.deleted(req.Key)
			if err := v2.Delete(req.Key); err != nil {
				return res, err
			}
		case req.Op == trace.KindSet:
			if !admitWrite(cfg.Options, cfg.Admission, req.Key, len(req.Key)+len(req.Value)) {
				continue
			}
			if err := v2.Set(req.Key, req.Value); err != nil {
				return res, err
			}
			exp.wrote(req.Key)
		case cfg.MissFill:
			if err := exp.expireIfDue(v2, req.Key); err != nil {
				return res, err
			}
			_, hit := v2.Get(req.Key)
			missWin.Observe(!hit)
			if !hit {
				if cfg.Options.NoFill {
					continue
				}
				if !admitWrite(cfg.Options, cfg.Admission, req.Key, len(req.Key)+len(req.Value)) {
					continue
				}
				if err := v2.Set(req.Key, req.Value); err != nil {
					return res, err
				}
				exp.wrote(req.Key)
			}
		default:
			if err := v2.Set(req.Key, req.Value); err != nil {
				return res, err
			}
		}
		if (i+1)%cfg.SampleEveryOps == 0 {
			st := v2.Stats()
			var vt time.Duration
			if cfg.Clock != nil {
				vt = cfg.Clock.Now()
			}
			res.Timeline = append(res.Timeline, TimelinePoint{
				Ops:               uint64(i + 1),
				VTime:             vt,
				ALWA:              st.ALWA(),
				TotalWA:           st.TotalWA(),
				MissRatio:         st.MissRatio(),
				FlashBytesWritten: st.FlashBytesWritten,
			})
		}
	}
	res.Final = v2.Stats()
	res.Miss = missWin.Series()
	res.Latency = v2.ReadLatency().Snapshot()
	return res, nil
}
