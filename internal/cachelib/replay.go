package cachelib

import (
	"time"

	"nemo/internal/admission"
	"nemo/internal/metrics"
	"nemo/internal/trace"
)

// ReplayConfig controls a replay run.
type ReplayConfig struct {
	// Ops is the number of GET requests to issue.
	Ops int
	// InterArrival is the virtual time advanced between requests
	// (default 10 µs ≈ 100 K req/s, enough to expose write interference).
	InterArrival time.Duration
	// MissFill, when true (the default via Replay), issues Set(key, value)
	// after every GET miss — the demand-fill pattern of a look-aside cache.
	MissFill bool
	// WindowOps is the miss-ratio window size in requests (default Ops/64).
	WindowOps uint64
	// SampleEveryOps is the timeline sampling period (default Ops/64).
	SampleEveryOps int
	// Clock, when set, is advanced by InterArrival per request.
	Clock Clock
	// Admission gates demand fills; nil admits everything.
	Admission admission.Policy
}

func (c ReplayConfig) withDefaults() ReplayConfig {
	if c.InterArrival == 0 {
		c.InterArrival = 10 * time.Microsecond
	}
	if c.WindowOps == 0 {
		if c.Ops >= 64 {
			c.WindowOps = uint64(c.Ops / 64)
		} else {
			c.WindowOps = 1
		}
	}
	if c.SampleEveryOps == 0 {
		c.SampleEveryOps = c.Ops / 64
		if c.SampleEveryOps == 0 {
			c.SampleEveryOps = 1
		}
	}
	return c
}

// TimelinePoint is one periodic sample of engine state during replay.
type TimelinePoint struct {
	Ops               uint64
	VTime             time.Duration
	ALWA              float64
	TotalWA           float64
	MissRatio         float64 // cumulative
	FlashBytesWritten uint64
}

// ReplayResult aggregates everything an experiment needs from one run.
type ReplayResult struct {
	Engine   string
	Final    Stats
	Miss     *metrics.Series // windowed miss ratio vs ops
	Timeline []TimelinePoint
	Latency  metrics.Snapshot
}

// Replay issues cfg.Ops GET requests from the stream against the engine,
// demand-filling on miss, and collects the standard metrics.
func Replay(e Engine, s trace.Stream, cfg ReplayConfig) (ReplayResult, error) {
	cfg = cfg.withDefaults()
	cfg.MissFill = true
	return replay(e, s, cfg)
}

// ReplayRaw is Replay without forcing demand-fill (used by insert-only
// experiments, where every request is a Set).
func ReplayRaw(e Engine, s trace.Stream, cfg ReplayConfig) (ReplayResult, error) {
	cfg = cfg.withDefaults()
	return replay(e, s, cfg)
}

func replay(e Engine, s trace.Stream, cfg ReplayConfig) (ReplayResult, error) {
	res := ReplayResult{Engine: e.Name()}
	missWin := metrics.NewRatioWindow(cfg.WindowOps)
	var req trace.Request
	for i := 0; i < cfg.Ops; i++ {
		if cfg.Clock != nil {
			cfg.Clock.Advance(cfg.InterArrival)
		}
		s.Next(&req)
		if cfg.MissFill {
			_, hit := e.Get(req.Key)
			missWin.Observe(!hit)
			if !hit {
				if cfg.Admission != nil && !cfg.Admission.Admit(req.Key, len(req.Key)+len(req.Value)) {
					continue
				}
				if err := e.Set(req.Key, req.Value); err != nil {
					return res, err
				}
			}
		} else {
			if err := e.Set(req.Key, req.Value); err != nil {
				return res, err
			}
		}
		if (i+1)%cfg.SampleEveryOps == 0 {
			st := e.Stats()
			var vt time.Duration
			if cfg.Clock != nil {
				vt = cfg.Clock.Now()
			}
			res.Timeline = append(res.Timeline, TimelinePoint{
				Ops:               uint64(i + 1),
				VTime:             vt,
				ALWA:              st.ALWA(),
				TotalWA:           st.TotalWA(),
				MissRatio:         st.MissRatio(),
				FlashBytesWritten: st.FlashBytesWritten,
			})
		}
	}
	res.Final = e.Stats()
	res.Miss = missWin.Series()
	res.Latency = e.ReadLatency().Snapshot()
	return res, nil
}
