// Package gcbench is the GC-pressure benchmark harness behind
// `nemobench -gcbench` (the BENCH_gc.json CI baseline). It populates a
// sharded cache to a target resident-key count, measures the live heap the
// cache costs (objects and bytes, settled by a double GC), then drives the
// GET path under forced GC churn to price the collector's scan work against
// throughput. Unlike getbench, the harness retains nothing per key — keys
// and values are regenerated into reusable buffers — so the measured heap
// delta is attributable to the cache alone (the flashsim backend adds one
// slab per zone, a few hundred objects at most).
package gcbench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"nemo/internal/backend"
	"nemo/internal/core"
	"nemo/internal/device"
)

// pagesPerZone is the benchmark geometry's zone size — the getbench shape,
// small enough that a 1M-key pool spans hundreds of SGs (several sealed
// index groups, a busy index cache).
const pagesPerZone = 64

// plannedObjsPerSet sizes the pool: Table 3's TargetObjsPerSet, the density
// DefaultConfig tunes the Bloom filters for. Populating one key per planned
// slot fills sets to roughly their design point without mass eviction.
const plannedObjsPerSet = 40

// Options configures one gcbench measurement.
type Options struct {
	Device     backend.Spec
	Shards     int
	Keys       int // resident keys to populate (0 = 1M)
	GetOps     int // GETs issued under churn (0 = 200k)
	Goroutines int // GET workers (0 = 4)
}

// Result is one measured configuration. The cache's footprint is isolated
// from the device's by closing the cache (device left open) after the GET
// phase and re-measuring: HeapObjects/HeapBytes are what Close released —
// the engine's own structures, excluding the simulated flash (flashsim
// keeps one slab per written zone, hundreds of objects at this geometry).
type Result struct {
	Shards         int
	Keys           int
	HeapObjects    uint64  // live heap objects the cache costs (post-GC, device excluded)
	HeapBytes      uint64  // live heap bytes the cache costs (post-GC, device excluded)
	BytesPerKey    float64 // HeapBytes / Keys — the DRAM index tax
	GetOpsPerSec   float64 // GET throughput with a GC forced in a loop
	HitRatio       float64
	GCPauseTotalNs uint64 // total stop-the-world pause during the GET phase
	GCCycles       uint32 // collections forced during the GET phase
}

// AppendKey appends the deterministic benchmark key for index i to dst —
// fixed width, no fmt, so regenerating keys charges nothing to the heap.
func AppendKey(dst []byte, i int) []byte {
	dst = append(dst, "gc-key-"...)
	dst = appendPad8(dst, i)
	return append(dst, "-padpadpad"...)
}

// AppendValue appends the deterministic benchmark value for index i to dst.
func AppendValue(dst []byte, i int) []byte {
	dst = append(dst, "gc-value-"...)
	dst = appendPad8(dst, i)
	return append(dst, "-payload-payload-payload"...)
}

// appendPad8 appends i as 8 zero-padded decimal digits (i < 10^8).
func appendPad8(dst []byte, i int) []byte {
	var d [8]byte
	for p := 7; p >= 0; p-- {
		d[p] = byte('0' + i%10)
		i /= 10
	}
	return append(dst, d[:]...)
}

// zonesFor sizes the data pool so keys fill sets to plannedObjsPerSet,
// rounded up to a shard-divisible count with at least two SGs per shard.
func zonesFor(keys, shards int) int {
	objsPerZone := pagesPerZone * plannedObjsPerSet
	z := (keys + objsPerZone - 1) / objsPerZone
	if z < 2*shards {
		z = 2 * shards
	}
	if r := z % shards; r != 0 {
		z += shards - r
	}
	return z
}

// Run executes one full measurement: baseline heap snapshot, build and
// populate, settled heap delta, then the GET phase racing a goroutine that
// forces back-to-back collections.
func Run(o Options) (Result, error) {
	if o.Shards < 1 {
		o.Shards = 1
	}
	if o.Keys <= 0 {
		o.Keys = 1_000_000
	}
	if o.GetOps <= 0 {
		o.GetOps = 200_000
	}
	if o.Goroutines <= 0 {
		o.Goroutines = 4
	}

	var ms1, ms2, msWarm, ms3 runtime.MemStats

	dataZones := zonesFor(o.Keys, o.Shards)
	perData := dataZones / o.Shards
	perIdx := core.IndexZonesFor(perData, core.DefaultSGsPerIndexGroup)
	dev, err := o.Device.Open(device.Geometry{PagesPerZone: pagesPerZone, Zones: o.Shards * (perData + perIdx)})
	if err != nil {
		return Result{}, err
	}
	cfg := core.DefaultConfig(dev, dataZones)
	cfg.Shards = o.Shards
	cache, err := core.NewSharded(cfg)
	if err != nil {
		dev.Close()
		return Result{}, err
	}
	defer dev.Close()
	// The deferred cleanup must not keep the cache reachable after the
	// measured Close below — it pins the variable, so Close nils it out.
	defer func() {
		if cache != nil {
			cache.Close()
		}
	}()

	kbuf := make([]byte, 0, 64)
	vbuf := make([]byte, 0, 64)
	for i := 0; i < o.Keys; i++ {
		kbuf = AppendKey(kbuf[:0], i)
		vbuf = AppendValue(vbuf[:0], i)
		if err := cache.Set(kbuf, vbuf); err != nil {
			return Result{}, fmt.Errorf("populate key %d: %w", i, err)
		}
	}

	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&ms1)

	res := Result{Shards: o.Shards, Keys: o.Keys}

	// GET phase: a churn goroutine forces back-to-back collections so the
	// throughput and pause columns price exactly what the live heap makes
	// the collector scan.
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
				runtime.GC()
			}
		}
	}()

	before := cache.Stats()
	per := o.GetOps / o.Goroutines
	if per < 1 {
		per = 1
	}
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < o.Goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 0, 64)
			idx := g * 7919
			for i := 0; i < per; i++ {
				idx += 6007
				buf = AppendKey(buf[:0], idx%o.Keys)
				cache.Get(buf)
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stop)
	churn.Wait()
	runtime.ReadMemStats(&ms2)
	after := cache.Stats()

	done := after.Gets - before.Gets
	res.GetOpsPerSec = float64(done) / elapsed.Seconds()
	if done > 0 {
		res.HitRatio = float64(after.Hits-before.Hits) / float64(done)
	}
	res.GCPauseTotalNs = sub64(ms2.PauseTotalNs, ms1.PauseTotalNs)
	res.GCCycles = ms2.NumGC - ms1.NumGC

	// Settle the warm heap (GETs grow lazily allocated state: fetched index
	// pages, hotness bitmaps), then close the cache — the device stays open
	// — and re-settle: what the close released is the cache's own footprint,
	// with the device's zone slabs subtracted out.
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&msWarm)
	if err := cache.Close(); err != nil {
		return Result{}, err
	}
	cache = nil
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&ms3)
	res.HeapObjects = sub64(msWarm.HeapObjects, ms3.HeapObjects)
	res.HeapBytes = sub64(msWarm.HeapAlloc, ms3.HeapAlloc)
	res.BytesPerKey = float64(res.HeapBytes) / float64(o.Keys)
	return res, nil
}

func sub64(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}
