// Package hlog implements the hierarchical cache front tier ("HLog" in the
// paper, §2.3): a FIFO log over flash zones with an in-memory hash table of
// per-set linked lists, so that all buffered objects mapping to one back-tier
// set can be migrated together.
//
// Both hierarchical baselines (Kangaroo, FairyWREN) share this component;
// their difference is entirely in how the back tier consumes it (Case 3.1
// independent GC vs Case 3.2 GC folded into migration).
package hlog

import (
	"encoding/binary"
	"fmt"
	"time"

	"nemo/internal/device"
	"nemo/internal/setblock"
)

// Object is a decoded log object handed to migration.
type Object struct {
	FP    uint64
	Key   []byte
	Value []byte
}

// entry locates one live object. page == -1 means the object is still in
// the open page buffer at offset off.
type entry struct {
	fp   uint64
	page int32
	off  int32
}

type zoneObj struct {
	fp  uint64
	set int32
}

// Stats counts log activity.
type Stats struct {
	PagesWritten uint64
	PagesRead    uint64
	ZoneResets   uint64
	LiveObjects  int
}

// Log is the front-tier log. Not safe for concurrent use; the owning engine
// serializes access.
type Log struct {
	dev      device.Device
	zoneBase int
	zones    int
	pageSize int

	index   map[int32][]entry // set -> live objects, oldest first
	perZone [][]zoneObj
	ring    []int // local zones in fill order, oldest first
	free    []int
	open    int // local zone receiving pages, -1 when none

	buf     []byte
	bufObjs []entry // offsets into buf, parallel bookkeeping for flush
	bufSet  []int32

	scratch []byte
	stats   Stats
}

// New creates a log over device zones [zoneBase, zoneBase+zones).
func New(dev device.Device, zoneBase, zones int) (*Log, error) {
	if zones < 2 || zoneBase < 0 || zoneBase+zones > dev.Zones() {
		return nil, fmt.Errorf("hlog: invalid zone range base=%d zones=%d", zoneBase, zones)
	}
	l := &Log{
		dev:      dev,
		zoneBase: zoneBase,
		zones:    zones,
		pageSize: dev.PageSize(),
		index:    make(map[int32][]entry),
		perZone:  make([][]zoneObj, zones),
		open:     -1,
		buf:      make([]byte, 0, dev.PageSize()),
		scratch:  make([]byte, dev.PageSize()),
	}
	for z := zones - 1; z >= 0; z-- {
		l.free = append(l.free, z)
	}
	return l, nil
}

// Stats returns a snapshot of the counters.
func (l *Log) Stats() Stats {
	s := l.stats
	n := 0
	for _, es := range l.index {
		n += len(es)
	}
	s.LiveObjects = n
	return s
}

// Zones returns the number of zones the log owns.
func (l *Log) Zones() int { return l.zones }

// PageCapacity returns the log capacity in pages.
func (l *Log) PageCapacity() int { return l.zones * l.dev.PagesPerZone() }

// ErrFull is returned by Append when the log has no room; the caller must
// migrate the oldest zone (MigrateOldest…) and retry.
var ErrFull = fmt.Errorf("hlog: log full")

// Append buffers the object for set. Objects larger than a page are
// rejected outright.
func (l *Log) Append(set int32, fp uint64, key, value []byte) error {
	need := setblock.EntrySize(len(key), len(value))
	if need > l.pageSize {
		return fmt.Errorf("hlog: object of %d bytes exceeds page size", need)
	}
	if need > l.pageSize-len(l.buf) {
		if err := l.flushPage(); err != nil {
			return err
		}
	}
	off := int32(len(l.buf))
	var hdr [setblock.EntryOverhead]byte
	binary.LittleEndian.PutUint64(hdr[0:], fp)
	hdr[8] = byte(len(key))
	binary.LittleEndian.PutUint16(hdr[9:], uint16(len(value)))
	l.buf = append(l.buf, hdr[:]...)
	l.buf = append(l.buf, key...)
	l.buf = append(l.buf, value...)
	l.removeFromIndex(set, fp)
	l.index[set] = append(l.index[set], entry{fp: fp, page: -1, off: off})
	l.bufObjs = append(l.bufObjs, entry{fp: fp, page: -1, off: off})
	l.bufSet = append(l.bufSet, set)
	return nil
}

func (l *Log) removeFromIndex(set int32, fp uint64) {
	es := l.index[set]
	for i, e := range es {
		if e.fp == fp {
			l.index[set] = append(es[:i], es[i+1:]...)
			return
		}
	}
}

// flushPage writes the open buffer as one log page.
func (l *Log) flushPage() error {
	if len(l.buf) == 0 {
		return nil
	}
	if err := l.ensureOpenZone(); err != nil {
		return err
	}
	devZone := l.zoneBase + l.open
	page, _, err := l.dev.AppendPage(devZone, l.buf)
	if err != nil {
		return err
	}
	l.stats.PagesWritten++
	for i, bo := range l.bufObjs {
		set := l.bufSet[i]
		es := l.index[set]
		for j := range es {
			if es[j].fp == bo.fp && es[j].page == -1 && es[j].off == bo.off {
				es[j].page = int32(page)
				l.perZone[l.open] = append(l.perZone[l.open], zoneObj{fp: bo.fp, set: set})
				break
			}
		}
	}
	l.buf = l.buf[:0]
	l.bufObjs = l.bufObjs[:0]
	l.bufSet = l.bufSet[:0]
	if l.dev.ZoneWP(devZone) >= l.dev.PagesPerZone() {
		l.open = -1
	}
	return nil
}

func (l *Log) ensureOpenZone() error {
	if l.open >= 0 {
		return nil
	}
	if len(l.free) == 0 {
		return ErrFull
	}
	l.open = l.free[len(l.free)-1]
	l.free = l.free[:len(l.free)-1]
	l.ring = append(l.ring, l.open)
	return nil
}

// Full reports whether the next page flush would fail for lack of zones.
func (l *Log) Full() bool {
	return l.open < 0 && len(l.free) == 0
}

// OldestZoneSets returns the distinct sets with live objects in the oldest
// zone, in first-appearance order. Empty when the log has no sealed zones.
func (l *Log) OldestZoneSets() []int32 {
	if len(l.ring) == 0 {
		return nil
	}
	z := l.ring[0]
	seen := make(map[int32]bool)
	var sets []int32
	lo, hi := l.zoneRange(z)
	for _, zo := range l.perZone[z] {
		if seen[zo.set] {
			continue
		}
		if l.liveIn(zo.set, zo.fp, lo, hi) {
			seen[zo.set] = true
			sets = append(sets, zo.set)
		}
	}
	return sets
}

func (l *Log) zoneRange(local int) (lo, hi int32) {
	lo = int32((l.zoneBase + local) * l.dev.PagesPerZone())
	return lo, lo + int32(l.dev.PagesPerZone())
}

func (l *Log) liveIn(set int32, fp uint64, lo, hi int32) bool {
	for _, e := range l.index[set] {
		if e.fp == fp && e.page >= lo && e.page < hi {
			return true
		}
	}
	return false
}

// TakeSet removes and returns every live object of the set, reading log
// pages as needed (the "flush all objects from a HLog linked list" step of
// migration). Returned objects own their byte slices.
func (l *Log) TakeSet(set int32) ([]Object, error) {
	es := l.index[set]
	if len(es) == 0 {
		return nil, nil
	}
	delete(l.index, set)
	objs := make([]Object, 0, len(es))
	lastPage := int32(-2)
	for _, e := range es {
		var src []byte
		if e.page == -1 {
			src = l.buf
		} else {
			if e.page != lastPage {
				if _, err := l.dev.ReadPage(int(e.page), l.scratch); err != nil {
					return nil, err
				}
				l.stats.PagesRead++
				lastPage = e.page
			}
			src = l.scratch
		}
		fp, key, value, ok := decodeEntry(src, int(e.off))
		if !ok || fp != e.fp {
			return nil, fmt.Errorf("hlog: corrupt log entry for set %d", set)
		}
		objs = append(objs, Object{
			FP:    fp,
			Key:   append([]byte(nil), key...),
			Value: append([]byte(nil), value...),
		})
	}
	return objs, nil
}

// ReleaseOldestZone drops any remaining live objects in the oldest zone and
// resets it (migration callers TakeSet first; leftovers are evicted).
// It returns the number of objects dropped.
func (l *Log) ReleaseOldestZone() (dropped int, err error) {
	if len(l.ring) == 0 {
		return 0, fmt.Errorf("hlog: no zone to release")
	}
	z := l.ring[0]
	l.ring = l.ring[1:]
	lo, hi := l.zoneRange(z)
	for _, zo := range l.perZone[z] {
		es := l.index[zo.set]
		for i := 0; i < len(es); {
			if es[i].fp == zo.fp && es[i].page >= lo && es[i].page < hi {
				es = append(es[:i], es[i+1:]...)
				dropped++
			} else {
				i++
			}
		}
		if len(es) == 0 {
			delete(l.index, zo.set)
		} else {
			l.index[zo.set] = es
		}
	}
	l.perZone[z] = l.perZone[z][:0]
	if _, err := l.dev.ResetZone(l.zoneBase + z); err != nil {
		return dropped, err
	}
	l.stats.ZoneResets++
	l.free = append(l.free, z)
	return dropped, nil
}

// SetLen returns the number of live objects buffered for the set (the
// linked-list length L_i of §3.2).
func (l *Log) SetLen(set int32) int { return len(l.index[set]) }

// Lookup finds a live object, reading its log page when necessary. done is
// the flash completion time (zero for buffer hits).
func (l *Log) Lookup(set int32, fp uint64, key []byte) (value []byte, done time.Duration, ok bool, err error) {
	es := l.index[set]
	for i := len(es) - 1; i >= 0; i-- {
		e := es[i]
		if e.fp != fp {
			continue
		}
		var src []byte
		if e.page == -1 {
			src = l.buf
		} else {
			d, err := l.dev.ReadPage(int(e.page), l.scratch)
			if err != nil {
				return nil, 0, false, err
			}
			l.stats.PagesRead++
			done = d
			src = l.scratch
		}
		efp, ekey, evalue, decoded := decodeEntry(src, int(e.off))
		if !decoded || efp != fp || string(ekey) != string(key) {
			return nil, done, false, nil
		}
		return append([]byte(nil), evalue...), done, true, nil
	}
	return nil, 0, false, nil
}

func decodeEntry(buf []byte, off int) (fp uint64, key, value []byte, ok bool) {
	if off+setblock.EntryOverhead > len(buf) {
		return 0, nil, nil, false
	}
	fp = binary.LittleEndian.Uint64(buf[off:])
	kl := int(buf[off+8])
	vl := int(binary.LittleEndian.Uint16(buf[off+9:]))
	ks := off + setblock.EntryOverhead
	if ks+kl+vl > len(buf) {
		return 0, nil, nil, false
	}
	return fp, buf[ks : ks+kl], buf[ks+kl : ks+kl+vl], true
}
