package hlog

import (
	"fmt"
	"testing"

	"nemo/internal/flashsim"
	"nemo/internal/hashing"
)

func mkLog(t *testing.T) (*flashsim.Device, *Log) {
	t.Helper()
	dev := flashsim.New(flashsim.Config{PageSize: 512, PagesPerZone: 4, Zones: 4})
	l, err := New(dev, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	return dev, l
}

func obj(i int) (set int32, fp uint64, key, value []byte) {
	key = []byte(fmt.Sprintf("log-key-%06d", i))
	value = []byte(fmt.Sprintf("log-value-%06d-padpadpad", i))
	fp = hashing.Fingerprint(key)
	return int32(i % 7), fp, key, value
}

func TestAppendLookupBuffer(t *testing.T) {
	_, l := mkLog(t)
	set, fp, k, v := obj(1)
	if err := l.Append(set, fp, k, v); err != nil {
		t.Fatal(err)
	}
	got, done, ok, err := l.Lookup(set, fp, k)
	if err != nil || !ok || string(got) != string(v) {
		t.Fatalf("buffer lookup failed: %v %v", ok, err)
	}
	if done != 0 {
		t.Fatal("buffer hit should not touch flash")
	}
}

func TestAppendLookupFlash(t *testing.T) {
	_, l := mkLog(t)
	// Enough objects to force page flushes.
	var all []int
	for i := 0; i < 60; i++ {
		set, fp, k, v := obj(i)
		if err := l.Append(set, fp, k, v); err != nil {
			t.Fatal(err)
		}
		all = append(all, i)
	}
	if l.Stats().PagesWritten == 0 {
		t.Fatal("no log pages written")
	}
	for _, i := range all {
		set, fp, k, v := obj(i)
		got, _, ok, err := l.Lookup(set, fp, k)
		if err != nil || !ok || string(got) != string(v) {
			t.Fatalf("object %d lost: ok=%v err=%v", i, ok, err)
		}
	}
}

func TestUpdateReplacesOlder(t *testing.T) {
	_, l := mkLog(t)
	set, fp, k, _ := obj(0)
	l.Append(set, fp, k, []byte("v1-aaaaaaaaaaaaaaaa"))
	l.Append(set, fp, k, []byte("v2-bbbbbbbbbbbbbbbb"))
	got, _, ok, _ := l.Lookup(set, fp, k)
	if !ok || string(got) != "v2-bbbbbbbbbbbbbbbb" {
		t.Fatalf("lookup = %q", got)
	}
	if l.SetLen(set) != 1 {
		t.Fatalf("set list has %d entries, want deduped 1", l.SetLen(set))
	}
}

func TestFullAndMigration(t *testing.T) {
	_, l := mkLog(t)
	i := 0
	for {
		set, fp, k, v := obj(i)
		err := l.Append(set, fp, k, v)
		if err == ErrFull {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		i++
		if i > 100000 {
			t.Fatal("log never filled")
		}
	}
	sets := l.OldestZoneSets()
	if len(sets) == 0 {
		t.Fatal("oldest zone has no sets")
	}
	total := 0
	for _, s := range sets {
		objs, err := l.TakeSet(s)
		if err != nil {
			t.Fatal(err)
		}
		total += len(objs)
		for _, o := range objs {
			if hashing.Fingerprint(o.Key) != o.FP {
				t.Fatal("corrupt object from TakeSet")
			}
		}
		if l.SetLen(s) != 0 {
			t.Fatal("TakeSet left objects behind")
		}
	}
	if total == 0 {
		t.Fatal("migration produced no objects")
	}
	dropped, err := l.ReleaseOldestZone()
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Fatalf("dropped %d objects that TakeSet should have claimed", dropped)
	}
	// The log must accept appends again.
	set, fp, k, v := obj(999999)
	if err := l.Append(set, fp, k, v); err != nil {
		t.Fatalf("append after release: %v", err)
	}
}

func TestReleaseDropsUnmigrated(t *testing.T) {
	_, l := mkLog(t)
	i := 0
	for !l.Full() {
		set, fp, k, v := obj(i)
		if err := l.Append(set, fp, k, v); err != nil && err != ErrFull {
			t.Fatal(err)
		}
		i++
	}
	before := l.Stats().LiveObjects
	dropped, err := l.ReleaseOldestZone()
	if err != nil {
		t.Fatal(err)
	}
	if dropped == 0 {
		t.Fatal("expected drops when releasing without migration")
	}
	after := l.Stats().LiveObjects
	if after != before-dropped {
		t.Fatalf("live objects %d -> %d with %d dropped", before, after, dropped)
	}
}

func TestSetLenMatchesAppends(t *testing.T) {
	_, l := mkLog(t)
	for i := 0; i < 30; i++ {
		_, _, k, v := obj(i)
		fp := hashing.Fingerprint(k)
		if err := l.Append(3, fp, k, v); err != nil {
			t.Fatal(err)
		}
	}
	if l.SetLen(3) != 30 {
		t.Fatalf("SetLen = %d, want 30", l.SetLen(3))
	}
}

func TestRejectsOversized(t *testing.T) {
	_, l := mkLog(t)
	if err := l.Append(0, 1, make([]byte, 200), make([]byte, 400)); err == nil {
		t.Fatal("oversized object accepted")
	}
}

func TestInvalidZoneRange(t *testing.T) {
	dev := flashsim.New(flashsim.Config{PageSize: 512, PagesPerZone: 4, Zones: 4})
	if _, err := New(dev, 0, 10); err == nil {
		t.Fatal("range beyond device accepted")
	}
	if _, err := New(dev, 0, 1); err == nil {
		t.Fatal("single-zone log accepted")
	}
}
