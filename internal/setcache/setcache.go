// Package setcache implements the set-associative flash cache baseline
// ("Set" in the paper's Figure 12a), modeled on CacheLib's BigHash engine.
//
// Keys hash into fixed 4 KB sets over a conventional (FTL-backed) SSD with
// heavy over-provisioning (Meta runs 50% OP in production, §2.3). Every
// insert is a read-modify-write of the whole set, which is exactly the
// ~16-20× application-level write amplification the paper attributes to
// this design for tiny objects. Per-set in-memory Bloom filters (a few bits
// per object) avoid flash reads on most misses, matching CacheLib.
package setcache

import (
	"fmt"
	"sync"
	"time"

	"nemo/internal/bloom"
	"nemo/internal/cachelib"
	"nemo/internal/device"
	"nemo/internal/ftl"
	"nemo/internal/hashing"
	"nemo/internal/metrics"
	"nemo/internal/setblock"
)

// Config configures the set-associative cache.
type Config struct {
	// Device is the zoned device to build the conventional FTL on.
	Device   device.Device
	ZoneBase int
	Zones    int // 0 means all device zones
	// OPRatio is the FTL over-provisioning ratio (default 0.5 per §2.3).
	OPRatio float64
	// TargetObjsPerSet sizes the per-set Bloom filters (default 40).
	TargetObjsPerSet int
	// BloomBitsPerObj sets the in-memory filter budget (default 4 bits,
	// the paper's "lowest memory cost, 4 bits/obj").
	BloomBitsPerObj float64
	// DisableBloom turns the per-set filters off (ablation).
	DisableBloom bool
}

// Cache is the set-associative engine. Safe for concurrent use.
type Cache struct {
	cfg      Config
	dev      device.Device
	ftl      *ftl.FTL
	pageSize int
	numSets  int
	filters  []*bloom.Filter
	fpr      float64

	mu      sync.Mutex
	scratch []byte
	stats   cachelib.Stats
	hist    metrics.Histogram
}

// New creates the engine.
func New(cfg Config) (*Cache, error) {
	if cfg.Device == nil {
		return nil, fmt.Errorf("setcache: nil device")
	}
	if cfg.Zones == 0 {
		cfg.Zones = cfg.Device.Zones() - cfg.ZoneBase
	}
	if cfg.OPRatio == 0 {
		cfg.OPRatio = 0.5
	}
	if cfg.TargetObjsPerSet == 0 {
		cfg.TargetObjsPerSet = 40
	}
	if cfg.BloomBitsPerObj == 0 {
		cfg.BloomBitsPerObj = 4
	}
	f, err := ftl.New(cfg.Device, cfg.ZoneBase, cfg.Zones, ftl.Config{OPRatio: cfg.OPRatio})
	if err != nil {
		return nil, fmt.Errorf("setcache: %w", err)
	}
	c := &Cache{
		cfg:      cfg,
		dev:      cfg.Device,
		ftl:      f,
		pageSize: cfg.Device.PageSize(),
		numSets:  f.LogicalPages(),
		scratch:  make([]byte, cfg.Device.PageSize()),
	}
	if !cfg.DisableBloom {
		// Bloom bits/obj b implies FPR 2^-(b/1.44).
		c.fpr = 1.0
		for i := 0; i < int(cfg.BloomBitsPerObj/1.4427+0.5); i++ {
			c.fpr /= 2
		}
		if c.fpr >= 1 {
			c.fpr = 0.5
		}
		c.filters = make([]*bloom.Filter, c.numSets)
	}
	return c, nil
}

// Name implements cachelib.Engine.
func (c *Cache) Name() string { return "Set" }

// The set-associative baseline stays a plain Engine; the harness upgrades
// it to the Engine v2 surface (batching, deletes, async) via cachelib.Adapt
// so comparisons against Nemo's native v2 implementation run unmodified.
var _ cachelib.Engine = (*Cache)(nil)

// Close implements cachelib.Engine.
func (c *Cache) Close() error { return nil }

// ReadLatency implements cachelib.Engine.
func (c *Cache) ReadLatency() *metrics.Histogram { return &c.hist }

// NumSets returns the number of usable sets after over-provisioning.
func (c *Cache) NumSets() int { return c.numSets }

// Stats implements cachelib.Engine, folding FTL GC into the device counter.
func (c *Cache) Stats() cachelib.Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	fs := c.ftl.Stats()
	s.DeviceBytesWritten = (fs.HostPagesWritten + fs.GCPagesWritten) * uint64(c.pageSize)
	return s
}

// DLWA returns the device-level write amplification from FTL GC.
func (c *Cache) DLWA() float64 { return c.ftl.Stats().DLWA() }

// MemoryBitsPerObject returns the modeled in-memory cost (Bloom bits only).
func (c *Cache) MemoryBitsPerObject() float64 {
	if c.cfg.DisableBloom {
		return 0
	}
	return c.cfg.BloomBitsPerObj
}

func (c *Cache) setOf(fp uint64) int {
	return int(hashing.Derive(fp, 0) % uint64(c.numSets))
}

// Set performs the read-modify-write insert into the object's set.
func (c *Cache) Set(key, value []byte) error {
	need := setblock.EntrySize(len(key), len(value))
	if need > c.pageSize-setblock.HeaderSize || len(key) > 255 {
		return fmt.Errorf("setcache: object of %d bytes exceeds set size %d", need, c.pageSize)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	fp := hashing.Fingerprint(key)
	set := c.setOf(fp)
	blk, err := c.readSet(set)
	if err != nil {
		return err
	}
	for !blk.CanFit(len(key), len(value)) {
		if _, ok := blk.EvictOldest(); !ok {
			break
		}
		c.stats.Evictions++
	}
	blk.Insert(fp, key, value)
	page := blk.AppendTo(c.scratch[:0])
	if _, err := c.ftl.Write(set, page); err != nil {
		return err
	}
	c.stats.Sets++
	c.stats.LogicalBytes += uint64(len(key) + len(value))
	c.stats.FlashBytesWritten += uint64(c.pageSize)
	c.rebuildFilter(set, blk)
	return nil
}

func (c *Cache) readSet(set int) (*setblock.Block, error) {
	_, mapped, err := c.ftl.Read(set, c.scratch)
	if err != nil {
		return nil, err
	}
	if mapped {
		c.stats.FlashReadOps++
		c.stats.FlashBytesRead += uint64(c.pageSize)
		return setblock.Parse(c.scratch, c.pageSize)
	}
	return setblock.New(c.pageSize), nil
}

func (c *Cache) rebuildFilter(set int, blk *setblock.Block) {
	if c.filters == nil {
		return
	}
	f := c.filters[set]
	if f == nil {
		f = bloom.New(c.cfg.TargetObjsPerSet, c.fpr)
		c.filters[set] = f
	} else {
		f.Reset()
	}
	blk.Range(func(_ int, e setblock.Entry) bool {
		f.Add(e.FP)
		return true
	})
}

// Get reads the object's set page (unless the Bloom filter rules it out).
func (c *Cache) Get(key []byte) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Gets++
	start := c.dev.Clock().Now()
	fp := hashing.Fingerprint(key)
	set := c.setOf(fp)
	if c.filters != nil {
		f := c.filters[set]
		if f == nil || !f.Test(fp) {
			c.hist.Record(time.Microsecond)
			return nil, false
		}
	}
	done, mapped, err := c.ftl.Read(set, c.scratch)
	if err != nil || !mapped {
		c.hist.Record(time.Microsecond)
		return nil, false
	}
	c.stats.FlashReadOps++
	c.stats.FlashBytesRead += uint64(c.pageSize)
	blk, err := setblock.Parse(c.scratch, c.pageSize)
	if err != nil {
		c.hist.Record(done - start + time.Microsecond)
		return nil, false
	}
	value, _, ok := blk.Lookup(fp, key)
	c.hist.Record(done - start + time.Microsecond)
	if !ok {
		return nil, false
	}
	c.stats.Hits++
	return append([]byte(nil), value...), true
}
