package setcache

import (
	"fmt"

	"nemo/internal/cachelib"
)

// NewSharded partitions the configured zone range into shards equal slices
// — each an independent set-associative cache with its own FTL, Bloom
// filters, and lock over a disjoint slice of one device — behind the
// generic cachelib.ShardedEngine facade. Requests route by the shared shard
// lane, so the partitioning matches Nemo's core.Sharded key-for-key. With
// shards=1 the result is behaviorally identical to New(cfg).
func NewSharded(cfg Config, shards int) (*cachelib.ShardedEngine, error) {
	if cfg.Device == nil {
		return nil, fmt.Errorf("setcache: nil device")
	}
	if cfg.Zones == 0 {
		cfg.Zones = cfg.Device.Zones() - cfg.ZoneBase
	}
	return cachelib.NewShardedRange("setcache", cfg.ZoneBase, cfg.Zones, shards,
		func(zoneBase, zones int) (cachelib.Engine, error) {
			scfg := cfg
			scfg.ZoneBase, scfg.Zones = zoneBase, zones
			return New(scfg)
		})
}
