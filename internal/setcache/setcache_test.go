package setcache

import (
	"fmt"
	"testing"

	"nemo/internal/flashsim"
	"nemo/internal/trace"
)

func mkCache(t *testing.T, op float64) *Cache {
	t.Helper()
	dev := flashsim.New(flashsim.Config{PageSize: 512, PagesPerZone: 8, Zones: 16})
	c, err := New(Config{Device: dev, OPRatio: op, TargetObjsPerSet: 8})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func kv(i int) (k, v []byte) {
	return []byte(fmt.Sprintf("key-%08d", i)), []byte(fmt.Sprintf("val-%08d-xxxxxxxxxxxxxxxx", i))
}

func TestSetGet(t *testing.T) {
	c := mkCache(t, 0.5)
	for i := 0; i < 100; i++ {
		k, v := kv(i)
		if err := c.Set(k, v); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		k, v := kv(i)
		got, hit := c.Get(k)
		if !hit || string(got) != string(v) {
			t.Fatalf("object %d: hit=%v", i, hit)
		}
	}
}

func TestUpdate(t *testing.T) {
	c := mkCache(t, 0.5)
	k, _ := kv(1)
	c.Set(k, []byte("v1-00000000"))
	c.Set(k, []byte("v2-11111111"))
	got, hit := c.Get(k)
	if !hit || string(got) != "v2-11111111" {
		t.Fatalf("got %q", got)
	}
}

func TestHighWAForTinyObjects(t *testing.T) {
	c := mkCache(t, 0.5)
	s := trace.NewSyntheticInserts(16, 40, 10, 3)
	var req trace.Request
	for i := 0; i < 3000; i++ {
		s.Next(&req)
		if err := c.Set(req.Key, req.Value); err != nil {
			t.Fatal(err)
		}
	}
	wa := c.Stats().ALWA()
	// Each tiny insert rewrites a whole 512 B page: WA ≈ page/object ≈ 7-8.
	if wa < 4 {
		t.Fatalf("set cache ALWA = %v, should be several× for tiny objects", wa)
	}
}

func TestWithinSetEviction(t *testing.T) {
	c := mkCache(t, 0.5)
	// Hammer a tiny key space so sets overflow.
	for i := 0; i < 2000; i++ {
		k, v := kv(i % 300)
		if err := c.Set(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("no within-set evictions despite overflow")
	}
}

func TestGCProducesDLWA(t *testing.T) {
	c := mkCache(t, 0.3)
	s := trace.NewSyntheticInserts(16, 40, 10, 9)
	var req trace.Request
	for i := 0; i < 4000; i++ {
		s.Next(&req)
		if err := c.Set(req.Key, req.Value); err != nil {
			t.Fatal(err)
		}
	}
	if c.DLWA() <= 1.0 {
		t.Fatalf("DLWA = %v, want > 1 under sustained random set RMWs", c.DLWA())
	}
	st := c.Stats()
	if st.DeviceBytesWritten <= st.FlashBytesWritten {
		t.Fatal("device writes should exceed host writes when GC runs")
	}
}

func TestBloomSkipsFlashOnMiss(t *testing.T) {
	c := mkCache(t, 0.5)
	k, v := kv(1)
	c.Set(k, v)
	before := c.Stats().FlashReadOps
	for i := 10000; i < 10100; i++ {
		mk, _ := kv(i)
		c.Get(mk)
	}
	after := c.Stats().FlashReadOps
	// Without filters every miss would read a page; with 4 b/obj filters
	// nearly all 100 misses should skip flash.
	if after-before > 30 {
		t.Fatalf("%d flash reads for 100 misses; Bloom filters ineffective", after-before)
	}
}

func TestDisableBloom(t *testing.T) {
	dev := flashsim.New(flashsim.Config{PageSize: 512, PagesPerZone: 8, Zones: 16})
	c, err := New(Config{Device: dev, DisableBloom: true})
	if err != nil {
		t.Fatal(err)
	}
	if c.MemoryBitsPerObject() != 0 {
		t.Fatal("bloom-less cache should model zero memory")
	}
	k, v := kv(1)
	c.Set(k, v)
	if _, hit := c.Get(k); !hit {
		t.Fatal("get failed without bloom")
	}
}

func TestRejectOversized(t *testing.T) {
	c := mkCache(t, 0.5)
	if err := c.Set([]byte("key-big"), make([]byte, 1024)); err == nil {
		t.Fatal("oversized object accepted")
	}
}
