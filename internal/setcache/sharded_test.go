package setcache_test

import (
	"testing"

	"nemo/internal/cachelib"
	"nemo/internal/enginetest"
	"nemo/internal/flashsim"
	"nemo/internal/setcache"
)

func newDev() *flashsim.Device {
	return flashsim.New(flashsim.Config{PageSize: 512, PagesPerZone: 8, Zones: 16})
}

func mkBare(t *testing.T) cachelib.Engine {
	t.Helper()
	e, err := setcache.New(setcache.Config{Device: newDev(), OPRatio: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func mkSharded(t *testing.T, shards int) cachelib.Engine {
	t.Helper()
	e, err := setcache.NewSharded(setcache.Config{Device: newDev(), OPRatio: 0.5}, shards)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestShardedSingleShardEquivalence pins the facade contract: a shards=1
// wrapped set cache replays stat-for-stat like the bare engine.
func TestShardedSingleShardEquivalence(t *testing.T) {
	enginetest.SingleShardEquivalence(t, 20_000, mkBare, mkSharded)
}

// TestShardedPartition checks multi-shard aggregate accounting.
func TestShardedPartition(t *testing.T) {
	enginetest.MultiShardPartition(t, 20_000, 2, mkSharded)
}

// TestShardedRejectsIndivisible pins the zone-partition validation.
func TestShardedRejectsIndivisible(t *testing.T) {
	if _, err := setcache.NewSharded(setcache.Config{Device: newDev()}, 5); err == nil {
		t.Fatal("NewSharded accepted 16 zones across 5 shards")
	}
}
