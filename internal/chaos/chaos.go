// Package chaos is the fault-injection harness behind `nemobench -chaos`:
// it serves a breaker-enabled Nemo engine over a live loopback listener,
// arms a named fault scenario (a seeded device.FaultPlan) under client
// load, and reports what the serving stack did about it — availability
// (served ops %), degraded sheds, the breaker's degraded-window length,
// and how long recovery took once the device healed.
//
// The harness heals the device (disarms the plan) after the load phase and
// then probes until a SET succeeds, so every run ends with a cleanly
// drained shutdown; a scenario that leaves the stack unable to recover is
// a failed run, not a tolerated one.
package chaos

import (
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"nemo/internal/backend"
	"nemo/internal/core"
	"nemo/internal/device"
	"nemo/internal/memclient"
	"nemo/internal/server"
	"nemo/internal/setblock"
	"nemo/internal/vtime"
)

// The harness geometry: servebench's shape scaled well down (a 1 MiB SG
// pool, 64 KiB zones) so a few thousand requests overwrite the pool
// several times — the flush pipeline, where faults bite, must churn for
// the whole load phase even in a -race CI smoke run.
const (
	zonesTotal   = 16
	pagesPerZone = 16
	pageSize     = 4096
	valueSize    = 250
)

// Scenario names a composable fault plan. Rules receives the device's
// total zone count so per-zone scenarios can target real zones.
type Scenario struct {
	Name string
	Note string
	// Rules builds the plan's rules for a device with zones total zones.
	Rules func(zones int) []device.FaultRule
}

// Scenarios returns the built-in scenario registry in stable order.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name: "write-outage",
			Note: "total write outage, recovers after 40 failed writes (fail-N-then-recover)",
			Rules: func(int) []device.FaultRule {
				return []device.FaultRule{{Op: device.FaultWrite, ErrRate: 1, FailN: 40}}
			},
		},
		{
			Name: "flaky-writes",
			Note: "20% of device writes fail for the whole load phase",
			Rules: func(int) []device.FaultRule {
				return []device.FaultRule{{Op: device.FaultWrite, ErrRate: 0.2}}
			},
		},
		{
			Name: "slow-reads",
			Note: "every device read pays 200µs of added latency",
			Rules: func(int) []device.FaultRule {
				return []device.FaultRule{{Op: device.FaultRead, Latency: 200 * time.Microsecond}}
			},
		},
		{
			Name: "zone-kill",
			Note: "the first data zone fails every read and write",
			Rules: func(int) []device.FaultRule {
				return []device.FaultRule{{Op: device.FaultRead | device.FaultWrite, ErrRate: 1, Zones: []int{0}}}
			},
		},
	}
}

// ByName resolves a scenario, listing the registry on a miss.
func ByName(name string) (Scenario, error) {
	var names []string
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, nil
		}
		names = append(names, s.Name)
	}
	sort.Strings(names)
	return Scenario{}, fmt.Errorf("chaos: unknown scenario %q (have %s)", name, strings.Join(names, ", "))
}

// Config parameterizes one chaos run.
type Config struct {
	Scenario Scenario
	Seed     uint64       // fault-plan seed (0 is a valid fixed seed)
	Device   backend.Spec // zero value = simulator
	Shards   int          // engine shards (default 2)
	Flushers int          // background flushers (0 = inline flushes)
	SyncSet  bool         // serve SETs synchronously
	Conns    int          // client connections (default 2)
	Ops      int          // total requests across connections (default 4000)
	Pipeline int          // requests per pipelined batch (default 8)

	// Breaker shape for the run. Threshold 0 takes the harness default of
	// 3 (a chaos run without a breaker is measuring nothing).
	BreakerThreshold  int
	BreakerProbeAfter time.Duration // default 100ms
	WriteRetries      int           // bounded append retries (default 1)

	// RecoveryTimeout bounds the post-heal probe loop (default 10s).
	RecoveryTimeout time.Duration
}

// Result is what one chaos run observed.
type Result struct {
	Scenario string `json:"scenario"`
	Device   string `json:"device"`
	Shards   int    `json:"shards"`
	Conns    int    `json:"conns"`
	SyncSet  bool   `json:"sync_set"`

	Ops             int     `json:"ops"`              // requests issued during the load phase
	Served          int     `json:"served"`           // well-formed, non-shed replies
	Hits            int     `json:"hits"`             // VALUE replies
	DegradedSheds   int     `json:"degraded_sheds"`   // SERVER_ERROR degraded replies
	OtherErrors     int     `json:"other_errors"`     // unexpected replies
	Availability    float64 `json:"availability"`     // Served / Ops
	LoadElapsedSecs float64 `json:"load_elapsed_s"`   // wall clock of the load phase
	RecoverySecs    float64 `json:"recovery_s"`       // heal → first STORED
	DegradedEntered uint64  `json:"degraded_entered"` // breaker trips (engine stats)
	DegradedSeconds uint64  `json:"degraded_seconds"` // device-clock degraded time
	WriteErrors     uint64  `json:"write_errors"`
	ReadErrors      uint64  `json:"read_errors"`
	WriteRetries    uint64  `json:"write_retries"`

	InjectedWrites uint64 `json:"injected_writes"` // what the plan actually did
	InjectedReads  uint64 `json:"injected_reads"`
	DelayedOps     uint64 `json:"delayed_ops"`
}

func key(i int) []byte { return []byte(fmt.Sprintf("chaos-key-%08d-pad", i)) }

func value(i int) []byte {
	v := make([]byte, valueSize)
	n := copy(v, fmt.Sprintf("chaos-value-%08d-", i))
	for j := n; j < valueSize; j++ {
		v[j] = byte('a' + (i+j)%26)
	}
	return v
}

// Run executes one scenario: build the breaker-enabled engine and server,
// arm the plan, drive the load, heal, probe recovery, drain, report.
func Run(cfg Config) (Result, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 2
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 2
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 4000
	}
	if cfg.Pipeline <= 0 {
		cfg.Pipeline = 8
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerProbeAfter <= 0 {
		cfg.BreakerProbeAfter = 100 * time.Millisecond
	}
	if cfg.WriteRetries <= 0 {
		cfg.WriteRetries = 1
	}
	if cfg.RecoveryTimeout <= 0 {
		cfg.RecoveryTimeout = 10 * time.Second
	}
	if zonesTotal%cfg.Shards != 0 {
		return Result{}, fmt.Errorf("chaos: %d data zones not divisible by %d shards", zonesTotal, cfg.Shards)
	}

	perData := zonesTotal / cfg.Shards
	perIdx := core.IndexZonesFor(perData, core.DefaultSGsPerIndexGroup)
	dev, err := cfg.Device.Open(device.Geometry{
		PageSize:     pageSize,
		PagesPerZone: pagesPerZone,
		Zones:        cfg.Shards * (perData + perIdx),
	})
	if err != nil {
		return Result{}, err
	}
	defer dev.Close()

	ecfg := core.DefaultConfig(dev, zonesTotal)
	ecfg.Shards = cfg.Shards
	ecfg.Flushers = cfg.Flushers
	ecfg.BreakerThreshold = cfg.BreakerThreshold
	ecfg.BreakerProbeAfter = cfg.BreakerProbeAfter
	ecfg.WriteRetries = cfg.WriteRetries
	cache, err := core.NewSharded(ecfg)
	if err != nil {
		return Result{}, err
	}
	defer cache.Close()

	srv, err := server.New(server.Config{
		Engine:       cache,
		SyncSet:      cfg.SyncSet,
		MaxItemBytes: pageSize - setblock.HeaderSize - setblock.EntryOverhead,
	})
	if err != nil {
		return Result{}, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return Result{}, err
	}
	go srv.Serve(l)

	res := Result{
		Scenario: cfg.Scenario.Name,
		Device:   cfg.Device.String(),
		Shards:   cfg.Shards,
		Conns:    cfg.Conns,
		SyncSet:  cfg.SyncSet,
	}

	// Load phase under chaos. The key space is a multiple of pool capacity
	// so the write stream keeps the flush pipeline (the faulted path) busy.
	plan := device.NewFaultPlan(cfg.Seed, cfg.Scenario.Rules(dev.Zones())...)
	plan.Arm(dev)
	const poolBytes = zonesTotal * pagesPerZone * pageSize
	keySpace := 3 * poolBytes / valueSize
	tallies := make([]tally, cfg.Conns)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < cfg.Conns; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			t := &tallies[g]
			nc, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				t.err = err
				return
			}
			defer nc.Close()
			t.err = drive(memclient.New(nc), g, cfg, keySpace, t)
		}(g)
	}
	wg.Wait()
	res.LoadElapsedSecs = time.Since(start).Seconds()
	for g := range tallies {
		t := &tallies[g]
		if t.err != nil {
			return Result{}, fmt.Errorf("chaos: conn %d: %w", g, t.err)
		}
		res.Ops += t.ops
		res.Served += t.served
		res.Hits += t.hits
		res.DegradedSheds += t.sheds
		res.OtherErrors += t.other
	}
	if res.Ops > 0 {
		res.Availability = float64(res.Served) / float64(res.Ops)
	}

	// Heal, then probe until writes flow again: the breaker must find its
	// own way back (half-open probe), no restart allowed.
	plan.Disarm()
	healed := time.Now()
	if err := probeRecovery(l.Addr().String(), dev.Clock(), cfg.RecoveryTimeout); err != nil {
		return Result{}, err
	}
	res.RecoverySecs = time.Since(healed).Seconds()

	if err := srv.Shutdown(); err != nil {
		return Result{}, fmt.Errorf("chaos: drain after heal: %w", err)
	}
	st := cache.Stats()
	res.DegradedEntered = st.DegradedEntered
	res.DegradedSeconds = st.DegradedSeconds
	res.WriteErrors = st.WriteErrors
	res.ReadErrors = st.ReadErrors
	res.WriteRetries = st.WriteRetries
	fs := plan.Stats()
	res.InjectedWrites = fs.InjectedWrites
	res.InjectedReads = fs.InjectedReads
	res.DelayedOps = fs.DelayedOps
	return res, nil
}

// tally accumulates one connection's observations.
type tally struct {
	ops, served, hits, sheds, other int
	err                             error
}

// drive issues this connection's share of the load as pipelined batches
// alternating sets and gets (the servebench schedule), classifying every
// reply: served, degraded shed, or unexpected.
func drive(cl *memclient.Client, g int, cfg Config, keySpace int, t *tally) error {
	perConn := cfg.Ops / cfg.Conns
	if perConn < cfg.Pipeline {
		perConn = cfg.Pipeline
	}
	lo := g * keySpace / cfg.Conns
	span := (g+1)*keySpace/cfg.Conns - lo
	setCursor := 0
	for b := 0; b < perConn/cfg.Pipeline; b++ {
		if b%2 == 0 {
			for i := 0; i < cfg.Pipeline; i++ {
				k := lo + setCursor%span
				setCursor++
				cl.QueueSet(key(k), value(k), uint32(k), false)
			}
			if err := cl.Flush(); err != nil {
				return err
			}
			for i := 0; i < cfg.Pipeline; i++ {
				status, err := cl.ReadStatus()
				if err != nil {
					return err
				}
				t.ops++
				switch {
				case status == "STORED":
					t.served++
				case status == "SERVER_ERROR degraded":
					t.sheds++
				default:
					t.other++
				}
			}
		} else {
			for i := 0; i < cfg.Pipeline; i++ {
				k := lo + (b*cfg.Pipeline+i)*6007%span
				cl.QueueGet(false, key(k))
			}
			if err := cl.Flush(); err != nil {
				return err
			}
			for i := 0; i < cfg.Pipeline; i++ {
				n, err := cl.ReadValues(nil)
				if err != nil {
					return err
				}
				t.ops++
				t.served++ // a miss is still a served request
				t.hits += n
			}
		}
	}
	return cl.Quit()
}

// probeRecovery issues single SETs on a fresh connection until one is
// STORED — the half-open probe path exercised end to end — failing if the
// stack cannot recover inside the timeout. The breaker's probe window is
// timed on the DEVICE clock; on the simulator that clock advances only
// with successful I/O (a total outage freezes it), so between rejected
// probes the harness advances a virtual clock itself. On a wall-clock
// backend it just waits.
func probeRecovery(addr string, clk *vtime.Clock, timeout time.Duration) error {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer nc.Close()
	cl := memclient.New(nc)
	deadline := time.Now().Add(timeout)
	probe := key(0)
	val := value(0)
	for tries := 0; ; tries++ {
		cl.QueueSet(probe, val, 0, false)
		if err := cl.Flush(); err != nil {
			return err
		}
		status, err := cl.ReadStatus()
		if err != nil {
			return err
		}
		if status == "STORED" {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: no recovery after %v (%d probes, last reply %q)", timeout, tries+1, status)
		}
		if clk.Real() {
			time.Sleep(10 * time.Millisecond)
		} else {
			clk.Advance(25 * time.Millisecond)
		}
	}
}
