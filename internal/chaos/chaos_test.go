package chaos_test

import (
	"path/filepath"
	"testing"

	"nemo/internal/backend"
	"nemo/internal/chaos"
)

// specs returns one backend.Spec per device implementation, mirroring
// devtest's sim/file split for the Spec-based harness entry point.
func specs(t *testing.T) map[string]backend.Spec {
	return map[string]backend.Spec{
		"sim":  backend.Sim(),
		"file": backend.File(filepath.Join(t.TempDir(), "chaos.img")),
	}
}

// TestRunWriteOutage is the harness smoke test: a write outage under load
// must shed typed degraded errors (not crash or garble), trip the breaker,
// and — the part a failed run would surface — recover on its own once the
// device heals. Runs on every backend.
func TestRunWriteOutage(t *testing.T) {
	for name, spec := range specs(t) {
		t.Run(name, func(t *testing.T) {
			s, err := chaos.ByName("write-outage")
			if err != nil {
				t.Fatal(err)
			}
			res, err := chaos.Run(chaos.Config{
				Scenario: s,
				Seed:     7,
				Device:   spec,
				SyncSet:  true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.DegradedEntered == 0 {
				t.Error("breaker never tripped under a total write outage")
			}
			if res.DegradedSheds == 0 {
				t.Error("no SETs were shed with SERVER_ERROR degraded")
			}
			if res.InjectedWrites == 0 {
				t.Error("fault plan injected nothing — load never reached the device")
			}
			if res.Served == 0 || res.Availability <= 0 {
				t.Errorf("availability = %v, served = %d; GETs should keep serving",
					res.Availability, res.Served)
			}
			if res.Served+res.DegradedSheds+res.OtherErrors != res.Ops {
				t.Errorf("tally mismatch: served %d + sheds %d + other %d != ops %d",
					res.Served, res.DegradedSheds, res.OtherErrors, res.Ops)
			}
		})
	}
}

// TestRunSlowReads pins the latency-injection path: added read latency must
// not cost availability, and the plan must report the delayed operations.
func TestRunSlowReads(t *testing.T) {
	s, err := chaos.ByName("slow-reads")
	if err != nil {
		t.Fatal(err)
	}
	res, err := chaos.Run(chaos.Config{
		Scenario: s,
		Seed:     7,
		SyncSet:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Availability != 1 {
		t.Errorf("availability = %v under latency-only faults, want 1", res.Availability)
	}
	if res.DelayedOps == 0 {
		t.Error("no delayed ops recorded — latency rule never fired")
	}
	if res.DegradedEntered != 0 {
		t.Errorf("breaker tripped %d times under latency-only faults", res.DegradedEntered)
	}
}

// TestByNameUnknown pins the registry error listing.
func TestByNameUnknown(t *testing.T) {
	if _, err := chaos.ByName("nope"); err == nil {
		t.Fatal("ByName(nope) succeeded")
	}
}
