package flashsim

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func small() *Device {
	return New(Config{PageSize: 512, PagesPerZone: 4, Zones: 4, Channels: 2})
}

func TestAppendReadRoundTrip(t *testing.T) {
	d := small()
	data := make([]byte, 512)
	for i := range data {
		data[i] = byte(i)
	}
	page, _, err := d.AppendPage(0, data)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	if _, err := d.ReadPage(page, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(data) {
		t.Fatal("read data differs from written data")
	}
}

func TestShortWritePadsWithZeros(t *testing.T) {
	d := small()
	page, _, err := d.AppendPage(0, []byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	if _, err := d.ReadPage(page, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 1 || buf[1] != 2 || buf[2] != 3 {
		t.Fatal("payload lost")
	}
	for i := 3; i < 512; i++ {
		if buf[i] != 0 {
			t.Fatalf("byte %d not zero-padded", i)
		}
	}
}

func TestZoneFullRejectsWrites(t *testing.T) {
	d := small()
	for i := 0; i < 4; i++ {
		if _, _, err := d.AppendPage(1, nil); err != nil {
			t.Fatal(err)
		}
	}
	if !d.ZoneFull(1) {
		t.Fatal("zone should be full")
	}
	if _, _, err := d.AppendPage(1, nil); err == nil {
		t.Fatal("append to full zone should fail")
	}
}

func TestResetZoneRewinds(t *testing.T) {
	d := small()
	d.AppendPage(2, []byte{42})
	if _, err := d.ResetZone(2); err != nil {
		t.Fatal(err)
	}
	if d.ZoneWP(2) != 0 {
		t.Fatal("write pointer not rewound")
	}
	buf := make([]byte, 512)
	if _, err := d.ReadPage(d.PageAddr(2, 0), buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0 {
		t.Fatal("reset zone should read zeroes")
	}
}

func TestAppendMultiplePages(t *testing.T) {
	d := small()
	data := make([]byte, 512*3)
	for i := range data {
		data[i] = byte(i / 512)
	}
	first, _, err := d.Append(3, data)
	if err != nil {
		t.Fatal(err)
	}
	if d.ZoneWP(3) != 3 {
		t.Fatalf("wp = %d, want 3", d.ZoneWP(3))
	}
	buf := make([]byte, 512)
	for p := 0; p < 3; p++ {
		d.ReadPage(first+p, buf)
		if buf[0] != byte(p) {
			t.Fatalf("page %d holds wrong data", p)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	d := small()
	d.AppendPage(0, []byte{1})
	d.AppendPage(0, []byte{2})
	buf := make([]byte, 512)
	d.ReadPage(0, buf)
	d.ResetZone(0)
	s := d.Stats()
	if s.PagesWritten != 2 || s.PagesRead != 1 || s.ZoneResets != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.BytesWritten != 1024 || s.BytesRead != 512 {
		t.Fatalf("byte stats = %+v", s)
	}
}

func TestLatencyModelAdvances(t *testing.T) {
	d := New(Config{PageSize: 512, PagesPerZone: 8, Zones: 2, Channels: 1,
		ReadLatency: 100 * time.Microsecond, ProgramLatency: 50 * time.Microsecond})
	_, done1, _ := d.AppendPage(0, []byte{1})
	if done1 != 50*time.Microsecond {
		t.Fatalf("first program done = %v, want 50µs", done1)
	}
	// Same channel: second op queues behind the first.
	_, done2, _ := d.AppendPage(0, []byte{2})
	if done2 != 100*time.Microsecond {
		t.Fatalf("second program done = %v, want 100µs", done2)
	}
	buf := make([]byte, 512)
	done3, _ := d.ReadPage(0, buf)
	if done3 != 200*time.Microsecond {
		t.Fatalf("read done = %v, want 200µs", done3)
	}
}

func TestChannelParallelism(t *testing.T) {
	d := New(Config{PageSize: 512, PagesPerZone: 8, Zones: 2, Channels: 4,
		ReadLatency: 100 * time.Microsecond})
	for i := 0; i < 4; i++ {
		d.AppendPage(0, []byte{byte(i)})
	}
	// Pages 0..3 land on distinct channels: parallel reads finish together.
	pages := []int{0, 1, 2, 3}
	bufs := make([][]byte, 4)
	for i := range bufs {
		bufs[i] = make([]byte, 512)
	}
	done, err := d.ReadPages(pages, bufs)
	if err != nil {
		t.Fatal(err)
	}
	// All reads start after the programs; with default program latency 25µs
	// they queue per channel, so done = program + read on the slowest.
	if done > 125*time.Microsecond+100*time.Microsecond {
		t.Fatalf("parallel reads took %v, not parallel", done)
	}
}

func TestReadFaultInjection(t *testing.T) {
	d := small()
	d.AppendPage(0, []byte{1})
	injected := errors.New("uncorrectable ECC")
	d.SetReadFault(func(page int) error {
		if page == 0 {
			return injected
		}
		return nil
	})
	buf := make([]byte, 512)
	if _, err := d.ReadPage(0, buf); !errors.Is(err, injected) {
		t.Fatalf("expected injected fault, got %v", err)
	}
	d.SetReadFault(nil)
	if _, err := d.ReadPage(0, buf); err != nil {
		t.Fatalf("fault not cleared: %v", err)
	}
}

func TestBoundsChecks(t *testing.T) {
	d := small()
	buf := make([]byte, 512)
	if _, err := d.ReadPage(-1, buf); err == nil {
		t.Fatal("negative page read should fail")
	}
	if _, err := d.ReadPage(d.TotalPages(), buf); err == nil {
		t.Fatal("out-of-range read should fail")
	}
	if _, _, err := d.AppendPage(99, nil); err == nil {
		t.Fatal("append to invalid zone should fail")
	}
	if _, err := d.ResetZone(-1); err == nil {
		t.Fatal("reset of invalid zone should fail")
	}
	if _, err := d.ReadPage(0, make([]byte, 10)); err == nil {
		t.Fatal("short buffer read should fail")
	}
	if _, _, err := d.AppendPage(0, make([]byte, 1024)); err == nil {
		t.Fatal("oversized write should fail")
	}
}

func TestDefaults(t *testing.T) {
	d := New(Config{})
	cfg := d.Config()
	if cfg.PageSize != 4096 || cfg.PagesPerZone != 256 || cfg.Zones != 64 || cfg.Channels != 8 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
	if d.CapacityBytes() != int64(64*256*4096) {
		t.Fatalf("capacity = %d", d.CapacityBytes())
	}
}

func TestAddressingHelpers(t *testing.T) {
	d := small()
	page := d.PageAddr(2, 3)
	if d.ZoneOf(page) != 2 || d.OffsetOf(page) != 3 {
		t.Fatal("addressing round trip failed")
	}
}

func TestWriteFaultInjection(t *testing.T) {
	d := small()
	calls := 0
	d.SetWriteFault(func(zone int) error {
		calls++
		if zone == 1 {
			return fmt.Errorf("injected fault on zone %d", zone)
		}
		return nil
	})
	if _, _, err := d.AppendPage(0, []byte("ok")); err != nil {
		t.Fatalf("hooked append to healthy zone failed: %v", err)
	}
	if _, _, err := d.AppendPage(1, []byte("bad")); err == nil {
		t.Fatal("append to faulted zone should fail")
	}
	if calls != 2 {
		t.Fatalf("hook ran %d times, want 2", calls)
	}
	// A faulted append must not move the write pointer or the counters.
	if wp := d.ZoneWP(1); wp != 0 {
		t.Fatalf("faulted zone advanced its write pointer to %d", wp)
	}
	if got := d.Stats().PagesWritten; got != 1 {
		t.Fatalf("pages written = %d, want 1", got)
	}
	d.SetWriteFault(nil)
	if _, _, err := d.AppendPage(1, []byte("recovered")); err != nil {
		t.Fatalf("append after clearing fault failed: %v", err)
	}
}
