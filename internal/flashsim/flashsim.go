// Package flashsim simulates a log-structured (zoned) flash device: zones
// with append-only write pointers, page-granularity reads, and erase-unit
// resets.
//
// This is the substitute for the Western Digital ZN540 ZNS SSD used by the
// paper. It enforces the same write-pattern contract — sequential writes
// within a zone, whole-zone resets, 4 KB page reads — and accounts every
// byte moved, which is all the write-amplification results depend on. A
// per-channel virtual-time latency model reproduces the read/write
// interference that drives the paper's tail-latency comparison without the
// host-side noise of real direct I/O.
//
// Locking is fine-grained so independent callers scale like the real
// hardware does: every zone carries its own mutex (appends, reads, and
// resets of different zones never contend), every flash channel carries its
// own scheduler lock, and the activity counters are atomics. Only the
// open-zone limit check takes a dedicated device-wide lock, and only on the
// rare 0→1 and full/reset write-pointer transitions.
//
// Device is one implementation of the internal/device contract; the
// file-backed internal/filedev is the other. Engines accept the interface
// and behave identically on both (only latencies differ — virtual here,
// measured there).
package flashsim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nemo/internal/device"
	"nemo/internal/vtime"
)

// Config describes the simulated device geometry and latency model.
type Config struct {
	// PageSize is the read/program granularity in bytes (default 4096).
	PageSize int
	// PagesPerZone is the zone (erase unit) size in pages (default 256,
	// i.e. 1 MB zones; experiments override this to model large ZNS zones).
	PagesPerZone int
	// Zones is the number of zones on the device (default 64).
	Zones int
	// Channels is the number of independently scheduled flash channels
	// (default 8). Page p is serviced by channel p mod Channels.
	Channels int
	// ReadLatency is the page read (tR + transfer) latency (default 70 µs).
	ReadLatency time.Duration
	// ProgramLatency is the page program latency as observed by the host
	// (default 25 µs: device-side buffering hides most of tPROG, but the
	// channel stays busy, which is what creates read interference).
	ProgramLatency time.Duration
	// EraseLatency is the zone reset latency (default 2 ms).
	EraseLatency time.Duration
	// MaxOpenZones bounds the number of partially written zones, as real
	// ZNS devices do (the ZN540 allows 14). 0 means unlimited. Opening a
	// zone beyond the limit fails with ErrTooManyOpenZones.
	MaxOpenZones int
	// Clock is the virtual clock; a fresh clock is created when nil so a
	// device is usable standalone.
	Clock *vtime.Clock
}

// ZoneState describes a zone's lifecycle position (§2.2's zoned interface).
type ZoneState = device.ZoneState

// Zone states: empty (reset, unwritten), open (partially written), full
// (write pointer at capacity).
const (
	ZoneEmpty = device.ZoneEmpty
	ZoneOpen  = device.ZoneOpen
	ZoneFull  = device.ZoneFull
)

// ErrTooManyOpenZones is returned when an append would exceed the device's
// open-zone limit. It is the shared sentinel every backend returns.
var ErrTooManyOpenZones = device.ErrTooManyOpenZones

func (c Config) withDefaults() Config {
	if c.PageSize == 0 {
		c.PageSize = 4096
	}
	if c.PagesPerZone == 0 {
		c.PagesPerZone = 256
	}
	if c.Zones == 0 {
		c.Zones = 64
	}
	if c.Channels == 0 {
		c.Channels = 8
	}
	if c.ReadLatency == 0 {
		c.ReadLatency = 70 * time.Microsecond
	}
	if c.ProgramLatency == 0 {
		c.ProgramLatency = 25 * time.Microsecond
	}
	if c.EraseLatency == 0 {
		c.EraseLatency = 2 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = &vtime.Clock{}
	}
	return c
}

// Stats counts all device activity since creation. Byte counts include only
// host-visible payloads (full pages).
type Stats = device.Stats

type zone struct {
	mu   sync.Mutex
	wp   int    // next page offset to program within the zone
	data []byte // lazily allocated zone payload
}

// channel is one flash channel's scheduler state, padded to its own cache
// line so concurrent schedule() calls on different channels don't false-share.
type channel struct {
	mu   sync.Mutex
	free time.Duration // busy-until in virtual time
	_    [48]byte      // pad the struct to a 64-byte stride
}

// Device is a simulated zoned flash device. All methods are safe for
// concurrent use; operations on distinct zones proceed in parallel.
type Device struct {
	cfg   Config
	clock *vtime.Clock

	zones []zone
	chans []channel

	// Open-zone accounting: openCount tracks zones with 0 < wp <
	// PagesPerZone and is only touched on open/close transitions.
	openMu    sync.Mutex
	openCount int

	pagesWritten atomic.Uint64
	pagesRead    atomic.Uint64
	zoneResets   atomic.Uint64
	bytesWritten atomic.Uint64
	bytesRead    atomic.Uint64

	// Generation stamp (device.Generation): boot is assigned once from the
	// process-global counter — a simulated device's contents never survive
	// the process, so uniqueness within it is exactly the right scope — and
	// writes counts successful appends and resets.
	boot   uint64
	writes atomic.Uint64

	readFault  atomic.Pointer[func(page int) error] // fault injection; nil when disabled
	writeFault atomic.Pointer[func(zone int) error]
}

// bootSeq issues process-unique Boot stamps: every simulated device is a
// fresh cold format, so each New gets the next value.
var bootSeq atomic.Uint64

// New creates a device with the given configuration (zero fields take
// defaults).
func New(cfg Config) *Device {
	cfg = cfg.withDefaults()
	return &Device{
		cfg:   cfg,
		clock: cfg.Clock,
		zones: make([]zone, cfg.Zones),
		chans: make([]channel, cfg.Channels),
		boot:  bootSeq.Add(1),
	}
}

// Clock returns the device's virtual clock.
func (d *Device) Clock() *vtime.Clock { return d.clock }

// Config returns the effective configuration (defaults applied).
func (d *Device) Config() Config { return d.cfg }

// PageSize returns the page size in bytes.
func (d *Device) PageSize() int { return d.cfg.PageSize }

// PagesPerZone returns the zone size in pages.
func (d *Device) PagesPerZone() int { return d.cfg.PagesPerZone }

// Zones returns the number of zones.
func (d *Device) Zones() int { return d.cfg.Zones }

// TotalPages returns the device capacity in pages.
func (d *Device) TotalPages() int { return d.cfg.Zones * d.cfg.PagesPerZone }

// CapacityBytes returns the device capacity in bytes.
func (d *Device) CapacityBytes() int64 {
	return int64(d.TotalPages()) * int64(d.cfg.PageSize)
}

// ZoneOf returns the zone containing the global page index.
func (d *Device) ZoneOf(page int) int { return page / d.cfg.PagesPerZone }

// PageAddr returns the global page index of offset off within zoneID.
func (d *Device) PageAddr(zoneID, off int) int {
	return zoneID*d.cfg.PagesPerZone + off
}

// OffsetOf returns the intra-zone offset of the global page index.
func (d *Device) OffsetOf(page int) int { return page % d.cfg.PagesPerZone }

// MaxOpenZones returns the open-zone limit (0 = unlimited).
func (d *Device) MaxOpenZones() int { return d.cfg.MaxOpenZones }

// Close releases nothing: the simulator holds only memory. Provided to
// satisfy the device contract so openers can close any backend uniformly.
func (d *Device) Close() error { return nil }

// Device implements the zoned-device contract.
var _ device.Device = (*Device)(nil)

// Stats returns a snapshot of the device counters. Each counter is loaded
// atomically; under concurrent traffic the fields may straddle in-flight
// operations, but quiescent reads (how every experiment samples) are exact.
func (d *Device) Stats() Stats {
	return Stats{
		PagesWritten: d.pagesWritten.Load(),
		PagesRead:    d.pagesRead.Load(),
		ZoneResets:   d.zoneResets.Load(),
		BytesWritten: d.bytesWritten.Load(),
		BytesRead:    d.bytesRead.Load(),
	}
}

// Generation returns the device mutation stamp: a process-unique Boot (the
// simulator's contents never outlive the process, so every device is its own
// cold format) and the count of successful appends and resets since New.
func (d *Device) Generation() device.Generation {
	return device.Generation{Boot: d.boot, Writes: d.writes.Load()}
}

// SetReadFault installs a fault-injection hook invoked with the global page
// index on every read; a non-nil return aborts the read with that error.
// Pass nil to disable.
func (d *Device) SetReadFault(f func(page int) error) {
	if f == nil {
		d.readFault.Store(nil)
		return
	}
	d.readFault.Store(&f)
}

// SetWriteFault installs a fault-injection hook invoked with the zone ID on
// every append, before any device state changes; a non-nil return aborts
// the append with that error. The hook runs outside the zone lock, so a
// test may also block inside it to hold an append mid-flight (e.g. to
// observe a cache's in-flight flush window) without stalling reads or
// appends to other zones. Pass nil to disable.
func (d *Device) SetWriteFault(f func(zone int) error) {
	if f == nil {
		d.writeFault.Store(nil)
		return
	}
	d.writeFault.Store(&f)
}

// schedule books lat on the channel for global page index, returning the
// completion time. Takes only the channel's own lock.
func (d *Device) schedule(page int, lat time.Duration) time.Duration {
	ch := &d.chans[page%d.cfg.Channels]
	ch.mu.Lock()
	start := d.clock.Now()
	if ch.free > start {
		start = ch.free
	}
	done := start + lat
	ch.free = done
	ch.mu.Unlock()
	return done
}

// ZoneWP returns the write pointer (pages written) of the zone.
func (d *Device) ZoneWP(zoneID int) int {
	z := &d.zones[zoneID]
	z.mu.Lock()
	defer z.mu.Unlock()
	return z.wp
}

// ZoneFull reports whether the zone has no remaining writable pages.
func (d *Device) ZoneFull(zoneID int) bool {
	return d.ZoneWP(zoneID) >= d.cfg.PagesPerZone
}

// ZoneStateOf returns the zone's lifecycle state.
func (d *Device) ZoneStateOf(zoneID int) ZoneState {
	switch wp := d.ZoneWP(zoneID); {
	case wp == 0:
		return ZoneEmpty
	case wp >= d.cfg.PagesPerZone:
		return ZoneFull
	default:
		return ZoneOpen
	}
}

// OpenZones returns the number of partially written zones.
func (d *Device) OpenZones() int {
	d.openMu.Lock()
	defer d.openMu.Unlock()
	return d.openCount
}

// reserveOpen admits (or rejects) the 0→open transition of a zone against
// the configured open-zone limit.
func (d *Device) reserveOpen(zoneID int) error {
	d.openMu.Lock()
	defer d.openMu.Unlock()
	if d.cfg.MaxOpenZones > 0 && d.openCount >= d.cfg.MaxOpenZones {
		return fmt.Errorf("opening zone %d: %w (limit %d)", zoneID, ErrTooManyOpenZones, d.cfg.MaxOpenZones)
	}
	d.openCount++
	return nil
}

func (d *Device) releaseOpen() {
	d.openMu.Lock()
	d.openCount--
	d.openMu.Unlock()
}

// AppendPage programs one page at the zone's write pointer. data longer than
// a page is an error; shorter data is zero-padded (the full page is still
// counted as written, which is exactly the fill-rate cost the paper
// measures). It returns the global page index and the virtual completion
// time. Appends to the same zone serialize on the zone's lock (the zone has
// a single write pointer); appends to distinct zones run in parallel.
func (d *Device) AppendPage(zoneID int, data []byte) (page int, done time.Duration, err error) {
	if zoneID < 0 || zoneID >= d.cfg.Zones {
		return 0, 0, fmt.Errorf("flashsim: zone %d out of range [0,%d)", zoneID, d.cfg.Zones)
	}
	if len(data) > d.cfg.PageSize {
		return 0, 0, fmt.Errorf("flashsim: write of %d bytes exceeds page size %d", len(data), d.cfg.PageSize)
	}
	if f := d.writeFault.Load(); f != nil {
		if err := (*f)(zoneID); err != nil {
			return 0, 0, err
		}
	}
	z := &d.zones[zoneID]
	z.mu.Lock()
	defer z.mu.Unlock()
	if z.wp >= d.cfg.PagesPerZone {
		return 0, 0, fmt.Errorf("flashsim: zone %d full", zoneID)
	}
	if z.wp == 0 {
		if err := d.reserveOpen(zoneID); err != nil {
			return 0, 0, err
		}
	}
	if z.data == nil {
		z.data = make([]byte, d.cfg.PagesPerZone*d.cfg.PageSize)
	}
	off := z.wp * d.cfg.PageSize
	n := copy(z.data[off:off+d.cfg.PageSize], data)
	for i := off + n; i < off+d.cfg.PageSize; i++ {
		z.data[i] = 0
	}
	page = d.PageAddr(zoneID, z.wp)
	z.wp++
	if z.wp == d.cfg.PagesPerZone {
		d.releaseOpen()
	}
	d.pagesWritten.Add(1)
	d.bytesWritten.Add(uint64(d.cfg.PageSize))
	d.writes.Add(1)
	done = d.schedule(page, d.cfg.ProgramLatency)
	return page, done, nil
}

// Append programs len(data)/PageSize pages (rounding the tail up to a full
// page) sequentially into the zone, spreading programs across channels. It
// returns the first global page index and the completion time of the last
// page.
func (d *Device) Append(zoneID int, data []byte) (firstPage int, done time.Duration, err error) {
	ps := d.cfg.PageSize
	if len(data) == 0 {
		return 0, d.clock.Now(), nil
	}
	first := -1
	for off := 0; off < len(data); off += ps {
		end := off + ps
		if end > len(data) {
			end = len(data)
		}
		page, t, err := d.AppendPage(zoneID, data[off:end])
		if err != nil {
			return 0, 0, err
		}
		if first < 0 {
			first = page
		}
		if t > done {
			done = t
		}
	}
	return first, done, nil
}

// ReadPage copies the page into dst (which must hold PageSize bytes) and
// returns the virtual completion time. Reading an unwritten page yields
// zeroes, matching deallocated-read behaviour of real zoned devices.
//
// Buffer ownership: dst belongs to the caller. The device fills it
// synchronously, before returning, and never retains a reference — so
// callers may serve dst from a sync.Pool and recycle it the moment they
// are done with the bytes (the cache engines' zero-allocation read paths
// do exactly that). The converse also holds: the device never hands out
// internal buffers, so a returned read is a stable snapshot even if the
// zone is concurrently appended or reset afterwards.
func (d *Device) ReadPage(page int, dst []byte) (done time.Duration, err error) {
	if page < 0 || page >= d.TotalPages() {
		return 0, fmt.Errorf("flashsim: page %d out of range [0,%d)", page, d.TotalPages())
	}
	if len(dst) < d.cfg.PageSize {
		return 0, fmt.Errorf("flashsim: read buffer %d smaller than page size %d", len(dst), d.cfg.PageSize)
	}
	if f := d.readFault.Load(); f != nil {
		if err := (*f)(page); err != nil {
			return 0, err
		}
	}
	z := &d.zones[page/d.cfg.PagesPerZone]
	off := (page % d.cfg.PagesPerZone) * d.cfg.PageSize
	z.mu.Lock()
	if z.data == nil {
		for i := 0; i < d.cfg.PageSize; i++ {
			dst[i] = 0
		}
	} else {
		copy(dst[:d.cfg.PageSize], z.data[off:off+d.cfg.PageSize])
	}
	z.mu.Unlock()
	d.pagesRead.Add(1)
	d.bytesRead.Add(uint64(d.cfg.PageSize))
	return d.schedule(page, d.cfg.ReadLatency), nil
}

// ReadPages reads every page into the matching dst buffer, issuing them
// concurrently across channels, and returns the completion time of the
// slowest read (the paper's parallel candidate-SG and PBFG reads). The
// ReadPage buffer-ownership contract applies to every dst: caller-owned,
// filled synchronously, never retained. On error, buffers before the
// failing page have been filled and the rest are untouched; the error is
// the first one encountered in page order.
func (d *Device) ReadPages(pages []int, dst [][]byte) (done time.Duration, err error) {
	for i, p := range pages {
		t, err := d.ReadPage(p, dst[i])
		if err != nil {
			return 0, err
		}
		if t > done {
			done = t
		}
	}
	return done, nil
}

// ResetZone erases the zone, rewinding its write pointer, and returns the
// virtual completion time.
func (d *Device) ResetZone(zoneID int) (done time.Duration, err error) {
	if zoneID < 0 || zoneID >= d.cfg.Zones {
		return 0, fmt.Errorf("flashsim: zone %d out of range [0,%d)", zoneID, d.cfg.Zones)
	}
	z := &d.zones[zoneID]
	z.mu.Lock()
	if z.wp > 0 && z.wp < d.cfg.PagesPerZone {
		d.releaseOpen()
	}
	z.wp = 0
	z.data = nil // freed; reads of a reset zone return zeroes
	z.mu.Unlock()
	d.zoneResets.Add(1)
	d.writes.Add(1)
	done = d.schedule(d.PageAddr(zoneID, 0), d.cfg.EraseLatency)
	return done, nil
}
