package flashsim

import (
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentZoneAppendsIsolated drives disjoint zones from many
// goroutines at once and verifies that every zone holds exactly the bytes
// its owner wrote and that the atomic counters account for every operation.
func TestConcurrentZoneAppendsIsolated(t *testing.T) {
	const (
		workers      = 8
		zonesPerW    = 4
		pagesPerZone = 16
		pageSize     = 256
	)
	d := New(Config{PageSize: pageSize, PagesPerZone: pagesPerZone, Zones: workers * zonesPerW})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, pageSize)
			for zi := 0; zi < zonesPerW; zi++ {
				zone := w*zonesPerW + zi
				for p := 0; p < pagesPerZone; p++ {
					binary.LittleEndian.PutUint64(buf, uint64(zone)<<32|uint64(p))
					if _, _, err := d.AppendPage(zone, buf); err != nil {
						t.Errorf("append zone %d page %d: %v", zone, p, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	dst := make([]byte, pageSize)
	for zone := 0; zone < workers*zonesPerW; zone++ {
		if wp := d.ZoneWP(zone); wp != pagesPerZone {
			t.Fatalf("zone %d wp = %d, want %d", zone, wp, pagesPerZone)
		}
		for p := 0; p < pagesPerZone; p++ {
			if _, err := d.ReadPage(d.PageAddr(zone, p), dst); err != nil {
				t.Fatal(err)
			}
			if got := binary.LittleEndian.Uint64(dst); got != uint64(zone)<<32|uint64(p) {
				t.Fatalf("zone %d page %d holds %x", zone, p, got)
			}
		}
	}
	st := d.Stats()
	wantPages := uint64(workers * zonesPerW * pagesPerZone)
	if st.PagesWritten != wantPages {
		t.Fatalf("PagesWritten = %d, want %d", st.PagesWritten, wantPages)
	}
	if st.BytesWritten != wantPages*pageSize {
		t.Fatalf("BytesWritten = %d, want %d", st.BytesWritten, wantPages*pageSize)
	}
	if st.PagesRead != wantPages {
		t.Fatalf("PagesRead = %d, want %d", st.PagesRead, wantPages)
	}
	if d.OpenZones() != 0 {
		t.Fatalf("OpenZones = %d after filling every zone", d.OpenZones())
	}
}

// TestConcurrentAppendReadResetCycles runs full write/read/reset lifecycles
// on private zones from many goroutines (the access pattern of independent
// cache shards) and checks the aggregate counters afterwards.
func TestConcurrentAppendReadResetCycles(t *testing.T) {
	const (
		workers      = 6
		cycles       = 8
		pagesPerZone = 8
		pageSize     = 128
	)
	d := New(Config{PageSize: pageSize, PagesPerZone: pagesPerZone, Zones: workers})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(zone int) {
			defer wg.Done()
			buf := make([]byte, pageSize)
			dst := make([]byte, pageSize)
			for c := 0; c < cycles; c++ {
				for p := 0; p < pagesPerZone; p++ {
					binary.LittleEndian.PutUint64(buf, uint64(c)<<32|uint64(p))
					if _, _, err := d.AppendPage(zone, buf); err != nil {
						t.Errorf("cycle %d append: %v", c, err)
						return
					}
				}
				for p := 0; p < pagesPerZone; p++ {
					if _, err := d.ReadPage(d.PageAddr(zone, p), dst); err != nil {
						t.Errorf("cycle %d read: %v", c, err)
						return
					}
					if got := binary.LittleEndian.Uint64(dst); got != uint64(c)<<32|uint64(p) {
						t.Errorf("cycle %d page %d holds %x", c, p, got)
						return
					}
				}
				if _, err := d.ResetZone(zone); err != nil {
					t.Errorf("cycle %d reset: %v", c, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := d.Stats()
	want := uint64(workers * cycles * pagesPerZone)
	if st.PagesWritten != want || st.PagesRead != want {
		t.Fatalf("pages written/read = %d/%d, want %d", st.PagesWritten, st.PagesRead, want)
	}
	if st.ZoneResets != uint64(workers*cycles) {
		t.Fatalf("ZoneResets = %d, want %d", st.ZoneResets, workers*cycles)
	}
	if d.OpenZones() != 0 {
		t.Fatalf("OpenZones = %d after all resets", d.OpenZones())
	}
}

// TestOpenZoneLimitUnderConcurrency opens more zones than the limit allows
// from parallel goroutines; the reservation must stay exact — precisely
// MaxOpenZones opens succeed and every failure is ErrTooManyOpenZones.
func TestOpenZoneLimitUnderConcurrency(t *testing.T) {
	const (
		zones = 12
		limit = 4
	)
	d := New(Config{PageSize: 64, PagesPerZone: 4, Zones: zones, MaxOpenZones: limit})
	var opened, rejected atomic.Int64
	var wg sync.WaitGroup
	buf := make([]byte, 64)
	for z := 0; z < zones; z++ {
		wg.Add(1)
		go func(z int) {
			defer wg.Done()
			_, _, err := d.AppendPage(z, buf)
			switch {
			case err == nil:
				opened.Add(1)
			case errors.Is(err, ErrTooManyOpenZones):
				rejected.Add(1)
			default:
				t.Errorf("zone %d: unexpected error %v", z, err)
			}
		}(z)
	}
	wg.Wait()
	if opened.Load() != limit {
		t.Fatalf("opened %d zones, want exactly %d", opened.Load(), limit)
	}
	if rejected.Load() != zones-limit {
		t.Fatalf("rejected %d opens, want %d", rejected.Load(), zones-limit)
	}
	if d.OpenZones() != limit {
		t.Fatalf("OpenZones = %d, want %d", d.OpenZones(), limit)
	}
}

// TestConcurrentReadersSharedZone checks that read-only traffic on a shared
// zone from many goroutines returns consistent data while other zones are
// being written.
func TestConcurrentReadersSharedZone(t *testing.T) {
	const pageSize = 128
	d := New(Config{PageSize: pageSize, PagesPerZone: 8, Zones: 4})
	buf := make([]byte, pageSize)
	for p := 0; p < 8; p++ {
		for i := range buf {
			buf[i] = byte(p)
		}
		if _, _, err := d.AppendPage(0, buf); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dst := make([]byte, pageSize)
			for i := 0; i < 200; i++ {
				p := (w + i) % 8
				if _, err := d.ReadPage(d.PageAddr(0, p), dst); err != nil {
					t.Errorf("read: %v", err)
					return
				}
				for _, b := range dst {
					if b != byte(p) {
						t.Errorf("page %d returned byte %d", p, b)
						return
					}
				}
			}
		}(w)
	}
	// A writer hammers an unrelated zone at the same time.
	wg.Add(1)
	go func() {
		defer wg.Done()
		wbuf := make([]byte, pageSize)
		for c := 0; c < 50; c++ {
			for p := 0; p < 8; p++ {
				if _, _, err := d.AppendPage(2, wbuf); err != nil {
					t.Errorf("writer: %v", err)
					return
				}
			}
			if _, err := d.ResetZone(2); err != nil {
				t.Errorf("writer reset: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if st := d.Stats(); st.ZoneResets != 50 {
		t.Fatalf("ZoneResets = %d, want 50", st.ZoneResets)
	}
}
