package flashsim

import "testing"

// TestGenerationStamp pins the mutation-stamp contract the warm-restart
// snapshot validates against: Boot is unique per device life, Writes counts
// every successful append and reset (and nothing else), and a simulated
// device never survives a process, so a "reopened" sim can never satisfy a
// snapshot taken against its predecessor.
func TestGenerationStamp(t *testing.T) {
	d := small()
	g0 := d.Generation()
	if g0.Writes != 0 {
		t.Fatalf("fresh device Writes = %d", g0.Writes)
	}

	if _, _, err := d.AppendPage(0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.AppendPage(0, []byte{2}); err != nil {
		t.Fatal(err)
	}
	if got := d.Generation(); got.Writes != 2 || got.Boot != g0.Boot {
		t.Fatalf("after two appends: %+v (boot was %d)", got, g0.Boot)
	}

	if _, err := d.ResetZone(0); err != nil {
		t.Fatal(err)
	}
	if got := d.Generation().Writes; got != 3 {
		t.Fatalf("reset did not count as a mutation: Writes = %d", got)
	}

	// Reads leave the stamp alone.
	buf := make([]byte, d.PageSize())
	if _, _, err := d.AppendPage(1, []byte{3}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadPage(d.PageAddr(1, 0), buf); err != nil {
		t.Fatal(err)
	}
	if got := d.Generation().Writes; got != 4 {
		t.Fatalf("read mutated the stamp: Writes = %d", got)
	}

	// A failed append (zone full) is not a mutation.
	for d.ZoneWP(2) < d.PagesPerZone() {
		if _, _, err := d.AppendPage(2, []byte{4}); err != nil {
			t.Fatal(err)
		}
	}
	before := d.Generation().Writes
	if _, _, err := d.AppendPage(2, []byte{5}); err == nil {
		t.Fatal("append to full zone succeeded")
	}
	if got := d.Generation().Writes; got != before {
		t.Fatalf("failed append counted as a mutation: %d -> %d", before, got)
	}

	// Distinct lives get distinct Boot stamps.
	if other := small(); other.Generation().Boot == g0.Boot {
		t.Fatal("two device lives share a Boot stamp")
	}
}
