package flashsim

import (
	"errors"
	"testing"
)

func TestZoneStates(t *testing.T) {
	d := New(Config{PageSize: 512, PagesPerZone: 2, Zones: 4})
	if got := d.ZoneStateOf(0); got != ZoneEmpty {
		t.Fatalf("fresh zone state = %v", got)
	}
	d.AppendPage(0, []byte{1})
	if got := d.ZoneStateOf(0); got != ZoneOpen {
		t.Fatalf("after one page, state = %v", got)
	}
	d.AppendPage(0, []byte{2})
	if got := d.ZoneStateOf(0); got != ZoneFull {
		t.Fatalf("after fill, state = %v", got)
	}
	d.ResetZone(0)
	if got := d.ZoneStateOf(0); got != ZoneEmpty {
		t.Fatalf("after reset, state = %v", got)
	}
}

func TestZoneStateString(t *testing.T) {
	for s, want := range map[ZoneState]string{
		ZoneEmpty:     "EMPTY",
		ZoneOpen:      "OPEN",
		ZoneFull:      "FULL",
		ZoneState(42): "ZoneState(42)",
	} {
		if s.String() != want {
			t.Fatalf("state %d renders %q", int(s), s.String())
		}
	}
}

func TestMaxOpenZonesEnforced(t *testing.T) {
	d := New(Config{PageSize: 512, PagesPerZone: 4, Zones: 8, MaxOpenZones: 2})
	// Open two zones.
	if _, _, err := d.AppendPage(0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.AppendPage(1, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if got := d.OpenZones(); got != 2 {
		t.Fatalf("open zones = %d", got)
	}
	// A third open must fail.
	if _, _, err := d.AppendPage(2, []byte{1}); !errors.Is(err, ErrTooManyOpenZones) {
		t.Fatalf("expected ErrTooManyOpenZones, got %v", err)
	}
	// Appending to an already open zone stays legal.
	if _, _, err := d.AppendPage(0, []byte{2}); err != nil {
		t.Fatal(err)
	}
	// Filling a zone transitions it out of open, freeing a slot.
	d.AppendPage(0, []byte{3})
	d.AppendPage(0, []byte{4})
	if d.ZoneStateOf(0) != ZoneFull {
		t.Fatal("zone 0 should be full")
	}
	if _, _, err := d.AppendPage(2, []byte{1}); err != nil {
		t.Fatalf("open after slot freed: %v", err)
	}
	// Reset also frees a slot.
	d.ResetZone(1)
	if _, _, err := d.AppendPage(3, []byte{1}); err != nil {
		t.Fatalf("open after reset: %v", err)
	}
}

func TestMaxOpenZonesUnlimitedByDefault(t *testing.T) {
	d := New(Config{PageSize: 512, PagesPerZone: 4, Zones: 16})
	for z := 0; z < 16; z++ {
		if _, _, err := d.AppendPage(z, []byte{1}); err != nil {
			t.Fatalf("zone %d: %v", z, err)
		}
	}
	if d.OpenZones() != 16 {
		t.Fatalf("open zones = %d", d.OpenZones())
	}
}
