// Package bloom implements the fixed-size Bloom filters that back Nemo's
// Parallel Bloom Filter Groups (PBFGs).
//
// Each cache set gets one filter sized for a target false-positive rate and
// an expected object count; the filters for the same intra-SG offset across
// the SGs of an index group are queried together with a shared, precomputed
// probe set (the paper's "each hash function is computed once and the
// results are shared across all filters", §5.5).
package bloom

import (
	"fmt"
	"math"

	"nemo/internal/hashing"
)

// ln2sq is (ln 2)^2, the constant in the optimal Bloom sizing formula.
const ln2sq = 0.4804530139182014

// SizeBits returns the optimal number of bits for n items at the target
// false-positive rate, rounded up to a multiple of 64 so filters serialize
// on word boundaries. n must be ≥ 1 and 0 < fpr < 1.
func SizeBits(n int, fpr float64) int {
	if n < 1 {
		n = 1
	}
	if fpr <= 0 || fpr >= 1 {
		panic(fmt.Sprintf("bloom: false-positive rate %v out of range (0,1)", fpr))
	}
	m := math.Ceil(-float64(n) * math.Log(fpr) / ln2sq)
	bits := int(m)
	if rem := bits % 64; rem != 0 {
		bits += 64 - rem
	}
	return bits
}

// NumHashes returns the optimal probe count for the target false-positive
// rate: k = log2(1/fpr), rounded to the nearest integer and at least 1.
func NumHashes(fpr float64) int {
	k := int(math.Round(-math.Log2(fpr)))
	if k < 1 {
		k = 1
	}
	return k
}

// BitsPerObject returns the memory cost in bits per object of a filter with
// the target false-positive rate (the 14.4 bits/object the paper reports for
// 0.1%).
func BitsPerObject(fpr float64) float64 {
	return -math.Log2(fpr) / math.Ln2
}

// Filter is a fixed-size Bloom filter. Filters are created by New (fresh)
// or FromBytes (deserialized from a flash page). The zero value is unusable.
type Filter struct {
	words []uint64
	mbits uint64
	k     int
}

// New returns an empty filter sized by SizeBits(n, fpr) with
// NumHashes(fpr) probes.
func New(n int, fpr float64) *Filter {
	bits := SizeBits(n, fpr)
	return &Filter{
		words: make([]uint64, bits/64),
		mbits: uint64(bits),
		k:     NumHashes(fpr),
	}
}

// Params returns the filter geometry (bit count and probe count).
func (f *Filter) Params() (mbits int, k int) { return int(f.mbits), f.k }

// SizeBytes returns the serialized size of the filter in bytes.
func (f *Filter) SizeBytes() int { return len(f.words) * 8 }

// Add inserts a fingerprint.
func (f *Filter) Add(fp uint64) {
	h1 := hashing.SplitMix64(fp ^ 0x51afd7ed558ccd9b)
	h2 := hashing.SplitMix64(fp^0xc4ceb9fe1a85ec53) | 1
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.mbits
		f.words[pos>>6] |= 1 << (pos & 63)
	}
}

// Test reports whether fp may have been added (with the configured
// false-positive probability) or definitely has not (false).
func (f *Filter) Test(fp uint64) bool {
	h1 := hashing.SplitMix64(fp ^ 0x51afd7ed558ccd9b)
	h2 := hashing.SplitMix64(fp^0xc4ceb9fe1a85ec53) | 1
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.mbits
		if f.words[pos>>6]&(1<<(pos&63)) == 0 {
			return false
		}
	}
	return true
}

// Reset clears all bits, returning the filter to its empty state.
func (f *Filter) Reset() {
	for i := range f.words {
		f.words[i] = 0
	}
}

// AppendBytes serializes the filter's bit array (little-endian words) onto
// dst and returns the extended slice. Geometry is not serialized; the reader
// must know (n, fpr) from configuration, as Nemo's index pages do.
func (f *Filter) AppendBytes(dst []byte) []byte {
	for _, w := range f.words {
		dst = append(dst,
			byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	return dst
}

// FromBytes reconstructs a filter with the given geometry from a serialized
// bit array produced by AppendBytes. The slice length must equal
// SizeBits(n, fpr)/8.
func FromBytes(b []byte, n int, fpr float64) (*Filter, error) {
	bits := SizeBits(n, fpr)
	if len(b) != bits/8 {
		return nil, fmt.Errorf("bloom: serialized size %d does not match geometry %d bytes", len(b), bits/8)
	}
	f := &Filter{
		words: make([]uint64, bits/64),
		mbits: uint64(bits),
		k:     NumHashes(fpr),
	}
	for i := range f.words {
		off := i * 8
		f.words[i] = uint64(b[off]) | uint64(b[off+1])<<8 | uint64(b[off+2])<<16 |
			uint64(b[off+3])<<24 | uint64(b[off+4])<<32 | uint64(b[off+5])<<40 |
			uint64(b[off+6])<<48 | uint64(b[off+7])<<56
	}
	return f, nil
}

// TestRaw tests fp directly against a serialized filter without
// materializing a Filter, using the shared probe positions ps. This is the
// hot path for querying a packed PBFG page: one probe-set computation is
// shared across tens of filters.
func TestRaw(raw []byte, ps *ProbeSet) bool {
	for _, pos := range ps.pos {
		if raw[pos>>3]&(1<<(pos&7)) == 0 {
			return false
		}
	}
	return true
}

// ProbeSet holds precomputed probe positions for one fingerprint against a
// fixed filter geometry, shared across all filters in a PBFG.
type ProbeSet struct {
	pos []uint64
}

// NewProbeSet computes the probe positions for fp against filters of mbits
// bits with k probes.
func NewProbeSet(fp uint64, mbits, k int) *ProbeSet {
	ps := &ProbeSet{pos: make([]uint64, k)}
	ps.Reuse(fp, mbits)
	return ps
}

// Reuse recomputes the positions in place for a new fingerprint, avoiding
// allocation on the lookup path.
func (ps *ProbeSet) Reuse(fp uint64, mbits int) {
	h1 := hashing.SplitMix64(fp ^ 0x51afd7ed558ccd9b)
	h2 := hashing.SplitMix64(fp^0xc4ceb9fe1a85ec53) | 1
	for i := range ps.pos {
		ps.pos[i] = (h1 + uint64(i)*h2) % uint64(mbits)
	}
}

// TestFilter applies the probe set to a materialized filter. The filter must
// have the geometry the probe set was computed for.
func (ps *ProbeSet) TestFilter(f *Filter) bool {
	for _, pos := range ps.pos {
		if f.words[pos>>6]&(1<<(pos&63)) == 0 {
			return false
		}
	}
	return true
}
