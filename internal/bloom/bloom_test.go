package bloom

import (
	"math"
	"testing"
	"testing/quick"

	"nemo/internal/hashing"
)

func TestSizeBitsMatchesPaper(t *testing.T) {
	// §5.1: 0.1% FPR ⇒ 14.4 bits/obj; 40 objects ⇒ 576 bits = 72 bytes.
	bits := SizeBits(40, 0.001)
	if bits != 576 {
		t.Fatalf("SizeBits(40, 0.001) = %d, want 576", bits)
	}
	if got := BitsPerObject(0.001); math.Abs(got-14.4) > 0.05 {
		t.Fatalf("BitsPerObject(0.001) = %v, want ≈14.4", got)
	}
	// 1% FPR ⇒ ≈9.6 bits/obj (§4.1).
	if got := BitsPerObject(0.01); math.Abs(got-9.585) > 0.05 {
		t.Fatalf("BitsPerObject(0.01) = %v, want ≈9.6", got)
	}
}

func TestNoFalseNegatives(t *testing.T) {
	f := New(40, 0.001)
	fps := make([]uint64, 40)
	for i := range fps {
		fps[i] = hashing.SplitMix64(uint64(i) + 1)
		f.Add(fps[i])
	}
	for _, fp := range fps {
		if !f.Test(fp) {
			t.Fatalf("false negative for %x", fp)
		}
	}
}

func TestFalsePositiveRate(t *testing.T) {
	f := New(40, 0.001)
	for i := 0; i < 40; i++ {
		f.Add(hashing.SplitMix64(uint64(i) + 1))
	}
	trials := 200000
	falsePos := 0
	for i := 0; i < trials; i++ {
		if f.Test(hashing.SplitMix64(uint64(i) + 1000000)) {
			falsePos++
		}
	}
	rate := float64(falsePos) / float64(trials)
	if rate > 0.003 {
		t.Fatalf("false-positive rate %v far above configured 0.001", rate)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	f := New(40, 0.001)
	for i := 0; i < 30; i++ {
		f.Add(hashing.SplitMix64(uint64(i) * 3))
	}
	raw := f.AppendBytes(nil)
	if len(raw) != f.SizeBytes() {
		t.Fatalf("serialized %d bytes, want %d", len(raw), f.SizeBytes())
	}
	g, err := FromBytes(raw, 40, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if !g.Test(hashing.SplitMix64(uint64(i) * 3)) {
			t.Fatalf("deserialized filter lost element %d", i)
		}
	}
}

func TestFromBytesRejectsWrongSize(t *testing.T) {
	if _, err := FromBytes(make([]byte, 10), 40, 0.001); err == nil {
		t.Fatal("expected error for wrong serialized size")
	}
}

func TestTestRawMatchesFilter(t *testing.T) {
	mbits := SizeBits(40, 0.001)
	k := NumHashes(0.001)
	f := func(adds []uint64, probe uint64) bool {
		filt := New(40, 0.001)
		for _, a := range adds {
			filt.Add(a)
		}
		raw := filt.AppendBytes(nil)
		ps := NewProbeSet(probe, mbits, k)
		return TestRaw(raw, ps) == filt.Test(probe) && ps.TestFilter(filt) == filt.Test(probe)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestProbeSetReuse(t *testing.T) {
	mbits := SizeBits(40, 0.001)
	k := NumHashes(0.001)
	ps := NewProbeSet(1, mbits, k)
	filt := New(40, 0.001)
	filt.Add(12345)
	ps.Reuse(12345, mbits)
	if !ps.TestFilter(filt) {
		t.Fatal("reused probe set missed an added element")
	}
	ps.Reuse(99999, mbits)
	fresh := NewProbeSet(99999, mbits, k)
	for i := range fresh.pos {
		if fresh.pos[i] != ps.pos[i] {
			t.Fatal("Reuse produced different positions than NewProbeSet")
		}
	}
}

func TestReset(t *testing.T) {
	f := New(40, 0.01)
	f.Add(7)
	f.Reset()
	if f.Test(7) {
		t.Fatal("Reset did not clear the filter")
	}
}

func TestPaperPBFGPagePacking(t *testing.T) {
	// §5.1: 72-byte filters, 50 per 4 KB page ("each index group stores
	// bloom filters for 50 SGs").
	bf := SizeBits(40, 0.001) / 8
	if bf*50 > 4096 {
		t.Fatalf("50 filters of %d bytes do not fit a 4 KB page", bf)
	}
}

// BenchmarkPBFGLookup1000 reproduces the §5.5 microbenchmark: computing the
// candidate SGs through a PBFG of 1000 set-level Bloom filters with shared
// probes (the paper measures ≈1 µs on GoogleTest).
func BenchmarkPBFGLookup1000(b *testing.B) {
	const filters = 1000
	mbits := SizeBits(40, 0.001)
	k := NumHashes(0.001)
	raws := make([][]byte, filters)
	for i := range raws {
		f := New(40, 0.001)
		for j := 0; j < 40; j++ {
			f.Add(hashing.SplitMix64(uint64(i*40 + j)))
		}
		raws[i] = f.AppendBytes(nil)
	}
	ps := NewProbeSet(0, mbits, k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps.Reuse(hashing.SplitMix64(uint64(i)), mbits)
		hits := 0
		for _, raw := range raws {
			if TestRaw(raw, ps) {
				hits++
			}
		}
		if hits < 0 {
			b.Fatal("impossible")
		}
	}
}
