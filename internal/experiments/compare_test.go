package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// compareTable runs RunCompare into a buffer and returns the emitted table.
func compareTable(t *testing.T, cfg CompareConfig) string {
	t.Helper()
	var buf bytes.Buffer
	cfg.Out = &buf
	if err := RunCompare(cfg); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// compareBase is the small deterministic configuration the determinism
// suite perturbs: wall-clock columns off, so the table contains only
// scheduling-independent statistics.
func compareBase() CompareConfig {
	return CompareConfig{
		Scale:  "small",
		Shards: []int{1, 2},
		Ops:    12_000,
		Seed:   3,
	}
}

// TestCompareAllEngines pins the harness shape: every engine label appears
// in the default table, once per shard count.
func TestCompareAllEngines(t *testing.T) {
	out := compareTable(t, compareBase())
	for _, label := range []string{"Nemo", "Log", "Set", "KG", "FW"} {
		if got := strings.Count(out, "\n"+label+" "); got != 2 {
			t.Fatalf("engine %s has %d rows, want one per shard count (2):\n%s", label, got, out)
		}
	}
}

// TestCompareDeterminism is the harness's core guarantee: same seed + trace
// ⇒ byte-identical comparison table no matter how many replay workers run
// or whether the engines replay concurrently, on the unbatched, batched,
// and async paths. The async case covers the four baselines (their SetAsync
// degrades to a deterministic synchronous Set); Nemo's background flusher
// timing is real concurrency and shifts SG fill rates, so async Nemo is
// exact only per run, not across schedules.
func TestCompareDeterminism(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*CompareConfig)
	}{
		{"unbatched", func(c *CompareConfig) {}},
		{"batched", func(c *CompareConfig) { c.Batch = 32 }},
		{"batched-parallel-engines", func(c *CompareConfig) { c.Batch = 32; c.Parallel = true }},
		{"async-baselines", func(c *CompareConfig) {
			c.Async = true
			c.Engines = []string{"log", "set", "kg", "fw"}
		}},
		{"async-batched-baselines", func(c *CompareConfig) {
			c.Async = true
			c.Batch = 16
			c.Engines = []string{"log", "set", "kg", "fw"}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mk := func(workers int, parallelFlip bool) string {
				cfg := compareBase()
				tc.mutate(&cfg)
				cfg.Workers = workers
				if parallelFlip {
					cfg.Parallel = !cfg.Parallel
				}
				return compareTable(t, cfg)
			}
			ref := mk(1, false)
			if got := mk(4, false); got != ref {
				t.Fatalf("table diverged across worker counts:\nworkers=1:\n%s\nworkers=4:\n%s", ref, got)
			}
			// The engine-level parallelism flip is a third full sweep; one
			// batched case covers it (the flag only changes scheduling).
			if tc.name == "batched" {
				if got := mk(2, true); got != ref {
					t.Fatalf("table diverged when flipping engine-level parallelism:\nref:\n%s\nflipped:\n%s", ref, got)
				}
			}
		})
	}
}

// TestCompareEngineFilter pins the -engines filter: unknown keys fail, a
// subset runs only that subset, in canonical order.
func TestCompareEngineFilter(t *testing.T) {
	cfg := compareBase()
	cfg.Shards = []int{1}
	cfg.Engines = []string{"bogus"}
	cfg.Out = &bytes.Buffer{}
	if err := RunCompare(cfg); err == nil {
		t.Fatal("RunCompare accepted an unknown engine key")
	}

	cfg = compareBase()
	cfg.Shards = []int{1}
	cfg.Engines = []string{"fw", "log"} // any order in, canonical order out
	out := compareTable(t, cfg)
	logAt := strings.Index(out, "\nLog ")
	fwAt := strings.Index(out, "\nFW ")
	if logAt < 0 || fwAt < 0 || strings.Contains(out, "\nNemo ") || strings.Contains(out, "\nSet ") || strings.Contains(out, "\nKG ") {
		t.Fatalf("filter leaked engines:\n%s", out)
	}
	if logAt > fwAt {
		t.Fatalf("rows not in canonical engine order:\n%s", out)
	}
}

// TestCompareSkipsUndersizedShards pins the deterministic skip rows: shard
// counts that do not divide the zone budget, or leave a shard below an
// engine's structural minimum, print a skip instead of failing the sweep.
func TestCompareSkipsUndersizedShards(t *testing.T) {
	cfg := compareBase()
	cfg.Shards = []int{5, 24}
	out := compareTable(t, cfg)
	if !strings.Contains(out, "skipped: 48 data zones not divisible") {
		t.Fatalf("no divisibility skip for shards=5:\n%s", out)
	}
	// 24 shards → 2 zones per shard: below the hierarchical engines'
	// minimum (HLog + set tier), fine for the flat ones.
	if !strings.Contains(out, "skipped: 2 zones/shard < engine minimum") {
		t.Fatalf("no minimum-size skip for shards=24:\n%s", out)
	}
	if !strings.Contains(out, "\nLog ") {
		t.Fatalf("flat engines should still run at 2 zones/shard:\n%s", out)
	}
}
