package experiments

import (
	"fmt"

	"nemo/internal/cachelib"
	"nemo/internal/core"
	"nemo/internal/device"
	"nemo/internal/trace"
	"nemo/internal/wamodel"
)

func init() {
	register("tab3", "Table 3: Nemo configuration defaults", runTab3)
	register("tab5", "Table 5: characteristics of the (synthesized) Twitter traces", runTab5)
	register("tab6", "Table 6: metadata overhead comparison (bits per object)", runTab6)
	register("sec55", "§5.5: read amplification and memory overhead, Nemo vs FW", runSec55)
	register("appA", "Appendix A: PBFG accuracy vs read-amplification trade-off", runAppA)
}

func runTab3(o Options) error {
	o = o.withDefaults()
	g := geometryFor(o)
	dev := g.newDevice()
	cfg := core.DefaultConfig(dev, maxDataZones(g.Zones, 50))
	fmt.Fprintln(o.Out, "Table 3 — Nemo configuration (paper values in parentheses)")
	fmt.Fprintf(o.Out, "  set size                : %d B (4 KB)\n", dev.PageSize())
	fmt.Fprintf(o.Out, "  sets per SG             : %d (275,712; scaled with zone size)\n", dev.PagesPerZone())
	fmt.Fprintf(o.Out, "  PBFG false-positive rate: %.3f%% (0.1%%)\n", cfg.BloomFPR*100)
	fmt.Fprintf(o.Out, "  #SGs : #index groups    : %d:1 (50:1)\n", cfg.SGsPerIndexGroup)
	fmt.Fprintf(o.Out, "  in-memory SGs           : %d (2)\n", cfg.InMemSGs)
	fmt.Fprintf(o.Out, "  flushing threshold p_th : %d (4,096; count-based, scaled with SG size)\n", cfg.FlushThreshold)
	fmt.Fprintf(o.Out, "  cached PBFG ratio       : %.0f%% (50%%)\n", cfg.CachedPBFGRatio*100)
	fmt.Fprintf(o.Out, "  hotness tracking start  : last %.0f%% of cache (30%%)\n", cfg.HotTrackTailRatio*100)
	fmt.Fprintf(o.Out, "  SG cooling period       : every %.0f%% cache written (10%%)\n", cfg.CoolingWriteRatio*100)
	return nil
}

func runTab5(o Options) error {
	o = o.withDefaults()
	fmt.Fprintln(o.Out, "Table 5 — trace characteristics (value sizes pre-scaled per §5.1)")
	fmt.Fprintf(o.Out, "%-11s %8s %8s %9s %8s\n", "trace", "K-size", "V-size", "obj mean", "Zipf α")
	for _, c := range trace.Clusters {
		fmt.Fprintf(o.Out, "%-11s %7dB %7dB %8dB %8.4f\n",
			c.Name, c.KeySize, c.ValueMean, c.ObjectMean(), c.ZipfAlpha)
	}
	return nil
}

func runTab6(o Options) error {
	o = o.withDefaults()
	fmt.Fprintln(o.Out, "Table 6 — metadata overhead in bits/object (paper: FW 9.9, naive Nemo 30.4, Nemo 8.3)")
	fmt.Fprintf(o.Out, "%-12s %8s %9s %9s %7s %11s %8s\n",
		"design", "log", "set-index", "set-other", "evict", "additional", "total")
	for _, r := range wamodel.Table6(wamodel.DefaultTable6()) {
		fmt.Fprintf(o.Out, "%-12s %8.1f %9.1f %9.1f %7.1f %11.1f %8.1f\n",
			r.Name, r.LogBits, r.SetIndex, r.SetOther, r.EvictBits, r.Additional, r.Total)
	}
	return nil
}

func runSec55(o Options) error {
	o = o.withDefaults()
	g := geometryFor(o)
	fmt.Fprintln(o.Out, "§5.5 — overhead comparison, Nemo vs FW")
	run := func(mk func(device.Device) (cachelib.Engine, error)) (cachelib.Stats, error) {
		dev := g.newDevice()
		e, err := mk(dev)
		if err != nil {
			return cachelib.Stats{}, err
		}
		stream, err := g.workload(o.Seed)
		if err != nil {
			return cachelib.Stats{}, err
		}
		res, err := cachelib.Replay(e, stream, replayCfg(g, o, dev))
		if err != nil {
			return cachelib.Stats{}, err
		}
		return res.Final, nil
	}
	var nemoCache *core.Cache
	nemoStats, err := run(func(d device.Device) (cachelib.Engine, error) {
		c, err := nemoEngine(d, nil)
		nemoCache = c
		return c, err
	})
	if err != nil {
		return err
	}
	fwStats, err := run(func(d device.Device) (cachelib.Engine, error) {
		return fwEngine(d, 0.05, 0.05)
	})
	if err != nil {
		return err
	}
	nr := nemoStats.ReadAmplification()
	fr := fwStats.ReadAmplification()
	fmt.Fprintf(o.Out, "  Nemo flash reads/hit : %8.0f B\n", nr)
	fmt.Fprintf(o.Out, "  FW   flash reads/hit : %8.0f B\n", fr)
	if fr > 0 {
		fmt.Fprintf(o.Out, "  ratio                : %8.2f×  (paper: >3×, hidden by parallel reads)\n", nr/fr)
	}
	m := nemoCache.MemoryOverhead()
	fmt.Fprintf(o.Out, "  Nemo memory model    : bloom %.1f + hot %.1f + buffer %.1f = %.1f bits/obj (paper 8.3)\n",
		m.BloomBitsPerObj, m.HotBitsPerObj, m.BufferBitsPerObj, m.TotalBitsPerObj)
	fmt.Fprintln(o.Out, "  PBFG compute cost    : see BenchmarkPBFGLookup1000 (paper ≈1 µs per 1000 filters)")
	return nil
}

func runAppA(o Options) error {
	o = o.withDefaults()
	cfg := wamodel.PBFGCostConfig{NumSGs: 350, TargetObjsPerSet: 40, PageSize: 4096}
	fmt.Fprintln(o.Out, "Appendix A — expected worst-case flash accesses per lookup (N=350 SGs)")
	fmt.Fprintf(o.Out, "%10s %12s %12s %10s\n", "FPR", "PBFG pages", "object rds", "total")
	for _, fpr := range []float64{0.05, 0.01, 0.005, 0.001, 0.0005, 0.0001} {
		pages, objs, total := wamodel.PBFGCost(cfg, fpr)
		fmt.Fprintf(o.Out, "%9.3f%% %12.0f %12.2f %10.2f\n", fpr*100, pages, objs, total)
	}
	best, cost := wamodel.OptimalFPR(cfg, nil)
	fmt.Fprintf(o.Out, "optimal FPR by Eq. 11: %.3f%% (cost %.2f) — higher accuracy does not pay (paper's 7+1.35 vs 9+1.03)\n",
		best*100, cost)
	return nil
}
