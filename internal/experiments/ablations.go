package experiments

// Ablations beyond the paper's figures, probing the design choices
// DESIGN.md calls out: SG (zone) size, cooling period, Bloom FPR (tying the
// measured system back to the Appendix A model), and writeback under
// different workload skews.

import (
	"fmt"

	"nemo/internal/cachelib"
	"nemo/internal/core"
	"nemo/internal/flashsim"
	"nemo/internal/trace"
	"nemo/internal/vtime"
)

func init() {
	register("abl-sgsize", "Ablation: SG (zone) size vs fill rate, WA, and read amplification", runAblSGSize)
	register("abl-cooling", "Ablation: cooling period vs writeback volume and miss ratio", runAblCooling)
	register("abl-fpr", "Ablation: Bloom FPR vs false-positive reads and index traffic (Appendix A measured)", runAblFPR)
	register("abl-skew", "Ablation: writeback benefit vs workload skew (Zipf α)", runAblSkew)
}

func runAblSGSize(o Options) error {
	o = o.withDefaults()
	g := geometryFor(o)
	fmt.Fprintln(o.Out, "Ablation — SG size (sets per SG) at constant total capacity")
	fmt.Fprintf(o.Out, "%10s %10s %8s %14s\n", "sets/SG", "fill", "WA", "reads/get")
	totalPages := g.PagesPerZone * g.Zones
	for _, ppz := range []int{g.PagesPerZone / 4, g.PagesPerZone / 2, g.PagesPerZone, g.PagesPerZone * 2} {
		if ppz < 8 {
			continue
		}
		zones := totalPages / ppz
		dev := flashsim.New(flashsim.Config{
			PageSize: g.PageSize, PagesPerZone: ppz, Zones: zones,
			Channels: 8, Clock: &vtime.Clock{},
		})
		nemo, err := nemoEngine(dev, nil)
		if err != nil {
			return err
		}
		stream, err := g.workload(o.Seed)
		if err != nil {
			return err
		}
		res, err := cachelib.Replay(nemo, stream, replayCfg(g, o, dev))
		if err != nil {
			return err
		}
		readsPerGet := float64(res.Final.FlashReadOps) / float64(res.Final.Gets)
		fmt.Fprintf(o.Out, "%10d %9.1f%% %8.2f %14.2f\n",
			ppz, nemo.MeanFillRate()*100, nemo.PaperWA(), readsPerGet)
	}
	return nil
}

func runAblCooling(o Options) error {
	o = o.withDefaults()
	g := geometryFor(o)
	fmt.Fprintln(o.Out, "Ablation — cooling period (fraction of capacity written between cooling passes)")
	fmt.Fprintf(o.Out, "%10s %12s %12s %8s\n", "period", "writebacks", "coolings", "miss")
	for _, period := range []float64{0.05, 0.1, 0.25, 0.5, 1.0} {
		dev := g.newDevice()
		nemo, err := nemoEngine(dev, func(cfg *core.Config) {
			cfg.CoolingWriteRatio = period
		})
		if err != nil {
			return err
		}
		stream, err := g.workload(o.Seed)
		if err != nil {
			return err
		}
		res, err := cachelib.Replay(nemo, stream, replayCfg(g, o, dev))
		if err != nil {
			return err
		}
		ex := nemo.Extra()
		fmt.Fprintf(o.Out, "%9.0f%% %12d %12d %7.1f%%\n",
			period*100, ex.WriteBackObjs, ex.CoolingRuns, res.Final.MissRatio()*100)
	}
	return nil
}

func runAblFPR(o Options) error {
	o = o.withDefaults()
	g := geometryFor(o)
	fmt.Fprintln(o.Out, "Ablation — Bloom FPR: measured counterpart of the Appendix A trade-off")
	fmt.Fprintf(o.Out, "%10s %14s %14s %12s\n", "FPR", "fp reads/get", "idx reads/get", "bits/obj")
	for _, fpr := range []float64{0.01, 0.005, 0.001, 0.0005} {
		dev := g.newDevice()
		nemo, err := nemoEngine(dev, func(cfg *core.Config) {
			cfg.BloomFPR = fpr
		})
		if err != nil {
			// Larger filters may overflow the PBFG page at fixed group
			// size; report and continue — that is itself the trade-off.
			fmt.Fprintf(o.Out, "%9.2f%% (skipped: %v)\n", fpr*100, err)
			continue
		}
		stream, err := g.workload(o.Seed)
		if err != nil {
			return err
		}
		res, err := cachelib.Replay(nemo, stream, replayCfg(g, o, dev))
		if err != nil {
			return err
		}
		ex := nemo.Extra()
		fpReads := float64(ex.FalsePositiveReads) / float64(res.Final.Gets)
		lookups, misses, _ := nemo.PBFGStats()
		idxReads := float64(misses) / float64(res.Final.Gets)
		_ = lookups
		fmt.Fprintf(o.Out, "%9.2f%% %14.4f %14.4f %12.1f\n",
			fpr*100, fpReads, idxReads, nemo.MemoryOverhead().BloomBitsPerObj)
	}
	return nil
}

func runAblSkew(o Options) error {
	o = o.withDefaults()
	g := geometryFor(o)
	fmt.Fprintln(o.Out, "Ablation — writeback benefit vs Zipf skew (miss ratio with/without W)")
	fmt.Fprintf(o.Out, "%8s %14s %14s %12s\n", "alpha", "miss (W on)", "miss (W off)", "writebacks")
	for _, alpha := range []float64{1.05, 1.2, 1.4} {
		miss := map[bool]float64{}
		var wbObjs uint64
		for _, wb := range []bool{true, false} {
			dev := g.newDevice()
			nemo, err := nemoEngine(dev, func(cfg *core.Config) {
				cfg.Writeback = wb
			})
			if err != nil {
				return err
			}
			cl := trace.ClusterConfig{
				Name: "skew", KeySize: 24, ValueMean: 250, ValueStd: 100,
				ZipfAlpha: alpha, Seed: o.Seed + int64(alpha*100),
			}
			stream := trace.NewZipf(cl.Scaled(g.capacityBytes() * 14 / 10))
			res, err := cachelib.Replay(nemo, stream, replayCfg(g, o, dev))
			if err != nil {
				return err
			}
			miss[wb] = res.Final.MissRatio()
			if wb {
				wbObjs = nemo.Extra().WriteBackObjs
			}
		}
		fmt.Fprintf(o.Out, "%8.2f %13.1f%% %13.1f%% %12d\n",
			alpha, miss[true]*100, miss[false]*100, wbObjs)
	}
	return nil
}
