package experiments

import (
	"fmt"
	"time"

	"nemo/internal/cachelib"
	"nemo/internal/metrics"
	"nemo/internal/trace"
)

func init() {
	register("fig13", "Figure 13: flash writes per (virtual) minute at steady state", runFig13)
	register("fig14", "Figure 14: WA trends with the number of trace operations", runFig14)
	register("fig15", "Figure 15: p50/p99/p9999 read latency over time, Nemo vs FW", runFig15)
	register("fig16", "Figure 16: miss-ratio trend, Nemo vs FW", runFig16)
}

func runFig13(o Options) error {
	o = o.withDefaults()
	g := geometryFor(o)
	fmt.Fprintln(o.Out, "Figure 13 — flash writes per virtual minute (Nemo: occasional bursts; FW/KG: continuous)")
	es, devs, err := buildEngines(g)
	if err != nil {
		return err
	}
	for i, e := range []cachelib.Engine{es.Nemo, es.FW, es.KG} {
		dev := devs[map[int]int{0: 0, 1: 3, 2: 4}[i]]
		stream, err := g.workload(o.Seed)
		if err != nil {
			return err
		}
		res, err := cachelib.Replay(e, stream, replayCfg(g, o, dev))
		if err != nil {
			return err
		}
		fmt.Fprintf(o.Out, "%s:\n", e.Name())
		var lastBytes uint64
		var lastT time.Duration
		nonzero, intervals := 0, 0
		for _, tp := range res.Timeline {
			db := tp.FlashBytesWritten - lastBytes
			dt := tp.VTime - lastT
			lastBytes, lastT = tp.FlashBytesWritten, tp.VTime
			if dt <= 0 {
				continue
			}
			mbPerMin := float64(db) / (1 << 20) / (float64(dt) / float64(time.Minute))
			intervals++
			if db > 0 {
				nonzero++
			}
			fmt.Fprintf(o.Out, "  t=%8.1fs  %10.1f MB/min\n", tp.VTime.Seconds(), mbPerMin)
		}
		fmt.Fprintf(o.Out, "  active intervals: %d/%d\n", nonzero, intervals)
	}
	return nil
}

func runFig14(o Options) error {
	o = o.withDefaults()
	g := geometryFor(o)
	fmt.Fprintln(o.Out, "Figure 14 — WA vs trace operations")

	// Nemo.
	dev := g.newDevice()
	nemo, err := nemoEngine(dev, nil)
	if err != nil {
		return err
	}
	stream, err := g.workload(o.Seed)
	if err != nil {
		return err
	}
	res, err := cachelib.Replay(nemo, stream, replayCfg(g, o, dev))
	if err != nil {
		return err
	}
	fmt.Fprintln(o.Out, "Nemo:")
	for _, tp := range res.Timeline {
		fmt.Fprintf(o.Out, "  %10d ops  WA=%6.2f\n", tp.Ops, tp.ALWA)
	}

	// FairyWREN variants.
	for _, cfg := range []struct {
		label    string
		logRatio float64
		opRatio  float64
	}{
		{"Log5-OP5", 0.05, 0.05},
		{"Log5-OP50", 0.05, 0.50},
		{"Log20-OP5", 0.20, 0.05},
	} {
		gdev := g.newDevice()
		fw, err := fwEngine(gdev, cfg.logRatio, cfg.opRatio)
		if err != nil {
			return err
		}
		stream, err := g.workload(o.Seed)
		if err != nil {
			return err
		}
		res, err := cachelib.Replay(fw, stream, replayCfg(g, o, gdev))
		if err != nil {
			return err
		}
		fmt.Fprintf(o.Out, "FW %s:\n", cfg.label)
		for _, tp := range res.Timeline {
			fmt.Fprintf(o.Out, "  %10d ops  WA=%6.2f\n", tp.Ops, tp.ALWA)
		}
	}
	return nil
}

func runFig15(o Options) error {
	o = o.withDefaults()
	g := geometryFor(o)
	fmt.Fprintln(o.Out, "Figure 15 — read latency percentiles over time (virtual)")
	for _, which := range []string{"Nemo", "FW"} {
		dev := g.newDevice()
		var e cachelib.Engine
		var err error
		if which == "Nemo" {
			e, err = nemoEngine(dev, nil)
		} else {
			e, err = fwEngine(dev, 0.05, 0.05)
		}
		if err != nil {
			return err
		}
		stream, err := g.workload(o.Seed)
		if err != nil {
			return err
		}
		ops := g.ops(o)
		intervals := 12
		per := ops / intervals
		var req trace.Request
		fmt.Fprintf(o.Out, "%s:\n", which)
		for iv := 0; iv < intervals; iv++ {
			e.ReadLatency().Reset()
			for i := 0; i < per; i++ {
				dev.Clock().Advance(10 * time.Microsecond)
				stream.Next(&req)
				if _, hit := e.Get(req.Key); !hit {
					if err := e.Set(req.Key, req.Value); err != nil {
						return err
					}
				}
			}
			s := e.ReadLatency().Snapshot()
			fmt.Fprintf(o.Out, "  t=%8.1fs  p50=%8s p99=%8s p9999=%8s\n",
				dev.Clock().Now().Seconds(), fmtDur(s.P50), fmtDur(s.P99), fmtDur(s.P9999))
		}
	}
	fmt.Fprintln(o.Out, "(Paper: Nemo's tails stay flat; FW's p99/p9999 fluctuate due to continuous small writes.)")
	return nil
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
}

func runFig16(o Options) error {
	o = o.withDefaults()
	g := geometryFor(o)
	fmt.Fprintln(o.Out, "Figure 16 — miss-ratio trend (windowed)")
	for _, which := range []string{"Nemo", "FW"} {
		dev := g.newDevice()
		var e cachelib.Engine
		var err error
		if which == "Nemo" {
			e, err = nemoEngine(dev, nil)
		} else {
			e, err = fwEngine(dev, 0.05, 0.05)
		}
		if err != nil {
			return err
		}
		stream, err := g.workload(o.Seed)
		if err != nil {
			return err
		}
		res, err := cachelib.Replay(e, stream, replayCfg(g, o, dev))
		if err != nil {
			return err
		}
		fmt.Fprintf(o.Out, "%s: final miss ratio %.1f%%\n", which, res.Final.MissRatio()*100)
		printMissSeries(o, res.Miss)
	}
	return nil
}

func printMissSeries(o Options, s *metrics.Series) {
	step := s.Len() / 16
	if step < 1 {
		step = 1
	}
	for i := 0; i < s.Len(); i += step {
		fmt.Fprintf(o.Out, "  %10.0f ops  miss=%5.1f%%\n", s.X[i], s.Y[i]*100)
	}
}
