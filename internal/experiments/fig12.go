package experiments

import (
	"fmt"

	"nemo/internal/cachelib"
)

func init() {
	register("fig12a", "Figure 12a: steady-state write amplification of the five cache systems", runFig12a)
	register("fig12b", "Figure 12b: Nemo vs FairyWREN variants (OP20, OP50, Log20)", runFig12b)
	register("tab4", "Table 4: experimental parameters of the cache engines", runTab4)
}

func runFig12a(o Options) error {
	o = o.withDefaults()
	g := geometryFor(o)
	es, devs, err := buildEngines(g)
	if err != nil {
		return err
	}
	fmt.Fprintln(o.Out, "Figure 12a — steady-state WA (paper: Nemo 1.56, Log 1.08, FW 15.2, Set 16.31, KG 55.59)")
	fmt.Fprintf(o.Out, "%-6s %10s %10s %12s %10s %12s\n", "engine", "ALWA", "totalWA", "mem b/obj", "miss", "readamp B/hit")

	type row struct {
		e       cachelib.Engine
		dev     int
		memBits float64
		paperWA func(cachelib.Stats) float64
	}
	// Nemo's memory column uses the scale-independent components (Bloom +
	// hotness bits). The index-group buffer is a fixed cost that amortizes
	// to 0.8 bits/obj at paper scale but dominates tiny simulated pools;
	// sec55 prints the full breakdown.
	nemoMem := es.Nemo.MemoryOverhead()
	rows := []row{
		{es.Nemo, 0, nemoMem.BloomBitsPerObj + nemoMem.HotBitsPerObj, func(cachelib.Stats) float64 { return es.Nemo.PaperWA() }},
		{es.Log, 1, es.Log.MemoryBitsPerObject(), nil},
		{es.Set, 2, es.Set.MemoryBitsPerObject(), nil},
		{es.FW, 3, es.FW.MemoryBitsPerObject(), nil},
		{es.KG, 4, es.KG.MemoryBitsPerObject(), nil},
	}
	for _, r := range rows {
		stream, err := g.workload(o.Seed)
		if err != nil {
			return err
		}
		res, err := cachelib.Replay(r.e, stream, replayCfg(g, o, devs[r.dev]))
		if err != nil {
			return fmt.Errorf("%s: %w", r.e.Name(), err)
		}
		st := res.Final
		wa := st.ALWA()
		if r.paperWA != nil {
			wa = r.paperWA(st)
		}
		fmt.Fprintf(o.Out, "%-6s %10.2f %10.2f %12.1f %9.1f%% %12.0f\n",
			r.e.Name(), wa, st.TotalWA(), r.memBits, st.MissRatio()*100, st.ReadAmplification())
	}
	return nil
}

func runFig12b(o Options) error {
	o = o.withDefaults()
	g := geometryFor(o)
	fmt.Fprintln(o.Out, "Figure 12b — Nemo vs FW variants (paper: Nemo 1.56, OP20 9.29, OP50 6.56, Log20 4.12)")

	// Nemo at defaults.
	dev := g.newDevice()
	nemo, err := nemoEngine(dev, nil)
	if err != nil {
		return err
	}
	stream, err := g.workload(o.Seed)
	if err != nil {
		return err
	}
	if _, err := cachelib.Replay(nemo, stream, replayCfg(g, o, dev)); err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "%-10s WA = %6.2f\n", "Nemo", nemo.PaperWA())

	for _, cfg := range []struct {
		label    string
		logRatio float64
		opRatio  float64
	}{
		{"FW-OP20", 0.05, 0.20},
		{"FW-OP50", 0.05, 0.50},
		{"FW-Log20", 0.20, 0.05},
	} {
		fw, err := runFW(o, cfg.logRatio, cfg.opRatio, nil)
		if err != nil {
			return err
		}
		fmt.Fprintf(o.Out, "%-10s WA = %6.2f  (p=%.2f)\n", cfg.label, fw.Stats().ALWA(), fw.Migration().PassiveFraction())
	}
	return nil
}

func runTab4(o Options) error {
	o = o.withDefaults()
	g := geometryFor(o)
	cap := float64(g.capacityBytes()) / (1 << 20)
	fmt.Fprintln(o.Out, "Table 4 — experimental parameters (scaled; ratios match the paper)")
	fmt.Fprintf(o.Out, "%-10s %12s %10s %10s %10s\n", "param", "Nemo", "Log", "Set", "FW/KG")
	fmt.Fprintf(o.Out, "%-10s %10.0fMB %8.0fMB %8.0fMB %8.0fMB\n", "flash", cap, cap, cap, cap)
	fmt.Fprintf(o.Out, "%-10s %12s %10s %10s %10s\n", "OP", "<1%", "<1%", "50%", "5%")
	fmt.Fprintf(o.Out, "%-10s %12s %10s %10s %10s\n", "log share", "0%", "100%", "0%", "5%")
	fmt.Fprintf(o.Out, "%-10s %12s %10s %10s %10s\n", "set share", "100%", "0%", "100%", "95%")
	return nil
}
