// Package experiments regenerates every table and figure in the paper's
// evaluation (§5) plus the §3.2 motivation measurements and the Appendix A
// model. Each experiment is registered by the paper's artifact ID (fig4,
// fig12a, tab6, ...) and prints the same rows or series the paper reports.
//
// All experiments run against the scaled-down simulated device documented
// in EXPERIMENTS.md; the geometry ratios (log share, OP ratio, sets per SG
// relative to pool size) match Table 4, which §3.2 shows is what determines
// write amplification.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"nemo/internal/cachelib"
	"nemo/internal/core"
	"nemo/internal/device"
	"nemo/internal/fairywren"
	"nemo/internal/flashsim"
	"nemo/internal/kangaroo"
	"nemo/internal/logcache"
	"nemo/internal/setcache"
	"nemo/internal/trace"
	"nemo/internal/vtime"
)

// Options controls an experiment run.
type Options struct {
	// Scale selects the device/workload size: "small" (CI and benchmarks),
	// "medium" (default for cmd/nemobench), or "large".
	Scale string
	// Ops overrides the request count (0 = scale default).
	Ops int
	// Seed makes runs reproducible.
	Seed int64
	// Out receives the printed rows (defaults to io.Discard when nil).
	Out io.Writer
}

func (o Options) withDefaults() Options {
	if o.Scale == "" {
		o.Scale = "medium"
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	return o
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) error
}

// Registry lists every experiment in paper order.
var Registry []Experiment

func register(id, title string, run func(Options) error) {
	Registry = append(Registry, Experiment{ID: id, Title: title, Run: run})
}

// ByID returns the registered experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range Registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (see Registry)", id)
}

// geometry describes the scaled device used by an experiment.
type geometry struct {
	PageSize     int
	PagesPerZone int
	Zones        int
	Ops          int
}

func geometryFor(o Options) geometry {
	switch o.Scale {
	case "small":
		return geometry{PageSize: 4096, PagesPerZone: 32, Zones: 56, Ops: 700_000}
	case "large":
		return geometry{PageSize: 4096, PagesPerZone: 256, Zones: 288, Ops: 16_000_000}
	default: // medium
		return geometry{PageSize: 4096, PagesPerZone: 96, Zones: 120, Ops: 5_000_000}
	}
}

func (g geometry) ops(o Options) int {
	if o.Ops > 0 {
		return o.Ops
	}
	return g.Ops
}

func (g geometry) capacityBytes() int64 {
	return int64(g.PageSize) * int64(g.PagesPerZone) * int64(g.Zones)
}

// newDevice builds a device with the experiment geometry and a fresh clock.
func (g geometry) newDevice() device.Device {
	return flashsim.New(flashsim.Config{
		PageSize:     g.PageSize,
		PagesPerZone: g.PagesPerZone,
		Zones:        g.Zones,
		Channels:     8,
		Clock:        &vtime.Clock{},
	})
}

// workload builds the paper's default benchmark: the four Table 5 clusters
// interleaved, scaled so the total working set is ~3× device capacity.
// (The paper's WSS is ≈0.9× its 360 GB device, but its runs are weeks long;
// at simulation scale the extra pressure reaches steady-state eviction
// within the configured op budgets — §5.1's first trace criterion.)
func (g geometry) workload(seed int64) (trace.Stream, error) {
	wssPerCluster := g.capacityBytes() * 3 / 4
	return trace.DefaultInterleaved(wssPerCluster, seed)
}

// nemoEngine builds Nemo at Table 4's ratios: the whole device minus the
// index pool is the SG pool (OP < 1%).
func nemoEngine(dev device.Device, mutate func(*core.Config)) (*core.Cache, error) {
	dataZones := maxDataZones(dev.Zones(), 50)
	cfg := core.DefaultConfig(dev, dataZones)
	if mutate != nil {
		mutate(&cfg)
	}
	return core.New(cfg)
}

// maxDataZones returns the largest SG pool leaving room for the index pool.
func maxDataZones(zones, sgsPerGroup int) int {
	d := zones - 3
	for d > 2 && d+core.IndexZonesFor(d, sgsPerGroup) > zones {
		d--
	}
	return d
}

// fwEngine builds FairyWREN with the given log share and OP ratio.
func fwEngine(dev device.Device, logRatio, opRatio float64) (*fairywren.Cache, error) {
	return fairywren.New(fairywren.Config{Device: dev, LogRatio: logRatio, OPRatio: opRatio})
}

// replayCfg is the common replay configuration.
func replayCfg(g geometry, o Options, dev device.Device) cachelib.ReplayConfig {
	return cachelib.ReplayConfig{
		Ops:          g.ops(o),
		InterArrival: 10 * time.Microsecond,
		Clock:        dev.Clock(),
	}
}

// printCDF renders an IntCDF-style row set.
func printCDF(w io.Writer, label string, cdf []float64) {
	fmt.Fprintf(w, "%-28s", label)
	for i, p := range cdf {
		if i == len(cdf)-1 {
			fmt.Fprintf(w, " %d+:%5.1f%%", i, p*100)
		} else {
			fmt.Fprintf(w, " ≤%d:%5.1f%%", i, p*100)
		}
	}
	fmt.Fprintln(w)
}

func printSeries(w io.Writer, label string, xs, ys []float64, xfmt, yfmt string) {
	fmt.Fprintf(w, "%s\n", label)
	for i := range xs {
		fmt.Fprintf(w, "  "+xfmt+"  "+yfmt+"\n", xs[i], ys[i])
	}
}

// sortedCopy returns a descending copy of xs.
func sortedCopy(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// engineSet builds the five Figure 12a engines on fresh devices.
type engineSet struct {
	Nemo *core.Cache
	Log  *logcache.Cache
	Set  *setcache.Cache
	FW   *fairywren.Cache
	KG   *kangaroo.Cache
}

func buildEngines(g geometry) (engineSet, []device.Device, error) {
	var es engineSet
	var devs []device.Device
	mk := func() device.Device {
		d := g.newDevice()
		devs = append(devs, d)
		return d
	}
	var err error
	if es.Nemo, err = nemoEngine(mk(), nil); err != nil {
		return es, nil, err
	}
	if es.Log, err = logcache.New(logcache.Config{Device: mk()}); err != nil {
		return es, nil, err
	}
	if es.Set, err = setcache.New(setcache.Config{Device: mk(), OPRatio: 0.5}); err != nil {
		return es, nil, err
	}
	if es.FW, err = fwEngine(mk(), 0.05, 0.05); err != nil {
		return es, nil, err
	}
	if es.KG, err = kangaroo.New(kangaroo.Config{Device: mk(), LogRatio: 0.05, OPRatio: 0.05}); err != nil {
		return es, nil, err
	}
	return es, devs, nil
}
