package experiments

import (
	"fmt"

	"nemo/internal/cachelib"
	"nemo/internal/fairywren"
	"nemo/internal/trace"
	"nemo/internal/wamodel"
)

func init() {
	register("fig4", "Figure 4: CDF of newly written objects per set write (passive migration)", runFig4)
	register("fig5", "Figure 5: CDF of passive vs active migration batch sizes", runFig5)
	register("fig6", "Figure 6: passive-migration fraction p vs trace operations by OP ratio", runFig6)
	register("sec32", "§3.2: L2SWA theory vs practice for FairyWREN", runSec32)
}

// runFW replays the standard workload against one FairyWREN configuration,
// invoking phase at every sample point.
func runFW(o Options, logRatio, opRatio float64, phase func(done int, fw *fairywren.Cache)) (*fairywren.Cache, error) {
	g := geometryFor(o)
	dev := g.newDevice()
	fw, err := fwEngine(dev, logRatio, opRatio)
	if err != nil {
		return nil, err
	}
	stream, err := g.workload(o.Seed)
	if err != nil {
		return nil, err
	}
	ops := g.ops(o)
	chunk := ops / 32
	if chunk < 1 {
		chunk = 1
	}
	var req trace.Request
	for done := 0; done < ops; {
		n := chunk
		if done+n > ops {
			n = ops - done
		}
		for i := 0; i < n; i++ {
			stream.Next(&req)
			if _, hit := fw.Get(req.Key); !hit {
				if err := fw.Set(req.Key, req.Value); err != nil {
					return nil, err
				}
			}
		}
		done += n
		if phase != nil {
			phase(done, fw)
		}
	}
	return fw, nil
}

func runFig4(o Options) error {
	o = o.withDefaults()
	fmt.Fprintln(o.Out, "Figure 4 — passive object migration: newly written objects per set write")

	// Log5-OP5 with an early/steady phase split at the first active
	// migration (GC), as in the paper.
	var earlyCDF []float64
	split := false
	fw, err := runFW(o, 0.05, 0.05, func(done int, fw *fairywren.Cache) {
		if !split && fw.Migration().ActiveRMW > 0 {
			earlyCDF = fw.Migration().PassiveCDF.CDF()
			fw.ResetMigrationCDFs()
			split = true
		}
	})
	if err != nil {
		return err
	}
	if earlyCDF != nil {
		printCDF(o.Out, "Log5-OP5 (Early)", earlyCDF)
	} else {
		printCDF(o.Out, "Log5-OP5 (Early=all, no GC)", fw.Migration().PassiveCDF.CDF())
	}
	printCDF(o.Out, "Log5-OP5 (Steady)", fw.Migration().PassiveCDF.CDF())

	for _, cfg := range []struct {
		label    string
		logRatio float64
		opRatio  float64
	}{
		{"Log20-OP5", 0.20, 0.05},
		{"Log5-OP50", 0.05, 0.50},
	} {
		fw, err := runFW(o, cfg.logRatio, cfg.opRatio, nil)
		if err != nil {
			return err
		}
		printCDF(o.Out, cfg.label, fw.Migration().PassiveCDF.CDF())
		fmt.Fprintf(o.Out, "%-28s mean batch = %.2f objects\n", "", fw.Migration().PassiveCDF.Mean())
	}
	return nil
}

func runFig5(o Options) error {
	o = o.withDefaults()
	fmt.Fprintln(o.Out, "Figure 5 — passive vs active migration batch-size CDFs")
	for _, cfg := range []struct {
		label    string
		logRatio float64
	}{
		{"Log5-OP5", 0.05},
		{"Log10-OP5", 0.10},
	} {
		fw, err := runFW(o, cfg.logRatio, 0.05, nil)
		if err != nil {
			return err
		}
		mig := fw.Migration()
		printCDF(o.Out, cfg.label+" (Passive)", mig.PassiveCDF.CDF())
		printCDF(o.Out, cfg.label+" (Active)", mig.ActiveCDF.CDF())
		fmt.Fprintf(o.Out, "%-28s passive mean %.2f, active mean %.2f (Observation 3: ≈2× gap)\n",
			"", mig.PassiveCDF.Mean(), mig.ActiveCDF.Mean())
	}
	return nil
}

func runFig6(o Options) error {
	o = o.withDefaults()
	fmt.Fprintln(o.Out, "Figure 6 — passive-migration fraction p vs trace operations")
	for _, op := range []float64{0.05, 0.20, 0.35, 0.50} {
		var xs, ys []float64
		var lastP, lastA uint64
		_, err := runFW(o, 0.05, op, func(done int, fw *fairywren.Cache) {
			mig := fw.Migration()
			dp := mig.PassiveRMW - lastP
			da := mig.ActiveRMW - lastA
			lastP, lastA = mig.PassiveRMW, mig.ActiveRMW
			p := 1.0
			if dp+da > 0 {
				p = float64(dp) / float64(dp+da)
			}
			xs = append(xs, float64(done))
			ys = append(ys, p*100)
		})
		if err != nil {
			return err
		}
		printSeries(o.Out, fmt.Sprintf("Log5-OP%d (p %%):", int(op*100)), xs, ys, "%12.0f ops", "p=%6.1f%%")
	}
	fmt.Fprintln(o.Out, "Observation 4: p rises with the OP ratio (active migration vanishes at high OP)")
	return nil
}

func runSec32(o Options) error {
	o = o.withDefaults()
	g := geometryFor(o)
	fw, err := runFW(o, 0.05, 0.05, nil)
	if err != nil {
		return err
	}
	mig := fw.Migration()
	st := fw.Stats()

	// Model the same configuration with Eq. 6–8.
	setPages := g.Zones*g.PagesPerZone - fw.LogPages()
	avgObj := avgObjectBytes(st)
	model := wamodel.HierarchicalConfig{
		PageSize:        g.PageSize,
		ObjSize:         avgObj,
		LogPages:        fw.LogPages(),
		SetPages:        setPages,
		OPRatio:         0.05,
		HotColdDivision: true,
	}
	p := mig.PassiveFraction()
	measuredL2P := float64(g.PageSize) / (mig.PassiveCDF.Mean() * avgObj)

	fmt.Fprintln(o.Out, "§3.2 theory vs practice (FairyWREN, Log5-OP5)")
	fmt.Fprintf(o.Out, "  E(L_i) theory        : %8.2f objects\n", model.ExpectedListLen())
	fmt.Fprintf(o.Out, "  mean passive batch   : %8.2f objects (measured)\n", mig.PassiveCDF.Mean())
	fmt.Fprintf(o.Out, "  L2SWA(P) theory      : %8.2f\n", model.L2SWAPassive())
	fmt.Fprintf(o.Out, "  L2SWA(P) measured    : %8.2f\n", measuredL2P)
	fmt.Fprintf(o.Out, "  p (passive fraction) : %8.2f\n", p)
	fmt.Fprintf(o.Out, "  total WA theory      : %8.2f  (Eq. 1 with p)\n", model.TotalWA(1.0, p))
	fmt.Fprintf(o.Out, "  total WA measured    : %8.2f\n", st.ALWA())
	return nil
}

func avgObjectBytes(st cachelib.Stats) float64 {
	if st.Sets == 0 {
		return 246
	}
	return float64(st.LogicalBytes) / float64(st.Sets)
}
