package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func smallOpts(buf *bytes.Buffer) Options {
	return Options{Scale: "small", Seed: 1, Out: buf, Ops: 60_000}
}

func TestRegistryComplete(t *testing.T) {
	// Every paper artifact must be registered.
	want := []string{
		"fig4", "fig5", "fig6", "fig8",
		"fig12a", "fig12b", "fig13", "fig14", "fig15", "fig16",
		"fig17", "fig18", "fig19a", "fig19b",
		"tab3", "tab4", "tab5", "tab6",
		"sec32", "sec55", "appA",
	}
	for _, id := range want {
		if _, err := ByID(id); err != nil {
			t.Errorf("missing experiment %s", id)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown ID accepted")
	}
}

func TestRegistryIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Registry {
		if seen[e.ID] {
			t.Errorf("duplicate experiment ID %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
}

// TestCheapExperimentsRun executes the model/table experiments end to end.
func TestCheapExperimentsRun(t *testing.T) {
	for _, id := range []string{"tab3", "tab4", "tab5", "tab6", "appA"} {
		var buf bytes.Buffer
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Run(smallOpts(&buf)); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s produced no output", id)
		}
	}
}

func TestTab6OutputMatchesPaperNumbers(t *testing.T) {
	var buf bytes.Buffer
	e, _ := ByID("tab6")
	if err := e.Run(smallOpts(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"FairyWREN", "Nemo", "8.3", "9.9"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tab6 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig8Runs(t *testing.T) {
	var buf bytes.Buffer
	e, _ := ByID("fig8")
	if err := e.Run(smallOpts(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "set size 4096") {
		t.Fatalf("fig8 output unexpected:\n%s", buf.String())
	}
}

func TestFig17Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("replay experiment")
	}
	var buf bytes.Buffer
	e, _ := ByID("fig17")
	if err := e.Run(smallOpts(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, label := range []string{"naive", "B+P+W"} {
		if !strings.Contains(out, label) {
			t.Fatalf("fig17 output missing %q:\n%s", label, out)
		}
	}
}

func TestFig19bRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("replay experiment")
	}
	var buf bytes.Buffer
	e, _ := ByID("fig19b")
	if err := e.Run(smallOpts(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "DRAM PBFG") {
		t.Fatalf("fig19b output unexpected:\n%s", buf.String())
	}
}

func TestFig12aRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("five-engine replay")
	}
	var buf bytes.Buffer
	e, _ := ByID("fig12a")
	if err := e.Run(smallOpts(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"Nemo", "Log", "Set", "FW", "KG"} {
		if !strings.Contains(out, name) {
			t.Fatalf("fig12a missing engine %s:\n%s", name, out)
		}
	}
}

func TestGeometryScales(t *testing.T) {
	small := geometryFor(Options{Scale: "small"})
	med := geometryFor(Options{Scale: "medium"})
	large := geometryFor(Options{Scale: "large"})
	if !(small.capacityBytes() < med.capacityBytes() && med.capacityBytes() < large.capacityBytes()) {
		t.Fatal("scales not monotone")
	}
	if g := geometryFor(Options{Scale: "medium", Ops: 123}); g.ops(Options{Ops: 123}) != 123 {
		t.Fatal("ops override ignored")
	}
}

func TestMaxDataZonesLeavesIndexRoom(t *testing.T) {
	for _, zones := range []int{16, 56, 120, 288} {
		d := maxDataZones(zones, 50)
		if d < 2 {
			t.Fatalf("zones=%d: no data zones", zones)
		}
		idx := d + indexZonesForTest(d)
		if idx > zones {
			t.Fatalf("zones=%d: data %d + index overflows device", zones, d)
		}
	}
}

func indexZonesForTest(d int) int {
	return (d+49)/50 + 2
}
