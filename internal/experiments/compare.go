package experiments

// The production-scale comparison harness behind `nemobench -compare`: one
// materialized mixed GET/SET/DELETE trace replayed through all five cache
// engines — Nemo behind its native core.Sharded facade, the four baselines
// behind the generic cachelib.ShardedEngine — at each requested shard
// count. This is the Figure 12/15 comparison grown to production shape:
// the paper compares the engines single-threaded, and PR 1 gave only Nemo
// the sharded/concurrent treatment; here every engine runs behind the same
// hash-lane partitioning (the shared cachelib shard plan), over the same
// per-shard zone slicing of equal total capacity, driven by the same
// deterministic parallel replayer. Hit ratio and write amplification are
// therefore apples-to-apples at every shard count, and the wall-clock
// columns measure each design's actual concurrent scalability.
//
// Determinism: with HostTime=false the emitted table contains only
// scheduling-independent columns, and is byte-identical across worker
// counts and Parallel settings for every synchronous and batched
// configuration (pinned by TestCompareDeterminism). The async pipeline is
// deterministic for the baselines (their SetAsync degrades to a
// synchronous Set) but not for Nemo, whose background flusher timing
// shifts SG fill rates — async determinism tests therefore exclude Nemo.

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"nemo/internal/backend"
	"nemo/internal/cachelib"
	"nemo/internal/core"
	"nemo/internal/device"
	"nemo/internal/fairywren"
	"nemo/internal/kangaroo"
	"nemo/internal/logcache"
	"nemo/internal/setcache"
	"nemo/internal/trace"
)

// CompareConfig controls a RunCompare run.
type CompareConfig struct {
	// Scale selects the device/workload preset: "small" (CI), "medium"
	// (default), or "large".
	Scale string
	// Shards lists the shard counts to sweep (default 1, 2, 4).
	Shards []int
	// Workers is the replay goroutine count (0 = one per shard).
	Workers int
	// Ops overrides the request count (0 = scale default).
	Ops int
	// Seed makes the generated trace reproducible.
	Seed int64
	// Batch drives the Engine v2 batched surface with per-shard batches of
	// this size (<=1 = unbatched).
	Batch int
	// Async routes fills through SetAsync; Flushers sizes Nemo's background
	// flusher pool (baselines degrade to synchronous Sets).
	Async    bool
	Flushers int
	// SetFrac / DelFrac rewrite that fraction of the trace into explicit
	// SET / DELETE operations (the default 0.1/0.02 mirror a production
	// read-heavy mix; set negative to force a pure-GET trace).
	SetFrac float64
	DelFrac float64
	// Engines filters which engines run (keys: nemo, log, set, kg, fw;
	// nil = all five).
	Engines []string
	// Parallel replays the engines of one shard count concurrently, each
	// on its own device (rows still print in canonical engine order).
	// Wall-clock columns then measure contended throughput.
	Parallel bool
	// HostTime includes the wall-clock columns (ops/s, setp50, setp99).
	// Disable it to get a byte-deterministic table.
	HostTime bool
	// Device selects the backend engines run on (the zero value is the
	// flashsim simulator; backend.File for a file-backed device). With
	// HostTime=false the table is byte-identical across backends — the
	// cross-backend equivalence pin.
	Device backend.Spec
	// Out receives the table (io.Discard when nil).
	Out io.Writer
}

func (o CompareConfig) withDefaults() CompareConfig {
	if o.Scale == "" {
		o.Scale = "medium"
	}
	if len(o.Shards) == 0 {
		o.Shards = []int{1, 2, 4}
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	if o.Flushers <= 0 {
		o.Flushers = 2
	}
	if o.SetFrac == 0 {
		o.SetFrac = 0.1
	}
	if o.DelFrac == 0 {
		o.DelFrac = 0.02
	}
	if o.SetFrac < 0 {
		o.SetFrac = 0
	}
	if o.DelFrac < 0 {
		o.DelFrac = 0
	}
	return o
}

// compareGeometry is the device preset of one scale. DataZones is the total
// cache capacity in zones, held constant across shard counts so the quality
// columns stay comparable; only the partitioning changes.
type compareGeometry struct {
	PageSize     int
	PagesPerZone int
	DataZones    int
	Ops          int
}

func compareGeometryFor(scale string) compareGeometry {
	switch scale {
	case "small":
		return compareGeometry{PageSize: 4096, PagesPerZone: 32, DataZones: 48, Ops: 100_000}
	case "large":
		return compareGeometry{PageSize: 4096, PagesPerZone: 128, DataZones: 96, Ops: 2_000_000}
	default: // medium
		return compareGeometry{PageSize: 4096, PagesPerZone: 64, DataZones: 48, Ops: 400_000}
	}
}

func (g compareGeometry) capacityBytes() int64 {
	return int64(g.PageSize) * int64(g.PagesPerZone) * int64(g.DataZones)
}

// openFn builds a device of the run's geometry with the given zone count on
// the selected backend. Each engine's build calls it exactly once; the
// harness (not the engine) closes what it opened.
type openFn func(zones int) (device.Device, error)

// compareEngine is one comparison column: a canonical key, the structural
// minimum per-shard zone budget the design needs to run (hierarchical
// engines need an HLog plus a set tier per shard), and a builder producing
// the sharded engine on a fresh device. Shard counts below an engine's
// minimum print a deterministic "skipped" row instead of failing the sweep.
type compareEngine struct {
	key         string // lowercase selector for the -engines filter
	name        string // the engine's display label (matches Engine.Name())
	minPerShard int
	build       func(g compareGeometry, open openFn, n int, async bool, flushers int) (cachelib.Engine, error)
}

var compareEngines = []compareEngine{
	{
		key: "nemo", name: "Nemo", minPerShard: 2,
		build: func(g compareGeometry, open openFn, n int, async bool, flushers int) (cachelib.Engine, error) {
			perData := g.DataZones / n
			perIdx := core.IndexZonesFor(perData, core.DefaultSGsPerIndexGroup)
			dev, err := open(n * (perData + perIdx))
			if err != nil {
				return nil, err
			}
			cfg := core.DefaultConfig(dev, g.DataZones)
			cfg.Shards = n
			if async {
				cfg.Flushers = flushers
			}
			return core.NewSharded(cfg)
		},
	},
	{
		key: "log", name: "Log", minPerShard: 2,
		build: func(g compareGeometry, open openFn, n int, async bool, flushers int) (cachelib.Engine, error) {
			dev, err := open(g.DataZones)
			if err != nil {
				return nil, err
			}
			return logcache.NewSharded(logcache.Config{Device: dev}, n)
		},
	},
	{
		key: "set", name: "Set", minPerShard: 4, // FTL free-zone reserve + 2
		build: func(g compareGeometry, open openFn, n int, async bool, flushers int) (cachelib.Engine, error) {
			dev, err := open(g.DataZones)
			if err != nil {
				return nil, err
			}
			return setcache.NewSharded(setcache.Config{Device: dev, OPRatio: 0.5}, n)
		},
	},
	{
		key: "kg", name: "KG", minPerShard: 6,
		build: func(g compareGeometry, open openFn, n int, async bool, flushers int) (cachelib.Engine, error) {
			dev, err := open(g.DataZones)
			if err != nil {
				return nil, err
			}
			return kangaroo.NewSharded(kangaroo.Config{Device: dev, LogRatio: 0.05, OPRatio: 0.05}, n)
		},
	},
	{
		// FairyWREN's folded GC needs real headroom beyond the structural
		// HLog+set-tier minimum: below ~12 zones the tier runs nearly 100%
		// live and reclaim loses ground to its own relocations (the gc
		// progress guard then errors out the run).
		key: "fw", name: "FW", minPerShard: 12,
		build: func(g compareGeometry, open openFn, n int, async bool, flushers int) (cachelib.Engine, error) {
			dev, err := open(g.DataZones)
			if err != nil {
				return nil, err
			}
			return fairywren.NewSharded(fairywren.Config{Device: dev, LogRatio: 0.05, OPRatio: 0.05}, n)
		},
	},
}

// selectEngines resolves the Engines filter against the registry, in
// canonical order.
func selectEngines(keys []string) ([]compareEngine, error) {
	if len(keys) == 0 {
		return compareEngines, nil
	}
	want := map[string]bool{}
	for _, k := range keys {
		want[strings.ToLower(strings.TrimSpace(k))] = true
	}
	var out []compareEngine
	for _, e := range compareEngines {
		if want[e.key] {
			out = append(out, e)
			delete(want, e.key)
		}
	}
	if len(want) > 0 {
		unknown := make([]string, 0, len(want))
		for k := range want {
			unknown = append(unknown, k)
		}
		sort.Strings(unknown)
		return nil, fmt.Errorf("experiments: unknown engines %v (known: nemo, log, set, kg, fw)", unknown)
	}
	return out, nil
}

// CompareTrace materializes the comparison workload for a scale: the four
// Table 5 clusters interleaved at ~3× cache capacity, with the configured
// fraction rewritten into explicit SETs and DELETEs.
func CompareTrace(o CompareConfig) ([]trace.Request, error) {
	o = o.withDefaults()
	g := compareGeometryFor(o.Scale)
	if o.Ops <= 0 {
		o.Ops = g.Ops
	}
	stream, err := trace.DefaultInterleaved(g.capacityBytes()*3/4, o.Seed)
	if err != nil {
		return nil, err
	}
	var mixed trace.Stream = stream
	if o.SetFrac > 0 || o.DelFrac > 0 {
		mixed, err = trace.NewMixed(stream, o.SetFrac, o.DelFrac, o.Seed)
		if err != nil {
			return nil, err
		}
	}
	return trace.Materialize(mixed, o.Ops), nil
}

// RunCompare replays one materialized trace through every selected sharded
// engine at every requested shard count and prints the comparison table.
func RunCompare(o CompareConfig) error {
	o = o.withDefaults()
	g := compareGeometryFor(o.Scale)
	engines, err := selectEngines(o.Engines)
	if err != nil {
		return err
	}
	reqs, err := CompareTrace(o)
	if err != nil {
		return err
	}

	// The worker count changes only scheduling, never a statistic (the
	// replayer's per-shard sequencing guarantee), so it appears with the
	// other host-time context rather than in the deterministic rows.
	title := fmt.Sprintf("Cross-engine comparison — %d ops (%.0f%% SET, %.0f%% DEL), %d data zones, batch=%d, async=%v",
		len(reqs), o.SetFrac*100, o.DelFrac*100, g.DataZones, o.Batch, o.Async)
	if o.HostTime {
		if o.Workers > 0 {
			title += fmt.Sprintf(", workers=%d", o.Workers)
		} else {
			title += ", workers=per-shard"
		}
	}
	fmt.Fprintln(o.Out, title)
	header := fmt.Sprintf("%-6s %-7s %-6s %-7s %-8s %-8s %-6s %-6s", "engine", "shards", "batch", "hit%", "ALWA", "totalWA", "rderr", "wrerr")
	if o.HostTime {
		header += fmt.Sprintf(" %-12s %-10s %-10s", "ops/s", "setp50", "setp99")
	}
	fmt.Fprintln(o.Out, header)

	for _, n := range o.Shards {
		if n < 1 || g.DataZones%n != 0 {
			fmt.Fprintf(o.Out, "%-6s %-7d skipped: %d data zones not divisible\n", "all", n, g.DataZones)
			continue
		}
		rows := make([]string, len(engines))
		errs := make([]error, len(engines))
		var wg sync.WaitGroup
		for i, e := range engines {
			run := func(i int, e compareEngine) {
				rows[i], errs[i] = o.runOne(g, e, n, reqs)
			}
			if !o.Parallel {
				run(i, e)
				continue
			}
			wg.Add(1)
			go func(i int, e compareEngine) {
				defer wg.Done()
				run(i, e)
			}(i, e)
		}
		wg.Wait()
		for i := range rows {
			if errs[i] != nil {
				return fmt.Errorf("%s shards=%d: %w", engines[i].key, n, errs[i])
			}
			fmt.Fprintln(o.Out, rows[i])
		}
	}
	return nil
}

// runOne builds one sharded engine, replays the shared trace, and formats
// its table row.
func (o CompareConfig) runOne(g compareGeometry, e compareEngine, n int, reqs []trace.Request) (string, error) {
	if per := g.DataZones / n; per < e.minPerShard {
		return fmt.Sprintf("%-6s %-7d skipped: %d zones/shard < engine minimum %d",
			e.name, n, per, e.minPerShard), nil
	}
	// Engines never close their device; the harness closes (and, for
	// file-backed devices, removes) whatever the build opened — after the
	// engine is closed, so no I/O outlives its device.
	var devs []device.Device
	defer func() {
		for _, d := range devs {
			d.Close()
		}
	}()
	open := func(zones int) (device.Device, error) {
		d, err := o.Device.Open(device.Geometry{
			PageSize:     g.PageSize,
			PagesPerZone: g.PagesPerZone,
			Zones:        zones,
		})
		if err != nil {
			return nil, err
		}
		devs = append(devs, d)
		return d, nil
	}
	eng, err := e.build(g, open, n, o.Async, o.Flushers)
	if err != nil {
		return "", err
	}
	res, err := cachelib.ParallelReplay(eng, reqs, cachelib.ParallelReplayConfig{
		Workers:   o.Workers,
		BatchSize: o.Batch,
		AsyncSets: o.Async,
	})
	if err != nil {
		eng.Close()
		return "", err
	}
	if err := eng.Close(); err != nil {
		return "", fmt.Errorf("close: %w", err)
	}
	st := res.Final
	row := fmt.Sprintf("%-6s %-7d %-6d %-7.2f %-8.3f %-8.3f %-6d %-6d",
		eng.Name(), res.Shards, o.Batch,
		(1-st.MissRatio())*100, st.ALWA(), st.TotalWA(), st.ReadErrors, st.WriteErrors)
	if o.HostTime {
		row += fmt.Sprintf(" %-12.0f %-10v %-10v", res.OpsPerSec, res.SetLatency.P50, res.SetLatency.P99)
	}
	return row, nil
}
