package experiments

import (
	"fmt"
	"sort"

	"nemo/internal/cachelib"
	"nemo/internal/core"
	"nemo/internal/hashing"
	"nemo/internal/trace"
)

func init() {
	register("fig17", "Figure 17: 'perfect' SG fill-rate breakdown (naive/B/P/B+P/B+P+W)", runFig17)
	register("fig18", "Figure 18: flush-threshold (p_th) sweep — new objects per SG and WA", runFig18)
	register("fig19a", "Figure 19a: set access distribution (requests served by top-accessed sets)", runFig19a)
	register("fig19b", "Figure 19b: PBFG miss ratio vs in-memory PBFG proportion", runFig19b)
}

// sgHeavyGeometry uses SGs with many sets. The short-term hash skew that
// motivates techniques B/P/W (Challenge 1, Figure 8) grows with the number
// of sets per SG — the paper's SGs hold 275,712 sets — so the fill-rate
// breakdown and p_th sweep run on fewer, larger SGs than the default
// geometry.
func sgHeavyGeometry(o Options) geometry {
	switch o.Scale {
	case "small":
		return geometry{PageSize: 4096, PagesPerZone: 512, Zones: 12, Ops: 2_000_000}
	case "large":
		return geometry{PageSize: 4096, PagesPerZone: 4096, Zones: 24, Ops: 16_000_000}
	default:
		return geometry{PageSize: 4096, PagesPerZone: 2048, Zones: 16, Ops: 8_000_000}
	}
}

func runFig17(o Options) error {
	o = o.withDefaults()
	g := sgHeavyGeometry(o)
	fmt.Fprintln(o.Out, "Figure 17 — mean SG fill rate by technique (paper: 6.78 / 31.32 / 36.77 / 64.13 / 89.34 %)")
	variants := []struct {
		label   string
		b, p, w bool
	}{
		{"naive", false, false, false},
		{"B", true, false, false},
		{"P", false, true, false},
		{"B+P", true, true, false},
		{"B+P+W", true, true, true},
	}
	for _, v := range variants {
		dev := g.newDevice()
		nemo, err := nemoEngine(dev, func(cfg *core.Config) {
			cfg.BufferedSGs = v.b
			cfg.DelayedFlush = v.p
			cfg.Writeback = v.w
		})
		if err != nil {
			return err
		}
		stream, err := g.workload(o.Seed)
		if err != nil {
			return err
		}
		if _, err := cachelib.Replay(nemo, stream, replayCfg(g, o, dev)); err != nil {
			return err
		}
		fmt.Fprintf(o.Out, "%-8s fill=%6.2f%%  WA=%6.2f  (SGs flushed: %d)\n",
			v.label, nemo.MeanFillRate()*100, nemo.PaperWA(), nemo.Extra().SGsFlushed)
	}
	return nil
}

func runFig18(o Options) error {
	o = o.withDefaults()
	g := sgHeavyGeometry(o)
	fmt.Fprintln(o.Out, "Figure 18 — p_th (sacrificed-object threshold) sweep")
	fmt.Fprintf(o.Out, "%8s %12s %12s %10s %12s\n", "p_th", "1st-SG objs", "2nd-SG objs", "WA", "sacrificed")
	for _, pth := range []int{1, 4, 16, 64, 256, 1024, 4096} {
		dev := g.newDevice()
		nemo, err := nemoEngine(dev, func(cfg *core.Config) {
			cfg.FlushThreshold = pth
		})
		if err != nil {
			return err
		}
		stream, err := g.workload(o.Seed)
		if err != nil {
			return err
		}
		if _, err := cachelib.Replay(nemo, stream, replayCfg(g, o, dev)); err != nil {
			return err
		}
		log := nemo.FlushLog()
		first, second := 0, 0
		if len(log) > 0 {
			first = log[0].NewObjs
		}
		if len(log) > 1 {
			second = log[1].NewObjs
		}
		fmt.Fprintf(o.Out, "%8d %12d %12d %10.2f %12d\n",
			pth, first, second, nemo.PaperWA(), nemo.Extra().Sacrificed)
	}
	fmt.Fprintln(o.Out, "(Paper: new objects rise and WA falls with p_th, with diminishing returns.)")
	return nil
}

func runFig19a(o Options) error {
	o = o.withDefaults()
	g := geometryFor(o)
	fmt.Fprintln(o.Out, "Figure 19a — requests served by the top-accessed intra-SG offsets")
	numSets := g.PagesPerZone // sets per SG
	ops := g.ops(o)
	tops := []float64{0.2, 0.3, 0.4, 0.5, 0.6}
	fmt.Fprintf(o.Out, "%-10s", "cluster")
	for _, tp := range tops {
		fmt.Fprintf(o.Out, "  top%2.0f%%", tp*100)
	}
	fmt.Fprintln(o.Out)
	for _, cl := range trace.Clusters {
		cfg := cl.Scaled(g.capacityBytes() / 2)
		cfg.Seed += o.Seed * 7
		s := trace.NewZipf(cfg)
		counts := make([]int64, numSets)
		var req trace.Request
		var total int64
		for i := 0; i < ops; i++ {
			s.Next(&req)
			fp := hashing.Fingerprint(req.Key)
			counts[hashing.Derive(fp, 0)%uint64(numSets)]++
			total++
		}
		sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
		fmt.Fprintf(o.Out, "%-10s", cl.Name)
		for _, tp := range tops {
			n := int(tp * float64(numSets))
			var served int64
			for i := 0; i < n; i++ {
				served += counts[i]
			}
			fmt.Fprintf(o.Out, "  %5.1f%%", float64(served)/float64(total)*100)
		}
		fmt.Fprintln(o.Out)
	}
	fmt.Fprintln(o.Out, "(Paper: ≈70% of accesses concentrate in the top 30% of sets.)")
	return nil
}

func runFig19b(o Options) error {
	o = o.withDefaults()
	g := geometryFor(o)
	fmt.Fprintln(o.Out, "Figure 19b — PBFG miss ratio vs DRAM PBFG proportion (paper: <8% at 50%)")
	for _, ratio := range []float64{0.2, 0.3, 0.4, 0.5, 0.6} {
		dev := g.newDevice()
		nemo, err := nemoEngine(dev, func(cfg *core.Config) {
			cfg.CachedPBFGRatio = ratio
		})
		if err != nil {
			return err
		}
		stream, err := g.workload(o.Seed)
		if err != nil {
			return err
		}
		if _, err := cachelib.Replay(nemo, stream, replayCfg(g, o, dev)); err != nil {
			return err
		}
		lookups, misses, missRatio := nemo.PBFGStats()
		fmt.Fprintf(o.Out, "  DRAM PBFG %3.0f%%: miss ratio %6.2f%%  (%d/%d)\n",
			ratio*100, missRatio*100, misses, lookups)
	}
	return nil
}
