package experiments

import (
	"fmt"

	"nemo/internal/hashing"
	"nemo/internal/metrics"
	"nemo/internal/setblock"
	"nemo/internal/trace"
)

func init() {
	register("fig8", "Figure 8: short-term hashed-key distribution skew (fill rate of remaining sets when the first set fills)", runFig8)
}

// firstFillSkew inserts objects from the stream into an SG of numSets sets
// of setSize bytes until any set would overflow, then returns the fill
// rates of all *other* sets — the Challenge 1 measurement.
func firstFillSkew(s trace.Stream, numSets, setSize int) []float64 {
	fill := make([]int, numSets)
	var req trace.Request
	budget := setSize - setblock.HeaderSize
	for {
		s.Next(&req)
		need := setblock.EntrySize(len(req.Key), len(req.Value))
		fp := hashing.Fingerprint(req.Key)
		o := int(hashing.Derive(fp, 0) % uint64(numSets))
		if fill[o]+need > budget {
			rates := make([]float64, 0, numSets-1)
			for i, f := range fill {
				if i == o {
					continue
				}
				rates = append(rates, float64(f)/float64(budget))
			}
			return rates
		}
		fill[o] += need
	}
}

func runFig8(o Options) error {
	o = o.withDefaults()
	fmt.Fprintln(o.Out, "Figure 8 — fill rate of remaining sets when the first set fills")
	thresholds := []float64{0.25, 0.50, 0.75, 1.0}

	// SG sizes scaled from the paper's 64 MB–4096 MB: the governing ratio
	// is the number of sets per SG.
	sgSets := map[string]int{
		"64MB-equiv":   2048,
		"256MB-equiv":  8192,
		"1024MB-equiv": 32768,
		"4096MB-equiv": 131072,
	}
	if o.Scale == "small" {
		sgSets = map[string]int{
			"64MB-equiv":  512,
			"256MB-equiv": 2048,
		}
	}
	for _, setSize := range []int{4096, 8192} {
		fmt.Fprintf(o.Out, "-- set size %d B --\n", setSize)
		for _, name := range []string{"64MB-equiv", "256MB-equiv", "1024MB-equiv", "4096MB-equiv"} {
			n, ok := sgSets[name]
			if !ok {
				continue
			}
			// Synthetic: normal(250, 200), as in the paper.
			syn := trace.NewSyntheticInserts(16, 250, 200, o.Seed+1)
			synRates := firstFillSkew(syn, n, setSize)
			synCDF := metrics.FillRateCDF(synRates, thresholds)
			// "Real-world": the Zipf cluster mix (unique-insert view via
			// high key-space so near-unique draws).
			zw, err := trace.DefaultInterleaved(int64(n)*int64(setSize)*4, o.Seed+2)
			if err != nil {
				return err
			}
			realRates := firstFillSkew(zw, n, setSize)
			realCDF := metrics.FillRateCDF(realRates, thresholds)
			fmt.Fprintf(o.Out, "%-14s sets=%-7d synthetic: ≤25%%:%5.1f%% ≤50%%:%5.1f%% ≤75%%:%5.1f%%   real: ≤25%%:%5.1f%% ≤50%%:%5.1f%% ≤75%%:%5.1f%%  (mean fill syn %.1f%% real %.1f%%)\n",
				name, n,
				synCDF[0]*100, synCDF[1]*100, synCDF[2]*100,
				realCDF[0]*100, realCDF[1]*100, realCDF[2]*100,
				metrics.Mean(synRates)*100, metrics.Mean(realRates)*100)
		}
	}
	fmt.Fprintln(o.Out, "(Paper: with 4 KB sets the remaining sets are typically below 25% full — naïve flush wastes capacity.)")
	return nil
}
