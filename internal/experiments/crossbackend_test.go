package experiments

// Cross-backend equivalence: the engines are deterministic functions of the
// trace and the device *geometry* — never of the device *implementation*.
// Replaying the same materialized mixed trace on the simulator and on the
// file-backed device must produce byte-identical quality metrics (hit ratio,
// ALWA, total WA, evictions) for every engine. This is the pin that lets
// `-device=file:` results be compared against the simulator baselines: only
// the timing columns may differ.

import (
	"bytes"
	"testing"

	"nemo/internal/backend"
)

// runCompareTable renders the -notime compare table for one backend.
func runCompareTable(t *testing.T, spec backend.Spec) string {
	t.Helper()
	var buf bytes.Buffer
	err := RunCompare(CompareConfig{
		Scale:    "small",
		Shards:   []int{1, 2},
		Ops:      30_000,
		Seed:     7,
		SetFrac:  0.1,
		DelFrac:  0.02,
		HostTime: false, // quality columns only: the deterministic table
		Device:   spec,
		Out:      &buf,
	})
	if err != nil {
		t.Fatalf("%v: %v", spec, err)
	}
	return buf.String()
}

// TestCompareTableIdenticalAcrossBackends replays the full five-engine
// comparison on both backends and requires byte-identical -notime tables.
func TestCompareTableIdenticalAcrossBackends(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-backend replay is a long test")
	}
	sim := runCompareTable(t, backend.Sim())
	file := runCompareTable(t, backend.File(t.TempDir()+"/nemo.img"))
	if sim != file {
		t.Fatalf("quality table differs across backends\n--- sim ---\n%s\n--- file ---\n%s", sim, file)
	}
	if sim == "" {
		t.Fatal("empty compare table")
	}
}

// TestCompareTableIdenticalAcrossBackendsAsync repeats the pin down the
// async flush pipeline (SetAsync + flusher pool): background flushing must
// not let the device implementation leak into the quality metrics either.
func TestCompareTableIdenticalAcrossBackendsAsync(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-backend replay is a long test")
	}
	run := func(spec backend.Spec) string {
		var buf bytes.Buffer
		err := RunCompare(CompareConfig{
			Scale:    "small",
			Shards:   []int{2},
			Ops:      20_000,
			Seed:     11,
			Async:    true,
			Flushers: 2,
			SetFrac:  0.1,
			DelFrac:  0.02,
			Engines:  []string{"nemo", "log"},
			HostTime: false,
			Device:   spec,
			Out:      &buf,
		})
		if err != nil {
			t.Fatalf("%v: %v", spec, err)
		}
		return buf.String()
	}
	sim := run(backend.Sim())
	file := run(backend.File(t.TempDir() + "/nemo.img"))
	if sim != file {
		t.Fatalf("async quality table differs across backends\n--- sim ---\n%s\n--- file ---\n%s", sim, file)
	}
}
