// Package setbench is the shared write-path benchmark harness behind
// `nemobench -setbench` (the BENCH_set.json CI baseline) and the write-path
// perf tests. Like its read-side sibling internal/getbench, it keeps the
// geometry, key shape, and access pattern in one place so every measurement
// of the three-phase flush pipeline (core/writepath.go) stays comparable:
// the sync rows pay whole-SG flushes inline on the inserting goroutine,
// while the async rows hand them to the background flusher pool, whose
// build-phase I/O now runs off the shard lock entirely — the p99 gap
// between the two modes is the pipeline's win.
package setbench

import (
	"fmt"
	"sync"
	"time"

	"nemo/internal/backend"
	"nemo/internal/core"
	"nemo/internal/device"
	"nemo/internal/metrics"
)

// Zones is the benchmark's total SG pool — the same -replay/-getbench
// geometry, held constant across shard counts; pagesPerZone and pageSize
// fix the device so the key-space sizing below is a compile-time shape.
const (
	Zones        = 48
	pagesPerZone = 64
	pageSize     = 4096
)

// keyFactor sizes the key space so its total bytes are a small multiple of
// pool capacity: a measured walk overflows every shard's in-memory SGs and
// cycles the on-flash pool, so flush, group sealing, AND eviction run
// continuously at every shard count (at high shard counts a small key
// space would fit entirely in the per-shard memq and never flush).
const keyFactor = 3

// Result is one measured configuration.
type Result struct {
	Sets       int           // write calls issued
	Elapsed    time.Duration // host wall clock for the measured loop
	SetsPerSec float64
	P50, P99   time.Duration // per-call Set latency percentiles (host time)
	ALWA       float64       // application-level write amplification
	WriteErrs  uint64        // flush-pipeline device failures (expect 0)
}

// Build constructs a sharded cache on a fresh device of the given backend,
// with a flusher pool of the given size (0 = synchronous flushes only).
// Each measured configuration gets its own cache so every row shares the
// same cold-start-to-steady-state shape. The caller closes the returned
// device after the cache (engines never close their device).
func Build(spec backend.Spec, shards, flushers int) (*core.Sharded, device.Device, error) {
	return BuildOn(spec, shards, flushers, "")
}

// BuildOn is Build with a warm-restart snapshot path: when snapshotPath is
// non-empty the cache adopts the snapshot at that path when it matches the
// device (query RestoreOutcome on the returned cache) and Close checkpoints
// back to it. The benchmarks reopen in-process on the same still-open device
// — Reopen — so both backends restore warm; cross-process warm restart (a
// persistently opened file device) is nemoserve's job.
func BuildOn(spec backend.Spec, shards, flushers int, snapshotPath string) (*core.Sharded, device.Device, error) {
	perData := Zones / shards
	perIdx := core.IndexZonesFor(perData, core.DefaultSGsPerIndexGroup)
	g := device.Geometry{PageSize: pageSize, PagesPerZone: pagesPerZone, Zones: shards * (perData + perIdx)}
	dev, err := spec.Open(g)
	if err != nil {
		return nil, nil, err
	}
	cache, err := core.NewSharded(cfg(dev, shards, flushers, snapshotPath))
	if err != nil {
		dev.Close()
		return nil, nil, err
	}
	return cache, dev, nil
}

// Reopen builds a fresh sharded cache on an already-open device with the
// same configuration BuildOn used, attempting a warm restore from
// snapshotPath — the restart half of the kill-and-restore benchmark rows.
func Reopen(dev device.Device, shards, flushers int, snapshotPath string) (*core.Sharded, error) {
	return core.NewSharded(cfg(dev, shards, flushers, snapshotPath))
}

func cfg(dev device.Device, shards, flushers int, snapshotPath string) core.Config {
	c := core.DefaultConfig(dev, Zones)
	c.Shards = shards
	c.Flushers = flushers
	c.SnapshotPath = snapshotPath
	return c
}

// Workload returns the prebuilt key and value sets (so measurement loops
// charge no fmt allocations to the Set path), shared across every cache a
// sweep builds.
func Workload() (keys, vals [][]byte) {
	const poolBytes = Zones * pagesPerZone * pageSize
	n := keyFactor * poolBytes / valueSize
	keys = make([][]byte, n)
	vals = make([][]byte, n)
	for i := 0; i < n; i++ {
		keys[i] = Key(i)
		vals[i] = Value(i)
	}
	return keys, vals
}

// Key returns the deterministic benchmark key for index i.
func Key(i int) []byte {
	return []byte(fmt.Sprintf("sb-key-%08d-padpadpad", i))
}

// valueSize is the object payload size — the paper's tiny-object regime
// (~250 B), and the denominator of the key-space sizing above.
const valueSize = 250

// Value returns the deterministic benchmark value for index i.
func Value(i int) []byte {
	v := make([]byte, valueSize)
	n := copy(v, fmt.Sprintf("sb-value-%08d-", i))
	for j := n; j < valueSize; j++ {
		v[j] = byte('a' + (i+j)%26)
	}
	return v
}

// Run issues ops SETs spread over goroutines, timing every engine call.
// Each goroutine walks its own disjoint block of the key space (distinct
// goroutines must write distinct keys — overlapping walks would coalesce
// as in-memory overwrites and starve the flush pipeline the benchmark
// exists to measure), wrapping into overwrite churn only once its block is
// exhausted. async routes the writes through SetAsync; the run is drained
// before statistics are sampled either way, so ALWA reflects every
// deferred flush.
func Run(cache *core.Sharded, keys, vals [][]byte, goroutines, ops int, async bool) (Result, error) {
	per := ops / goroutines
	if per < 1 {
		per = 1
	}
	write := cache.Set
	if async {
		write = cache.SetAsync
	}
	hists := make([]metrics.Histogram, goroutines)
	errs := make([]error, goroutines)
	before := cache.Stats()
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := &hists[g]
			lo := g * len(keys) / goroutines
			span := (g+1)*len(keys)/goroutines - lo
			for i := 0; i < per; i++ {
				k := lo + i%span
				t0 := time.Now()
				err := write(keys[k], vals[k])
				h.Record(time.Since(t0))
				if err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := cache.Drain(); err != nil {
		return Result{}, err
	}
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	var merged metrics.Histogram
	for g := range hists {
		merged.Merge(&hists[g])
	}
	snap := merged.Snapshot()
	after := cache.Stats()
	delta := after
	delta.LogicalBytes -= before.LogicalBytes
	delta.FlashBytesWritten -= before.FlashBytesWritten
	res := Result{
		Sets:      int(merged.Count()),
		Elapsed:   elapsed,
		P50:       snap.P50,
		P99:       snap.P99,
		ALWA:      delta.ALWA(),
		WriteErrs: after.WriteErrors - before.WriteErrors,
	}
	if elapsed > 0 {
		res.SetsPerSec = float64(res.Sets) / elapsed.Seconds()
	}
	return res, nil
}
