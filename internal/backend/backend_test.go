package backend

import (
	"os"
	"path/filepath"
	"testing"

	"nemo/internal/device"
	"nemo/internal/filedev"
	"nemo/internal/flashsim"
)

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"", "sim", true},
		{"sim", "sim", true},
		{"file:/tmp/x.img", "file:/tmp/x.img", true},
		{"file:", "", false},
		{"disk", "", false},
		{"FILE:/tmp/x", "", false},
	}
	for _, c := range cases {
		spec, err := Parse(c.in)
		if c.ok != (err == nil) {
			t.Fatalf("Parse(%q): err = %v, want ok=%v", c.in, err, c.ok)
		}
		if err == nil && spec.String() != c.want {
			t.Fatalf("Parse(%q).String() = %q, want %q", c.in, spec.String(), c.want)
		}
	}
}

func TestZeroValueSpecIsSim(t *testing.T) {
	var spec Spec
	if spec.IsFile() {
		t.Fatal("zero-value Spec claims to be file-backed")
	}
	if spec.String() != "sim" {
		t.Fatalf("zero-value String() = %q, want sim", spec.String())
	}
	d, err := spec.Open(device.Geometry{PageSize: 512, PagesPerZone: 4, Zones: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, ok := d.(*flashsim.Device); !ok {
		t.Fatalf("zero-value Spec opened %T, want *flashsim.Device", d)
	}
}

func TestFileOpensGetUniquePaths(t *testing.T) {
	base := filepath.Join(t.TempDir(), "nemo.img")
	spec := File(base)
	g := device.Geometry{PageSize: 512, PagesPerZone: 4, Zones: 4}

	var devs []device.Device
	want := []string{base, base + ".1", base + ".2"}
	for i, path := range want {
		d, err := spec.Open(g)
		if err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
		devs = append(devs, d)
		fd, ok := d.(*filedev.Device)
		if !ok {
			t.Fatalf("open %d: got %T, want *filedev.Device", i, d)
		}
		if fd.Path() != path {
			t.Fatalf("open %d: image at %q, want %q", i, fd.Path(), path)
		}
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("open %d: image missing: %v", i, err)
		}
	}
	// Spec.Open sets RemoveOnClose: closing cleans every image up.
	for i, d := range devs {
		if err := d.Close(); err != nil {
			t.Fatalf("close %d: %v", i, err)
		}
	}
	for _, path := range want {
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("image %q survived close: %v", path, err)
		}
	}
}

func TestOpenGeometryPassthrough(t *testing.T) {
	g := device.Geometry{PageSize: 512, PagesPerZone: 8, Zones: 6, MaxOpenZones: 2}
	for _, spec := range []Spec{Sim(), File(filepath.Join(t.TempDir(), "g.img"))} {
		d, err := spec.Open(g)
		if err != nil {
			t.Fatalf("%v: %v", spec, err)
		}
		if d.PageSize() != g.PageSize || d.PagesPerZone() != g.PagesPerZone ||
			d.Zones() != g.Zones || d.MaxOpenZones() != g.MaxOpenZones {
			t.Fatalf("%v: geometry %d/%d/%d/%d does not match %+v",
				spec, d.PageSize(), d.PagesPerZone(), d.Zones(), d.MaxOpenZones(), g)
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
