// Package backend turns a -device command-line spec into zoned devices. It
// is the one place that knows both implementations of the internal/device
// contract — the flashsim simulator and the file-backed filedev — so the
// bench harnesses, the compare harness, and both binaries can accept
// `-device=sim` or `-device=file:<path>` uniformly and record which backend
// produced each BENCH_*.json row.
package backend

import (
	"fmt"
	"strings"
	"sync/atomic"

	"nemo/internal/device"
	"nemo/internal/filedev"
	"nemo/internal/flashsim"
)

// Spec is a parsed -device value: which backend to open devices on, and
// (for file) where to put the images. The zero value is the simulator. One
// Spec can open many devices — the compare and bench harnesses build a
// fresh device per engine per shard count — and file-backed opens derive a
// unique image path per device so they never collide.
type Spec struct {
	kind string // "sim" or "file"
	path string // image path for "file"

	opens *atomic.Int64 // per-Spec open counter for unique image paths
}

// Parse interprets a -device flag value: "sim" (or empty) for the
// simulator, "file:<path>" for the file-backed device.
func Parse(s string) (Spec, error) {
	switch {
	case s == "" || s == "sim":
		return Spec{kind: "sim", opens: new(atomic.Int64)}, nil
	case strings.HasPrefix(s, "file:"):
		path := strings.TrimPrefix(s, "file:")
		if path == "" {
			return Spec{}, fmt.Errorf("backend: file device needs a path, e.g. -device=file:/tmp/nemo.img")
		}
		return Spec{kind: "file", path: path, opens: new(atomic.Int64)}, nil
	default:
		return Spec{}, fmt.Errorf("backend: unknown device spec %q (want sim or file:<path>)", s)
	}
}

// Sim returns the simulator spec (what Parse("sim") returns).
func Sim() Spec { return Spec{kind: "sim", opens: new(atomic.Int64)} }

// File returns a file-backed spec rooted at path.
func File(path string) Spec {
	return Spec{kind: "file", path: path, opens: new(atomic.Int64)}
}

// String renders the spec back to flag form — the value recorded in the
// BENCH_*.json device field.
func (s Spec) String() string {
	if s.IsFile() {
		return "file:" + s.path
	}
	return "sim"
}

// IsFile reports whether the spec opens file-backed devices.
func (s Spec) IsFile() bool { return s.kind == "file" }

// Open builds a device with the given geometry on the spec's backend.
// Simulator devices use a fresh virtual clock and the simulator's default
// latency model. File devices are opened RemoveOnClose — images carry no
// durable state (filedev reformats on open), so whoever opened the device
// cleans its image up on Close. The first file open uses the spec path
// itself; later opens suffix .1, .2, … so multi-device harnesses get
// distinct images.
func (s Spec) Open(g device.Geometry) (device.Device, error) {
	if s.opens == nil { // zero-value Spec: the simulator
		s.opens = new(atomic.Int64)
	}
	n := s.opens.Add(1) - 1
	if !s.IsFile() {
		return flashsim.New(flashsim.Config{
			PageSize:     g.PageSize,
			PagesPerZone: g.PagesPerZone,
			Zones:        g.Zones,
			MaxOpenZones: g.MaxOpenZones,
		}), nil
	}
	path := s.path
	if n > 0 {
		path = fmt.Sprintf("%s.%d", s.path, n)
	}
	return filedev.Open(filedev.Config{
		Path:          path,
		PageSize:      g.PageSize,
		PagesPerZone:  g.PagesPerZone,
		Zones:         g.Zones,
		MaxOpenZones:  g.MaxOpenZones,
		RemoveOnClose: true,
	})
}

// OpenPersistent builds a device meant to outlive the process — the warm-
// restart configuration. File devices are opened with Persist set (write
// pointers and the generation stamp survive a clean Close in the image's
// superblock) and are kept on Close. The simulator has no backing store, so
// a sim spec degrades to a plain volatile Open: a fresh device whose
// generation never matches an earlier snapshot, making every restart cold —
// the correct, safe behaviour, not an error.
func (s Spec) OpenPersistent(g device.Geometry) (device.Device, error) {
	if !s.IsFile() {
		return s.Open(g)
	}
	if s.opens == nil {
		s.opens = new(atomic.Int64)
	}
	n := s.opens.Add(1) - 1
	path := s.path
	if n > 0 {
		path = fmt.Sprintf("%s.%d", s.path, n)
	}
	return filedev.Open(filedev.Config{
		Path:         path,
		PageSize:     g.PageSize,
		PagesPerZone: g.PagesPerZone,
		Zones:        g.Zones,
		MaxOpenZones: g.MaxOpenZones,
		Persist:      true,
	})
}
