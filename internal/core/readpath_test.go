package core

// Tests for the concurrent three-phase read path (readpath.go): allocation
// regression pins, device-fault accounting, batched/serial statistical
// parity, the pbfgCache group index, and a race stress of concurrent GETs
// against SET/DELETE/flush on one shard.

import (
	"fmt"
	"sync"
	"testing"

	"nemo/internal/device"
	"nemo/internal/devtest"
	"nemo/internal/flashsim"
)

// readPathConfig builds a small cache whose index groups actually seal, so
// the PBFG fetch/index-cache path is exercised (property-test geometry).
func readPathConfig(t testing.TB, cachedRatio float64) (*flashsim.Device, *Cache) {
	t.Helper()
	dev := flashsim.New(flashsim.Config{PageSize: 512, PagesPerZone: 8, Zones: 16})
	return dev, readPathCacheOn(t, dev, cachedRatio)
}

// readPathConfigOn is readPathConfig on an arbitrary device backend, for
// the fault tests that must hold on every implementation of the contract.
func readPathConfigOn(t *testing.T, b devtest.Backend, cachedRatio float64) (device.Device, *Cache) {
	t.Helper()
	dev := b.New(t, device.Geometry{PageSize: 512, PagesPerZone: 8, Zones: 16})
	return dev, readPathCacheOn(t, dev, cachedRatio)
}

func readPathCacheOn(t testing.TB, dev device.Device, cachedRatio float64) *Cache {
	t.Helper()
	cfg := DefaultConfig(dev, 8)
	cfg.SGsPerIndexGroup = 2
	cfg.TargetObjsPerSet = 8
	cfg.FlushThreshold = 4
	cfg.CachedPBFGRatio = cachedRatio
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func rpKey(i int) []byte   { return []byte(fmt.Sprintf("rp-key-%06d-pad", i)) }
func rpValue(i int) []byte { return []byte(fmt.Sprintf("rp-value-%06d-padpadpad", i)) }

// fillReadPath inserts n keys and returns them; enough to seal index groups
// without evicting the oldest SGs.
func fillReadPath(t testing.TB, c *Cache, n int) [][]byte {
	t.Helper()
	keys := make([][]byte, n)
	for i := 0; i < n; i++ {
		keys[i] = rpKey(i)
		if err := c.Set(keys[i], rpValue(i)); err != nil {
			t.Fatal(err)
		}
	}
	return keys
}

// TestGetAllocationsSteadyState pins the read path's allocation budget:
// one allocation per hit (the returned value copy — in-memory and on-flash
// alike) and zero per clean miss. Everything else the hot path needs
// (probe sets, snapshot arenas, candidate read buffers) lives in the
// cache's sync.Pool scratch.
func TestGetAllocationsSteadyState(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race instrumentation allocates; the pin runs in the non-race CI lane")
	}
	_, c := readPathConfig(t, 1.0)
	keys := fillReadPath(t, c, 300)

	// A key the memq no longer holds (keys are inserted once, so an early
	// insert that still hits must be serving from flash). Sacrifice and
	// eviction may have dropped individual early keys; scan for a survivor.
	var flashKey []byte
	for _, k := range keys[:150] {
		if _, hit := c.Get(k); hit {
			flashKey = k
			break
		}
	}
	if flashKey == nil {
		t.Fatal("no early key survived to flash; shrink the fill")
	}
	// A key still buffered in memory: the memq-hit path.
	memKey := keys[len(keys)-1]
	if _, hit := c.Get(memKey); !hit {
		t.Fatal("freshly inserted key missing")
	}
	// A key never inserted: the clean-miss path (Bloom negatives, or at
	// worst a false-positive candidate read into a pooled buffer).
	missKey := []byte("rp-never-set-key-padpad")
	if _, hit := c.Get(missKey); hit {
		t.Skip("improbable: miss key false-hit")
	}

	if got := testing.AllocsPerRun(200, func() { c.Get(flashKey) }); got > 1 {
		t.Errorf("flash hit allocates %.1f times, want ≤ 1 (the value copy)", got)
	}
	if got := testing.AllocsPerRun(200, func() { c.Get(memKey) }); got > 1 {
		t.Errorf("memory hit allocates %.1f times, want ≤ 1 (the value copy)", got)
	}
	if got := testing.AllocsPerRun(200, func() { c.Get(missKey) }); got > 0 {
		t.Errorf("clean miss allocates %.1f times, want 0", got)
	}
}

// TestGetManyMatchesSerialGets pins the batched three-phase lookup against
// the one-key-at-a-time path: on an identical op sequence (including
// sealed groups, index-cache misses, dead-group drops, and within-batch
// PBFG sharing), every counter — cachelib.Stats and the index-cache
// lookup/miss pair — must match the serial execution exactly. The parity
// holds whenever the index cache is not evicting mid-batch (the shipped
// 0.5 cached ratio at production scale); under deliberate capacity
// pressure the batch's page sharing may save refetches the serial path
// repaid, which only lowers read traffic.
func TestGetManyMatchesSerialGets(t *testing.T) {
	_, serial := readPathConfig(t, 1.0)
	_, batched := readPathConfig(t, 1.0)

	const n, rounds, batch = 400, 6, 7
	for r := 0; r < rounds; r++ {
		for i := 0; i < n; i++ {
			k, v := rpKey(i), rpValue(i)
			if err := serial.Set(k, v); err != nil {
				t.Fatal(err)
			}
			if err := batched.Set(k, v); err != nil {
				t.Fatal(err)
			}
		}
		for lo := 0; lo < n; lo += batch {
			hi := lo + batch
			if hi > n {
				hi = n
			}
			var keys [][]byte
			for i := lo; i < hi; i++ {
				keys = append(keys, rpKey(i))
			}
			var serialVals [][]byte
			var serialHits []bool
			for _, k := range keys {
				v, ok := serial.Get(k)
				serialVals, serialHits = append(serialVals, v), append(serialHits, ok)
			}
			vals, hits := batched.GetMany(keys)
			for j := range keys {
				if hits[j] != serialHits[j] || string(vals[j]) != string(serialVals[j]) {
					t.Fatalf("round %d key %q: batched (%q,%v) != serial (%q,%v)",
						r, keys[j], vals[j], hits[j], serialVals[j], serialHits[j])
				}
			}
		}
	}
	if got, want := batched.Stats(), serial.Stats(); got != want {
		t.Fatalf("batched stats diverged:\nbatched: %+v\nserial:  %+v", got, want)
	}
	gl, gm, _ := batched.PBFGStats()
	wl, wm, _ := serial.PBFGStats()
	if gl != wl || gm != wm {
		t.Fatalf("index-cache traffic diverged: batched %d/%d, serial %d/%d", gl, gm, wl, wm)
	}
}

// TestGetReadErrorsCounted pins the fix for silently swallowed device read
// errors: a failed GET-path read still degrades to a miss, but every
// failure lands in Stats.ReadErrors — for single Gets and batched GetMany
// alike — and the counter stops moving once the device recovers.
func TestGetReadErrorsCounted(t *testing.T) {
	devtest.Run(t, func(t *testing.T, b devtest.Backend) {
		dev, c := readPathConfigOn(t, b, 0.25) // small index cache: PBFG fetches stay live
		keys := fillReadPath(t, c, 300)

		// Early inserts that still hit are serving from flash (each key is set
		// exactly once, so nothing old can sit in the memq).
		var flashKeys [][]byte
		for _, k := range keys[:150] {
			if _, hit := c.Get(k); hit {
				flashKeys = append(flashKeys, k)
			}
			if len(flashKeys) == 64 {
				break
			}
		}
		if len(flashKeys) < 16 {
			t.Fatalf("only %d flash-resident keys survived the fill", len(flashKeys))
		}
		base := c.Stats()
		if base.ReadErrors != 0 {
			t.Fatalf("read errors before faults: %d", base.ReadErrors)
		}

		half := len(flashKeys) / 2
		dev.SetReadFault(func(page int) error { return fmt.Errorf("injected ECC error") })
		for _, k := range flashKeys[:half] {
			if _, hit := c.Get(k); hit {
				t.Fatal("hit despite total read failure")
			}
		}
		vals, hits := c.GetMany(flashKeys[half:])
		for i := range hits {
			if hits[i] || vals[i] != nil {
				t.Fatal("batched hit despite total read failure")
			}
		}
		faulted := c.Stats()
		if faulted.ReadErrors < uint64(len(flashKeys)) {
			t.Fatalf("ReadErrors = %d after %d failed lookups", faulted.ReadErrors, len(flashKeys))
		}

		dev.SetReadFault(nil)
		hitsAfter := 0
		for _, k := range flashKeys {
			if _, hit := c.Get(k); hit {
				hitsAfter++
			}
		}
		if hitsAfter == 0 {
			t.Fatal("cache did not recover after faults cleared")
		}
		if got := c.Stats().ReadErrors; got != faulted.ReadErrors {
			t.Fatalf("ReadErrors moved without faults: %d -> %d", faulted.ReadErrors, got)
		}
	})
}

// TestConcurrentGetStress races optimistic three-phase GETs (single and
// batched) against SET/DELETE/flush churn on one shard. Every Set writes
// the key-deterministic value, so any hit must return exactly that value —
// torn reads of a recycled zone must never surface (the epoch validation's
// whole job). Run under -race this also proves the unlocked phase touches
// only immutable state.
func TestConcurrentGetStress(t *testing.T) {
	_, c := readPathConfig(t, 0.5)
	const keySpace = 500

	var wg sync.WaitGroup
	fail := make(chan string, 16)
	// Writers: continuous Set churn (inline flushes + evictions) plus
	// deletions.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8000; i++ {
				id := (i*7 + w*13) % keySpace
				if err := c.Set(rpKey(id), rpValue(id)); err != nil {
					fail <- fmt.Sprintf("set: %v", err)
					return
				}
				if i%97 == 0 {
					if err := c.Delete(rpKey((id + 1) % keySpace)); err != nil {
						fail <- fmt.Sprintf("delete: %v", err)
						return
					}
				}
			}
		}(w)
	}
	// Readers: single Gets and batched GetMany over the same key space.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var batch [][]byte
			for i := 0; i < 12000; i++ {
				id := (i*11 + g*29) % keySpace
				if v, hit := c.Get(rpKey(id)); hit && string(v) != string(rpValue(id)) {
					fail <- fmt.Sprintf("corrupt hit for key %d: %q", id, v)
					return
				}
				if i%33 == 0 {
					batch = batch[:0]
					for j := 0; j < 8; j++ {
						batch = append(batch, rpKey((id+j)%keySpace))
					}
					vals, hits := c.GetMany(batch)
					for j := range batch {
						if hits[j] && string(vals[j]) != string(rpValue((id+j)%keySpace)) {
							fail <- fmt.Sprintf("corrupt batched hit for key %d: %q", (id+j)%keySpace, vals[j])
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
	st := c.Stats()
	if st.Hits == 0 || st.Evictions == 0 {
		t.Fatalf("stress proved nothing: %+v", st)
	}
}

// TestPBFGCacheDropGroupIndexed pins the per-group page index: dropGroup
// removes exactly the dead group's pages in O(pages-in-group), leaves live
// groups untouched, and the stranded queue entries are compacted away once
// they dominate.
func TestPBFGCacheDropGroupIndexed(t *testing.T) {
	pc := newPBFGCache(256, 8, 100)
	for g := 0; g < 2; g++ {
		for s := 0; s < 100; s++ {
			pc.put(pbfgKey{group: g, set: s}, []byte{byte(g), byte(s)})
		}
	}
	if pc.count != 200 || pc.queued[0] != 100 || pc.queued[1] != 100 {
		t.Fatalf("setup: %d pages, queued %d/%d", pc.count, pc.queued[0], pc.queued[1])
	}

	pc.dropGroup(0)
	if _, ok := pc.queued[0]; ok {
		t.Fatal("dropGroup left the group's queue accounting behind")
	}
	for s := 0; s < 100; s++ {
		if pc.has(pbfgKey{group: 0, set: s}) {
			t.Fatalf("dead page (0,%d) survived dropGroup", s)
		}
		if !pc.has(pbfgKey{group: 1, set: s}) {
			t.Fatalf("live page (1,%d) lost by dropGroup", s)
		}
	}
	// 100 dead entries vs 100 live: not yet dominant, queue keeps them.
	if pc.stale == 0 {
		t.Fatal("no stale accounting after dropGroup")
	}

	pc.dropGroup(1)
	// Now every entry is dead and stale ≥ 64: the queue must compact.
	if got := len(pc.queue) - pc.head; got != 0 {
		t.Fatalf("queue holds %d entries after all groups died", got)
	}
	if pc.stale != 0 || pc.count != 0 {
		t.Fatalf("compaction left stale=%d pages=%d", pc.stale, pc.count)
	}

	// Re-put for a new group still works and evicts in FIFO order.
	small := newPBFGCache(2, 8, 2)
	small.put(pbfgKey{group: 5, set: 0}, []byte{1})
	small.put(pbfgKey{group: 5, set: 1}, []byte{2})
	small.put(pbfgKey{group: 6, set: 0}, []byte{3})
	if small.has(pbfgKey{group: 5, set: 0}) {
		t.Fatal("FIFO eviction skipped the oldest page")
	}
	if !small.has(pbfgKey{group: 5, set: 1}) || !small.has(pbfgKey{group: 6, set: 0}) {
		t.Fatal("eviction dropped the wrong page")
	}
	if small.queued[5] != 1 {
		t.Fatalf("queue accounting not maintained through eviction: %v", small.queued)
	}
}

// TestGetEpochConflictFallsBack forces the optimistic path to conflict by
// flushing between a planned GET's phases — simulated here by hammering
// Gets from one goroutine while another goroutine flushes the front SG in
// a tight loop. The lookup must stay correct (never corrupt, never stuck).
func TestGetEpochConflictFallsBack(t *testing.T) {
	_, c := readPathConfig(t, 0.5)
	fillReadPath(t, c, 300)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Sets keep rotating SGs through flush + eviction, moving the
			// epoch under in-flight readers.
			id := 1000 + i%300
			if err := c.Set(rpKey(id), rpValue(id)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 20000; i++ {
		id := i % 1300
		if v, hit := c.Get(rpKey(id)); hit && string(v) != string(rpValue(id)) {
			t.Fatalf("corrupt value for key %d under epoch churn: %q", id, v)
		}
	}
	close(stop)
	wg.Wait()
}
