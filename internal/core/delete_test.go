package core

import (
	"fmt"
	"testing"

	"nemo/internal/flashsim"
	"nemo/internal/hashing"
)

// TestDeleteInMemory covers the simple case: no flash copies, deletion
// removes the buffered object outright (no tombstone needed).
func TestDeleteInMemory(t *testing.T) {
	c := testCache(t, nil)
	k, v := kv(1)
	if err := c.Set(k, v); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(k); err != nil {
		t.Fatal(err)
	}
	if _, hit := c.Get(k); hit {
		t.Fatal("deleted in-memory object still hits")
	}
	if got := c.Stats().Deletes; got != 1 {
		t.Fatalf("Deletes = %d, want 1", got)
	}
	if n := c.MemObjects(); n != 0 {
		t.Fatalf("%d objects still buffered after pool-empty delete", n)
	}
}

// TestSetRejectsEmptyValue pins the tombstone encoding's precondition:
// zero-length values are reserved for deletion markers, so Set must reject
// them instead of storing an object that every lookup would misread as
// deleted.
func TestSetRejectsEmptyValue(t *testing.T) {
	c := testCache(t, nil)
	if err := c.Set([]byte("empty-value-key0"), nil); err == nil {
		t.Fatal("Set accepted a nil value")
	}
	if err := c.Set([]byte("empty-value-key0"), []byte{}); err == nil {
		t.Fatal("Set accepted a zero-length value")
	}
	if st := c.Stats(); st.Sets != 0 || st.LogicalBytes != 0 {
		t.Fatalf("rejected writes were counted: %+v", st)
	}
}

// TestDeleteShadowsFlashCopy is the tombstone property: once the object has
// been flushed to flash, Delete must still make a subsequent Get miss —
// the zero-length tombstone shadows the older flash copy because lookups
// scan newest-first.
func TestDeleteShadowsFlashCopy(t *testing.T) {
	c := testCache(t, nil)
	var keys [][]byte
	for i := 0; i < 120; i++ {
		k, v := kv(i)
		keys = append(keys, k)
		if err := c.Set(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if c.PoolLen() == 0 {
		t.Fatal("test needs flushed SGs on flash")
	}
	// Find a key that still hits from flash, then delete it.
	var victim []byte
	for _, k := range keys {
		if _, hit := c.Get(k); hit {
			victim = k
			break
		}
	}
	if victim == nil {
		t.Fatal("no cached key survived to delete")
	}
	if err := c.Delete(victim); err != nil {
		t.Fatal(err)
	}
	if _, hit := c.Get(victim); hit {
		t.Fatal("deleted flash-resident object still hits")
	}
	// Delete-then-set resurrects with the new value.
	if err := c.Set(victim, []byte("resurrected-value-000000000000")); err != nil {
		t.Fatal(err)
	}
	if v, hit := c.Get(victim); !hit || string(v) != "resurrected-value-000000000000" {
		t.Fatalf("resurrected get = %q, %v", v, hit)
	}
}

// TestDeleteSurvivesTombstoneFlush pushes the tombstone itself to flash and
// verifies it keeps shadowing the older on-flash copy.
func TestDeleteSurvivesTombstoneFlush(t *testing.T) {
	c := testCache(t, nil)
	k, v := kv(0)
	if err := c.Set(k, v); err != nil {
		t.Fatal(err)
	}
	// Flush the object out, delete (tombstone), then flush the tombstone.
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(k); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, hit := c.Get(k); hit {
		t.Fatal("flushed tombstone stopped shadowing the flash copy")
	}
}

// TestDeleteAcrossShards is the cross-shard satellite: deletions routed
// through the sharded facade must produce Get misses for keys on every
// shard, and the summed Deletes counter must match.
func TestDeleteAcrossShards(t *testing.T) {
	_, cfg := shardedGeom(t, 4, 8)
	s, err := NewSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Insert until every shard owns a few keys.
	perShard := make([]int, 4)
	var keys [][]byte
	for i := 0; len(keys) < 64 || minInt(perShard) < 4; i++ {
		if i > 10_000 {
			t.Fatal("shard routing never covered all shards")
		}
		k := []byte(fmt.Sprintf("xshard-key-%06d", i))
		v := []byte(fmt.Sprintf("xshard-val-%032d", i))
		if err := s.Set(k, v); err != nil {
			t.Fatal(err)
		}
		perShard[s.ShardOf(k)]++
		keys = append(keys, k)
	}
	deleted := 0
	for _, k := range keys {
		if _, hit := s.Get(k); !hit {
			continue // dropped by flush dynamics before we got to it
		}
		if err := s.Delete(k); err != nil {
			t.Fatal(err)
		}
		deleted++
		if _, hit := s.Get(k); hit {
			t.Fatalf("key %q (shard %d) still hits after delete", k, s.ShardOf(k))
		}
	}
	if deleted < 32 {
		t.Fatalf("only %d cached keys exercised; trace too small", deleted)
	}
	if got := s.Stats().Deletes; got != uint64(deleted) {
		t.Fatalf("summed Deletes = %d, want %d", got, deleted)
	}
}

func minInt(xs []int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// TestDeleteAbsentKeySkipsTombstone pins the Bloom gate: deleting keys the
// filters prove absent must not consume SG space, even with a populated
// flash pool.
func TestDeleteAbsentKeySkipsTombstone(t *testing.T) {
	c := testCache(t, nil)
	for i := 0; i < 120; i++ {
		k, v := kv(i)
		if err := c.Set(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if c.PoolLen() == 0 {
		t.Fatal("test needs a populated pool")
	}
	before := c.MemObjects()
	for i := 0; i < 200; i++ {
		if err := c.Delete([]byte(fmt.Sprintf("never-stored-%06d", i))); err != nil {
			t.Fatal(err)
		}
	}
	after := c.MemObjects()
	// Bloom false positives may admit the odd tombstone; definite absence
	// must cover the overwhelming majority.
	if after-before > 4 {
		t.Fatalf("%d tombstones buffered for never-stored keys", after-before)
	}
	if got := c.Stats().Deletes; got != 200 {
		t.Fatalf("Deletes = %d, want 200", got)
	}
}

// TestTombstoneSurvivesSacrifice is the delayed-flush interaction: the
// sacrifice path must never evict a tombstone early, or the still-cached
// flash copy it shadows would be resurrected. Same-set inserts overflow the
// victim's set in the front SG repeatedly; through every sacrifice the
// deleted key must keep missing.
func TestTombstoneSurvivesSacrifice(t *testing.T) {
	c := testCache(t, nil)
	victim, secret := kv(0)
	if err := c.Set(victim, secret); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, hit := c.Get(victim); !hit {
		t.Fatal("victim not cached on flash")
	}
	if err := c.Delete(victim); err != nil {
		t.Fatal(err)
	}
	// Hammer the victim's set so the front SG sacrifices over and over.
	vo := c.setOf(hashing.Fingerprint(victim))
	filled := 0
	for i := 1; filled < 600; i++ {
		k, v := kv(i)
		if c.setOf(hashing.Fingerprint(k)) != vo {
			continue
		}
		if err := c.Set(k, v); err != nil {
			t.Fatal(err)
		}
		filled++
		if _, hit := c.Get(victim); hit {
			t.Fatalf("deleted key resurrected after %d same-set inserts", filled)
		}
	}
}

// TestDeleteSuppressesWriteback checks the eviction interaction: a deleted
// (tombstoned) object must not be resurrected by hotness-aware writeback
// when its SG is evicted.
func TestDeleteSuppressesWriteback(t *testing.T) {
	c := testCache(t, func(cfg *Config) {
		cfg.HotTrackTailRatio = 1 // track everything to maximize writeback
	})
	k, v := kv(0)
	if err := c.Set(k, v); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	c.Get(k) // mark hot so eviction would consider writing it back
	if err := c.Delete(k); err != nil {
		t.Fatal(err)
	}
	// Churn until the original SG (and the tombstone) are evicted.
	for i := 1; i < 4_000; i++ {
		ck, cv := kv(i)
		if err := c.Set(ck, cv); err != nil {
			t.Fatal(err)
		}
	}
	if v2, hit := c.Get(k); hit && string(v2) == string(v) {
		t.Fatal("deleted object resurrected by writeback")
	}
}

// TestShardedCloseClosesEveryShard pins the Close error path: all shards
// must be closed even when earlier ones fail, and the first error returned.
func TestShardedCloseClosesEveryShard(t *testing.T) {
	_, cfg := shardedGeom(t, 4, 8)
	cfg.Flushers = 2
	s, err := NewSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A few async inserts so the pool has seen traffic before Close.
	for i := 0; i < 64; i++ {
		k, v := kv(i)
		if err := s.SetAsync(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent (the pool must not be stopped twice).
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestNewShardedValidationReleasesShards covers the constructor error path:
// a late shard failure must not leak the earlier shards (observable here as
// a clean second construction on the same device).
func TestNewShardedValidationReleasesShards(t *testing.T) {
	dev := flashsim.New(flashsim.Config{PageSize: 512, PagesPerZone: 16, Zones: 16})
	_, cfg := shardedGeom(t, 4, 8)
	cfg.Device = dev // too few zones: a later shard's range exceeds the device
	if _, err := NewSharded(cfg); err == nil {
		t.Fatal("NewSharded accepted a device with too few zones")
	}
	// The failed construction must leave the device reusable.
	_, good := shardedGeom(t, 1, 8)
	good.Device = dev
	s, err := NewSharded(good)
	if err != nil {
		t.Fatalf("device unusable after failed construction: %v", err)
	}
	s.Close()
}
