package core

// Device-fault circuit breaker: the per-shard health tracker that keeps a
// sick flash device out of the serving path.
//
// The write path is the only part of the cache that *must* touch the device
// to make progress — a GET can always be answered from memory or answered
// with a miss, but a SET eventually needs a flush, and a flush against a
// dead device burns a reserved zone, drops the sealed SG's objects as
// evictions, and returns an error, over and over. Without a breaker, a
// persistent write failure turns every Nth SET into an expensive doomed
// flush and silently bleeds the cache's contents (each failed flush evicts
// the front SG).
//
// With Config.BreakerThreshold > 0, each shard tracks consecutive
// write-path (flush) failures under its own lock and clock:
//
//   - closed → open: BreakerThreshold consecutive flush failures trip the
//     shard into degraded mode. SETs and DELETEs are rejected at the top of
//     the locked write path with cachelib.ErrDegraded — no insertion, no
//     sacrifice, no flush attempt, O(1) under the lock — while GETs keep
//     serving from the in-memory SGs and flash. A successful flush at any
//     point (e.g. a deferred flush enqueued before the trip) resets the
//     failure count and closes the breaker.
//   - open → half-open: after Config.BreakerProbeAfter on the device clock,
//     the next write is admitted as a probe. The probe runs its flush
//     synchronously (even on the SetAsync path) so the device verdict is
//     real; concurrent writes keep getting ErrDegraded while the probe is
//     in flight.
//   - half-open → closed: the probe succeeds (its flush reached flash, or
//     no flush was due — an optimistic close; a later flush failure re-trips
//     within one threshold). Cumulative degraded time accumulates into
//     Stats.DegradedSeconds.
//   - half-open → open: the probe's flush fails; the next probe waits
//     another BreakerProbeAfter. The degraded window continues —
//     Stats.DegradedEntered counts closed→open trips only.
//
// Transient faults are kept off the breaker entirely by the bounded
// append-retry loop (Config.WriteRetries / Config.RetryBackoff): a failed
// AppendPage mutates no device or cache state, so it is retried in place up
// to WriteRetries times before the flush fails and the failure counts.
// Stats.WriteRetries counts absorbed retries.
//
// Everything is deterministic under a virtual device clock: trips, probe
// windows, and DegradedSeconds move only when the test advances the clock.
// With BreakerThreshold == 0 (the default) every hook in this file is a
// no-op on the hot path, keeping the historical equivalence and determinism
// pins byte-identical.

import (
	"fmt"
	"time"

	"nemo/internal/cachelib"
)

// BreakerState is the device-fault circuit breaker's position.
type BreakerState uint8

// Breaker states: closed (healthy, writes flow), open (degraded, writes
// rejected), half-open (one probe write in flight or admissible).
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String renders the state for diagnostics and the SIGQUIT health dump.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", uint8(s))
	}
}

// breaker is the per-shard circuit state, guarded by Cache.mu and timed on
// the device clock.
type breaker struct {
	state       BreakerState
	fails       int           // consecutive flush failures while closed
	windowStart time.Duration // device-clock time the current degraded window began
	nextProbeAt time.Duration // device-clock time the next probe may be admitted
	total       time.Duration // degraded time of completed windows
	probing     bool          // a probe write is in flight
	lastErr     string        // last write-path failure, for diagnostics
}

// HealthStatus is one shard's breaker snapshot (see Cache.Health).
type HealthStatus struct {
	// Shard is the shard index (0 for an unsharded cache).
	Shard int
	// State is the breaker position.
	State BreakerState
	// ConsecutiveFails is the current run of flush failures (resets on any
	// successful flush).
	ConsecutiveFails int
	// DegradedEntered counts degraded windows (closed→open trips).
	DegradedEntered uint64
	// Degraded is cumulative degraded time, including the window in
	// progress.
	Degraded time.Duration
	// LastWriteErr is the most recent write-path failure ("" if none).
	LastWriteErr string
	// WriteRetries counts transient append failures absorbed by the bounded
	// retry loop.
	WriteRetries uint64
}

// breakerEnabled reports whether the circuit breaker is configured on.
func (c *Cache) breakerEnabled() bool { return c.cfg.BreakerThreshold > 0 }

// breakerAllowWriteLocked gates the locked write path (Set/SetAsync/SetMany
// inserts and Delete). It returns (probe, nil) when the write may proceed —
// probe marks it as the half-open probe, which must run its flush
// synchronously — or (false, ErrDegraded) when the shard is degraded.
func (c *Cache) breakerAllowWriteLocked() (probe bool, err error) {
	if !c.breakerEnabled() || c.brk.state == BreakerClosed {
		return false, nil
	}
	now := c.dev.Clock().Now()
	if c.brk.state == BreakerOpen {
		if now < c.brk.nextProbeAt {
			c.stats.DegradedRejects++
			return false, cachelib.ErrDegraded
		}
		c.brk.state = BreakerHalfOpen
	}
	// Half-open: admit exactly one probe at a time.
	if c.brk.probing {
		c.stats.DegradedRejects++
		return false, cachelib.ErrDegraded
	}
	c.brk.probing = true
	return true, nil
}

// breakerWriteDoneLocked settles a probe write when its locked operation
// returns. A probe whose flush failed has already re-opened the breaker via
// breakerFlushFailedLocked; a probe that succeeded — including one that
// triggered no flush at all — closes the breaker optimistically (a later
// flush failure re-trips within one threshold).
func (c *Cache) breakerWriteDoneLocked(probe bool, err error) {
	if !probe {
		return
	}
	c.brk.probing = false
	if err == nil && c.brk.state == BreakerHalfOpen {
		c.breakerCloseLocked()
	}
}

// breakerFlushFailedLocked records one flush failure (called from
// recoverFailedFlushLocked, after WriteErrors is counted).
func (c *Cache) breakerFlushFailedLocked(cause error) {
	c.brk.lastErr = cause.Error()
	if !c.breakerEnabled() {
		return
	}
	now := c.dev.Clock().Now()
	switch c.brk.state {
	case BreakerClosed:
		c.brk.fails++
		if c.brk.fails >= c.cfg.BreakerThreshold {
			c.brk.state = BreakerOpen
			c.brk.windowStart = now
			c.brk.nextProbeAt = now + c.cfg.BreakerProbeAfter
			c.stats.DegradedEntered++
		}
	case BreakerHalfOpen:
		// Probe failed: the degraded window continues; schedule the next
		// probe one interval out.
		c.brk.state = BreakerOpen
		c.brk.nextProbeAt = now + c.cfg.BreakerProbeAfter
	case BreakerOpen:
		// A deferred flush enqueued before the trip failed while open;
		// nothing changes.
	}
}

// breakerFlushOKLocked records one successful flush commit: the device
// proved writable, so the failure run ends and any degraded window closes.
func (c *Cache) breakerFlushOKLocked() {
	c.brk.fails = 0
	if c.brk.state != BreakerClosed {
		c.breakerCloseLocked()
	}
}

// breakerCloseLocked ends the current degraded window.
func (c *Cache) breakerCloseLocked() {
	c.brk.total += c.dev.Clock().Now() - c.brk.windowStart
	c.brk.state = BreakerClosed
	c.brk.fails = 0
	c.brk.probing = false
}

// breakerDegradedLocked returns cumulative degraded time including the
// window in progress.
func (c *Cache) breakerDegradedLocked() time.Duration {
	d := c.brk.total
	if c.brk.state != BreakerClosed {
		d += c.dev.Clock().Now() - c.brk.windowStart
	}
	return d
}

// Health returns this shard's breaker snapshot.
func (c *Cache) Health() HealthStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	return HealthStatus{
		State:            c.brk.state,
		ConsecutiveFails: c.brk.fails,
		DegradedEntered:  c.stats.DegradedEntered,
		Degraded:         c.breakerDegradedLocked(),
		LastWriteErr:     c.brk.lastErr,
		WriteRetries:     c.retries.Load(),
	}
}

// Health returns every shard's breaker snapshot, in shard order.
func (s *Sharded) Health() []HealthStatus {
	out := make([]HealthStatus, len(s.shards))
	for i, c := range s.shards {
		out[i] = c.Health()
		out[i].Shard = i
	}
	return out
}

// appendPageRetry wraps Device.AppendPage with the bounded
// retry-with-backoff loop (Config.WriteRetries). A failed append mutates no
// device state — the write pointer does not advance, open-zone reservations
// release — so retrying in place is safe on every backend. Runs UNLOCKED
// (build phase); the retry counter is atomic and folds into Stats on read.
func (c *Cache) appendPageRetry(zoneID int, data []byte) (int, time.Duration, error) {
	page, done, err := c.dev.AppendPage(zoneID, data)
	for attempt := 0; err != nil && attempt < c.cfg.WriteRetries; attempt++ {
		c.retries.Add(1)
		if b := c.cfg.RetryBackoff; b > 0 {
			d := b << attempt
			if clk := c.dev.Clock(); clk.Real() {
				time.Sleep(d)
			} else {
				clk.Advance(d)
			}
		}
		page, done, err = c.dev.AppendPage(zoneID, data)
	}
	return page, done, err
}
