package core

import (
	"fmt"
	"sync"
	"testing"

	"nemo/internal/flashsim"
	"nemo/internal/trace"
)

// shardedGeom builds a device sized for n shards of perData zones each,
// using the same small geometry as testCache, and the matching total config.
func shardedGeom(t *testing.T, n, perData int) (*flashsim.Device, Config) {
	t.Helper()
	base := Config{
		ZonesPerSG:        1,
		InMemSGs:          2,
		FlushThreshold:    8,
		RearFullRatio:     0.95,
		SGsPerIndexGroup:  4,
		BloomFPR:          0.001,
		TargetObjsPerSet:  8,
		CachedPBFGRatio:   0.5,
		HotTrackTailRatio: 0.3,
		CoolingWriteRatio: 0.1,
		BufferedSGs:       true,
		DelayedFlush:      true,
		Writeback:         true,
	}
	base.DataZones = n * perData
	base.Shards = n
	perShard := base
	perShard.DataZones = perData
	zones := n * (perData + perShard.IndexZones())
	dev := flashsim.New(flashsim.Config{PageSize: 512, PagesPerZone: 16, Zones: zones})
	base.Device = dev
	return dev, base
}

// shardedTrace materializes a deterministic Zipf trace sized to cycle the
// pool several times.
func shardedTrace(ops int) []trace.Request {
	return trace.Materialize(trace.NewZipf(trace.ClusterConfig{
		Name: "sharded-test", KeySize: 20, ValueMean: 64, ValueStd: 24,
		Keys: 4096, ZipfAlpha: 1.2, Seed: 7,
	}), ops)
}

// demandFill replays reqs sequentially with the look-aside pattern.
func demandFill(t *testing.T, e interface {
	Get([]byte) ([]byte, bool)
	Set([]byte, []byte) error
}, reqs []trace.Request) {
	t.Helper()
	for i := range reqs {
		req := &reqs[i]
		if _, hit := e.Get(req.Key); !hit {
			if err := e.Set(req.Key, req.Value); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestShardedSingleShardEquivalence is the refactor's property test: a
// Sharded cache with Shards=1 must reproduce the plain engine's replay
// statistics exactly — same hits, same flash traffic, same paper WA — on a
// deterministic trace.
func TestShardedSingleShardEquivalence(t *testing.T) {
	reqs := shardedTrace(30_000)

	_, cfgA := shardedGeom(t, 1, 8)
	plain, err := New(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	demandFill(t, plain, reqs)

	_, cfgB := shardedGeom(t, 1, 8)
	sharded, err := NewSharded(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	demandFill(t, sharded, reqs)

	if got, want := sharded.Stats(), plain.Stats(); got != want {
		t.Fatalf("stats diverged:\nsharded: %+v\nplain:   %+v", got, want)
	}
	if got, want := sharded.Extra(), plain.Extra(); got != want {
		t.Fatalf("extra stats diverged:\nsharded: %+v\nplain:   %+v", got, want)
	}
	if got, want := sharded.PaperWA(), plain.PaperWA(); got != want {
		t.Fatalf("paper WA diverged: %v vs %v", got, want)
	}
	devA := cfgA.Device.Stats()
	devB := cfgB.Device.Stats()
	if devA != devB {
		t.Fatalf("device stats diverged:\nsharded: %+v\nplain:   %+v", devB, devA)
	}
}

// TestShardedAggregateCounts replays the same trace at several shard counts
// and checks that the aggregate accounting is coherent: every request is
// counted exactly once, per-shard counters sum to the facade's totals, and
// every shard receives traffic.
func TestShardedAggregateCounts(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			reqs := shardedTrace(30_000)
			_, cfg := shardedGeom(t, n, 8)
			s, err := NewSharded(cfg)
			if err != nil {
				t.Fatal(err)
			}
			demandFill(t, s, reqs)

			st := s.Stats()
			if st.Gets != uint64(len(reqs)) {
				t.Fatalf("Gets = %d, want %d", st.Gets, len(reqs))
			}
			if st.Sets != st.Gets-st.Hits {
				t.Fatalf("Sets = %d, want misses = %d", st.Sets, st.Gets-st.Hits)
			}
			var sum int
			for i := 0; i < s.NumShards(); i++ {
				shard := s.Shard(i)
				ss := shard.Stats()
				if ss.Gets == 0 {
					t.Fatalf("shard %d received no traffic", i)
				}
				sum += int(ss.Gets)
			}
			if sum != len(reqs) {
				t.Fatalf("per-shard Gets sum to %d, want %d", sum, len(reqs))
			}
			if s.MemObjects() == 0 {
				t.Fatal("no objects buffered in memory")
			}
			if s.PoolLen() == 0 {
				t.Fatal("no SGs reached flash")
			}
		})
	}
}

// TestShardedOpenZoneBudget pins the shared-device validation: a device
// whose open-zone limit cannot cover one concurrently open zone per shard
// must be rejected at construction, not fail nondeterministically mid-run.
func TestShardedOpenZoneBudget(t *testing.T) {
	_, cfg := shardedGeom(t, 4, 8)
	tight := flashsim.New(flashsim.Config{PageSize: 512, PagesPerZone: 16,
		Zones: cfg.Device.Zones(), MaxOpenZones: 3})
	cfg.Device = tight
	if _, err := NewSharded(cfg); err == nil {
		t.Fatal("NewSharded accepted 4 shards on a device limited to 3 open zones")
	}
	roomy := flashsim.New(flashsim.Config{PageSize: 512, PagesPerZone: 16,
		Zones: cfg.Device.Zones(), MaxOpenZones: 4})
	cfg.Device = roomy
	s, err := NewSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	demandFill(t, s, shardedTrace(20_000))
}

// TestShardedRouting pins the shard router: every key must land on the shard
// the facade reports, and the distribution over shards must be roughly even.
func TestShardedRouting(t *testing.T) {
	_, cfg := shardedGeom(t, 4, 8)
	s, err := NewSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, s.NumShards())
	const keys = 40_000
	for i := 0; i < keys; i++ {
		counts[s.ShardOf([]byte(fmt.Sprintf("routing-key-%08d", i)))]++
	}
	want := keys / len(counts)
	for i, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Fatalf("shard %d owns %d of %d keys (want ≈%d): routing is skewed", i, c, keys, want)
		}
	}
}

// valueForKey derives the deterministic payload every writer stores for a
// key, so concurrent readers can verify any hit byte-for-byte.
func valueForKey(k []byte) []byte {
	return []byte(fmt.Sprintf("payload-of-%s-%032d", k, len(k)))
}

// TestShardedConcurrentGetAfterPut hammers one sharded cache from many
// goroutines over an overlapping key space. Every key maps to a single
// deterministic value, so any hit must return exactly that value — a cross-
// key mixup, torn read, or stale-size corruption fails the test, and the
// race detector checks the locking. Run with -race.
func TestShardedConcurrentGetAfterPut(t *testing.T) {
	_, cfg := shardedGeom(t, 4, 8)
	s, err := NewSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers = 8
		keys    = 512
		opsEach = 15_000
	)
	var hits, misses [workers]int
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				k := []byte(fmt.Sprintf("shared-key-%06d", (w*31+i*7)%keys))
				want := valueForKey(k)
				if got, hit := s.Get(k); hit {
					hits[w]++
					if string(got) != string(want) {
						t.Errorf("key %s returned wrong value %q", k, got)
						return
					}
				} else {
					misses[w]++
					if err := s.Set(k, want); err != nil {
						t.Errorf("set %s: %v", k, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	totalHits, totalMisses := 0, 0
	for w := 0; w < workers; w++ {
		totalHits += hits[w]
		totalMisses += misses[w]
	}
	if totalHits == 0 {
		t.Fatal("no hits at all: cache is not retaining concurrent writes")
	}
	st := s.Stats()
	if st.Gets != uint64(workers*opsEach) {
		t.Fatalf("Gets = %d, want %d", st.Gets, workers*opsEach)
	}
	if st.Hits != uint64(totalHits) {
		t.Fatalf("engine counted %d hits, workers observed %d", st.Hits, totalHits)
	}
}
