package core

import (
	"fmt"
	"math/bits"
	"time"

	"nemo/internal/bloom"
)

// This file holds the steady-state in-memory index layer, laid out to be
// nearly invisible to the garbage collector (see doc.go, "Memory layout").
// Three arenas replace what used to be thousands of small heap objects:
//
//   - sgArena: flashSG structs live in fixed-size chunks, each chunk carrying
//     one backing array for its slots' zone lists. Retired structs are
//     recycled when their index group is dropped.
//   - metaArena: each SG's per-set metadata — set counts, slot-base prefix
//     sums, and the hotness bitmap — is ONE []uint32 carved from shared
//     slabs at flush commit (or restore), when the object count is known.
//   - pageArena (inside pbfgCache): cached PBFG pages are page-size slots of
//     large slabs, indexed by a flat open-addressing table keyed by a packed
//     (group,set) uint64. put copies the page bytes in; no per-page objects.
//
// Recycling is immediate: freed slots go straight back to the free lists.
// That is safe because the concurrent read path never dereferences arena
// memory outside the lock — its plan phase copies the filter bytes it will
// test and precomputes the page addresses it will read while still holding
// the lock (readpath.go), so a slot reused mid-attempt can corrupt nothing
// the attempt still looks at (stale attempts are discarded by the epoch
// check regardless).

// flashSG describes one immutable on-flash Set-Group in the FIFO pool.
// Structs are allocated from the cache's sgArena; zones aliases the chunk's
// zone backing and meta is carved from the metaArena at flush commit.
type flashSG struct {
	id    uint64 // monotonically increasing flush sequence number
	zones []int  // data zones holding the SG (len == Config.ZonesPerSG)
	group *idxGroup
	slot  int // position of this SG's filters within the group

	// meta packs the SG's per-set metadata into one carve:
	//
	//	[0:n]        objects per set at flush time (was setCounts []uint16)
	//	[n:2n+1]     prefix sums over the counts (was slotBase []uint32)
	//	[2n+1:]      1-bit-per-object hotness bitmap as uint32 words, sized
	//	             2*ceil(objCount/64) so snapshot conversion to the NEMO1
	//	             []uint64 encoding is a word-pair repack (was bits)
	//
	// where n == nsets. The bitmap region is always materialized; hasBits
	// preserves the old "allocated lazily on first setBit" observable state
	// (bit() is false and cooling is a no-op until then, and checkpoints
	// emit a Bits section only for SGs that were ever marked).
	meta    []uint32
	nsets   int
	hasBits bool

	objCount int
	fill     float64 // aggregate fill rate at flush
	dead     bool
}

// setCount returns the number of objects flushed into set o.
func (sg *flashSG) setCount(o int) int { return int(sg.meta[o]) }

// base returns the bitmap position of set o's first slot; base(nsets) is the
// object count. The prefix sums are computed when meta is carved (flush
// commit or snapshot restore), never lazily on the probe path.
func (sg *flashSG) base(o int) uint32 { return sg.meta[sg.nsets+o] }

// bitIndex returns the bitmap position of (set o, slot s).
func (sg *flashSG) bitIndex(o, s int) uint32 { return sg.base(o) + uint32(s) }

func (sg *flashSG) setBit(o, s int) {
	sg.hasBits = true
	i := sg.bitIndex(o, s)
	sg.meta[2*sg.nsets+1+int(i>>5)] |= 1 << (i & 31)
}

func (sg *flashSG) bit(o, s int) bool {
	if !sg.hasBits {
		return false
	}
	i := sg.bitIndex(o, s)
	return sg.meta[2*sg.nsets+1+int(i>>5)]&(1<<(i&31)) != 0
}

// clearSet clears all hotness bits of set o (cooling, §4.4).
func (sg *flashSG) clearSet(o int) {
	if !sg.hasBits {
		return
	}
	hot := sg.meta[2*sg.nsets+1:]
	for i := sg.base(o); i < sg.base(o+1); i++ {
		hot[i>>5] &^= 1 << (i & 31)
	}
}

// hotWords returns the bitmap region of meta (2*ceil(objCount/64) words).
func (sg *flashSG) hotWords() []uint32 { return sg.meta[2*sg.nsets+1:] }

// metaWords returns the carve size for an SG with the given geometry.
func metaWords(nsets, objCount int) int {
	return 2*nsets + 1 + 2*((objCount+63)/64)
}

// carveMeta allocates sg.meta for its final objCount, fills the set counts
// from counts (len nsets) and computes the prefix sums. The hotness region
// starts zeroed. Called at flush commit and snapshot restore — the two
// places an SG's counts become final.
func (c *Cache) carveMeta(sg *flashSG, counts []uint32) {
	m := c.metaAlloc.alloc(metaWords(sg.nsets, sg.objCount))
	copy(m, counts[:sg.nsets])
	var run uint32
	for i := 0; i < sg.nsets; i++ {
		m[sg.nsets+i] = run
		run += m[i]
	}
	m[2*sg.nsets] = run
	sg.meta = m
}

// sgChunkSize is the flashSG arena granularity: structs per chunk.
const sgChunkSize = 64

// sgChunk is one allocation of flashSG slots plus the zone-list backing all
// of its slots' zones slices are carved from (slot i owns ints
// [i*zps, (i+1)*zps), so a recycled slot keeps its carve).
type sgChunk struct {
	sgs   [sgChunkSize]flashSG
	zones []int
}

// sgArena allocates flashSG structs from chunks. Slots are recycled when a
// dead index group is dropped and zeroed on the next alloc (at seal, under
// the lock), never on release.
type sgArena struct {
	zps    int // Config.ZonesPerSG
	chunks []*sgChunk
	free   []*flashSG
}

func (a *sgArena) alloc() *flashSG {
	if len(a.free) == 0 {
		ch := &sgChunk{zones: make([]int, sgChunkSize*a.zps)}
		a.chunks = append(a.chunks, ch)
		for i := sgChunkSize - 1; i >= 0; i-- {
			sg := &ch.sgs[i]
			sg.zones = ch.zones[i*a.zps : i*a.zps : (i+1)*a.zps]
			a.free = append(a.free, sg)
		}
	}
	sg := a.free[len(a.free)-1]
	a.free = a.free[:len(a.free)-1]
	z := sg.zones[:0]
	*sg = flashSG{zones: z}
	return sg
}

func (a *sgArena) release(sg *flashSG) {
	a.free = append(a.free, sg)
}

// metaBucketWords rounds meta carves so freed carves are reusable across
// SGs with nearby object counts (the free lists are per rounded size).
const metaBucketWords = 128

// metaSlabWords is the allocation unit carves are cut from (256 KiB).
const metaSlabWords = 1 << 16

// metaArena carves []uint32 runs from large slabs with size-bucketed free
// lists. Carves are recycled when their SG's group is dropped.
type metaArena struct {
	slab []uint32 // bump-allocation tail of the current slab
	free map[int][][]uint32
}

func (a *metaArena) alloc(words int) []uint32 {
	r := (words + metaBucketWords - 1) / metaBucketWords * metaBucketWords
	if fl := a.free[r]; len(fl) > 0 {
		m := fl[len(fl)-1]
		a.free[r] = fl[:len(fl)-1]
		m = m[:words]
		for i := range m {
			m[i] = 0
		}
		return m
	}
	if r > metaSlabWords {
		return make([]uint32, words, r)
	}
	if len(a.slab)+r > cap(a.slab) {
		a.slab = make([]uint32, 0, metaSlabWords)
	}
	off := len(a.slab)
	a.slab = a.slab[:off+r]
	return a.slab[off : off+words : off+r]
}

func (a *metaArena) release(m []uint32) {
	if m == nil {
		return
	}
	if a.free == nil {
		a.free = make(map[int][][]uint32)
	}
	a.free[cap(m)] = append(a.free[cap(m)], m)
}

// idxGroup aggregates the set-level Bloom filters of up to SGsPerIndexGroup
// SGs (§4.3). While unsealed, the filters live in the in-memory index-group
// buffer; sealing packs them into PBFG pages (one per intra-SG offset, each
// holding the filters of that offset across all member SGs) and writes them
// to an index-pool zone.
type idxGroup struct {
	id        int
	zones     []int // index zones once sealed, nil before
	sealed    bool
	members   []*flashSG
	liveCount int
	// slotBF[s] holds member s's filters: SetsPerSG filters of bfBytes
	// each, concatenated by set offset. Retained until sealing; the page
	// for offset o is assembled at seal time (writepath.go buildAndAppend)
	// by gathering slice o from every member. Each member's slice is
	// immutable once appended, which is what lets the unlocked build phase
	// assemble PBFG pages from a seal-phase snapshot of this list. All
	// slices are carves of bfBacking (one allocation per group, slot s
	// owning bytes [s*slotBytes, (s+1)*slotBytes)), dropped wholesale at
	// seal; the flush owner writes its own slot's carve unlocked while
	// readers probe other slots' — disjoint regions of the same backing.
	slotBF    [][]byte
	bfBacking []byte
}

// pbfgKey identifies one PBFG page: the filters of intra-SG offset Set
// across index group Group's SGs.
type pbfgKey struct {
	group int
	set   int
}

// packed encodes the key for the flat table: (group+1)<<32 | set, so a zero
// word is never a valid key (the table's empty sentinel).
func (k pbfgKey) packed() uint64 {
	return (uint64(k.group)+1)<<32 | uint64(uint32(k.set))
}

func unpackPBFG(p uint64) pbfgKey {
	return pbfgKey{group: int(p>>32) - 1, set: int(uint32(p))}
}

// pageSlabPages is the page-arena allocation granularity.
const pageSlabPages = 64

// pageArena stores cached PBFG pages as fixed slots of large slabs. Slots
// are identified by index and recycled immediately on release: readers copy
// the filter bytes they need out of a page while still holding the lock
// (readpath.go planGetLocked), so no slice into a slot ever outlives the
// critical section that looked it up.
type pageArena struct {
	pageSize int
	slabs    [][]byte
	free     []int32
}

func (a *pageArena) alloc() int32 {
	if len(a.free) == 0 {
		base := int32(len(a.slabs) * pageSlabPages)
		a.slabs = append(a.slabs, make([]byte, pageSlabPages*a.pageSize))
		for i := pageSlabPages - 1; i >= 0; i-- {
			a.free = append(a.free, base+int32(i))
		}
	}
	s := a.free[len(a.free)-1]
	a.free = a.free[:len(a.free)-1]
	return s
}

func (a *pageArena) page(slot int32) []byte {
	off := int(slot%pageSlabPages) * a.pageSize
	return a.slabs[slot/pageSlabPages][off : off+a.pageSize : off+a.pageSize]
}

func (a *pageArena) release(slot int32) {
	a.free = append(a.free, slot)
}

// pbfgCache is the FIFO in-memory index cache (§5.1: "The index cache is
// FIFO-style, which reduces lock contention ... compared to LRU").
//
// Pages live in the arena; put copies the caller's page bytes into a slot,
// and page slices handed out by get are valid only under the lock (slots
// recycle on eviction — the concurrent read path copies what it needs at
// plan time, readpath.go). Lookup is a flat open-addressing table (linear
// probing, backward-shift deletion, load ≤ ½) over packed keys: no map, no
// per-page heap objects.
type pbfgCache struct {
	capacity  int
	setsPerSG int

	keys  []uint64 // packed keys; 0 = empty slot
	vals  []int32  // arena slot per key
	shift uint     // 64 - log2(len(keys))
	count int

	arena pageArena

	queue []uint64 // FIFO of packed keys; eviction order
	head  int      // index of the oldest entry within queue

	// droppedUpTo is the dead-group watermark: SG pools retire index
	// groups strictly in id order (the pool is FIFO and ids are dense), so
	// every group ≤ the watermark is dead and its queue entries can never
	// be re-put. stale approximates how many such entries linger in the
	// queue; compaction sweeps them once they dominate.
	droppedUpTo int
	stale       int
	queued      map[int]int // queue entries per group (for the stale count)

	lookups uint64 // sealed-group PBFG queries
	misses  uint64 // queries requiring a flash fetch
}

// newPBFGCache sizes the table for the capacity at ≤ 50% load, so it never
// grows. pageSize fixes the arena slot size (put copies exactly that many
// bytes); setsPerSG bounds the set offsets dropGroup probes.
func newPBFGCache(capacity, pageSize, setsPerSG int) *pbfgCache {
	if capacity < 0 {
		capacity = 0
	}
	pc := &pbfgCache{
		capacity:    capacity,
		setsPerSG:   setsPerSG,
		arena:       pageArena{pageSize: pageSize},
		queued:      make(map[int]int),
		droppedUpTo: -1,
	}
	if capacity > 0 {
		size := 8
		for size < 2*capacity {
			size <<= 1
		}
		pc.keys = make([]uint64, size)
		pc.vals = make([]int32, size)
		pc.shift = uint(64 - bits.TrailingZeros(uint(size)))
	}
	return pc
}

func (pc *pbfgCache) slotOf(p uint64) int {
	return int((p * 0x9E3779B97F4A7C15) >> pc.shift)
}

// find returns the table index holding p, or the empty index its probe
// chain ended at (ok=false).
func (pc *pbfgCache) find(p uint64) (int, bool) {
	if pc.capacity == 0 {
		return 0, false
	}
	mask := len(pc.keys) - 1
	for i := pc.slotOf(p); ; i = (i + 1) & mask {
		switch pc.keys[i] {
		case p:
			return i, true
		case 0:
			return i, false
		}
	}
}

func (pc *pbfgCache) tableInsert(p uint64, slot int32) {
	i, ok := pc.find(p)
	if ok {
		panic("pbfgCache: duplicate insert")
	}
	pc.keys[i] = p
	pc.vals[i] = slot
	pc.count++
}

// tableDel removes p, releasing its arena slot, and repairs the probe
// chains by backward shifting (no tombstones, so the table never degrades).
func (pc *pbfgCache) tableDel(p uint64) bool {
	i, ok := pc.find(p)
	if !ok {
		return false
	}
	pc.arena.release(pc.vals[i])
	mask := len(pc.keys) - 1
	j := i
	for {
		pc.keys[j] = 0
		k := j
		for {
			k = (k + 1) & mask
			if pc.keys[k] == 0 {
				pc.count--
				return true
			}
			// The entry at k can fill the hole at j iff j lies on its
			// probe path: its displacement from home reaches back to j.
			if (k-pc.slotOf(pc.keys[k]))&mask >= (k-j)&mask {
				break
			}
		}
		pc.keys[j] = pc.keys[k]
		pc.vals[j] = pc.vals[k]
		j = k
	}
}

func (pc *pbfgCache) has(k pbfgKey) bool {
	_, ok := pc.find(k.packed())
	return ok
}

func (pc *pbfgCache) get(k pbfgKey) ([]byte, bool) {
	i, ok := pc.find(k.packed())
	if !ok {
		return nil, false
	}
	return pc.arena.page(pc.vals[i]), true
}

// put caches a copy of page (pageSize bytes) under k, evicting FIFO as
// needed. A key already present is left untouched.
func (pc *pbfgCache) put(k pbfgKey, page []byte) {
	if pc.capacity == 0 {
		return
	}
	p := k.packed()
	if _, ok := pc.find(p); ok {
		return
	}
	for pc.count >= pc.capacity {
		old := pc.queue[pc.head]
		pc.head++
		pc.popQueued(int(old>>32) - 1)
		pc.tableDel(old)
		pc.maybeCompact()
	}
	slot := pc.arena.alloc()
	copy(pc.arena.page(slot), page)
	pc.tableInsert(p, slot)
	pc.queue = append(pc.queue, p)
	pc.queued[k.group]++
}

// insertRestored adds k without touching the FIFO queue (snapshot restore
// rebuilds the queue separately) and returns the arena buffer for the
// caller to fill with the page bytes.
func (pc *pbfgCache) insertRestored(k pbfgKey) []byte {
	slot := pc.arena.alloc()
	pc.tableInsert(k.packed(), slot)
	return pc.arena.page(slot)
}

// forEachKey calls fn for every cached page key, in table order.
func (pc *pbfgCache) forEachKey(fn func(k pbfgKey)) {
	for _, p := range pc.keys {
		if p != 0 {
			fn(unpackPBFG(p))
		}
	}
}

// popQueued retires one queue entry of the group from the stale accounting.
func (pc *pbfgCache) popQueued(group int) {
	if n, ok := pc.queued[group]; ok {
		if n <= 1 {
			delete(pc.queued, group)
		} else {
			pc.queued[group] = n - 1
		}
	}
	if group <= pc.droppedUpTo && pc.stale > 0 {
		pc.stale--
	}
}

// dropGroup purges a dead group's pages — probing the table at each of the
// group's possible set offsets, O(SetsPerSG) — and schedules the queue
// entries it strands for compaction once they dominate the queue.
func (pc *pbfgCache) dropGroup(group int) {
	if pc.count > 0 {
		base := (uint64(group) + 1) << 32
		for s := 0; s < pc.setsPerSG; s++ {
			pc.tableDel(base | uint64(s))
		}
	}
	if group > pc.droppedUpTo {
		pc.droppedUpTo = group
	}
	pc.stale += pc.queued[group]
	delete(pc.queued, group)
	pc.compactStale()
}

// compactStale rewrites the queue without dead-group leftovers once they
// outnumber the live entries. Entries of live groups — including stale
// duplicates from evict/re-put cycles — are preserved verbatim so the
// eviction order of live pages is untouched; dead-group entries can never
// be re-put (the group is gone from the group list), so removing them
// changes no future eviction decision.
func (pc *pbfgCache) compactStale() {
	live := len(pc.queue) - pc.head - pc.stale
	if pc.stale < 64 || pc.stale <= live {
		return
	}
	kept := pc.queue[:0]
	for _, p := range pc.queue[pc.head:] {
		if int(p>>32)-1 > pc.droppedUpTo {
			kept = append(kept, p)
		}
	}
	pc.queue = kept
	pc.head = 0
	pc.stale = 0
}

func (pc *pbfgCache) maybeCompact() {
	if pc.head > len(pc.queue)/2 && pc.head > 1024 {
		n := copy(pc.queue, pc.queue[pc.head:])
		pc.queue = pc.queue[:n]
		pc.head = 0
	}
}

// fetchPBFG returns the raw PBFG page for (group, set o) on behalf of the
// write-path shadow checks (deletion and writeback), consulting the index
// cache or flash. Flash reads are still accounted, but not as index-cache
// traffic — the Figure 19b miss ratio counts only lookup-path queries,
// which the read path charges itself during its plan phase (readpath.go).
// A flash fetch lands in c.fetchBuf (mu-guarded scratch); the returned
// slice is valid until the next fetchPBFG call.
func (c *Cache) fetchPBFG(g *idxGroup, o int) (raw []byte, done time.Duration, err error) {
	if !g.sealed {
		return nil, 0, nil // caller tests unsealed filters per slot
	}
	k := pbfgKey{group: g.id, set: o}
	if page, ok := c.icache.get(k); ok {
		return page, 0, nil
	}
	d, err := c.dev.ReadPage(c.pageAddrIn(g.zones, o), c.fetchBuf)
	if err != nil {
		return nil, 0, fmt.Errorf("core: reading PBFG page: %w", err)
	}
	c.stats.FlashReadOps++
	c.stats.FlashBytesRead += uint64(c.pageSize)
	c.icache.put(k, c.fetchBuf)
	return c.fetchBuf, d, nil
}

// pbfgResident reports whether the PBFG covering (group, set o) is in
// memory — cached, or still in the unsealed index-group buffer. This is the
// recency half of the hybrid hotness signal (§4.4) and must not trigger I/O.
func (c *Cache) pbfgResident(g *idxGroup, o int) bool {
	if !g.sealed {
		return true
	}
	return c.icache.has(pbfgKey{group: g.id, set: o})
}

// testMember tests member slot s of group g for fp at offset o using the
// assembled page (sealed) or the buffer (unsealed).
func (c *Cache) testMember(g *idxGroup, page []byte, s, o int, ps *bloom.ProbeSet) bool {
	if g.sealed {
		return bloom.TestRaw(page[s*c.bfBytes:(s+1)*c.bfBytes], ps)
	}
	bf := g.slotBF[s]
	return bloom.TestRaw(bf[o*c.bfBytes:(o+1)*c.bfBytes], ps)
}

// releaseSG recycles a dead SG's struct and meta carve once its group is
// dropped from the group list (no reader can plan against it afterwards).
func (c *Cache) releaseSG(sg *flashSG) {
	c.metaAlloc.release(sg.meta)
	sg.meta = nil
	c.sgAlloc.release(sg)
}
