package core

import (
	"fmt"
	"time"

	"nemo/internal/bloom"
)

// flashSG describes one immutable on-flash Set-Group in the FIFO pool.
type flashSG struct {
	id    uint64 // monotonically increasing flush sequence number
	zones []int  // data zones holding the SG (len == Config.ZonesPerSG)
	group *idxGroup
	slot  int // position of this SG's filters within the group

	setCounts []uint16 // objects per set at flush time
	slotBase  []uint32 // prefix sums over setCounts (len SetsPerSG+1)
	objCount  int
	fill      float64 // aggregate fill rate at flush
	dead      bool

	// bits is the 1-bit-per-object hotness bitmap, allocated lazily once
	// the SG enters the tracked tail of the pool (§4.4).
	bits []uint64
}

func (sg *flashSG) ensureBases() {
	if sg.slotBase != nil {
		return
	}
	sg.slotBase = make([]uint32, len(sg.setCounts)+1)
	var run uint32
	for i, c := range sg.setCounts {
		sg.slotBase[i] = run
		run += uint32(c)
	}
	sg.slotBase[len(sg.setCounts)] = run
}

// bitIndex returns the bitmap position of (set o, slot s).
func (sg *flashSG) bitIndex(o, s int) uint32 {
	sg.ensureBases()
	return sg.slotBase[o] + uint32(s)
}

func (sg *flashSG) ensureBits() {
	if sg.bits == nil {
		sg.bits = make([]uint64, (sg.objCount+63)/64)
	}
}

func (sg *flashSG) setBit(o, s int) {
	sg.ensureBits()
	i := sg.bitIndex(o, s)
	sg.bits[i>>6] |= 1 << (i & 63)
}

func (sg *flashSG) bit(o, s int) bool {
	if sg.bits == nil {
		return false
	}
	i := sg.bitIndex(o, s)
	return sg.bits[i>>6]&(1<<(i&63)) != 0
}

// clearSet clears all hotness bits of set o (cooling, §4.4).
func (sg *flashSG) clearSet(o int) {
	if sg.bits == nil {
		return
	}
	sg.ensureBases()
	for i := sg.slotBase[o]; i < sg.slotBase[o+1]; i++ {
		sg.bits[i>>6] &^= 1 << (i & 63)
	}
}

// idxGroup aggregates the set-level Bloom filters of up to SGsPerIndexGroup
// SGs (§4.3). While unsealed, the filters live in the in-memory index-group
// buffer; sealing packs them into PBFG pages (one per intra-SG offset, each
// holding the filters of that offset across all member SGs) and writes them
// to an index-pool zone.
type idxGroup struct {
	id        int
	zones     []int // index zones once sealed, nil before
	sealed    bool
	members   []*flashSG
	liveCount int
	// slotBF[s] holds member s's filters: SetsPerSG filters of bfBytes
	// each, concatenated by set offset. Retained until sealing; the page
	// for offset o is assembled at seal time (writepath.go buildAndAppend)
	// by gathering slice o from every member. Each member's slice is
	// immutable once appended, which is what lets the unlocked build phase
	// assemble PBFG pages from a seal-phase snapshot of this list.
	slotBF [][]byte
}

// pbfgKey identifies one PBFG page: the filters of intra-SG offset Set
// across index group Group's SGs.
type pbfgKey struct {
	group int
	set   int
}

// pbfgCache is the FIFO in-memory index cache (§5.1: "The index cache is
// FIFO-style, which reduces lock contention ... compared to LRU").
//
// Cached pages are immutable: once put, a page's bytes are never modified
// or recycled, so the concurrent read path may Bloom-test a page slice it
// snapshotted under the lock after releasing it (readpath.go). Eviction
// and dropGroup only drop references; a reader still holding one keeps the
// page alive.
type pbfgCache struct {
	capacity int
	queue    []pbfgKey
	head     int // index of the oldest entry within queue
	pages    map[pbfgKey][]byte

	// byGroup indexes the cached set offsets per group so dropGroup is
	// O(pages-in-group) instead of a scan over the whole page map.
	byGroup map[int]map[int]struct{}

	// droppedUpTo is the dead-group watermark: SG pools retire index
	// groups strictly in id order (the pool is FIFO and ids are dense), so
	// every group ≤ the watermark is dead and its queue entries can never
	// be re-put. stale approximates how many such entries linger in the
	// queue; compaction sweeps them once they dominate.
	droppedUpTo int
	stale       int
	queued      map[int]int // queue entries per group (for the stale count)

	lookups uint64 // sealed-group PBFG queries
	misses  uint64 // queries requiring a flash fetch
}

func newPBFGCache(capacity int) *pbfgCache {
	if capacity < 0 {
		capacity = 0
	}
	return &pbfgCache{
		capacity:    capacity,
		pages:       make(map[pbfgKey][]byte),
		byGroup:     make(map[int]map[int]struct{}),
		queued:      make(map[int]int),
		droppedUpTo: -1,
	}
}

func (pc *pbfgCache) has(k pbfgKey) bool {
	_, ok := pc.pages[k]
	return ok
}

func (pc *pbfgCache) get(k pbfgKey) ([]byte, bool) {
	p, ok := pc.pages[k]
	return p, ok
}

func (pc *pbfgCache) put(k pbfgKey, page []byte) {
	if pc.capacity == 0 {
		return
	}
	if _, ok := pc.pages[k]; ok {
		return
	}
	for len(pc.pages) >= pc.capacity {
		old := pc.queue[pc.head]
		pc.head++
		pc.popQueued(old.group)
		if _, ok := pc.pages[old]; ok {
			delete(pc.pages, old)
			pc.forget(old)
		}
		pc.maybeCompact()
	}
	pc.pages[k] = page
	pc.queue = append(pc.queue, k)
	pc.queued[k.group]++
	sets := pc.byGroup[k.group]
	if sets == nil {
		sets = make(map[int]struct{})
		pc.byGroup[k.group] = sets
	}
	sets[k.set] = struct{}{}
}

// forget removes k from the per-group index after its page left the map.
func (pc *pbfgCache) forget(k pbfgKey) {
	if sets := pc.byGroup[k.group]; sets != nil {
		delete(sets, k.set)
		if len(sets) == 0 {
			delete(pc.byGroup, k.group)
		}
	}
}

// popQueued retires one queue entry of the group from the stale accounting.
func (pc *pbfgCache) popQueued(group int) {
	if n, ok := pc.queued[group]; ok {
		if n <= 1 {
			delete(pc.queued, group)
		} else {
			pc.queued[group] = n - 1
		}
	}
	if group <= pc.droppedUpTo && pc.stale > 0 {
		pc.stale--
	}
}

// dropGroup purges a dead group's pages — O(pages cached for the group) via
// the per-group index — and schedules the queue entries it strands for
// compaction once they dominate the queue.
func (pc *pbfgCache) dropGroup(group int) {
	for set := range pc.byGroup[group] {
		delete(pc.pages, pbfgKey{group: group, set: set})
	}
	delete(pc.byGroup, group)
	if group > pc.droppedUpTo {
		pc.droppedUpTo = group
	}
	pc.stale += pc.queued[group]
	delete(pc.queued, group)
	pc.compactStale()
}

// compactStale rewrites the queue without dead-group leftovers once they
// outnumber the live entries. Entries of live groups — including stale
// duplicates from evict/re-put cycles — are preserved verbatim so the
// eviction order of live pages is untouched; dead-group entries can never
// be re-put (the group is gone from the group list), so removing them
// changes no future eviction decision.
func (pc *pbfgCache) compactStale() {
	live := len(pc.queue) - pc.head - pc.stale
	if pc.stale < 64 || pc.stale <= live {
		return
	}
	kept := pc.queue[:0]
	for _, k := range pc.queue[pc.head:] {
		if k.group > pc.droppedUpTo {
			kept = append(kept, k)
		}
	}
	pc.queue = kept
	pc.head = 0
	pc.stale = 0
}

func (pc *pbfgCache) maybeCompact() {
	if pc.head > len(pc.queue)/2 && pc.head > 1024 {
		pc.queue = append([]pbfgKey(nil), pc.queue[pc.head:]...)
		pc.head = 0
	}
}

// fetchPBFG returns the raw PBFG page for (group, set o) on behalf of the
// write-path shadow checks (deletion and writeback), consulting the index
// cache or flash. Flash reads are still accounted, but not as index-cache
// traffic — the Figure 19b miss ratio counts only lookup-path queries,
// which the read path charges itself during its plan phase (readpath.go).
func (c *Cache) fetchPBFG(g *idxGroup, o int) (raw []byte, done time.Duration, err error) {
	if !g.sealed {
		return nil, 0, nil // caller tests unsealed filters per slot
	}
	k := pbfgKey{group: g.id, set: o}
	if page, ok := c.icache.get(k); ok {
		return page, 0, nil
	}
	page := make([]byte, c.pageSize)
	d, err := c.dev.ReadPage(c.pageAddrIn(g.zones, o), page)
	if err != nil {
		return nil, 0, fmt.Errorf("core: reading PBFG page: %w", err)
	}
	c.stats.FlashReadOps++
	c.stats.FlashBytesRead += uint64(c.pageSize)
	c.icache.put(k, page)
	return page, d, nil
}

// pbfgResident reports whether the PBFG covering (group, set o) is in
// memory — cached, or still in the unsealed index-group buffer. This is the
// recency half of the hybrid hotness signal (§4.4) and must not trigger I/O.
func (c *Cache) pbfgResident(g *idxGroup, o int) bool {
	if !g.sealed {
		return true
	}
	return c.icache.has(pbfgKey{group: g.id, set: o})
}

// testMember tests member slot s of group g for fp at offset o using the
// assembled page (sealed) or the buffer (unsealed).
func (c *Cache) testMember(g *idxGroup, page []byte, s, o int, ps *bloom.ProbeSet) bool {
	if g.sealed {
		return bloom.TestRaw(page[s*c.bfBytes:(s+1)*c.bfBytes], ps)
	}
	bf := g.slotBF[s]
	return bloom.TestRaw(bf[o*c.bfBytes:(o+1)*c.bfBytes], ps)
}
