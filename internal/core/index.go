package core

import (
	"fmt"
	"time"

	"nemo/internal/bloom"
)

// flashSG describes one immutable on-flash Set-Group in the FIFO pool.
type flashSG struct {
	id    uint64 // monotonically increasing flush sequence number
	zones []int  // data zones holding the SG (len == Config.ZonesPerSG)
	group *idxGroup
	slot  int // position of this SG's filters within the group

	setCounts []uint16 // objects per set at flush time
	slotBase  []uint32 // prefix sums over setCounts (len SetsPerSG+1)
	objCount  int
	fill      float64 // aggregate fill rate at flush
	dead      bool

	// bits is the 1-bit-per-object hotness bitmap, allocated lazily once
	// the SG enters the tracked tail of the pool (§4.4).
	bits []uint64
}

func (sg *flashSG) ensureBases() {
	if sg.slotBase != nil {
		return
	}
	sg.slotBase = make([]uint32, len(sg.setCounts)+1)
	var run uint32
	for i, c := range sg.setCounts {
		sg.slotBase[i] = run
		run += uint32(c)
	}
	sg.slotBase[len(sg.setCounts)] = run
}

// bitIndex returns the bitmap position of (set o, slot s).
func (sg *flashSG) bitIndex(o, s int) uint32 {
	sg.ensureBases()
	return sg.slotBase[o] + uint32(s)
}

func (sg *flashSG) ensureBits() {
	if sg.bits == nil {
		sg.bits = make([]uint64, (sg.objCount+63)/64)
	}
}

func (sg *flashSG) setBit(o, s int) {
	sg.ensureBits()
	i := sg.bitIndex(o, s)
	sg.bits[i>>6] |= 1 << (i & 63)
}

func (sg *flashSG) bit(o, s int) bool {
	if sg.bits == nil {
		return false
	}
	i := sg.bitIndex(o, s)
	return sg.bits[i>>6]&(1<<(i&63)) != 0
}

// clearSet clears all hotness bits of set o (cooling, §4.4).
func (sg *flashSG) clearSet(o int) {
	if sg.bits == nil {
		return
	}
	sg.ensureBases()
	for i := sg.slotBase[o]; i < sg.slotBase[o+1]; i++ {
		sg.bits[i>>6] &^= 1 << (i & 63)
	}
}

// idxGroup aggregates the set-level Bloom filters of up to SGsPerIndexGroup
// SGs (§4.3). While unsealed, the filters live in the in-memory index-group
// buffer; sealing packs them into PBFG pages (one per intra-SG offset, each
// holding the filters of that offset across all member SGs) and writes them
// to an index-pool zone.
type idxGroup struct {
	id        int
	zones     []int // index zones once sealed, nil before
	sealed    bool
	members   []*flashSG
	liveCount int
	// slotBF[s] holds member s's filters: SetsPerSG filters of bfBytes
	// each, concatenated by set offset. Retained until sealing; the page
	// for offset o is assembled by gathering slice o from every member.
	slotBF [][]byte
}

// pageFor assembles the PBFG page for intra-SG offset o from the unsealed
// buffer (used at seal time).
func (g *idxGroup) pageFor(o, bfBytes, pageSize int) []byte {
	page := make([]byte, 0, pageSize)
	for _, bf := range g.slotBF {
		page = append(page, bf[o*bfBytes:(o+1)*bfBytes]...)
	}
	return page
}

// pbfgKey identifies one PBFG page: the filters of intra-SG offset Set
// across index group Group's SGs.
type pbfgKey struct {
	group int
	set   int
}

// pbfgCache is the FIFO in-memory index cache (§5.1: "The index cache is
// FIFO-style, which reduces lock contention ... compared to LRU").
type pbfgCache struct {
	capacity int
	queue    []pbfgKey
	head     int // index of the oldest entry within queue
	pages    map[pbfgKey][]byte

	lookups uint64 // sealed-group PBFG queries
	misses  uint64 // queries requiring a flash fetch
}

func newPBFGCache(capacity int) *pbfgCache {
	if capacity < 0 {
		capacity = 0
	}
	return &pbfgCache{capacity: capacity, pages: make(map[pbfgKey][]byte)}
}

func (pc *pbfgCache) has(k pbfgKey) bool {
	_, ok := pc.pages[k]
	return ok
}

func (pc *pbfgCache) get(k pbfgKey) ([]byte, bool) {
	p, ok := pc.pages[k]
	return p, ok
}

func (pc *pbfgCache) put(k pbfgKey, page []byte) {
	if pc.capacity == 0 {
		return
	}
	if _, ok := pc.pages[k]; ok {
		return
	}
	for len(pc.pages) >= pc.capacity {
		old := pc.queue[pc.head]
		pc.head++
		if _, ok := pc.pages[old]; ok {
			delete(pc.pages, old)
		}
		pc.maybeCompact()
	}
	pc.pages[k] = page
	pc.queue = append(pc.queue, k)
}

// dropGroup purges a dead group's pages so stale entries stop consuming
// capacity.
func (pc *pbfgCache) dropGroup(group int) {
	for k := range pc.pages {
		if k.group == group {
			delete(pc.pages, k)
		}
	}
	// Queue entries for deleted keys are skipped on eviction.
}

func (pc *pbfgCache) maybeCompact() {
	if pc.head > len(pc.queue)/2 && pc.head > 1024 {
		pc.queue = append([]pbfgKey(nil), pc.queue[pc.head:]...)
		pc.head = 0
	}
}

// getPBFG returns the raw PBFG page for (group, set o), consulting the
// unsealed buffer, the index cache, or flash in that order. The returned
// completion time is zero unless a flash read was issued.
func (c *Cache) getPBFG(g *idxGroup, o int) (raw []byte, done time.Duration, err error) {
	return c.fetchPBFG(g, o, true)
}

// fetchPBFG implements getPBFG; countStats distinguishes lookup-path
// queries (counted in the Figure 19b index-cache miss ratio) from
// eviction-path shadow checks (flash reads still accounted, but not as
// index-cache traffic).
func (c *Cache) fetchPBFG(g *idxGroup, o int, countStats bool) (raw []byte, done time.Duration, err error) {
	if !g.sealed {
		return nil, 0, nil // caller tests unsealed filters per slot
	}
	k := pbfgKey{group: g.id, set: o}
	if countStats {
		c.icache.lookups++
	}
	if page, ok := c.icache.get(k); ok {
		return page, 0, nil
	}
	if countStats {
		c.icache.misses++
	}
	page := make([]byte, c.pageSize)
	d, err := c.dev.ReadPage(c.pageAddrIn(g.zones, o), page)
	if err != nil {
		return nil, 0, fmt.Errorf("core: reading PBFG page: %w", err)
	}
	c.stats.FlashReadOps++
	c.stats.FlashBytesRead += uint64(c.pageSize)
	c.icache.put(k, page)
	return page, d, nil
}

// pbfgResident reports whether the PBFG covering (group, set o) is in
// memory — cached, or still in the unsealed index-group buffer. This is the
// recency half of the hybrid hotness signal (§4.4) and must not trigger I/O.
func (c *Cache) pbfgResident(g *idxGroup, o int) bool {
	if !g.sealed {
		return true
	}
	return c.icache.has(pbfgKey{group: g.id, set: o})
}

// testMember tests member slot s of group g for fp at offset o using the
// assembled page (sealed) or the buffer (unsealed).
func (c *Cache) testMember(g *idxGroup, page []byte, s, o int, ps *bloom.ProbeSet) bool {
	if g.sealed {
		return bloom.TestRaw(page[s*c.bfBytes:(s+1)*c.bfBytes], ps)
	}
	bf := g.slotBF[s]
	return bloom.TestRaw(bf[o*c.bfBytes:(o+1)*c.bfBytes], ps)
}
