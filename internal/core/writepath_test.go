package core

// Tests for the concurrent three-phase write path (writepath.go): sealed-SG
// visibility during an in-flight flush, write-fault surfacing through
// Stats.WriteErrors on both the sync and async paths, the flush-log cap
// counter, a SET/flush-vs-GET race stress, and the steady-state Set
// allocation pin.

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"nemo/internal/device"
	"nemo/internal/devtest"
	"nemo/internal/flashsim"
)

func wpKey(i int) []byte   { return []byte(fmt.Sprintf("wp-key-%06d-pad", i)) }
func wpValue(i int) []byte { return []byte(fmt.Sprintf("wp-value-%06d-padpadpad", i)) }

// TestSealedSGServesReadsDuringFlush pins the sealed-SG window: while a
// flush is in flight (its first device append deterministically parked on
// a blocking write hook, with the shard lock released), the flushing SG's
// objects must stay readable, deletable (via tombstone), and overwritable
// — and the outcomes must survive the flush's commit.
func TestSealedSGServesReadsDuringFlush(t *testing.T) {
	dev := flashsim.New(flashsim.Config{PageSize: 512, PagesPerZone: 16, Zones: 16})
	cfg := DefaultConfig(dev, 8)
	cfg.SGsPerIndexGroup = 4
	cfg.TargetObjsPerSet = 8
	cfg.FlushThreshold = 1 << 20 // no sacrifice-triggered flushes
	cfg.RearFullRatio = 1.0      // no rear-full-triggered flushes
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const n = 12
	for i := 0; i < n; i++ {
		if err := c.Set(wpKey(i), wpValue(i)); err != nil {
			t.Fatal(err)
		}
	}

	// Park the flush's first append: the hook blocks on the owner
	// goroutine during the unlocked build phase, so the shard lock is free
	// while we probe the sealed window.
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	dev.SetWriteFault(func(zone int) error {
		once.Do(func() {
			close(entered)
			<-release
		})
		return nil
	})
	flushErr := make(chan error, 1)
	go func() { flushErr <- c.Flush() }()
	<-entered

	// The flush is mid-build: every flushed key must still hit from the
	// sealed SG.
	for i := 0; i < n; i++ {
		v, hit := c.Get(wpKey(i))
		if !hit || string(v) != string(wpValue(i)) {
			t.Fatalf("key %d unreadable during flush: %q, %v", i, v, hit)
		}
	}
	if got := c.MemObjects(); got < n {
		t.Fatalf("MemObjects = %d during flush, want >= %d (sealed SG counted)", got, n)
	}
	// A Delete racing the flush must shadow the sealed copy (which WILL
	// land on flash) with a tombstone.
	if err := c.Delete(wpKey(0)); err != nil {
		t.Fatal(err)
	}
	if _, hit := c.Get(wpKey(0)); hit {
		t.Fatal("deleted key still hits during flush")
	}
	// An overwrite racing the flush must win over the sealed copy.
	fresh := []byte("wp-fresh-value-padpadpadpad")
	if err := c.Set(wpKey(1), fresh); err != nil {
		t.Fatal(err)
	}
	if v, hit := c.Get(wpKey(1)); !hit || string(v) != string(fresh) {
		t.Fatalf("overwrite lost during flush: %q, %v", v, hit)
	}

	close(release)
	if err := <-flushErr; err != nil {
		t.Fatalf("flush failed: %v", err)
	}
	dev.SetWriteFault(nil)

	// Post-commit: flash serves the survivors, the tombstone still shadows
	// the flushed copy, the overwrite still wins.
	if got := c.PoolLen(); got != 1 {
		t.Fatalf("pool holds %d SGs after flush, want 1", got)
	}
	for i := 2; i < n; i++ {
		v, hit := c.Get(wpKey(i))
		if !hit || string(v) != string(wpValue(i)) {
			t.Fatalf("key %d unreadable after flush: %q, %v", i, v, hit)
		}
	}
	if _, hit := c.Get(wpKey(0)); hit {
		t.Fatal("tombstone did not shadow the flushed copy")
	}
	if v, hit := c.Get(wpKey(1)); !hit || string(v) != string(fresh) {
		t.Fatalf("overwrite lost after flush: %q, %v", v, hit)
	}
}

// TestFlushWriteErrorSurfacesSync pins the failure contract on the
// synchronous path: a device append error fails the Set that triggered the
// flush, increments Stats.WriteErrors immediately, drops the sealed SG's
// objects as evictions, and leaves the cache fully usable.
func TestFlushWriteErrorSurfacesSync(t *testing.T) {
	devtest.Run(t, func(t *testing.T, b devtest.Backend) {
		dev := b.New(t, device.Geometry{PageSize: 512, PagesPerZone: 16, Zones: 16})
		c := testCacheOn(t, dev, nil)

		boom := errors.New("injected append fault")
		dev.SetWriteFault(func(zone int) error { return boom })
		var setErr error
		for i := 0; i < 2000 && setErr == nil; i++ {
			setErr = c.Set(wpKey(i), wpValue(i))
		}
		if !errors.Is(setErr, boom) {
			t.Fatalf("flush fault never surfaced on Set: %v", setErr)
		}
		st := c.Stats()
		if st.WriteErrors == 0 {
			t.Fatalf("WriteErrors = 0 after failed flush: %+v", st)
		}
		if st.Evictions == 0 {
			t.Fatal("dropped sealed SG's objects were not counted as evictions")
		}
		if got := c.PoolLen(); got != 0 {
			t.Fatalf("failed flush published %d SGs", got)
		}

		// The device recovers; the cache must flush and serve again.
		dev.SetWriteFault(nil)
		for i := 10000; i < 14000; i++ {
			if err := c.Set(wpKey(i), wpValue(i)); err != nil {
				t.Fatalf("post-fault Set: %v", err)
			}
		}
		if c.PoolLen() == 0 {
			t.Fatal("no SG reached flash after the fault cleared")
		}
		hits := 0
		for i := 13000; i < 14000; i++ {
			if v, hit := c.Get(wpKey(i)); hit {
				if string(v) != string(wpValue(i)) {
					t.Fatalf("corrupt value after recovery: %q", v)
				}
				hits++
			}
		}
		if hits == 0 {
			t.Fatal("no hits after recovery")
		}
	})
}

// TestFlushWriteErrorSurfacesAsync pins the async failure contract: a
// deferred flush's device error lands in Stats.WriteErrors as it happens —
// observable before any Drain — and the same error surfaces on Drain.
func TestFlushWriteErrorSurfacesAsync(t *testing.T) {
	devtest.Run(t, func(t *testing.T, b devtest.Backend) {
		dev := b.New(t, device.Geometry{PageSize: 512, PagesPerZone: 16, Zones: 16})
		c := testCacheOn(t, dev, func(cfg *Config) { cfg.Flushers = 1 })
		defer c.Close()

		boom := errors.New("injected async append fault")
		failed := make(chan struct{})
		var once sync.Once
		dev.SetWriteFault(func(zone int) error {
			once.Do(func() { close(failed) })
			return boom
		})
		for i := 0; i < 4000; i++ {
			if err := c.SetAsync(wpKey(i), wpValue(i)); err != nil {
				// Backpressure can route a flush inline; that error is the
				// same injected fault and proves the sync surfacing instead.
				if !errors.Is(err, boom) {
					t.Fatalf("unexpected SetAsync error: %v", err)
				}
				break
			}
		}
		<-failed
		// The counter must reflect the failure without waiting for Drain.
		deadline := time.Now().Add(5 * time.Second)
		for c.Stats().WriteErrors == 0 {
			if time.Now().After(deadline) {
				t.Fatal("WriteErrors never incremented after async flush fault")
			}
			time.Sleep(time.Millisecond)
		}
		if err := c.Drain(); err != nil && !errors.Is(err, boom) {
			t.Fatalf("Drain returned a different error: %v", err)
		}

		// Recovery: with the fault cleared the pipeline flushes again.
		dev.SetWriteFault(nil)
		for i := 10000; i < 13000; i++ {
			if err := c.SetAsync(wpKey(i), wpValue(i)); err != nil {
				t.Fatalf("post-fault SetAsync: %v", err)
			}
		}
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
		if c.PoolLen() == 0 {
			t.Fatal("no SG reached flash after the async fault cleared")
		}
	})
}

// TestFlushRecordsDroppedCounted drives more flushes than maxFlushLog and
// checks the cap is no longer silent: the log stops at the cap and every
// flush past it is counted in NemoStats.FlushRecordsDropped.
func TestFlushRecordsDroppedCounted(t *testing.T) {
	dev := flashsim.New(flashsim.Config{PageSize: 256, PagesPerZone: 2, Zones: 8})
	cfg := DefaultConfig(dev, 4)
	cfg.SGsPerIndexGroup = 2
	cfg.TargetObjsPerSet = 4
	cfg.FlushThreshold = 1
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; c.Extra().SGsFlushed <= maxFlushLog && i < 200_000; i++ {
		if err := c.Set(wpKey(i%3000), wpValue(i)); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	ex := c.Extra()
	if ex.SGsFlushed <= maxFlushLog {
		t.Fatalf("geometry too large: only %d flushes", ex.SGsFlushed)
	}
	if got := len(c.FlushLog()); got != maxFlushLog {
		t.Fatalf("flush log holds %d records, want exactly the %d cap", got, maxFlushLog)
	}
	if want := ex.SGsFlushed - maxFlushLog; ex.FlushRecordsDropped != want {
		t.Fatalf("FlushRecordsDropped = %d, want %d (= %d flushes - %d cap)",
			ex.FlushRecordsDropped, want, ex.SGsFlushed, maxFlushLog)
	}
}

// TestConcurrentWriteProtocolStress races SetAsync/Set/Delete churn —
// constant flushing and eviction through the three-phase protocol —
// against GETs on one shard. Run under -race this is the data-race proof
// of the seal/build/commit windows; the value check proves a hit never
// returns foreign or torn data no matter how the phases interleave.
func TestConcurrentWriteProtocolStress(t *testing.T) {
	dev := flashsim.New(flashsim.Config{PageSize: 512, PagesPerZone: 8, Zones: 20})
	cfg := DefaultConfig(dev, 8)
	cfg.SGsPerIndexGroup = 2
	cfg.TargetObjsPerSet = 8
	cfg.FlushThreshold = 4
	cfg.Flushers = 2
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 4
	keys := 600
	opsPer := 8000
	if testing.Short() {
		opsPer = 2000
	}
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 42))
			for op := 0; op < opsPer; op++ {
				i := rng.Intn(keys)
				switch rng.Intn(10) {
				case 0:
					if err := c.Delete(wpKey(i)); err != nil {
						errs <- fmt.Errorf("delete: %w", err)
						return
					}
				case 1, 2, 3:
					if err := c.SetAsync(wpKey(i), wpValue(i)); err != nil {
						errs <- fmt.Errorf("setasync: %w", err)
						return
					}
				case 4:
					if err := c.Set(wpKey(i), wpValue(i)); err != nil {
						errs <- fmt.Errorf("set: %w", err)
						return
					}
				default:
					if v, hit := c.Get(wpKey(i)); hit && string(v) != string(wpValue(i)) {
						errs <- fmt.Errorf("key %d: corrupt hit %q", i, v)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < keys; i++ {
		if v, hit := c.Get(wpKey(i)); hit && string(v) != string(wpValue(i)) {
			t.Fatalf("key %d corrupt after drain: %q", i, v)
		}
	}
	if c.Extra().SGsFlushed == 0 {
		t.Fatal("stress run never flushed")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSetAllocationsSteadyState pins the write path's allocation budget:
// a steady-state Set — an in-place overwrite that triggers no flush —
// allocates nothing, on both the synchronous and the async entry points.
// (Flush-triggering Sets allocate the fresh rear SG and the new flash-SG
// metadata, amortized over an entire SG of inserts.)
func TestSetAllocationsSteadyState(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race instrumentation allocates; the pin runs in the non-race CI lane")
	}
	pin := func(t *testing.T, c *Cache, set func(k, v []byte) error) {
		const n = 16
		keys := make([][]byte, n)
		vals := make([][]byte, n)
		for i := 0; i < n; i++ {
			keys[i], vals[i] = wpKey(i), wpValue(i)
			if err := set(keys[i], vals[i]); err != nil {
				t.Fatal(err)
			}
		}
		got := testing.AllocsPerRun(300, func() {
			for i := 0; i < n; i++ {
				if err := set(keys[i], vals[i]); err != nil {
					t.Fatal(err)
				}
			}
		})
		if perOp := got / n; perOp > 0 {
			t.Errorf("steady-state Set allocates %.2f times per op, want 0", perOp)
		}
	}
	t.Run("sync", func(t *testing.T) {
		c := testCache(t, nil)
		pin(t, c, c.Set)
	})
	t.Run("async", func(t *testing.T) {
		c := testCache(t, func(cfg *Config) { cfg.Flushers = 1 })
		defer c.Close()
		pin(t, c, c.SetAsync)
	})
}
