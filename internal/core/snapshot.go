package core

// Warm restart: Checkpoint captures a quiescent engine's per-shard metadata
// into an internal/snapshot NEMO1 image, and the restore path in New /
// NewSharded adopts one — replaying nothing — after validating it against
// the live device and configuration. The contract is strictly throwaway:
// any defect (typed snapshot error, geometry or config mismatch, stale
// generation stamp, violated structural invariant, unreadable PBFG page)
// abandons the snapshot and the engine starts cold, exactly as if the file
// never existed; RestoreOutcome reports which happened and why.
//
// What a snapshot restores is everything a restarted engine needs to be
// stat-for-stat identical to one that never stopped: the flashSG directory
// and index groups (with unsealed Bloom-filter buffers and hotness
// bitmaps), zone free-list order, epoch counters, the buffered in-memory
// SGs, the PBFG index-cache queue (cached pages are re-read from flash, not
// stored), and all statistics. Deliberately not durable: the read-latency
// histogram (measurement, not state) and any in-flight flush — Checkpoint
// waits flushes out, so a snapshot never describes a half-committed SG.

import (
	"errors"
	"fmt"
	"io/fs"
	"sort"

	"nemo/internal/cachelib"
	"nemo/internal/device"
	"nemo/internal/snapshot"
)

// configStamp reduces a Config to the snapshot's ConfigStamp: the fields
// that shape on-flash layout or checkpointed state, with the same
// normalizations New applies (Shards and, without BufferedSGs, InMemSGs
// collapse to 1), so a facade Config and its shards' derived Configs stamp
// consistently.
func configStamp(cfg Config) snapshot.ConfigStamp {
	st := snapshot.ConfigStamp{
		DataZones:         cfg.DataZones,
		Shards:            cfg.Shards,
		ZoneOffset:        cfg.ZoneOffset,
		ZonesPerSG:        cfg.ZonesPerSG,
		InMemSGs:          cfg.InMemSGs,
		FlushThreshold:    cfg.FlushThreshold,
		RearFullRatio:     cfg.RearFullRatio,
		SGsPerIndexGroup:  cfg.SGsPerIndexGroup,
		BloomFPR:          cfg.BloomFPR,
		TargetObjsPerSet:  cfg.TargetObjsPerSet,
		CachedPBFGRatio:   cfg.CachedPBFGRatio,
		HotTrackTailRatio: cfg.HotTrackTailRatio,
		CoolingWriteRatio: cfg.CoolingWriteRatio,
		BufferedSGs:       cfg.BufferedSGs,
		DelayedFlush:      cfg.DelayedFlush,
		Writeback:         cfg.Writeback,
	}
	if st.Shards < 1 {
		st.Shards = 1
	}
	if !st.BufferedSGs {
		st.InMemSGs = 1
	}
	return st
}

// Checkpoint writes a NEMO1 snapshot of this cache to path (atomically, via
// rename). Pending deferred flushes are drained and any in-flight flush is
// waited out first, so the captured state is a clean commit boundary; the
// device generation stamp is sampled inside the same quiescent window,
// making the snapshot exactly as valid as the device is untouched.
func (c *Cache) Checkpoint(path string) error {
	if err := c.Drain(); err != nil {
		return fmt.Errorf("core: draining before checkpoint: %w", err)
	}
	c.mu.Lock()
	c.waitFlushIdleLocked()
	sh := c.captureLocked()
	gen := c.dev.Generation()
	c.mu.Unlock()
	f := &snapshot.File{
		PageSize:     c.dev.PageSize(),
		PagesPerZone: c.dev.PagesPerZone(),
		Zones:        c.dev.Zones(),
		Boot:         gen.Boot,
		Writes:       gen.Writes,
		Config:       configStamp(c.cfg),
		Shards:       []snapshot.Shard{sh},
	}
	return snapshot.Save(path, f)
}

// RestoreOutcome reports what happened to Config.SnapshotPath at New time:
// restored is true after a successful warm restore; err holds the typed
// reason a snapshot was refused (nil when none existed — a plain cold
// start). A refused snapshot never fails New; the engine just starts cold.
func (c *Cache) RestoreOutcome() (restored bool, err error) {
	return c.restored, c.restoreErr
}

// captureLocked snapshots one shard's complete metadata. Caller holds c.mu
// with no flush in flight (c.sealed == nil), so memq, the group directory,
// and the free lists are all at a commit boundary.
func (c *Cache) captureLocked() snapshot.Shard {
	sh := snapshot.Shard{
		NextSGID:       c.nextSGID,
		NextGroup:      c.nextGroup,
		SacCount:       c.sacCount,
		BytesSinceCool: c.bytesSinceCool,
		ICLookups:      c.icache.lookups,
		ICMisses:       c.icache.misses,
		ICDroppedUpTo:  c.icache.droppedUpTo,
		Stats:          countersOf(c.stats),
		Extra:          extraOf(c.extra),
		FreeDataZones:  append([]int(nil), c.freeDataZones...),
		FreeIndexZones: append([]int(nil), c.freeIndexZones...),
	}
	for _, g := range c.groups {
		sg := snapshot.Group{
			ID:        g.id,
			Sealed:    g.sealed,
			LiveCount: g.liveCount,
			Zones:     append([]int(nil), g.zones...),
		}
		for _, m := range g.members {
			sm := snapshot.SG{
				ID:       m.id,
				Slot:     m.slot,
				Dead:     m.dead,
				ObjCount: m.objCount,
				Fill:     m.fill,
			}
			// The packed meta carve unpacks into the snapshot's historical
			// field types, so the checkpoint bytes are identical to the
			// map/slice-era layout's: uint16 set counts, uint64 hot words
			// (the carve's hot region is u64-pair aligned exactly so this
			// conversion is a bit-for-bit repack).
			sm.SetCounts = make([]uint16, m.nsets)
			for o := 0; o < m.nsets; o++ {
				sm.SetCounts[o] = uint16(m.setCount(o))
			}
			// A dead SG's zones went back to the free list when it was
			// evicted (writepath.go); the slice left on the struct is stale
			// and would double-claim zones in the restore partition check.
			if !m.dead {
				sm.Zones = append([]int(nil), m.zones...)
			}
			if m.hasBits {
				hw := m.hotWords()
				sm.Bits = make([]uint64, (m.objCount+63)/64)
				for w := range sm.Bits {
					sm.Bits[w] = uint64(hw[2*w]) | uint64(hw[2*w+1])<<32
				}
			}
			sg.Members = append(sg.Members, sm)
		}
		for _, bf := range g.slotBF {
			sg.SlotBF = append(sg.SlotBF, append([]byte(nil), bf...))
		}
		sh.Groups = append(sh.Groups, sg)
	}
	for _, m := range c.memq {
		ms := snapshot.MemSG{
			NewBytes: m.newBytes,
			WBBytes:  m.wbBytes,
			NewObjs:  m.newObjs,
			WBObjs:   m.wbObjs,
		}
		for o := range m.sets {
			ms.Sets = append(ms.Sets, m.sets[o].AppendTo(nil))
		}
		sh.MemQ = append(sh.MemQ, ms)
	}
	for _, p := range c.icache.queue[c.icache.head:] {
		k := unpackPBFG(p)
		sh.ICQueue = append(sh.ICQueue, snapshot.PBFGRef{Group: k.group, Set: k.set})
	}
	c.icache.forEachKey(func(k pbfgKey) {
		sh.ICPages = append(sh.ICPages, snapshot.PBFGRef{Group: k.group, Set: k.set})
	})
	// Map iteration is random; the snapshot is canonical, so order the page
	// list deterministically (restore order does not matter — pages have no
	// order in the live cache either).
	sort.Slice(sh.ICPages, func(i, j int) bool {
		a, b := sh.ICPages[i], sh.ICPages[j]
		if a.Group != b.Group {
			return a.Group < b.Group
		}
		return a.Set < b.Set
	})
	for _, rec := range c.flushLog {
		sh.FlushLog = append(sh.FlushLog, snapshot.FlushRec{
			Fill:     rec.Fill,
			NewObjs:  rec.NewObjs,
			WBObjs:   rec.WBObjs,
			NewBytes: rec.NewBytes,
			WBBytes:  rec.WBBytes,
		})
	}
	return sh
}

// validateSnapshotFile checks the file-level trust anchors: device geometry
// (ErrGeometry), the generation stamp — exact equality, any mutation since
// checkpoint refuses the snapshot (ErrStale) — and the configuration stamp
// plus shard count (ErrConfig).
func validateSnapshotFile(dev device.Device, stamp snapshot.ConfigStamp, f *snapshot.File) error {
	if f.PageSize != dev.PageSize() || f.PagesPerZone != dev.PagesPerZone() || f.Zones != dev.Zones() {
		return fmt.Errorf("%w: snapshot %dx%dx%d, device %dx%dx%d",
			snapshot.ErrGeometry, f.Zones, f.PagesPerZone, f.PageSize,
			dev.Zones(), dev.PagesPerZone(), dev.PageSize())
	}
	gen := dev.Generation()
	if gen.Boot != f.Boot || gen.Writes != f.Writes {
		return fmt.Errorf("%w: snapshot generation %d/%d, device %d/%d",
			snapshot.ErrStale, f.Boot, f.Writes, gen.Boot, gen.Writes)
	}
	if f.Config != stamp {
		return fmt.Errorf("%w: snapshot was taken under a different configuration", snapshot.ErrConfig)
	}
	if len(f.Shards) != stamp.Shards {
		return fmt.Errorf("%w: %d shard sections for %d shards", snapshot.ErrConfig, len(f.Shards), stamp.Shards)
	}
	return nil
}

// tryRestore attempts to adopt the snapshot at path into this freshly built
// cold cache (called from New, before the cache is published — no locking).
// A missing file is a plain cold start (false, nil); anything else that
// stops the restore is reported and the cache stays cold.
func (c *Cache) tryRestore(path string) (bool, error) {
	f, err := snapshot.Load(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return false, nil
		}
		return false, err
	}
	if err := validateSnapshotFile(c.dev, configStamp(c.cfg), f); err != nil {
		return false, err
	}
	st, err := c.buildRestore(&f.Shards[0])
	if err != nil {
		return false, err
	}
	c.adoptRestore(st)
	return true, nil
}

// restoredState is a fully validated shard state, built on the side so a
// restore adopts everything or nothing — a defect found halfway through can
// never leave a cache half-warm.
type restoredState struct {
	memq           []*memSG
	sacCount       int
	sgs            []*flashSG // every arena-allocated SG, for discardRestore
	pool           []*flashSG
	nextSGID       uint64
	groups         []*idxGroup
	nextGroup      int
	icache         *pbfgCache
	freeDataZones  []int
	freeIndexZones []int
	bytesSinceCool uint64
	stats          cachelib.Stats
	extra          NemoStats
	flushLog       []FlushRecord
}

// cfgErr and staleErr build the restore path's typed refusals.
func cfgErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", snapshot.ErrConfig, fmt.Sprintf(format, args...))
}

func staleErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", snapshot.ErrStale, fmt.Sprintf(format, args...))
}

// buildRestore validates one shard's checkpointed metadata against this
// (cold, unpublished) cache's configuration and device, and builds the
// corresponding live state. Every structural invariant the engine relies on
// is re-checked rather than trusted: group/member ordering and sealing,
// set-count/object-count agreement, exact zone partitioning between free
// lists and live SGs, Bloom/bitmap sizing, index-cache subset relations —
// and, against the device itself, the per-zone write pointers (free ⇒
// empty, live ⇒ full). The generation stamp already guarantees the latter
// when it matches, but write pointers are cheap and a second, independent
// witness against a lying snapshot.
func (c *Cache) buildRestore(sh *snapshot.Shard) (*restoredState, error) {
	cfg := &c.cfg
	ppz := c.dev.PagesPerZone()
	if sh.SacCount < 0 || sh.NextGroup < 0 || sh.ICDroppedUpTo < -1 {
		return nil, cfgErr("negative epoch counters")
	}
	if len(sh.FlushLog) > maxFlushLog {
		return nil, cfgErr("flush log of %d exceeds the %d cap", len(sh.FlushLog), maxFlushLog)
	}
	st := &restoredState{
		sacCount:       sh.SacCount,
		nextSGID:       sh.NextSGID,
		nextGroup:      sh.NextGroup,
		bytesSinceCool: sh.BytesSinceCool,
		stats:          statsOf(sh.Stats),
		extra:          nemoStatsOf(sh.Extra),
	}

	// SG structs and their meta come out of this cache's arenas; an
	// abandoned restore releases them so a refused snapshot leaves the cold
	// cache's arenas exactly as New built them.
	built := false
	defer func() {
		if !built {
			for _, m := range st.sgs {
				c.releaseSG(m)
			}
		}
	}()

	// In-memory SG queue: parse every set's page image back into a block.
	if len(sh.MemQ) != cfg.InMemSGs {
		return nil, cfgErr("%d buffered SGs for InMemSGs=%d", len(sh.MemQ), cfg.InMemSGs)
	}
	for i := range sh.MemQ {
		ms := &sh.MemQ[i]
		if len(ms.Sets) != c.setsPerSG {
			return nil, cfgErr("buffered SG %d has %d sets, want %d", i, len(ms.Sets), c.setsPerSG)
		}
		m := newMemSG(c.setsPerSG, c.pageSize)
		m.newBytes, m.wbBytes = ms.NewBytes, ms.WBBytes
		m.newObjs, m.wbObjs = ms.NewObjs, ms.WBObjs
		m.used = 0
		for o, page := range ms.Sets {
			if len(page) != c.pageSize {
				return nil, cfgErr("buffered SG %d set %d is %d bytes, want %d", i, o, len(page), c.pageSize)
			}
			if err := m.sets[o].DecodeFrom(page); err != nil {
				return nil, cfgErr("buffered SG %d set %d: %v", i, o, err)
			}
			m.used += m.sets[o].Used()
		}
		st.memq = append(st.memq, m)
	}

	// Index groups and their member SGs. All but the last group must be
	// sealed (groups seal in creation order); SG ids must strictly increase
	// in traversal order (dense except where a failed flush burned an id).
	groupByID := make(map[int]*idxGroup, len(sh.Groups))
	prevGroupID := -1
	var prevSGID uint64
	haveSG := false
	for gi := range sh.Groups {
		sg := &sh.Groups[gi]
		if sg.ID <= prevGroupID || sg.ID >= sh.NextGroup {
			return nil, cfgErr("group id %d out of order (prev %d, next %d)", sg.ID, prevGroupID, sh.NextGroup)
		}
		prevGroupID = sg.ID
		if !sg.Sealed && gi != len(sh.Groups)-1 {
			return nil, cfgErr("unsealed group %d is not the last group", sg.ID)
		}
		g := &idxGroup{id: sg.ID, sealed: sg.Sealed, liveCount: sg.LiveCount}
		live := 0
		if sg.Sealed {
			if len(sg.Members) != cfg.SGsPerIndexGroup {
				return nil, cfgErr("sealed group %d has %d members, want %d", sg.ID, len(sg.Members), cfg.SGsPerIndexGroup)
			}
			if len(sg.Zones) != cfg.ZonesPerSG {
				return nil, cfgErr("sealed group %d has %d index zones, want %d", sg.ID, len(sg.Zones), cfg.ZonesPerSG)
			}
			if sg.LiveCount < 1 {
				return nil, cfgErr("sealed group %d is fully dead but still present", sg.ID)
			}
			if len(sg.SlotBF) != 0 {
				return nil, cfgErr("sealed group %d still carries filter buffers", sg.ID)
			}
			g.zones = append([]int(nil), sg.Zones...)
		} else {
			if len(sg.Members) >= cfg.SGsPerIndexGroup {
				return nil, cfgErr("unsealed group %d has %d members, limit %d", sg.ID, len(sg.Members), cfg.SGsPerIndexGroup)
			}
			if len(sg.Zones) != 0 {
				return nil, cfgErr("unsealed group %d has index zones", sg.ID)
			}
			if len(sg.SlotBF) != len(sg.Members) {
				return nil, cfgErr("unsealed group %d has %d filter buffers for %d members", sg.ID, len(sg.SlotBF), len(sg.Members))
			}
			// Future members flush their filters into this group's backing
			// slab (writepath.go), so rebuild it and carve the checkpointed
			// buffers back into their slots.
			slotBytes := c.setsPerSG * c.bfBytes
			g.bfBacking = make([]byte, cfg.SGsPerIndexGroup*slotBytes)
			for s, bf := range sg.SlotBF {
				if len(bf) != slotBytes {
					return nil, cfgErr("group %d filter buffer %d is %d bytes, want %d", sg.ID, s, len(bf), slotBytes)
				}
				carve := g.bfBacking[s*slotBytes : (s+1)*slotBytes : (s+1)*slotBytes]
				copy(carve, bf)
				g.slotBF = append(g.slotBF, carve)
			}
		}
		for s := range sg.Members {
			sm := &sg.Members[s]
			if sm.Slot != s {
				return nil, cfgErr("group %d member %d claims slot %d", sg.ID, s, sm.Slot)
			}
			if haveSG && sm.ID <= prevSGID {
				return nil, cfgErr("SG id %d out of order after %d", sm.ID, prevSGID)
			}
			if sm.ID >= sh.NextSGID {
				return nil, cfgErr("SG id %d not below nextSGID %d", sm.ID, sh.NextSGID)
			}
			prevSGID, haveSG = sm.ID, true
			if len(sm.SetCounts) != c.setsPerSG {
				return nil, cfgErr("SG %d has %d set counts, want %d", sm.ID, len(sm.SetCounts), c.setsPerSG)
			}
			sum := 0
			for _, n := range sm.SetCounts {
				sum += int(n)
			}
			if sum != sm.ObjCount {
				return nil, cfgErr("SG %d object count %d does not match set counts (%d)", sm.ID, sm.ObjCount, sum)
			}
			if sm.Dead {
				if len(sm.Zones) != 0 {
					return nil, cfgErr("dead SG %d still holds zones", sm.ID)
				}
			} else if len(sm.Zones) != cfg.ZonesPerSG {
				return nil, cfgErr("SG %d spans %d zones, want %d", sm.ID, len(sm.Zones), cfg.ZonesPerSG)
			}
			if sm.Bits != nil && len(sm.Bits) != (sm.ObjCount+63)/64 {
				return nil, cfgErr("SG %d bitmap of %d words for %d objects", sm.ID, len(sm.Bits), sm.ObjCount)
			}
			m := c.sgAlloc.alloc()
			st.sgs = append(st.sgs, m)
			m.id = sm.ID
			m.group = g
			m.slot = s
			m.nsets = c.setsPerSG
			m.objCount = sm.ObjCount
			m.fill = sm.Fill
			m.dead = sm.Dead
			if !sm.Dead {
				m.zones = append(m.zones, sm.Zones...)
			}
			// Carve the packed meta: counts (via the flush scratch — the
			// restore runs pre-publish, single-threaded), prefix sums, and
			// the zeroed hot region, then unpack the checkpointed hot words
			// into it (the inverse of captureLocked's repack).
			for o, n := range sm.SetCounts {
				c.fscratch.counts[o] = uint32(n)
			}
			c.carveMeta(m, c.fscratch.counts)
			if sm.Bits != nil {
				hw := m.hotWords()
				for w, v := range sm.Bits {
					hw[2*w] = uint32(v)
					hw[2*w+1] = uint32(v >> 32)
				}
				m.hasBits = true
			}
			g.members = append(g.members, m)
			if !m.dead {
				st.pool = append(st.pool, m)
				live++
			}
		}
		if live != sg.LiveCount {
			return nil, cfgErr("group %d live count %d does not match members (%d live)", sg.ID, sg.LiveCount, live)
		}
		st.groups = append(st.groups, g)
		groupByID[g.id] = g
	}

	// Zone partitioning: the free lists and the live SGs / sealed groups
	// must tile the shard's data and index ranges exactly — no zone missing,
	// none claimed twice, none outside the shard's slice of the device.
	dataBase := cfg.ZoneOffset
	idxBase := cfg.ZoneOffset + cfg.DataZones
	idxZones := cfg.IndexZones()
	liveData := make([]int, 0, cfg.DataZones)
	for _, m := range st.pool {
		liveData = append(liveData, m.zones...)
	}
	liveIdx := make([]int, 0, idxZones)
	for _, g := range st.groups {
		liveIdx = append(liveIdx, g.zones...)
	}
	if err := checkZonePartition("data", dataBase, cfg.DataZones, sh.FreeDataZones, liveData); err != nil {
		return nil, err
	}
	if err := checkZonePartition("index", idxBase, idxZones, sh.FreeIndexZones, liveIdx); err != nil {
		return nil, err
	}
	st.freeDataZones = append([]int(nil), sh.FreeDataZones...)
	st.freeIndexZones = append([]int(nil), sh.FreeIndexZones...)

	// Device write-pointer cross-check: free zones are erased, live zones
	// written to completion. The generation stamp already vouches for this;
	// a mismatch means the snapshot lies about the device, which is staleness
	// however it came about.
	for _, z := range sh.FreeDataZones {
		if wp := c.dev.ZoneWP(z); wp != 0 {
			return nil, staleErr("free data zone %d has write pointer %d", z, wp)
		}
	}
	for _, z := range sh.FreeIndexZones {
		if wp := c.dev.ZoneWP(z); wp != 0 {
			return nil, staleErr("free index zone %d has write pointer %d", z, wp)
		}
	}
	for _, z := range append(append([]int(nil), liveData...), liveIdx...) {
		if wp := c.dev.ZoneWP(z); wp != ppz {
			return nil, staleErr("live zone %d has write pointer %d, want %d", z, wp, ppz)
		}
	}

	// PBFG index cache: the FIFO queue restores verbatim; cached pages are
	// re-read from the (validated identical) index zones, so the snapshot
	// never stores index bytes it would then have to trust.
	ic := newPBFGCache(c.icache.capacity, c.pageSize, c.setsPerSG)
	ic.lookups, ic.misses = sh.ICLookups, sh.ICMisses
	ic.droppedUpTo = sh.ICDroppedUpTo
	if ic.capacity == 0 && (len(sh.ICQueue) != 0 || len(sh.ICPages) != 0) {
		return nil, cfgErr("index-cache entries with zero capacity")
	}
	if len(sh.ICPages) > ic.capacity {
		return nil, cfgErr("%d cached PBFG pages exceed capacity %d", len(sh.ICPages), ic.capacity)
	}
	queued := make(map[snapshot.PBFGRef]int, len(sh.ICQueue))
	for _, ref := range sh.ICQueue {
		if ref.Set < 0 || ref.Set >= c.setsPerSG {
			return nil, cfgErr("index-cache set offset %d out of range", ref.Set)
		}
		if ref.Group > ic.droppedUpTo {
			g := groupByID[ref.Group]
			if g == nil || !g.sealed {
				return nil, cfgErr("index-cache queue names unknown or unsealed group %d", ref.Group)
			}
			ic.queued[ref.Group]++
		} else {
			ic.stale++
		}
		queued[ref]++
		ic.queue = append(ic.queue, pbfgKey{group: ref.Group, set: ref.Set}.packed())
	}
	for _, ref := range sh.ICPages {
		g := groupByID[ref.Group]
		if g == nil || !g.sealed || ref.Group <= ic.droppedUpTo {
			return nil, cfgErr("cached PBFG page for retired group %d", ref.Group)
		}
		if queued[ref] == 0 {
			return nil, cfgErr("cached PBFG page (%d,%d) absent from the FIFO queue", ref.Group, ref.Set)
		}
		k := pbfgKey{group: ref.Group, set: ref.Set}
		if ic.has(k) {
			return nil, cfgErr("duplicate cached PBFG page (%d,%d)", ref.Group, ref.Set)
		}
		// insertRestored hands back the arena slot to read straight into; a
		// failed read abandons ic wholesale (its arena is private to it).
		page := ic.insertRestored(k)
		if _, err := c.dev.ReadPage(c.pageAddrIn(g.zones, ref.Set), page); err != nil {
			return nil, fmt.Errorf("core: re-reading PBFG page (%d,%d): %w", ref.Group, ref.Set, err)
		}
	}
	st.icache = ic

	for _, rec := range sh.FlushLog {
		st.flushLog = append(st.flushLog, FlushRecord{
			Fill:     rec.Fill,
			NewObjs:  rec.NewObjs,
			WBObjs:   rec.WBObjs,
			NewBytes: rec.NewBytes,
			WBBytes:  rec.WBBytes,
		})
	}
	built = true
	return st, nil
}

// discardRestore releases a built-but-never-adopted state's arena
// allocations (a sibling shard's defect abandons every shard's restore).
func (c *Cache) discardRestore(st *restoredState) {
	for _, m := range st.sgs {
		c.releaseSG(m)
	}
}

// checkZonePartition verifies free ∪ live == [base, base+n) with no overlap.
func checkZonePartition(kind string, base, n int, free, live []int) error {
	seen := make([]bool, n)
	claim := func(z int) error {
		if z < base || z >= base+n {
			return cfgErr("%s zone %d outside [%d,%d)", kind, z, base, base+n)
		}
		if seen[z-base] {
			return cfgErr("%s zone %d claimed twice", kind, z)
		}
		seen[z-base] = true
		return nil
	}
	for _, z := range free {
		if err := claim(z); err != nil {
			return err
		}
	}
	for _, z := range live {
		if err := claim(z); err != nil {
			return err
		}
	}
	if len(free)+len(live) != n {
		return cfgErr("%s zones: %d free + %d live does not cover %d", kind, len(free), len(live), n)
	}
	return nil
}

// adoptRestore swaps the validated state in. Called before the cache is
// published (New) — no locking, no readers.
func (c *Cache) adoptRestore(st *restoredState) {
	c.memq = st.memq
	c.sacCount = st.sacCount
	c.pool = st.pool
	c.nextSGID = st.nextSGID
	c.groups = st.groups
	c.nextGroup = st.nextGroup
	c.icache = st.icache
	c.freeDataZones = st.freeDataZones
	c.freeIndexZones = st.freeIndexZones
	c.bytesSinceCool = st.bytesSinceCool
	c.stats = st.stats
	c.extra = st.extra
	c.flushLog = st.flushLog
}

// Counter conversions between the engine types and the snapshot package's
// dependency-free mirrors. Reflection tests pin the struct pairs
// field-for-field, so a counter added to one side without the other fails
// fast instead of silently dropping data.

func countersOf(s cachelib.Stats) snapshot.Counters {
	return snapshot.Counters{
		Gets: s.Gets, Hits: s.Hits, Sets: s.Sets, Deletes: s.Deletes,
		LogicalBytes: s.LogicalBytes, FlashBytesWritten: s.FlashBytesWritten,
		DeviceBytesWritten: s.DeviceBytesWritten, FlashBytesRead: s.FlashBytesRead,
		FlashReadOps: s.FlashReadOps, ReadErrors: s.ReadErrors,
		WriteErrors: s.WriteErrors, Evictions: s.Evictions,
	}
}

func statsOf(s snapshot.Counters) cachelib.Stats {
	return cachelib.Stats{
		Gets: s.Gets, Hits: s.Hits, Sets: s.Sets, Deletes: s.Deletes,
		LogicalBytes: s.LogicalBytes, FlashBytesWritten: s.FlashBytesWritten,
		DeviceBytesWritten: s.DeviceBytesWritten, FlashBytesRead: s.FlashBytesRead,
		FlashReadOps: s.FlashReadOps, ReadErrors: s.ReadErrors,
		WriteErrors: s.WriteErrors, Evictions: s.Evictions,
	}
}

func extraOf(n NemoStats) snapshot.Extra {
	return snapshot.Extra{
		SGsFlushed: n.SGsFlushed, FillSum: n.FillSum,
		NewBytes: n.NewBytes, WriteBackBytes: n.WriteBackBytes,
		WriteBackObjs: n.WriteBackObjs, Sacrificed: n.Sacrificed,
		DataBytesWritten: n.DataBytesWritten, IndexBytesWritten: n.IndexBytesWritten,
		FalsePositiveReads: n.FalsePositiveReads, CoolingRuns: n.CoolingRuns,
		FlushRecordsDropped: n.FlushRecordsDropped,
	}
}

func nemoStatsOf(e snapshot.Extra) NemoStats {
	return NemoStats{
		SGsFlushed: e.SGsFlushed, FillSum: e.FillSum,
		NewBytes: e.NewBytes, WriteBackBytes: e.WriteBackBytes,
		WriteBackObjs: e.WriteBackObjs, Sacrificed: e.Sacrificed,
		DataBytesWritten: e.DataBytesWritten, IndexBytesWritten: e.IndexBytesWritten,
		FalsePositiveReads: e.FalsePositiveReads, CoolingRuns: e.CoolingRuns,
		FlushRecordsDropped: e.FlushRecordsDropped,
	}
}

// Checkpoint writes a NEMO1 snapshot of the whole sharded cache to path.
// The shared flusher pool is drained, then every shard is locked and its
// in-flight flush waited out before any shard is captured — the generation
// stamp is sampled while all shards are quiescent, so it vouches for every
// shard's state at once.
func (s *Sharded) Checkpoint(path string) error {
	if err := s.Drain(); err != nil {
		return fmt.Errorf("core: draining before checkpoint: %w", err)
	}
	for _, c := range s.shards {
		c.mu.Lock()
	}
	// Waiting on one shard's flushCond releases only that shard's lock; an
	// in-flight flush needs only its own shard's lock to finish, so holding
	// the rest cannot deadlock — it just keeps new flushes from starting.
	for _, c := range s.shards {
		c.waitFlushIdleLocked()
	}
	dev := s.shards[0].dev
	f := &snapshot.File{
		PageSize:     dev.PageSize(),
		PagesPerZone: dev.PagesPerZone(),
		Zones:        dev.Zones(),
		Config:       configStamp(s.cfg),
	}
	for _, c := range s.shards {
		f.Shards = append(f.Shards, c.captureLocked())
	}
	gen := dev.Generation()
	f.Boot, f.Writes = gen.Boot, gen.Writes
	for _, c := range s.shards {
		c.mu.Unlock()
	}
	return snapshot.Save(path, f)
}

// RestoreOutcome is Cache.RestoreOutcome for the sharded facade: the
// outcome of Config.SnapshotPath at NewSharded time. Restore is
// all-or-nothing across shards — one shard's defect leaves every shard cold.
func (s *Sharded) RestoreOutcome() (restored bool, err error) {
	return s.restored, s.restoreErr
}

// tryRestore attempts to adopt the snapshot at path into the freshly built
// cold shards (called from NewSharded before the facade is published).
func (s *Sharded) tryRestore(path string) (bool, error) {
	f, err := snapshot.Load(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return false, nil
		}
		return false, err
	}
	if err := validateSnapshotFile(s.shards[0].dev, configStamp(s.cfg), f); err != nil {
		return false, err
	}
	states := make([]*restoredState, len(s.shards))
	for i, c := range s.shards {
		st, err := c.buildRestore(&f.Shards[i])
		if err != nil {
			for j := 0; j < i; j++ {
				s.shards[j].discardRestore(states[j])
			}
			return false, fmt.Errorf("shard %d: %w", i, err)
		}
		states[i] = st
	}
	for i, c := range s.shards {
		c.adoptRestore(states[i])
	}
	return true, nil
}
