// Package core implements Nemo, the paper's contribution: a flash cache for
// tiny objects that reaches near-ideal write amplification by rearchitecting
// set-associative caching around Set-Groups (SGs) with a small hash space,
// an on-flash Bloom-filter index (PBFG) with an in-memory FIFO index cache,
// and hybrid 1-bit hotness tracking (§4 of the paper).
package core

import (
	"fmt"
	"time"

	"nemo/internal/device"
)

// Config configures a Nemo cache. DefaultConfig gives the Table 3 defaults
// scaled to the device geometry.
type Config struct {
	// Device is the zoned flash device — any implementation of the
	// internal/device contract (flashsim simulator, filedev file-backed).
	// One SG occupies exactly one zone; the set size equals the device page
	// size and SetsPerSG equals the device's pages per zone.
	Device device.Device

	// DataZones is the on-flash SG pool capacity in zones. The remaining
	// zones host the index pool; New validates that enough exist.
	DataZones int

	// Shards partitions the key space by hash into this many independent
	// engines, each owning a private slice of the device's zones, its own
	// in-memory SGs, PBFG index, and lock (0 or 1 = unsharded). New rejects
	// Shards > 1 — build sharded caches with NewSharded, which divides
	// DataZones evenly across shards. Requests for different shards never
	// contend, which is what lets the engine scale across cores.
	Shards int

	// ZoneOffset is the first device zone this cache instance may use
	// (default 0). NewSharded assigns each shard a disjoint
	// [ZoneOffset, ZoneOffset+DataZones+IndexZones()) range so that many
	// independent engines share one device, exactly like Kangaroo-style
	// set partitioning on a shared ZNS drive.
	ZoneOffset int

	// ZonesPerSG makes one SG span several zones (default 1). This is the
	// §6 small-zone ZNS deployment ("an SG is composed of multiple
	// zones"): the logical SG stays erase-unit aligned while each
	// constituent zone is appended and reset individually. DataZones must
	// be a multiple of ZonesPerSG.
	ZonesPerSG int

	// InMemSGs is the number of buffered in-memory SGs (Table 3: 2).
	InMemSGs int

	// Flushers is the size of the background flusher pool backing SetAsync
	// (cachelib.AsyncEngine): full in-memory SGs are handed to this many
	// goroutines instead of flushing inline on the inserting worker, which
	// removes the flush from the Set path's p99. A deferred flush runs the
	// three-phase seal/build/commit protocol (writepath.go), holding the
	// shard lock only for its locked sub-phases, so foreground GETs and
	// SETs overlap the SG write itself. 0 (the default) disables the pool —
	// SetAsync then degrades to the synchronous Set, and the engine behaves
	// exactly as before this option existed. A sharded cache shares one
	// pool across all shards.
	Flushers int

	// FlushThreshold is p_th: the number of sacrificed (early-evicted)
	// objects tolerated before the front SG is flushed. The shipped system
	// uses a count-based threshold (Table 3 note).
	FlushThreshold int

	// RearFullRatio flushes the front SG when the rear SG's fill rate
	// reaches this fraction (the "rear SG is nearly full" trigger, §4.2).
	RearFullRatio float64

	// SGsPerIndexGroup is the number of SGs whose set-level Bloom filters
	// form one index group (Table 3: 50; each PBFG page then packs the
	// filters of one intra-SG offset across the group's SGs).
	SGsPerIndexGroup int

	// BloomFPR is the PBFG false-positive rate (Table 3: 0.001).
	BloomFPR float64

	// TargetObjsPerSet sizes each set-level Bloom filter (§5.1: 40).
	TargetObjsPerSet int

	// CachedPBFGRatio is the fraction of PBFG pages kept in the in-memory
	// FIFO index cache (Table 3: 0.5).
	CachedPBFGRatio float64

	// HotTrackTailRatio restricts hotness bitmaps to SGs in the oldest
	// fraction of the pool (Table 3: "last 30% of cache" = 0.3).
	HotTrackTailRatio float64

	// CoolingWriteRatio triggers a cooling pass every time this fraction
	// of pool capacity has been written (Table 3: every 10% = 0.1).
	CoolingWriteRatio float64

	// BufferedSGs enables technique B (buffered in-memory SGs). When
	// false, a single in-memory SG is used and there is no rear-full
	// trigger — the "naïve" flush-on-collision behaviour of Figure 17.
	BufferedSGs bool

	// DelayedFlush enables technique P (sacrifice-based delayed flushing).
	DelayedFlush bool

	// Writeback enables technique W (hotness-aware writeback on eviction).
	Writeback bool

	// BreakerThreshold enables the per-shard device-fault circuit breaker
	// (health.go): this many consecutive write-path (flush) failures trip
	// the shard into read-only degraded mode, where SETs and DELETEs are
	// rejected cheaply with cachelib.ErrDegraded while GETs keep serving.
	// 0 (the default) disables the breaker entirely — the historical
	// behavior, and what every equivalence/determinism pin runs under.
	BreakerThreshold int

	// BreakerProbeAfter is how long (on the device clock) an open breaker
	// waits before admitting a half-open probe write. Defaults to 1s when
	// the breaker is enabled and this is zero.
	BreakerProbeAfter time.Duration

	// WriteRetries bounds in-place retries of a failed page append before
	// the flush fails (and, with the breaker enabled, the failure counts
	// against BreakerThreshold). Failed appends mutate no device state, so
	// retrying is safe on every backend; absorbed retries are counted in
	// Stats.WriteRetries. 0 (the default) disables retrying.
	WriteRetries int

	// RetryBackoff is the base delay between append retries, doubling per
	// attempt (real sleep on wall-clock backends, a clock advance on the
	// virtual-time simulator). 0 retries immediately.
	RetryBackoff time.Duration

	// SnapshotPath, when non-empty, enables warm restart (internal/snapshot):
	// New/NewSharded attempt to adopt the NEMO1 snapshot at this path —
	// validated against the device's geometry and generation stamp, and
	// silently starting cold when the file is missing or refused — and Close
	// checkpoints the engine back to it. Snapshots are strictly throwaway:
	// they only ever save a cold rebuild, never carry data, and are useless
	// once the device mutates without a new checkpoint. See
	// Cache.Checkpoint and RestoreOutcome.
	SnapshotPath string
}

// DefaultSGsPerIndexGroup is Table 3's index-group width. Device-sizing
// code pairs it with IndexZonesFor to reserve the index pool a
// DefaultConfig cache will actually claim.
const DefaultSGsPerIndexGroup = 50

// DefaultConfig returns Table 3 defaults scaled to the device: 2 in-memory
// SGs, count-based flush threshold proportional to SG size, 50 SGs per
// index group, 0.1% Bloom FPR, 50% cached PBFGs, hotness tracked over the
// last 30% of the pool, cooling every 10% of capacity written, and all
// three fill-rate techniques enabled.
func DefaultConfig(dev device.Device, dataZones int) Config {
	setsPerSG := dev.PagesPerZone()
	pth := setsPerSG / 16
	if pth < 8 {
		pth = 8
	}
	return Config{
		Device:            dev,
		DataZones:         dataZones,
		ZonesPerSG:        1,
		InMemSGs:          2,
		FlushThreshold:    pth,
		RearFullRatio:     0.95,
		SGsPerIndexGroup:  DefaultSGsPerIndexGroup,
		BloomFPR:          0.001,
		TargetObjsPerSet:  40,
		CachedPBFGRatio:   0.5,
		HotTrackTailRatio: 0.3,
		CoolingWriteRatio: 0.1,
		BufferedSGs:       true,
		DelayedFlush:      true,
		Writeback:         true,
	}
}

// IndexZonesFor returns the number of index-pool zones New reserves for a
// pool of dataZones single-zone SGs grouped by sgsPerGroup: one zone per
// live group plus slack for the group being sealed while the oldest drains.
// Multi-zone-SG configurations use Config.IndexZones.
func IndexZonesFor(dataZones, sgsPerGroup int) int {
	return (dataZones+sgsPerGroup-1)/sgsPerGroup + 2
}

// IndexZones returns the index-pool reservation for this configuration:
// each index group occupies one SG worth of zones.
func (c Config) IndexZones() int {
	zps := c.ZonesPerSG
	if zps < 1 {
		zps = 1
	}
	dataSGs := c.DataZones / zps
	return ((dataSGs+c.SGsPerIndexGroup-1)/c.SGsPerIndexGroup + 2) * zps
}

func (c Config) validate() error {
	if c.Device == nil {
		return fmt.Errorf("core: nil device")
	}
	if c.Shards > 1 {
		return fmt.Errorf("core: Shards %d > 1 requires NewSharded", c.Shards)
	}
	if c.ZoneOffset < 0 {
		return fmt.Errorf("core: ZoneOffset %d must be non-negative", c.ZoneOffset)
	}
	if c.ZonesPerSG < 1 {
		return fmt.Errorf("core: ZonesPerSG %d must be at least 1", c.ZonesPerSG)
	}
	if c.DataZones < 2*c.ZonesPerSG {
		return fmt.Errorf("core: DataZones %d must hold at least 2 SGs of %d zones", c.DataZones, c.ZonesPerSG)
	}
	if c.DataZones%c.ZonesPerSG != 0 {
		return fmt.Errorf("core: DataZones %d not a multiple of ZonesPerSG %d", c.DataZones, c.ZonesPerSG)
	}
	if c.InMemSGs < 1 {
		return fmt.Errorf("core: InMemSGs %d must be at least 1", c.InMemSGs)
	}
	if c.Flushers < 0 {
		return fmt.Errorf("core: Flushers %d must be non-negative", c.Flushers)
	}
	if c.FlushThreshold < 1 {
		return fmt.Errorf("core: FlushThreshold %d must be at least 1", c.FlushThreshold)
	}
	if c.RearFullRatio <= 0 || c.RearFullRatio > 1 {
		return fmt.Errorf("core: RearFullRatio %v out of range (0,1]", c.RearFullRatio)
	}
	if c.SGsPerIndexGroup < 1 {
		return fmt.Errorf("core: SGsPerIndexGroup %d must be at least 1", c.SGsPerIndexGroup)
	}
	if c.BloomFPR <= 0 || c.BloomFPR >= 1 {
		return fmt.Errorf("core: BloomFPR %v out of range (0,1)", c.BloomFPR)
	}
	if c.TargetObjsPerSet < 1 {
		return fmt.Errorf("core: TargetObjsPerSet %d must be at least 1", c.TargetObjsPerSet)
	}
	if c.CachedPBFGRatio < 0 || c.CachedPBFGRatio > 1 {
		return fmt.Errorf("core: CachedPBFGRatio %v out of range [0,1]", c.CachedPBFGRatio)
	}
	if c.HotTrackTailRatio < 0 || c.HotTrackTailRatio > 1 {
		return fmt.Errorf("core: HotTrackTailRatio %v out of range [0,1]", c.HotTrackTailRatio)
	}
	if c.CoolingWriteRatio <= 0 {
		return fmt.Errorf("core: CoolingWriteRatio %v must be positive", c.CoolingWriteRatio)
	}
	if c.BreakerThreshold < 0 {
		return fmt.Errorf("core: BreakerThreshold %d must be non-negative", c.BreakerThreshold)
	}
	if c.BreakerProbeAfter < 0 {
		return fmt.Errorf("core: BreakerProbeAfter %v must be non-negative", c.BreakerProbeAfter)
	}
	if c.WriteRetries < 0 {
		return fmt.Errorf("core: WriteRetries %d must be non-negative", c.WriteRetries)
	}
	if c.RetryBackoff < 0 {
		return fmt.Errorf("core: RetryBackoff %v must be non-negative", c.RetryBackoff)
	}
	need := c.DataZones + c.IndexZones()
	if c.ZoneOffset+need > c.Device.Zones() {
		return fmt.Errorf("core: need zones [%d,%d) (%d data + %d index) but device has %d",
			c.ZoneOffset, c.ZoneOffset+need, c.DataZones, c.IndexZones(), c.Device.Zones())
	}
	return nil
}
