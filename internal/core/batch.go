package core

import (
	"runtime"
	"sync"

	"nemo/internal/cachelib"
	"nemo/internal/hashing"
)

// This file implements cachelib.BatchEngine natively on Cache and Sharded.
// On a single cache a batch costs one lock acquisition instead of one per
// operation; on a sharded cache the batch additionally does one hash pass,
// groups keys into per-shard sub-batches, and fans the sub-batches out in
// parallel — the per-shard request order is preserved, so within every
// shard a batch behaves exactly like the equivalent op sequence.

// Interface conformance: the core engines implement the full v2 surface.
var (
	_ cachelib.EngineV2 = (*Cache)(nil)
	_ cachelib.EngineV2 = (*Sharded)(nil)
	_ cachelib.Sharder  = (*Sharded)(nil)
)

// GetMany implements cachelib.BatchEngine: all lookups execute under one
// lock acquisition. values[i] is a fresh copy (nil on miss), hits[i] the
// presence flag.
func (c *Cache) GetMany(keys [][]byte) (values [][]byte, hits []bool) {
	values = make([][]byte, len(keys))
	hits = make([]bool, len(keys))
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, k := range keys {
		values[i], hits[i] = c.getLocked(hashing.Fingerprint(k), k)
	}
	return values, hits
}

// SetMany implements cachelib.BatchEngine: all inserts execute in order
// under one lock acquisition, with effects identical to sequential Sets
// (including trigger-driven inline flushes). The first error aborts the
// remainder of the batch.
func (c *Cache) SetMany(keys, values [][]byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range keys {
		if err := c.setLocked(hashing.Fingerprint(keys[i]), keys[i], values[i], false); err != nil {
			return err
		}
	}
	return nil
}

// getManyFP is the pre-fingerprinted sub-batch path used by the sharded
// fan-out: one lock acquisition, results scattered to positions pos[i] of
// the caller's slices (each shard owns disjoint positions).
func (c *Cache) getManyFP(fps []uint64, keys [][]byte, pos []int32, values [][]byte, hits []bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range keys {
		values[pos[i]], hits[pos[i]] = c.getLocked(fps[i], keys[i])
	}
}

// getManyFPSeq is getManyFP for a whole-batch sub-batch (positions 0..n-1),
// sparing the single-shard fast path the position indirection.
func (c *Cache) getManyFPSeq(fps []uint64, keys [][]byte, values [][]byte, hits []bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range keys {
		values[i], hits[i] = c.getLocked(fps[i], keys[i])
	}
}

// setManyFP is the pre-fingerprinted sub-batch insert path.
func (c *Cache) setManyFP(fps []uint64, keys, values [][]byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range keys {
		if err := c.setLocked(fps[i], keys[i], values[i], false); err != nil {
			return err
		}
	}
	return nil
}

// fpScratch pools the per-batch fingerprint buffers so steady-state batched
// traffic allocates nothing for routing (batches are short when traces are
// hot-key heavy, so per-batch allocations would dominate the amortization).
var fpScratch = sync.Pool{New: func() any { return new([]uint64) }}

// planFPs hashes every key exactly once — the shards reuse these
// fingerprints — and reports whether the whole batch lands on one shard
// (the common case under the per-shard batched replayer), returning that
// shard's index. The returned slice aliases *scratch.
func (s *Sharded) planFPs(keys [][]byte, scratch *[]uint64) (fps []uint64, first int, single bool) {
	fps = (*scratch)[:0]
	single = true
	for i, k := range keys {
		fp := hashing.Fingerprint(k)
		fps = append(fps, fp)
		sh := s.shardOfFP(fp)
		if i == 0 {
			first = sh
		} else if sh != first {
			single = false
		}
	}
	*scratch = fps
	return fps, first, single
}

// shardOfFP re-derives the shard from an already-computed fingerprint.
func (s *Sharded) shardOfFP(fp uint64) int {
	if s.n == 1 {
		return 0
	}
	return int(hashing.Derive(fp, shardLane) % s.n)
}

// subBatch is one shard's slice of a grouped batch. All sub-batches of one
// grouping share a handful of backing arrays, so a multi-shard batch costs
// a constant number of allocations regardless of how many shards it
// touches.
type subBatch struct {
	shard int
	fps   []uint64
	keys  [][]byte
	vals  [][]byte // nil unless values were passed to group (SetMany)
	pos   []int32  // original batch positions
}

// group buckets a fingerprinted batch into per-shard sub-batches with a
// counting sort: one pass to count, one to scatter — O(keys + shards), not
// O(keys × shards) — and a constant number of allocations however many
// shards the batch touches. values may be nil (GetMany has none).
func (s *Sharded) group(fps []uint64, keys, values [][]byte) []subBatch {
	nShards := len(s.shards)
	shs := make([]int32, len(keys))
	starts := make([]int32, nShards+1) // starts[sh+1] counts, then prefix-sums
	for i, fp := range fps {
		sh := int32(s.shardOfFP(fp))
		shs[i] = sh
		starts[sh+1]++
	}
	touched := 0
	for sh := 0; sh < nShards; sh++ {
		if starts[sh+1] > 0 {
			touched++
		}
		starts[sh+1] += starts[sh]
	}
	bFPs := make([]uint64, len(keys))
	bKeys := make([][]byte, len(keys))
	bPos := make([]int32, len(keys))
	var bVals [][]byte
	if values != nil {
		bVals = make([][]byte, len(keys))
	}
	write := make([]int32, nShards)
	copy(write, starts[:nShards])
	for i := range keys {
		sh := shs[i]
		o := write[sh]
		write[sh] = o + 1
		bFPs[o], bKeys[o], bPos[o] = fps[i], keys[i], int32(i)
		if bVals != nil {
			bVals[o] = values[i]
		}
	}
	subs := make([]subBatch, 0, touched)
	for sh := 0; sh < nShards; sh++ {
		lo, hi := starts[sh], starts[sh+1]
		if lo == hi {
			continue
		}
		sub := subBatch{shard: sh, fps: bFPs[lo:hi], keys: bKeys[lo:hi], pos: bPos[lo:hi]}
		if bVals != nil {
			sub.vals = bVals[lo:hi]
		}
		subs = append(subs, sub)
	}
	return subs
}

// GetMany implements cachelib.BatchEngine on the sharded facade: one hash
// pass, per-shard sub-batches, parallel fan-out. Single-shard batches skip
// the grouping and goroutine fan-out entirely.
func (s *Sharded) GetMany(keys [][]byte) (values [][]byte, hits []bool) {
	values = make([][]byte, len(keys))
	hits = make([]bool, len(keys))
	if len(keys) == 0 {
		return values, hits
	}
	scratch := fpScratch.Get().(*[]uint64)
	defer fpScratch.Put(scratch)
	fps, first, single := s.planFPs(keys, scratch)
	if single {
		s.shards[first].getManyFPSeq(fps, keys, values, hits)
		return values, hits
	}
	fanOut := runtime.GOMAXPROCS(0) > 1
	var wg sync.WaitGroup
	for _, sub := range s.group(fps, keys, nil) {
		if !fanOut {
			// A single-P runtime gains nothing from goroutine fan-out;
			// sub-batches still pay one lock acquisition each.
			s.shards[sub.shard].getManyFP(sub.fps, sub.keys, sub.pos, values, hits)
			continue
		}
		wg.Add(1)
		go func(sub subBatch) {
			defer wg.Done()
			s.shards[sub.shard].getManyFP(sub.fps, sub.keys, sub.pos, values, hits)
		}(sub)
	}
	wg.Wait()
	return values, hits
}

// SetMany implements cachelib.BatchEngine on the sharded facade. Within a
// shard inserts apply in batch order; across shards sub-batches run in
// parallel (keys of different shards never interact). The lowest-numbered
// shard's error is returned first.
func (s *Sharded) SetMany(keys, values [][]byte) error {
	if len(keys) == 0 {
		return nil
	}
	scratch := fpScratch.Get().(*[]uint64)
	defer fpScratch.Put(scratch)
	fps, first, single := s.planFPs(keys, scratch)
	if single {
		return s.shards[first].setManyFP(fps, keys, values)
	}
	fanOut := runtime.GOMAXPROCS(0) > 1
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for _, sub := range s.group(fps, keys, values) {
		if !fanOut {
			errs[sub.shard] = s.shards[sub.shard].setManyFP(sub.fps, sub.keys, sub.vals)
			continue
		}
		wg.Add(1)
		go func(sub subBatch) {
			defer wg.Done()
			errs[sub.shard] = s.shards[sub.shard].setManyFP(sub.fps, sub.keys, sub.vals)
		}(sub)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
