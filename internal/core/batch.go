package core

import (
	"runtime"
	"sync"

	"nemo/internal/cachelib"
	"nemo/internal/hashing"
)

// This file implements cachelib.BatchEngine natively on Cache and Sharded.
// On a single cache a batch costs one lock acquisition instead of one per
// operation; on a sharded cache the batch additionally does one hash pass,
// groups keys into per-shard sub-batches, and fans the sub-batches out in
// parallel — the per-shard request order is preserved, so within every
// shard a batch behaves exactly like the equivalent op sequence.
//
// The routing plan (one-hash-pass fingerprinting, counting-sort grouping)
// is the shared cachelib machinery (PlanFPs/GroupByShard), the same plan
// the generic cachelib.ShardedEngine uses for the baselines; what stays
// Nemo-specific here is the pre-fingerprinted shard entry points, which
// reuse the plan's fingerprints instead of re-hashing inside the shard.

// Interface conformance: the core engines implement the full v2 surface.
var (
	_ cachelib.EngineV2 = (*Cache)(nil)
	_ cachelib.EngineV2 = (*Sharded)(nil)
	_ cachelib.Sharder  = (*Sharded)(nil)
)

// GetMany implements cachelib.BatchEngine with the batched three-phase
// read protocol (readpath.go): one locked plan pass over all keys, one
// unlocked flash I/O pass that overlaps the batch's reads on the device
// channels, one locked commit pass. values[i] is a fresh copy (nil on
// miss), hits[i] the presence flag.
func (c *Cache) GetMany(keys [][]byte) (values [][]byte, hits []bool) {
	values = make([][]byte, len(keys))
	hits = make([]bool, len(keys))
	c.getBatch(nil, keys, func(j int, v []byte, ok bool) {
		values[j], hits[j] = v, ok
	})
	return values, hits
}

// SetMany implements cachelib.BatchEngine: all inserts execute in order
// under one lock acquisition, with effects identical to sequential Sets
// (including trigger-driven inline flushes). The first error aborts the
// remainder of the batch.
func (c *Cache) SetMany(keys, values [][]byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range keys {
		if err := c.setLocked(hashing.Fingerprint(keys[i]), keys[i], values[i], false); err != nil {
			return err
		}
	}
	return nil
}

// getManyFP is the pre-fingerprinted sub-batch path used by the sharded
// fan-out: the batched three-phase lookup, results scattered to positions
// pos[i] of the caller's slices (each shard owns disjoint positions).
func (c *Cache) getManyFP(fps []uint64, keys [][]byte, pos []int32, values [][]byte, hits []bool) {
	c.getBatch(fps, keys, func(j int, v []byte, ok bool) {
		values[pos[j]], hits[pos[j]] = v, ok
	})
}

// getManyFPSeq is getManyFP for a whole-batch sub-batch (positions 0..n-1),
// sparing the single-shard fast path the position indirection.
func (c *Cache) getManyFPSeq(fps []uint64, keys [][]byte, values [][]byte, hits []bool) {
	c.getBatch(fps, keys, func(j int, v []byte, ok bool) {
		values[j], hits[j] = v, ok
	})
}

// setManyFP is the pre-fingerprinted sub-batch insert path.
func (c *Cache) setManyFP(fps []uint64, keys, values [][]byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range keys {
		if err := c.setLocked(fps[i], keys[i], values[i], false); err != nil {
			return err
		}
	}
	return nil
}

// shardOfFP re-derives the shard from an already-computed fingerprint.
func (s *Sharded) shardOfFP(fp uint64) int {
	return cachelib.ShardOfFP(fp, s.n)
}

// GetMany implements cachelib.BatchEngine on the sharded facade: one hash
// pass, per-shard sub-batches, parallel fan-out. Single-shard batches skip
// the grouping and goroutine fan-out entirely.
func (s *Sharded) GetMany(keys [][]byte) (values [][]byte, hits []bool) {
	values = make([][]byte, len(keys))
	hits = make([]bool, len(keys))
	if len(keys) == 0 {
		return values, hits
	}
	scratch := cachelib.BorrowFPs()
	defer cachelib.ReturnFPs(scratch)
	fps, first, single := cachelib.PlanFPs(keys, scratch, s.n)
	if single {
		s.shards[first].getManyFPSeq(fps, keys, values, hits)
		return values, hits
	}
	fanOut := runtime.GOMAXPROCS(0) > 1
	var wg sync.WaitGroup
	for _, sub := range cachelib.GroupByShard(fps, keys, nil, len(s.shards)) {
		if !fanOut {
			// A single-P runtime gains nothing from goroutine fan-out;
			// sub-batches still pay one lock acquisition each.
			s.shards[sub.Shard].getManyFP(sub.FPs, sub.Keys, sub.Pos, values, hits)
			continue
		}
		wg.Add(1)
		go func(sub cachelib.SubBatch) {
			defer wg.Done()
			s.shards[sub.Shard].getManyFP(sub.FPs, sub.Keys, sub.Pos, values, hits)
		}(sub)
	}
	wg.Wait()
	return values, hits
}

// SetMany implements cachelib.BatchEngine on the sharded facade. Within a
// shard inserts apply in batch order; across shards sub-batches run in
// parallel (keys of different shards never interact). The lowest-numbered
// shard's error is returned first.
func (s *Sharded) SetMany(keys, values [][]byte) error {
	if len(keys) == 0 {
		return nil
	}
	scratch := cachelib.BorrowFPs()
	defer cachelib.ReturnFPs(scratch)
	fps, first, single := cachelib.PlanFPs(keys, scratch, s.n)
	if single {
		return s.shards[first].setManyFP(fps, keys, values)
	}
	fanOut := runtime.GOMAXPROCS(0) > 1
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for _, sub := range cachelib.GroupByShard(fps, keys, values, len(s.shards)) {
		if !fanOut {
			errs[sub.Shard] = s.shards[sub.Shard].setManyFP(sub.FPs, sub.Keys, sub.Vals)
			continue
		}
		wg.Add(1)
		go func(sub cachelib.SubBatch) {
			defer wg.Done()
			errs[sub.Shard] = s.shards[sub.Shard].setManyFP(sub.FPs, sub.Keys, sub.Vals)
		}(sub)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
