package core

// Focused tests for eviction, cooling, and index-pool recycling edge cases.

import (
	"fmt"
	"testing"
)

func TestCoolingClearsUncachedSets(t *testing.T) {
	c := testCache(t, func(cfg *Config) {
		cfg.HotTrackTailRatio = 1.0
		cfg.CachedPBFGRatio = 0.0 // nothing cached ⇒ cooling clears everything sealed
		cfg.CoolingWriteRatio = 0.05
	})
	for i := 0; i < 8000; i++ {
		k, v := kv(i)
		if err := c.Set(k, v); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			c.Get(k)
		}
	}
	if c.Extra().CoolingRuns == 0 {
		t.Fatal("cooling never ran")
	}
	// With no PBFG pages resident, the hybrid signal can never fire for
	// sealed groups, so writeback volume must be low (only unsealed-group
	// SGs can qualify).
	ex := c.Extra()
	if ex.WriteBackObjs > ex.SGsFlushed*uint64(c.SetsPerSG()) {
		t.Fatalf("implausible writeback volume %d with cold index cache", ex.WriteBackObjs)
	}
}

func TestHotnessTailRestriction(t *testing.T) {
	// With a zero tail ratio, no hotness is ever recorded and writeback
	// finds nothing hot.
	c := testCache(t, func(cfg *Config) { cfg.HotTrackTailRatio = 0 })
	for i := 0; i < 8000; i++ {
		k, v := kv(i)
		c.Set(k, v)
		hk, hv := kv(1000000 + i%10)
		if _, hit := c.Get(hk); !hit {
			c.Set(hk, hv)
		}
	}
	if got := c.Extra().WriteBackObjs; got != 0 {
		t.Fatalf("%d writebacks with hotness tracking disabled", got)
	}
}

func TestIndexZoneRecycling(t *testing.T) {
	// Cycle the pool enough that each index group dies several times; the
	// index zone pool must never run dry (sealing would fail).
	c := testCache(t, nil)
	for i := 0; i < 30000; i++ {
		k, v := kv(i)
		if err := c.Set(k, v); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	ex := c.Extra()
	wantGroups := ex.SGsFlushed / uint64(c.cfg.SGsPerIndexGroup)
	sealed := ex.IndexBytesWritten / uint64(c.setsPerSG*c.pageSize)
	if sealed < wantGroups-1 {
		t.Fatalf("only %d groups sealed for %d flushed SGs", sealed, ex.SGsFlushed)
	}
}

func TestEvictionWithoutWritebackSkipsReads(t *testing.T) {
	run := func(writeback bool) uint64 {
		c := testCache(t, func(cfg *Config) { cfg.Writeback = writeback })
		for i := 0; i < 10000; i++ {
			k, v := kv(i)
			c.Set(k, v)
		}
		return c.Stats().FlashBytesRead
	}
	without := run(false)
	with := run(true)
	if without >= with && with > 0 {
		t.Fatalf("writeback-off should read less flash: %d vs %d", without, with)
	}
}

func TestFlushLogCapped(t *testing.T) {
	c := testCache(t, nil)
	for i := 0; i < 12000; i++ {
		k, v := kv(i)
		c.Set(k, v)
	}
	log := c.FlushLog()
	if len(log) == 0 {
		t.Fatal("empty flush log")
	}
	if len(log) > maxFlushLog {
		t.Fatalf("flush log grew to %d, cap is %d", len(log), maxFlushLog)
	}
	for i, r := range log {
		if r.Fill < 0 || r.Fill > 1 {
			t.Fatalf("record %d has fill %v", i, r.Fill)
		}
		if r.NewObjs < 0 || r.WBObjs < 0 {
			t.Fatalf("record %d has negative counts", i)
		}
	}
}

func TestPBFGCacheZeroRatio(t *testing.T) {
	// CachedPBFGRatio 0 must still work — every sealed lookup goes to
	// flash.
	c := testCache(t, func(cfg *Config) { cfg.CachedPBFGRatio = 0 })
	for i := 0; i < 6000; i++ {
		k, v := kv(i)
		c.Set(k, v)
	}
	hits := 0
	for i := 5500; i < 6000; i++ {
		k, _ := kv(i)
		if _, hit := c.Get(k); hit {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("no hits with uncached index")
	}
	lookups, misses, _ := c.PBFGStats()
	if lookups > 0 && misses != lookups {
		t.Fatalf("zero cache should miss every lookup: %d/%d", misses, lookups)
	}
}

func TestStatsMonotone(t *testing.T) {
	c := testCache(t, nil)
	var prev uint64
	for i := 0; i < 5000; i++ {
		k, v := kv(i)
		c.Set(k, v)
		if i%500 == 0 {
			cur := c.Stats().FlashBytesWritten
			if cur < prev {
				t.Fatalf("flash bytes went backwards at op %d", i)
			}
			prev = cur
		}
	}
}

func TestMemObjectsTracksBuffer(t *testing.T) {
	c := testCache(t, nil)
	if c.MemObjects() != 0 {
		t.Fatal("fresh cache should buffer nothing")
	}
	for i := 0; i < 20; i++ {
		k, v := kv(i)
		c.Set(k, v)
	}
	if got := c.MemObjects(); got != 20 {
		t.Fatalf("MemObjects = %d, want 20", got)
	}
}

func TestGetOnEmptyPool(t *testing.T) {
	c := testCache(t, nil)
	for i := 0; i < 100; i++ {
		k, _ := kv(i + 500000)
		if _, hit := c.Get(k); hit {
			t.Fatal("hit on empty cache")
		}
	}
}

func TestFmtHelperKeysUnique(t *testing.T) {
	a, _ := kv(1)
	b, _ := kv(2)
	if string(a) == string(b) {
		t.Fatal("test helper generates colliding keys")
	}
	if fmt.Sprintf("%s", a) == "" {
		t.Fatal("empty key")
	}
}
