package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"nemo/internal/cachelib"
	"nemo/internal/device"
	"nemo/internal/devtest"
	"nemo/internal/snapshot"
)

// Warm-restart test geometry: small zones so a short trace seals groups,
// cycles the pool, and populates every structure a snapshot must carry.
const (
	snapPerShardData = 8
	snapShards       = 2
)

func snapGeometry(shards int) device.Geometry {
	perIdx := IndexZonesFor(snapPerShardData, 4)
	return device.Geometry{PageSize: 512, PagesPerZone: 16, Zones: shards * (snapPerShardData + perIdx)}
}

func snapConfig(dev device.Device, shards, flushers int, path string) Config {
	cfg := DefaultConfig(dev, shards*snapPerShardData)
	cfg.Shards = shards
	cfg.SGsPerIndexGroup = 4
	cfg.TargetObjsPerSet = 8
	cfg.FlushThreshold = 8
	cfg.Flushers = flushers
	cfg.SnapshotPath = path
	return cfg
}

// snapOp is one request of the deterministic mixed trace.
type snapOp struct {
	kind byte // 'g', 's', 'd'
	key  int
}

func snapTrace(n int) []snapOp {
	rng := rand.New(rand.NewSource(42))
	ops := make([]snapOp, n)
	for i := range ops {
		r, k := rng.Intn(100), rng.Intn(1500)
		switch {
		case r < 55:
			ops[i] = snapOp{'g', k}
		case r < 95:
			ops[i] = snapOp{'s', k}
		default:
			ops[i] = snapOp{'d', k}
		}
	}
	return ops
}

func applySnapTrace(t *testing.T, cache *Sharded, ops []snapOp, async bool) {
	t.Helper()
	for _, op := range ops {
		k, v := kv(op.key)
		var err error
		switch op.kind {
		case 'g':
			cache.Get(k)
		case 's':
			if async {
				err = cache.SetAsync(k, v)
			} else {
				err = cache.Set(k, v)
			}
		case 'd':
			err = cache.Delete(k)
		}
		if err != nil {
			t.Fatalf("trace op %c key %d: %v", op.kind, op.key, err)
		}
	}
}

// typedSnapshotErr reports whether err is one of the snapshot package's
// sentinels — the only refusals the restore path is allowed to produce.
func typedSnapshotErr(err error) bool {
	for _, s := range []error{
		snapshot.ErrTruncated, snapshot.ErrMagic, snapshot.ErrVersion,
		snapshot.ErrChecksum, snapshot.ErrCorrupt, snapshot.ErrGeometry,
		snapshot.ErrStale, snapshot.ErrConfig,
	} {
		if errors.Is(err, s) {
			return true
		}
	}
	return false
}

// TestCheckpointRestoreByteIdentical is the strongest round-trip pin:
// checkpoint a populated cache, warm-restore a second cache from it on the
// same device, checkpoint that — the two snapshot files must be
// byte-identical, so restore reconstructed every field the snapshot
// carries, exactly.
func TestCheckpointRestoreByteIdentical(t *testing.T) {
	devtest.Run(t, func(t *testing.T, b devtest.Backend) {
		dev := b.New(t, snapGeometry(snapShards))
		dir := t.TempDir()
		p1, p2 := filepath.Join(dir, "s1"), filepath.Join(dir, "s2")

		cold, err := NewSharded(snapConfig(dev, snapShards, 0, ""))
		if err != nil {
			t.Fatal(err)
		}
		applySnapTrace(t, cold, snapTrace(25000), false)
		if err := cold.Checkpoint(p1); err != nil {
			t.Fatalf("checkpoint: %v", err)
		}

		warm, err := NewSharded(snapConfig(dev, snapShards, 0, p1))
		if err != nil {
			t.Fatal(err)
		}
		restored, rerr := warm.RestoreOutcome()
		if !restored {
			t.Fatalf("restore refused: %v", rerr)
		}
		if err := warm.Checkpoint(p2); err != nil {
			t.Fatalf("re-checkpoint: %v", err)
		}

		b1, _ := os.ReadFile(p1)
		b2, _ := os.ReadFile(p2)
		if len(b1) == 0 || !bytes.Equal(b1, b2) {
			t.Fatalf("re-checkpoint differs from original (%d vs %d bytes)", len(b1), len(b2))
		}
	})
}

// TestKillRestoreExactStats is the kill-and-restore pin: a serial
// deterministic trace interrupted by checkpoint-close-reopen halfway must
// end with counters identical, stat for stat, to an uninterrupted run on
// both backends.
func TestKillRestoreExactStats(t *testing.T) {
	devtest.Run(t, func(t *testing.T, b devtest.Backend) {
		ops := snapTrace(25000)

		control, err := NewSharded(snapConfig(b.New(t, snapGeometry(snapShards)), snapShards, 0, ""))
		if err != nil {
			t.Fatal(err)
		}
		applySnapTrace(t, control, ops, false)
		wantStats, wantExtra := control.Stats(), control.Extra()

		dev := b.New(t, snapGeometry(snapShards))
		path := filepath.Join(t.TempDir(), "kill.snap")
		cfg := snapConfig(dev, snapShards, 0, path)
		first, err := NewSharded(cfg)
		if err != nil {
			t.Fatal(err)
		}
		applySnapTrace(t, first, ops[:len(ops)/2], false)
		if err := first.Close(); err != nil { // checkpoints to path
			t.Fatalf("close: %v", err)
		}
		second, err := NewSharded(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if restored, rerr := second.RestoreOutcome(); !restored {
			t.Fatalf("restore refused: %v", rerr)
		}
		applySnapTrace(t, second, ops[len(ops)/2:], false)

		if got := second.Stats(); got != wantStats {
			t.Errorf("stats diverged after kill-and-restore:\n got %+v\nwant %+v", got, wantStats)
		}
		if got := second.Extra(); got != wantExtra {
			t.Errorf("extra stats diverged after kill-and-restore:\n got %+v\nwant %+v", got, wantExtra)
		}
	})
}

// TestKillRestoreAsyncHitRatio is the concurrent variant: with a background
// flusher pool the flush interleavings are not deterministic, so the pin is
// a hit-ratio window rather than exact counters.
func TestKillRestoreAsyncHitRatio(t *testing.T) {
	devtest.Run(t, func(t *testing.T, b devtest.Backend) {
		ops := snapTrace(25000)
		hit := func(st cachelib.Stats) float64 {
			if st.Gets == 0 {
				return 0
			}
			return float64(st.Hits) / float64(st.Gets)
		}

		control, err := NewSharded(snapConfig(b.New(t, snapGeometry(snapShards)), snapShards, 2, ""))
		if err != nil {
			t.Fatal(err)
		}
		applySnapTrace(t, control, ops, true)
		if err := control.Drain(); err != nil {
			t.Fatal(err)
		}
		want := hit(control.Stats())
		if err := control.Close(); err != nil {
			t.Fatal(err)
		}

		dev := b.New(t, snapGeometry(snapShards))
		path := filepath.Join(t.TempDir(), "kill.snap")
		cfg := snapConfig(dev, snapShards, 2, path)
		first, err := NewSharded(cfg)
		if err != nil {
			t.Fatal(err)
		}
		applySnapTrace(t, first, ops[:len(ops)/2], true)
		if err := first.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		second, err := NewSharded(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if restored, rerr := second.RestoreOutcome(); !restored {
			t.Fatalf("restore refused: %v", rerr)
		}
		applySnapTrace(t, second, ops[len(ops)/2:], true)
		if err := second.Drain(); err != nil {
			t.Fatal(err)
		}
		got := hit(second.Stats())
		if err := second.Close(); err != nil {
			t.Fatal(err)
		}
		if diff := got - want; diff < -0.02 || diff > 0.02 {
			t.Fatalf("hit ratio %.4f after kill-and-restore, %.4f uninterrupted (ε=0.02)", got, want)
		}
	})
}

// TestUnshardedCheckpointRestore covers the plain Cache path (New, not
// NewSharded): restore on Close-checkpoint with live in-memory objects.
func TestUnshardedCheckpointRestore(t *testing.T) {
	dev := devtest.Backends()[0].New(t, snapGeometry(1))
	path := filepath.Join(t.TempDir(), "one.snap")
	cfg := snapConfig(dev, 1, 0, path)
	cfg.Shards = 1

	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	k, v := kv(7)
	if err := c.Set(k, v); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if restored, rerr := c2.RestoreOutcome(); !restored {
		t.Fatalf("restore refused: %v", rerr)
	}
	got, ok := c2.Get(k)
	if !ok || !bytes.Equal(got, v) {
		t.Fatalf("buffered object lost across restart: ok=%v", ok)
	}
	if st := c2.Stats(); st.Sets != 1 {
		t.Fatalf("stats not restored: %+v", st)
	}
}

// TestSnapshotCrashMatrix is the corruption table: a valid snapshot
// truncated at every section boundary, bit-flipped at seeded-random
// offsets, and mangled in targeted ways must always be refused with a typed
// error — never adopted, never a panic — and the engine must serve cold
// afterwards. Runs against both device backends.
func TestSnapshotCrashMatrix(t *testing.T) {
	devtest.Run(t, func(t *testing.T, b devtest.Backend) {
		dev := b.New(t, snapGeometry(snapShards))
		dir := t.TempDir()
		path := filepath.Join(dir, "valid.snap")
		c, err := NewSharded(snapConfig(dev, snapShards, 0, path))
		if err != nil {
			t.Fatal(err)
		}
		applySnapTrace(t, c, snapTrace(25000), false)
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		valid, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}

		// Control: the intact snapshot restores on this device.
		ctrl, err := NewSharded(snapConfig(dev, snapShards, 0, path))
		if err != nil {
			t.Fatal(err)
		}
		if restored, rerr := ctrl.RestoreOutcome(); !restored {
			t.Fatalf("control restore refused: %v", rerr)
		}

		type corruption struct {
			name string
			b    []byte
		}
		var cases []corruption
		offs, err := snapshot.SectionOffsets(valid)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range offs {
			if o == len(valid) {
				continue
			}
			cases = append(cases, corruption{fmt.Sprintf("truncate@%d", o), valid[:o]})
		}
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 48; i++ {
			pos := rng.Intn(len(valid))
			mut := append([]byte(nil), valid...)
			mut[pos] ^= 1 << uint(rng.Intn(8))
			cases = append(cases, corruption{fmt.Sprintf("bitflip@%d", pos), mut})
		}
		cases = append(cases,
			corruption{"empty", nil},
			corruption{"bad magic", append([]byte("XXXXXXXX"), valid[8:]...)},
			corruption{"short", valid[:11]},
			corruption{"slack byte", append(append([]byte(nil), valid...), 0)},
		)

		for i, tc := range cases {
			t.Run(tc.name, func(t *testing.T) {
				p := filepath.Join(dir, fmt.Sprintf("case-%d.snap", i))
				if err := os.WriteFile(p, tc.b, 0o644); err != nil {
					t.Fatal(err)
				}
				cold, err := NewSharded(snapConfig(dev, snapShards, 0, p))
				if err != nil {
					t.Fatalf("New must not fail on a bad snapshot: %v", err)
				}
				restored, rerr := cold.RestoreOutcome()
				if restored {
					t.Fatal("corrupt snapshot was adopted")
				}
				if rerr == nil || !typedSnapshotErr(rerr) {
					t.Fatalf("refusal is not a typed snapshot error: %v", rerr)
				}
				// Cold but serving: a buffered set/get round trip (in-memory
				// only — it must not mutate the device other cases restore
				// against) from a zeroed state.
				if st := cold.Stats(); st != (cachelib.Stats{}) {
					t.Fatalf("cold engine carries stats: %+v", st)
				}
				k, v := kv(123456)
				if err := cold.Set(k, v); err != nil {
					t.Fatalf("cold engine cannot serve: %v", err)
				}
				if got, ok := cold.Get(k); !ok || !bytes.Equal(got, v) {
					t.Fatal("cold engine lost a fresh set")
				}
			})
		}

		// After the whole matrix, a cold engine on this (dirty) device must
		// run a full trace — flushes, seals, evictions — without trouble.
		final, err := NewSharded(snapConfig(dev, snapShards, 0, ""))
		if err != nil {
			t.Fatal(err)
		}
		applySnapTrace(t, final, snapTrace(25000), false)
		if st := final.Stats(); st.WriteErrors != 0 || st.ReadErrors != 0 {
			t.Fatalf("cold-format run hit device errors: %+v", st)
		}
	})
}

// TestStaleSnapshotRejected pins the generation-stamp wall: any device
// mutation after checkpoint — appends from continued traffic, a zone reset,
// a different device of the same shape — invalidates the snapshot with
// ErrStale; a different geometry reports ErrGeometry; a different engine
// configuration reports ErrConfig.
func TestStaleSnapshotRejected(t *testing.T) {
	devtest.Run(t, func(t *testing.T, b devtest.Backend) {
		dev := b.New(t, snapGeometry(snapShards))
		dir := t.TempDir()
		path := filepath.Join(dir, "s.snap")
		cfg := snapConfig(dev, snapShards, 0, path)

		c, err := NewSharded(cfg)
		if err != nil {
			t.Fatal(err)
		}
		applySnapTrace(t, c, snapTrace(25000), false)
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		expectRefusal := func(t *testing.T, cfg Config, want error) {
			t.Helper()
			c, err := NewSharded(cfg)
			if err != nil {
				t.Fatal(err)
			}
			restored, rerr := c.RestoreOutcome()
			if restored {
				t.Fatal("snapshot adopted despite mismatch")
			}
			if !errors.Is(rerr, want) {
				t.Fatalf("got %v, want %v", rerr, want)
			}
		}

		t.Run("config mismatch", func(t *testing.T) {
			bad := cfg
			bad.FlushThreshold++
			expectRefusal(t, bad, snapshot.ErrConfig)
		})
		t.Run("shard count mismatch", func(t *testing.T) {
			bad := snapConfig(dev, 1, 0, path)
			bad.DataZones = snapShards * snapPerShardData // keep capacity, change partitioning
			expectRefusal(t, bad, snapshot.ErrConfig)
		})
		t.Run("different device same shape", func(t *testing.T) {
			other := b.New(t, snapGeometry(snapShards))
			expectRefusal(t, snapConfig(other, snapShards, 0, path), snapshot.ErrStale)
		})
		t.Run("geometry mismatch", func(t *testing.T) {
			g := snapGeometry(snapShards)
			g.Zones += 2
			other := b.New(t, g)
			expectRefusal(t, snapConfig(other, snapShards, 0, path), snapshot.ErrGeometry)
		})
		t.Run("zone reset after checkpoint", func(t *testing.T) {
			// Find a written zone and reset it: Writes bumps, Boot stays.
			for z := 0; z < dev.Zones(); z++ {
				if dev.ZoneWP(z) == dev.PagesPerZone() {
					if _, err := dev.ResetZone(z); err != nil {
						t.Fatal(err)
					}
					break
				}
			}
			expectRefusal(t, cfg, snapshot.ErrStale)
		})
		t.Run("appends after checkpoint", func(t *testing.T) {
			// The reset above already staled the snapshot; re-checkpoint a
			// cold engine, copy the snapshot aside, keep writing, and the
			// copy must be refused.
			c, err := NewSharded(cfg)
			if err != nil {
				t.Fatal(err)
			}
			applySnapTrace(t, c, snapTrace(12000), false)
			if err := c.Checkpoint(path); err != nil {
				t.Fatal(err)
			}
			frozen := filepath.Join(dir, "frozen.snap")
			blob, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(frozen, blob, 0o644); err != nil {
				t.Fatal(err)
			}
			applySnapTrace(t, c, snapTrace(25000)[12000:], false)
			if err := c.Flush(); err != nil {
				t.Fatal(err)
			}
			expectRefusal(t, snapConfig(dev, snapShards, 0, frozen), snapshot.ErrStale)
		})
	})
}

// Reflection parity pins: the snapshot package's dependency-free mirror
// structs must track the engine types field-for-field, so a counter added
// on one side without the other fails here instead of silently dropping
// state across restarts.

func fieldSig(t reflect.Type, skip map[string]bool) []string {
	var out []string
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if skip[f.Name] {
			continue
		}
		out = append(out, f.Name+" "+f.Type.String())
	}
	return out
}

func TestSnapshotMirrorsEngineTypes(t *testing.T) {
	cases := []struct {
		name       string
		core, snap reflect.Type
		skip       map[string]bool
	}{
		// Skipped Config fields are runtime knobs that shape no on-flash
		// layout or checkpointed state: the device handle, the flusher pool,
		// the snapshot path itself, and the breaker/retry health settings.
		{"ConfigStamp", reflect.TypeOf(Config{}), reflect.TypeOf(snapshot.ConfigStamp{}),
			map[string]bool{"Device": true, "Flushers": true, "SnapshotPath": true,
				"BreakerThreshold": true, "BreakerProbeAfter": true,
				"WriteRetries": true, "RetryBackoff": true}},
		// Skipped Stats fields are ephemeral device-health accounting
		// (health.go): a restarted process starts with a closed breaker and
		// zero retry history by design, so they are deliberately not
		// checkpointed.
		{"Counters", reflect.TypeOf(cachelib.Stats{}), reflect.TypeOf(snapshot.Counters{}),
			map[string]bool{"WriteRetries": true, "DegradedRejects": true,
				"DegradedEntered": true, "DegradedSeconds": true, "BreakerOpen": true}},
		{"Extra", reflect.TypeOf(NemoStats{}), reflect.TypeOf(snapshot.Extra{}), nil},
		{"FlushRec", reflect.TypeOf(FlushRecord{}), reflect.TypeOf(snapshot.FlushRec{}), nil},
	}
	for _, tc := range cases {
		want := fieldSig(tc.core, tc.skip)
		got := fieldSig(tc.snap, nil)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s does not mirror the engine type:\n engine %v\n mirror %v", tc.name, want, got)
		}
	}
}
