package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nemo/internal/bloom"
	"nemo/internal/cachelib"
	"nemo/internal/device"
	"nemo/internal/hashing"
	"nemo/internal/metrics"
	"nemo/internal/setblock"
)

// Cache is a Nemo flash cache. Safe for concurrent use, and neither reads
// nor writes hold the shard mutex across flash I/O: GETs run a short
// locked plan and commit phase around unlocked device reads validated by
// the SG epoch (readpath.go), and SG flushes — including group sealing and
// eviction's victim read-back — run the mirrored seal / build+I/O / commit
// protocol (writepath.go), so foreground traffic on a shard overlaps both
// the reads of concurrent lookups and the appends of an in-flight flush.
// In-memory inserts, deletes, and the locked sub-phases still serialize on
// the shard mutex.
//
// Consistency model: Get returns the most recent Set for a key as long as
// that copy is still cached. Because Nemo deliberately has no exact
// per-object index (§4.3), overwritten copies on flash are not deleted; if
// the newest copy is dropped early (sacrificed by delayed flushing or
// evicted), a Get may observe the previous still-cached value until it ages
// out of the FIFO pool. Hits never return corrupt or cross-key data — every
// entry carries a fingerprint and full key bytes that are verified on read.
// Workloads needing strict read-your-writes should treat overwrites as
// invalidations (delete-then-set at a higher layer), as with the paper's
// CacheLib deployment.
type Cache struct {
	cfg       Config
	dev       device.Device
	pageSize  int
	setsPerSG int
	bfBytes   int // serialized bytes of one set-level Bloom filter
	bfBits    int
	bfK       int

	mu sync.Mutex

	// Buffered in-memory SGs: memq[0] is the front (next to flush),
	// memq[len-1] the rear.
	memq     []*memSG
	sacCount int

	// On-flash FIFO SG pool, oldest first. IDs are dense and increasing,
	// so pool position = id - pool[0].id.
	pool     []*flashSG
	nextSGID uint64

	groups    []*idxGroup // creation order; open group is the last unsealed
	nextGroup int
	icache    *pbfgCache

	// Arena allocators for the steady-state index layer (index.go): flashSG
	// structs and their packed per-set metadata. Arena slots recycle
	// immediately; the concurrent read path copies everything it tests
	// outside the lock at plan time (readpath.go), so nothing dangles.
	sgAlloc   sgArena
	metaAlloc metaArena

	// fetchBuf is the write-path PBFG fetch scratch (guarded by mu): a
	// cache-miss fetch lands here and icache.put copies it into the arena.
	fetchBuf []byte

	// memFree recycles memSG slabs: a flushed front returns here at commit
	// and the next seal's rear rotation reuses it, so steady-state flushing
	// allocates no set-page buffers.
	memFree []*memSG

	freeDataZones  []int
	freeIndexZones []int

	bytesSinceCool uint64

	stats    cachelib.Stats
	extra    NemoStats
	flushLog []FlushRecord
	hist     metrics.Histogram

	probes *bloom.ProbeSet // write-path probe scratch (guarded by mu)

	// Flush protocol state (writepath.go). sealed is the detached front SG
	// of the in-flight flush, probed by readers under mu; flushInFlight
	// serializes flushes per cache (waiters on flushCond coalesce);
	// flushing is the same-goroutine recursion guard, true only while the
	// flush owner holds mu; fscratch is the owner-exclusive build buffers.
	sealed        *sealedFlush
	flushInFlight bool
	flushing      bool
	flushCond     *sync.Cond
	fscratch      flushScratch

	// getPool recycles per-goroutine read-path scratch (probe sets,
	// snapshot arenas, candidate read buffers) so a steady-state Get
	// allocates nothing beyond the returned value copy. See readpath.go
	// for the plan/I-O/commit protocol these scratches serve.
	getPool sync.Pool

	// Background flush pipeline (nil when Config.Flushers == 0). SetAsync
	// hands full in-memory SGs to the pool instead of flushing inline on
	// the inserting goroutine; flushPending (guarded by mu) bounds the
	// outstanding jobs to one per cache. ownFlusher marks pools created by
	// New — NewSharded shares one pool across shards and owns it itself.
	flusher      *flusherPool
	ownFlusher   bool
	flushPending bool

	// Device-fault circuit breaker (health.go), guarded by mu and timed on
	// the device clock; retries is the atomic transient-append-retry counter
	// (incremented unlocked in the build phase, folded into Stats on read).
	brk     breaker
	retries atomic.Uint64

	// Warm-restart outcome, fixed at New time (see RestoreOutcome): whether
	// Config.SnapshotPath was adopted, and the typed reason when a snapshot
	// existed but was refused.
	restored   bool
	restoreErr error
}

// New creates a Nemo cache on the configured device.
func New(cfg Config) (*Cache, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	dev := cfg.Device
	bfBits := bloom.SizeBits(cfg.TargetObjsPerSet, cfg.BloomFPR)
	bfBytes := bfBits / 8
	if bfBytes*cfg.SGsPerIndexGroup > dev.PageSize() {
		return nil, fmt.Errorf("core: %d filters of %d bytes exceed the %d-byte PBFG page; lower SGsPerIndexGroup or BloomFPR",
			cfg.SGsPerIndexGroup, bfBytes, dev.PageSize())
	}
	if !cfg.BufferedSGs {
		cfg.InMemSGs = 1
	}
	if cfg.BreakerThreshold > 0 && cfg.BreakerProbeAfter == 0 {
		cfg.BreakerProbeAfter = time.Second
	}
	c := &Cache{
		cfg:       cfg,
		dev:       dev,
		pageSize:  dev.PageSize(),
		setsPerSG: cfg.ZonesPerSG * dev.PagesPerZone(),
		bfBytes:   bfBytes,
		bfBits:    bfBits,
		bfK:       bloom.NumHashes(cfg.BloomFPR),
	}
	c.fscratch.pageBuf = make([]byte, 0, dev.PageSize())
	c.fscratch.counts = make([]uint32, c.setsPerSG)
	c.fscratch.parseBlk = *setblock.New(c.pageSize)
	c.fetchBuf = make([]byte, c.pageSize)
	c.sgAlloc = sgArena{zps: cfg.ZonesPerSG}
	c.flushCond = sync.NewCond(&c.mu)
	c.probes = bloom.NewProbeSet(0, c.bfBits, c.bfK)
	c.getPool.New = func() any {
		return &getScratch{probes: bloom.NewProbeSet(0, c.bfBits, c.bfK)}
	}
	for i := 0; i < cfg.InMemSGs; i++ {
		c.memq = append(c.memq, newMemSG(c.setsPerSG, c.pageSize))
	}
	base := cfg.ZoneOffset
	for z := base + cfg.DataZones - 1; z >= base; z-- {
		c.freeDataZones = append(c.freeDataZones, z)
	}
	idxZones := cfg.IndexZones()
	for z := base + cfg.DataZones + idxZones - 1; z >= base+cfg.DataZones; z-- {
		c.freeIndexZones = append(c.freeIndexZones, z)
	}
	dataSGs := cfg.DataZones / cfg.ZonesPerSG
	maxGroups := (dataSGs + cfg.SGsPerIndexGroup - 1) / cfg.SGsPerIndexGroup
	capacity := int(cfg.CachedPBFGRatio * float64((maxGroups+1)*c.setsPerSG))
	c.icache = newPBFGCache(capacity, c.pageSize, c.setsPerSG)
	if cfg.Flushers > 0 {
		c.flusher = newFlusherPool(cfg.Flushers, 1)
		c.ownFlusher = true
	}
	if cfg.SnapshotPath != "" {
		c.restored, c.restoreErr = c.tryRestore(cfg.SnapshotPath)
	}
	return c, nil
}

// popZones removes n zones from the free list, returning nil when fewer
// are available.
func popZones(free *[]int, n int) []int {
	if len(*free) < n {
		return nil
	}
	return popZonesInto(free, make([]int, 0, n), n)
}

// popZonesInto is popZones appending into the caller's slice (an SG's
// arena-backed zones carve); it returns nil without consuming zones when
// fewer than n are available.
func popZonesInto(free *[]int, dst []int, n int) []int {
	if len(*free) < n {
		return nil
	}
	for i := 0; i < n; i++ {
		dst = append(dst, (*free)[len(*free)-1])
		*free = (*free)[:len(*free)-1]
	}
	return dst
}

// pageAddrIn maps intra-SG offset o onto the SG's (or index group's) zone
// list: zones hold PagesPerZone consecutive offsets each.
func (c *Cache) pageAddrIn(zones []int, o int) int {
	ppz := c.dev.PagesPerZone()
	return c.dev.PageAddr(zones[o/ppz], o%ppz)
}

// Name implements cachelib.Engine.
func (c *Cache) Name() string { return "Nemo" }

// Close implements cachelib.Engine, draining and stopping the cache's own
// flusher pool (shard members of a Sharded cache share the facade's pool
// and leave it alone), then — when Config.SnapshotPath is set — writing a
// final warm-restart checkpoint over the quiesced state.
func (c *Cache) Close() error {
	var first error
	if c.ownFlusher {
		c.ownFlusher = false
		first = c.flusher.stop()
	}
	if c.cfg.SnapshotPath != "" {
		if err := c.Checkpoint(c.cfg.SnapshotPath); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ReadLatency implements cachelib.Engine.
func (c *Cache) ReadLatency() *metrics.Histogram { return &c.hist }

// SetsPerSG returns the number of sets in one Set-Group.
func (c *Cache) SetsPerSG() int { return c.setsPerSG }

// setOf maps a fingerprint to its intra-SG offset. Lane 0 keeps placement
// independent of the Bloom probe stream.
func (c *Cache) setOf(fp uint64) int {
	return int(hashing.Derive(fp, 0) % uint64(c.setsPerSG))
}

// Set inserts or updates an object (operation ❶, §4.1). Values must be
// non-empty — zero-length entries are the deletion tombstones (see Delete).
// Flushes triggered by this insert run inline on the calling goroutine; use
// SetAsync to hand them to the background flusher pool instead.
func (c *Cache) Set(key, value []byte) error {
	fp := hashing.Fingerprint(key)
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.setLocked(fp, key, value, false)
}

// SetAsync implements cachelib.AsyncEngine: the in-memory insert is
// identical to Set, but when the rear-full trigger (or the delayed-flush
// sacrifice threshold) fires, the full front SG's flush is enqueued on the
// flusher pool instead of running inline — the flush is the p99 outlier of
// the Set path. Without a configured pool (Config.Flushers == 0) SetAsync
// degrades to the synchronous Set. Deferred flush errors surface on Drain
// or Close.
func (c *Cache) SetAsync(key, value []byte) error {
	fp := hashing.Fingerprint(key)
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.setLocked(fp, key, value, c.flusher != nil)
}

// Drain implements cachelib.AsyncEngine: it blocks until every flush
// enqueued on the cache's flusher pool has reached flash and returns the
// first deferred error. Callers must not hold the cache lock.
func (c *Cache) Drain() error {
	if c.flusher == nil {
		return nil
	}
	return c.flusher.drain()
}

// setLocked is the insert path shared by Set, SetAsync, and SetMany. async
// defers trigger-driven flushes to the flusher pool.
func (c *Cache) setLocked(fp uint64, key, value []byte, async bool) error {
	if len(value) == 0 {
		// Zero-length entries are the deletion tombstones (a tiny-object
		// cache has no use for empty values); admitting one through Set
		// would make the object unreadable while still counting as stored.
		return fmt.Errorf("core: zero-length values are reserved for deletion tombstones; use Delete")
	}
	need := setblock.EntrySize(len(key), len(value))
	if need > c.pageSize-setblock.HeaderSize || len(key) > 255 {
		return fmt.Errorf("core: object of %d bytes exceeds set size %d", need, c.pageSize)
	}
	o := c.setOf(fp)
	probe, derr := c.breakerAllowWriteLocked()
	if derr != nil {
		return derr
	}
	if probe {
		// The half-open probe flushes inline even on the SetAsync path, so
		// the device verdict the breaker acts on is real, not deferred.
		async = false
	}
	err := c.setBodyLocked(fp, key, value, o, async)
	c.breakerWriteDoneLocked(probe, err)
	return err
}

// setBodyLocked is the insert body behind the breaker gate: placement,
// counters, and the rear-full flush trigger.
func (c *Cache) setBodyLocked(fp uint64, key, value []byte, o int, async bool) error {
	if err := c.placeLocked(fp, key, value, o, insNew, async); err != nil {
		return err
	}
	c.stats.Sets++
	if c.rearFullLocked() {
		if async && c.scheduleFlushLocked() {
			return nil
		}
		return c.flushFrontLocked()
	}
	return nil
}

// rearFullLocked is the rear-full flush trigger: flush the front once the
// rear is nearly full so a fresh SG keeps absorbing inserts (§4.2, buffered
// in-memory SGs). Shared by the insert path and the deferred-flush
// re-check so the two can never drift apart.
func (c *Cache) rearFullLocked() bool {
	return c.cfg.BufferedSGs && len(c.memq) > 1 &&
		c.memq[len(c.memq)-1].fillRate() >= c.cfg.RearFullRatio
}

// Delete invalidates key (cachelib.Deleter). In-memory copies are removed
// exactly; because Nemo deliberately has no exact per-object index (§4.3),
// a still-cached flash copy cannot be erased in place — instead a
// zero-length tombstone entry is inserted, which shadows every older copy
// (Get searches newest-first) and suppresses hotness writeback through the
// Bloom shadow check, until the tombstone itself ages out of the FIFO pool
// along with everything it shadows.
func (c *Cache) Delete(key []byte) error {
	if len(key) > 255 {
		return fmt.Errorf("core: key of %d bytes exceeds the 255-byte limit", len(key))
	}
	fp := hashing.Fingerprint(key)
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.deleteLocked(fp, key)
}

func (c *Cache) deleteLocked(fp uint64, key []byte) error {
	// Deletes are writes too (a tombstone may trigger a flush), so the
	// degraded shard rejects them with the sets; letting them through would
	// skew toward data loss exactly when the device is least trustworthy.
	probe, derr := c.breakerAllowWriteLocked()
	if derr != nil {
		return derr
	}
	err := c.deleteBodyLocked(fp, key)
	c.breakerWriteDoneLocked(probe, err)
	return err
}

func (c *Cache) deleteBodyLocked(fp uint64, key []byte) error {
	o := c.setOf(fp)
	c.stats.Deletes++
	for _, sg := range c.memq {
		sg.remove(o, fp, key)
	}
	// The sealed SG of an in-flight flush is immutable — its copy cannot be
	// removed and WILL land on flash at commit — so a copy there always
	// demands a tombstone (inserted into memq, hence newer: it shadows the
	// flash copy the moment it exists).
	sealedHas := false
	if c.sealed != nil {
		_, sealedHas = c.sealed.mem.lookup(o, fp, key)
	}
	if len(c.pool) == 0 && !sealedHas {
		// No flash copies can exist: dropping in-memory copies suffices.
		return nil
	}
	if !sealedHas {
		// A tombstone is only needed when some SG's Bloom filter admits the
		// key might be on flash; definite absence (the common case for
		// upstream invalidations of never-admitted objects) costs no SG
		// space. A false positive merely inserts a harmless tombstone.
		may, err := c.mayExistOnFlashLocked(fp, o)
		if err != nil {
			return err
		}
		if !may {
			return nil
		}
	}
	// placeLocked removes the in-memory copies (again, a no-op here)
	// before inserting, so exactly one zero-length version remains.
	return c.placeLocked(fp, key, nil, o, insTombstone, false)
}

// mayExistOnFlashLocked Bloom-tests every live SG for (fp, set o) — the
// same filters Get consults, fetched without charging the index-cache
// lookup stats (like the eviction-path shadow checks). False positives are
// possible, false negatives are not.
func (c *Cache) mayExistOnFlashLocked(fp uint64, o int) (bool, error) {
	c.probes.Reuse(fp, c.bfBits)
	for gi := len(c.groups) - 1; gi >= 0; gi-- {
		g := c.groups[gi]
		if g.liveCount == 0 {
			continue
		}
		var page []byte
		if g.sealed {
			p, _, err := c.fetchPBFG(g, o)
			if err != nil {
				return true, err
			}
			page = p
		}
		for s := len(g.members) - 1; s >= 0; s-- {
			m := g.members[s]
			if m.dead || m.setCount(o) == 0 {
				continue
			}
			if c.testMember(g, page, s, o, c.probes) {
				return true, nil
			}
		}
	}
	return false, nil
}

// placeLocked places one entry — fresh object, writeback survivor, or
// tombstone — into the in-memory SGs, applying the paper's fill-rate
// techniques. async defers trigger-driven flushes to the flusher pool.
func (c *Cache) placeLocked(fp uint64, key, value []byte, o int, class insClass, async bool) error {
	// Remove shadow copies so at most one in-memory version exists.
	for _, sg := range c.memq {
		sg.remove(o, fp, key)
	}
	for attempt := 0; attempt <= len(c.memq)+2; attempt++ {
		// Insert into the available SG closest to the front (§4.2 ①).
		for _, sg := range c.memq {
			if sg.canFit(o, fp, key, len(value)) {
				sg.insert(o, fp, key, value, class)
				if class == insNew {
					c.stats.LogicalBytes += uint64(len(key) + len(value))
				}
				return nil
			}
		}
		if c.cfg.DelayedFlush {
			// Technique P: sacrifice the oldest entries of the front SG's
			// target set instead of flushing (§4.2 ②).
			front := c.memq[0]
			n := front.sacrifice(o, setblock.EntrySize(len(key), len(value)))
			c.sacCount += n
			c.extra.Sacrificed += uint64(n)
			c.stats.Evictions += uint64(n)
			if !front.insert(o, fp, key, value, class) {
				// The set would not yield enough room — it is packed with
				// deletion tombstones, which sacrifice must preserve. Flush
				// the front (tombstones move to flash, where they keep
				// shadowing) and retry.
				if err := c.flushFrontLocked(); err != nil {
					return err
				}
				continue
			}
			if class == insNew {
				c.stats.LogicalBytes += uint64(len(key) + len(value))
			}
			if c.sacCount >= c.cfg.FlushThreshold {
				if async && c.sacCount < asyncSacBudget*c.cfg.FlushThreshold &&
					c.scheduleFlushLocked() {
					return nil
				}
				// Backpressure: flush inline — synchronously, or when a
				// deferred flush lags so far behind that continued
				// sacrificing would visibly cost hit ratio.
				return c.flushFrontLocked()
			}
			return nil
		}
		// Naïve flush-on-collision: flush the front SG and retry. This
		// must stay synchronous even in async mode — the insert needs the
		// space now.
		if err := c.flushFrontLocked(); err != nil {
			return err
		}
	}
	return fmt.Errorf("core: insert did not converge")
}

// asyncSacBudget bounds how far past the flush threshold delayed flushing
// may sacrifice while a deferred flush is in the pool's queue; beyond it
// the insert path flushes inline. Without the bound, a lagging flusher
// would let the front SG cannibalize itself and hit ratio would sag.
const asyncSacBudget = 2

// scheduleFlushLocked enqueues this cache on the flusher pool, bounding the
// outstanding jobs to one. It reports false when the flush could not be
// deferred (no pool, or the pool was stopped by a racing Close) — the
// caller then flushes inline.
func (c *Cache) scheduleFlushLocked() bool {
	if c.flusher == nil {
		return false
	}
	if c.flushPending {
		return true
	}
	if !c.flusher.enqueue(c) {
		return false
	}
	c.flushPending = true
	return true
}

// asyncFlushDueLocked re-checks the flush triggers when a deferred job
// executes: an intervening synchronous flush (e.g. the flush-on-collision
// path) may have already rotated the queue, in which case flushing the
// fresh front would only hurt the fill rate.
func (c *Cache) asyncFlushDueLocked() bool {
	return c.rearFullLocked() || c.sacCount >= c.cfg.FlushThreshold
}

// Get looks up an object (operation ❷, §4.1): in-memory SGs first, then
// PBFG-identified candidate SGs read in parallel. Flash I/O runs outside
// the shard mutex under the plan/I-O/commit protocol (readpath.go), so
// concurrent Gets on one shard overlap their device reads.
func (c *Cache) Get(key []byte) ([]byte, bool) {
	fp := hashing.Fingerprint(key)
	return c.get(fp, key)
}

// markHot records an access bit when the SG is inside the tracked tail of
// the pool (the object's later-life stage, §4.4).
func (c *Cache) markHot(sg *flashSG, o, slot int) {
	if len(c.pool) == 0 || c.cfg.HotTrackTailRatio <= 0 {
		return
	}
	pos := int(sg.id - c.pool[0].id)
	limit := int(c.cfg.HotTrackTailRatio * float64(len(c.pool)))
	if limit < 1 {
		limit = 1
	}
	if pos < limit {
		sg.setBit(o, slot)
	}
}

func (c *Cache) poolCapacityBytes() int {
	return c.cfg.DataZones * c.dev.PagesPerZone() * c.pageSize
}

func (c *Cache) openGroup() *idxGroup {
	if n := len(c.groups); n > 0 && !c.groups[n-1].sealed &&
		len(c.groups[n-1].members) < c.cfg.SGsPerIndexGroup {
		return c.groups[n-1]
	}
	g := &idxGroup{id: c.nextGroup}
	// One backing allocation carries all member filter buffers until seal;
	// member slot s writes only its own carve (see idxGroup.slotBF).
	g.bfBacking = make([]byte, c.cfg.SGsPerIndexGroup*c.setsPerSG*c.bfBytes)
	c.nextGroup++
	c.groups = append(c.groups, g)
	return g
}

// shadowedByNewer reports whether a newer version of (fp, key) may exist
// anywhere ahead of the evicted SG: the in-memory SGs — including the
// sealed SG of an in-flight flush, whose contents are bound for flash and
// strictly newer than any eviction victim — are checked exactly, and newer
// flash SGs through their Bloom filters (fetching PBFG pages on demand —
// the paper's write-back reads; fetched pages enter the index cache so the
// cost amortizes over the hot sets). A Bloom positive conservatively
// suppresses the writeback: an object may be dropped early, but a stale
// version is never resurrected over a fresh one.
func (c *Cache) shadowedByNewer(fp uint64, o int, newerThan uint64, key []byte) (bool, error) {
	for _, sg := range c.memq {
		if _, ok := sg.lookup(o, fp, key); ok {
			return true, nil
		}
	}
	if c.sealed != nil {
		if _, ok := c.sealed.mem.lookup(o, fp, key); ok {
			return true, nil
		}
	}
	c.probes.Reuse(fp, c.bfBits)
	for gi := len(c.groups) - 1; gi >= 0; gi-- {
		g := c.groups[gi]
		if g.liveCount == 0 {
			continue
		}
		newest := g.members[len(g.members)-1]
		if newest.id <= newerThan {
			break // groups are ordered; nothing older can shadow
		}
		var page []byte
		if g.sealed {
			p, _, err := c.fetchPBFG(g, o)
			if err != nil {
				return false, err
			}
			page = p
		}
		for s := len(g.members) - 1; s >= 0; s-- {
			m := g.members[s]
			if m.dead || m.id <= newerThan || m.setCount(o) == 0 {
				continue
			}
			if c.testMember(g, page, s, o, c.probes) {
				return true, nil
			}
		}
	}
	return false, nil
}

// dropDeadGroups trims fully dead groups from the front of the group list,
// recycling their members' structs and meta carves into the arenas.
func (c *Cache) dropDeadGroups() {
	i := 0
	for i < len(c.groups) && c.groups[i].sealed && c.groups[i].liveCount == 0 {
		for _, m := range c.groups[i].members {
			c.releaseSG(m)
		}
		i++
	}
	if i > 0 {
		c.groups = append([]*idxGroup(nil), c.groups[i:]...)
	}
}

// coolLocked is the periodic cooling pass (§4.4): hotness bits survive only
// for sets whose PBFG is memory-resident.
func (c *Cache) coolLocked() {
	c.extra.CoolingRuns++
	limit := int(c.cfg.HotTrackTailRatio * float64(len(c.pool)))
	if limit < 1 && len(c.pool) > 0 {
		limit = 1
	}
	for i := 0; i < limit && i < len(c.pool); i++ {
		sg := c.pool[i]
		if !sg.hasBits {
			continue
		}
		for o := 0; o < c.setsPerSG; o++ {
			if sg.setCount(o) == 0 {
				continue
			}
			if !c.pbfgResident(sg.group, o) {
				sg.clearSet(o)
			}
		}
	}
}

// Flush forces the front in-memory SG to flash (mainly for tests and
// orderly shutdown in examples). Unlike the trigger-driven internal
// callers — which coalesce with a flush already in flight — Flush waits
// any in-flight flush out and then flushes the current front regardless,
// so objects inserted after that flush sealed still reach the device.
func (c *Cache) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.waitFlushIdleLocked()
	return c.flushFrontLocked()
}
