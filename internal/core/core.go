package core
