package core

// The concurrent read path: flash I/O happens outside the shard mutex.
//
// A Get runs in three phases:
//
//   - plan (locked): fingerprint → set offset, probe the in-memory SGs, and
//     — when the lookup must go to flash — snapshot everything the unlocked
//     phase needs: the ordered member-filter probes (the filter bytes are
//     COPIED into the per-goroutine scratch and the candidate page addresses
//     precomputed here, so the unlocked phase never touches the recycling
//     index-cache/SG arenas) and the PBFG pages missing from the index
//     cache, plus the SG epoch (pool head ID + flush sequence).
//   - I/O (unlocked): fetch the missing PBFG pages, Bloom-test the probes
//     newest-first, read the candidate set pages (pooled per-goroutine
//     buffers via sync.Pool — never the mutex-guarded scratch the old path
//     used), and scan them for the key.
//   - commit (locked): re-validate the epoch. If no SG was flushed or
//     evicted since the plan, the pages read were the immutable pages the
//     snapshot named, so the order-insensitive read-side effects apply:
//     Hits/FlashReadOps/FlashBytesRead/ReadErrors counters, markHot bits,
//     deduplicated icache publication of the fetched PBFG pages, the
//     latency histogram. On conflict the attempt is discarded (device reads
//     are still accounted — they happened) and the Get replans; after
//     maxGetOptimistic conflicts it falls back to running the I/O phase
//     under the lock, which is exactly the pre-concurrent behavior and
//     guarantees progress.
//
// Epoch rule: the snapshot is valid iff the pool head SG ID and the flush
// sequence number (nextSGID) are unchanged. Every eviction pops the pool
// head (IDs are dense and increasing, so the head ID moves), and every
// flush increments nextSGID before any zone is rewritten, so an unchanged
// epoch proves no zone named by the snapshot was reset or rewritten while
// it was being read.
//
// Determinism: driven serially (every replay harness drives one shard from
// one goroutine), the three-phase path performs the identical device reads,
// in the identical order, with identical statistics to the historical
// fully-locked path, with one deliberate exception: the old path published
// each fetched PBFG page mid-lookup, so at index-cache capacity a fetch
// for a newer group could evict a page the same lookup needed for an older
// group, forcing a duplicate fetch. Deferring publication to the commit
// phase removes those duplicate fetches — read traffic under capacity
// pressure can only go down, and hit/miss results, write-side counters,
// and determinism are untouched. Under truly concurrent GETs racing
// writers, hit/miss results stay exact (the epoch retry) but the
// index-cache lookup/miss counters and FlashReadOps may inflate: a
// conflicted attempt's reads are real and are counted, and two racing
// GETs may both fetch the same PBFG page before either publishes it (the
// commit-phase put deduplicates the cache itself, not the counters).

import (
	"time"

	"nemo/internal/bloom"
	"nemo/internal/hashing"
	"nemo/internal/setblock"
)

// maxGetOptimistic bounds how many epoch conflicts a Get tolerates before
// falling back to fully-locked I/O (guaranteed progress under write storms).
const maxGetOptimistic = 3

// probeEnt is one member-filter Bloom test queued by the plan phase, in
// newest-first candidate order. The sg pointer is carried for the commit
// phase only (markHot, under the lock after epoch validation); the unlocked
// phase works from the copied filter bytes and the precomputed address.
type probeEnt struct {
	sg   *flashSG
	addr int   // flash address of the candidate set page, fixed at plan time
	bfLo int32 // offset of the copied filter in sc.bfArena; -1 = pend-backed
	pend int32 // index into the pend list when bfLo < 0
	slot int32 // filter slot within the pending group's page
}

// pendFetch is one PBFG page the plan phase found missing from the index
// cache. The I/O phase fetches it into a pooled page buffer owned by the
// attempt; the commit phase publishes it to the index cache, whose put
// copies the bytes into the cache's page arena, so the buffer recycles into
// the scratch pool immediately after.
type pendFetch struct {
	key   pbfgKey
	addr  int
	page  []byte
	done  time.Duration
	err   error
	owner int32 // batch: index of the key whose I/O pass fetches the page
}

// getScratch is the per-goroutine reusable state of one Get (or one batch).
// Instances live in the cache's sync.Pool: a borrowing goroutine owns the
// scratch exclusively until it returns it, so the steady-state hot path
// allocates nothing beyond the returned value copy. The candidate read
// buffers (bufs) are plain pooled pages — the device copies into them
// synchronously and never retains them (the flashsim ReadPages ownership
// contract), and they are recycled across Gets. PBFG pages headed for the
// index cache draw from their own free list (freePages): the index cache
// copies on put, so the fetch buffer comes straight back.
type getScratch struct {
	probes    *bloom.ProbeSet
	ents      []probeEnt
	pends     []pendFetch
	bfArena   []byte // plan-phase copies of the filters to test, bfBytes each
	cands     []*flashSG
	addrs     []int
	bufs      [][]byte
	freePages [][]byte

	// Batch-mode per-key state (see getBatch).
	atts    []getAttempt
	results []getIOResult
}

// borrowScratch takes a scratch from the cache's pool.
func (c *Cache) borrowScratch() *getScratch {
	return c.getPool.Get().(*getScratch)
}

func (c *Cache) returnScratch(sc *getScratch) {
	c.getPool.Put(sc)
}

// getAttempt carries one key's plan-phase snapshot through the I/O and
// commit phases.
type getAttempt struct {
	fp    uint64
	o     int
	start time.Duration

	// Epoch snapshot (valid only when !resolved).
	headID uint64
	nextSG uint64

	// ents[entLo:entHi] are this attempt's probes (batch mode slices one
	// shared arena; single-key mode uses the whole slice).
	entLo, entHi int32

	// Early outcome: the lookup resolved entirely under the plan lock
	// (in-memory hit, tombstone, or empty pool).
	resolved bool
	val      []byte
	hit      bool
}

// I/O-phase outcomes.
const (
	ioMiss = iota // clean miss (no candidates, or all candidates false positives)
	ioHit
	ioTomb // tombstone found on flash: deletion shadows older copies
	ioErr  // device read error: degrade to a miss, counted in ReadErrors
)

// getIOResult is everything the unlocked phase produced, applied (or
// discarded) by the commit phase.
type getIOResult struct {
	outcome   int
	val       []byte
	hotSG     *flashSG
	hotSlot   int
	readOps   uint64
	readBytes uint64
	fpReads   uint64
	readErrs  uint64
	maxDone   time.Duration
}

// epochLocked snapshots the SG epoch into att. Caller holds c.mu and has
// checked the pool is non-empty.
func (c *Cache) epochLocked(att *getAttempt) {
	att.headID = c.pool[0].id
	att.nextSG = c.nextSGID
}

// epochValidLocked reports whether the flash layout named by att's snapshot
// is untouched: no SG evicted (head ID) and none flushed (flush sequence).
func (c *Cache) epochValidLocked(att *getAttempt) bool {
	return len(c.pool) > 0 && c.pool[0].id == att.headID && c.nextSGID == att.nextSG
}

// planGetLocked is the locked plan phase for one key: in-memory probe, and
// on a flash lookup the probe/pend snapshot appended to sc.ents/sc.pends
// (att.entLo/entHi record this key's segment). owner stamps any new pend
// with the planning key's batch index (0 for single-key lookups) so the
// I/O phase fetches each shared page exactly once, at the position a
// serial execution would have fetched it. Index-cache lookup/miss counters
// are charged here, mirroring the historical locked path. The caller holds
// c.mu and has already counted the Get.
func (c *Cache) planGetLocked(sc *getScratch, att *getAttempt, key []byte, owner int32) {
	att.resolved = false
	fp, o := att.fp, att.o

	// 1. In-memory SGs, front to rear, then the sealed-but-uncommitted SG
	// of an in-flight flush (writepath.go): its objects are not yet
	// discoverable on flash, and any memq copy of the same key was inserted
	// after the seal and is therefore newer, so the sealed SG probes last.
	// Driven serially the sealed slot is always empty and this is exactly
	// the historical memq probe.
	for i := 0; i <= len(c.memq); i++ {
		var sg *memSG
		if i < len(c.memq) {
			sg = c.memq[i]
		} else if c.sealed != nil {
			sg = c.sealed.mem
		} else {
			break
		}
		if v, ok := sg.lookup(o, fp, key); ok {
			if len(v) == 0 {
				// Tombstone: the key was deleted; the marker shadows any
				// older flash copy, so stop here.
				c.hist.Record(time.Microsecond)
				att.resolved, att.val, att.hit = true, nil, false
				return
			}
			c.stats.Hits++
			c.hist.Record(time.Microsecond)
			att.resolved, att.val, att.hit = true, append([]byte(nil), v...), true
			return
		}
	}
	if len(c.pool) == 0 {
		c.hist.Record(time.Microsecond)
		att.resolved, att.val, att.hit = true, nil, false
		return
	}
	c.epochLocked(att)

	// 2. Snapshot the candidate identification work: newest group first,
	// newest member first, so the I/O phase scans shadowing copies in the
	// same order the locked path searched them.
	att.entLo = int32(len(sc.ents))
	for gi := len(c.groups) - 1; gi >= 0; gi-- {
		g := c.groups[gi]
		if g.liveCount == 0 {
			continue
		}
		var page []byte
		pend := int32(-1)
		if g.sealed {
			k := pbfgKey{group: g.id, set: o}
			c.icache.lookups++
			if p, ok := c.icache.get(k); ok {
				page = p
			} else {
				pend = sc.findPend(k)
				if pend < 0 {
					c.icache.misses++
					pend = int32(len(sc.pends))
					sc.pends = append(sc.pends, pendFetch{
						key:   k,
						addr:  c.pageAddrIn(g.zones, o),
						owner: owner,
					})
				}
			}
		}
		for s := len(g.members) - 1; s >= 0; s-- {
			m := g.members[s]
			if m.dead || m.setCount(o) == 0 {
				continue
			}
			// Copy the filter to test into the scratch now: arena slots and
			// unsealed group buffers may be recycled or dropped the moment
			// the lock is released, so the unlocked phase must own every
			// byte it reads. The page address is fixed here for the same
			// reason (m.zones aliases the recycling SG arena).
			e := probeEnt{sg: m, addr: c.pageAddrIn(m.zones, o), bfLo: -1, pend: pend, slot: int32(s)}
			switch {
			case !g.sealed:
				bf := g.slotBF[s]
				e.bfLo = int32(len(sc.bfArena))
				sc.bfArena = append(sc.bfArena, bf[o*c.bfBytes:(o+1)*c.bfBytes]...)
			case page != nil:
				e.bfLo = int32(len(sc.bfArena))
				sc.bfArena = append(sc.bfArena, page[s*c.bfBytes:(s+1)*c.bfBytes]...)
			}
			sc.ents = append(sc.ents, e)
		}
	}
	att.entHi = int32(len(sc.ents))
}

// findPend reports an already-planned fetch for k (batch deduplication: a
// page missed by an earlier key of the same batch will be in cache by the
// time a serial execution reached this key, so the later key charges a
// lookup but no miss and shares the fetched page). Single-key plans always
// start with an empty pend list, where this trivially returns -1.
func (sc *getScratch) findPend(k pbfgKey) int32 {
	for i := range sc.pends {
		if sc.pends[i].key == k {
			return int32(i)
		}
	}
	return -1
}

// fetchPend performs one pending PBFG fetch if it has not run yet,
// accounting the read in r. The page buffer comes from the scratch's free
// list (the index cache copies on put, so publication returns it), making
// the steady-state PBFG miss allocation-free like every other GET outcome.
func (c *Cache) fetchPend(sc *getScratch, p *pendFetch, r *getIOResult) {
	if p.page != nil || p.err != nil {
		return
	}
	var page []byte
	if n := len(sc.freePages); n > 0 {
		page = sc.freePages[n-1]
		sc.freePages = sc.freePages[:n-1]
	} else {
		page = make([]byte, c.pageSize)
	}
	d, err := c.dev.ReadPage(p.addr, page)
	if err != nil {
		sc.freePages = append(sc.freePages, page)
		p.err = err
		return
	}
	p.page, p.done = page, d
	r.readOps++
	r.readBytes += uint64(c.pageSize)
}

// getIO is the unlocked phase for one key: fetch this attempt's pending
// PBFG pages, Bloom-test the snapshot probes, read and scan the candidate
// set pages. my selects which pends this attempt owns (batch mode shares
// the pend list across keys); pends fetched by earlier keys contribute no
// latency here, mirroring the index-cache hit a serial execution would see.
func (c *Cache) getIO(sc *getScratch, att *getAttempt, key []byte, my int32) (r getIOResult) {
	for i := range sc.pends {
		p := &sc.pends[i]
		if p.owner != my {
			continue
		}
		c.fetchPend(sc, p, &r)
		if p.err != nil {
			// Abort at the first failed index read, like the locked path:
			// without the filters the candidate set is unknowable.
			r.readErrs++
			r.outcome = ioErr
			return r
		}
		if p.done > r.maxDone {
			r.maxDone = p.done
		}
	}
	sc.probes.Reuse(att.fp, c.bfBits)
	cands := sc.cands[:0]
	addrs := sc.addrs[:0]
	for _, e := range sc.ents[att.entLo:att.entHi] {
		var bf []byte
		if e.bfLo >= 0 {
			bf = sc.bfArena[e.bfLo : int(e.bfLo)+c.bfBytes]
		} else {
			p := &sc.pends[e.pend]
			if p.page == nil {
				// The owning key aborted before fetching this page (or the
				// fetch itself failed): complete it on behalf of this key.
				c.fetchPend(sc, p, &r)
				if p.err == nil && p.done > r.maxDone {
					r.maxDone = p.done
				}
			}
			if p.err != nil {
				r.readErrs++
				r.outcome = ioErr
				return r
			}
			bf = p.page[e.slot*int32(c.bfBytes) : (e.slot+1)*int32(c.bfBytes)]
		}
		if bloom.TestRaw(bf, sc.probes) {
			cands = append(cands, e.sg)
			addrs = append(addrs, e.addr)
		}
	}
	sc.cands, sc.addrs = cands, addrs
	if len(cands) == 0 {
		r.outcome = ioMiss
		return r
	}

	// Parallel candidate reads (the paper reads all candidate sets at the
	// hashed offset concurrently; read amplification counts each page).
	for len(sc.bufs) < len(cands) {
		sc.bufs = append(sc.bufs, make([]byte, c.pageSize))
	}
	pages := sc.bufs[:len(cands)]
	done, err := c.dev.ReadPages(addrs, pages)
	if err != nil {
		r.readErrs++
		r.outcome = ioErr
		return r
	}
	if done > r.maxDone {
		r.maxDone = done
	}
	r.readOps += uint64(len(cands))
	r.readBytes += uint64(len(cands) * c.pageSize)
	for i, m := range cands {
		v, slot, ok := setblock.Scan(pages[i], att.fp, key)
		if !ok {
			r.fpReads++
			continue
		}
		if len(v) == 0 {
			// Tombstone on flash: candidates are scanned newest-first, so
			// the deletion shadows every older copy.
			r.outcome = ioTomb
			return r
		}
		r.outcome = ioHit
		r.val = append([]byte(nil), v...)
		r.hotSG, r.hotSlot = m, slot
		return r
	}
	r.outcome = ioMiss
	return r
}

// commitGetLocked applies one attempt's validated read-side effects under
// c.mu: fetched PBFG pages publish to the index cache (in plan order, so
// the FIFO queue matches the locked path's put order), counters and hotness
// bits update, and the latency sample records. publishPends is false for
// batch commits, which publish the shared pend list once for all keys.
func (c *Cache) commitGetLocked(sc *getScratch, att *getAttempt, r *getIOResult, publishPends bool) {
	if publishPends {
		c.publishPendsLocked(sc)
	}
	c.stats.FlashReadOps += r.readOps
	c.stats.FlashBytesRead += r.readBytes
	c.stats.ReadErrors += r.readErrs
	c.extra.FalsePositiveReads += r.fpReads
	switch r.outcome {
	case ioHit:
		c.stats.Hits++
		c.markHot(r.hotSG, att.o, r.hotSlot)
		c.hist.Record(r.maxDone - att.start + time.Microsecond)
	case ioMiss, ioTomb:
		c.hist.Record(r.maxDone - att.start + time.Microsecond)
	case ioErr:
		c.hist.Record(time.Microsecond)
	}
}

// publishPendsLocked copies every fetched PBFG page into the index cache
// (put copies into the arena, deduplicating against racing publishers) and
// recycles the fetch buffers into the scratch's free list.
func (c *Cache) publishPendsLocked(sc *getScratch) {
	for i := range sc.pends {
		if p := &sc.pends[i]; p.page != nil {
			c.icache.put(p.key, p.page)
			sc.freePages = append(sc.freePages, p.page)
			p.page = nil
		}
	}
}

// abortGetLocked discards a conflicted attempt: the device reads happened
// and are accounted, but nothing read is trusted — fetched PBFG pages are
// dropped instead of published (a reset-and-rewritten index zone could have
// yielded stale or foreign filter bytes).
func (c *Cache) abortGetLocked(sc *getScratch, r *getIOResult) {
	c.stats.FlashReadOps += r.readOps
	c.stats.FlashBytesRead += r.readBytes
	c.stats.ReadErrors += r.readErrs
	for i := range sc.pends {
		if p := &sc.pends[i]; p.page != nil {
			sc.freePages = append(sc.freePages, p.page)
		}
		sc.pends[i].page = nil
		sc.pends[i].err = nil
	}
}

// resetPlan clears the single-key planning state between attempts.
func (sc *getScratch) resetPlan() {
	sc.ents = sc.ents[:0]
	sc.pends = sc.pends[:0]
	sc.bfArena = sc.bfArena[:0]
}

// get is the single-key lookup path behind Get; the key is already
// fingerprinted.
func (c *Cache) get(fp uint64, key []byte) ([]byte, bool) {
	sc := c.borrowScratch()
	defer c.returnScratch(sc)
	att := getAttempt{fp: fp, o: c.setOf(fp)}
	c.mu.Lock()
	c.stats.Gets++
	att.start = c.dev.Clock().Now()
	for attempt := 0; ; attempt++ {
		sc.resetPlan()
		c.planGetLocked(sc, &att, key, allPends)
		if att.resolved {
			c.mu.Unlock()
			return att.val, att.hit
		}
		if attempt >= maxGetOptimistic {
			// Pessimistic fallback: run the I/O under the lock. This is
			// exactly the historical fully-locked behavior, so it needs no
			// validation and always completes.
			r := c.getIO(sc, &att, key, allPends)
			c.commitGetLocked(sc, &att, &r, true)
			c.mu.Unlock()
			return r.val, r.outcome == ioHit
		}
		c.mu.Unlock()
		r := c.getIO(sc, &att, key, allPends)
		c.mu.Lock()
		if c.epochValidLocked(&att) {
			c.commitGetLocked(sc, &att, &r, true)
			c.mu.Unlock()
			return r.val, r.outcome == ioHit
		}
		// Conflict: a flush or eviction moved the flash layout mid-read.
		// Discard and replan under the lock we already hold.
		c.abortGetLocked(sc, &r)
	}
}

// allPends is the single-key owner index: a lone attempt owns every pend it
// planned.
const allPends = 0

// getBatch is the batched three-phase lookup behind GetMany and the sharded
// fan-out: all keys plan under one lock acquisition, every key's flash I/O
// runs unlocked back to back (so one shard's batch overlaps its reads on
// the device's channels exactly as the serial op sequence would have
// scheduled them), and all read-side effects commit under a second, single
// lock acquisition. A PBFG page missed by several keys of the batch is
// fetched once, by the first key that planned it — mirroring the serial
// execution, where the first key's fetch populates the index cache for the
// rest — and later keys charge an index-cache lookup but no miss.
//
// fps may be nil, in which case keys are fingerprinted here (one hash
// pass). emit is called once per key, in order, after all locks are
// released. On an epoch conflict (a racing writer flushed or evicted
// mid-batch) the unresolved keys are redone pessimistically — planned,
// read, and committed under one held lock — which is exact and cannot
// conflict again.
//
// Accounting caveat: the fetch-sharing premise assumes the first key's
// fetch succeeds. If a shared fetch fails, serial execution would have
// had every subsequent key retry the fetch (another lookup, miss, and
// device attempt each); the batch instead reuses the sticky error, so
// under device faults icache.misses undercounts relative to serial by
// the number of sharers. Fault-free batches match serial exactly.
func (c *Cache) getBatch(fps []uint64, keys [][]byte, emit func(j int, val []byte, hit bool)) {
	n := len(keys)
	if n == 0 {
		return
	}
	sc := c.borrowScratch()
	defer c.returnScratch(sc)
	sc.resetPlan()
	atts := sc.atts[:0]
	results := sc.results[:0]

	// Phase 1: plan every key under one lock acquisition.
	c.mu.Lock()
	start := c.dev.Clock().Now()
	for j := 0; j < n; j++ {
		fp := uint64(0)
		if fps != nil {
			fp = fps[j]
		} else {
			fp = hashing.Fingerprint(keys[j])
		}
		atts = append(atts, getAttempt{fp: fp, o: c.setOf(fp), start: start})
		c.stats.Gets++
		c.planGetLocked(sc, &atts[j], keys[j], int32(j))
	}
	c.mu.Unlock()

	// Phase 2: unlocked I/O, key by key in batch order.
	for j := range atts {
		if atts[j].resolved {
			results = append(results, getIOResult{})
			continue
		}
		results = append(results, c.getIO(sc, &atts[j], keys[j], int32(j)))
	}

	// Phase 3: validate once and commit everything under one lock.
	c.mu.Lock()
	conflict := false
	for j := range atts {
		if !atts[j].resolved {
			conflict = !c.epochValidLocked(&atts[j])
			break
		}
	}
	if !conflict {
		c.publishPendsLocked(sc)
		for j := range atts {
			if !atts[j].resolved {
				c.commitGetLocked(sc, &atts[j], &results[j], false)
			}
		}
		c.mu.Unlock()
	} else {
		// Account the aborted attempts' real device reads, discard their
		// untrusted pages, and redo the unresolved keys under the held
		// lock (the pre-concurrent behavior; exact and conflict-free).
		for j := range atts {
			if atts[j].resolved {
				continue
			}
			r := &results[j]
			c.stats.FlashReadOps += r.readOps
			c.stats.FlashBytesRead += r.readBytes
			c.stats.ReadErrors += r.readErrs
		}
		for i := range sc.pends {
			if p := &sc.pends[i]; p.page != nil {
				sc.freePages = append(sc.freePages, p.page)
			}
			sc.pends[i].page, sc.pends[i].err = nil, nil
		}
		for j := range atts {
			if atts[j].resolved {
				continue
			}
			sc.resetPlan()
			att := getAttempt{fp: atts[j].fp, o: atts[j].o, start: start}
			c.planGetLocked(sc, &att, keys[j], allPends)
			if att.resolved {
				atts[j] = att
				continue
			}
			r := c.getIO(sc, &att, keys[j], allPends)
			c.commitGetLocked(sc, &att, &r, true)
			atts[j], results[j] = att, r
		}
		c.mu.Unlock()
	}

	for j := range atts {
		if atts[j].resolved {
			emit(j, atts[j].val, atts[j].hit)
		} else {
			emit(j, results[j].val, results[j].outcome == ioHit)
		}
	}

	// Return the arenas without retaining value bytes in the pool.
	for j := range atts {
		atts[j].val = nil
		results[j].val = nil
	}
	sc.atts, sc.results = atts[:0], results[:0]
}
