package core

import (
	"time"

	"nemo/internal/bloom"
	"nemo/internal/cachelib"
	"nemo/internal/metrics"
)

// NemoStats extends the common counters with the quantities the paper's
// design-breakdown and overhead sections report.
//
// Determinism under concurrency: driven serially (as every replay harness
// drives a shard), all counters are exact and reproducible. Under truly
// concurrent GETs racing writers, hit/miss outcomes and every write-side
// counter stay exact, but FalsePositiveReads, the index-cache
// lookup/miss pair (PBFGStats), the flash-read counters, and — on a
// faulty device — ReadErrors may inflate: an epoch-conflicted read
// attempt's device reads (and read failures) are real and are counted
// before the attempt retries, and racing readers may duplicate a PBFG
// fetch before either publishes it (see readpath.go).
type NemoStats struct {
	// SGsFlushed counts SG flushes; FillSum accumulates their fill rates,
	// so FillSum/SGsFlushed is the mean flushed-SG fill rate (Figure 17).
	SGsFlushed uint64
	FillSum    float64

	// NewBytes counts user bytes newly written into flushed SGs (including
	// sacrificed objects); WriteBackBytes counts re-inserted eviction
	// survivors. Nemo's paper WA = DataBytesWritten / NewBytes (§5.2).
	NewBytes       uint64
	WriteBackBytes uint64
	WriteBackObjs  uint64
	Sacrificed     uint64

	DataBytesWritten  uint64
	IndexBytesWritten uint64

	FalsePositiveReads uint64
	CoolingRuns        uint64

	// FlushRecordsDropped counts SG flushes whose FlushRecord was discarded
	// because the retained history had already reached maxFlushLog. A
	// nonzero value means FlushLog covers only the run's first maxFlushLog
	// flushes — per-SG breakdown experiments on longer runs must either
	// accept the truncation or sample earlier.
	FlushRecordsDropped uint64
}

// Add returns the field-wise sum n + o, for aggregating per-shard counters.
func (n NemoStats) Add(o NemoStats) NemoStats {
	return NemoStats{
		SGsFlushed:          n.SGsFlushed + o.SGsFlushed,
		FillSum:             n.FillSum + o.FillSum,
		NewBytes:            n.NewBytes + o.NewBytes,
		WriteBackBytes:      n.WriteBackBytes + o.WriteBackBytes,
		WriteBackObjs:       n.WriteBackObjs + o.WriteBackObjs,
		Sacrificed:          n.Sacrificed + o.Sacrificed,
		DataBytesWritten:    n.DataBytesWritten + o.DataBytesWritten,
		IndexBytesWritten:   n.IndexBytesWritten + o.IndexBytesWritten,
		FalsePositiveReads:  n.FalsePositiveReads + o.FalsePositiveReads,
		CoolingRuns:         n.CoolingRuns + o.CoolingRuns,
		FlushRecordsDropped: n.FlushRecordsDropped + o.FlushRecordsDropped,
	}
}

// FlushRecord captures one SG flush for the per-SG breakdown experiments
// (Figures 17 and 18).
type FlushRecord struct {
	Fill     float64 // aggregate fill rate at flush
	NewObjs  int     // objects inserted fresh (sacrificed ones included)
	WBObjs   int     // objects re-inserted by hotness-aware writeback
	NewBytes uint64
	WBBytes  uint64
}

// maxFlushLog bounds the retained flush history: the log keeps the run's
// FIRST maxFlushLog flush records and silently retains nothing afterwards.
// The cap exists so a production-length replay cannot grow an unbounded
// per-flush history; every flush past it increments
// NemoStats.FlushRecordsDropped, so truncation is observable instead of
// silent.
const maxFlushLog = 4096

// FlushLog returns up to the first maxFlushLog per-SG flush records (see
// maxFlushLog for the truncation contract; NemoStats.FlushRecordsDropped
// counts what the cap discarded).
func (c *Cache) FlushLog() []FlushRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]FlushRecord(nil), c.flushLog...)
}

// Extra returns the Nemo-specific counters plus current index-cache stats.
func (c *Cache) Extra() NemoStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.extra
}

// Stats implements cachelib.Engine. The breaker-derived fields are computed
// live: WriteRetries from the unlocked atomic counter, DegradedSeconds from
// the device clock (the in-progress window included), BreakerOpen as a
// 0/1 gauge of this shard's breaker position.
func (c *Cache) Stats() cachelib.Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.WriteRetries = c.retries.Load()
	s.DegradedSeconds = uint64(c.breakerDegradedLocked() / time.Second)
	if c.brk.state != BreakerClosed {
		s.BreakerOpen = 1
	}
	return s
}

// mergeLatencyInto folds this cache's latency histogram into h under the
// cache lock (used by the sharded facade to aggregate shard histograms).
func (c *Cache) mergeLatencyInto(h *metrics.Histogram) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h.Merge(&c.hist)
}

// MeanFillRate returns the mean fill rate of flushed SGs (Figure 17).
func (c *Cache) MeanFillRate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.extra.SGsFlushed == 0 {
		return 0
	}
	return c.extra.FillSum / float64(c.extra.SGsFlushed)
}

// PaperWA returns the paper's write-amplification definition for Nemo
// (§5.2): SG bytes written divided by newly written object bytes (writeback
// excluded, sacrificed objects included). Returns 1 before any flush.
func (c *Cache) PaperWA() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.extra.NewBytes == 0 {
		return 1
	}
	return float64(c.extra.DataBytesWritten) / float64(c.extra.NewBytes)
}

// PBFGStats reports index-cache effectiveness: total sealed-PBFG lookups
// and the fraction requiring a flash fetch (Figure 19b's miss ratio).
func (c *Cache) PBFGStats() (lookups, misses uint64, missRatio float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	l, m := c.icache.lookups, c.icache.misses
	if l == 0 {
		return 0, 0, 0
	}
	return l, m, float64(m) / float64(l)
}

// MemoryOverhead models Nemo's metadata cost in bits per object, following
// Table 6: cached Bloom-filter bits, tail-restricted 1-bit hotness, and the
// in-memory index-group buffer amortized over pool objects.
type MemoryOverhead struct {
	BloomBitsPerObj  float64 // filter cost × cached ratio
	HotBitsPerObj    float64 // 1 bit × tail ratio
	BufferBitsPerObj float64 // index-group buffer / pool objects
	TotalBitsPerObj  float64
}

// MemoryOverhead returns the modeled per-object metadata cost.
func (c *Cache) MemoryOverhead() MemoryOverhead {
	c.mu.Lock()
	defer c.mu.Unlock()
	bfPerObj := bloom.BitsPerObject(c.cfg.BloomFPR) * c.cfg.CachedPBFGRatio
	hot := c.cfg.HotTrackTailRatio // 1 bit per object over the tracked tail
	// One index-group buffer (SetsPerSG × bfBytes per member SG slot,
	// bounded by one SG worth of filter pages) amortized over pool objects.
	bufferBits := float64(c.setsPerSG * c.pageSize * 8)
	poolObjs := float64(c.cfg.DataZones*c.setsPerSG) * float64(c.cfg.TargetObjsPerSet)
	buffer := bufferBits / poolObjs
	m := MemoryOverhead{
		BloomBitsPerObj:  bfPerObj,
		HotBitsPerObj:    hot,
		BufferBitsPerObj: buffer,
	}
	m.TotalBitsPerObj = m.BloomBitsPerObj + m.HotBitsPerObj + m.BufferBitsPerObj
	return m
}

// PoolLen returns the number of live on-flash SGs.
func (c *Cache) PoolLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pool)
}

// MemObjects returns the number of objects currently buffered in memory,
// including the sealed SG of an in-flight flush (its objects are still
// served from memory until the flush commits).
func (c *Cache) MemObjects() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, sg := range c.memq {
		n += sg.objCount()
	}
	if c.sealed != nil {
		n += c.sealed.mem.objCount()
	}
	return n
}
