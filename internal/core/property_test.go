package core

// Model-based property tests: Nemo is driven by random operation sequences
// against a reference model. A cache may evict (Get misses are allowed),
// and — per the documented consistency model — an overwrite whose newest
// copy was sacrificed or evicted may expose the previous value. What must
// NEVER happen is a hit returning corrupt or cross-key data, or a value
// that was never Set for that key. The model therefore tracks the full
// value history per key.

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"nemo/internal/flashsim"
)

func TestPropertyNeverStale(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dev := flashsim.New(flashsim.Config{PageSize: 512, PagesPerZone: 8, Zones: 14})
		cfg := DefaultConfig(dev, 8)
		cfg.SGsPerIndexGroup = 3
		cfg.TargetObjsPerSet = 8
		cfg.FlushThreshold = 4
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		history := map[string]map[string]bool{}
		latest := map[string]string{}
		staleHits, exactHits := 0, 0
		keys := 150
		for op := 0; op < 4000; op++ {
			k := []byte(fmt.Sprintf("pk-%04d-pad", rng.Intn(keys)))
			if rng.Intn(3) == 0 {
				v := []byte(fmt.Sprintf("val-%d-%d-padpadpadpad", op, rng.Int63()))
				if err := c.Set(k, v); err != nil {
					t.Fatalf("set: %v", err)
				}
				if history[string(k)] == nil {
					history[string(k)] = map[string]bool{}
				}
				history[string(k)][string(v)] = true
				latest[string(k)] = string(v)
			} else {
				got, hit := c.Get(k)
				if !hit {
					continue // eviction is legal
				}
				hist := history[string(k)]
				if hist == nil {
					t.Fatalf("hit for never-set key %q", k)
				}
				if !hist[string(got)] {
					t.Fatalf("corrupt value for %q: %q was never written", k, got)
				}
				if string(got) == latest[string(k)] {
					exactHits++
				} else {
					staleHits++
				}
			}
		}
		// Staleness is legal but must be the exception, not the rule.
		if exactHits == 0 || (staleHits > 0 && staleHits > exactHits) {
			t.Fatalf("freshness degenerate: %d exact vs %d stale hits", exactHits, staleHits)
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 8}
	if testing.Short() {
		cfg.MaxCount = 2
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyWAInvariant: across random configurations, flash data bytes
// written equal SGsFlushed × SG size, and PaperWA ≥ 1.
func TestPropertyWAInvariant(t *testing.T) {
	f := func(seed int64, pthRaw uint8, memSGsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		dev := flashsim.New(flashsim.Config{PageSize: 512, PagesPerZone: 8, Zones: 14})
		cfg := DefaultConfig(dev, 8)
		cfg.SGsPerIndexGroup = 3
		cfg.TargetObjsPerSet = 8
		cfg.FlushThreshold = int(pthRaw)%64 + 1
		cfg.InMemSGs = int(memSGsRaw)%3 + 1
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for op := 0; op < 3000; op++ {
			k := []byte(fmt.Sprintf("wa-%05d-pad", rng.Intn(1000)))
			v := make([]byte, 20+rng.Intn(60))
			if err := c.Set(k, v); err != nil {
				t.Fatalf("set: %v", err)
			}
		}
		ex := c.Extra()
		sgBytes := uint64(dev.PagesPerZone() * dev.PageSize())
		if ex.DataBytesWritten != ex.SGsFlushed*sgBytes {
			t.Fatalf("data bytes %d != %d SGs × %d", ex.DataBytesWritten, ex.SGsFlushed, sgBytes)
		}
		// Update coalescing in memory and sacrificed bytes can push the
		// ratio below 1 at toy scale, but it must stay positive and finite.
		if wa := c.PaperWA(); ex.SGsFlushed > 0 && (wa <= 0 || wa > 1000) {
			t.Fatalf("WA %v implausible", wa)
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 10}
	if testing.Short() {
		cfg.MaxCount = 3
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyPoolBounded: the SG pool never exceeds its configured zone
// budget no matter the operation mix.
func TestPropertyPoolBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dev := flashsim.New(flashsim.Config{PageSize: 512, PagesPerZone: 8, Zones: 12})
		cfg := DefaultConfig(dev, 6)
		cfg.SGsPerIndexGroup = 2
		cfg.TargetObjsPerSet = 8
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for op := 0; op < 5000; op++ {
			k := []byte(fmt.Sprintf("pb-%06d-pad", rng.Intn(3000)))
			v := make([]byte, 30+rng.Intn(40))
			if err := c.Set(k, v); err != nil {
				t.Fatalf("set: %v", err)
			}
			if rng.Intn(4) == 0 {
				c.Get(k)
			}
			if got := c.PoolLen(); got > 6 {
				t.Fatalf("pool %d exceeds 6 zones", got)
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 6}
	if testing.Short() {
		cfg.MaxCount = 2
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
