package core

// Deterministic circuit-breaker tests (health.go): trip, degraded
// rejection, half-open probe recovery, re-trip after an optimistic close,
// bounded append retries, disabled-by-default behavior, and per-shard
// isolation. Everything is timed on flashsim's virtual clock, so trips,
// probe windows, and DegradedSeconds move only when the test advances it.

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"nemo/internal/cachelib"
	"nemo/internal/device"
	"nemo/internal/flashsim"
)

func hKey(i int) []byte   { return []byte(fmt.Sprintf("hl-key-%06d-pad", i)) }
func hValue(i int) []byte { return []byte(fmt.Sprintf("hl-value-%06d-padpadpad", i)) }

func newBreakerCache(t *testing.T, mod func(*Config)) (*Cache, *flashsim.Device) {
	t.Helper()
	dev := flashsim.New(flashsim.Config{PageSize: 512, PagesPerZone: 16, Zones: 16})
	cfg := DefaultConfig(dev, 8)
	cfg.SGsPerIndexGroup = 4
	cfg.TargetObjsPerSet = 8
	// Suppress automatic flush triggers: every flush in these tests is an
	// explicit Flush() call, so the failure sequence is exact.
	cfg.FlushThreshold = 1 << 20
	cfg.RearFullRatio = 1.0
	cfg.BreakerThreshold = 2
	cfg.BreakerProbeAfter = 10 * time.Second
	if mod != nil {
		mod(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, dev
}

// TestBreakerTripRejectRecover walks the whole lifecycle: consecutive flush
// failures trip the shard, degraded mode rejects writes but serves reads,
// and after the faults clear a half-open probe closes the breaker again.
func TestBreakerTripRejectRecover(t *testing.T) {
	c, dev := newBreakerCache(t, nil)
	clk := dev.Clock()

	// Land a population safely on flash before any fault: a failed flush
	// drops its sealed SG, so only flash-resident keys can prove that reads
	// keep serving through the degraded window.
	const n = 10
	for i := 0; i < n; i++ {
		if err := c.Set(hKey(i), hValue(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("pre-fault flush: %v", err)
	}

	plan := device.NewFaultPlan(1, device.FaultRule{Op: device.FaultWrite, ErrRate: 1})
	plan.Arm(dev)

	// First failure: breaker still closed, writes still flow.
	if err := c.Flush(); err == nil {
		t.Fatal("flush succeeded under an all-writes-fail plan")
	}
	if err := c.Set(hKey(n), hValue(n)); err != nil {
		t.Fatalf("set after one failure (threshold 2): %v", err)
	}
	if st := c.Health().State; st != BreakerClosed {
		t.Fatalf("breaker %v after 1 failure, want closed", st)
	}

	// Second consecutive failure: tripped.
	if err := c.Flush(); err == nil {
		t.Fatal("flush succeeded under an all-writes-fail plan")
	}
	if st := c.Health().State; st != BreakerOpen {
		t.Fatalf("breaker %v after 2 failures, want open", st)
	}

	// Degraded: writes rejected with the typed sentinel, cheaply.
	if err := c.Set(hKey(n+1), hValue(n+1)); !errors.Is(err, cachelib.ErrDegraded) {
		t.Fatalf("degraded Set error = %v, want ErrDegraded", err)
	}
	if err := c.Delete(hKey(0)); !errors.Is(err, cachelib.ErrDegraded) {
		t.Fatalf("degraded Delete error = %v, want ErrDegraded", err)
	}
	// Reads keep serving from memory.
	for i := 0; i < n; i++ {
		if v, hit := c.Get(hKey(i)); !hit || string(v) != string(hValue(i)) {
			t.Fatalf("key %d unreadable while degraded: %q %v", i, v, hit)
		}
	}
	s := c.Stats()
	if s.DegradedEntered != 1 || s.BreakerOpen != 1 || s.DegradedRejects != 2 {
		t.Fatalf("degraded stats = entered %d open %d rejects %d, want 1/1/2",
			s.DegradedEntered, s.BreakerOpen, s.DegradedRejects)
	}
	if s.WriteErrors != 2 {
		t.Fatalf("WriteErrors = %d, want 2", s.WriteErrors)
	}

	// Before the probe window, writes stay rejected no matter what.
	clk.Advance(9 * time.Second)
	if err := c.Set(hKey(n+2), hValue(n+2)); !errors.Is(err, cachelib.ErrDegraded) {
		t.Fatalf("pre-probe Set error = %v, want ErrDegraded", err)
	}

	// Past the probe window with the fault cleared: one probe write is
	// admitted, succeeds, and closes the breaker.
	clk.Advance(21 * time.Second) // 30s total degraded
	plan.Disarm()
	if err := c.Set(hKey(n+3), hValue(n+3)); err != nil {
		t.Fatalf("probe Set: %v", err)
	}
	if st := c.Health().State; st != BreakerClosed {
		t.Fatalf("breaker %v after successful probe, want closed", st)
	}
	s = c.Stats()
	if s.BreakerOpen != 0 || s.DegradedEntered != 1 {
		t.Fatalf("post-recovery stats = open %d entered %d, want 0/1", s.BreakerOpen, s.DegradedEntered)
	}
	if s.DegradedSeconds != 30 {
		t.Fatalf("DegradedSeconds = %d, want 30", s.DegradedSeconds)
	}
	// The device really is healthy again.
	if err := c.Flush(); err != nil {
		t.Fatalf("flush after recovery: %v", err)
	}
	if got := c.Stats().DegradedSeconds; got != 30 {
		t.Fatalf("DegradedSeconds moved to %d after close, want 30", got)
	}
}

// TestBreakerProbeFailureReopens pins the half-open state machine directly:
// a probe whose flush fails re-opens the breaker (same degraded window, no
// new DegradedEntered), and the next probe waits a full interval.
func TestBreakerProbeFailureReopens(t *testing.T) {
	c, dev := newBreakerCache(t, nil)
	clk := dev.Clock()
	injected := errors.New("probe flush died")

	c.mu.Lock()
	c.breakerFlushFailedLocked(injected)
	c.breakerFlushFailedLocked(injected) // threshold 2: tripped
	if c.brk.state != BreakerOpen {
		c.mu.Unlock()
		t.Fatalf("state %v after threshold failures, want open", c.brk.state)
	}
	c.mu.Unlock()

	clk.Advance(10 * time.Second)
	c.mu.Lock()
	probe, err := c.breakerAllowWriteLocked()
	if !probe || err != nil {
		c.mu.Unlock()
		t.Fatalf("probe not admitted after interval: probe=%v err=%v", probe, err)
	}
	if c.brk.state != BreakerHalfOpen {
		c.mu.Unlock()
		t.Fatalf("state %v during probe, want half-open", c.brk.state)
	}
	// A second write during the probe is still rejected.
	if _, err := c.breakerAllowWriteLocked(); !errors.Is(err, cachelib.ErrDegraded) {
		c.mu.Unlock()
		t.Fatalf("concurrent write during probe: %v, want ErrDegraded", err)
	}
	// The probe's flush fails: half-open → open, window continues.
	c.breakerFlushFailedLocked(injected)
	c.breakerWriteDoneLocked(probe, injected)
	if c.brk.state != BreakerOpen || c.brk.probing {
		c.mu.Unlock()
		t.Fatalf("state %v probing %v after failed probe, want open/false", c.brk.state, c.brk.probing)
	}
	// Not yet: the next probe waits another full interval from the failure.
	clk.Advance(9 * time.Second)
	if _, err := c.breakerAllowWriteLocked(); !errors.Is(err, cachelib.ErrDegraded) {
		c.mu.Unlock()
		t.Fatalf("write 9s after failed probe: %v, want ErrDegraded", err)
	}
	clk.Advance(time.Second)
	probe, err = c.breakerAllowWriteLocked()
	if !probe || err != nil {
		c.mu.Unlock()
		t.Fatalf("second probe not admitted: probe=%v err=%v", probe, err)
	}
	c.breakerWriteDoneLocked(probe, nil) // this one succeeds
	state := c.brk.state
	c.mu.Unlock()
	if state != BreakerClosed {
		t.Fatalf("state %v after successful probe, want closed", state)
	}
	s := c.Stats()
	if s.DegradedEntered != 1 {
		t.Fatalf("DegradedEntered = %d across one window with a failed probe, want 1", s.DegradedEntered)
	}
	if s.DegradedSeconds != 20 {
		t.Fatalf("DegradedSeconds = %d, want 20", s.DegradedSeconds)
	}
}

// TestBreakerOptimisticCloseRetrips: a probe that triggers no flush closes
// the breaker on trust; if the device is still sick, the next flush
// failures re-trip it and open a NEW degraded window.
func TestBreakerOptimisticCloseRetrips(t *testing.T) {
	c, dev := newBreakerCache(t, nil)
	clk := dev.Clock()

	plan := device.NewFaultPlan(1, device.FaultRule{Op: device.FaultWrite, ErrRate: 1})
	plan.Arm(dev)
	c.Flush()
	c.Flush() // tripped
	if st := c.Health().State; st != BreakerOpen {
		t.Fatalf("breaker %v, want open", st)
	}
	clk.Advance(10 * time.Second)
	// Probe insert fits in memory, no flush due → optimistic close, even
	// though the device is still faulty.
	if err := c.Set(hKey(0), hValue(0)); err != nil {
		t.Fatalf("probe Set: %v", err)
	}
	if st := c.Health().State; st != BreakerClosed {
		t.Fatalf("breaker %v after flushless probe, want closed (optimistic)", st)
	}
	// The lie is found out within one threshold of flush attempts.
	c.Flush()
	c.Flush()
	if st := c.Health().State; st != BreakerOpen {
		t.Fatalf("breaker %v after re-failures, want open", st)
	}
	if got := c.Stats().DegradedEntered; got != 2 {
		t.Fatalf("DegradedEntered = %d, want 2 (second window)", got)
	}
}

// TestWriteRetriesAbsorbTransient: a fail-once fault is absorbed by the
// bounded append-retry loop — the flush succeeds, nothing counts against
// WriteErrors or the breaker, and the retry is visible in Stats.
func TestWriteRetriesAbsorbTransient(t *testing.T) {
	c, dev := newBreakerCache(t, func(cfg *Config) {
		cfg.WriteRetries = 2
		cfg.RetryBackoff = time.Millisecond
	})
	for i := 0; i < 8; i++ {
		if err := c.Set(hKey(i), hValue(i)); err != nil {
			t.Fatal(err)
		}
	}
	plan := device.NewFaultPlan(1, device.FaultRule{Op: device.FaultWrite, ErrRate: 1, FailN: 1})
	plan.Arm(dev)
	before := dev.Clock().Now()
	if err := c.Flush(); err != nil {
		t.Fatalf("flush with fail-once fault and 2 retries: %v", err)
	}
	s := c.Stats()
	if s.WriteErrors != 0 {
		t.Fatalf("WriteErrors = %d, want 0 (retry absorbed the fault)", s.WriteErrors)
	}
	if s.WriteRetries != 1 {
		t.Fatalf("WriteRetries = %d, want 1", s.WriteRetries)
	}
	if st := c.Health(); st.State != BreakerClosed || st.ConsecutiveFails != 0 {
		t.Fatalf("health = %+v after absorbed fault, want closed/0 fails", st)
	}
	// The backoff advanced the virtual clock.
	if dev.Clock().Now() == before {
		t.Fatal("RetryBackoff did not advance the virtual clock")
	}
	// Data reached flash despite the transient fault.
	for i := 0; i < 8; i++ {
		if _, hit := c.Get(hKey(i)); !hit {
			t.Fatalf("key %d lost after retried flush", i)
		}
	}
}

// TestBreakerDisabledByDefault: with BreakerThreshold 0 (the zero-value
// Config), failures accumulate in WriteErrors forever and writes are never
// rejected with ErrDegraded — the exact historical behavior every
// equivalence pin runs under.
func TestBreakerDisabledByDefault(t *testing.T) {
	c, dev := newBreakerCache(t, func(cfg *Config) {
		cfg.BreakerThreshold = 0
	})
	plan := device.NewFaultPlan(1, device.FaultRule{Op: device.FaultWrite, ErrRate: 1})
	plan.Arm(dev)
	for i := 0; i < 5; i++ {
		if err := c.Flush(); err == nil {
			t.Fatal("flush succeeded under an all-writes-fail plan")
		}
	}
	if err := c.Set(hKey(0), hValue(0)); errors.Is(err, cachelib.ErrDegraded) {
		t.Fatal("breaker-disabled cache returned ErrDegraded")
	}
	s := c.Stats()
	if s.WriteErrors != 5 || s.BreakerOpen != 0 || s.DegradedEntered != 0 || s.DegradedRejects != 0 {
		t.Fatalf("disabled-breaker stats = %+v, want 5 write errors and zero breaker activity", s)
	}
}

// TestShardedHealthIsolation: one sick shard degrades alone — its siblings
// keep accepting writes, and the facade's summed stats and Health() report
// exactly one open breaker.
func TestShardedHealthIsolation(t *testing.T) {
	const shards = 2
	perIdx := IndexZonesFor(8, 4)
	perShard := 8 + perIdx
	dev := flashsim.New(flashsim.Config{PageSize: 512, PagesPerZone: 16, Zones: shards * perShard})
	cfg := DefaultConfig(dev, 8*shards)
	cfg.Shards = shards
	cfg.SGsPerIndexGroup = 4
	cfg.TargetObjsPerSet = 8
	cfg.FlushThreshold = 1 << 20
	cfg.RearFullRatio = 1.0
	cfg.BreakerThreshold = 1
	cfg.BreakerProbeAfter = 10 * time.Second
	s, err := NewSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Fault only shard 0's zone range.
	zones := make([]int, perShard)
	for i := range zones {
		zones[i] = i
	}
	plan := device.NewFaultPlan(1, device.FaultRule{Op: device.FaultWrite, ErrRate: 1, Zones: zones})
	plan.Arm(dev)
	if err := s.Shard(0).Flush(); err == nil {
		t.Fatal("shard 0 flush succeeded under its zone fault")
	}

	h := s.Health()
	if len(h) != shards {
		t.Fatalf("Health() returned %d entries, want %d", len(h), shards)
	}
	if h[0].Shard != 0 || h[0].State != BreakerOpen {
		t.Fatalf("shard 0 health = %+v, want open", h[0])
	}
	if h[1].Shard != 1 || h[1].State != BreakerClosed {
		t.Fatalf("shard 1 health = %+v, want closed", h[1])
	}

	// Writes route-dependently: shard 0 rejects, shard 1 accepts.
	var hit0, hit1 bool
	for i := 0; i < 64 && (!hit0 || !hit1); i++ {
		key := hKey(i)
		err := s.Set(key, hValue(i))
		switch s.ShardOf(key) {
		case 0:
			hit0 = true
			if !errors.Is(err, cachelib.ErrDegraded) {
				t.Fatalf("set on degraded shard 0: %v, want ErrDegraded", err)
			}
		default:
			hit1 = true
			if err != nil {
				t.Fatalf("set on healthy shard 1: %v", err)
			}
		}
	}
	if !hit0 || !hit1 {
		t.Fatal("test keys did not cover both shards")
	}
	if sum := s.Stats(); sum.BreakerOpen != 1 || sum.DegradedEntered != 1 {
		t.Fatalf("summed stats = open %d entered %d, want 1/1", sum.BreakerOpen, sum.DegradedEntered)
	}
	// Shard 1 flushes fine throughout.
	if err := s.Shard(1).Flush(); err != nil {
		t.Fatalf("healthy shard flush: %v", err)
	}
}
