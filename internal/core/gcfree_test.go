package core

// Tests for the GC-free hot path: arena stability under fill→evict→refill
// churn, allocation pins on the remaining mutating entry points (Delete,
// batched SetMany), and a layout-independence pin proving the arena-backed
// in-memory layout produces checkpoint bytes identical to the map-based
// layout it replaced.

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"nemo/internal/flashsim"
	"nemo/internal/snapshot"
)

// TestArenaFlatOverChurn is the arena leak test: after the pool reaches
// steady state, further fill→evict→refill cycles must not grow any arena —
// no new page slabs, no new SG chunks, no table growth — and the process
// HeapObjects gauge must stay flat. A slot leaked per flush (the premature-
// recycle bug class this PR's design invites) shows up here as monotonic
// slab or heap-object growth.
func TestArenaFlatOverChurn(t *testing.T) {
	c := testCache(t, nil)

	const perCycle = 600
	cycle := func(base int) {
		for i := 0; i < perCycle; i++ {
			k, v := kv(base + i)
			if err := c.Set(k, v); err != nil {
				t.Fatal(err)
			}
			if i%3 == 0 {
				c.Get(k) // hotness bits + index-cache traffic
			}
		}
	}
	// Warm up until every arena has seen its high-water mark: the 8-zone
	// pool cycles completely several times over.
	for r := 0; r < 4; r++ {
		cycle(r * perCycle)
	}

	type arenaShape struct {
		pageSlabs, tableSize, sgChunks int
	}
	snap := func() arenaShape {
		c.mu.Lock()
		defer c.mu.Unlock()
		return arenaShape{
			pageSlabs: len(c.icache.arena.slabs),
			tableSize: len(c.icache.keys),
			sgChunks:  len(c.sgAlloc.chunks),
		}
	}
	checkAccounting := func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		total := len(c.icache.arena.slabs) * pageSlabPages
		free := len(c.icache.arena.free)
		if free != total-c.icache.count {
			t.Errorf("page arena leak: %d slots allocated, %d live, %d free (want %d)",
				total, c.icache.count, free, total-c.icache.count)
		}
	}

	before := snap()
	checkAccounting()
	runtime.GC()
	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)

	for r := 4; r < 12; r++ {
		cycle(r * perCycle)
	}

	after := snap()
	checkAccounting()
	runtime.GC()
	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)

	if before != after {
		t.Errorf("arenas grew under steady-state churn: before %+v, after %+v", before, after)
	}
	if grow := int64(ms1.HeapObjects) - int64(ms0.HeapObjects); grow > 300 {
		t.Errorf("HeapObjects grew by %d over 8 churn cycles, want ~flat", grow)
	}
}

// TestDeleteAllocationsSteadyState extends the allocation pins to the
// DELETE path: a steady-state delete — Bloom-positive against flash, so it
// re-places a tombstone over its own previous tombstone — allocates
// nothing. (The filter probes, the cached PBFG page, and the tombstone's
// set-block slot all come from per-shard scratch and arenas.)
func TestDeleteAllocationsSteadyState(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race instrumentation allocates; the pin runs in the non-race CI lane")
	}
	c := testCache(t, nil)
	for i := 0; i < 300; i++ {
		k, v := kv(i)
		if err := c.Set(k, v); err != nil {
			t.Fatal(err)
		}
	}
	k, _ := kv(7)
	if err := c.Delete(k); err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(300, func() {
		if err := c.Delete(k); err != nil {
			t.Fatal(err)
		}
	})
	if got > 0 {
		t.Errorf("steady-state Delete allocates %.2f times per op, want 0", got)
	}
}

// TestSetManyAllocationsSteadyState extends the allocation pins to the
// batched insert path: a steady-state SetMany round (in-place overwrites,
// no flush) allocates nothing per op, same budget as serial Set.
func TestSetManyAllocationsSteadyState(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race instrumentation allocates; the pin runs in the non-race CI lane")
	}
	c := testCache(t, nil)
	const n = 16
	keys := make([][]byte, n)
	vals := make([][]byte, n)
	for i := 0; i < n; i++ {
		keys[i], vals[i] = kv(i)
	}
	if err := c.SetMany(keys, vals); err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(300, func() {
		if err := c.SetMany(keys, vals); err != nil {
			t.Fatal(err)
		}
	})
	if perOp := got / n; perOp > 0 {
		t.Errorf("steady-state SetMany allocates %.2f times per op, want 0", perOp)
	}
}

// snapGoldenSHA256 is the SHA-256 of the checkpoint the map-based (pre-
// arena) in-memory layout wrote for the deterministic trace below, recorded
// before this layout change landed. The arena-backed layout must produce
// the identical NEMO1 bytes: the snapshot format is a device-state
// description, not an in-memory-layout dump, and warm restart across the
// layout change depends on that.
const snapGoldenSHA256 = "f9ce9fd25e1dd58e1949b5f0f4be2da445f1bec8af6b899b85b8d46f006345f5"

// TestSnapshotBytesMatchMapLayout runs a deterministic mixed trace on the
// simulated device — sealed groups, dead SGs, hot bits, cached PBFG pages,
// tombstones all populated — checkpoints, and pins the bytes against the
// map-based layout's recorded golden hash.
func TestSnapshotBytesMatchMapLayout(t *testing.T) {
	dev := flashsim.New(flashsim.Config{
		PageSize:     snapGeometry(snapShards).PageSize,
		PagesPerZone: snapGeometry(snapShards).PagesPerZone,
		Zones:        snapGeometry(snapShards).Zones,
	})
	cache, err := NewSharded(snapConfig(dev, snapShards, 0, ""))
	if err != nil {
		t.Fatal(err)
	}
	applySnapTrace(t, cache, snapTrace(25000), false)
	dir := t.TempDir()
	path := filepath.Join(dir, "snap")
	if err := cache.Checkpoint(path); err != nil {
		t.Fatal(err)
	}
	// The device Boot stamp is process-unique by design (it is the warm-
	// restart validity anchor, not state). Canonicalize it to zero and
	// re-encode; every other byte of the snapshot must be deterministic.
	f, err := snapshot.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	f.Boot = 0
	canon := filepath.Join(dir, "canon")
	if err := snapshot.Save(canon, f); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(canon)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(blob)
	got := hex.EncodeToString(sum[:])
	if got != snapGoldenSHA256 {
		t.Errorf("checkpoint bytes diverged from the map-based layout's:\n got %s\nwant %s", got, snapGoldenSHA256)
	}
}
