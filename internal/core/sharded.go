package core

import (
	"fmt"
	"sync"

	"nemo/internal/cachelib"
	"nemo/internal/metrics"
)

// Sharded is a hash-partitioned Nemo cache: Config.Shards independent Cache
// engines, each owning a disjoint slice of the shared device's zones, its
// own in-memory SGs, PBFG index, and lock. Get and Set route by a dedicated
// hash lane of the key fingerprint and take only the owning shard's lock, so
// requests for different shards proceed fully in parallel — and within one
// shard, concurrent GETs additionally overlap their flash I/O through the
// shard's three-phase read path (readpath.go), so read throughput scales
// with goroutines even on a single hot shard. Stats and the other aggregate
// accessors sum per-shard counters without any global lock.
//
// With Shards = 1 a Sharded cache is bit-for-bit the unsharded engine: the
// single shard sees the identical configuration, zone layout, and request
// sequence, which the equivalence property test pins down.
type Sharded struct {
	shards []*Cache
	n      uint64

	// cfg is the facade-level Config as given to NewSharded (before per-shard
	// derivation); Checkpoint stamps snapshots with it so a restore can prove
	// it is rebuilding under the identical configuration.
	cfg Config

	// Warm-restart outcome, fixed at NewSharded time (see RestoreOutcome).
	restored   bool
	restoreErr error

	// pool is the background flusher pool shared by every shard when
	// Config.Flushers > 0 (nil otherwise): K flusher goroutines service
	// the deferred SG flushes of all shards, so SetAsync never flushes
	// inline on the inserting worker.
	pool *flusherPool

	// histMu guards the merged read-latency histogram rebuilt on demand by
	// ReadLatency (the Engine contract returns a pointer).
	histMu sync.Mutex
	hist   metrics.Histogram
}

// NewSharded creates a sharded Nemo cache. cfg.DataZones is the total SG
// pool across all shards and must divide evenly into cfg.Shards shards of
// whole SGs; each shard additionally reserves its own index zones, laid out
// contiguously after its data zones starting at cfg.ZoneOffset.
func NewSharded(cfg Config) (*Sharded, error) {
	n := cfg.Shards
	if n < 1 {
		n = 1
	}
	if cfg.Device == nil {
		return nil, fmt.Errorf("core: nil device")
	}
	zps := cfg.ZonesPerSG
	if zps < 1 {
		zps = 1
	}
	if cfg.DataZones%n != 0 {
		return nil, fmt.Errorf("core: DataZones %d not divisible by %d shards", cfg.DataZones, n)
	}
	// Each shard fills at most one zone at a time (flush writes zones to
	// completion sequentially), but shards flush concurrently, so the
	// device's open-zone budget must cover one zone per shard or a loaded
	// run would fail nondeterministically with ErrTooManyOpenZones.
	if limit := cfg.Device.MaxOpenZones(); limit > 0 && limit < n {
		return nil, fmt.Errorf("core: device allows %d open zones but %d shards may each hold one open", limit, n)
	}
	perData := cfg.DataZones / n
	if perData < 2*zps {
		return nil, fmt.Errorf("core: %d data zones per shard cannot hold 2 SGs of %d zones", perData, zps)
	}
	s := &Sharded{shards: make([]*Cache, n), n: uint64(n), cfg: cfg}
	offset := cfg.ZoneOffset
	for i := 0; i < n; i++ {
		scfg := cfg
		scfg.Shards = 1
		scfg.DataZones = perData
		scfg.ZoneOffset = offset
		scfg.Flushers = 0      // shards share the facade's pool, not one each
		scfg.SnapshotPath = "" // the facade restores and checkpoints all shards at once
		shard, err := New(scfg)
		if err != nil {
			// Release everything already constructed: a half-built facade
			// must not leak shard resources.
			for _, built := range s.shards[:i] {
				built.Close()
			}
			return nil, fmt.Errorf("core: shard %d/%d: %w", i, n, err)
		}
		s.shards[i] = shard
		offset += perData + scfg.IndexZones()
	}
	if cfg.Flushers > 0 {
		s.pool = newFlusherPool(cfg.Flushers, n)
		for _, shard := range s.shards {
			shard.flusher = s.pool
		}
	}
	if cfg.SnapshotPath != "" {
		s.restored, s.restoreErr = s.tryRestore(cfg.SnapshotPath)
	}
	return s, nil
}

// NumShards returns the number of shards.
func (s *Sharded) NumShards() int { return len(s.shards) }

// ShardOf returns the shard index owning key, routing by the shared
// cachelib shard lane — the same lane the generic cachelib.ShardedEngine
// uses for the baselines, so every engine of a comparison run partitions
// the key space identically. Replay drivers partition work by this function
// so each shard's request order stays deterministic no matter how many
// workers run.
func (s *Sharded) ShardOf(key []byte) int {
	return cachelib.ShardOfKey(key, s.n)
}

// Shard returns shard i (tests and diagnostics).
func (s *Sharded) Shard(i int) *Cache { return s.shards[i] }

// Name implements cachelib.Engine.
func (s *Sharded) Name() string { return "Nemo" }

// Close implements cachelib.Engine: the shared flusher pool is drained and
// stopped, a final warm-restart checkpoint is written when
// Config.SnapshotPath is set, then every shard is closed — all of them,
// even after a failure — and the first error is returned.
func (s *Sharded) Close() error {
	var first error
	if s.pool != nil {
		first = s.pool.stop()
		s.pool = nil
	}
	if s.cfg.SnapshotPath != "" {
		if err := s.Checkpoint(s.cfg.SnapshotPath); err != nil && first == nil {
			first = err
		}
	}
	for _, c := range s.shards {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Get looks up an object in its owning shard.
func (s *Sharded) Get(key []byte) ([]byte, bool) {
	return s.shards[s.ShardOf(key)].Get(key)
}

// Set inserts or updates an object in its owning shard.
func (s *Sharded) Set(key, value []byte) error {
	return s.shards[s.ShardOf(key)].Set(key, value)
}

// Delete implements cachelib.Deleter, tombstoning in the owning shard.
func (s *Sharded) Delete(key []byte) error {
	return s.shards[s.ShardOf(key)].Delete(key)
}

// SetAsync implements cachelib.AsyncEngine: the insert goes to the owning
// shard, and any triggered SG flush is handed to the shared flusher pool
// instead of running inline (synchronous when no pool is configured).
func (s *Sharded) SetAsync(key, value []byte) error {
	return s.shards[s.ShardOf(key)].SetAsync(key, value)
}

// Drain implements cachelib.AsyncEngine, waiting out every deferred flush
// across all shards.
func (s *Sharded) Drain() error {
	if s.pool == nil {
		return nil
	}
	return s.pool.drain()
}

// Flush forces every shard's front in-memory SG to flash.
func (s *Sharded) Flush() error {
	for _, c := range s.shards {
		if err := c.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Stats implements cachelib.Engine by summing per-shard counters. Each
// shard is sampled under its own lock; no global lock is taken.
func (s *Sharded) Stats() cachelib.Stats {
	var sum cachelib.Stats
	for _, c := range s.shards {
		sum = sum.Add(c.Stats())
	}
	return sum
}

// Extra returns the summed Nemo-specific counters.
func (s *Sharded) Extra() NemoStats {
	var sum NemoStats
	for _, c := range s.shards {
		sum = sum.Add(c.Extra())
	}
	return sum
}

// PaperWA returns the paper's write-amplification definition aggregated
// across shards: total SG bytes written over total newly written user bytes.
func (s *Sharded) PaperWA() float64 {
	e := s.Extra()
	if e.NewBytes == 0 {
		return 1
	}
	return float64(e.DataBytesWritten) / float64(e.NewBytes)
}

// MeanFillRate returns the mean flushed-SG fill rate across shards.
func (s *Sharded) MeanFillRate() float64 {
	e := s.Extra()
	if e.SGsFlushed == 0 {
		return 0
	}
	return e.FillSum / float64(e.SGsFlushed)
}

// PoolLen returns the total number of live on-flash SGs across shards.
func (s *Sharded) PoolLen() int {
	n := 0
	for _, c := range s.shards {
		n += c.PoolLen()
	}
	return n
}

// MemObjects returns the total objects buffered in memory across shards.
func (s *Sharded) MemObjects() int {
	n := 0
	for _, c := range s.shards {
		n += c.MemObjects()
	}
	return n
}

// ReadLatency implements cachelib.Engine: the merged histogram of all
// shards, rebuilt on each call. Like Cache.ReadLatency, the returned
// histogram should be read while the cache is quiescent.
func (s *Sharded) ReadLatency() *metrics.Histogram {
	s.histMu.Lock()
	defer s.histMu.Unlock()
	s.hist.Reset()
	for _, c := range s.shards {
		c.mergeLatencyInto(&s.hist)
	}
	return &s.hist
}
