package core

import (
	"testing"

	"nemo/internal/trace"
)

// asyncFill drives the look-aside pattern through SetAsync.
func asyncFill(t *testing.T, s *Sharded, reqs []trace.Request) {
	t.Helper()
	for i := range reqs {
		req := &reqs[i]
		if _, hit := s.Get(req.Key); !hit {
			if err := s.SetAsync(req.Key, req.Value); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestAsyncFlushDrains is the flusher-pool liveness test: a replay through
// SetAsync must end, after Drain, with flushed SGs on flash and all the
// inserts accounted — the deferred flushes actually ran on the pool.
func TestAsyncFlushDrains(t *testing.T) {
	_, cfg := shardedGeom(t, 2, 8)
	cfg.Flushers = 2
	s, err := NewSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	reqs := shardedTrace(20_000)
	asyncFill(t, s, reqs)
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if s.PoolLen() == 0 {
		t.Fatal("no SGs reached flash through the async pipeline")
	}
	st := s.Stats()
	if st.Sets == 0 || st.FlashBytesWritten == 0 {
		t.Fatalf("async replay wrote nothing: %+v", st)
	}
	ex := s.Extra()
	if ex.SGsFlushed == 0 {
		t.Fatal("flusher pool executed no flushes")
	}
	// Drain is idempotent and cheap once quiescent.
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncMatchesSyncQuality compares an async-flush replay against the
// synchronous replay of the identical trace: deferral may shift flush
// boundaries (that is the point — the inserting worker no longer waits),
// but the cache quality must stay in the same regime.
func TestAsyncMatchesSyncQuality(t *testing.T) {
	reqs := shardedTrace(30_000)

	_, syncCfg := shardedGeom(t, 2, 8)
	syncS, err := NewSharded(syncCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer syncS.Close()
	demandFill(t, syncS, reqs)

	_, asyncCfg := shardedGeom(t, 2, 8)
	asyncCfg.Flushers = 2
	asyncS, err := NewSharded(asyncCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer asyncS.Close()
	asyncFill(t, asyncS, reqs)
	if err := asyncS.Drain(); err != nil {
		t.Fatal(err)
	}

	syncHit := 1 - syncS.Stats().MissRatio()
	asyncHit := 1 - asyncS.Stats().MissRatio()
	if d := syncHit - asyncHit; d > 0.05 || d < -0.05 {
		t.Fatalf("async hit ratio %0.4f departs from sync %0.4f", asyncHit, syncHit)
	}
	if wa := asyncS.PaperWA(); wa > 2*syncS.PaperWA()+0.5 {
		t.Fatalf("async WA %0.3f vs sync %0.3f", wa, syncS.PaperWA())
	}
}

// TestSetAsyncWithoutPoolIsSync pins the degradation: with Flushers == 0,
// SetAsync behaves exactly like Set (flushes inline), so a single engine
// replay through either entry point yields identical statistics.
func TestSetAsyncWithoutPoolIsSync(t *testing.T) {
	reqs := shardedTrace(15_000)

	a := testCache(t, nil)
	for i := range reqs {
		if _, hit := a.Get(reqs[i].Key); !hit {
			if err := a.Set(reqs[i].Key, reqs[i].Value); err != nil {
				t.Fatal(err)
			}
		}
	}
	b := testCache(t, nil)
	for i := range reqs {
		if _, hit := b.Get(reqs[i].Key); !hit {
			if err := b.SetAsync(reqs[i].Key, reqs[i].Value); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := b.Drain(); err != nil {
		t.Fatal(err)
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("poolless SetAsync diverged from Set:\nset:      %+v\nsetasync: %+v", a.Stats(), b.Stats())
	}
}

// TestUnshardedAsyncPool exercises a standalone Cache owning its pool.
func TestUnshardedAsyncPool(t *testing.T) {
	c := testCache(t, func(cfg *Config) { cfg.Flushers = 1 })
	for i := 0; i < 2_000; i++ {
		k, v := kv(i)
		if err := c.SetAsync(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	if c.PoolLen() == 0 {
		t.Fatal("standalone async cache never flushed")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}
