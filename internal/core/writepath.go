package core

// The concurrent write path: flush, group-seal, and eviction I/O happen
// outside the shard mutex, completing the plan/IO/commit architecture the
// read path introduced (readpath.go) across both halves of the cache.
//
// A flush runs in three phases, all executed by one owner goroutine (the
// inserting worker on the synchronous path, a flusher-pool goroutine on the
// SetAsync path):
//
//   - seal (locked): everything whose outcome depends on shared mutable
//     state is decided under the lock. The eviction victim (the pool head)
//     is popped and marked dead; its data zones — and, when its index group
//     retires with it, the group's index zones — return to the free lists;
//     the flush's data zones (and, when this SG completes its index group,
//     the group's index zones) are reserved from those lists in exactly the
//     order the historical fully-locked path consumed them; the SG id is
//     assigned and nextSGID advances; and the front in-memory SG is
//     detached from memq into c.sealed — immutable from here on except for
//     the writeback survivors the owner itself inserts under the lock —
//     with a fresh rear rotated in so inserts keep landing while the flush
//     is in flight. Bumping nextSGID (and, with eviction, moving the pool
//     head) is the SG-epoch advance: every optimistic reader that planned
//     before the seal fails commit validation and replans, so no reader
//     ever trusts bytes from a zone this flush is about to reset or
//     rewrite.
//   - build + I/O (unlocked): the victim's set pages are read back from
//     flash into owner-exclusive pooled buffers; a short locked interlude
//     then runs the hotness/shadow liveness filtering and inserts the
//     surviving objects into the sealed SG (the filters consult memq, the
//     unsealed group buffers, and the index cache, all lock-guarded);
//     finally — unlocked again — the freed zones are erased, the sealed
//     SG's set blocks are serialized through a pooled page buffer and
//     appended to the reserved data zones, the per-set Bloom filters are
//     built, and a completing index group's PBFG pages are assembled and
//     appended to the reserved index zones. No foreground GET or SET on the
//     shard waits on any of this device I/O.
//   - commit (locked): the flashSG publishes into its index group and the
//     FIFO pool, the write-side counters and the flush log apply, and the
//     cooling pass runs if due. Readers that planned during the build are
//     unaffected: their snapshots never referenced the unpublished SG, and
//     the sealed SG they could probe in memory is dropped in the same
//     critical section that makes the flash copy discoverable.
//
// Readers and the sealed SG: between seal and commit the flushing SG's
// objects exist only in c.sealed. The read plan (planGetLocked) probes it
// after memq — any memq copy of the same key was inserted after the seal
// and is therefore newer — and the write-side shadow checks
// (shadowedByNewer, deleteLocked) treat it as "will be on flash": a Delete
// racing a flush still plants its tombstone, and writeback never
// resurrects a version the sealed SG shadows. Driven serially the sealed
// window is never observable (the three phases run back to back on the
// caller with nothing interleaved), which is what keeps the serial path
// write-for-write and stat-for-stat identical to the historical
// fully-locked flush: same zones claimed in the same order, same pages
// appended with the same contents, same counter totals.
//
// Mutual exclusion: at most one flush is in flight per cache
// (c.flushInFlight; concurrent flushers wait on c.flushCond, mirroring the
// blocking the old design imposed through the mutex itself). c.flushing is
// the historical same-goroutine recursion guard; the owner keeps it true
// only while actually holding the lock, so other goroutines can never
// observe it.
//
// Failure: a device error mid-flush cannot wedge the cache. The owner
// erases the partially written zones, returns every zone this flush
// touched to its free list, drops the sealed SG (its objects count as
// evictions — a cache may always miss), increments Stats.WriteErrors, and
// surfaces the error: inline on the synchronous path, via the flusher
// pool's deferred error (Drain/Close) on the async path — and in both
// cases immediately in the WriteErrors counter the replay tables print.

import (
	"fmt"

	"nemo/internal/bloom"
	"nemo/internal/setblock"
)

// sealedFlush is the sealed-but-uncommitted front SG of an in-flight
// flush. Readers probe mem under the cache lock; the flush owner mutates
// it only during locked sub-phases (writeback survivor insertion) and
// reads it without the lock during serialization, after it is frozen.
type sealedFlush struct {
	mem *memSG
}

// flushScratch holds the owner-exclusive buffers a flush reuses across
// flushes. Only one flush is ever in flight per cache (flushInFlight), so
// the owner uses them without further locking.
type flushScratch struct {
	victimBufs [][]byte      // eviction read-back pages (carves of victimSlab)
	victimSlab []byte        // one allocation backing all read-back pages
	pageBuf    []byte        // serialization / PBFG-assembly scratch
	filter     *bloom.Filter // per-set filter builder
	readSets   []int         // victim set offsets scheduled for read-back
	counts     []uint32      // per-set object counts of the SG being built;
	// copied into the SG's meta carve at commit
	parseBlk setblock.Block // eviction read-back decode scratch
}

// evictPlan is the seal phase's snapshot of one eviction: which victim set
// pages the unlocked pass reads back, and which zones the build pass must
// erase before any append could land on them.
type evictPlan struct {
	victim   *flashSG
	readSets []int     // ascending set offsets to read back (aliases fscratch)
	retired  *idxGroup // victim's group when it died with the victim, else nil
	idxReset []int     // retired group's index zones to erase
}

// flushFrontLocked flushes the front in-memory SG through the three-phase
// seal / build+I/O / commit protocol above. It is called with c.mu held
// and returns with it held; the lock is released during the build phase's
// device I/O so foreground traffic on the shard overlaps the SG write.
//
// If another goroutine's flush is already in flight, this call waits for
// it to finish and then returns WITHOUT flushing (flush coalescing): the
// caller's trigger observation predates a flush that has since rotated the
// queue, so flushing again would write the fresh, nearly-empty front —
// exactly the condition runDeferredFlush's trigger re-check exists to
// avoid. Callers that need room rather than a flush per se (the insert
// path) re-check their condition and call again, now unhindered; callers
// that must flush the current front regardless (Flush) wait out the
// in-flight flush themselves first.
func (c *Cache) flushFrontLocked() error {
	if c.flushing {
		return nil // same-goroutine recursion guard (historical behavior)
	}
	if c.flushInFlight {
		c.waitFlushIdleLocked()
		return nil
	}
	c.flushing, c.flushInFlight = true, true
	err := c.flushOwner()
	c.flushing, c.flushInFlight = false, false
	c.sealed = nil
	c.flushCond.Broadcast()
	return err
}

// waitFlushIdleLocked blocks (releasing c.mu via the cond) until no flush
// is in flight. What happens next is the caller's choice: trigger-driven
// callers coalesce, Flush flushes the current front, and the deferred-job
// runner re-checks its trigger.
func (c *Cache) waitFlushIdleLocked() {
	for c.flushInFlight {
		c.flushCond.Wait()
	}
}

// unlockForBuild and relockAfterBuild bracket the owner's unlocked I/O
// windows, keeping the recursion guard accurate: c.flushing is true only
// while the owner actually holds the lock.
func (c *Cache) unlockForBuild() {
	c.flushing = false
	c.mu.Unlock()
}

func (c *Cache) relockAfterBuild() {
	c.mu.Lock()
	c.flushing = true
}

// flushOwner runs the three phases on the owning goroutine. Entered and
// exited with c.mu held.
func (c *Cache) flushOwner() error {
	// ---- Phase 1: seal (locked) ----
	front := c.memq[0]
	var ev *evictPlan
	if len(c.freeDataZones) < c.cfg.ZonesPerSG {
		var err error
		if ev, err = c.sealEvictLocked(); err != nil {
			return err
		}
	}
	if len(c.freeDataZones) < c.cfg.ZonesPerSG {
		c.abortEvictLocked(ev)
		c.eraseLocked(ev, nil, nil)
		return fmt.Errorf("core: no free data zones after eviction")
	}
	g := c.openGroup()
	sg := c.sgAlloc.alloc()
	sg.id = c.nextSGID
	sg.group = g
	sg.slot = len(g.members)
	sg.nsets = c.setsPerSG
	sg.zones = popZonesInto(&c.freeDataZones, sg.zones, c.cfg.ZonesPerSG)
	zones := sg.zones
	willSeal := len(g.members)+1 == c.cfg.SGsPerIndexGroup
	var idxZones []int
	if willSeal {
		if idxZones = popZones(&c.freeIndexZones, c.cfg.ZonesPerSG); idxZones == nil {
			c.freeDataZones = append(c.freeDataZones, zones...)
			c.sgAlloc.release(sg)
			c.abortEvictLocked(ev)
			c.eraseLocked(ev, nil, nil)
			return fmt.Errorf("core: no free index zones to seal group %d", g.id)
		}
	}
	c.nextSGID++         // SG-epoch advance: in-flight optimistic readers will replan
	memberBF := g.slotBF // existing member filters; immutable, appended to only at commit
	c.sealed = &sealedFlush{mem: front}
	copy(c.memq, c.memq[1:])
	c.memq[len(c.memq)-1] = c.takeMemSG()
	c.sacCount = 0

	// ---- Phase 2a: eviction read-back (unlocked) + liveness filter (locked) ----
	if ev != nil {
		nRead := 0
		var readErr error
		if len(ev.readSets) > 0 {
			c.unlockForBuild()
			nRead, readErr = c.readVictimPages(ev)
			c.relockAfterBuild()
		}
		if err := c.evictFilterLocked(ev, front, nRead, readErr); err != nil {
			return c.recoverFailedFlushLocked(ev, front, sg, zones, idxZones, err)
		}
	}
	fill := front.fillRate() // writeback survivors included, as in the locked path

	// ---- Phase 2b: build (unlocked) ----
	c.unlockForBuild()
	bfs, buildErr := c.buildAndAppend(ev, front, sg, zones, idxZones, willSeal, memberBF)
	c.relockAfterBuild()
	if buildErr != nil {
		return c.recoverFailedFlushLocked(ev, front, sg, zones, idxZones, buildErr)
	}

	// ---- Phase 3: commit (locked) ----
	// The SG's counts are final: carve its packed meta (counts, slot bases,
	// hotness region) from the arena. Readers never probe an SG before this
	// publish, so the prefix sums are always ready on the probe path.
	c.carveMeta(sg, c.fscratch.counts)
	sg.fill = fill
	zoneBytes := uint64(c.setsPerSG * c.pageSize)
	c.stats.FlashBytesWritten += zoneBytes
	c.stats.DeviceBytesWritten += zoneBytes
	c.extra.DataBytesWritten += zoneBytes
	c.extra.SGsFlushed++
	c.extra.FillSum += sg.fill
	c.extra.NewBytes += front.newBytes
	c.extra.WriteBackBytes += front.wbBytes
	c.bytesSinceCool += zoneBytes
	if len(c.flushLog) < maxFlushLog {
		c.flushLog = append(c.flushLog, FlushRecord{
			Fill:     sg.fill,
			NewObjs:  front.newObjs,
			WBObjs:   front.wbObjs,
			NewBytes: front.newBytes,
			WBBytes:  front.wbBytes,
		})
	} else {
		c.extra.FlushRecordsDropped++
	}
	g.members = append(g.members, sg)
	g.slotBF = append(g.slotBF, bfs)
	g.liveCount++
	c.pool = append(c.pool, sg)
	if willSeal {
		c.stats.FlashBytesWritten += zoneBytes
		c.stats.DeviceBytesWritten += zoneBytes
		c.extra.IndexBytesWritten += zoneBytes
		g.zones = idxZones
		g.sealed = true
		g.slotBF = nil    // buffer released; filters now live in the index pool
		g.bfBacking = nil // the slab behind those slices goes with them
	}
	if c.bytesSinceCool >= uint64(c.cfg.CoolingWriteRatio*float64(c.poolCapacityBytes())) {
		c.coolLocked()
		c.bytesSinceCool = 0
	}
	// A committed flush is proof the device writes: end any failure run and
	// close a degraded window (health.go).
	c.breakerFlushOKLocked()
	// The flushed front's contents are on flash and published; recycle its
	// slab for the next seal's rear rotation. Readers hold no references —
	// value copies are taken under the lock — and this runs in the same
	// critical section that clears c.sealed.
	c.sealed = nil
	c.putMemSG(front)
	return nil
}

// sealEvictLocked is the locked half of eviction (operation ❸): pop the
// pool head, decide which of its set pages the unlocked pass reads back
// for hotness-aware writeback, and return its zones — plus its index
// group's, when the group dies with it — to the free lists. The zones are
// erased later, in the build phase; no other flush can claim them before
// this one commits.
func (c *Cache) sealEvictLocked() (*evictPlan, error) {
	if len(c.pool) == 0 {
		return nil, fmt.Errorf("core: pool empty but no free data zones")
	}
	victim := c.pool[0]
	c.pool = c.pool[1:]
	ev := &evictPlan{victim: victim}

	// A set page is read back only when a hotness signal could fire for it:
	// always when the victim carries an access bitmap, and otherwise only
	// when the set's PBFG is memory-resident (the recency half of the
	// hybrid signal, §4.4) — though with no bitmap nothing can test hot, so
	// those reads only feed the eviction counters, exactly as the locked
	// path behaved. With no bitmap the filter pass performs no shadow
	// checks, so the index cache cannot change between this snapshot and
	// the residency the filter would have observed.
	if c.cfg.Writeback && victim.objCount > 0 {
		sets := c.fscratch.readSets[:0]
		for o := 0; o < c.setsPerSG; o++ {
			if victim.setCount(o) == 0 {
				continue
			}
			if !victim.hasBits && !c.pbfgResident(victim.group, o) {
				continue
			}
			sets = append(sets, o)
		}
		c.fscratch.readSets = sets
		ev.readSets = sets
	}
	victim.dead = true
	victim.group.liveCount--
	if victim.group.liveCount == 0 && victim.group.sealed {
		ev.retired = victim.group
		ev.idxReset = victim.group.zones
		c.freeIndexZones = append(c.freeIndexZones, victim.group.zones...)
	}
	c.freeDataZones = append(c.freeDataZones, victim.zones...)
	return ev, nil
}

// abortEvictLocked settles an eviction whose flush died before the
// liveness filter could run (a seal-phase zone-reservation failure): the
// victim is already popped and dead, so its objects count as evictions and
// a retired group's pages leave the index cache — the same bookkeeping
// evictFilterLocked would have done, minus the writeback pass.
func (c *Cache) abortEvictLocked(ev *evictPlan) {
	if ev == nil {
		return
	}
	c.stats.Evictions += uint64(ev.victim.objCount)
	if ev.retired != nil {
		c.icache.dropGroup(ev.retired.id)
		c.dropDeadGroups()
	}
}

// readVictimPages is the unlocked eviction I/O pass: it reads the planned
// victim set pages into the owner's pooled buffers, stopping at the first
// device error, and reports how many reads completed.
func (c *Cache) readVictimPages(ev *evictPlan) (int, error) {
	sc := &c.fscratch
	if sc.victimSlab == nil {
		// At most one page per set; one slab backs every read-back buffer.
		sc.victimSlab = make([]byte, c.setsPerSG*c.pageSize)
	}
	for len(sc.victimBufs) < len(ev.readSets) {
		i := len(sc.victimBufs)
		sc.victimBufs = append(sc.victimBufs, sc.victimSlab[i*c.pageSize:(i+1)*c.pageSize:(i+1)*c.pageSize])
	}
	for i, o := range ev.readSets {
		if _, err := c.dev.ReadPage(c.pageAddrIn(ev.victim.zones, o), sc.victimBufs[i]); err != nil {
			return i, err
		}
	}
	return len(ev.readSets), nil
}

// evictFilterLocked runs the liveness filtering over the read-back pages
// under the lock: per entry, the hybrid hotness test, the newer-copy
// shadow check (which may fetch PBFG pages, exactly as the locked path
// did), and the writeback insertion into the sealed SG dst. Set order,
// filter order, and every counter match the historical eviction loop. On
// every exit — error paths included — each of the victim's objects ends up
// accounted exactly once (written back, or counted in Evictions) and a
// retired index group's pages leave the index cache.
func (c *Cache) evictFilterLocked(ev *evictPlan, dst *memSG, nRead int, readErr error) error {
	victim := ev.victim
	c.stats.FlashReadOps += uint64(nRead)
	c.stats.FlashBytesRead += uint64(nRead * c.pageSize)
	// resolved counts victim objects already dispatched (evicted or written
	// back); finish settles the remainder as evictions — the whole victim
	// is leaving flash no matter how the filtering ends — and retires the
	// group, so no exit path can leak objects from the accounting.
	resolved := 0
	finish := func(err error) error {
		c.stats.Evictions += uint64(victim.objCount - resolved)
		if ev.retired != nil {
			c.icache.dropGroup(ev.retired.id)
			c.dropDeadGroups()
		}
		return err
	}
	if c.cfg.Writeback && victim.objCount > 0 {
		ri := 0
		for o := 0; o < c.setsPerSG; o++ {
			if victim.setCount(o) == 0 {
				continue
			}
			if ri >= len(ev.readSets) || ev.readSets[ri] != o {
				// Neither hotness signal could fire: no read-back happened.
				c.stats.Evictions += uint64(victim.setCount(o))
				resolved += victim.setCount(o)
				continue
			}
			if ri >= nRead {
				// The read-back pass stopped at a device error before this
				// set; the reads that did happen are already accounted.
				return finish(readErr)
			}
			buf := c.fscratch.victimBufs[ri]
			ri++
			resident := c.pbfgResident(victim.group, o)
			blk := &c.fscratch.parseBlk
			if err := blk.DecodeFrom(buf); err != nil {
				return finish(fmt.Errorf("core: parsing evicted set: %w", err))
			}
			var wbErr error
			blk.Range(func(slot int, e setblock.Entry) bool {
				// Tombstones (zero-length deletion markers) age out with
				// their SG; never write them back.
				hot := resident && victim.bit(o, slot) && len(e.Value) > 0
				if hot {
					shadowed, err := c.shadowedByNewer(e.FP, o, victim.id, e.Key)
					if err != nil {
						wbErr = err
						return false
					}
					if !shadowed && dst.canFit(o, e.FP, e.Key, len(e.Value)) {
						dst.insert(o, e.FP, e.Key, e.Value, insWriteback)
						c.extra.WriteBackObjs++
						resolved++
						return true
					}
				}
				c.stats.Evictions++
				resolved++
				return true
			})
			if wbErr != nil {
				return finish(wbErr)
			}
		}
	}
	return finish(nil)
}

// buildAndAppend is the unlocked build phase: erase the zones this flush's
// eviction freed, serialize the sealed SG's set blocks into the reserved
// data zones while building its per-set Bloom filters, and — when this SG
// completes its index group — assemble and append the group's PBFG pages.
// The device-op multiset and per-zone append order match the historical
// locked path exactly.
func (c *Cache) buildAndAppend(ev *evictPlan, front *memSG, sg *flashSG, zones, idxZones []int, willSeal bool, memberBF [][]byte) ([]byte, error) {
	if ev != nil {
		for _, z := range ev.idxReset {
			if _, err := c.dev.ResetZone(z); err != nil {
				return nil, err
			}
		}
		for _, z := range ev.victim.zones {
			if _, err := c.dev.ResetZone(z); err != nil {
				return nil, err
			}
		}
	}
	// A cold format adopts a dirty device as-is (a refused warm-restart
	// snapshot is thrown away, nothing replays the old contents), so a zone
	// claimed from the free list can still hold a previous life's appends.
	// Rewind any non-empty reserved zone before the first append lands; on a
	// fresh or warm-restored device this never fires.
	for _, set := range [2][]int{zones, idxZones} {
		for _, z := range set {
			if c.dev.ZoneWP(z) > 0 {
				if _, err := c.dev.ResetZone(z); err != nil {
					return nil, err
				}
			}
		}
	}
	sc := &c.fscratch
	if sc.filter == nil {
		sc.filter = bloom.New(c.cfg.TargetObjsPerSet, c.cfg.BloomFPR)
	}
	ppz := c.dev.PagesPerZone()
	// The SG's filters live in its slot's carve of the group backing; the
	// owner writes only this slot, so concurrent readers probing other
	// members' carves see disjoint bytes. Set counts accumulate in the
	// owner's scratch — the SG's meta carve happens at commit, when the
	// final object count is known.
	slotBytes := c.setsPerSG * c.bfBytes
	bfs := sg.group.bfBacking[sg.slot*slotBytes : (sg.slot+1)*slotBytes : (sg.slot+1)*slotBytes]
	for o := range front.sets {
		blk := &front.sets[o]
		sc.pageBuf = blk.AppendTo(sc.pageBuf[:0])
		if _, _, err := c.appendPageRetry(zones[o/ppz], sc.pageBuf); err != nil {
			return nil, fmt.Errorf("core: flushing SG: %w", err)
		}
		sc.counts[o] = uint32(blk.Count())
		sg.objCount += blk.Count()
		sc.filter.Reset()
		blk.Range(func(_ int, e setblock.Entry) bool {
			sc.filter.Add(e.FP)
			return true
		})
		copy(bfs[o*c.bfBytes:], sc.filter.AppendBytes(sc.pageBuf[:0]))
	}
	if willSeal {
		// One PBFG page per intra-SG offset (§4.3 "packed BF layout"): the
		// filters of offset o across every member SG, this one last.
		for o := 0; o < c.setsPerSG; o++ {
			page := sc.pageBuf[:0]
			for _, bf := range memberBF {
				page = append(page, bf[o*c.bfBytes:(o+1)*c.bfBytes]...)
			}
			page = append(page, bfs[o*c.bfBytes:(o+1)*c.bfBytes]...)
			sc.pageBuf = page
			if _, _, err := c.appendPageRetry(idxZones[o/ppz], page); err != nil {
				return nil, fmt.Errorf("core: sealing index group: %w", err)
			}
		}
	}
	return bfs, nil
}

// recoverFailedFlushLocked unwinds a flush that died mid-build so the
// cache stays consistent: every zone the flush touched is erased and
// returned to its free list, and the sealed SG is dropped — its objects
// count as evictions. This is strictly saner than the historical locked
// path, which left partially written zones claimed and the front SG queued
// for a doomed re-flush. Called and returns with c.mu held.
func (c *Cache) recoverFailedFlushLocked(ev *evictPlan, front *memSG, sg *flashSG, zones, idxZones []int, cause error) error {
	c.eraseLocked(ev, zones, idxZones)
	c.freeDataZones = append(c.freeDataZones, zones...)
	c.freeIndexZones = append(c.freeIndexZones, idxZones...)
	c.releaseSG(sg) // never published: no meta carved, no reader can hold it
	c.stats.Evictions += uint64(front.objCount())
	c.sealed = nil
	c.putMemSG(front)
	// Every path through here was killed by a device failure (a read-back,
	// parse, shadow-fetch, reset, or append error); seal-phase
	// zone-exhaustion errors — configuration conditions, not hardware —
	// return before recovery and are deliberately NOT counted here.
	c.stats.WriteErrors++
	c.breakerFlushFailedLocked(cause)
	return cause
}

// eraseLocked best-effort resets the zones an aborted flush may have left
// un-erased (an eviction's freed zones are erased only in the build phase,
// and reserved zones may hold partial appends). Reset failures are
// structurally impossible for in-range zones and are ignored.
func (c *Cache) eraseLocked(ev *evictPlan, zones, idxZones []int) {
	if ev != nil {
		for _, z := range ev.idxReset {
			c.dev.ResetZone(z)
		}
		for _, z := range ev.victim.zones {
			c.dev.ResetZone(z)
		}
	}
	for _, z := range zones {
		c.dev.ResetZone(z)
	}
	for _, z := range idxZones {
		c.dev.ResetZone(z)
	}
}

// runDeferredFlush executes one deferred flush job on a flusher-pool
// goroutine. The trigger is re-checked — after waiting out any flush
// already in flight — because an intervening flush may have rotated the
// queue, and flushing a fresh front would only hurt the fill rate.
func (c *Cache) runDeferredFlush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.flushPending = false
	c.waitFlushIdleLocked()
	if !c.asyncFlushDueLocked() {
		return nil
	}
	return c.flushFrontLocked()
}
