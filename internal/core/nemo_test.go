package core

import (
	"fmt"
	"testing"

	"nemo/internal/device"
	"nemo/internal/flashsim"
	"nemo/internal/trace"
)

// testCache builds a small Nemo: 512 B sets, 16 sets/SG, 8-zone pool.
func testCache(t *testing.T, mutate func(*Config)) *Cache {
	t.Helper()
	dev := flashsim.New(flashsim.Config{PageSize: 512, PagesPerZone: 16, Zones: 16})
	return testCacheOn(t, dev, mutate)
}

// testCacheOn is testCache on a caller-supplied device, so fault tests can
// run per backend through devtest.Run.
func testCacheOn(t *testing.T, dev device.Device, mutate func(*Config)) *Cache {
	t.Helper()
	cfg := DefaultConfig(dev, 8)
	cfg.SGsPerIndexGroup = 4
	cfg.TargetObjsPerSet = 8
	cfg.FlushThreshold = 8
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func kv(i int) (key, value []byte) {
	key = []byte(fmt.Sprintf("key-%08d", i))
	value = []byte(fmt.Sprintf("value-%08d-%032d", i, i))
	return
}

func TestSetGetInMemory(t *testing.T) {
	c := testCache(t, nil)
	k, v := kv(1)
	if err := c.Set(k, v); err != nil {
		t.Fatal(err)
	}
	got, hit := c.Get(k)
	if !hit || string(got) != string(v) {
		t.Fatalf("get = %q, %v", got, hit)
	}
}

func TestGetMiss(t *testing.T) {
	c := testCache(t, nil)
	if _, hit := c.Get([]byte("absent-key-00001")); hit {
		t.Fatal("unexpected hit on empty cache")
	}
}

func TestFlushedObjectsReadableFromFlash(t *testing.T) {
	c := testCache(t, nil)
	var keys [][]byte
	for i := 0; i < 60; i++ {
		k, v := kv(i)
		if err := c.Set(k, v); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if c.PoolLen() == 0 {
		t.Fatal("flush produced no on-flash SG")
	}
	found := 0
	for i, k := range keys {
		_, v := kv(i)
		got, hit := c.Get(k)
		if hit {
			found++
			if string(got) != string(v) {
				t.Fatalf("key %d returned wrong value", i)
			}
		}
	}
	// Sacrifice may drop a few, but the bulk must be readable.
	if found < 50 {
		t.Fatalf("only %d/60 objects readable after flush", found)
	}
}

func TestUpdateReturnsNewestValue(t *testing.T) {
	c := testCache(t, nil)
	k, _ := kv(7)
	for ver := 0; ver < 5; ver++ {
		v := []byte(fmt.Sprintf("version-%d-padding-padding", ver))
		if err := c.Set(k, v); err != nil {
			t.Fatal(err)
		}
		if ver == 2 {
			if err := c.Flush(); err != nil {
				t.Fatal(err)
			}
		}
		got, hit := c.Get(k)
		if !hit || string(got) != string(v) {
			t.Fatalf("after update %d: got %q hit=%v", ver, got, hit)
		}
	}
}

func TestUpdateShadowsFlashCopy(t *testing.T) {
	c := testCache(t, nil)
	k, _ := kv(9)
	c.Set(k, []byte("old-value-on-flash-xxxxxxxx"))
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	c.Set(k, []byte("new-value-in-memory-yyyyyy"))
	got, hit := c.Get(k)
	if !hit || string(got) != "new-value-in-memory-yyyyyy" {
		t.Fatalf("stale value returned: %q", got)
	}
	// Flush again: both versions now on flash; newest must win.
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	got, hit = c.Get(k)
	if !hit || string(got) != "new-value-in-memory-yyyyyy" {
		t.Fatalf("stale flash value returned after double flush: %q", got)
	}
}

func TestEvictionRecyclesZones(t *testing.T) {
	c := testCache(t, nil)
	// Push far more data than the 8-zone pool holds.
	for i := 0; i < 5000; i++ {
		k, v := kv(i)
		if err := c.Set(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.PoolLen(); got > 8 {
		t.Fatalf("pool grew to %d SGs, capacity is 8", got)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions despite overflow")
	}
	ex := c.Extra()
	if ex.SGsFlushed < 8 {
		t.Fatalf("only %d SGs flushed", ex.SGsFlushed)
	}
}

func TestWriteAmplificationReasonable(t *testing.T) {
	c := testCache(t, nil)
	stream := trace.NewZipf(trace.ClusterConfig{
		Name: "t", KeySize: 16, ValueMean: 60, ValueStd: 20,
		Keys: 4000, ZipfAlpha: 1.2, Seed: 3,
	})
	var req trace.Request
	for i := 0; i < 40000; i++ {
		stream.Next(&req)
		if _, hit := c.Get(req.Key); !hit {
			if err := c.Set(req.Key, req.Value); err != nil {
				t.Fatal(err)
			}
		}
	}
	wa := c.PaperWA()
	if wa < 1.0 {
		t.Fatalf("paper WA %v below 1 is impossible", wa)
	}
	if wa > 4.0 {
		t.Fatalf("paper WA %v too high for Nemo (expect near 1/fill)", wa)
	}
	fill := c.MeanFillRate()
	if fill < 0.3 {
		t.Fatalf("mean fill rate %v too low with all techniques on", fill)
	}
}

func TestNaiveFillRateMuchLower(t *testing.T) {
	run := func(naive bool) float64 {
		c := testCache(t, func(cfg *Config) {
			if naive {
				cfg.BufferedSGs = false
				cfg.DelayedFlush = false
				cfg.Writeback = false
			}
		})
		stream := trace.NewSyntheticInserts(16, 60, 30, 11)
		var req trace.Request
		for i := 0; i < 30000; i++ {
			stream.Next(&req)
			if err := c.Set(req.Key, req.Value); err != nil {
				panic(err)
			}
		}
		return c.MeanFillRate()
	}
	naive := run(true)
	full := run(false)
	if naive >= full {
		t.Fatalf("naive fill %v should be below full-technique fill %v", naive, full)
	}
	if full < 2*naive {
		t.Fatalf("techniques should at least double fill rate: naive=%v full=%v", naive, full)
	}
}

func TestMissRatioBetterThanNoCache(t *testing.T) {
	c := testCache(t, nil)
	stream := trace.NewZipf(trace.ClusterConfig{
		Name: "t", KeySize: 16, ValueMean: 60, ValueStd: 0,
		Keys: 2000, ZipfAlpha: 1.25, Seed: 5,
	})
	var req trace.Request
	for i := 0; i < 30000; i++ {
		stream.Next(&req)
		if _, hit := c.Get(req.Key); !hit {
			c.Set(req.Key, req.Value)
		}
	}
	st := c.Stats()
	if st.MissRatio() > 0.6 {
		t.Fatalf("miss ratio %v too high for zipf 1.25 with working set ≈ cache", st.MissRatio())
	}
}

func TestPBFGStatsPopulated(t *testing.T) {
	c := testCache(t, func(cfg *Config) { cfg.CachedPBFGRatio = 0.1 })
	stream := trace.NewZipf(trace.ClusterConfig{
		Name: "t", KeySize: 16, ValueMean: 60, ValueStd: 0,
		Keys: 5000, ZipfAlpha: 1.2, Seed: 6,
	})
	var req trace.Request
	for i := 0; i < 30000; i++ {
		stream.Next(&req)
		if _, hit := c.Get(req.Key); !hit {
			c.Set(req.Key, req.Value)
		}
	}
	lookups, misses, ratio := c.PBFGStats()
	if lookups == 0 {
		t.Fatal("no PBFG lookups recorded")
	}
	if misses == 0 {
		t.Fatal("with a 10% cache some PBFG fetches must come from flash")
	}
	if ratio <= 0 || ratio >= 1 {
		t.Fatalf("pbfg miss ratio %v out of (0,1)", ratio)
	}
}

func TestIndexSealingAndReuse(t *testing.T) {
	c := testCache(t, nil)
	for i := 0; i < 8000; i++ {
		k, v := kv(i)
		if err := c.Set(k, v); err != nil {
			t.Fatal(err)
		}
	}
	ex := c.Extra()
	if ex.IndexBytesWritten == 0 {
		t.Fatal("index groups never sealed to flash")
	}
	// Pool cycled several times: dead groups must have freed their zones
	// (otherwise sealing would have failed above).
}

func TestWritebackKeepsHotObjects(t *testing.T) {
	c := testCache(t, func(cfg *Config) {
		cfg.HotTrackTailRatio = 1.0 // track everything to make the test deterministic
	})
	// A small hot set accessed constantly (demand-filled on miss, as a real
	// cache workload would) while filler churns the pool.
	const hotKeys = 20
	for i := 0; i < 8000; i++ {
		k, v := kv(i)
		if err := c.Set(k, v); err != nil {
			t.Fatal(err)
		}
		hk, hv := kv(1000000 + i%hotKeys)
		if _, hit := c.Get(hk); !hit {
			if err := c.Set(hk, hv); err != nil {
				t.Fatal(err)
			}
		}
	}
	ex := c.Extra()
	if ex.WriteBackObjs == 0 {
		t.Fatal("no objects were written back despite repeated access")
	}
	// The hot set must be mostly retained.
	retained := 0
	for i := 0; i < hotKeys; i++ {
		hk, _ := kv(1000000 + i)
		if _, hit := c.Get(hk); hit {
			retained++
		}
	}
	if retained < hotKeys/2 {
		t.Fatalf("only %d/%d hot keys retained", retained, hotKeys)
	}
}

func TestWritebackDisabledDropsAll(t *testing.T) {
	c := testCache(t, func(cfg *Config) { cfg.Writeback = false })
	for i := 0; i < 6000; i++ {
		k, v := kv(i)
		c.Set(k, v)
	}
	if ex := c.Extra(); ex.WriteBackObjs != 0 {
		t.Fatalf("writeback disabled but %d objects written back", ex.WriteBackObjs)
	}
}

func TestConfigValidation(t *testing.T) {
	dev := flashsim.New(flashsim.Config{PageSize: 512, PagesPerZone: 16, Zones: 16})
	bad := []func(*Config){
		func(c *Config) { c.Device = nil },
		func(c *Config) { c.DataZones = 1 },
		func(c *Config) { c.DataZones = 100 },
		func(c *Config) { c.InMemSGs = 0 },
		func(c *Config) { c.FlushThreshold = 0 },
		func(c *Config) { c.BloomFPR = 0 },
		func(c *Config) { c.BloomFPR = 1.5 },
		func(c *Config) { c.RearFullRatio = 0 },
		func(c *Config) { c.CachedPBFGRatio = 2 },
		func(c *Config) { c.CoolingWriteRatio = 0 },
		func(c *Config) { c.TargetObjsPerSet = 0 },
		func(c *Config) { c.SGsPerIndexGroup = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig(dev, 8)
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestRejectOversizedObject(t *testing.T) {
	c := testCache(t, nil)
	if err := c.Set([]byte("k-big-object-xxx"), make([]byte, 4096)); err == nil {
		t.Fatal("object larger than a set must be rejected")
	}
}

func TestTable3Defaults(t *testing.T) {
	dev := flashsim.New(flashsim.Config{})
	cfg := DefaultConfig(dev, 32)
	if cfg.InMemSGs != 2 {
		t.Fatalf("InMemSGs = %d, Table 3 says 2", cfg.InMemSGs)
	}
	if cfg.SGsPerIndexGroup != 50 {
		t.Fatalf("SGsPerIndexGroup = %d, Table 3 says 50", cfg.SGsPerIndexGroup)
	}
	if cfg.BloomFPR != 0.001 {
		t.Fatalf("BloomFPR = %v, Table 3 says 0.1%%", cfg.BloomFPR)
	}
	if cfg.CachedPBFGRatio != 0.5 {
		t.Fatalf("CachedPBFGRatio = %v, Table 3 says 50%%", cfg.CachedPBFGRatio)
	}
	if cfg.HotTrackTailRatio != 0.3 {
		t.Fatalf("HotTrackTailRatio = %v, Table 3 says last 30%%", cfg.HotTrackTailRatio)
	}
	if cfg.CoolingWriteRatio != 0.1 {
		t.Fatalf("CoolingWriteRatio = %v, Table 3 says every 10%%", cfg.CoolingWriteRatio)
	}
	if !cfg.BufferedSGs || !cfg.DelayedFlush || !cfg.Writeback {
		t.Fatal("all three techniques should default on")
	}
}

func TestMemoryOverheadModel(t *testing.T) {
	c := testCache(t, nil)
	m := c.MemoryOverhead()
	if m.TotalBitsPerObj <= 0 {
		t.Fatal("overhead must be positive")
	}
	if m.BloomBitsPerObj <= m.HotBitsPerObj {
		t.Fatal("bloom share should dominate hotness share")
	}
	// With Table-3 parameters at device scale the paper totals 8.3 b/obj;
	// the components must at least follow 14.4×0.5 and 1×0.3.
	if m.BloomBitsPerObj < 7.0 || m.BloomBitsPerObj > 7.5 {
		t.Fatalf("bloom bits/obj = %v, want ≈7.2", m.BloomBitsPerObj)
	}
	if m.HotBitsPerObj != 0.3 {
		t.Fatalf("hot bits/obj = %v, want 0.3", m.HotBitsPerObj)
	}
}

func TestLatencyHistogramRecords(t *testing.T) {
	c := testCache(t, nil)
	for i := 0; i < 2000; i++ {
		k, v := kv(i)
		c.Set(k, v)
	}
	for i := 0; i < 2000; i++ {
		k, _ := kv(i)
		c.Get(k)
	}
	if c.ReadLatency().Count() != 2000 {
		t.Fatalf("latency histogram has %d samples, want 2000", c.ReadLatency().Count())
	}
	if c.ReadLatency().Max() == 0 {
		t.Fatal("some flash-backed reads should have non-zero latency")
	}
}
