package core

import "nemo/internal/setblock"

// memSG is a mutable in-memory Set-Group: SetsPerSG page-sized set blocks
// aggregating incoming objects until flush (§4.1 "an SG begins as a mutable
// in-memory structure"). The blocks are a value slice whose storage is
// carved from one slab, so a memSG is three heap objects regardless of
// SetsPerSG; flushed memSGs are recycled through Cache.memFree.
type memSG struct {
	sets []setblock.Block
	slab []byte // every set's backing, carved per slot
	// newBytes counts user bytes inserted into this SG, including objects
	// later sacrificed by delayed flushing (the paper's WA denominator,
	// §5.2); writeback bytes are tracked separately and excluded.
	newBytes uint64
	wbBytes  uint64
	newObjs  int
	wbObjs   int
	used     int // Σ set Used(), maintained incrementally
}

func newMemSG(setsPerSG, setSize int) *memSG {
	per := setSize - setblock.HeaderSize
	sg := &memSG{
		sets: make([]setblock.Block, setsPerSG),
		slab: make([]byte, setsPerSG*per),
	}
	for i := range sg.sets {
		sg.sets[i].InitCarved(setSize, sg.slab[i*per:i*per:(i+1)*per])
		sg.used += sg.sets[i].Used()
	}
	return sg
}

// reset returns the memSG to its freshly-built state, keeping the slab.
func (sg *memSG) reset() {
	sg.newBytes, sg.wbBytes, sg.newObjs, sg.wbObjs, sg.used = 0, 0, 0, 0, 0
	for i := range sg.sets {
		sg.sets[i].Reset()
		sg.used += sg.sets[i].Used()
	}
}

// takeMemSG reuses a flushed memSG or builds a fresh one.
func (c *Cache) takeMemSG() *memSG {
	if n := len(c.memFree); n > 0 {
		sg := c.memFree[n-1]
		c.memFree = c.memFree[:n-1]
		sg.reset()
		return sg
	}
	return newMemSG(c.setsPerSG, c.pageSize)
}

// putMemSG recycles a memSG whose contents reached flash (or were dropped);
// no references to its blocks may outlive the call (readers copy values out
// under the lock, and flush serialization completed before commit).
func (c *Cache) putMemSG(sg *memSG) { c.memFree = append(c.memFree, sg) }

// fillRate returns the SG's aggregate fill rate in [0, 1].
func (sg *memSG) fillRate() float64 {
	if len(sg.sets) == 0 {
		return 0
	}
	return float64(sg.used) / float64(len(sg.sets)*sg.sets[0].Size())
}

// insClass classifies an insert for write accounting.
type insClass uint8

const (
	// insNew is a fresh user object: bytes count as logical/new writes.
	insNew insClass = iota
	// insWriteback is an eviction survivor re-inserted by hotness-aware
	// writeback: bytes are tracked separately and excluded from the WA
	// denominator.
	insWriteback
	// insTombstone is a zero-value deletion marker: not user data, so it
	// counts in neither bucket.
	insTombstone
)

// insert places the entry in set o if it fits, updating accounting per the
// insert's class.
func (sg *memSG) insert(o int, fp uint64, key, value []byte, class insClass) bool {
	blk := &sg.sets[o]
	before := blk.Used()
	// A replace may free room even when CanFit on the raw size fails, so
	// attempt the insert and let the block decide.
	if !blk.Insert(fp, key, value) {
		sg.used += blk.Used() - before
		return false
	}
	sg.used += blk.Used() - before
	switch class {
	case insWriteback:
		sg.wbBytes += uint64(len(key) + len(value))
		sg.wbObjs++
	case insNew:
		sg.newBytes += uint64(len(key) + len(value))
		sg.newObjs++
	}
	return true
}

// canFit reports whether set o can accept the entry, accounting for an
// existing version that an insert would replace.
func (sg *memSG) canFit(o int, fp uint64, key []byte, valLen int) bool {
	blk := &sg.sets[o]
	free := blk.Free()
	if old, _, ok := blk.Lookup(fp, key); ok {
		free += setblock.EntrySize(len(key), len(old))
	}
	return setblock.EntrySize(len(key), valLen) <= free
}

// remove deletes (fp, key) from set o if present.
func (sg *memSG) remove(o int, fp uint64, key []byte) bool {
	blk := &sg.sets[o]
	before := blk.Used()
	ok := blk.Remove(fp, key)
	sg.used += blk.Used() - before
	return ok
}

// sacrifice evicts the oldest valued entries from set o until an entry of
// the given size fits, returning how many objects were evicted. Deletion
// tombstones are never sacrificed — dropping one early would resurrect the
// still-cached flash copy it shadows — so a tombstone-packed set may fail
// to yield room (the caller then falls back to flushing).
func (sg *memSG) sacrifice(o int, need int) int {
	blk := &sg.sets[o]
	n := 0
	for blk.Free() < need {
		before := blk.Used()
		if _, ok := blk.EvictOldestValued(); !ok {
			break
		}
		sg.used += blk.Used() - before
		n++
	}
	return n
}

// lookup searches set o.
func (sg *memSG) lookup(o int, fp uint64, key []byte) ([]byte, bool) {
	v, _, ok := sg.sets[o].Lookup(fp, key)
	return v, ok
}

// objCount returns the total number of entries across all sets.
func (sg *memSG) objCount() int {
	n := 0
	for i := range sg.sets {
		n += sg.sets[i].Count()
	}
	return n
}
