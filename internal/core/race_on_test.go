//go:build race

package core

// raceDetectorEnabled reports whether the race detector is instrumenting
// this build; allocation-count pins are skipped under -race because the
// instrumentation itself allocates.
const raceDetectorEnabled = true
