package core

// Tests for §6 device compatibility: SGs spanning multiple small zones
// (e.g. Samsung PM1731a-style 96 MB zones) and operation under a realistic
// open-zone limit.

import (
	"testing"

	"nemo/internal/flashsim"
)

func multiZoneCache(t *testing.T, zonesPerSG int, maxOpen int) (*flashsim.Device, *Cache) {
	t.Helper()
	dev := flashsim.New(flashsim.Config{
		PageSize: 512, PagesPerZone: 8, Zones: 40, MaxOpenZones: maxOpen,
	})
	cfg := DefaultConfig(dev, 16)
	cfg.ZonesPerSG = zonesPerSG
	cfg.SGsPerIndexGroup = 4
	cfg.TargetObjsPerSet = 8
	cfg.FlushThreshold = 8
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return dev, c
}

func TestMultiZoneSGBasic(t *testing.T) {
	_, c := multiZoneCache(t, 4, 0)
	if got := c.SetsPerSG(); got != 32 {
		t.Fatalf("SetsPerSG = %d, want 4 zones × 8 pages", got)
	}
	for i := 0; i < 2000; i++ {
		k, v := kv(i)
		if err := c.Set(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if c.Extra().SGsFlushed == 0 {
		t.Fatal("no SGs flushed")
	}
	// Recent keys must be readable across the multi-zone layout.
	found := 0
	for i := 1500; i < 2000; i++ {
		k, _ := kv(i)
		if _, hit := c.Get(k); hit {
			found++
		}
	}
	if found < 300 {
		t.Fatalf("only %d/500 recent keys found", found)
	}
}

func TestMultiZoneSGEvictionRecyclesAllZones(t *testing.T) {
	dev, c := multiZoneCache(t, 4, 0)
	for i := 0; i < 30000; i++ {
		k, v := kv(i)
		if err := c.Set(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if dev.Stats().ZoneResets == 0 {
		t.Fatal("no zone resets despite churn")
	}
	// Pool capacity is 16 zones / 4 per SG = 4 SGs.
	if got := c.PoolLen(); got > 4 {
		t.Fatalf("pool holds %d SGs, capacity 4", got)
	}
}

func TestMultiZoneValuesIntact(t *testing.T) {
	_, c := multiZoneCache(t, 2, 0)
	for i := 0; i < 5000; i++ {
		k, v := kv(i)
		if err := c.Set(k, v); err != nil {
			t.Fatal(err)
		}
		if i%7 == 0 {
			if got, hit := c.Get(k); !hit || string(got) != string(v) {
				t.Fatalf("readback of fresh key %d failed", i)
			}
		}
	}
}

func TestOpenZoneLimitRespected(t *testing.T) {
	// Nemo keeps at most one open data zone plus one open index zone per
	// in-flight group; a ZN540-like limit of 14 must never trip.
	_, c := multiZoneCache(t, 1, 14)
	for i := 0; i < 20000; i++ {
		k, v := kv(i)
		if err := c.Set(k, v); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
}

func TestInvalidZonesPerSG(t *testing.T) {
	dev := flashsim.New(flashsim.Config{PageSize: 512, PagesPerZone: 8, Zones: 40})
	cfg := DefaultConfig(dev, 16)
	cfg.ZonesPerSG = 3 // 16 % 3 != 0
	if _, err := New(cfg); err == nil {
		t.Fatal("non-divisible ZonesPerSG accepted")
	}
	cfg.ZonesPerSG = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("zero ZonesPerSG accepted")
	}
	cfg = DefaultConfig(dev, 16)
	cfg.ZonesPerSG = 16 // only one SG would fit
	if _, err := New(cfg); err == nil {
		t.Fatal("single-SG pool accepted")
	}
}

func TestMultiZoneMatchesSingleZoneSemantics(t *testing.T) {
	// The same workload against ZonesPerSG 1 (16 sets/SG via 2 pools) and
	// ZonesPerSG 2 must agree on every lookup outcome value-wise for keys
	// that hit in both.
	_, c1 := multiZoneCache(t, 1, 0)
	_, c2 := multiZoneCache(t, 2, 0)
	for i := 0; i < 3000; i++ {
		k, v := kv(i)
		if err := c1.Set(k, v); err != nil {
			t.Fatal(err)
		}
		if err := c2.Set(k, v); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3000; i++ {
		k, v := kv(i)
		if got, hit := c1.Get(k); hit && string(got) != string(v) {
			t.Fatalf("single-zone cache corrupt at %d", i)
		}
		if got, hit := c2.Get(k); hit && string(got) != string(v) {
			t.Fatalf("multi-zone cache corrupt at %d", i)
		}
	}
}
