package core

import "sync"

// flusherPool executes deferred SG flushes on K background goroutines — the
// pipeline behind cachelib.AsyncEngine. SetAsync inserts into the in-memory
// SG and returns; when a flush trigger fires, the cache is enqueued here and
// a flusher goroutine runs the three-phase flush protocol (writepath.go):
// the shard lock is held only for the seal, liveness-filter, and commit
// sub-phases, while the serialization, device appends, Bloom-filter build,
// group sealing, and eviction read-back all run unlocked — so a deferred
// flush no longer stalls the shard's foreground GETs and SETs, and with a
// Sharded cache (which shares one pool across all shards) the K flushers
// overlap every shard's flush I/O with every shard's foreground traffic.
// Each flush's seal advances the shard's SG epoch, which in-flight
// optimistic readers detect at commit time and retry (readpath.go) — the
// pool needs no extra coordination with the concurrent read path.
//
// Each cache holds at most one outstanding job (Cache.flushPending), and the
// job channel is sized for one slot per registered cache, so enqueue — which
// runs with the shard lock held — can never block on pool backpressure.
type flusherPool struct {
	jobs chan *Cache
	wg   sync.WaitGroup // running workers

	mu      sync.Mutex
	cond    *sync.Cond
	pending int   // enqueued or executing jobs
	err     error // first deferred flush error
	stopped bool
}

// newFlusherPool starts k flusher goroutines servicing up to caches queued
// jobs (one slot per cache that may enqueue).
func newFlusherPool(k, caches int) *flusherPool {
	if k < 1 {
		k = 1
	}
	if caches < 1 {
		caches = 1
	}
	p := &flusherPool{jobs: make(chan *Cache, caches)}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(k)
	for i := 0; i < k; i++ {
		go p.worker()
	}
	return p
}

func (p *flusherPool) worker() {
	defer p.wg.Done()
	for c := range p.jobs {
		p.finish(c.runDeferredFlush())
	}
}

// enqueue submits one flush job for c, reporting false when the pool has
// been stopped (the caller then flushes inline). The caller holds c.mu; the
// send cannot block (see the channel-sizing invariant) and happens under
// p.mu so it can never race stop's close of the channel.
func (p *flusherPool) enqueue(c *Cache) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stopped {
		return false
	}
	p.pending++
	p.jobs <- c
	return true
}

// finish retires one job, recording its error and waking drainers.
func (p *flusherPool) finish(err error) {
	p.mu.Lock()
	p.pending--
	if err != nil && p.err == nil {
		p.err = err
	}
	if p.pending == 0 {
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

// drain blocks until no jobs are enqueued or executing, then returns the
// first deferred error. Callers must not hold any cache lock.
func (p *flusherPool) drain() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.pending > 0 {
		p.cond.Wait()
	}
	return p.err
}

// stop refuses new jobs, drains the queue, and terminates the workers;
// idempotent. Marking stopped before draining means a SetAsync racing with
// Close falls back to an inline flush instead of touching a closing pool.
func (p *flusherPool) stop() error {
	p.mu.Lock()
	already := p.stopped
	p.stopped = true
	p.mu.Unlock()
	err := p.drain()
	if !already {
		close(p.jobs)
		p.wg.Wait()
	}
	return err
}
