package setblock

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"nemo/internal/hashing"
)

func mkEntry(i int) (fp uint64, key, value []byte) {
	key = []byte(fmt.Sprintf("key-%06d", i))
	value = make([]byte, 20+i%50)
	for j := range value {
		value[j] = byte(i + j)
	}
	return hashing.Fingerprint(key), key, value
}

func TestInsertLookup(t *testing.T) {
	b := New(4096)
	for i := 0; i < 10; i++ {
		fp, k, v := mkEntry(i)
		if !b.Insert(fp, k, v) {
			t.Fatalf("insert %d failed", i)
		}
	}
	for i := 0; i < 10; i++ {
		fp, k, v := mkEntry(i)
		got, slot, ok := b.Lookup(fp, k)
		if !ok || string(got) != string(v) {
			t.Fatalf("lookup %d failed", i)
		}
		if slot != i {
			t.Fatalf("entry %d at slot %d, want FIFO order", i, slot)
		}
	}
}

func TestInsertReplaces(t *testing.T) {
	b := New(4096)
	fp, k, _ := mkEntry(1)
	b.Insert(fp, k, []byte("old"))
	before := b.Count()
	b.Insert(fp, k, []byte("newer-value"))
	if b.Count() != before {
		t.Fatalf("replace changed count: %d -> %d", before, b.Count())
	}
	v, _, ok := b.Lookup(fp, k)
	if !ok || string(v) != "newer-value" {
		t.Fatalf("lookup after replace = %q", v)
	}
}

func TestEvictOldestFIFO(t *testing.T) {
	b := New(4096)
	for i := 0; i < 5; i++ {
		fp, k, v := mkEntry(i)
		b.Insert(fp, k, v)
	}
	e, ok := b.EvictOldest()
	if !ok {
		t.Fatal("evict failed")
	}
	_, k0, _ := mkEntry(0)
	if string(e.Key) != string(k0) {
		t.Fatalf("evicted %q, want oldest %q", e.Key, k0)
	}
	if b.Count() != 4 {
		t.Fatalf("count = %d after evict, want 4", b.Count())
	}
}

func TestRejectOversized(t *testing.T) {
	b := New(128)
	fp := uint64(1)
	if b.Append(fp, make([]byte, 100), make([]byte, 100)) {
		t.Fatal("accepted entry larger than block")
	}
	if b.Append(fp, make([]byte, 300), nil) {
		t.Fatal("accepted key > 255 bytes")
	}
}

func TestFillAccounting(t *testing.T) {
	b := New(4096)
	if b.Used() != HeaderSize || b.Free() != 4096-HeaderSize {
		t.Fatal("fresh block accounting wrong")
	}
	fp, k, v := mkEntry(0)
	b.Insert(fp, k, v)
	want := HeaderSize + EntrySize(len(k), len(v))
	if b.Used() != want {
		t.Fatalf("used = %d, want %d", b.Used(), want)
	}
	if got := b.FillRate(); got != float64(want)/4096 {
		t.Fatalf("fill rate = %v", got)
	}
}

func TestSerializeParseRoundTrip(t *testing.T) {
	b := New(4096)
	for i := 0; i < 12; i++ {
		fp, k, v := mkEntry(i)
		b.Insert(fp, k, v)
	}
	page := b.AppendTo(nil)
	if len(page) != 4096 {
		t.Fatalf("serialized %d bytes, want full page", len(page))
	}
	c, err := Parse(page, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if c.Count() != b.Count() || c.Used() != b.Used() {
		t.Fatal("parsed block differs")
	}
	for i := 0; i < 12; i++ {
		fp, k, v := mkEntry(i)
		got, _, ok := c.Lookup(fp, k)
		if !ok || string(got) != string(v) {
			t.Fatalf("entry %d lost in round trip", i)
		}
	}
}

func TestParseRejectsCorrupt(t *testing.T) {
	b := New(4096)
	fp, k, v := mkEntry(0)
	b.Insert(fp, k, v)
	page := b.AppendTo(nil)

	cases := map[string]func([]byte){
		"short page":    func(p []byte) {}, // handled via slicing below
		"bad count":     func(p []byte) { p[0] = 0xff; p[1] = 0xff },
		"used too big":  func(p []byte) { p[2] = 0xff; p[3] = 0x0f },
		"truncated key": func(p []byte) { p[HeaderSize+8] = 0xff },
	}
	for name, corrupt := range cases {
		p := append([]byte(nil), page...)
		if name == "short page" {
			if _, err := Parse(p[:2], 4096); err == nil {
				t.Fatalf("%s: expected parse error", name)
			}
			continue
		}
		corrupt(p)
		if _, err := Parse(p, 4096); err == nil {
			t.Fatalf("%s: expected parse error", name)
		}
	}
}

func TestRangeOrderAndEarlyStop(t *testing.T) {
	b := New(4096)
	for i := 0; i < 8; i++ {
		fp, k, v := mkEntry(i)
		b.Insert(fp, k, v)
	}
	var visited int
	b.Range(func(slot int, e Entry) bool {
		if slot != visited {
			t.Fatalf("slot %d out of order", slot)
		}
		visited++
		return visited < 3
	})
	if visited != 3 {
		t.Fatalf("early stop visited %d, want 3", visited)
	}
}

func TestRemove(t *testing.T) {
	b := New(4096)
	fp, k, v := mkEntry(0)
	b.Insert(fp, k, v)
	if !b.Remove(fp, k) {
		t.Fatal("remove failed")
	}
	if b.Remove(fp, k) {
		t.Fatal("second remove should fail")
	}
	if b.Count() != 0 || b.Used() != HeaderSize {
		t.Fatal("remove left residue")
	}
}

// TestPropertyRoundTrip inserts random entry batches and checks the
// serialize/parse round trip preserves every entry — the core on-flash
// integrity invariant all engines rely on.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		b := New(4096)
		type kv struct{ k, v []byte }
		var kept []kv
		for i := 0; i < int(n); i++ {
			k := make([]byte, 1+rng.Intn(40))
			rng.Read(k)
			v := make([]byte, rng.Intn(200))
			rng.Read(v)
			if b.Insert(hashing.Fingerprint(k), k, v) {
				// Replaces may drop earlier duplicates; rebuild kept list.
				filtered := kept[:0]
				for _, e := range kept {
					if string(e.k) != string(k) {
						filtered = append(filtered, e)
					}
				}
				kept = append(filtered, kv{append([]byte(nil), k...), append([]byte(nil), v...)})
			}
		}
		c, err := Parse(b.AppendTo(nil), 4096)
		if err != nil {
			return false
		}
		if c.Count() != len(kept) {
			return false
		}
		for _, e := range kept {
			got, _, ok := c.Lookup(hashing.Fingerprint(e.k), e.k)
			if !ok || string(got) != string(e.v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyUsedConsistent checks Used() always equals the sum of entry
// sizes plus header across random operation sequences.
func TestPropertyUsedConsistent(t *testing.T) {
	f := func(seed int64, ops uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		b := New(2048)
		for i := 0; i < int(ops); i++ {
			switch rng.Intn(3) {
			case 0:
				k := []byte(fmt.Sprintf("k%d", rng.Intn(20)))
				v := make([]byte, rng.Intn(100))
				b.Insert(hashing.Fingerprint(k), k, v)
			case 1:
				k := []byte(fmt.Sprintf("k%d", rng.Intn(20)))
				b.Remove(hashing.Fingerprint(k), k)
			case 2:
				b.EvictOldest()
			}
			sum := HeaderSize
			b.Range(func(_ int, e Entry) bool {
				sum += EntrySize(len(e.Key), len(e.Value))
				return true
			})
			if sum != b.Used() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
