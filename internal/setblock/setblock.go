// Package setblock implements the 4 KB set-page codec shared by every
// set-associative engine in this repository (Nemo's SG sets, the CacheLib
// Set baseline, and the hierarchical baselines' HSet pages).
//
// A block is a page-sized byte buffer holding variable-size entries in
// insertion (FIFO) order:
//
//	header : count uint16 | used uint16
//	entry  : fp uint64 | keyLen uint8 | valLen uint16 | key | value
//
// FIFO order makes "evict oldest" the natural within-set eviction, matching
// CacheLib's BigHash behaviour the paper builds on.
package setblock

import (
	"encoding/binary"
	"fmt"

	"nemo/internal/hashing"
)

// HeaderSize is the per-block header in bytes.
const HeaderSize = 4

// EntryOverhead is the per-entry metadata size in bytes.
const EntryOverhead = 8 + 1 + 2

// EntrySize returns the serialized size of an entry with the given key and
// value lengths.
func EntrySize(keyLen, valLen int) int { return EntryOverhead + keyLen + valLen }

// Entry is a decoded object reference. Key and Value alias the block's
// buffer and are invalidated by the next mutation.
type Entry struct {
	FP    uint64
	Key   []byte
	Value []byte
}

// Block is a mutable set page. The zero value is unusable; use New or Parse.
type Block struct {
	buf   []byte // serialized entries (no header), len == used payload bytes
	size  int    // page size budget including header
	count int
}

// New returns an empty block with the given page-size budget.
func New(size int) *Block {
	if size <= HeaderSize {
		panic(fmt.Sprintf("setblock: size %d too small", size))
	}
	return &Block{buf: make([]byte, 0, size-HeaderSize), size: size}
}

// InitCarved initializes b as an empty block whose storage is the caller's
// backing slice instead of a private heap buffer — the slab-allocation hook
// for engines that carve all of an SG's set pages from one contiguous
// allocation. backing must have capacity ≥ size-HeaderSize; the block never
// grows past that budget (every append is fit-checked), so the carve is
// stable for the block's lifetime.
func (b *Block) InitCarved(size int, backing []byte) {
	if size <= HeaderSize {
		panic(fmt.Sprintf("setblock: size %d too small", size))
	}
	if cap(backing) < size-HeaderSize {
		panic(fmt.Sprintf("setblock: backing cap %d short of %d", cap(backing), size-HeaderSize))
	}
	b.buf = backing[: 0 : size-HeaderSize]
	b.size = size
	b.count = 0
}

// Reset clears the block to empty without releasing its buffer.
func (b *Block) Reset() {
	b.buf = b.buf[:0]
	b.count = 0
}

// Count returns the number of entries.
func (b *Block) Count() int { return b.count }

// Used returns the occupied bytes including the header.
func (b *Block) Used() int { return HeaderSize + len(b.buf) }

// Free returns the remaining byte budget.
func (b *Block) Free() int { return b.size - b.Used() }

// Size returns the page-size budget.
func (b *Block) Size() int { return b.size }

// FillRate returns Used/Size in [0, 1].
func (b *Block) FillRate() float64 { return float64(b.Used()) / float64(b.size) }

// CanFit reports whether an entry with the given key/value lengths fits in
// the remaining space.
func (b *Block) CanFit(keyLen, valLen int) bool {
	return EntrySize(keyLen, valLen) <= b.Free()
}

// entryAt decodes the entry starting at offset off, returning the entry and
// the offset just past it. It panics on corrupt buffers (which Parse
// rejects), so internal iteration is panic-free on valid blocks.
func (b *Block) entryAt(off int) (Entry, int) {
	fp := binary.LittleEndian.Uint64(b.buf[off:])
	kl := int(b.buf[off+8])
	vl := int(binary.LittleEndian.Uint16(b.buf[off+9:]))
	ks := off + EntryOverhead
	vs := ks + kl
	return Entry{FP: fp, Key: b.buf[ks:vs:vs], Value: b.buf[vs : vs+vl : vs+vl]}, vs + vl
}

// Append adds an entry without checking for duplicates. It returns false
// when the entry does not fit. Key must be ≤ 255 bytes and value ≤ 65535.
func (b *Block) Append(fp uint64, key, value []byte) bool {
	if len(key) > 255 || len(value) > 65535 {
		return false
	}
	if !b.CanFit(len(key), len(value)) {
		return false
	}
	var hdr [EntryOverhead]byte
	binary.LittleEndian.PutUint64(hdr[0:], fp)
	hdr[8] = byte(len(key))
	binary.LittleEndian.PutUint16(hdr[9:], uint16(len(value)))
	b.buf = append(b.buf, hdr[:]...)
	b.buf = append(b.buf, key...)
	b.buf = append(b.buf, value...)
	b.count++
	return true
}

// Insert adds or replaces the entry for (fp, key). A replaced entry moves
// to the FIFO tail (an update refreshes age, as in a log). It returns false
// — leaving any existing version intact — when the new entry would not fit
// even after removing the old one.
func (b *Block) Insert(fp uint64, key, value []byte) bool {
	if len(key) > 255 || len(value) > 65535 {
		return false
	}
	free := b.Free()
	if old, _, ok := b.Lookup(fp, key); ok {
		free += EntrySize(len(key), len(old))
	}
	if EntrySize(len(key), len(value)) > free {
		return false
	}
	b.Remove(fp, key)
	return b.Append(fp, key, value)
}

// Lookup returns the value and FIFO slot index for (fp, key). The returned
// slice aliases the block.
func (b *Block) Lookup(fp uint64, key []byte) (value []byte, slot int, ok bool) {
	off := 0
	for i := 0; i < b.count; i++ {
		e, next := b.entryAt(off)
		if e.FP == fp && string(e.Key) == string(key) {
			return e.Value, i, true
		}
		off = next
	}
	return nil, -1, false
}

// LookupFP returns the first entry matching the fingerprint alone; engines
// that store only fingerprints in their indexes use this and verify keys.
func (b *Block) LookupFP(fp uint64) (Entry, int, bool) {
	off := 0
	for i := 0; i < b.count; i++ {
		e, next := b.entryAt(off)
		if e.FP == fp {
			return e, i, true
		}
		off = next
	}
	return Entry{}, -1, false
}

// Remove deletes the entry for (fp, key), returning whether it existed.
func (b *Block) Remove(fp uint64, key []byte) bool {
	off := 0
	for i := 0; i < b.count; i++ {
		e, next := b.entryAt(off)
		if e.FP == fp && string(e.Key) == string(key) {
			b.buf = append(b.buf[:off], b.buf[next:]...)
			b.count--
			return true
		}
		off = next
	}
	return false
}

// EvictOldest removes and returns a copy of the oldest (first) entry.
func (b *Block) EvictOldest() (Entry, bool) {
	if b.count == 0 {
		return Entry{}, false
	}
	e, next := b.entryAt(0)
	out := Entry{FP: e.FP, Key: append([]byte(nil), e.Key...), Value: append([]byte(nil), e.Value...)}
	b.buf = append(b.buf[:0], b.buf[next:]...)
	b.count--
	return out, true
}

// EvictOldestValued removes and returns a copy of the oldest entry with a
// non-empty value, preserving zero-length entries (Nemo's deletion
// tombstones, which must keep shadowing older flash copies). Returns false
// when only tombstones (or nothing) remain.
func (b *Block) EvictOldestValued() (Entry, bool) {
	off := 0
	for i := 0; i < b.count; i++ {
		e, next := b.entryAt(off)
		if len(e.Value) > 0 {
			out := Entry{FP: e.FP, Key: append([]byte(nil), e.Key...), Value: append([]byte(nil), e.Value...)}
			b.buf = append(b.buf[:off], b.buf[next:]...)
			b.count--
			return out, true
		}
		off = next
	}
	return Entry{}, false
}

// Range calls fn for each entry in FIFO order until fn returns false.
// Entries alias the block; fn must not mutate the block.
func (b *Block) Range(fn func(slot int, e Entry) bool) {
	off := 0
	for i := 0; i < b.count; i++ {
		e, next := b.entryAt(off)
		if !fn(i, e) {
			return
		}
		off = next
	}
}

// AppendTo serializes the block (header + entries) onto dst, zero-padding to
// the full page size, and returns the extended slice.
func (b *Block) AppendTo(dst []byte) []byte {
	var hdr [HeaderSize]byte
	binary.LittleEndian.PutUint16(hdr[0:], uint16(b.count))
	binary.LittleEndian.PutUint16(hdr[2:], uint16(len(b.buf)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, b.buf...)
	pad := b.size - HeaderSize - len(b.buf)
	for i := 0; i < pad; i++ {
		dst = append(dst, 0)
	}
	return dst
}

// Parse decodes a serialized page into a fresh block with the given size
// budget, validating all entry bounds.
func Parse(page []byte, size int) (*Block, error) {
	b := New(size)
	if err := b.DecodeFrom(page); err != nil {
		return nil, err
	}
	return b, nil
}

// DecodeFrom decodes a serialized page into b, reusing b's existing storage
// (from New or InitCarved; the size budget is b's). On error b is left empty.
func (b *Block) DecodeFrom(page []byte) error {
	b.Reset()
	if len(page) < HeaderSize {
		return fmt.Errorf("setblock: page shorter than header")
	}
	count := int(binary.LittleEndian.Uint16(page[0:]))
	used := int(binary.LittleEndian.Uint16(page[2:]))
	if HeaderSize+used > len(page) || HeaderSize+used > b.size {
		return fmt.Errorf("setblock: used %d exceeds page", used)
	}
	b.buf = append(b.buf[:0], page[HeaderSize:HeaderSize+used]...)
	// Validate by walking all entries.
	off := 0
	for i := 0; i < count; i++ {
		if off+EntryOverhead > used {
			b.Reset()
			return fmt.Errorf("setblock: entry %d header out of bounds", i)
		}
		kl := int(b.buf[off+8])
		vl := int(binary.LittleEndian.Uint16(b.buf[off+9:]))
		off += EntryOverhead + kl + vl
		if off > used {
			b.Reset()
			return fmt.Errorf("setblock: entry %d payload out of bounds", i)
		}
	}
	if off != used {
		b.Reset()
		return fmt.Errorf("setblock: trailing %d bytes after %d entries", used-off, count)
	}
	b.count = count
	return nil
}

// FingerprintOf is a convenience wrapper so callers do not need to import
// hashing directly for the common case.
func FingerprintOf(key []byte) uint64 { return hashing.Fingerprint(key) }

// Scan searches a serialized page for (fp, key) without materializing a
// Block — the zero-copy hot path for candidate-set lookups. The returned
// value aliases page.
func Scan(page []byte, fp uint64, key []byte) (value []byte, slot int, ok bool) {
	if len(page) < HeaderSize {
		return nil, -1, false
	}
	count := int(binary.LittleEndian.Uint16(page[0:]))
	used := int(binary.LittleEndian.Uint16(page[2:]))
	if HeaderSize+used > len(page) {
		return nil, -1, false
	}
	buf := page[HeaderSize : HeaderSize+used]
	off := 0
	for i := 0; i < count; i++ {
		if off+EntryOverhead > len(buf) {
			return nil, -1, false
		}
		efp := binary.LittleEndian.Uint64(buf[off:])
		kl := int(buf[off+8])
		vl := int(binary.LittleEndian.Uint16(buf[off+9:]))
		ks := off + EntryOverhead
		if ks+kl+vl > len(buf) {
			return nil, -1, false
		}
		if efp == fp && string(buf[ks:ks+kl]) == string(key) {
			return buf[ks+kl : ks+kl+vl], i, true
		}
		off = ks + kl + vl
	}
	return nil, -1, false
}

// ScanAll iterates a serialized page's entries without materializing a
// Block; entries alias page. It returns an error on a corrupt layout.
func ScanAll(page []byte, fn func(slot int, e Entry) bool) error {
	if len(page) < HeaderSize {
		return fmt.Errorf("setblock: page shorter than header")
	}
	count := int(binary.LittleEndian.Uint16(page[0:]))
	used := int(binary.LittleEndian.Uint16(page[2:]))
	if HeaderSize+used > len(page) {
		return fmt.Errorf("setblock: used %d exceeds page", used)
	}
	buf := page[HeaderSize : HeaderSize+used]
	off := 0
	for i := 0; i < count; i++ {
		if off+EntryOverhead > len(buf) {
			return fmt.Errorf("setblock: entry %d header out of bounds", i)
		}
		fp := binary.LittleEndian.Uint64(buf[off:])
		kl := int(buf[off+8])
		vl := int(binary.LittleEndian.Uint16(buf[off+9:]))
		ks := off + EntryOverhead
		if ks+kl+vl > len(buf) {
			return fmt.Errorf("setblock: entry %d payload out of bounds", i)
		}
		if !fn(i, Entry{FP: fp, Key: buf[ks : ks+kl : ks+kl], Value: buf[ks+kl : ks+kl+vl : ks+kl+vl]}) {
			return nil
		}
		off = ks + kl + vl
	}
	return nil
}
