package logcache_test

import (
	"testing"

	"nemo/internal/cachelib"
	"nemo/internal/enginetest"
	"nemo/internal/flashsim"
	"nemo/internal/logcache"
)

func newDev() *flashsim.Device {
	return flashsim.New(flashsim.Config{PageSize: 512, PagesPerZone: 8, Zones: 16})
}

func mkBare(t *testing.T) cachelib.Engine {
	t.Helper()
	e, err := logcache.New(logcache.Config{Device: newDev()})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func mkSharded(t *testing.T, shards int) cachelib.Engine {
	t.Helper()
	e, err := logcache.NewSharded(logcache.Config{Device: newDev()}, shards)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestShardedSingleShardEquivalence pins the facade contract: a shards=1
// wrapped log cache replays stat-for-stat like the bare engine.
func TestShardedSingleShardEquivalence(t *testing.T) {
	enginetest.SingleShardEquivalence(t, 20_000, mkBare, mkSharded)
}

// TestShardedPartition checks multi-shard aggregate accounting.
func TestShardedPartition(t *testing.T) {
	enginetest.MultiShardPartition(t, 20_000, 2, mkSharded)
}

// TestShardedRejectsIndivisible pins the zone-partition validation.
func TestShardedRejectsIndivisible(t *testing.T) {
	if _, err := logcache.NewSharded(logcache.Config{Device: newDev()}, 3); err == nil {
		t.Fatal("NewSharded accepted 16 zones across 3 shards")
	}
}
