package logcache

import (
	"fmt"
	"testing"

	"nemo/internal/flashsim"
	"nemo/internal/trace"
)

func mkCache(t *testing.T) *Cache {
	t.Helper()
	dev := flashsim.New(flashsim.Config{PageSize: 512, PagesPerZone: 8, Zones: 8})
	c, err := New(Config{Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func kv(i int) (k, v []byte) {
	return []byte(fmt.Sprintf("key-%08d", i)), []byte(fmt.Sprintf("val-%08d-xxxxxxxxxxxxxxxx", i))
}

func TestSetGet(t *testing.T) {
	c := mkCache(t)
	k, v := kv(1)
	if err := c.Set(k, v); err != nil {
		t.Fatal(err)
	}
	got, hit := c.Get(k)
	if !hit || string(got) != string(v) {
		t.Fatalf("get = %q %v", got, hit)
	}
}

func TestGetAfterPageFlush(t *testing.T) {
	c := mkCache(t)
	for i := 0; i < 50; i++ {
		k, v := kv(i)
		if err := c.Set(k, v); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		k, v := kv(i)
		got, hit := c.Get(k)
		if !hit || string(got) != string(v) {
			t.Fatalf("object %d lost after flush", i)
		}
	}
}

func TestFIFOEviction(t *testing.T) {
	c := mkCache(t)
	// Fill well past capacity (8 zones × 8 pages × 512 B = 32 KB).
	n := 2000
	for i := 0; i < n; i++ {
		k, v := kv(i)
		if err := c.Set(k, v); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions despite overflow")
	}
	// Newest objects must still be present; oldest must be gone.
	if _, hit := c.Get(mustKey(n - 1)); !hit {
		t.Fatal("newest object evicted")
	}
	if _, hit := c.Get(mustKey(0)); hit {
		t.Fatal("oldest object survived full-wrap eviction")
	}
}

func mustKey(i int) []byte {
	k, _ := kv(i)
	return k
}

func TestUpdateReturnsNewest(t *testing.T) {
	c := mkCache(t)
	k, _ := kv(5)
	c.Set(k, []byte("old-value-00000000000000"))
	c.Set(k, []byte("new-value-11111111111111"))
	got, hit := c.Get(k)
	if !hit || string(got) != "new-value-11111111111111" {
		t.Fatalf("got %q", got)
	}
}

func TestWANearOne(t *testing.T) {
	c := mkCache(t)
	s := trace.NewSyntheticInserts(16, 60, 20, 3)
	var req trace.Request
	for i := 0; i < 5000; i++ {
		s.Next(&req)
		if err := c.Set(req.Key, req.Value); err != nil {
			t.Fatal(err)
		}
	}
	wa := c.Stats().ALWA()
	// The paper measures 1.08; page padding makes it slightly above 1.
	if wa < 1.0 || wa > 1.4 {
		t.Fatalf("log cache ALWA = %v, want ≈1.1", wa)
	}
}

func TestMemoryModel(t *testing.T) {
	c := mkCache(t)
	if got := c.MemoryBitsPerObject(); got < 100 {
		t.Fatalf("log index modeled at %v bits/obj, §2.3 says >100", got)
	}
}

func TestRejectOversized(t *testing.T) {
	c := mkCache(t)
	if err := c.Set([]byte("key"), make([]byte, 4096)); err == nil {
		t.Fatal("oversized object accepted")
	}
}

func TestInvalidConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil device accepted")
	}
	dev := flashsim.New(flashsim.Config{PageSize: 512, PagesPerZone: 8, Zones: 8})
	if _, err := New(Config{Device: dev, ZoneBase: 7, Zones: 5}); err == nil {
		t.Fatal("bad range accepted")
	}
}
