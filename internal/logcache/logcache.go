// Package logcache implements the log-structured flash cache baseline
// ("Log" in the paper's Figure 12a).
//
// Objects are buffered into page-sized append buffers and written
// sequentially into zones; an exact in-memory index maps every object to
// its flash location. Eviction is FIFO at zone granularity. This design
// achieves near-ideal write amplification (the paper measures 1.08) at the
// cost of the highest memory overhead (>100 bits per object for the exact
// index, §2.3).
package logcache

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"nemo/internal/cachelib"
	"nemo/internal/device"
	"nemo/internal/hashing"
	"nemo/internal/metrics"
	"nemo/internal/setblock"
)

// Config configures the log cache.
type Config struct {
	// Device is the zoned device; the cache uses zones [ZoneBase,
	// ZoneBase+Zones).
	Device   device.Device
	ZoneBase int
	Zones    int // 0 means all device zones
}

// loc packs an object's flash page and intra-page byte offset. page == -1
// means the object is still in the open append buffer at offset off.
type loc struct {
	page int32
	off  int32
}

// Cache is the log-structured engine. Safe for concurrent use.
type Cache struct {
	cfg      Config
	dev      device.Device
	pageSize int

	mu        sync.Mutex
	index     map[uint64]loc
	perZone   [][]uint64 // fingerprints appended per local zone
	ring      []int      // local zone ids in fill order (oldest first)
	openZone  int        // local zone receiving appends, -1 when none
	freeZones []int
	openBuf   []byte           // open page buffer
	openFPs   map[uint64]int32 // fp -> offset within openBuf
	scratch   []byte

	stats cachelib.Stats
	hist  metrics.Histogram
}

// New creates a log cache over the device's zone range.
func New(cfg Config) (*Cache, error) {
	if cfg.Device == nil {
		return nil, fmt.Errorf("logcache: nil device")
	}
	if cfg.Zones == 0 {
		cfg.Zones = cfg.Device.Zones() - cfg.ZoneBase
	}
	if cfg.Zones < 2 || cfg.ZoneBase+cfg.Zones > cfg.Device.Zones() {
		return nil, fmt.Errorf("logcache: invalid zone range base=%d zones=%d", cfg.ZoneBase, cfg.Zones)
	}
	c := &Cache{
		cfg:      cfg,
		dev:      cfg.Device,
		pageSize: cfg.Device.PageSize(),
		index:    make(map[uint64]loc),
		perZone:  make([][]uint64, cfg.Zones),
		openZone: -1,
		openBuf:  make([]byte, 0, cfg.Device.PageSize()),
		openFPs:  make(map[uint64]int32),
		scratch:  make([]byte, cfg.Device.PageSize()),
	}
	for z := cfg.Zones - 1; z >= 0; z-- {
		c.freeZones = append(c.freeZones, z)
	}
	return c, nil
}

// The log cache is a plain Engine plus a native Deleter; the remaining
// Engine v2 surfaces (batching, async writes) come from cachelib.Adapt.
var (
	_ cachelib.Engine  = (*Cache)(nil)
	_ cachelib.Deleter = (*Cache)(nil)
)

// Name implements cachelib.Engine.
func (c *Cache) Name() string { return "Log" }

// Close implements cachelib.Engine.
func (c *Cache) Close() error { return nil }

// ReadLatency implements cachelib.Engine.
func (c *Cache) ReadLatency() *metrics.Histogram { return &c.hist }

// Stats implements cachelib.Engine.
func (c *Cache) Stats() cachelib.Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// MemoryBitsPerObject returns the modeled index cost of the log design per
// §2.3: a 29-bit flash offset, 29-bit tag, and 64-bit next pointer.
func (c *Cache) MemoryBitsPerObject() float64 { return 29 + 29 + 64 }

// Set appends the object to the log and indexes it.
func (c *Cache) Set(key, value []byte) error {
	need := setblock.EntrySize(len(key), len(value))
	if need > c.pageSize || len(key) > 255 || len(value) > 65535 {
		return fmt.Errorf("logcache: object of %d bytes exceeds page size %d", need, c.pageSize)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	fp := hashing.Fingerprint(key)
	if need > c.pageSize-len(c.openBuf) {
		if err := c.flushOpenPage(); err != nil {
			return err
		}
	}
	off := int32(len(c.openBuf))
	c.openBuf = appendEntry(c.openBuf, fp, key, value)
	c.index[fp] = loc{page: -1, off: off}
	c.openFPs[fp] = off
	c.stats.Sets++
	c.stats.LogicalBytes += uint64(len(key) + len(value))
	return nil
}

// appendEntry serializes an entry in the shared setblock layout.
func appendEntry(dst []byte, fp uint64, key, value []byte) []byte {
	var hdr [setblock.EntryOverhead]byte
	binary.LittleEndian.PutUint64(hdr[0:], fp)
	hdr[8] = byte(len(key))
	binary.LittleEndian.PutUint16(hdr[9:], uint16(len(value)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, key...)
	return append(dst, value...)
}

// decodeEntry parses an entry at off, returning key, value views and ok.
func decodeEntry(buf []byte, off int) (fp uint64, key, value []byte, ok bool) {
	if off+setblock.EntryOverhead > len(buf) {
		return 0, nil, nil, false
	}
	fp = binary.LittleEndian.Uint64(buf[off:])
	kl := int(buf[off+8])
	vl := int(binary.LittleEndian.Uint16(buf[off+9:]))
	ks := off + setblock.EntryOverhead
	if ks+kl+vl > len(buf) {
		return 0, nil, nil, false
	}
	return fp, buf[ks : ks+kl], buf[ks+kl : ks+kl+vl], true
}

// flushOpenPage writes the open buffer as one page, updating index entries
// from buffer locations to flash locations.
func (c *Cache) flushOpenPage() error {
	if err := c.ensureOpenZone(); err != nil {
		return err
	}
	devZone := c.cfg.ZoneBase + c.openZone
	page, _, err := c.dev.AppendPage(devZone, c.openBuf)
	if err != nil {
		return err
	}
	c.stats.FlashBytesWritten += uint64(c.pageSize)
	c.stats.DeviceBytesWritten += uint64(c.pageSize)
	for fp, off := range c.openFPs {
		if l, ok := c.index[fp]; ok && l.page == -1 && l.off == off {
			c.index[fp] = loc{page: int32(page), off: off}
			c.perZone[c.openZone] = append(c.perZone[c.openZone], fp)
		}
		delete(c.openFPs, fp)
	}
	c.openBuf = c.openBuf[:0]
	if c.dev.ZoneWP(devZone) >= c.dev.PagesPerZone() {
		c.openZone = -1
	}
	return nil
}

// ensureOpenZone makes sure an append target exists, evicting the oldest
// zone (FIFO) when the free pool is empty.
func (c *Cache) ensureOpenZone() error {
	if c.openZone >= 0 {
		return nil
	}
	if len(c.freeZones) == 0 {
		if err := c.evictOldestZone(); err != nil {
			return err
		}
	}
	c.openZone = c.freeZones[len(c.freeZones)-1]
	c.freeZones = c.freeZones[:len(c.freeZones)-1]
	c.ring = append(c.ring, c.openZone)
	return nil
}

func (c *Cache) evictOldestZone() error {
	if len(c.ring) == 0 {
		return fmt.Errorf("logcache: no zone to evict")
	}
	victim := c.ring[0]
	c.ring = c.ring[1:]
	lo := int32((c.cfg.ZoneBase + victim) * c.dev.PagesPerZone())
	hi := lo + int32(c.dev.PagesPerZone())
	for _, fp := range c.perZone[victim] {
		if l, ok := c.index[fp]; ok && l.page >= lo && l.page < hi {
			delete(c.index, fp)
			c.stats.Evictions++
		}
	}
	c.perZone[victim] = c.perZone[victim][:0]
	if _, err := c.dev.ResetZone(c.cfg.ZoneBase + victim); err != nil {
		return err
	}
	c.freeZones = append(c.freeZones, victim)
	return nil
}

// Delete implements cachelib.Deleter natively: the exact index makes
// deletion a map removal — the log entry becomes dead space reclaimed by
// the zone's FIFO eviction, exactly like an overwrite.
func (c *Cache) Delete(key []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Deletes++
	fp := hashing.Fingerprint(key)
	if _, ok := c.index[fp]; ok {
		delete(c.index, fp)
		delete(c.openFPs, fp)
	}
	return nil
}

// Get looks the object up in the exact index and reads its log page.
func (c *Cache) Get(key []byte) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Gets++
	start := c.dev.Clock().Now()
	fp := hashing.Fingerprint(key)
	l, ok := c.index[fp]
	if !ok {
		c.hist.Record(time.Microsecond)
		return nil, false
	}
	var buf []byte
	var done time.Duration
	if l.page == -1 {
		buf = c.openBuf
		done = start + time.Microsecond
	} else {
		d, err := c.dev.ReadPage(int(l.page), c.scratch)
		if err != nil {
			c.hist.Record(time.Microsecond)
			return nil, false
		}
		c.stats.FlashReadOps++
		c.stats.FlashBytesRead += uint64(c.pageSize)
		buf = c.scratch
		done = d
	}
	efp, ekey, evalue, ok := decodeEntry(buf, int(l.off))
	c.hist.Record(done - start + time.Microsecond)
	if !ok || efp != fp || string(ekey) != string(key) {
		return nil, false
	}
	c.stats.Hits++
	return append([]byte(nil), evalue...), true
}
