// Package vtime provides the virtual clock shared by the flash-device
// simulator and the request replayer.
//
// All latency results in this repository are measured in virtual time: device
// operations complete on per-channel timelines and the replayer advances the
// clock by a configurable inter-arrival gap between requests. This makes
// latency distributions deterministic and immune to host scheduling or Go GC
// pauses (the reproduction hint for this paper flags real-device latency
// skew as the hard part; virtual time is the substitution).
package vtime

import (
	"sync/atomic"
	"time"
)

// Clock is a monotonically advancing virtual clock. The zero value is a
// clock at time 0, ready to use. Clock is safe for concurrent use.
type Clock struct {
	now atomic.Int64 // nanoseconds
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return time.Duration(c.now.Load()) }

// Advance moves the clock forward by d (non-negative) and returns the new
// virtual time.
func (c *Clock) Advance(d time.Duration) time.Duration {
	if d < 0 {
		panic("vtime: negative advance")
	}
	return time.Duration(c.now.Add(int64(d)))
}

// AdvanceTo moves the clock forward to t if t is later than the current
// time; earlier values are ignored (the clock never moves backwards).
func (c *Clock) AdvanceTo(t time.Duration) {
	for {
		cur := c.now.Load()
		if int64(t) <= cur {
			return
		}
		if c.now.CompareAndSwap(cur, int64(t)) {
			return
		}
	}
}
