// Package vtime provides the clock shared by the flash-device backends and
// the request replayer.
//
// A Clock runs in one of two modes. The default (zero value) is a virtual
// clock: device operations complete on per-channel timelines and the
// replayer advances the clock by a configurable inter-arrival gap between
// requests, which makes latency distributions deterministic and immune to
// host scheduling or Go GC pauses (the reproduction hint for this paper
// flags real-device latency skew as the hard part; virtual time is the
// substitution). NewReal returns a clock pinned to the host's monotonic
// wall clock instead — the mode the file-backed device uses so the same
// measurement code paths report real, measured latencies. A real clock
// advances on its own; Advance and AdvanceTo become no-ops on it.
package vtime

import (
	"sync/atomic"
	"time"
)

// Clock is a monotonically advancing clock: virtual by default, wall-time
// when built with NewReal. The zero value is a virtual clock at time 0,
// ready to use. Clock is safe for concurrent use.
type Clock struct {
	now      atomic.Int64 // nanoseconds (virtual mode)
	realBase time.Time    // when set, Now tracks time.Since(realBase)
}

// NewReal returns a clock that tracks the host's monotonic wall clock,
// starting at 0 now. Real device backends expose one so `done - start`
// latency arithmetic written for the simulator measures real elapsed time
// unchanged.
func NewReal() *Clock { return &Clock{realBase: time.Now()} }

// Real reports whether the clock tracks wall time.
func (c *Clock) Real() bool { return !c.realBase.IsZero() }

// Now returns the current time on the clock.
func (c *Clock) Now() time.Duration {
	if c.Real() {
		return time.Since(c.realBase)
	}
	return time.Duration(c.now.Load())
}

// Advance moves a virtual clock forward by d (non-negative) and returns the
// new time. On a real clock it is a no-op (wall time advances on its own)
// and returns Now.
func (c *Clock) Advance(d time.Duration) time.Duration {
	if d < 0 {
		panic("vtime: negative advance")
	}
	if c.Real() {
		return c.Now()
	}
	return time.Duration(c.now.Add(int64(d)))
}

// AdvanceTo moves a virtual clock forward to t if t is later than the
// current time; earlier values are ignored (the clock never moves
// backwards). On a real clock it is a no-op.
func (c *Clock) AdvanceTo(t time.Duration) {
	if c.Real() {
		return
	}
	for {
		cur := c.now.Load()
		if int64(t) <= cur {
			return
		}
		if c.now.CompareAndSwap(cur, int64(t)) {
			return
		}
	}
}
