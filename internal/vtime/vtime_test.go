package vtime

import (
	"sync"
	"testing"
	"time"
)

func TestZeroValueReady(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatal("fresh clock should read 0")
	}
}

func TestAdvance(t *testing.T) {
	var c Clock
	if got := c.Advance(5 * time.Millisecond); got != 5*time.Millisecond {
		t.Fatalf("advance returned %v", got)
	}
	c.Advance(time.Millisecond)
	if c.Now() != 6*time.Millisecond {
		t.Fatalf("now = %v", c.Now())
	}
}

func TestNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative advance should panic")
		}
	}()
	var c Clock
	c.Advance(-1)
}

func TestAdvanceToMonotone(t *testing.T) {
	var c Clock
	c.AdvanceTo(10 * time.Second)
	c.AdvanceTo(5 * time.Second) // must not go backwards
	if c.Now() != 10*time.Second {
		t.Fatalf("clock went backwards: %v", c.Now())
	}
	c.AdvanceTo(11 * time.Second)
	if c.Now() != 11*time.Second {
		t.Fatalf("now = %v", c.Now())
	}
}

func TestConcurrentAdvance(t *testing.T) {
	var c Clock
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Advance(time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if c.Now() != 8000*time.Nanosecond {
		t.Fatalf("lost updates: %v", c.Now())
	}
}
