// Package device defines the zoned-device contract every cache engine in
// this repository is written against: a fixed geometry of erase-unit zones
// holding page-granularity data, append-only writes at a per-zone write
// pointer, whole-zone resets, and byte-exact activity accounting.
//
// Two implementations exist. internal/flashsim is the simulator the paper's
// numbers were first reproduced on: deterministic, with a virtual-time
// latency model. internal/filedev is a real file-backed device (pread/pwrite
// into a preallocated image, measured latencies) that turns the BENCH
// trajectory from simulated to measured. Engines — Nemo's core and all four
// baselines — accept the Device interface and cannot tell the backends
// apart except through the clock: a mixed-trace replay produces identical
// hit ratios, write amplification, and eviction counts on either (pinned by
// the cross-backend equivalence tests), only the latency columns differ.
//
// The semantic contract, normative for every implementation:
//
//   - Appends to a zone land at its write pointer and advance it; a full
//     zone rejects appends until ResetZone rewinds it (append-only,
//     erase-before-reuse).
//   - Reading a page at or beyond its zone's write pointer yields zeroes
//     (deallocated-read behaviour of real zoned devices). Reads below the
//     write pointer return exactly the appended bytes, with short appends
//     zero-padded to a full page.
//   - Buffer ownership (the ReadPage/ReadPages rule the zero-allocation
//     read paths rely on): dst belongs to the caller, is filled
//     synchronously before the call returns, and is never retained; the
//     device never hands out internal buffers.
//   - Concurrency: operations on distinct zones proceed in parallel;
//     appends to one zone serialize on its single write pointer. All
//     methods are safe for concurrent use.
//   - Fault hooks (SetReadFault/SetWriteFault) run before any device state
//     changes and outside zone locks, so a test may block inside one to
//     hold an operation mid-flight without stalling other zones.
package device

import (
	"errors"
	"fmt"
	"time"

	"nemo/internal/vtime"
)

// ErrTooManyOpenZones is returned by any backend when an append would
// exceed the device's open-zone limit.
var ErrTooManyOpenZones = errors.New("device: open zone limit reached")

// Stats counts all device activity since creation. Byte counts include only
// host-visible payloads (full pages).
type Stats struct {
	PagesWritten uint64
	PagesRead    uint64
	ZoneResets   uint64
	BytesWritten uint64
	BytesRead    uint64
}

// Sub returns s - old, for interval accounting.
func (s Stats) Sub(old Stats) Stats {
	return Stats{
		PagesWritten: s.PagesWritten - old.PagesWritten,
		PagesRead:    s.PagesRead - old.PagesRead,
		ZoneResets:   s.ZoneResets - old.ZoneResets,
		BytesWritten: s.BytesWritten - old.BytesWritten,
		BytesRead:    s.BytesRead - old.BytesRead,
	}
}

// Generation is a device mutation stamp, the validity anchor for warm-restart
// snapshots (internal/snapshot): Boot uniquely identifies one cold format of
// the device contents, and Writes counts every successful mutation — page
// appends and zone resets — since that format. Two equal Generation values
// therefore mean the device holds exactly the zone contents and write
// pointers it held when the first value was sampled; any mutation in between
// makes Writes differ, and losing the device state entirely (process restart
// on the simulator, a crash before filedev's superblock was rewritten) makes
// Boot differ. Snapshot restore requires exact equality — there is no
// "close enough" — because a single unaccounted append or reset could alias
// stale index metadata onto rewritten flash.
//
// The simulator tracks its generation in memory (a fresh device always gets
// a fresh Boot); filedev persists it in a superblock page alongside the zone
// write pointers when opened in Persist mode, so a cleanly closed image
// reopens with the generation its last snapshot was stamped with.
type Generation struct {
	Boot   uint64
	Writes uint64
}

// Geometry is the backend-independent shape of a zoned device, used by
// factories (internal/backend, test harnesses) that must build equivalent
// devices on every implementation.
type Geometry struct {
	// PageSize is the read/program granularity in bytes (0 = backend
	// default, 4096).
	PageSize int
	// PagesPerZone is the zone (erase unit) size in pages (0 = backend
	// default, 256).
	PagesPerZone int
	// Zones is the number of zones on the device (0 = backend default, 64).
	Zones int
	// MaxOpenZones bounds the number of partially written zones, as real
	// ZNS devices do. 0 means unlimited.
	MaxOpenZones int
}

// Device is the zoned-device contract (see the package comment for the
// normative semantics). core.Config.Device, the four baseline configs, and
// the shared components (hlog, ftl) all accept this interface.
type Device interface {
	// Geometry.

	// PageSize returns the page size in bytes.
	PageSize() int
	// PagesPerZone returns the zone size in pages.
	PagesPerZone() int
	// Zones returns the number of zones on the device.
	Zones() int
	// TotalPages returns the device capacity in pages.
	TotalPages() int
	// CapacityBytes returns the device capacity in bytes.
	CapacityBytes() int64
	// ZoneOf returns the zone containing the global page index.
	ZoneOf(page int) int
	// PageAddr returns the global page index of offset off within zoneID.
	PageAddr(zoneID, off int) int
	// OffsetOf returns the intra-zone offset of the global page index.
	OffsetOf(page int) int
	// MaxOpenZones returns the open-zone limit (0 = unlimited).
	MaxOpenZones() int

	// Clock returns the clock latencies are measured on: virtual
	// (deterministic, advanced by the device model) on the simulator, real
	// (wall time, see vtime.NewReal) on physical backends. The `done`
	// results below are times on this clock; `done - Clock().Now()` sampled
	// before the call is the operation's latency.
	Clock() *vtime.Clock

	// Zone-append I/O.

	// AppendPage programs one page at the zone's write pointer. data longer
	// than a page is an error; shorter data is zero-padded (the full page
	// is still counted as written). It returns the global page index and
	// the completion time.
	AppendPage(zoneID int, data []byte) (page int, done time.Duration, err error)
	// Append programs len(data)/PageSize pages (rounding the tail up to a
	// full page) sequentially into the zone. It returns the first global
	// page index and the completion time of the last page.
	Append(zoneID int, data []byte) (firstPage int, done time.Duration, err error)
	// ReadPage copies the page into dst (which must hold PageSize bytes).
	// See the package comment for the buffer-ownership contract.
	ReadPage(page int, dst []byte) (done time.Duration, err error)
	// ReadPages reads every page into the matching dst buffer and returns
	// the completion time of the slowest read. On error, buffers before the
	// failing page have been filled and the rest are untouched; the error
	// is the first one encountered in page order.
	ReadPages(pages []int, dst [][]byte) (done time.Duration, err error)
	// ResetZone erases the zone, rewinding its write pointer.
	ResetZone(zoneID int) (done time.Duration, err error)

	// Zone state.

	// ZoneWP returns the write pointer (pages written) of the zone.
	ZoneWP(zoneID int) int
	// ZoneFull reports whether the zone has no remaining writable pages.
	ZoneFull(zoneID int) bool
	// OpenZones returns the number of partially written zones.
	OpenZones() int

	// Accounting and fault injection.

	// Stats returns a snapshot of the device counters.
	Stats() Stats
	// Generation returns the device mutation stamp (see the Generation type):
	// Boot identifies the current cold format, Writes the successful
	// mutations since. Quiescent reads are exact; under concurrent traffic
	// the stamp may straddle in-flight operations, which is fine for its one
	// consumer — snapshot validation, which only ever compares stamps taken
	// at quiescence.
	Generation() Generation
	// SetReadFault installs a hook invoked with the global page index on
	// every read, before any state changes and outside zone locks; a
	// non-nil return aborts the read with that error. Pass nil to disable.
	SetReadFault(f func(page int) error)
	// SetWriteFault is SetReadFault's append-side twin, invoked with the
	// zone ID. The hook may block to hold an append mid-flight without
	// stalling reads or appends to other zones.
	SetWriteFault(f func(zone int) error)

	// Close releases backend resources (file descriptors, image files).
	// The simulator's Close is a no-op. Engines never close their device —
	// whoever opened it does.
	Close() error
}

// ZoneState describes a zone's lifecycle position (§2.2's zoned interface).
type ZoneState int

// Zone states: empty (reset, unwritten), open (partially written), full
// (write pointer at capacity).
const (
	ZoneEmpty ZoneState = iota
	ZoneOpen
	ZoneFull
)

// String renders the state for diagnostics.
func (s ZoneState) String() string {
	switch s {
	case ZoneEmpty:
		return "EMPTY"
	case ZoneOpen:
		return "OPEN"
	case ZoneFull:
		return "FULL"
	default:
		return fmt.Sprintf("ZoneState(%d)", int(s))
	}
}

// StateOf derives a zone's lifecycle state from its write pointer.
func StateOf(d Device, zoneID int) ZoneState {
	switch wp := d.ZoneWP(zoneID); {
	case wp == 0:
		return ZoneEmpty
	case wp >= d.PagesPerZone():
		return ZoneFull
	default:
		return ZoneOpen
	}
}
