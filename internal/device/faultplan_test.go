package device_test

// FaultPlan unit tests plus the cross-backend parity pin: a seeded plan
// must fault the same positions of an identical operation sequence on both
// flashsim and filedev, because the chaos harness reports availability
// numbers that only mean something if the fault schedule is reproducible.

import (
	"errors"
	"testing"
	"time"

	"nemo/internal/device"
	"nemo/internal/devtest"
)

var faultGeom = device.Geometry{PageSize: 512, PagesPerZone: 32, Zones: 8}

// writeSequence appends n pages round-robin across the first four zones and
// returns the index of every append the plan failed.
func writeSequence(t *testing.T, d device.Device, n int) []int {
	t.Helper()
	buf := make([]byte, d.PageSize())
	var failed []int
	for i := 0; i < n; i++ {
		zone := i % 4
		_, _, err := d.AppendPage(zone, buf)
		switch {
		case err == nil:
		case errors.Is(err, device.ErrInjected):
			failed = append(failed, i)
		default:
			t.Fatalf("append %d: unexpected error %v", i, err)
		}
	}
	return failed
}

func TestFaultPlanDeterministicAcrossBackends(t *testing.T) {
	const ops = 64
	run := func(t *testing.T, b devtest.Backend) []int {
		d := b.New(t, faultGeom)
		plan := device.NewFaultPlan(42, device.FaultRule{Op: device.FaultWrite, ErrRate: 0.3})
		plan.Arm(d)
		defer plan.Disarm()
		return writeSequence(t, d, ops)
	}
	var results map[string][]int
	devtest.Run(t, func(t *testing.T, b devtest.Backend) {
		failed := run(t, b)
		if len(failed) == 0 || len(failed) == ops {
			t.Fatalf("ErrRate 0.3 failed %d/%d ops — generator not drawing", len(failed), ops)
		}
		if results == nil {
			results = map[string][]int{}
		}
		results[b.Name] = failed
	})
	sim, file := results["sim"], results["file"]
	if sim == nil || file == nil {
		t.Fatalf("missing backend results: %v", results)
	}
	if len(sim) != len(file) {
		t.Fatalf("fault positions diverge: sim %v file %v", sim, file)
	}
	for i := range sim {
		if sim[i] != file[i] {
			t.Fatalf("fault positions diverge at %d: sim %v file %v", i, sim, file)
		}
	}
}

func TestFaultPlanSeedAndRearmReplay(t *testing.T) {
	devtest.Run(t, func(t *testing.T, b devtest.Backend) {
		plan := device.NewFaultPlan(7, device.FaultRule{Op: device.FaultWrite, ErrRate: 0.5})

		d1 := b.New(t, faultGeom)
		plan.Arm(d1)
		first := writeSequence(t, d1, 40)

		// Re-arming rewinds rule counters and the generator: a fresh device
		// sees the identical fault schedule.
		d2 := b.New(t, faultGeom)
		plan.Arm(d2)
		second := writeSequence(t, d2, 40)
		if len(first) != len(second) {
			t.Fatalf("re-arm replay diverged: %v vs %v", first, second)
		}
		for i := range first {
			if first[i] != second[i] {
				t.Fatalf("re-arm replay diverged at %d: %v vs %v", i, first, second)
			}
		}

		// A different seed draws a different schedule.
		other := device.NewFaultPlan(8, device.FaultRule{Op: device.FaultWrite, ErrRate: 0.5})
		d3 := b.New(t, faultGeom)
		other.Arm(d3)
		third := writeSequence(t, d3, 40)
		same := len(third) == len(first)
		if same {
			for i := range third {
				if third[i] != first[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Fatalf("seeds 7 and 8 drew identical schedules: %v", first)
		}
	})
}

func TestFaultPlanSkipAndFailN(t *testing.T) {
	devtest.Run(t, func(t *testing.T, b devtest.Backend) {
		d := b.New(t, faultGeom)
		// Let 3 appends through, then fail exactly 2, then recover.
		plan := device.NewFaultPlan(1, device.FaultRule{
			Op: device.FaultWrite, ErrRate: 1, SkipN: 3, FailN: 2,
		})
		plan.Arm(d)
		failed := writeSequence(t, d, 10)
		if len(failed) != 2 || failed[0] != 3 || failed[1] != 4 {
			t.Fatalf("SkipN 3 + FailN 2 failed ops %v, want [3 4]", failed)
		}
		st := plan.Stats()
		if st.Writes != 10 || st.InjectedWrites != 2 {
			t.Fatalf("stats = %+v, want 10 writes / 2 injected", st)
		}
	})
}

func TestFaultPlanZoneTargetingAndReads(t *testing.T) {
	devtest.Run(t, func(t *testing.T, b devtest.Backend) {
		d := b.New(t, faultGeom)
		sick := errors.New("zone 2 is dying")
		plan := device.NewFaultPlan(1,
			device.FaultRule{Op: device.FaultWrite, ErrRate: 1, Zones: []int{2}, Err: sick},
			device.FaultRule{Op: device.FaultRead, ErrRate: 1, Zones: []int{2}, Err: sick},
		)
		plan.Arm(d)

		buf := make([]byte, d.PageSize())
		// Healthy zones write and read through; pages land where expected.
		var pages []int
		for _, zone := range []int{0, 1, 3} {
			page, _, err := d.AppendPage(zone, buf)
			if err != nil {
				t.Fatalf("append zone %d: %v", zone, err)
			}
			pages = append(pages, page)
		}
		// The sick zone fails both ways with the rule's own error.
		if _, _, err := d.AppendPage(2, buf); !errors.Is(err, sick) {
			t.Fatalf("append zone 2: %v, want %v", err, sick)
		}
		dst := make([]byte, d.PageSize())
		if _, err := d.ReadPage(d.PageAddr(2, 0), dst); !errors.Is(err, sick) {
			t.Fatalf("read zone 2: %v, want %v", err, sick)
		}
		for _, page := range pages {
			if _, err := d.ReadPage(page, dst); err != nil {
				t.Fatalf("read healthy page %d: %v", page, err)
			}
		}

		// A failed append mutates nothing: the zone accepts the retry after
		// the plan is disarmed (the retry-safety the breaker's appendPageRetry
		// depends on).
		plan.Disarm()
		if _, _, err := d.AppendPage(2, buf); err != nil {
			t.Fatalf("append zone 2 after disarm: %v", err)
		}
		if wp := d.ZoneWP(2); wp != 1 {
			t.Fatalf("zone 2 WP = %d after one successful append, want 1", wp)
		}
	})
}

func TestFaultPlanLatencyOnVirtualClock(t *testing.T) {
	devtest.Run(t, func(t *testing.T, b devtest.Backend) {
		d := b.New(t, faultGeom)
		clk := d.Clock()
		if clk.Real() {
			t.Skip("backend runs a wall clock; latency injection covered by the virtual-clock backend")
		}
		plan := device.NewFaultPlan(1, device.FaultRule{
			Op: device.FaultWrite, Latency: 3 * time.Millisecond,
		})
		plan.Arm(d)
		buf := make([]byte, d.PageSize())
		before := clk.Now()
		if _, _, err := d.AppendPage(0, buf); err != nil {
			t.Fatal(err)
		}
		if got := clk.Now() - before; got < 3*time.Millisecond {
			t.Fatalf("append advanced the clock %v, want >= 3ms of injected latency", got)
		}
		if st := plan.Stats(); st.DelayedOps != 1 {
			t.Fatalf("DelayedOps = %d, want 1", st.DelayedOps)
		}
	})
}
