package device

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nemo/internal/vtime"
)

// ErrInjected is the default error a FaultPlan injects. Errors returned by
// faulted operations wrap it, so callers can errors.Is against one sentinel
// regardless of which rule fired.
var ErrInjected = errors.New("device: injected fault")

// FaultOp selects which device operations a FaultRule matches. Reads match
// ReadPage/ReadPages (per page); writes match AppendPage/Append (per page
// append).
type FaultOp uint8

// Fault operation classes. Combine with | to match both.
const (
	FaultRead FaultOp = 1 << iota
	FaultWrite
)

// String renders the op mask for diagnostics.
func (op FaultOp) String() string {
	switch op {
	case FaultRead:
		return "read"
	case FaultWrite:
		return "write"
	case FaultRead | FaultWrite:
		return "read|write"
	default:
		return fmt.Sprintf("FaultOp(%d)", uint8(op))
	}
}

// FaultRule is one composable clause of a FaultPlan. A matching operation
// first pays the rule's Latency, then fails with probability ErrRate.
// Rules compose: every rule is evaluated in plan order for every operation;
// latencies accumulate and the first injected error wins.
type FaultRule struct {
	// Op is the operation class the rule matches: FaultRead, FaultWrite, or
	// both. Required (a zero Op matches nothing).
	Op FaultOp
	// Zones restricts the rule to the listed zone IDs (reads are attributed
	// to the zone containing the page). Nil/empty matches every zone.
	Zones []int
	// ErrRate is the probability a matching operation fails, 0..1. The
	// draw comes from the plan's seeded generator, so two plans built with
	// the same seed and rules fault the same positions of an identical
	// operation sequence on any backend. 0 means never fail — a
	// latency-only rule.
	ErrRate float64
	// SkipN lets the first N matching operations through before the rule
	// starts injecting (delayed onset).
	SkipN int
	// FailN, when > 0, retires the rule after it has injected N errors:
	// fail-N-then-recover. 0 means never retire.
	FailN int
	// Latency is added to every matching, non-retired operation: a real
	// sleep on wall-clock backends (filedev), a clock advance on the
	// virtual-time simulator.
	Latency time.Duration
	// Err is the error injected (wrapped with op detail). Nil means
	// ErrInjected.
	Err error
}

func (r *FaultRule) matches(op FaultOp, zone int) bool {
	if r.Op&op == 0 {
		return false
	}
	if len(r.Zones) == 0 {
		return true
	}
	for _, z := range r.Zones {
		if z == zone {
			return true
		}
	}
	return false
}

// ruleState is a FaultRule plus its per-arm mutable counters, guarded by the
// plan mutex.
type ruleState struct {
	FaultRule
	seen     int // matching ops observed (drives SkipN)
	injected int // errors injected (drives FailN retirement)
}

// FaultStats counts what an armed FaultPlan has done.
type FaultStats struct {
	// Reads and Writes count matching operations evaluated (post-arm).
	Reads, Writes uint64
	// InjectedReads and InjectedWrites count operations failed.
	InjectedReads, InjectedWrites uint64
	// DelayedOps counts operations that paid added latency.
	DelayedOps uint64
}

// FaultPlan compiles a list of FaultRules into the SetReadFault/SetWriteFault
// hooks of a Device. One plan arms one device at a time; Arm installs the
// hooks, Disarm removes them. The plan is deterministic: rule evaluation
// order, per-rule counters, and the seeded error-rate generator depend only
// on the sequence of matching operations, so a serial workload faults
// identically on flashsim and filedev (pinned by the devtest parity test).
//
// Plans are safe for concurrent device use; decisions serialize on an
// internal mutex, which also makes the rate generator's draw order follow
// the device's operation order.
type FaultPlan struct {
	mu    sync.Mutex
	rules []*ruleState
	rng   uint64
	seed  uint64

	dev          Device       // armed device (nil when disarmed)
	pagesPerZone int          // cached geometry for read→zone attribution
	clock        *vtime.Clock // armed device's clock, for latency injection

	reads, writes       atomic.Uint64
	injReads, injWrites atomic.Uint64
	delayed             atomic.Uint64
}

// NewFaultPlan builds a plan over the given rules. seed drives the ErrRate
// generator; 0 is a valid (fixed) seed.
func NewFaultPlan(seed uint64, rules ...FaultRule) *FaultPlan {
	p := &FaultPlan{seed: seed}
	p.rules = make([]*ruleState, len(rules))
	for i, r := range rules {
		p.rules[i] = &ruleState{FaultRule: r}
	}
	p.resetLocked()
	return p
}

// resetLocked rewinds per-arm state: rule counters and the rate generator.
func (p *FaultPlan) resetLocked() {
	// splitmix64 of the seed so seed 0 and seed 1 diverge immediately.
	z := p.seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	p.rng = z ^ (z >> 31)
	if p.rng == 0 {
		p.rng = 1
	}
	for _, rs := range p.rules {
		rs.seen, rs.injected = 0, 0
	}
}

// next returns a uniform draw in [0,1) from the plan's xorshift64 generator.
// Caller holds p.mu.
func (p *FaultPlan) next() float64 {
	x := p.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	p.rng = x
	return float64(x>>11) / (1 << 53)
}

// Arm installs the plan on d, replacing any fault hooks already set, and
// rewinds the plan's per-arm state (rule counters, rate generator) so
// re-arming replays the same fault sequence. A plan arms one device at a
// time; arm on a second device disarms the first.
func (p *FaultPlan) Arm(d Device) {
	p.mu.Lock()
	if p.dev != nil && p.dev != d {
		p.dev.SetReadFault(nil)
		p.dev.SetWriteFault(nil)
	}
	p.dev = d
	p.pagesPerZone = d.PagesPerZone()
	p.clock = d.Clock()
	p.resetLocked()
	p.mu.Unlock()
	d.SetReadFault(func(page int) error {
		return p.decide(FaultRead, page/p.pagesPerZone)
	})
	d.SetWriteFault(func(zone int) error {
		return p.decide(FaultWrite, zone)
	})
}

// Disarm removes the plan's hooks from the armed device. Safe to call when
// not armed.
func (p *FaultPlan) Disarm() {
	p.mu.Lock()
	d := p.dev
	p.dev = nil
	p.mu.Unlock()
	if d != nil {
		d.SetReadFault(nil)
		d.SetWriteFault(nil)
	}
}

// decide evaluates every rule against one operation: accumulates latency,
// returns the first injected error.
func (p *FaultPlan) decide(op FaultOp, zone int) error {
	var delay time.Duration
	var injected error

	p.mu.Lock()
	clock := p.clock
	for _, rs := range p.rules {
		if !rs.matches(op, zone) {
			continue
		}
		rs.seen++
		if rs.seen <= rs.SkipN {
			continue
		}
		if rs.FailN > 0 && rs.injected >= rs.FailN {
			continue // retired: recovered after its N failures
		}
		delay += rs.Latency
		if injected == nil && rs.ErrRate > 0 && p.next() < rs.ErrRate {
			rs.injected++
			cause := rs.Err
			if cause == nil {
				cause = ErrInjected
			}
			injected = fmt.Errorf("%w (%s zone %d)", cause, op, zone)
		}
	}
	p.mu.Unlock()

	if op == FaultRead {
		p.reads.Add(1)
		if injected != nil {
			p.injReads.Add(1)
		}
	} else {
		p.writes.Add(1)
		if injected != nil {
			p.injWrites.Add(1)
		}
	}
	if delay > 0 && clock != nil {
		p.delayed.Add(1)
		if clock.Real() {
			time.Sleep(delay)
		} else {
			clock.Advance(delay)
		}
	}
	return injected
}

// Stats returns a snapshot of what the plan has done since construction.
func (p *FaultPlan) Stats() FaultStats {
	return FaultStats{
		Reads:          p.reads.Load(),
		Writes:         p.writes.Load(),
		InjectedReads:  p.injReads.Load(),
		InjectedWrites: p.injWrites.Load(),
		DelayedOps:     p.delayed.Load(),
	}
}
