package trace

import (
	"bytes"
	"math"
	"testing"
)

// drawN pulls n requests from a stream into owned buffers.
func drawN(s Stream, n int) []Request {
	return Materialize(s, n)
}

// TestZipfDeterminism is table-driven over the four Table 5 clusters: the
// same configuration must yield a byte-identical request sequence on every
// run, and changing the seed must change the sequence.
func TestZipfDeterminism(t *testing.T) {
	const n = 5_000
	for _, cfg := range Clusters {
		cfg := cfg.Scaled(1 << 20)
		t.Run(cfg.Name, func(t *testing.T) {
			a := drawN(NewZipf(cfg), n)
			b := drawN(NewZipf(cfg), n)
			for i := range a {
				if !bytes.Equal(a[i].Key, b[i].Key) {
					t.Fatalf("op %d: keys diverged between identical streams:\n%q\n%q", i, a[i].Key, b[i].Key)
				}
				if !bytes.Equal(a[i].Value, b[i].Value) {
					t.Fatalf("op %d: values diverged between identical streams", i)
				}
			}
			reseeded := cfg
			reseeded.Seed++
			c := drawN(NewZipf(reseeded), n)
			same := 0
			for i := range a {
				if bytes.Equal(a[i].Key, c[i].Key) {
					same++
				}
			}
			if same == n {
				t.Fatal("reseeded stream produced an identical key sequence")
			}
		})
	}
}

// TestMaterializeMatchesStreaming pins Materialize to the streaming order:
// materializing n requests must equal n sequential Next calls.
func TestMaterializeMatchesStreaming(t *testing.T) {
	cfg := Clusters[0].Scaled(1 << 18)
	mat := Materialize(NewZipf(cfg), 2_000)
	s := NewZipf(cfg)
	var req Request
	for i := range mat {
		s.Next(&req)
		if !bytes.Equal(mat[i].Key, req.Key) || !bytes.Equal(mat[i].Value, req.Value) {
			t.Fatalf("op %d: materialized request differs from streamed request", i)
		}
	}
	// Materialized requests must own their buffers: mutating one must not
	// affect another (streams reuse scratch space internally).
	if len(mat) > 1 && &mat[0].Key[0] == &mat[1].Key[0] {
		t.Fatal("materialized requests share key buffers")
	}
}

// TestSizeDistributions is table-driven over the clusters: generated key
// sizes are exact, and the clamped-normal value sizes land within tolerance
// of the configured mean.
func TestSizeDistributions(t *testing.T) {
	const n = 20_000
	for _, cfg := range Clusters {
		cfg := cfg.Scaled(1 << 20)
		t.Run(cfg.Name, func(t *testing.T) {
			reqs := drawN(NewZipf(cfg), n)
			// Per-key sizes are deterministic and requests are Zipf-skewed,
			// so the request-weighted mean is dominated by whichever sizes
			// the few hottest keys happen to draw. The distribution claim is
			// about the key population: average over distinct keys.
			perKey := map[string]int{}
			for i := range reqs {
				if len(reqs[i].Key) != cfg.KeySize {
					t.Fatalf("op %d: key size %d, want %d", i, len(reqs[i].Key), cfg.KeySize)
				}
				if len(reqs[i].Value) < 1 || len(reqs[i].Value) > maxValue {
					t.Fatalf("op %d: value size %d outside [1,%d]", i, len(reqs[i].Value), maxValue)
				}
				perKey[string(reqs[i].Key)] = len(reqs[i].Value)
			}
			var sum float64
			for _, sz := range perKey {
				sum += float64(sz)
			}
			mean := sum / float64(len(perKey))
			// Clamping at 1 and maxValue shifts the mean slightly; 10% is
			// comfortably inside what the paper's metrics depend on.
			if rel := math.Abs(mean-float64(cfg.ValueMean)) / float64(cfg.ValueMean); rel > 0.10 {
				t.Fatalf("population mean value size %.1f deviates %.1f%% from configured %d",
					mean, rel*100, cfg.ValueMean)
			}
		})
	}
}

// TestPopularitySkew checks the Zipfian shape: the most popular key must
// absorb far more than a uniform share of requests, and the skew must rank
// consistently with the configured alpha.
func TestPopularitySkew(t *testing.T) {
	const n = 30_000
	for _, cfg := range Clusters {
		cfg := cfg.Scaled(1 << 20)
		t.Run(cfg.Name, func(t *testing.T) {
			reqs := drawN(NewZipf(cfg), n)
			counts := map[string]int{}
			top := 0
			for i := range reqs {
				k := string(reqs[i].Key)
				counts[k]++
				if counts[k] > top {
					top = counts[k]
				}
			}
			uniform := float64(n) / float64(cfg.Keys)
			if float64(top) < 50*uniform {
				t.Fatalf("hottest key saw %d requests (uniform share %.2f): no Zipf skew", top, uniform)
			}
			if len(counts) >= n {
				t.Fatalf("all %d requests hit distinct keys: no reuse", n)
			}
		})
	}
}

// TestInterleavedDeterminism covers the multi-cluster composition used by
// the default benchmark workload.
func TestInterleavedDeterminism(t *testing.T) {
	const n = 3_000
	mk := func() Stream {
		s, err := DefaultInterleaved(1<<20, 42)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a := drawN(mk(), n)
	b := drawN(mk(), n)
	for i := range a {
		if !bytes.Equal(a[i].Key, b[i].Key) || !bytes.Equal(a[i].Value, b[i].Value) {
			t.Fatalf("op %d: interleaved streams with identical seeds diverged", i)
		}
	}
}
