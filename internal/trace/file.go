package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// File format: a compact binary encoding so generated workloads can be
// captured once with cmd/tracegen and replayed byte-identically.
//
//	magic  : "NEMOTRC2" (8 bytes)
//	record : op uint8 | keyLen uint8 | valLen uint16 | key | value
//	         (little endian; op is a Kind — GET/SET/DELETE)
//
// Version 1 files ("NEMOTRC1", records without the op byte) still read:
// every record replays as a GET, which is all v1 could express.

var (
	fileMagic   = [8]byte{'N', 'E', 'M', 'O', 'T', 'R', 'C', '2'}
	fileMagicV1 = [8]byte{'N', 'E', 'M', 'O', 'T', 'R', 'C', '1'}
)

// Writer streams requests to an io.Writer in the trace file format.
type Writer struct {
	w   *bufio.Writer
	n   uint64
	err error
}

// NewWriter writes the file header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(fileMagic[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write appends one request.
func (t *Writer) Write(req *Request) error {
	if t.err != nil {
		return t.err
	}
	if len(req.Key) > 255 || len(req.Value) > 65535 {
		return fmt.Errorf("trace: request exceeds format limits (key %d, value %d)", len(req.Key), len(req.Value))
	}
	if req.Op > KindDelete {
		return fmt.Errorf("trace: unknown op %d", req.Op)
	}
	if len(req.Value) == 0 && req.Op != KindDelete {
		// Only deletions carry no payload; catching this at capture time
		// beats discovering an unreplayable record in an archived trace.
		return fmt.Errorf("trace: %v record with empty value", req.Op)
	}
	var hdr [4]byte
	hdr[0] = byte(req.Op)
	hdr[1] = byte(len(req.Key))
	binary.LittleEndian.PutUint16(hdr[2:], uint16(len(req.Value)))
	if _, err := t.w.Write(hdr[:]); err != nil {
		t.err = err
		return err
	}
	if _, err := t.w.Write(req.Key); err != nil {
		t.err = err
		return err
	}
	if _, err := t.w.Write(req.Value); err != nil {
		t.err = err
		return err
	}
	t.n++
	return nil
}

// Count returns the number of records written.
func (t *Writer) Count() uint64 { return t.n }

// Flush flushes buffered records to the underlying writer.
func (t *Writer) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Reader replays a trace file as a Stream. When the file is exhausted it
// either wraps (Loop true, requires a Seeker) or panics, so finite
// experiments should size op counts to the file.
type Reader struct {
	r   *bufio.Reader
	src io.ReadSeeker
	v1  bool // legacy op-less record format
	n   uint64
}

// NewReader validates the header and returns a Reader over src.
func NewReader(src io.ReadSeeker) (*Reader, error) {
	br := bufio.NewReaderSize(src, 1<<16)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != fileMagic && magic != fileMagicV1 {
		return nil, fmt.Errorf("trace: bad magic %q", magic[:])
	}
	return &Reader{r: br, src: src, v1: magic == fileMagicV1}, nil
}

// Read fills req with the next record, returning io.EOF at end of file.
func (t *Reader) Read(req *Request) error {
	req.Op = KindGet
	if !t.v1 {
		op, err := t.r.ReadByte()
		if err != nil {
			if err == io.EOF {
				return io.EOF
			}
			return fmt.Errorf("trace: reading op: %w", err)
		}
		if op > byte(KindDelete) {
			return fmt.Errorf("trace: unknown op %d", op)
		}
		req.Op = Kind(op)
	}
	var hdr [3]byte
	if _, err := io.ReadFull(t.r, hdr[:1]); err != nil {
		if err == io.EOF && !t.v1 {
			return fmt.Errorf("trace: truncated record header: %w", err)
		}
		return err
	}
	if _, err := io.ReadFull(t.r, hdr[1:]); err != nil {
		return fmt.Errorf("trace: truncated record header: %w", err)
	}
	kl := int(hdr[0])
	vl := int(binary.LittleEndian.Uint16(hdr[1:]))
	// v2 enforces the only-deletes-are-empty rule; v1 predates it and its
	// archived records must keep reading exactly as they always did.
	if vl == 0 && req.Op != KindDelete && !t.v1 {
		return fmt.Errorf("trace: %v record with empty value", req.Op)
	}
	if cap(req.Key) < kl {
		req.Key = make([]byte, kl)
	}
	req.Key = req.Key[:kl]
	if cap(req.Value) < vl {
		req.Value = make([]byte, vl)
	}
	req.Value = req.Value[:vl]
	if _, err := io.ReadFull(t.r, req.Key); err != nil {
		return fmt.Errorf("trace: truncated key: %w", err)
	}
	if _, err := io.ReadFull(t.r, req.Value); err != nil {
		return fmt.Errorf("trace: truncated value: %w", err)
	}
	t.n++
	return nil
}

// Next implements Stream, wrapping to the start of the file at EOF.
func (t *Reader) Next(req *Request) {
	if err := t.Read(req); err == nil {
		return
	} else if err != io.EOF {
		panic(fmt.Sprintf("trace: replay failed: %v", err))
	}
	if _, err := t.src.Seek(int64(len(fileMagic)), io.SeekStart); err != nil {
		panic(fmt.Sprintf("trace: rewind failed: %v", err))
	}
	t.r.Reset(t.src)
	if err := t.Read(req); err != nil {
		panic(fmt.Sprintf("trace: replay after rewind failed: %v", err))
	}
}

// Count returns the number of records read so far.
func (t *Reader) Count() uint64 { return t.n }
