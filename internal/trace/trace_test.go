package trace

import (
	"bytes"
	"io"
	"math"
	"testing"
)

func TestZipfDeterministic(t *testing.T) {
	cfg := Clusters[0].Scaled(1 << 20)
	a, b := NewZipf(cfg), NewZipf(cfg)
	var ra, rb Request
	for i := 0; i < 1000; i++ {
		a.Next(&ra)
		b.Next(&rb)
		if string(ra.Key) != string(rb.Key) || string(ra.Value) != string(rb.Value) {
			t.Fatalf("streams diverged at op %d", i)
		}
	}
}

func TestZipfKeySizeAndSkew(t *testing.T) {
	cfg := Clusters[2].Scaled(1 << 22) // cluster34, α≈1.14
	s := NewZipf(cfg)
	var req Request
	counts := map[string]int{}
	n := 50000
	for i := 0; i < n; i++ {
		s.Next(&req)
		if len(req.Key) != cfg.KeySize {
			t.Fatalf("key size %d, want %d", len(req.Key), cfg.KeySize)
		}
		counts[string(req.Key)]++
	}
	// Zipfian skew: the most popular key should take a clearly
	// disproportionate share of a uniform draw.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	uniform := float64(n) / float64(cfg.Keys)
	if float64(max) < 20*uniform {
		t.Fatalf("top key count %d shows no skew (uniform share %.1f)", max, uniform)
	}
}

func TestValueDeterministicPerKey(t *testing.T) {
	cfg := Clusters[1].Scaled(1 << 20)
	s := NewZipf(cfg)
	var req Request
	values := map[string]string{}
	for i := 0; i < 20000; i++ {
		s.Next(&req)
		k := string(req.Key)
		if prev, ok := values[k]; ok {
			if prev != string(req.Value) {
				t.Fatalf("key %q produced two different values", k)
			}
		} else {
			values[k] = string(req.Value)
		}
	}
}

func TestValueSizeDistribution(t *testing.T) {
	mean, std := 250, 200
	var sum, sumsq float64
	n := 100000
	for i := 0; i < n; i++ {
		sz := float64(ValueSize(uint64(i), mean, std, 1, 4096))
		sum += sz
		sumsq += sz * sz
	}
	m := sum / float64(n)
	sd := math.Sqrt(sumsq/float64(n) - m*m)
	// Clamping at 1 truncates the lower tail, pushing the mean up a bit.
	if m < float64(mean)*0.9 || m > float64(mean)*1.25 {
		t.Fatalf("mean value size %.1f, want ≈%d", m, mean)
	}
	if sd < float64(std)*0.6 || sd > float64(std)*1.3 {
		t.Fatalf("std %.1f, want ≈%d", sd, std)
	}
}

func TestVerifyValue(t *testing.T) {
	var req Request
	FillValue(&req, 100, 42)
	if !VerifyValue(req.Value, 42) {
		t.Fatal("verification of correct payload failed")
	}
	req.Value[50] ^= 1
	if VerifyValue(req.Value, 42) {
		t.Fatal("verification accepted corrupted payload")
	}
}

func TestScaledWSS(t *testing.T) {
	cfg := Clusters[0].Scaled(10 << 20)
	got := cfg.WSSBytes()
	if got < 9<<20 || got > 11<<20 {
		t.Fatalf("scaled WSS = %d, want ≈10MiB", got)
	}
}

func TestClusterByName(t *testing.T) {
	c, err := ClusterByName("cluster52")
	if err != nil || c.KeySize != 20 {
		t.Fatalf("lookup failed: %+v %v", c, err)
	}
	if _, err := ClusterByName("nope"); err == nil {
		t.Fatal("unknown cluster should error")
	}
}

func TestTable5Characteristics(t *testing.T) {
	// The four clusters must preserve Table 5's key sizes and α values.
	wantKey := map[string]int{"cluster14": 96, "cluster29": 36, "cluster34": 33, "cluster52": 20}
	wantAlpha := map[string]float64{"cluster14": 1.2959, "cluster29": 1.2323, "cluster34": 1.1401, "cluster52": 1.2117}
	for _, c := range Clusters {
		if c.KeySize != wantKey[c.Name] {
			t.Fatalf("%s key size %d", c.Name, c.KeySize)
		}
		if c.ZipfAlpha != wantAlpha[c.Name] {
			t.Fatalf("%s alpha %v", c.Name, c.ZipfAlpha)
		}
	}
	// Average object size across clusters should be near the paper's 246 B.
	var sum int
	for _, c := range Clusters {
		sum += c.ObjectMean()
	}
	avg := sum / len(Clusters)
	if avg < 220 || avg > 320 {
		t.Fatalf("average object size %d B, want near 246 B", avg)
	}
}

func TestInterleavedMixesClusters(t *testing.T) {
	streams := make([]Stream, 2)
	streams[0] = NewZipf(ClusterConfig{Name: "a", KeySize: 20, ValueMean: 100, Keys: 100, ZipfAlpha: 1.2, Seed: 1})
	streams[1] = NewZipf(ClusterConfig{Name: "b", KeySize: 40, ValueMean: 100, Keys: 100, ZipfAlpha: 1.2, Seed: 2})
	m, err := NewInterleaved(streams, []float64{1, 3}, 9)
	if err != nil {
		t.Fatal(err)
	}
	var req Request
	n20, n40 := 0, 0
	for i := 0; i < 10000; i++ {
		m.Next(&req)
		switch len(req.Key) {
		case 20:
			n20++
		case 40:
			n40++
		default:
			t.Fatalf("unexpected key size %d", len(req.Key))
		}
	}
	ratio := float64(n40) / float64(n20)
	if ratio < 2.4 || ratio > 3.6 {
		t.Fatalf("weight ratio = %v, want ≈3", ratio)
	}
}

func TestInterleavedValidation(t *testing.T) {
	if _, err := NewInterleaved(nil, nil, 1); err == nil {
		t.Fatal("empty interleave should error")
	}
	s := []Stream{NewSyntheticInserts(16, 100, 10, 1)}
	if _, err := NewInterleaved(s, []float64{-1}, 1); err == nil {
		t.Fatal("negative weight should error")
	}
}

func TestSyntheticInsertsUniqueKeys(t *testing.T) {
	s := NewSyntheticInserts(16, 250, 200, 5)
	var req Request
	seen := map[string]bool{}
	for i := 0; i < 20000; i++ {
		s.Next(&req)
		k := string(req.Key)
		if seen[k] {
			t.Fatalf("duplicate key at op %d", i)
		}
		seen[k] = true
	}
}

func TestFileRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	src := NewZipf(Clusters[3].Scaled(1 << 18))
	var req Request
	var want []Request
	for i := 0; i < 500; i++ {
		src.Next(&req)
		want = append(want, Request{
			Key:   append([]byte(nil), req.Key...),
			Value: append([]byte(nil), req.Value...),
		})
		if err := w.Write(&req); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 500 {
		t.Fatalf("wrote %d records", w.Count())
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, wr := range want {
		if err := r.Read(&req); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if string(req.Key) != string(wr.Key) || string(req.Value) != string(wr.Value) {
			t.Fatalf("record %d differs", i)
		}
	}
	if err := r.Read(&req); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestFileReaderWraps(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	var req Request
	req.Key = []byte("0123456789abcdef")
	req.Value = []byte("v")
	w.Write(&req)
	w.Flush()
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		var got Request
		r.Next(&got)
		if string(got.Key) != "0123456789abcdef" {
			t.Fatalf("wrap iteration %d wrong", i)
		}
	}
}

func TestFileRejectsBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTATRACE..."))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// TestFileRoundTripMixedOps pins the v2 format: the op kind of a mixed
// GET/SET/DELETE trace survives capture and replay.
func TestFileRoundTripMixedOps(t *testing.T) {
	inner := NewZipf(Clusters[0].Scaled(1 << 18))
	src, err := NewMixed(inner, 0.3, 0.2, 9)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := Materialize(src, 500)
	for i := range want {
		if err := w.Write(&want[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[Kind]int{}
	var req Request
	for i, wr := range want {
		if err := r.Read(&req); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if req.Op != wr.Op {
			t.Fatalf("record %d: op %v, want %v", i, req.Op, wr.Op)
		}
		if string(req.Key) != string(wr.Key) || string(req.Value) != string(wr.Value) {
			t.Fatalf("record %d differs", i)
		}
		kinds[req.Op]++
	}
	if kinds[KindGet] == 0 || kinds[KindSet] == 0 || kinds[KindDelete] == 0 {
		t.Fatalf("degenerate op mix: %v", kinds)
	}
}

// TestFileWriterValidatesRecords pins capture-time validation: op range
// and the only-deletes-are-empty rule fail at Write, not at replay of an
// archived file.
func TestFileWriterValidatesRecords(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	bad := Request{Op: Kind(7), Key: []byte("0123456789abcdef"), Value: []byte("v")}
	if err := w.Write(&bad); err == nil {
		t.Fatal("unknown op accepted")
	}
	empty := Request{Op: KindGet, Key: []byte("0123456789abcdef")}
	if err := w.Write(&empty); err == nil {
		t.Fatal("empty-value GET accepted")
	}
	del := Request{Op: KindDelete, Key: []byte("0123456789abcdef")}
	if err := w.Write(&del); err != nil {
		t.Fatalf("empty-value DELETE rejected: %v", err)
	}
}

// TestFileReadsV1 keeps the op-less legacy format readable: every record
// replays as a GET.
func TestFileReadsV1(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("NEMOTRC1")
	key := []byte("0123456789abcdef")
	buf.WriteByte(byte(len(key)))
	buf.Write([]byte{1, 0}) // valLen = 1, little endian
	buf.Write(key)
	buf.WriteByte('v')
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var req Request
	req.Op = KindDelete // stale buffer state must be overwritten
	if err := r.Read(&req); err != nil {
		t.Fatal(err)
	}
	if req.Op != KindGet || string(req.Key) != string(key) || string(req.Value) != "v" {
		t.Fatalf("v1 record misread: op=%v key=%q value=%q", req.Op, req.Key, req.Value)
	}
	if err := r.Read(&req); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}

	// v1 predates the only-deletes-are-empty rule: an archived record with
	// an empty value must still read (as a GET), not error.
	var old bytes.Buffer
	old.WriteString("NEMOTRC1")
	old.WriteByte(byte(len(key)))
	old.Write([]byte{0, 0}) // valLen = 0
	old.Write(key)
	r2, err := NewReader(bytes.NewReader(old.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.Read(&req); err != nil {
		t.Fatalf("v1 empty-value record rejected: %v", err)
	}
	if req.Op != KindGet || len(req.Value) != 0 {
		t.Fatalf("v1 empty-value record misread: op=%v value=%q", req.Op, req.Value)
	}
}

func TestDefaultInterleaved(t *testing.T) {
	m, err := DefaultInterleaved(1<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	var req Request
	sizes := map[int]bool{}
	for i := 0; i < 5000; i++ {
		m.Next(&req)
		sizes[len(req.Key)] = true
	}
	if len(sizes) != 4 {
		t.Fatalf("expected all 4 cluster key sizes, got %v", sizes)
	}
}
