package trace

// Materialize draws n requests from s into freshly allocated buffers. Stream
// implementations reuse their Request buffers across Next calls, so a
// materialized trace is what lets many goroutines replay the same request
// sequence concurrently: every Request owns its Key and Value, and the slice
// is immutable by convention once built.
//
// Generation stays single-threaded and deterministic (the stream's PRNG
// state advances exactly as in a sequential replay); only the consumption is
// parallel.
func Materialize(s Stream, n int) []Request {
	reqs := make([]Request, n)
	var scratch Request
	for i := range reqs {
		s.Next(&scratch)
		reqs[i] = Request{
			Op:    scratch.Op,
			Key:   append([]byte(nil), scratch.Key...),
			Value: append([]byte(nil), scratch.Value...),
		}
	}
	return reqs
}
