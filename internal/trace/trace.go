// Package trace generates the workloads of the paper's evaluation: Zipfian
// key-value request streams parameterized like the four Twitter cache
// clusters of Table 5, the normal-size synthetic insert stream of Figure 8,
// and a proportional interleave of multiple clusters over disjoint key
// spaces (§5.1 "Benchmarks").
//
// Production Twitter traces are not redistributable, so this package is the
// documented substitution: the evaluation depends on access skew (Zipf α),
// object sizes, and working-set pressure, which are exactly the parameters
// the paper reports and this generator reproduces deterministically.
package trace

import (
	"fmt"
	"math"
	"math/rand"

	"nemo/internal/hashing"
)

// Kind discriminates the operation types of a mixed workload.
type Kind uint8

const (
	// KindGet is a lookup whose demand-fill value (on miss) is Value. The
	// zero value, so plain GET streams need no initialization.
	KindGet Kind = iota
	// KindSet is an explicit write of Value (no preceding lookup).
	KindSet
	// KindDelete invalidates Key; Value is empty.
	KindDelete
)

// String returns the conventional wire name of the kind.
func (k Kind) String() string {
	switch k {
	case KindGet:
		return "GET"
	case KindSet:
		return "SET"
	case KindDelete:
		return "DELETE"
	}
	return "UNKNOWN"
}

// Request is one cache operation: by default a GET for Key whose demand-fill
// value (on miss) is Value; mixed streams (see Mixed) also emit explicit SET
// and DELETE operations. Buffers are owned by the stream and reused across
// calls.
type Request struct {
	Op    Kind
	Key   []byte
	Value []byte
}

// Stream produces an endless request sequence.
type Stream interface {
	// Next fills req with the next request, reusing its buffers.
	Next(req *Request)
}

// ClusterConfig describes one Twitter-like cluster (Table 5, after the
// paper's 2×/3× object-size downscaling of clusters 14 and 29).
type ClusterConfig struct {
	Name      string
	KeySize   int     // bytes per key
	ValueMean int     // mean value size in bytes
	ValueStd  int     // std-dev of value size (clamped normal)
	Keys      uint64  // key-space size (working set ≈ Keys × object size)
	ZipfAlpha float64 // Zipf skew; must be > 1 for math/rand's sampler
	Seed      int64
}

// ObjectMean returns the mean object (key+value) size in bytes.
func (c ClusterConfig) ObjectMean() int { return c.KeySize + c.ValueMean }

// WSSBytes returns the approximate working-set size in bytes.
func (c ClusterConfig) WSSBytes() int64 { return int64(c.Keys) * int64(c.ObjectMean()) }

// Clusters are the four Table 5 traces with value sizes downscaled per §5.1
// (cluster 14 by 2×, cluster 29 by 3×; 34 and 52 unchanged), giving the
// paper's ≈246 B average object. Key-space sizes here are placeholders that
// Scaled adjusts to the experiment's cache size.
var Clusters = []ClusterConfig{
	{Name: "cluster14", KeySize: 96, ValueMean: 207, ValueStd: 100, Keys: 1 << 20, ZipfAlpha: 1.2959, Seed: 14},
	{Name: "cluster29", KeySize: 36, ValueMean: 266, ValueStd: 120, Keys: 1 << 20, ZipfAlpha: 1.2323, Seed: 29},
	{Name: "cluster34", KeySize: 33, ValueMean: 322, ValueStd: 150, Keys: 1 << 20, ZipfAlpha: 1.1401, Seed: 34},
	{Name: "cluster52", KeySize: 20, ValueMean: 273, ValueStd: 130, Keys: 1 << 20, ZipfAlpha: 1.2117, Seed: 52},
}

// ClusterByName returns the named cluster configuration.
func ClusterByName(name string) (ClusterConfig, error) {
	for _, c := range Clusters {
		if c.Name == name {
			return c, nil
		}
	}
	return ClusterConfig{}, fmt.Errorf("trace: unknown cluster %q", name)
}

// Scaled returns a copy of c with the key space resized so the cluster's
// working set is approximately wssBytes.
func (c ClusterConfig) Scaled(wssBytes int64) ClusterConfig {
	keys := uint64(wssBytes / int64(c.ObjectMean()))
	if keys < 16 {
		keys = 16
	}
	c.Keys = keys
	return c
}

// ZipfStream generates GET requests with Zipf-distributed key popularity.
// Key identities are decorrelated from popularity rank by a splitmix
// permutation so set placement is not rank-correlated.
type ZipfStream struct {
	cfg  ClusterConfig
	zipf *rand.Zipf
	salt uint64
}

// NewZipf returns a deterministic stream for the cluster configuration.
func NewZipf(cfg ClusterConfig) *ZipfStream {
	if cfg.ZipfAlpha <= 1 {
		cfg.ZipfAlpha = 1.0001
	}
	if cfg.Keys < 1 {
		cfg.Keys = 1
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	return &ZipfStream{
		cfg:  cfg,
		zipf: rand.NewZipf(r, cfg.ZipfAlpha, 1, cfg.Keys-1),
		salt: hashing.SplitMix64(uint64(cfg.Seed) ^ 0x746f7274696c6c61),
	}
}

// Config returns the stream's cluster configuration.
func (z *ZipfStream) Config() ClusterConfig { return z.cfg }

// Next fills req with the next request.
func (z *ZipfStream) Next(req *Request) {
	req.Op = KindGet
	rank := z.zipf.Uint64()
	id := hashing.SplitMix64(rank ^ z.salt)
	FillKey(req, z.cfg.KeySize, id, z.salt)
	size := ValueSize(id, z.cfg.ValueMean, z.cfg.ValueStd, 1, maxValue)
	FillValue(req, size, id)
}

const maxValue = 1 << 11 // values are clamped well under a 4 KB set

// FillKey writes a deterministic key of exactly size bytes for object id
// into req.Key (reusing its buffer): 16 hex digits of id then salt-derived
// filler, so keys are unique per id and reproducible.
func FillKey(req *Request, size int, id, salt uint64) {
	if size < 16 {
		size = 16
	}
	if cap(req.Key) < size {
		req.Key = make([]byte, size)
	}
	req.Key = req.Key[:size]
	const hexdigits = "0123456789abcdef"
	v := id
	for i := 0; i < 16; i++ {
		req.Key[i] = hexdigits[v&0xf]
		v >>= 4
	}
	fill := hashing.SplitMix64(id ^ salt)
	for i := 16; i < size; i++ {
		req.Key[i] = 'a' + byte(fill>>(uint(i%8)*8))%26
	}
}

// ValueSize returns a deterministic clamped-normal size for object id.
func ValueSize(id uint64, mean, std, min, max int) int {
	if std <= 0 {
		return clampInt(mean, min, max)
	}
	// Box–Muller from two deterministic uniforms in (0,1).
	u1 := float64(hashing.Derive(id, 11)%((1<<53)-1)+1) / float64(uint64(1)<<53)
	u2 := float64(hashing.Derive(id, 12)%(1<<53)) / float64(uint64(1)<<53)
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return clampInt(mean+int(z*float64(std)), min, max)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// FillValue writes a deterministic payload of exactly size bytes derived
// from id into req.Value (reusing its buffer). Payload bytes are verifiable:
// VerifyValue checks them.
func FillValue(req *Request, size int, id uint64) {
	if cap(req.Value) < size {
		req.Value = make([]byte, size)
	}
	req.Value = req.Value[:size]
	fillPayload(req.Value, id)
}

func fillPayload(dst []byte, id uint64) {
	state := hashing.SplitMix64(id ^ 0x76616c7565736565)
	i := 0
	for ; i+8 <= len(dst); i += 8 {
		state = hashing.SplitMix64(state)
		dst[i] = byte(state)
		dst[i+1] = byte(state >> 8)
		dst[i+2] = byte(state >> 16)
		dst[i+3] = byte(state >> 24)
		dst[i+4] = byte(state >> 32)
		dst[i+5] = byte(state >> 40)
		dst[i+6] = byte(state >> 48)
		dst[i+7] = byte(state >> 56)
	}
	state = hashing.SplitMix64(state)
	for j := 0; i < len(dst); i, j = i+1, j+8 {
		dst[i] = byte(state >> uint(j))
	}
}

// VerifyValue reports whether value matches the deterministic payload for
// id; integrity tests use this to prove engines return unmangled bytes.
func VerifyValue(value []byte, id uint64) bool {
	tmp := make([]byte, len(value))
	fillPayload(tmp, id)
	return string(tmp) == string(value)
}

// Interleaved merges several streams, drawing from each with probability
// proportional to its weight (the paper interleaves the four clusters
// proportionally to avoid single-workload phases).
type Interleaved struct {
	streams []Stream
	cum     []float64
	rng     *rand.Rand
}

// NewInterleaved builds a proportional interleave. weights must be positive
// and match streams in length.
func NewInterleaved(streams []Stream, weights []float64, seed int64) (*Interleaved, error) {
	if len(streams) == 0 || len(streams) != len(weights) {
		return nil, fmt.Errorf("trace: need matching non-empty streams and weights")
	}
	var total float64
	cum := make([]float64, len(weights))
	for i, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("trace: weight %d is not positive", i)
		}
		total += w
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Interleaved{streams: streams, cum: cum, rng: rand.New(rand.NewSource(seed))}, nil
}

// Next draws a stream by weight and forwards to it.
func (m *Interleaved) Next(req *Request) {
	u := m.rng.Float64()
	for i, c := range m.cum {
		if u <= c {
			m.streams[i].Next(req)
			return
		}
	}
	m.streams[len(m.streams)-1].Next(req)
}

// Mixed rewrites a fraction of an inner stream's requests into explicit SET
// and DELETE operations, turning a pure GET trace into the mixed workload a
// production cache service actually receives (writes from the backing store,
// invalidations from upstream mutations). Key popularity and sizes are the
// inner stream's; only the op kind changes, drawn deterministically per
// request, so a Mixed stream is as reproducible as its inner stream.
type Mixed struct {
	inner  Stream
	setCut float64 // P(op = SET)
	delCut float64 // setCut + P(op = DELETE)
	rng    *rand.Rand
}

// NewMixed wraps inner so each request is a SET with probability setFrac, a
// DELETE with probability delFrac, and a GET otherwise.
func NewMixed(inner Stream, setFrac, delFrac float64, seed int64) (*Mixed, error) {
	if setFrac < 0 || delFrac < 0 || setFrac+delFrac > 1 {
		return nil, fmt.Errorf("trace: op fractions set=%v del=%v invalid", setFrac, delFrac)
	}
	return &Mixed{
		inner:  inner,
		setCut: setFrac,
		delCut: setFrac + delFrac,
		rng:    rand.New(rand.NewSource(seed)),
	}, nil
}

// Next draws the inner request and stamps its op kind.
func (m *Mixed) Next(req *Request) {
	m.inner.Next(req)
	switch u := m.rng.Float64(); {
	case u < m.setCut:
		req.Op = KindSet
	case u < m.delCut:
		req.Op = KindDelete
		req.Value = req.Value[:0] // deletions carry no payload
	default:
		req.Op = KindGet
	}
}

// SyntheticInserts is the Figure 8 workload: a stream of unique keys with
// normal-distributed object sizes (mean 250 B, std 200 B in the paper).
type SyntheticInserts struct {
	KeySize   int
	ValueMean int
	ValueStd  int
	next      uint64
	salt      uint64
}

// NewSyntheticInserts returns the synthetic insert stream.
func NewSyntheticInserts(keySize, valueMean, valueStd int, seed int64) *SyntheticInserts {
	return &SyntheticInserts{
		KeySize:   keySize,
		ValueMean: valueMean,
		ValueStd:  valueStd,
		salt:      hashing.SplitMix64(uint64(seed) ^ 0x73796e7468657469),
	}
}

// Next produces the next unique-key insert.
func (s *SyntheticInserts) Next(req *Request) {
	req.Op = KindGet
	s.next++
	id := hashing.SplitMix64(s.next ^ s.salt)
	FillKey(req, s.KeySize, id, s.salt)
	size := ValueSize(id, s.ValueMean, s.ValueStd, 1, maxValue)
	FillValue(req, size, id)
}

// DefaultInterleaved builds the paper's default benchmark: the four Table 5
// clusters, each scaled to wssPerCluster bytes, interleaved equally.
func DefaultInterleaved(wssPerCluster int64, seed int64) (*Interleaved, error) {
	streams := make([]Stream, len(Clusters))
	weights := make([]float64, len(Clusters))
	for i, c := range Clusters {
		c.Seed += seed * 1000003
		streams[i] = NewZipf(c.Scaled(wssPerCluster))
		weights[i] = 1
	}
	return NewInterleaved(streams, weights, seed)
}
