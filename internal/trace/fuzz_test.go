package trace_test

import (
	"bytes"
	"io"
	"testing"

	"nemo/internal/trace"
)

// traceFileBytes encodes reqs through the Writer (the only sanctioned
// producer of the format), returning the file image.
func traceFileBytes(t testing.TB, reqs []trace.Request) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		if err := w.Write(&reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadTrace fuzzes the trace file v1/v2 parser: corrupt magic, truncated
// record headers, mid-key and mid-value truncation, illegal op bytes, and
// v1/v2 confusion must all surface as errors from NewReader/Read — never a
// panic, never an invariant-violating Request. Well-formed prefixes must
// parse: every successfully read record obeys the format limits, and for v2
// images the parsed prefix round-trips bit-identically through the Writer.
func FuzzReadTrace(f *testing.F) {
	valid := traceFileBytes(f, []trace.Request{
		{Op: trace.KindGet, Key: []byte("key-0001"), Value: []byte("value-one")},
		{Op: trace.KindSet, Key: []byte("key-0002"), Value: bytes.Repeat([]byte("v"), 300)},
		{Op: trace.KindDelete, Key: []byte("key-0001")},
		{Op: trace.KindGet, Key: bytes.Repeat([]byte("k"), 255), Value: bytes.Repeat([]byte("w"), 65535)},
	})
	f.Add(valid)                                       // fully well-formed v2
	f.Add(valid[:len(valid)-3])                        // truncated mid-value
	f.Add(valid[:9])                                   // truncated record header
	f.Add(append([]byte("NEMOTRC1"), valid[8:]...))    // v2 records read as v1
	f.Add([]byte("NEMOTRC9\x00\x01\x00\x00a"))         // bad magic
	f.Add([]byte("NEMOTRC2\x07\x08\x10\x00keykeykey")) // illegal op byte 7
	f.Add([]byte("NEMOTRC2\x00\x04\x00\x00keys"))      // v2 GET with empty value
	f.Add([]byte("NEMOTRC1\x04\x03\x00keyabc"))        // minimal v1 record
	f.Add([]byte{})                                    // empty input

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := trace.NewReader(bytes.NewReader(data))
		if err != nil {
			return // rejected at the header: that is the contract
		}
		v2 := bytes.HasPrefix(data, []byte("NEMOTRC2"))
		var parsed []trace.Request
		for {
			var req trace.Request
			err := r.Read(&req)
			if err == io.EOF {
				break
			}
			if err != nil {
				return // malformed tail: error, not panic — also the contract
			}
			if req.Op > trace.KindDelete {
				t.Fatalf("parser produced unknown op %d", req.Op)
			}
			if len(req.Key) > 255 || len(req.Value) > 65535 {
				t.Fatalf("parser exceeded format limits: key %d, value %d", len(req.Key), len(req.Value))
			}
			if v2 && len(req.Value) == 0 && req.Op != trace.KindDelete {
				t.Fatalf("parser let an empty-value %v through on v2", req.Op)
			}
			if v2 {
				parsed = append(parsed, req)
			}
		}
		if uint64(len(parsed)) != r.Count() && v2 {
			t.Fatalf("Count() = %d after %d records", r.Count(), len(parsed))
		}
		// A fully parsed v2 image must round-trip bit-identically: records
		// with empty values are exactly the deletions, which the Writer
		// re-accepts, so re-encoding reproduces the input bytes.
		if v2 && len(parsed) > 0 {
			if got := traceFileBytes(t, parsed); !bytes.Equal(got, data) {
				t.Fatalf("v2 round-trip diverged:\nin:  %x\nout: %x", data, got)
			}
		}
	})
}
