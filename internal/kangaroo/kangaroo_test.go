package kangaroo

import (
	"fmt"
	"testing"

	"nemo/internal/flashsim"
	"nemo/internal/trace"
)

func mkCache(t *testing.T, mutate func(*Config)) *Cache {
	t.Helper()
	dev := flashsim.New(flashsim.Config{PageSize: 512, PagesPerZone: 8, Zones: 32})
	cfg := Config{Device: dev, LogRatio: 0.1, OPRatio: 0.1, TargetObjsPerSet: 8}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func kv(i int) (k, v []byte) {
	return []byte(fmt.Sprintf("key-%08d", i)), []byte(fmt.Sprintf("val-%08d-xxxxxxxxxxxxxxxx", i))
}

func TestSetGetThroughLog(t *testing.T) {
	c := mkCache(t, nil)
	for i := 0; i < 50; i++ {
		k, v := kv(i)
		if err := c.Set(k, v); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		k, v := kv(i)
		got, hit := c.Get(k)
		if !hit || string(got) != string(v) {
			t.Fatalf("object %d missing from log tier", i)
		}
	}
}

func TestMigrationToHSet(t *testing.T) {
	c := mkCache(t, nil)
	// Insert enough to fill and cycle the log several times.
	n := 8000
	for i := 0; i < n; i++ {
		k, v := kv(i)
		if err := c.Set(k, v); err != nil {
			t.Fatal(err)
		}
	}
	mig := c.Migration()
	if mig.SetWrites == 0 {
		t.Fatal("log filled but no set writes happened")
	}
	if mig.PassiveCDF.Total() == 0 {
		t.Fatal("migration CDF empty")
	}
	// Recently inserted objects should be found (log or set tier).
	found := 0
	for i := n - 500; i < n; i++ {
		k, _ := kv(i)
		if _, hit := c.Get(k); hit {
			found++
		}
	}
	if found < 400 {
		t.Fatalf("only %d/500 recent objects locatable after migration", found)
	}
}

func TestWAExceedsFairShare(t *testing.T) {
	c := mkCache(t, nil)
	s := trace.NewSyntheticInserts(16, 40, 10, 3)
	var req trace.Request
	for i := 0; i < 20000; i++ {
		s.Next(&req)
		if err := c.Set(req.Key, req.Value); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	// Hierarchical migration of tiny objects amplifies: each set write
	// carries few objects relative to the page size (§3).
	if st.ALWA() < 2 {
		t.Fatalf("Kangaroo ALWA = %v, expected substantial amplification", st.ALWA())
	}
	if st.TotalWA() < st.ALWA() {
		t.Fatal("total WA must include device GC")
	}
}

func TestMeanBatchMatchesTheory(t *testing.T) {
	// Observation 1 / Eq. 5: E(L_i) = (w/s · N_Log) / N_Set for Kangaroo's
	// full hash range. With small sets this is a loose check: the mean
	// migration batch should be within 3× of the theoretical list length.
	c := mkCache(t, nil)
	s := trace.NewSyntheticInserts(16, 40, 0, 3)
	var req trace.Request
	for i := 0; i < 30000; i++ {
		s.Next(&req)
		if err := c.Set(req.Key, req.Value); err != nil {
			t.Fatal(err)
		}
	}
	mig := c.Migration()
	mean := mig.PassiveCDF.Mean()
	objsPerPage := 512.0 / float64(40+16+11)
	theory := objsPerPage * float64(c.log.PageCapacity()) / float64(c.NumSets())
	if mean < theory/3 || mean > theory*3 {
		t.Fatalf("mean batch %v vs theory %v: off by more than 3×", mean, theory)
	}
}

func TestAdmitThresholdDrops(t *testing.T) {
	c := mkCache(t, func(cfg *Config) { cfg.AdmitThreshold = 100 })
	for i := 0; i < 8000; i++ {
		k, v := kv(i)
		if err := c.Set(k, v); err != nil {
			t.Fatal(err)
		}
	}
	mig := c.Migration()
	if mig.Dropped == 0 {
		t.Fatal("an absurd admission threshold dropped nothing")
	}
}

func TestDeviceTooSmall(t *testing.T) {
	dev := flashsim.New(flashsim.Config{PageSize: 512, PagesPerZone: 8, Zones: 4})
	if _, err := New(Config{Device: dev}); err == nil {
		t.Fatal("tiny device accepted")
	}
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil device accepted")
	}
}
