// Package kangaroo implements the Kangaroo hierarchical baseline ("KG" in
// the paper): an HLog front tier feeding a set-associative HSet back tier
// over a conventional (FTL-backed) SSD.
//
// Log-to-set migration and device garbage collection are independent
// (Case 3.1, §3.1): migration performs read-modify-writes on set pages, and
// the FTL separately relocates valid pages, so the two amplifications
// multiply — which is why the paper measures KG's total WA at 55.6× versus
// FairyWREN's 15.2×.
package kangaroo

import (
	"fmt"
	"sync"
	"time"

	"nemo/internal/bloom"
	"nemo/internal/cachelib"
	"nemo/internal/device"
	"nemo/internal/ftl"
	"nemo/internal/hashing"
	"nemo/internal/hlog"
	"nemo/internal/metrics"
	"nemo/internal/setblock"
)

// Config configures the Kangaroo engine.
type Config struct {
	Device device.Device
	// ZoneBase is the first device zone the engine owns; Zones is how many
	// (0 means all zones from ZoneBase). A sharded deployment (NewSharded)
	// gives each shard its own disjoint range of one device.
	ZoneBase int
	Zones    int
	// LogRatio is the fraction of zones given to HLog (default 0.05,
	// Table 4's "Log 5% of cache size").
	LogRatio float64
	// OPRatio is the host-visible HSet over-provisioning ratio
	// (default 0.05, Table 4).
	OPRatio float64
	// InternalOPRatio models the conventional SSD's built-in
	// over-provisioning on top of the host-visible OP (default 0.07, a
	// typical 7% for enterprise drives). Kangaroo runs on a block-interface
	// SSD, so its effective GC headroom is the sum of both; FairyWREN's
	// host FTL has no such hidden reserve.
	InternalOPRatio float64
	// TargetObjsPerSet sizes the in-memory per-set Bloom filters.
	TargetObjsPerSet int
	// BloomBitsPerObj is the per-set filter budget (default 4).
	BloomBitsPerObj float64
	// AdmitThreshold drops migration batches smaller than this many
	// objects (Kangaroo's minimum-admission policy; default 1 = admit all).
	AdmitThreshold int
}

// Cache is the Kangaroo engine. Safe for concurrent use.
type Cache struct {
	cfg      Config
	dev      device.Device
	log      *hlog.Log
	ftl      *ftl.FTL
	pageSize int
	numSets  int
	filters  []*bloom.Filter
	fpr      float64

	mu      sync.Mutex
	scratch []byte
	stats   cachelib.Stats
	mig     MigrationStats
	hist    metrics.Histogram
}

// MigrationStats instruments log-to-set migration for Figures 4–6.
type MigrationStats struct {
	// PassiveCDF records the number of newly written (log) objects per
	// set write. Kangaroo has only passive migration; device GC handles
	// relocation independently.
	PassiveCDF *metrics.IntCDF
	SetWrites  uint64
	LogWrites  uint64
	Dropped    uint64 // batches below the admission threshold
}

// New creates the engine.
func New(cfg Config) (*Cache, error) {
	if cfg.Device == nil {
		return nil, fmt.Errorf("kangaroo: nil device")
	}
	if cfg.LogRatio == 0 {
		cfg.LogRatio = 0.05
	}
	if cfg.OPRatio == 0 {
		cfg.OPRatio = 0.05
	}
	if cfg.InternalOPRatio == 0 {
		cfg.InternalOPRatio = 0.07
	}
	if cfg.TargetObjsPerSet == 0 {
		cfg.TargetObjsPerSet = 40
	}
	if cfg.BloomBitsPerObj == 0 {
		cfg.BloomBitsPerObj = 4
	}
	if cfg.AdmitThreshold < 1 {
		cfg.AdmitThreshold = 1
	}
	if cfg.Zones == 0 {
		cfg.Zones = cfg.Device.Zones() - cfg.ZoneBase
	}
	zones := cfg.Zones
	if cfg.ZoneBase < 0 || zones < 1 || cfg.ZoneBase+zones > cfg.Device.Zones() {
		return nil, fmt.Errorf("kangaroo: invalid zone range base=%d zones=%d", cfg.ZoneBase, zones)
	}
	logZones := int(cfg.LogRatio * float64(zones))
	if logZones < 2 {
		logZones = 2
	}
	setZones := zones - logZones
	if setZones < 4 {
		return nil, fmt.Errorf("kangaroo: zone range too small (%d zones)", zones)
	}
	log, err := hlog.New(cfg.Device, cfg.ZoneBase, logZones)
	if err != nil {
		return nil, err
	}
	f, err := ftl.New(cfg.Device, cfg.ZoneBase+logZones, setZones, ftl.Config{
		OPRatio: cfg.OPRatio + cfg.InternalOPRatio,
	})
	if err != nil {
		return nil, err
	}
	c := &Cache{
		cfg:      cfg,
		dev:      cfg.Device,
		log:      log,
		ftl:      f,
		pageSize: cfg.Device.PageSize(),
		numSets:  f.LogicalPages(),
		filters:  make([]*bloom.Filter, f.LogicalPages()),
		scratch:  make([]byte, cfg.Device.PageSize()),
		mig:      MigrationStats{PassiveCDF: metrics.NewIntCDF(10)},
	}
	c.fpr = 1.0
	for i := 0; i < int(cfg.BloomBitsPerObj/1.4427+0.5); i++ {
		c.fpr /= 2
	}
	if c.fpr >= 1 {
		c.fpr = 0.5
	}
	return c, nil
}

// Name implements cachelib.Engine.
func (c *Cache) Name() string { return "KG" }

// Kangaroo stays a plain Engine; the harness upgrades it to the Engine v2
// surface (batching, deletes, async) via cachelib.Adapt so comparisons
// against Nemo's native v2 implementation run unmodified.
var _ cachelib.Engine = (*Cache)(nil)

// Close implements cachelib.Engine.
func (c *Cache) Close() error { return nil }

// ReadLatency implements cachelib.Engine.
func (c *Cache) ReadLatency() *metrics.Histogram { return &c.hist }

// NumSets returns the HSet hash range (the full usable page count — twice
// FairyWREN's, since Kangaroo lacks hot/cold division, §5.2).
func (c *Cache) NumSets() int { return c.numSets }

// Migration returns a snapshot of migration instrumentation.
func (c *Cache) Migration() MigrationStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mig
}

// DLWA returns the HSet FTL's device-level write amplification.
func (c *Cache) DLWA() float64 { return c.ftl.Stats().DLWA() }

// Stats implements cachelib.Engine; DeviceBytesWritten folds in FTL GC, so
// TotalWA reproduces the paper's ALWA × GC product for Kangaroo.
func (c *Cache) Stats() cachelib.Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	fs := c.ftl.Stats()
	ls := c.log.Stats()
	s.FlashBytesWritten = (fs.HostPagesWritten + ls.PagesWritten) * uint64(c.pageSize)
	s.DeviceBytesWritten = (fs.HostPagesWritten + fs.GCPagesWritten + ls.PagesWritten) * uint64(c.pageSize)
	return s
}

// MemoryBitsPerObject models the in-memory cost: the HLog index (~48 bits
// per log object amortized over all cached objects, §2.3/Table 6) plus the
// per-set Bloom filters.
func (c *Cache) MemoryBitsPerObject() float64 {
	logShare := c.cfg.LogRatio * 48
	return logShare + c.cfg.BloomBitsPerObj
}

func (c *Cache) setOf(fp uint64) int32 {
	return int32(hashing.Derive(fp, 0) % uint64(c.numSets))
}

// Set appends the object to the HLog, migrating the oldest log zone into
// HSet when the log is full.
func (c *Cache) Set(key, value []byte) error {
	if setblock.EntrySize(len(key), len(value)) > c.pageSize-setblock.HeaderSize || len(key) > 255 {
		return fmt.Errorf("kangaroo: object exceeds set size")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	fp := hashing.Fingerprint(key)
	set := c.setOf(fp)
	for {
		err := c.log.Append(set, fp, key, value)
		if err == nil {
			break
		}
		if err != hlog.ErrFull {
			return err
		}
		if err := c.migrateOldestLogZone(); err != nil {
			return err
		}
	}
	c.stats.Sets++
	c.stats.LogicalBytes += uint64(len(key) + len(value))
	return nil
}

// migrateOldestLogZone performs passive migration (Case 2): every set with
// objects in the oldest log zone receives one read-modify-write carrying
// all log objects mapped to it.
func (c *Cache) migrateOldestLogZone() error {
	sets := c.log.OldestZoneSets()
	for _, set := range sets {
		objs, err := c.log.TakeSet(set)
		if err != nil {
			return err
		}
		if len(objs) == 0 {
			continue
		}
		if len(objs) < c.cfg.AdmitThreshold {
			c.mig.Dropped++
			c.stats.Evictions += uint64(len(objs))
			continue
		}
		if err := c.writeSet(set, objs); err != nil {
			return err
		}
	}
	dropped, err := c.log.ReleaseOldestZone()
	c.stats.Evictions += uint64(dropped)
	return err
}

// writeSet merges objs into the set page (evicting oldest residents when
// full) and rewrites it through the FTL.
func (c *Cache) writeSet(set int32, objs []hlog.Object) error {
	blk, err := c.readSet(set)
	if err != nil {
		return err
	}
	for _, o := range objs {
		for !blk.CanFit(len(o.Key), len(o.Value)) {
			if _, ok := blk.EvictOldest(); !ok {
				break
			}
			c.stats.Evictions++
		}
		blk.Insert(o.FP, o.Key, o.Value)
	}
	page := blk.AppendTo(c.scratch[:0])
	if _, err := c.ftl.Write(int(set), page); err != nil {
		return err
	}
	c.mig.SetWrites++
	c.mig.PassiveCDF.Add(len(objs))
	c.rebuildFilter(set, blk)
	return nil
}

func (c *Cache) readSet(set int32) (*setblock.Block, error) {
	_, mapped, err := c.ftl.Read(int(set), c.scratch)
	if err != nil {
		return nil, err
	}
	if !mapped {
		return setblock.New(c.pageSize), nil
	}
	c.stats.FlashReadOps++
	c.stats.FlashBytesRead += uint64(c.pageSize)
	return setblock.Parse(c.scratch, c.pageSize)
}

func (c *Cache) rebuildFilter(set int32, blk *setblock.Block) {
	f := c.filters[set]
	if f == nil {
		f = bloom.New(c.cfg.TargetObjsPerSet, c.fpr)
		c.filters[set] = f
	} else {
		f.Reset()
	}
	blk.Range(func(_ int, e setblock.Entry) bool {
		f.Add(e.FP)
		return true
	})
}

// Get searches the HLog first, then the HSet set page.
func (c *Cache) Get(key []byte) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Gets++
	start := c.dev.Clock().Now()
	fp := hashing.Fingerprint(key)
	set := c.setOf(fp)

	if v, done, ok, err := c.log.Lookup(set, fp, key); err == nil && ok {
		c.stats.Hits++
		if done > 0 {
			c.stats.FlashReadOps++
			c.stats.FlashBytesRead += uint64(c.pageSize)
			c.hist.Record(done - start + time.Microsecond)
		} else {
			c.hist.Record(time.Microsecond)
		}
		return v, true
	}

	f := c.filters[set]
	if f == nil || !f.Test(fp) {
		c.hist.Record(time.Microsecond)
		return nil, false
	}
	done, mapped, err := c.ftl.Read(int(set), c.scratch)
	if err != nil || !mapped {
		c.hist.Record(time.Microsecond)
		return nil, false
	}
	c.stats.FlashReadOps++
	c.stats.FlashBytesRead += uint64(c.pageSize)
	blk, err := setblock.Parse(c.scratch, c.pageSize)
	if err != nil {
		c.hist.Record(done - start + time.Microsecond)
		return nil, false
	}
	v, _, ok := blk.Lookup(fp, key)
	c.hist.Record(done - start + time.Microsecond)
	if !ok {
		return nil, false
	}
	c.stats.Hits++
	return append([]byte(nil), v...), true
}
