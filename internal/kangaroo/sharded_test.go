package kangaroo_test

import (
	"testing"

	"nemo/internal/cachelib"
	"nemo/internal/enginetest"
	"nemo/internal/flashsim"
	"nemo/internal/kangaroo"
)

func newDev() *flashsim.Device {
	return flashsim.New(flashsim.Config{PageSize: 512, PagesPerZone: 8, Zones: 16})
}

func mkBare(t *testing.T) cachelib.Engine {
	t.Helper()
	e, err := kangaroo.New(kangaroo.Config{Device: newDev(), TargetObjsPerSet: 8})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func mkSharded(t *testing.T, shards int) cachelib.Engine {
	t.Helper()
	e, err := kangaroo.NewSharded(kangaroo.Config{Device: newDev(), TargetObjsPerSet: 8}, shards)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestShardedSingleShardEquivalence pins the facade contract: a shards=1
// wrapped Kangaroo replays stat-for-stat like the bare engine.
func TestShardedSingleShardEquivalence(t *testing.T) {
	enginetest.SingleShardEquivalence(t, 20_000, mkBare, mkSharded)
}

// TestShardedPartition checks multi-shard aggregate accounting. Each shard
// runs its own HLog and FTL-backed HSet over a disjoint zone range.
func TestShardedPartition(t *testing.T) {
	enginetest.MultiShardPartition(t, 20_000, 2, mkSharded)
}

// TestShardedRejectsTinyShards pins the per-shard minimum: partitioning 16
// zones into 8 shards leaves 2 zones per shard — not enough for an HLog
// plus a set tier.
func TestShardedRejectsTinyShards(t *testing.T) {
	if _, err := kangaroo.NewSharded(kangaroo.Config{Device: newDev()}, 8); err == nil {
		t.Fatal("NewSharded accepted 2-zone shards")
	}
}
