package wamodel

import (
	"math"
	"testing"
)

// paperFW is the paper's evaluation configuration in §3.2 terms: 360 GB
// flash, Log/Set = 5%/95%, OP 5%, 4 KB pages, 246 B objects.
func paperFW() HierarchicalConfig {
	totalPages := 360 * 1024 * 1024 * 1024 / 4096
	return HierarchicalConfig{
		PageSize:        4096,
		ObjSize:         246,
		LogPages:        totalPages * 5 / 100,
		SetPages:        totalPages * 95 / 100,
		OPRatio:         0.05,
		HotColdDivision: true,
	}
}

func TestL2SWAPassiveMatchesPaper(t *testing.T) {
	// §3.2.1: theoretical L2SWA(P) ≈ 9 for Log5-OP5 (measured 8.5).
	got := paperFW().L2SWAPassive()
	if math.Abs(got-9.02) > 0.3 {
		t.Fatalf("L2SWA(P) = %v, paper computes ≈9", got)
	}
}

func TestL2SWAClosedForm(t *testing.T) {
	// Eq. 6: L2SWA(P) = (1−X)·N_Set / (2·N_Log) for FairyWREN.
	c := paperFW()
	closed := (1 - c.OPRatio) * float64(c.SetPages) / (2 * float64(c.LogPages))
	if math.Abs(c.L2SWAPassive()-closed) > 1e-9 {
		t.Fatalf("general form %v != closed form %v", c.L2SWAPassive(), closed)
	}
}

func TestL2SWAWithPassiveFraction(t *testing.T) {
	// §3.2.2: (2−p)·9 with p=0.25 gives 15.75 (measured 14.2).
	got := paperFW().L2SWA(0.25)
	if math.Abs(got-15.79) > 0.5 {
		t.Fatalf("L2SWA(p=0.25) = %v, paper computes ≈15.75", got)
	}
}

func TestTotalWAMatchesFW(t *testing.T) {
	// Eq. 1 with near-unit log fill: ≈1 + 15.75 ≈ 16.7; the paper's
	// measured total is 15.2 (theory slightly over-estimates).
	got := paperFW().TotalWA(1.0, 0.25)
	if got < 15 || got > 18 {
		t.Fatalf("total WA = %v, want ≈16.7", got)
	}
}

func TestKangarooHashRangeDoubles(t *testing.T) {
	fw := paperFW()
	kg := fw
	kg.HotColdDivision = false
	if math.Abs(kg.L2SWAPassive()-2*fw.L2SWAPassive()) > 1e-9 {
		t.Fatal("Kangaroo's L2SWA(P) should be exactly double FairyWREN's")
	}
}

func TestActiveIsTwicePassive(t *testing.T) {
	c := paperFW()
	if c.L2SWAActive() != 2*c.L2SWAPassive() {
		t.Fatal("Observation 3 violated in the model")
	}
	// p=1 (all passive) gives L2SWA(P); p=0 (all active) gives 2×.
	if c.L2SWA(1) != c.L2SWAPassive() || c.L2SWA(0) != c.L2SWAActive() {
		t.Fatal("Eq. 7 boundary cases wrong")
	}
}

func TestObservation2Directions(t *testing.T) {
	// Enlarging HLog or raising OP must reduce L2SWA(P).
	base := paperFW()
	bigger := base
	bigger.LogPages *= 4
	if bigger.L2SWAPassive() >= base.L2SWAPassive() {
		t.Fatal("larger HLog should lower L2SWA(P)")
	}
	moreOP := base
	moreOP.OPRatio = 0.5
	if moreOP.L2SWAPassive() >= base.L2SWAPassive() {
		t.Fatal("higher OP should lower L2SWA(P)")
	}
}

func TestNemoWA(t *testing.T) {
	// §4.2: 89.34% fill (64.13% new-object fill) ⇒ WA 1/0.6413 ≈ 1.56.
	wa, err := NemoWA(0.6413)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wa-1.559) > 0.01 {
		t.Fatalf("Nemo WA = %v, paper reports 1.56", wa)
	}
	if _, err := NemoWA(0); err == nil {
		t.Fatal("zero fill rate should error")
	}
	if _, err := NemoWA(1.5); err == nil {
		t.Fatal("fill rate > 1 should error")
	}
}

func TestTable6MatchesPaper(t *testing.T) {
	rows := Table6(DefaultTable6())
	if len(rows) != 3 {
		t.Fatalf("Table 6 has %d rows", len(rows))
	}
	fw, naive, nemo := rows[0], rows[1], rows[2]
	if math.Abs(fw.Total-9.9) > 0.5 {
		t.Fatalf("FW total = %v bits/obj, paper says 9.9", fw.Total)
	}
	if math.Abs(naive.Total-30.4) > 0.5 {
		t.Fatalf("naive Nemo total = %v bits/obj, paper says 30.4", naive.Total)
	}
	if math.Abs(nemo.Total-8.3) > 0.3 {
		t.Fatalf("Nemo total = %v bits/obj, paper says 8.3", nemo.Total)
	}
	if nemo.Total >= fw.Total {
		t.Fatal("Nemo must beat FairyWREN on memory")
	}
}

func TestBloomBits(t *testing.T) {
	if math.Abs(BloomBitsPerObject(0.001)-14.4) > 0.05 {
		t.Fatalf("0.1%% FPR = %v bits/obj, want 14.4", BloomBitsPerObject(0.001))
	}
}

func TestAppendixAInstantiation(t *testing.T) {
	cfg := PBFGCostConfig{NumSGs: 350, TargetObjsPerSet: 40, PageSize: 4096}
	pages1, objs1, tot1 := PBFGCost(cfg, 0.001)
	if pages1 != 7 {
		t.Fatalf("PBFG pages at 0.1%% = %v, Appendix A says 7", pages1)
	}
	if math.Abs(objs1-1.349) > 0.01 {
		t.Fatalf("object reads at 0.1%% = %v, Appendix A says 1+0.35", objs1)
	}
	pages2, objs2, tot2 := PBFGCost(cfg, 0.0001)
	if pages2 != 9 {
		t.Fatalf("PBFG pages at 0.01%% = %v, Appendix A says 9", pages2)
	}
	if math.Abs(objs2-1.0349) > 0.01 {
		t.Fatalf("object reads at 0.01%% = %v, Appendix A says 1+0.03", objs2)
	}
	// The paper's conclusion: the more accurate index costs MORE overall.
	if tot2 <= tot1 {
		t.Fatalf("0.01%% total %v should exceed 0.1%% total %v", tot2, tot1)
	}
}

func TestOptimalFPR(t *testing.T) {
	cfg := PBFGCostConfig{NumSGs: 350, TargetObjsPerSet: 40, PageSize: 4096}
	best, cost := OptimalFPR(cfg, nil)
	if cost <= 0 {
		t.Fatal("optimal cost must be positive")
	}
	// Given Appendix A, 0.1% must beat 0.01%; the scan should not pick
	// the most accurate candidate.
	if best == 0.0001 {
		t.Fatalf("optimizer picked the most accurate FPR (%v), contradicting Appendix A", best)
	}
}
