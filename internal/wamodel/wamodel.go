// Package wamodel implements the paper's analytic models: the §3.2
// write-amplification model for hierarchical caches (Equations 1–8), Nemo's
// fill-rate model (Equation 9), the Table 6 metadata-cost model, and the
// Appendix A PBFG accuracy/read-amplification trade-off (Equations 10–11).
//
// The experiments use these to print "theory" columns next to measured
// values, reproducing the paper's Theory-vs-Practice checks.
package wamodel

import (
	"fmt"
	"math"
)

// HierarchicalConfig describes a hierarchical (HLog + HSet) cache in the
// §3.2 notation.
type HierarchicalConfig struct {
	// PageSize is w, the set (page) size in bytes.
	PageSize int
	// ObjSize is s, the expected object size in bytes.
	ObjSize float64
	// LogPages is N_Log, flash pages in HLog.
	LogPages int
	// SetPages is N_Set, flash pages in HSet.
	SetPages int
	// OPRatio is X, the fraction of HSet reserved for garbage collection.
	OPRatio float64
	// HotColdDivision is true for FairyWREN (halves the log-to-set hash
	// range, the ½·N′_Set factor of Eq. 5) and false for Kangaroo.
	HotColdDivision bool
}

// UsableSets returns N′_Set = (1−X)·N_Set (Eq. 4).
func (c HierarchicalConfig) UsableSets() float64 {
	return (1 - c.OPRatio) * float64(c.SetPages)
}

// HashRange returns the number of migration target sets: N′_Set with
// hot/cold division applied.
func (c HierarchicalConfig) HashRange() float64 {
	n := c.UsableSets()
	if c.HotColdDivision {
		n /= 2
	}
	return n
}

// ExpectedListLen returns E(L_i), the expected HLog linked-list length
// (Eq. 5): (w/s · N_Log) / hash range.
func (c HierarchicalConfig) ExpectedListLen() float64 {
	objsPerPage := float64(c.PageSize) / c.ObjSize
	return objsPerPage * float64(c.LogPages) / c.HashRange()
}

// L2SWAPassive returns L2SWA(P) (Eq. 6): set size over the expected newly
// written bytes per passive set write. For FairyWREN this reduces to
// (1−X)·N_Set / (2·N_Log).
func (c HierarchicalConfig) L2SWAPassive() float64 {
	return float64(c.PageSize) / (c.ExpectedListLen() * c.ObjSize)
}

// L2SWAActive returns L2SWA(A) ≈ 2 · L2SWA(P) (§3.2.2): actively migrated
// objects have half the expected log residency.
func (c HierarchicalConfig) L2SWAActive() float64 { return 2 * c.L2SWAPassive() }

// L2SWA returns the combined log-to-set write amplification for passive
// fraction p (Eq. 7/8): (2−p)·L2SWA(P).
func (c HierarchicalConfig) L2SWA(p float64) float64 {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return (2 - p) * c.L2SWAPassive()
}

// TotalWA returns Eq. 1: the log-append term 1/E(FR) plus L2SWA. fillRate
// is the expected per-page fill rate of log appends (≈1 for tiny objects).
func (c HierarchicalConfig) TotalWA(fillRate, p float64) float64 {
	if fillRate <= 0 {
		fillRate = 1
	}
	return 1/fillRate + c.L2SWA(p)
}

// NemoWA returns Equation 9: Nemo's write amplification is the reciprocal
// of the expected SG fill rate.
func NemoWA(sgFillRate float64) (float64, error) {
	if sgFillRate <= 0 || sgFillRate > 1 {
		return 0, fmt.Errorf("wamodel: SG fill rate %v out of (0,1]", sgFillRate)
	}
	return 1 / sgFillRate, nil
}

// BloomBitsPerObject returns the bits/object of a Bloom filter with the
// given false-positive rate: log2(1/x)/ln 2 ≈ 1.44·log2(1/x).
func BloomBitsPerObject(fpr float64) float64 {
	return -math.Log2(fpr) / math.Ln2
}

// Table6Row is one column of Table 6 (metadata bits per object).
type Table6Row struct {
	Name       string
	LogBits    float64 // log tier index, weighted by log share
	SetIndex   float64 // set tier index (Bloom filters for Nemo)
	SetOther   float64
	EvictBits  float64
	Additional float64
	Total      float64
}

// Table6Config parameterizes the Table 6 model.
type Table6Config struct {
	// LogShare is HLog's share of flash (0.05 for FW).
	LogShare float64
	// LogEntryBits is the per-object log index cost (48 bits in Table 6).
	LogEntryBits float64
	// BloomFPR is Nemo's PBFG false-positive rate.
	BloomFPR float64
	// CachedRatio is Nemo's in-memory PBFG fraction.
	CachedRatio float64
	// HotTailRatio is Nemo's hotness-tracking coverage.
	HotTailRatio float64
	// BufferBits is the index-group buffer amortized per object (≈0.8).
	BufferBits float64
}

// DefaultTable6 returns the paper's parameterization.
func DefaultTable6() Table6Config {
	return Table6Config{
		LogShare:     0.05,
		LogEntryBits: 48,
		BloomFPR:     0.001,
		CachedRatio:  0.5,
		HotTailRatio: 0.3,
		BufferBits:   0.8,
	}
}

// Table6 reproduces the three columns of Table 6: FairyWREN ≈9.9 bits/obj,
// naïve Nemo ≈30.4, Nemo ≈8.3.
func Table6(cfg Table6Config) []Table6Row {
	bloom := BloomBitsPerObject(cfg.BloomFPR)

	fw := Table6Row{
		Name:       "FairyWREN",
		LogBits:    cfg.LogShare * cfg.LogEntryBits,
		SetIndex:   3.1 * (1 - cfg.LogShare),
		SetOther:   3 * (1 - cfg.LogShare),
		EvictBits:  1 * (1 - cfg.LogShare),
		Additional: 0.8,
	}
	fw.Total = fw.LogBits + fw.SetIndex + fw.SetOther + fw.EvictBits + fw.Additional

	naive := Table6Row{
		Name:      "Naive Nemo",
		SetIndex:  bloom, // all filters resident
		EvictBits: 16,    // full access counters
	}
	naive.Total = naive.SetIndex + naive.EvictBits

	nemo := Table6Row{
		Name:       "Nemo",
		SetIndex:   bloom * cfg.CachedRatio,
		EvictBits:  1 * cfg.HotTailRatio,
		Additional: cfg.BufferBits,
	}
	nemo.Total = nemo.SetIndex + nemo.EvictBits + nemo.Additional

	return []Table6Row{fw, naive, nemo}
}

// PBFGCostConfig parameterizes the Appendix A model.
type PBFGCostConfig struct {
	// NumSGs is N, the SG pool size (350 in the paper's instantiation).
	NumSGs int
	// TargetObjsPerSet sizes each set-level filter (40 in §5.1).
	TargetObjsPerSet int
	// PageSize is the flash page size in bytes (4096).
	PageSize int
}

// PBFGCost returns Equation 10: the worst-case flash accesses of one lookup
// under false-positive rate x — ceil(N/n) pages of PBFG retrieval, where n
// is how many set-level filters fit one page, plus 1 + (N−1)·x object
// reads. With the paper's instantiation (N=350, 40 objs/set) this yields
// 7 pages at x=0.1% and 9 pages at x=0.01%, matching Appendix A.
func PBFGCost(cfg PBFGCostConfig, fpr float64) (pbfgPages, objectReads, total float64) {
	filterBytes := bloomSizeBits(cfg.TargetObjsPerSet, fpr) / 8
	perPage := cfg.PageSize / filterBytes
	if perPage < 1 {
		perPage = 1
	}
	pages := (cfg.NumSGs + perPage - 1) / perPage
	n := float64(cfg.NumSGs)
	objectReads = 1 + (n-1)*fpr
	return float64(pages), objectReads, float64(pages) + objectReads
}

// bloomSizeBits mirrors bloom.SizeBits (optimal sizing rounded up to a
// 64-bit word) without importing the package, keeping wamodel dependency
// free for documentation purposes.
func bloomSizeBits(nObjs int, fpr float64) int {
	m := math.Ceil(-float64(nObjs) * math.Log(fpr) / (math.Ln2 * math.Ln2))
	bits := int(m)
	if rem := bits % 64; rem != 0 {
		bits += 64 - rem
	}
	return bits
}

// OptimalFPR scans candidate false-positive rates and returns the one that
// minimizes the Appendix A total cost (Eq. 11's minimization).
func OptimalFPR(cfg PBFGCostConfig, candidates []float64) (best float64, bestCost float64) {
	if len(candidates) == 0 {
		candidates = []float64{0.05, 0.01, 0.005, 0.001, 0.0005, 0.0001}
	}
	best, bestCost = candidates[0], math.Inf(1)
	for _, x := range candidates {
		_, _, c := PBFGCost(cfg, x)
		if c < bestCost {
			best, bestCost = x, c
		}
	}
	return best, bestCost
}
