// Package getbench is the shared GET-path benchmark harness behind both
// BenchmarkParallelGet/TestParallelGetScaling (the test binary) and
// `nemobench -getbench` (the BENCH_get.json CI baseline). Keeping the
// geometry, prefill shape, and access pattern in one place guarantees the
// two measurements stay comparable when either is tuned.
package getbench

import (
	"fmt"
	"sync"
	"time"

	"nemo/internal/backend"
	"nemo/internal/core"
	"nemo/internal/device"
)

// Zones is the benchmark's total SG pool — the -replay geometry, held
// constant across shard counts and large enough that the vast majority of
// hits serve from flash rather than the in-memory SGs.
const Zones = 48

// Build constructs a sharded cache on a fresh device of the given backend
// and prefills it to roughly 3/4 of pool capacity with deterministic keys
// (prebuilt, so measurement loops charge no fmt allocations to the GET
// path). Index groups never seal at this geometry (48 SGs < the 50-SG
// group width), so lookups exercise the in-memory filter path plus the
// candidate flash read — the common production shape. The caller closes the
// returned device after the cache (engines never close their device).
func Build(spec backend.Spec, shards int) (*core.Sharded, device.Device, [][]byte, error) {
	perData := Zones / shards
	perIdx := core.IndexZonesFor(perData, core.DefaultSGsPerIndexGroup)
	dev, err := spec.Open(device.Geometry{PagesPerZone: 64, Zones: shards * (perData + perIdx)})
	if err != nil {
		return nil, nil, nil, err
	}
	cfg := core.DefaultConfig(dev, Zones)
	cfg.Shards = shards
	cache, err := core.NewSharded(cfg)
	if err != nil {
		dev.Close()
		return nil, nil, nil, err
	}
	n := Zones * dev.PagesPerZone() * 10
	keys := make([][]byte, n)
	for i := 0; i < n; i++ {
		keys[i] = Key(i)
		if err := cache.Set(keys[i], Value(i)); err != nil {
			cache.Close()
			dev.Close()
			return nil, nil, nil, err
		}
	}
	return cache, dev, keys, nil
}

// Key returns the deterministic benchmark key for index i.
func Key(i int) []byte {
	return []byte(fmt.Sprintf("gb-key-%08d-padpadpad", i))
}

// Value returns the deterministic benchmark value for index i.
func Value(i int) []byte {
	return []byte(fmt.Sprintf("gb-value-%08d-payload-payload-payload", i))
}

// Run issues ops GETs spread over goroutines — each walking the key space
// with a co-prime stride (uniform coverage, no rand allocations) — and
// returns the elapsed wall clock.
func Run(cache *core.Sharded, keys [][]byte, goroutines, ops int) time.Duration {
	var wg sync.WaitGroup
	per := ops / goroutines
	if per < 1 {
		per = 1
	}
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			idx := g * 7919
			for i := 0; i < per; i++ {
				idx += 6007
				cache.Get(keys[idx%len(keys)])
			}
		}(g)
	}
	wg.Wait()
	return time.Since(start)
}
