package nemo_test

// bench_test.go — one benchmark per paper artifact. Each benchmark runs the
// corresponding experiment at "small" scale once per iteration (b.N is
// normally 1 for these macro-benchmarks) and reports the headline metric as
// custom units so `go test -bench` output doubles as a results table.
// cmd/nemobench runs the same experiments at full scale with printed rows.

import (
	"io"
	"testing"
	"time"

	"nemo"
	"nemo/internal/experiments"
)

func runExp(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	// Benchmarks run each experiment at smoke scale (150k ops) so the
	// whole table/figure suite completes in minutes; cmd/nemobench runs
	// the same code at the full scales reported in EXPERIMENTS.md.
	for i := 0; i < b.N; i++ {
		if err := e.Run(experiments.Options{Scale: "small", Ops: 150_000, Seed: 1, Out: io.Discard}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig04PassiveMigrationCDF(b *testing.B) { runExp(b, "fig4") }
func BenchmarkFig05MigrationSplitCDF(b *testing.B)   { runExp(b, "fig5") }
func BenchmarkFig06PassiveFraction(b *testing.B)     { runExp(b, "fig6") }
func BenchmarkFig08HashSkew(b *testing.B)            { runExp(b, "fig8") }
func BenchmarkFig12aSteadyStateWA(b *testing.B)      { runExp(b, "fig12a") }
func BenchmarkFig12bFWVariants(b *testing.B)         { runExp(b, "fig12b") }
func BenchmarkFig13WritePattern(b *testing.B)        { runExp(b, "fig13") }
func BenchmarkFig14WATrend(b *testing.B)             { runExp(b, "fig14") }
func BenchmarkFig15ReadLatency(b *testing.B)         { runExp(b, "fig15") }
func BenchmarkFig16MissRatio(b *testing.B)           { runExp(b, "fig16") }
func BenchmarkFig17FillRateBreakdown(b *testing.B)   { runExp(b, "fig17") }
func BenchmarkFig18PthSweep(b *testing.B)            { runExp(b, "fig18") }
func BenchmarkFig19aSetSkew(b *testing.B)            { runExp(b, "fig19a") }
func BenchmarkFig19bPBFGMiss(b *testing.B)           { runExp(b, "fig19b") }
func BenchmarkSec32TheoryVsPractice(b *testing.B)    { runExp(b, "sec32") }
func BenchmarkSec55Overhead(b *testing.B)            { runExp(b, "sec55") }
func BenchmarkTab6MemoryModel(b *testing.B)          { runExp(b, "tab6") }
func BenchmarkAppendixAModel(b *testing.B)           { runExp(b, "appA") }

// BenchmarkNemoSteadyState measures Nemo's end-to-end throughput and
// reports the paper's headline metrics as custom units.
func BenchmarkNemoSteadyState(b *testing.B) {
	dev := nemo.NewDevice(nemo.DeviceConfig{PagesPerZone: 32, Zones: 56})
	cache, err := nemo.New(nemo.DefaultConfig(dev, 48))
	if err != nil {
		b.Fatal(err)
	}
	workload, err := nemo.NewWorkload(dev.CapacityBytes()*3/4, 1)
	if err != nil {
		b.Fatal(err)
	}
	var req nemo.Request
	// Warm up to steady state (pool cycling).
	for i := 0; i < 120_000; i++ {
		workload.Next(&req)
		if _, hit := cache.Get(req.Key); !hit {
			if err := cache.Set(req.Key, req.Value); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		workload.Next(&req)
		if _, hit := cache.Get(req.Key); !hit {
			if err := cache.Set(req.Key, req.Value); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(cache.PaperWA(), "WA")
	b.ReportMetric(cache.MeanFillRate()*100, "fill%")
	st := cache.Stats()
	b.ReportMetric(st.MissRatio()*100, "miss%")
}

// BenchmarkEngineSetPath compares raw Set throughput across all engines.
func BenchmarkEngineSetPath(b *testing.B) {
	type mk struct {
		name string
		mk   func(nemo.Device) (nemo.Engine, error)
	}
	engines := []mk{
		{"Nemo", func(d nemo.Device) (nemo.Engine, error) {
			return nemo.New(nemo.DefaultConfig(d, 48))
		}},
		{"Log", func(d nemo.Device) (nemo.Engine, error) {
			return nemo.NewLogCache(nemo.LogCacheConfig{Device: d})
		}},
		{"Set", func(d nemo.Device) (nemo.Engine, error) {
			return nemo.NewSetCache(nemo.SetCacheConfig{Device: d, OPRatio: 0.5})
		}},
		{"FW", func(d nemo.Device) (nemo.Engine, error) {
			return nemo.NewFairyWREN(nemo.FairyWRENConfig{Device: d})
		}},
		{"KG", func(d nemo.Device) (nemo.Engine, error) {
			return nemo.NewKangaroo(nemo.KangarooConfig{Device: d})
		}},
	}
	for _, e := range engines {
		b.Run(e.name, func(b *testing.B) {
			dev := nemo.NewDevice(nemo.DeviceConfig{PagesPerZone: 32, Zones: 56})
			eng, err := e.mk(dev)
			if err != nil {
				b.Fatal(err)
			}
			workload, err := nemo.NewWorkload(dev.CapacityBytes(), 2)
			if err != nil {
				b.Fatal(err)
			}
			var req nemo.Request
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				workload.Next(&req)
				if err := eng.Set(req.Key, req.Value); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(eng.Stats().ALWA(), "ALWA")
		})
	}
}

// BenchmarkGetHitPath measures steady-state GET latency (simulation CPU
// cost, not virtual device latency).
func BenchmarkGetHitPath(b *testing.B) {
	dev := nemo.NewDevice(nemo.DeviceConfig{PagesPerZone: 32, Zones: 56})
	cache, err := nemo.New(nemo.DefaultConfig(dev, 48))
	if err != nil {
		b.Fatal(err)
	}
	workload, err := nemo.NewWorkload(dev.CapacityBytes()/2, 3)
	if err != nil {
		b.Fatal(err)
	}
	var req nemo.Request
	for i := 0; i < 100_000; i++ {
		workload.Next(&req)
		if _, hit := cache.Get(req.Key); !hit {
			cache.Set(req.Key, req.Value)
		}
	}
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		workload.Next(&req)
		if _, hit := cache.Get(req.Key); hit {
			hits++
		} else {
			cache.Set(req.Key, req.Value)
		}
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(hits)/float64(b.N)*100, "hit%")
	}
	_ = time.Now
}
