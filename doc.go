// Package nemo is a from-scratch Go reproduction of "Nemo: A
// Low-Write-Amplification Cache for Tiny Objects on Log-Structured Flash
// Devices" (ASPLOS '26).
//
// Nemo is a flash cache for tiny (~250 B) objects that reaches near-ideal
// write amplification by rearchitecting set-associative caching around
// Set-Groups: many 4 KB sets hashed over a small range, aggregated in
// memory, flushed as whole erase units, and evicted FIFO. An on-flash Bloom
// filter index (PBFG) keeps memory at ~8 bits per object, and hybrid 1-bit
// hotness tracking feeds writeback so hot objects survive eviction.
//
// The package exposes:
//
//   - The Nemo cache itself (New, Config, DefaultConfig).
//   - A sharded, concurrent variant (NewSharded, Config.Shards): the key
//     space is hash-partitioned into independent engines, each owning a
//     disjoint slice of the device's zones, its own in-memory SGs, PBFG
//     index, and lock, so requests for different shards proceed in
//     parallel and Stats aggregates without a global lock.
//   - The simulated zoned flash device it runs on (NewDevice) — the
//     substitution for the paper's ZNS SSD, with full write/read/erase
//     accounting, per-zone and per-channel locking for concurrent shards,
//     and a virtual-time latency model.
//   - The paper's four baselines as interchangeable engines
//     (NewLogCache, NewSetCache, NewKangaroo, NewFairyWREN).
//   - Workload generators parameterized like the paper's Twitter traces
//     (NewWorkload, Clusters), a sequential replay harness (Replay), and a
//     parallel trace-replay driver (Materialize, ParallelReplay) that
//     replays a materialized trace from many worker goroutines with
//     deterministic per-shard sequencing — hit ratio and write
//     amplification are independent of worker count while throughput
//     scales with cores. `nemobench -replay` prints the scaling table.
//
// A minimal session:
//
//	dev := nemo.NewDevice(nemo.DeviceConfig{})          // 64 MB simulated ZNS
//	cache, err := nemo.New(nemo.DefaultConfig(dev, 56)) // 56-zone SG pool
//	if err != nil { ... }
//	cache.Set([]byte("user:1234"), []byte("tiny object"))
//	v, hit := cache.Get([]byte("user:1234"))
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for the
// paper-vs-measured results, and cmd/nemobench to regenerate every table
// and figure.
package nemo
