// Package nemo is a from-scratch Go reproduction of "Nemo: A
// Low-Write-Amplification Cache for Tiny Objects on Log-Structured Flash
// Devices" (ASPLOS '26), grown into a production-shaped cache service core.
//
// Nemo is a flash cache for tiny (~250 B) objects that reaches near-ideal
// write amplification by rearchitecting set-associative caching around
// Set-Groups: many 4 KB sets hashed over a small range, aggregated in
// memory, flushed as whole erase units, and evicted FIFO. An on-flash Bloom
// filter index (PBFG) keeps memory at ~8 bits per object, and hybrid 1-bit
// hotness tracking feeds writeback so hot objects survive eviction.
//
// # Engine v2: core and extension interfaces
//
// Every cache design in the repository implements the minimal Engine
// contract (Name/Get/Set/Stats/ReadLatency/Close) — the neutral harness
// surface the paper's comparisons need. Production capabilities are
// composable extension interfaces an engine may add:
//
//   - BatchEngine — GetMany/SetMany execute many operations per lock
//     acquisition. On a sharded cache a batch costs one hash pass, groups
//     into per-shard sub-batches, and fans out across shards in parallel:
//     the multi-get pattern of a cache service front end.
//   - Deleter — Delete invalidates a key. Nemo has no exact per-object
//     index (§4.3), so deletion tombstones: in-memory copies are removed
//     and a zero-length marker shadows any still-cached flash copy (reads
//     scan newest-first) until it ages out of the FIFO pool; hotness
//     writeback never resurrects a tombstoned object.
//   - AsyncEngine — SetAsync inserts into the in-memory SG and returns;
//     when the rear-full trigger fires, the full SG's flush is handed to a
//     background flusher pool (Config.Flushers goroutines, shared across
//     shards) instead of running inline on the inserting worker. The flush
//     is the p99 outlier of the Set path — `nemobench -replay -async`
//     shows it moving off the latency distribution. Drain awaits all
//     deferred work; a sacrifice budget backpressures to inline flushing
//     if the pool ever lags.
//
// # The concurrent read path
//
// GETs do their flash I/O outside the shard lock. Each lookup runs in
// three phases: a short locked plan (fingerprint → set offset, in-memory
// probe, snapshot of the candidate SGs, their Bloom-filter slices, and the
// PBFG pages missing from the index cache, plus the SG epoch — pool head
// ID and flush sequence), an unlocked I/O phase (PBFG fetches, Bloom
// tests, parallel candidate-page reads into pooled per-goroutine buffers,
// key scan), and a short locked commit that re-validates the epoch before
// applying the read-side effects (hit/read counters, hotness bits,
// index-cache publication, latency sample). If a flush or eviction moved
// the flash layout mid-read, the attempt is discarded and replanned; after
// a few conflicts the lookup falls back to fully-locked I/O, so progress
// is guaranteed. GetMany plans, reads, and commits a whole batch per lock
// acquisition, sharing PBFG fetches across the batch's keys.
//
// The steady-state GET allocates exactly once on a hit (the returned value
// copy) and not at all on a clean miss — pinned by allocation-regression
// tests; BenchmarkParallelGet and `nemobench -getbench` (which writes the
// BENCH_get.json CI baseline) measure the resulting single-shard
// goroutine scaling.
//
// Driven serially, the three-phase path performs the identical reads with
// identical statistics to the historical fully-locked path (one deliberate
// improvement aside: index-cache publication is deferred to the commit
// phase, which removes the old path's duplicate PBFG fetches within a
// single capacity-pressured lookup), so every equivalence and determinism
// pin (shards=1 vs seed, `-compare -notime` across worker counts) holds
// unchanged. Under truly concurrent GETs,
// hit/miss results and every write-side counter stay exact; only the
// index-cache lookup/miss counters and the flash-read counters can
// inflate, because a conflicted attempt's device reads really happened and
// racing readers may duplicate a PBFG fetch before either publishes it.
// GET-path device read errors are never swallowed: a failed read degrades
// to a miss and lands in Stats.ReadErrors (surfaced by the -replay and
// -compare tables).
//
// # The concurrent write path
//
// SG flushes mirror the same protocol, so neither half of the cache holds
// the shard lock across flash I/O. A flush runs in three phases: a locked
// seal (the eviction victim is popped and its zones — plus its index
// group's, when the group retires with it — return to the free lists; the
// flush's data zones and, for a group-completing SG, its index zones are
// reserved; the SG id is assigned, advancing the SG epoch; and the front
// in-memory SG detaches into a sealed slot with a fresh rear rotated in),
// an unlocked build (the eviction victim's set pages are read back, and —
// after a short locked interlude that runs the hotness/shadow liveness
// filtering and inserts writeback survivors into the sealed SG — the freed
// zones are erased, the sealed SG serializes through pooled buffers onto
// the reserved data zones, its Bloom filters are built, and a completing
// index group's PBFG pages are assembled and appended), and a locked
// commit (the flash SG publishes into its group and the FIFO pool, the
// write-side counters apply, cooling runs if due).
//
// Between seal and commit the flushing SG's objects are served from the
// sealed slot: reads probe it after memq (any memq copy is newer), a
// racing Delete still plants its tombstone, and writeback never resurrects
// a version it shadows. The epoch rule extends naturally: a seal bumps the
// flush sequence (and an eviction moves the pool head) before any zone is
// erased or rewritten, so optimistic readers that planned before the seal
// replan, while readers that plan during the build never reference the
// unpublished SG or the victim's zones. At most one flush is in flight per
// shard; a synchronous flush that finds one in flight waits it out and
// coalesces (the committed flush already rotated the queue, so re-flushing
// would only write a fresh, nearly-empty front).
//
// Driven serially the three phases run back to back and are write-for-write
// and stat-for-stat identical to the historical fully-locked flush — every
// equivalence and determinism pin (shards=1 vs seed, `-compare -notime`
// byte-identity, batch/worker independence) holds unchanged. Under
// concurrency, foreground GETs and SETs on a shard overlap the entire SG
// write and eviction read-back; hit/miss outcomes and the write-side
// counters stay exact, with only the racing-reader inflations documented
// above (and Nemo's async flusher timing, which shifts flush boundaries
// and therefore SG fill rates, remains the one documented -compare
// nondeterminism). A steady-state Set
// that triggers no flush allocates nothing (pinned by
// allocation-regression tests); `nemobench -setbench` writes the
// BENCH_set.json CI baseline for the write path, whose sync-vs-async
// setp99 gap is the pipeline's measured win.
//
// A flush that hits a device error cannot wedge the shard: the reserved
// and freed zones are erased and returned, the sealed SG's objects are
// dropped (counted as Evictions — a cache may always miss), and the
// failure lands in Stats.WriteErrors the moment it happens (surfaced as
// the wrerr column in the -replay/-compare tables) as well as in the Set
// error (sync) or Drain/Close error (async).
//
// # Memory layout
//
// At the ROADMAP's production scale the Go GC is a metadata tax: hundreds
// of millions of resident fingerprints mean the collector re-scans every
// pointer the index holds, on every cycle. The steady-state in-memory
// layer is therefore arena-backed — a fixed set of large, pointer-free
// allocations the GC traverses in a handful of steps, regardless of how
// many objects the cache holds:
//
//   - The PBFG index cache is a flat open-addressing table (packed
//     (group,set) uint64 keys, ≤50% load, sized once at construction)
//     whose values index page-size slots carved from large []byte slabs.
//     There are no per-page allocations and no map[...]... anywhere on the
//     hot path; FIFO eviction, the stale-queue compaction, and the
//     lookup/miss counters behave exactly as the map-based layout did.
//   - flashSG structs live in fixed-size chunks, and each SG's per-set
//     object counts, prefix-sum bases, and hotness bits pack into one
//     contiguous []uint32 run carved at flush commit (or snapshot
//     restore) — which is also when the prefix sums are computed, once,
//     instead of lazily on every probe.
//   - Every setblock page — the in-memory SG sets, the flush victim
//     read-back scratch, the unsealed groups' Bloom-filter buffers — is a
//     carve of a per-shard or per-group slab, recycled whole when its SG
//     flushes or its group seals.
//
// The ownership rule that makes immediate recycling safe under the
// optimistic read protocol: arena memory is only ever dereferenced while
// holding the shard lock. A read's plan phase copies the Bloom-filter
// bytes it will test into per-goroutine scratch and precomputes its
// candidate page addresses; the unlocked I/O phase touches only that
// scratch and its own pooled buffers, and the commit phase re-validates
// the SG epoch before touching any SG — an epoch match proves no flush or
// eviction recycled anything the plan referenced. Freed slots therefore go
// straight back to their free lists, with no deferred reclamation, and the
// arena leak test pins slot accounting plus process HeapObjects flat over
// fill→evict→refill churn. `nemobench -gcbench` (BENCH_gc.json in CI)
// measures the result — live heap objects, GC pause totals, DRAM
// bytes/key, and GET throughput under forced GC churn at 1M+ resident
// keys; landing this layout cut HeapObjects at 1M keys from 1585 to 74 at
// one shard (21×) and from 3435 to 322 at eight. The snapshot format is
// unaffected: checkpoint bytes are pinned identical to the map-based
// layout's, so warm restart crosses the layout change in either direction.
//
// EngineV2 bundles the core and all three extensions. Cache and
// ShardedCache implement it natively;
// Adapt upgrades any plain Engine (the four paper baselines) by delegating
// what exists and emulating the rest, so every harness path is written
// against v2 and comparisons keep running unmodified. Per-request knobs
// ride in Options (TTL, admission Hint, NoFill), threaded by the replayers
// through every engine; a request's op kind (RequestKind: KindGet, KindSet,
// KindDelete) rides on the trace itself — NewMixedStream generates mixed
// GET/SET/DELETE workloads.
//
// # The serving layer
//
// internal/server turns the engine into a network service: a memcached
// text-protocol front end over EngineV2, run by cmd/nemoserve and driven
// over loopback by `nemobench -servebench` (which writes the
// BENCH_serve.json end-to-end baseline). The protocol subset is get/gets
// (multi-key), set, delete, stats, version, and quit, with noreply
// honored on set/delete. Each connection is one goroutine whose read loop
// accumulates the requests already pipelined on the wire — never blocking
// on a half-received line — into a batch (Config.MaxBatch, default 64);
// consecutive gets coalesce into one GetMany round and, in SyncSet mode,
// consecutive sets into one SetMany, so the PR 2–5 batch machinery is what
// actually serves the wire. Replies are written strictly in request order
// and flushed once per batch; a malformed request occupies its pipeline
// position as an ERROR/CLIENT_ERROR reply and never kills the connection.
//
// Stored values carry a 4-byte big-endian flags envelope ahead of the
// data, which round-trips memcached flags and keeps protocol-level empty
// values representable (the engine reserves zero-length values for
// tombstones); the `gets` cas token is an FNV-1a fingerprint of the stored
// value, a change detector only — the cas verb itself is not implemented.
// Three deliberate protocol departures, all consequences of Nemo having no
// exact per-object index: delete always answers DELETED (a tombstone
// insert cannot know whether the key existed), exptime is accepted and
// ignored (TTL rides elsewhere), and flush_all is absent.
//
// SETs ride SetAsync by default — STORED means "accepted", and flush
// errors surface in Stats.WriteErrors, in the `stats` verb (which reports
// the server's protocol counters next to every cachelib.Stats field under
// an engine_ prefix), and on drain; `-sync-set` serves stores through the
// synchronous path instead, making STORED mean "survived any flush it
// triggered". Shutdown is a graceful drain: stop accepting, interrupt
// blocked reads, let every handler answer its in-flight batch, then Drain
// the engine — so no acknowledged write is left behind in a memory SG.
// The suite pinning all of this: golden byte-for-byte conformance
// transcripts over net.Pipe, FuzzParseCommand (checked-in corpus; a key
// with an embedded CR/LF can never survive parsing), a loopback stress
// test under -race asserting server stats equal client-side tallies
// exactly, and graceful-drain tests including a blockable write fault
// released mid-shutdown.
//
// # Failure domains and degraded mode
//
// The serving stack separates its failure domains: a misbehaving client, a
// saturating connection load, and a failing flash device each hit a
// dedicated mechanism instead of a shared fate.
//
// Client and load faults are the server's. Config.MaxConns caps concurrent
// connections — beyond it new dials park in the accept queue
// (backpressure), or with Config.RejectBusy are answered `SERVER_ERROR
// busy` and closed. Config.IdleTimeout drops connections that stop issuing
// request batches; Config.ReadTimeout bounds every read inside a request,
// so a client that trickles a header or stalls mid-value (the slow loris)
// is cut off without a goroutine leaking per stall. The two disconnect
// kinds are accounted separately (idle_disconnects, deadline_disconnects,
// plus conns_rejected, in the `stats` verb), and Config.MaxBatchBytes
// bounds how many inbound value bytes one connection can buffer regardless
// of pipeline depth.
//
// Device faults are the engine's. Every write failure already recovers
// locally (the flush-error contract above); Config.WriteRetries adds a
// bounded in-place retry with exponential Config.RetryBackoff beneath
// that, absorbing transient append errors (counted in Stats.WriteRetries).
// Sustained failure trips the per-shard circuit breaker:
// Config.BreakerThreshold consecutive flush failures flip that shard —
// and only that shard — into read-only degraded mode. While degraded,
// writes fail fast with ErrDegraded (the serving layer answers
// `SERVER_ERROR degraded`) instead of queueing doomed flushes, and GETs
// keep serving everything already on flash or in memory. Every
// Config.BreakerProbeAfter of device time the breaker goes half-open and
// admits exactly one probe write, whose flush runs synchronously: success
// closes the breaker, failure re-opens it for another interval. The
// episode is visible in Stats (BreakerOpen, DegradedEntered,
// DegradedSeconds, DegradedRejects) and per shard via Health. The breaker
// is off by default in the library (BreakerThreshold 0 — every
// determinism pin runs unchanged) and on by default in nemoserve
// (-degraded-threshold 3; SIGQUIT dumps the server counters and each
// shard's breaker state).
//
// The chaos harness proves the two domains compose. device.FaultPlan is a
// seeded, deterministic fault schedule (error rates, fail-N-then-recover,
// per-zone kills, added latency) armed over the SetReadFault/SetWriteFault
// hooks of either backend; `nemobench -chaos` serves a breaker-enabled
// engine over loopback, injects a named scenario under client load, heals
// the device, and fails the run unless the stack recovers on its own —
// reporting availability, typed degraded sheds, and recovery time
// (BENCH_chaos.json in CI). The acceptance pin: a total 30-second write
// outage with 100% GET availability, typed SET sheds, and automatic
// half-open recovery. Checkpoint crashes get the same treatment — a save
// killed between temp-file write and rename leaves the previous snapshot
// intact plus an inert .tmp dropping, and the next boot warm-restarts
// past both (torture-tested in-process and with kill -9 in CI).
//
// # The device contract
//
// Engines never see a concrete device type: internal/device defines the
// zoned-device contract (the Device interface) and everything engine-facing
// — core.Config.Device, every baseline's Config.Device, the sharded facades
// — accepts it. A device is a fixed geometry (PageSize × PagesPerZone ×
// Zones, optionally MaxOpenZones) of append-only zones: AppendPage programs
// at a zone's write pointer (short appends are zero-padded to a full page),
// ResetZone is the erase that rewinds it, and reading a page at or beyond
// its zone's write pointer yields zeroes rather than stale bytes. Reads and
// writes on distinct zones proceed in parallel; same-zone appends
// serialize. Buffer ownership follows the PR 4 read-path rules: ReadPage's
// dst belongs to the caller, is filled synchronously before the call
// returns, and is never retained by the device. SetReadFault/SetWriteFault
// install test hooks that run before any state change and outside every
// zone lock, so a hook that blocks parks its caller without wedging the
// rest of the device — the fault tests and the drain suite rely on exactly
// that, and run against every implementation via internal/devtest.
//
// Two implementations ship. internal/flashsim is the simulator: virtual
// time, a per-channel latency model, deterministic scheduling.
// internal/filedev is the real file-backed device (OpenFileDevice, or
// `-device=file:<path>` on nemobench/nemoserve): one flat image file,
// each page append a single pwrite at zone*pagesPerZone*pageSize + off,
// measured wall-clock latencies, optional O_DIRECT. Its durability caveats
// are deliberate for a cache: appends are not individually fsynced (an OS
// crash can lose recently acknowledged pages), and without Config.Persist
// no write-pointer metadata is persisted — Open reformats, rebuilding every
// write pointer to zero. Persist mode (used by warm restart, below) adds a
// superblock page past the data capacity holding the zone write pointers
// and the device generation stamp: a cleanly closed image reopens warm,
// while the first mutation after any open synchronously invalidates the
// superblock, so a crash always cold-formats the next open. Under `-notime`
// the quality half of the compare table (hit ratio, ALWA, total WA,
// evictions) is byte-identical across backends; only timing may differ.
//
// # Warm restart
//
// A cache that loses its index on restart serves cold traffic for hours,
// so the engine can checkpoint its metadata and adopt it back on boot.
// internal/snapshot defines the NEMO1 format: an index-only, fixed-width,
// little-endian image of every per-shard structure — the flashSG directory
// and index groups, per-set object counts, hotness bitmaps, unsealed
// groups' Bloom-filter buffers, zone free lists in pop order, the buffered
// in-memory SGs (whole set pages), the PBFG index cache (queue order plus
// cached-page set; page contents are re-read from flash on restore), the
// flush-fill log, and every counter in Stats and NemoStats. Sections carry
// individual CRCs under a footer CRC, encoding is canonical
// (Encode(Decode(b)) == b, pinned by fuzzing), and Save is a full
// atomic-rename rewrite. Object data is never checkpointed — it already
// lives on flash.
//
// Snapshots are strictly throwaway. Restore (Config.SnapshotPath at
// New/NewSharded) adopts a snapshot only when everything matches: decode
// must be perfect (any truncation, bit flip, or slack byte is a typed
// refusal), the geometry and the engine configuration must equal the
// stamp, every structural invariant of the restored state must hold (zone
// partition tiles exactly, group/SG id order, write-pointer cross-checks
// against the device), and the device generation stamp —
// device.Generation's Boot (unique per cold format) and Writes (every
// append and reset) — must be exactly the one the checkpoint sampled, so
// any device mutation after the checkpoint, or a different device life,
// walls the snapshot off as stale. Any refusal cold-formats with the cause
// in RestoreOutcome; nothing is ever replayed or partially trusted, and a
// cold format adopts a dirty device safely (stale zones are rewound on
// first reuse). Checkpoint (also run by Close when SnapshotPath is set)
// drains in-flight flushes, captures all shards at a commit boundary, and
// samples the generation under the locks, so a checkpoint is exact: the
// kill-and-restore suite pins stat-for-stat equality between an
// interrupted and an uninterrupted run, and checkpoint→restore→checkpoint
// reproduces the snapshot byte for byte.
//
// The layers above thread it through: nemoserve -snapshot restores on
// boot, checkpoints on graceful drain (and periodically with
// -snapshot-every), and opens the file device in Persist mode so a real
// process restart comes back warm; nemobench -replay/-setbench -snapshot
// run kill-and-restore mid-benchmark and report restore time (and warm hit
// ratio). The simulator is volatile by design — a sim "restart" never
// matches the fresh device's generation and correctly starts cold.
//
// # What the package exposes
//
//   - The Nemo cache itself (New, Config, DefaultConfig).
//   - A sharded, concurrent variant (NewSharded, Config.Shards): the key
//     space is hash-partitioned into independent engines, each owning a
//     disjoint slice of the device's zones, its own in-memory SGs, PBFG
//     index, and lock, so requests for different shards proceed in
//     parallel and Stats aggregates without a global lock.
//   - The simulated zoned flash device it runs on (NewDevice) — the
//     substitution for the paper's ZNS SSD, with full write/read/erase
//     accounting, per-zone and per-channel locking for concurrent shards,
//     and a virtual-time latency model.
//   - The paper's four baselines as interchangeable engines
//     (NewLogCache, NewSetCache, NewKangaroo, NewFairyWREN); the log
//     baseline's exact index gives it a native Delete, the rest upgrade
//     through Adapt.
//   - The generic sharded facade (ShardedEngine) that gives every baseline
//     the same sharded/concurrent treatment Nemo has natively
//     (NewShardedLogCache, NewShardedSetCache, NewShardedKangaroo,
//     NewShardedFairyWREN): the zone range is partitioned into per-shard
//     engines, requests route by the same hash lane as ShardedCache —
//     identical key partitioning across engines — and batches take one
//     hash pass, group into per-shard sub-batches, and fan out in
//     parallel. With shards=1 the facade is stat-for-stat the bare engine
//     (pinned per baseline by equivalence property tests), so the paper's
//     single-threaded numbers remain reproducible from the same code
//     path. `nemobench -compare` replays one materialized mixed trace
//     through all five sharded engines and prints the Figure 12/15-style
//     comparison (hit ratio, ALWA, total WA, throughput, Set latency per
//     engine × shard count).
//   - Workload generators parameterized like the paper's Twitter traces
//     (NewWorkload, Clusters, NewMixedStream), a sequential replay harness
//     (Replay), and a parallel trace-replay driver (Materialize,
//     ParallelReplay) with deterministic per-shard sequencing — hit ratio
//     and write amplification are independent of worker count and batch
//     size while throughput scales with cores. Batched replay
//     (ParallelReplayConfig.BatchSize) drives GetMany/SetMany with
//     per-shard batch composition and merged multi-shard fan-out; AsyncSets
//     routes fills through the flush pipeline; Set latency percentiles
//     land in ParallelReplayResult.SetLatency. `nemobench -replay` prints
//     the scaling table.
//
// A minimal session:
//
//	dev := nemo.NewDevice(nemo.DeviceConfig{})          // 64 MB simulated ZNS
//	cache, err := nemo.New(nemo.DefaultConfig(dev, 56)) // 56-zone SG pool
//	if err != nil { ... }
//	cache.Set([]byte("user:1234"), []byte("tiny object"))
//	v, hit := cache.Get([]byte("user:1234"))
//	cache.Delete([]byte("user:1234"))
//
// See examples/batch for the v2 surface end to end (GetMany, SetAsync,
// Drain, Delete on a sharded cache), DESIGN.md for the system inventory,
// EXPERIMENTS.md for the paper-vs-measured results, and cmd/nemobench to
// regenerate every table and figure.
package nemo
