package nemo_test

// BenchmarkParallelGet and the GET-scaling assertion for the concurrent
// three-phase read path: flash I/O runs outside the shard mutex, so GETs on
// a single shard should scale with goroutines instead of serializing on
// lock hold time. The workload (cache geometry, prefill, stride walk) is
// the shared internal/getbench harness — the same measurement `nemobench
// -getbench` runs to write the BENCH_get.json CI baseline.

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"nemo"
	"nemo/internal/backend"
	"nemo/internal/getbench"
)

func buildGetBenchCache(tb testing.TB, shards int) (*nemo.ShardedCache, [][]byte) {
	tb.Helper()
	c, dev, keys, err := getbench.Build(backend.Sim(), shards)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { dev.Close() })
	return c, keys
}

// runParallelGets issues ops GETs spread over goroutines and returns the
// wall-clock ops/s.
func runParallelGets(c *nemo.ShardedCache, keys [][]byte, goroutines, ops int) float64 {
	elapsed := getbench.Run(c, keys, goroutines, ops)
	return float64(ops/goroutines*goroutines) / elapsed.Seconds()
}

// BenchmarkParallelGet measures GET throughput at 1/4/8 goroutines against
// one shard (pure read-path concurrency: every goroutine contends on the
// same shard's plan/commit lock) and at 8 shards (sharding stacked on
// top). Run with -benchmem to see the per-op allocation count the
// zero-allocation pins guard.
func BenchmarkParallelGet(b *testing.B) {
	for _, shards := range []int{1, 8} {
		c, keys := buildGetBenchCache(b, shards)
		for _, gs := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("shards=%d/goroutines=%d", shards, gs), func(b *testing.B) {
				b.ReportAllocs()
				ops := b.N
				if ops < gs {
					ops = gs
				}
				b.ResetTimer()
				elapsed := getbench.Run(c, keys, gs, ops)
				b.StopTimer()
				b.ReportMetric(float64(ops/gs*gs)*float64(time.Second)/float64(elapsed), "ops/s")
			})
		}
		if err := c.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestParallelGetScaling is the acceptance gate for moving flash I/O off
// the shard lock: on a single shard — one mutex, so the old fully-locked
// path could never exceed 1× — eight goroutines must sustain at least 2×
// the one-goroutine GET throughput. Like the other wall-clock assertions,
// it only runs where the parallelism is physically attainable (≥ 8 CPUs,
// no race instrumentation).
func TestParallelGetScaling(t *testing.T) {
	if raceEnabled {
		t.Skip("skipping wall-clock assertion under -race")
	}
	if runtime.NumCPU() < 8 && os.Getenv("NEMO_FORCE_SCALING") != "1" {
		t.Skipf("skipping ≥2× GET-scaling assertion on %d CPUs (set NEMO_FORCE_SCALING=1 to force)", runtime.NumCPU())
	}
	c, keys := buildGetBenchCache(t, 1)
	defer c.Close()

	const ops = 160_000
	runParallelGets(c, keys, 8, ops/4) // warm-up: scratch pools, hot bitmaps
	ops1 := runParallelGets(c, keys, 1, ops)
	ops8 := runParallelGets(c, keys, 8, ops)
	speedup := ops8 / ops1
	t.Logf("single shard: 1 goroutine %.0f ops/s, 8 goroutines %.0f ops/s (%.2f×) on %d CPUs",
		ops1, ops8, speedup, runtime.NumCPU())
	if speedup < 2 {
		// One retry damps scheduler noise on loaded hosts.
		ops1b := runParallelGets(c, keys, 1, ops)
		ops8b := runParallelGets(c, keys, 8, ops)
		if retry := ops8b / ops1b; retry > speedup {
			speedup = retry
			t.Logf("retry: %.2f×", speedup)
		}
	}
	if speedup < 2 {
		t.Fatalf("8 goroutines sustained only %.2f× the single-goroutine GET throughput on one shard, want ≥ 2×", speedup)
	}
}
