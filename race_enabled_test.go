//go:build race

package nemo_test

// raceEnabled reports whether the race detector is instrumenting this build.
const raceEnabled = true
